/// \file bench_table3.cpp
/// \brief Reproduces Table 3: cumulative result sizes, % of min, runtimes
/// and ranks over all minimization calls of the FSM-equivalence workload,
/// bucketed by c_onset_size (all / <5% / >95%).
#include "experiment_common.hpp"
#include "harness/csv.hpp"
#include "harness/json.hpp"
#include "harness/render.hpp"
#include "harness/stats.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Table 3 reproduction (Shiple et al., DAC'94) ===\n");
  harness::Interceptor interceptor(minimize::all_heuristics());
  bench::run_workload(interceptor);

  const harness::Table3 table =
      harness::aggregate_table3(interceptor.names(), interceptor.records());
  std::printf("%s\n", harness::render_table3(table).c_str());

  // The headline claims around Table 3.
  const auto idx = [&](const char* name) {
    const auto names = interceptor.names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    return SIZE_MAX;
  };
  const std::size_t f_orig = table.all.total_size[idx("f_orig")];
  std::printf("reduction vs f_orig: %.1fx overall, %.1fx in the <5%% bucket, "
              "%.1fx in the >95%% bucket\n",
              table.all.total_min
                  ? static_cast<double>(f_orig) / table.all.total_min
                  : 0.0,
              table.low.total_min
                  ? static_cast<double>(table.low.total_size[idx("f_orig")]) /
                        table.low.total_min
                  : 0.0,
              table.high.total_min
                  ? static_cast<double>(table.high.total_size[idx("f_orig")]) /
                        table.high.total_min
                  : 0.0);
  std::printf("min / lower bound: %.2fx (paper: 3.4x)\n",
              table.all.total_lower_bound
                  ? static_cast<double>(table.all.total_min) /
                        table.all.total_lower_bound
                  : 0.0);
  std::printf("\npaper shape check: no-new-vars variants should lead the <5%% "
              "bucket; opt_lv and the complement-matchers the >95%% bucket;\n"
              "f_and_c / f_or_nc should be far behind everything.\n");
  const std::string csv =
      harness::records_to_csv(interceptor.names(), interceptor.records());
  if (harness::write_text_file("bench_table3_records.csv", csv)) {
    std::printf("per-call records written to bench_table3_records.csv (%zu "
                "rows)\n",
                interceptor.records().size());
  }

  // Machine-readable trajectory point: the Table 3 aggregate plus the
  // telemetry cache behaviour of every heuristic over the whole workload.
  const auto names = interceptor.names();
  harness::JsonWriter json;
  json.begin_object();
  json.kv("bench", "table3");
  json.kv("calls", table.all.calls);
  json.kv("filtered_calls", interceptor.filtered_calls());
  json.kv("total_min", table.all.total_min);
  json.kv("total_lower_bound", table.all.total_lower_bound);
  json.key("heuristics");
  json.begin_array();
  for (std::size_t h = 0; h < names.size(); ++h) {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t and_hits = 0;
    std::uint64_t and_misses = 0;
    std::uint64_t xor_hits = 0;
    std::uint64_t xor_misses = 0;
    std::uint64_t steps = 0;
    for (const harness::CallRecord& r : interceptor.records()) {
      hits += r.outcomes[h].cache_hits;
      misses += r.outcomes[h].cache_misses;
      and_hits += r.outcomes[h].and_hits;
      and_misses += r.outcomes[h].and_misses;
      xor_hits += r.outcomes[h].xor_hits;
      xor_misses += r.outcomes[h].xor_misses;
      steps += r.outcomes[h].steps;
    }
    const auto rate = [](std::uint64_t hit, std::uint64_t miss) {
      return hit + miss ? static_cast<double>(hit) / (hit + miss) : 0.0;
    };
    json.begin_object();
    json.kv("name", names[h]);
    json.kv("total_size", table.all.total_size[h]);
    json.kv("seconds", table.all.total_seconds[h]);
    json.kv("rank", table.all.rank[h]);
    json.kv("pct_of_min", table.all.pct_of_min(h));
    json.kv("cache_hits", hits);
    json.kv("cache_misses", misses);
    json.kv("cache_hit_rate", rate(hits, misses));
    // Kernel cache classes: "and" also carries the leq/disjoint probes.
    json.kv("and_cache_hits", and_hits);
    json.kv("and_cache_misses", and_misses);
    json.kv("and_cache_hit_rate", rate(and_hits, and_misses));
    json.kv("xor_cache_hits", xor_hits);
    json.kv("xor_cache_misses", xor_misses);
    json.kv("xor_cache_hit_rate", rate(xor_hits, xor_misses));
    json.kv("steps", steps);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (harness::write_text_file("BENCH_table3.json", json.str())) {
    std::printf("summary written to BENCH_table3.json\n");
  }
  return 0;
}
