/// \file bench_bdd_ops.cpp
/// \brief Micro-benchmarks of the BDD substrate (google-benchmark): node
/// construction, ITE throughput, quantification, counting, GC.
#include <benchmark/benchmark.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "workload/instances.hpp"

namespace {

using namespace bddmin;

/// n-variable adder-like function chain: builds a function with O(n)
/// nodes whose construction exercises ITE heavily.
Edge build_chain(Manager& mgr, unsigned n) {
  Edge carry = kZero;
  Edge sum = kZero;
  for (unsigned v = 0; v + 1 < n; v += 2) {
    const Edge a = mgr.var_edge(v);
    const Edge b = mgr.var_edge(v + 1);
    sum = mgr.xor_(sum, mgr.xor_(a, b));
    carry = mgr.or_(mgr.and_(a, b), mgr.and_(carry, mgr.xor_(a, b)));
  }
  return mgr.xor_(sum, carry);
}

void BM_MakeNodeChain(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  Manager mgr(n);
  for (auto _ : state) {
    Edge cube = kOne;
    for (unsigned v = n; v-- > 0;) cube = mgr.make_node(v, cube, kZero);
    benchmark::DoNotOptimize(cube);
    state.PauseTiming();
    mgr.garbage_collect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_MakeNodeChain)->Arg(16)->Arg(64)->Arg(256);

void BM_IteAdderChain(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  Manager mgr(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_chain(mgr, n));
    state.PauseTiming();
    mgr.garbage_collect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_IteAdderChain)->Arg(16)->Arg(32)->Arg(64);

void BM_IteCached(benchmark::State& state) {
  Manager mgr(32);
  const Bdd f(mgr, build_chain(mgr, 32));
  const Bdd g(mgr, mgr.var_edge(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.ite(f.edge(), g.edge(), !g.edge()));
  }
}
BENCHMARK(BM_IteCached);

void BM_Exists(benchmark::State& state) {
  const unsigned n = 20;
  Manager mgr(n);
  std::mt19937_64 rng(1);
  const Bdd f(mgr, workload::random_function(mgr, n, 0.3, rng));
  std::vector<std::uint32_t> vars{2, 5, 8, 11, 14};
  const Bdd cube(mgr, positive_cube(mgr, vars));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exists(mgr, f.edge(), cube.edge()));
    state.PauseTiming();
    mgr.clear_caches();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Exists);

void BM_AndExists(benchmark::State& state) {
  const unsigned n = 20;
  Manager mgr(n);
  std::mt19937_64 rng(2);
  const Bdd f(mgr, workload::random_function(mgr, n, 0.3, rng));
  const Bdd g(mgr, workload::random_function(mgr, n, 0.3, rng));
  std::vector<std::uint32_t> vars{1, 4, 7, 10, 13, 16};
  const Bdd cube(mgr, positive_cube(mgr, vars));
  for (auto _ : state) {
    benchmark::DoNotOptimize(and_exists(mgr, f.edge(), g.edge(), cube.edge()));
    state.PauseTiming();
    mgr.clear_caches();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_AndExists);

void BM_SatCount(benchmark::State& state) {
  const unsigned n = 24;
  Manager mgr(n);
  std::mt19937_64 rng(3);
  const Bdd f(mgr, workload::random_function(mgr, n, 0.4, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sat_count(mgr, f.edge(), n));
  }
}
BENCHMARK(BM_SatCount);

void BM_CountNodes(benchmark::State& state) {
  const unsigned n = 24;
  Manager mgr(n);
  std::mt19937_64 rng(4);
  const Bdd f(mgr, workload::random_function(mgr, n, 0.4, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_nodes(mgr, f.edge()));
  }
}
BENCHMARK(BM_CountNodes);

void BM_Support(benchmark::State& state) {
  const unsigned n = 24;
  Manager mgr(n);
  std::mt19937_64 rng(7);
  const Bdd f(mgr, workload::random_function(mgr, n, 0.4, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(support(mgr, f.edge()));
  }
}
BENCHMARK(BM_Support);

void BM_Leq(benchmark::State& state) {
  const unsigned n = 20;
  Manager mgr(n);
  std::mt19937_64 rng(8);
  const Bdd f(mgr, workload::random_function(mgr, n, 0.3, rng));
  const Bdd g(mgr,
              mgr.or_(f.edge(), workload::random_function(mgr, n, 0.3, rng)));
  for (auto _ : state) {
    // f <= f|g holds (full walk); the reverse fails on an early path.
    benchmark::DoNotOptimize(mgr.leq(f.edge(), g.edge()));
    benchmark::DoNotOptimize(mgr.leq(g.edge(), f.edge()));
    state.PauseTiming();
    mgr.clear_caches();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Leq);

void BM_ReorderSift(benchmark::State& state) {
  const unsigned pairs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Manager mgr(2 * pairs);
    Edge f = kZero;
    for (unsigned k = 0; k < pairs; ++k) {
      f = mgr.or_(f, mgr.and_(mgr.var_edge(k), mgr.var_edge(pairs + k)));
    }
    mgr.ref(f);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.reorder_sift());
  }
}
BENCHMARK(BM_ReorderSift)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_AdjacentSwap(benchmark::State& state) {
  Manager mgr(16);
  std::mt19937_64 rng(6);
  const Bdd f(mgr, workload::random_function(mgr, 16, 0.3, rng));
  mgr.garbage_collect();
  std::uint32_t level = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.swap_adjacent_levels(level));
    level = (level + 1) % 15;
  }
}
BENCHMARK(BM_AdjacentSwap);

void BM_GarbageCollect(benchmark::State& state) {
  Manager mgr(24);
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 20; ++i) {
      (void)workload::random_function(mgr, 24, 0.3, rng);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.garbage_collect());
  }
}
BENCHMARK(BM_GarbageCollect);

}  // namespace
