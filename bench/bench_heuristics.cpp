/// \file bench_heuristics.cpp
/// \brief Micro-benchmarks of the minimization heuristics themselves
/// (google-benchmark), matching the paper's runtime ordering: constrain /
/// restrict cheapest, tsm variants costlier, opt_lv most expensive.
#include <benchmark/benchmark.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "minimize/level.hpp"
#include "minimize/lower_bound.hpp"
#include "minimize/schedule.hpp"
#include "minimize/sibling.hpp"
#include "workload/instances.hpp"

namespace {

using namespace bddmin;

struct Instance {
  Manager mgr{14};
  Bdd f;
  Bdd c;

  explicit Instance(double density, std::uint64_t seed = 42) {
    std::mt19937_64 rng(seed);
    f = Bdd(mgr, workload::random_function(mgr, 14, 0.5, rng));
    c = Bdd(mgr, workload::random_function(mgr, 14, density, rng));
  }
};

template <Edge (*Fn)(Manager&, Edge, Edge)>
void BM_Sibling(benchmark::State& state) {
  Instance inst(state.range(0) == 0 ? 0.03 : 0.97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fn(inst.mgr, inst.f.edge(), inst.c.edge()));
    state.PauseTiming();
    inst.mgr.garbage_collect();  // flush caches, as the paper measures
    state.ResumeTiming();
  }
}
BENCHMARK_TEMPLATE(BM_Sibling, minimize::constrain)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_Sibling, minimize::restrict_dc)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_Sibling, minimize::osm_td)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_Sibling, minimize::osm_bt)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_Sibling, minimize::tsm_td)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_Sibling, minimize::tsm_cp)->Arg(0)->Arg(1);

void BM_OptLv(benchmark::State& state) {
  Instance inst(state.range(0) == 0 ? 0.03 : 0.97);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minimize::opt_lv(inst.mgr, inst.f.edge(), inst.c.edge()));
    state.PauseTiming();
    inst.mgr.garbage_collect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_OptLv)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Scheduler(benchmark::State& state) {
  Instance inst(0.03);
  minimize::ScheduleOptions opts;
  opts.use_level_steps = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize::scheduled_minimize(
        inst.mgr, opts, inst.f.edge(), inst.c.edge()));
    state.PauseTiming();
    inst.mgr.garbage_collect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Scheduler)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_LowerBound(benchmark::State& state) {
  Instance inst(0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimize::constrain_lower_bound(
        inst.mgr, inst.f.edge(), inst.c.edge(),
        static_cast<std::size_t>(state.range(0))));
    state.PauseTiming();
    inst.mgr.garbage_collect();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_LowerBound)->Arg(10)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
