/// \file bench_table1.cpp
/// \brief Reproduces Table 1: reflexivity / symmetry / transitivity of the
/// three matching criteria, established by exhaustive-ish randomized
/// checking over thousands of incompletely specified function triples.
#include <cstdio>
#include <random>

#include "bdd/truth_table.hpp"
#include "minimize/matching.hpp"

int main() {
  using namespace bddmin;
  using minimize::Criterion;
  using minimize::IncSpec;
  using minimize::matches;

  Manager mgr(4);
  std::mt19937_64 rng(2026);
  // Uniformly random pairs almost never satisfy the one-sided premises,
  // so bias the sampler: some all-DC functions, and some "extensions"
  // whose care set grows while agreeing on the base's care set — the
  // configurations in which (a)symmetry and (in)transitivity show.
  const auto random_spec = [&]() {
    const std::uint64_t c_tt = (rng() % 5 == 0) ? 0 : (rng() & tt_mask(4));
    return IncSpec{from_tt(mgr, rng() & tt_mask(4), 4), from_tt(mgr, c_tt, 4)};
  };
  const auto derived_spec = [&](const IncSpec& base) {
    const Edge grown_c = mgr.or_(base.c, from_tt(mgr, rng() & tt_mask(4), 4));
    const Edge f = mgr.ite(base.c, base.f, from_tt(mgr, rng() & tt_mask(4), 4));
    return IncSpec{f, grown_c};
  };

  constexpr int kRounds = 4000;
  std::printf("=== Table 1 reproduction: properties of the matching "
              "criteria (%d random triples) ===\n\n",
              kRounds);
  std::printf("%-10s %-10s %-10s %-12s\n", "criterion", "reflexive",
              "symmetric", "transitive");
  for (const Criterion crit :
       {Criterion::kOsdm, Criterion::kOsm, Criterion::kTsm}) {
    bool reflexive = true;
    bool symmetric = true;
    bool transitive = true;
    for (int round = 0; round < kRounds; ++round) {
      const IncSpec a = random_spec();
      const IncSpec b = (rng() & 1) ? derived_spec(a) : random_spec();
      const IncSpec c = (rng() & 1) ? derived_spec(b) : random_spec();
      reflexive &= matches(mgr, crit, a, a);
      if (matches(mgr, crit, a, b)) symmetric &= matches(mgr, crit, b, a);
      if (matches(mgr, crit, a, b) && matches(mgr, crit, b, c)) {
        transitive &= matches(mgr, crit, a, c);
      }
    }
    std::printf("%-10s %-10s %-10s %-12s\n",
                std::string(minimize::to_string(crit)).c_str(),
                reflexive ? "yes" : "no", symmetric ? "yes" : "no",
                transitive ? "yes" : "no");
  }
  std::printf("\npaper's Table 1:\n");
  std::printf("%-10s %-10s %-10s %-12s\n", "osdm", "no", "no", "yes");
  std::printf("%-10s %-10s %-10s %-12s\n", "osm", "yes", "no", "yes");
  std::printf("%-10s %-10s %-10s %-12s\n", "tsm", "yes", "yes", "no");
  return 0;
}
