/// \file bench_ablation_cliques.cpp
/// \brief Ablation of the two clique-cover optimizations of Section 3.3.2
/// (degree-ordered seeds, distance-weighted growth) and of the set-size
/// cap, measuring opt_lv quality and runtime on a fixed instance set.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "minimize/level.hpp"
#include "workload/instances.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== opt_lv ablation: clique-cover optimizations ===\n\n");

  Manager mgr(12);
  std::mt19937_64 rng(123);
  std::vector<minimize::IncSpec> instances;
  std::vector<Bdd> pins;
  for (int i = 0; i < 24; ++i) {
    const double density = (i % 3 == 0) ? 0.97 : 0.15;
    const minimize::IncSpec spec =
        workload::random_instance(mgr, 12, density, rng);
    if (spec.c == kZero || spec.c == kOne) continue;
    instances.push_back(spec);
    pins.emplace_back(mgr, spec.f);
    pins.emplace_back(mgr, spec.c);
  }
  std::printf("%zu instances over 12 variables\n\n", instances.size());
  std::printf("%-34s %10s %10s\n", "configuration", "total", "time(s)");

  const auto measure = [&](const char* label, const minimize::LevelOptions& opts) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t total = 0;
    for (const minimize::IncSpec& spec : instances) {
      mgr.garbage_collect();
      total += count_nodes(mgr, minimize::opt_lv(mgr, spec.f, spec.c, opts));
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%-34s %10zu %10.2f\n", label, total, secs);
  };

  {
    minimize::LevelOptions opts;
    measure("both optimizations (default)", opts);
  }
  {
    minimize::LevelOptions opts;
    opts.order_by_degree = false;
    measure("no degree ordering", opts);
  }
  {
    minimize::LevelOptions opts;
    opts.weight_by_distance = false;
    measure("no distance weights", opts);
  }
  {
    minimize::LevelOptions opts;
    opts.order_by_degree = false;
    opts.weight_by_distance = false;
    measure("naive greedy cliques", opts);
  }
  for (const std::size_t cap : {8u, 32u, 128u}) {
    minimize::LevelOptions opts;
    opts.max_set_size = cap;
    char label[64];
    std::snprintf(label, sizeof label, "set-size cap %zu", cap);
    measure(label, opts);
  }
  return 0;
}
