/// \file bench_image_methods.cpp
/// \brief Substrate ablation: the three image computation methods
/// (monolithic relational product, clustered relation with early
/// quantification, Coudert's constrain-based range) on full reachability
/// of the synthetic machines.  All three must reach the same fixed point;
/// runtimes and peak table sizes differ.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bdd/ops.hpp"
#include "fsm/reach.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Image computation ablation ===\n\n");
  std::printf("%-14s %-12s %8s %10s %12s %10s\n", "machine", "method",
              "iters", "states", "peak nodes", "time(s)");

  const std::vector<workload::MachineSpec> machines{
      workload::make_counter(10),        workload::make_accumulator(10, 4),
      workload::make_mult_register(10, 4), workload::make_bit_setter(12),
      workload::make_minmax(4),          workload::make_lfsr(10, 0b0000001001),
      workload::make_random_mealy(48, 3, 2, 42),
  };
  struct Method {
    const char* name;
    fsm::ImageMethod method;
  };
  const Method methods[] = {
      {"relational", fsm::ImageMethod::kRelational},
      {"clustered", fsm::ImageMethod::kClustered},
      {"functional", fsm::ImageMethod::kFunctional},
  };

  for (const workload::MachineSpec& spec : machines) {
    double reference_states = -1.0;
    for (const Method& m : methods) {
      Manager mgr(spec.num_inputs + 2 * spec.num_state_bits);
      std::vector<std::uint32_t> in(spec.num_inputs);
      for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
      std::vector<std::uint32_t> st;
      std::vector<std::uint32_t> nx;
      for (unsigned k = 0; k < spec.num_state_bits; ++k) {
        st.push_back(spec.num_inputs + 2 * k);
        nx.push_back(spec.num_inputs + 2 * k + 1);
      }
      const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
      fsm::ReachOptions opts;
      opts.image_method = m.method;
      const auto start = std::chrono::steady_clock::now();
      const fsm::ReachResult result = fsm::reachable_states(mgr, sym, nx, opts);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const double states =
          sat_count(mgr, result.reached.edge(),
                    static_cast<unsigned>(spec.num_state_bits));
      std::printf("%-14s %-12s %8u %10.0f %12zu %10.3f\n", spec.name.c_str(),
                  m.name, result.iterations, states, mgr.allocated_nodes(),
                  secs);
      if (reference_states < 0) {
        reference_states = states;
      } else if (states != reference_states) {
        std::printf("  ^^ MISMATCH against the relational fixed point!\n");
        return 1;
      }
    }
  }
  std::printf("\nall methods agree on every fixed point\n");
  return 0;
}
