/// \file bench_scheduler.cpp
/// \brief The experiment Section 3.4 leaves as future work: sweep the
/// scheduler's window_size and stop_top_down over a fixed instance set
/// and compare against the individual heuristics it is built from.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "minimize/registry.hpp"
#include "workload/instances.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Scheduler parameter sweep (Section 3.4 future work) ===\n\n");

  Manager mgr(12);
  std::mt19937_64 rng(99);
  std::vector<minimize::IncSpec> instances;
  std::vector<Bdd> pins;
  for (int i = 0; i < 30; ++i) {
    const double density = (i % 2) ? 0.03 : 0.3;
    const minimize::IncSpec spec =
        workload::random_instance(mgr, 12, density, rng);
    if (spec.c == kZero || spec.c == kOne) continue;
    instances.push_back(spec);
    pins.emplace_back(mgr, spec.f);
    pins.emplace_back(mgr, spec.c);
  }
  std::printf("%zu instances over 12 variables\n\n", instances.size());

  const auto measure = [&](const minimize::Heuristic& h) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t total = 0;
    for (const minimize::IncSpec& spec : instances) {
      mgr.garbage_collect();
      total += count_nodes(mgr, h.run(mgr, spec.f, spec.c));
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("%-26s total=%6zu  time=%6.2fs\n", h.name.c_str(), total, secs);
    return total;
  };

  std::printf("-- baselines --\n");
  for (const minimize::Heuristic& h : minimize::paper_heuristics()) {
    measure(h);
  }

  std::printf("\n-- schedule grid (window_size x stop_top_down), with level "
              "steps --\n");
  for (const unsigned window : {1u, 2u, 4u, 8u}) {
    for (const unsigned stop : {2u, 4u, 8u}) {
      minimize::ScheduleOptions opts;
      opts.window_size = window;
      opts.stop_top_down = stop;
      minimize::Heuristic h = minimize::scheduler_heuristic(opts);
      h.name = "sched w=" + std::to_string(window) + " stop=" +
               std::to_string(stop);
      measure(h);
    }
  }

  std::printf("\n-- cheap variant: sibling steps only (skip level matching) "
              "--\n");
  for (const unsigned window : {2u, 4u}) {
    minimize::ScheduleOptions opts;
    opts.window_size = window;
    opts.stop_top_down = 4;
    opts.use_level_steps = false;
    minimize::Heuristic h = minimize::scheduler_heuristic(opts);
    h.name = "sched-lite w=" + std::to_string(window);
    measure(h);
  }
  return 0;
}
