/// \file bench_table4.cpp
/// \brief Reproduces Table 4: head-to-head percentages — entry (i, j) is
/// the share of calls where heuristic i's cover is strictly smaller than
/// heuristic j's — for the paper's representative subset, over all calls
/// and over the >95% bucket (where the paper reports opt_lv unbeaten).
#include "experiment_common.hpp"
#include "harness/render.hpp"
#include "harness/stats.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Table 4 reproduction (Shiple et al., DAC'94) ===\n");
  harness::Interceptor interceptor(minimize::all_heuristics());
  bench::run_workload(interceptor);

  const std::vector<std::string> subset{"f_orig", "const",  "restr", "osm_bt",
                                        "tsm_td", "opt_lv", "min"};
  const harness::HeadToHead all =
      harness::head_to_head(interceptor.names(), interceptor.records());
  std::printf("%s\n", harness::render_head_to_head(all, subset).c_str());

  // Orthogonality readout (paper: const vs tsm_td sums to 54.3%).
  const auto find = [&](const std::string& n) {
    for (std::size_t i = 0; i < all.names.size(); ++i) {
      if (all.names[i] == n) return i;
    }
    return SIZE_MAX;
  };
  const std::size_t c = find("const");
  const std::size_t t = find("tsm_td");
  std::printf("orthogonality const/tsm_td: %.1f%% (sum of both directions)\n",
              all.pct_smaller[c][t] + all.pct_smaller[t][c]);

  // Bucket with c_onset < 5% only (dominates the aggregate in the paper).
  const harness::HeadToHead low = harness::head_to_head(
      interceptor.names(), interceptor.records(), /*restrict_to_low_bucket=*/true);
  std::printf("\nsame matrix restricted to c_onset < 5%%:\n%s\n",
              harness::render_head_to_head(low, subset).c_str());

  // Lower-bound hit rates (paper: ~26.2% for the frontrunners).
  std::printf("lower-bound hit rates:\n");
  const auto names = interceptor.names();
  for (std::size_t h = 0; h < names.size(); ++h) {
    std::printf("  %-8s %5.1f%%\n", names[h].c_str(),
                harness::lower_bound_hit_rate(interceptor.records(), h));
  }
  return 0;
}
