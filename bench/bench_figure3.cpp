/// \file bench_figure3.cpp
/// \brief Reproduces Figure 3: for each representative heuristic, the
/// percentage of calls whose result is within x% of the best heuristic
/// (min), for x = 0..100.  Printed as a data table plus an ASCII plot.
#include "experiment_common.hpp"
#include "harness/render.hpp"
#include "harness/stats.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Figure 3 reproduction (Shiple et al., DAC'94) ===\n");
  harness::Interceptor interceptor(minimize::all_heuristics());
  bench::run_workload(interceptor);

  const std::vector<std::string> series{"f_orig", "const", "restr", "tsm_td",
                                        "opt_lv"};
  std::printf("%s\n", harness::render_robustness(interceptor.names(),
                                                 interceptor.records(), series,
                                                 5.0, 100.0)
                          .c_str());

  // Coarse ASCII plot, one row per 10% of calls.
  const auto names = interceptor.names();
  std::vector<std::vector<double>> curves;
  for (const std::string& s : series) {
    for (std::size_t h = 0; h < names.size(); ++h) {
      if (names[h] == s) {
        curves.push_back(
            harness::robustness_curve(interceptor.records(), h, 5.0, 100.0));
      }
    }
  }
  std::printf("ascii plot (x: within %% of min, 0..100; y: %% of calls)\n");
  for (int row = 10; row >= 3; --row) {
    std::printf("%3d%% |", row * 10);
    for (std::size_t s = 0; s < curves.front().size(); ++s) {
      char ch = ' ';
      for (std::size_t k = 0; k < curves.size(); ++k) {
        if (curves[k][s] >= row * 10.0 &&
            (row == 10 || curves[k][s] < (row + 1) * 10.0)) {
          ch = "FcrTo"[k];  // f_orig, const, restr, Tsm_td, opt_lv
        }
      }
      std::printf("%c", ch);
    }
    std::printf("\n");
  }
  std::printf("      +%s\n", std::string(curves.front().size(), '-').c_str());
  std::printf("legend: F=f_orig c=const r=restr T=tsm_td o=opt_lv\n");
  std::printf("\ny-intercepts (how often each finds the smallest result):\n");
  for (std::size_t k = 0; k < series.size(); ++k) {
    std::printf("  %-8s %5.1f%%\n", series[k].c_str(), curves[k].front());
  }
  return 0;
}
