/// \file bench_extensions.cpp
/// \brief Evaluates the paper's closing proposal: "a heuristic that
/// combines the strong points of the level-match and sibling-match
/// heuristics would be robust and would yield good results."  We run the
/// same FSM workload as Table 3 with the combinations this library adds —
/// the Section 3.4 scheduler, the mixed-criterion sibling matcher, and
/// the Proposition 6 fallback wrapper — against the best single
/// heuristics, and report totals plus Figure 3-style y-intercepts.
#include "experiment_common.hpp"
#include "harness/csv.hpp"
#include "harness/render.hpp"
#include "harness/stats.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Combined-heuristic study (Section 5 proposal) ===\n");

  std::vector<minimize::Heuristic> set;
  const auto paper = minimize::paper_heuristics();
  set.push_back(minimize::heuristic_by_name(paper, "const"));
  set.push_back(minimize::heuristic_by_name(paper, "restr"));
  set.push_back(minimize::heuristic_by_name(paper, "osm_bt"));
  set.push_back(minimize::heuristic_by_name(paper, "tsm_td"));
  set.push_back(minimize::heuristic_by_name(paper, "opt_lv"));
  set.push_back({"opt_lv_osm", [](Manager& m, Edge f, Edge c) {
                   return minimize::opt_lv(m, f, c, {},
                                           minimize::Criterion::kOsm);
                 }});
  set.push_back(minimize::mixed_heuristic());
  minimize::ScheduleOptions sched_opts;
  sched_opts.use_level_steps = true;
  set.push_back(minimize::scheduler_heuristic(sched_opts));
  minimize::ScheduleOptions lite_opts;
  lite_opts.use_level_steps = false;
  minimize::Heuristic lite = minimize::scheduler_heuristic(lite_opts);
  lite.name = "sched_lite";
  set.push_back(lite);
  set.push_back(
      minimize::with_fallback(minimize::heuristic_by_name(paper, "tsm_td")));

  harness::Interceptor interceptor(set);
  bench::run_workload(interceptor);

  const harness::Table3 table =
      harness::aggregate_table3(interceptor.names(), interceptor.records());
  std::printf("%s\n", harness::render_table3(table).c_str());

  std::printf("robustness y-intercepts (how often each is the best of this "
              "set):\n");
  const auto names = interceptor.names();
  for (std::size_t h = 0; h < names.size(); ++h) {
    const auto curve =
        harness::robustness_curve(interceptor.records(), h, 10.0, 20.0);
    std::printf("  %-10s best %5.1f%%   within 10%%: %5.1f%%\n",
                names[h].c_str(), curve[0], curve[1]);
  }

  const std::string csv =
      harness::records_to_csv(names, interceptor.records());
  if (harness::write_text_file("bench_extensions_records.csv", csv)) {
    std::printf("\nper-call records written to "
                "bench_extensions_records.csv (%zu rows)\n",
                interceptor.records().size());
  }
  return 0;
}
