/// \file experiment_common.hpp
/// \brief Shared workload driver for the table/figure reproductions: runs
/// FSM self-equivalence (the paper's verify_fsm experiment) over the
/// builtin controllers and the synthetic datapath machines, intercepting
/// every frontier-minimization call.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "fsm/equiv.hpp"
#include "harness/intercept.hpp"
#include "workload/builtin_fsms.hpp"
#include "workload/generators.hpp"

namespace bddmin::bench {

/// Set BDDMIN_QUICK=1 to shrink the workload (useful in CI smoke runs).
inline bool quick_mode() {
  const char* q = std::getenv("BDDMIN_QUICK");
  return q != nullptr && q[0] == '1';
}

/// Re-encode an explicit machine by shuffling its state order (same
/// behaviour, different binary codes).  Checking a machine against a
/// re-encoded copy makes the reached product set a state correspondence
/// rather than the plain diagonal — structurally richer frontiers, as in
/// the paper's experiments on real benchmark pairs.
inline fsm::MachineSpec shuffled_spec(fsm::Fsm machine, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::shuffle(machine.states.begin(), machine.states.end(), rng);
  machine.name += "_shuffled";
  return fsm::spec_from_fsm(std::move(machine));
}

/// (left, right) machine pairs for the product traversal.
inline std::vector<std::pair<fsm::MachineSpec, fsm::MachineSpec>>
workload_pairs() {
  std::vector<std::pair<fsm::MachineSpec, fsm::MachineSpec>> pairs;
  const auto self = [&](fsm::MachineSpec spec) {
    pairs.emplace_back(spec, spec);
  };
  for (const fsm::Fsm& m : workload::builtin_fsms()) {
    self(fsm::spec_from_fsm(m));
    pairs.emplace_back(fsm::spec_from_fsm(m), shuffled_spec(m, 9000 + pairs.size()));
  }
  self(workload::make_counter(6));
  self(workload::make_mod_counter(10));
  self(workload::make_gray_counter(5));
  self(workload::make_lfsr(6, 0b000011));
  self(workload::make_shift_register(5));
  self(workload::make_random_mealy(24, 2, 2, 1001));
  self(workload::make_random_mealy(32, 2, 1, 1002));
  if (!quick_mode()) {
    self(workload::make_counter(8));
    self(workload::make_accumulator(7, 4));
    self(workload::make_mult_register(7, 4));
    self(workload::make_minmax(3));
    self(workload::make_random_mealy(48, 3, 2, 1003));
    self(workload::make_random_mealy(40, 2, 3, 1004));
    self(workload::make_random_mealy(64, 2, 2, 1005));
    self(workload::make_random_mealy(96, 4, 2, 1006));
    // Re-encoded copies: the reached product set becomes a state
    // correspondence instead of the diagonal.
    for (const std::uint64_t seed : {2001ull, 2002ull, 2003ull}) {
      const fsm::Fsm m = workload::make_random_mealy_fsm(
          static_cast<unsigned>(24 + 8 * (seed % 10)), 3, 2, seed);
      pairs.emplace_back(fsm::spec_from_fsm(m), shuffled_spec(m, seed + 50));
    }
  }
  return pairs;
}

/// Machines whose *single-machine* reachability is traversed with
/// frontier minimization — the application in which Coudert et al. posed
/// the problem.  These reach dense state sets, so late frontier calls
/// carry huge don't-care freedom (paper's low-onset bucket) while early
/// ones sit in the high-onset bucket.
inline std::vector<fsm::MachineSpec> reach_workload_machines() {
  std::vector<fsm::MachineSpec> machines;
  machines.push_back(workload::make_bit_setter(8));
  machines.push_back(workload::make_accumulator(8, 4));
  machines.push_back(workload::make_gray_counter(6));
  machines.push_back(workload::make_mod_counter(100));
  if (!quick_mode()) {
    machines.push_back(workload::make_bit_setter(11));
    machines.push_back(workload::make_accumulator(10, 3));
    machines.push_back(workload::make_mult_register(9, 4));
    machines.push_back(workload::make_minmax(4));
  }
  return machines;
}

/// Run the whole experiment; prints one progress line per machine pair.
/// The functional (constrain-based) image method is used so the
/// interceptor sees the same two call populations as the paper:
/// frontier minimizations [U, U + R̄] and image constrains [delta_k, S].
inline void run_workload(harness::Interceptor& interceptor) {
  // The interceptor honors BDDMIN_AUDIT_LEVEL (analysis/audit.hpp): at
  // level >= 1 every heuristic call is followed by a manager audit, so a
  // whole experiment doubles as a soak test of the BDD invariants.
  if (const analysis::AuditLevel lvl = analysis::audit_level_from_env();
      lvl != analysis::AuditLevel::kOff) {
    std::printf("# BDDMIN_AUDIT_LEVEL=%d: auditing after every heuristic call\n",
                static_cast<int>(lvl));
  }
  fsm::EquivOptions opts;
  opts.image_method = fsm::ImageMethod::kFunctional;
  opts.minimize = interceptor.hook();
  for (const auto& [a, b] : workload_pairs()) {
    const std::size_t before = interceptor.total_calls();
    const fsm::EquivResult result = fsm::check_equivalence(a, b, opts);
    std::printf("# %-22s equivalent=%d iterations=%u calls=%zu\n",
                (a.name == b.name ? a.name : a.name + " vs " + b.name).c_str(),
                result.equivalent ? 1 : 0, result.iterations,
                interceptor.total_calls() - before);
    std::fflush(stdout);
  }
  for (const fsm::MachineSpec& spec : reach_workload_machines()) {
    const std::size_t before = interceptor.total_calls();
    Manager mgr(spec.num_inputs + 2 * spec.num_state_bits, 15);
    std::vector<std::uint32_t> in(spec.num_inputs);
    for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
    std::vector<std::uint32_t> st;
    std::vector<std::uint32_t> nx;
    for (unsigned k = 0; k < spec.num_state_bits; ++k) {
      st.push_back(spec.num_inputs + 2 * k);
      nx.push_back(spec.num_inputs + 2 * k + 1);
    }
    const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
    fsm::ReachOptions ropts;
    ropts.image_method = fsm::ImageMethod::kFunctional;
    ropts.minimize = interceptor.hook();
    const fsm::ReachResult result = fsm::reachable_states(mgr, sym, nx, ropts);
    std::printf("# reach %-16s iterations=%u calls=%zu\n", spec.name.c_str(),
                result.iterations, interceptor.total_calls() - before);
    std::fflush(stdout);
  }
  std::printf("# total calls %zu, filtered %zu, kept %zu\n\n",
              interceptor.total_calls(), interceptor.filtered_calls(),
              interceptor.records().size());
}

}  // namespace bddmin::bench
