/// \file bench_lower_bound.cpp
/// \brief Section 4.1.1's lower-bound study: how the constrain-on-cubes
/// bound tightens with the cube budget (the paper saw the bound ratio
/// improve when going from 10 to 1000 cubes), and how close `min` and the
/// exact minimum are to the bound on small instances.
#include <cstdio>
#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/exact.hpp"
#include "minimize/lower_bound.hpp"
#include "minimize/registry.hpp"
#include "workload/instances.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== Lower-bound study (Section 4.1.1) ===\n\n");

  // Part 1: cube-budget sweep on medium instances.
  {
    Manager mgr(12);
    std::mt19937_64 rng(7);
    const std::size_t budgets[] = {1, 10, 100, 1000};
    std::printf("cube budget sweep over 40 random 12-var instances\n");
    std::printf("%8s %14s %14s\n", "cubes", "sum(bound)", "sum(min)/bound");
    std::vector<std::size_t> bound_total(4, 0);
    std::size_t min_total = 0;
    const auto heuristics = minimize::paper_heuristics();
    for (int round = 0; round < 40; ++round) {
      const minimize::IncSpec spec =
          workload::random_instance(mgr, 12, 0.25, rng);
      if (spec.c == kZero || spec.c == kOne) continue;
      std::size_t best = SIZE_MAX;
      for (const minimize::Heuristic& h : heuristics) {
        best = std::min(best, count_nodes(mgr, h.run(mgr, spec.f, spec.c)));
      }
      min_total += best;
      for (std::size_t b = 0; b < 4; ++b) {
        bound_total[b] +=
            minimize::constrain_lower_bound(mgr, spec.f, spec.c, budgets[b])
                .bound;
      }
      mgr.garbage_collect();
    }
    for (std::size_t b = 0; b < 4; ++b) {
      std::printf("%8zu %14zu %14.2f\n", budgets[b], bound_total[b],
                  bound_total[b] ? static_cast<double>(min_total) /
                                       static_cast<double>(bound_total[b])
                                 : 0.0);
    }
    std::printf("(paper: min was 3.4x the bound with 1000 cubes)\n\n");
    // Section 4.1.1's refinement: probe the shortest-path "large cube"
    // before enumerating.
    {
      Manager mgr2(12);
      std::mt19937_64 rng2(7);
      std::size_t probed_total = 0;
      for (int round = 0; round < 40; ++round) {
        const minimize::IncSpec spec =
            workload::random_instance(mgr2, 12, 0.25, rng2);
        if (spec.c == kZero || spec.c == kOne) continue;
        probed_total += minimize::constrain_lower_bound(
                            mgr2, spec.f, spec.c, 10,
                            /*probe_largest_cube=*/true)
                            .bound;
        mgr2.garbage_collect();
      }
      std::printf("large-cube probe + 10 cubes: sum(bound)=%zu (vs %zu for "
                  "plain 10 cubes)\n\n",
                  probed_total, bound_total[1]);
    }
  }

  // Part 2: on exactly-solvable instances, where does the bound land
  // between 1 and the true minimum?
  {
    Manager mgr(5);
    std::mt19937_64 rng(11);
    std::size_t lb_total = 0;
    std::size_t exact_total = 0;
    std::size_t tight = 0;
    int solved = 0;
    for (int round = 0; round < 60; ++round) {
      const std::uint64_t f_tt = rng() & tt_mask(5);
      const std::uint64_t c_tt = (rng() | rng() | rng()) & tt_mask(5);
      if (c_tt == 0 || c_tt == tt_mask(5)) continue;
      const auto exact = minimize::exact_minimum_tt(f_tt, c_tt, 5, 12);
      if (!exact) continue;
      const Edge f = from_tt(mgr, f_tt, 5);
      const Edge c = from_tt(mgr, c_tt, 5);
      const std::size_t lb =
          minimize::constrain_lower_bound(mgr, f, c, 1000).bound;
      lb_total += lb;
      exact_total += exact->size;
      tight += lb == exact->size;
      ++solved;
    }
    std::printf("exact comparison on %d 5-var instances: sum(bound)=%zu, "
                "sum(exact)=%zu (ratio %.2f), bound tight on %zu/%d\n",
                solved, lb_total, exact_total,
                lb_total ? static_cast<double>(exact_total) / lb_total : 0.0,
                tight, solved);
  }
  return 0;
}
