/// \file bench_batch.cpp
/// \brief Batch engine on the Table 3 workload: harvest every unfiltered
/// frontier-minimization call into a job set, run it through the engine
/// at 1/2/4/8 threads, verify the deterministic CSVs are byte-identical,
/// and report the wall-clock scaling.
///
/// The speedup column reflects the host: per-job work is genuinely
/// parallel (each worker owns a private Manager), so on a multi-core
/// machine the engine approaches linear scaling, while on a single
/// hardware thread all counts collapse to ~1x.  Determinism is asserted
/// unconditionally — the CSV never depends on the thread count.
///
/// Exit status: 0 on success, 1 on CSV divergence or failed jobs.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/collect.hpp"
#include "engine/engine.hpp"
#include "experiment_common.hpp"
#include "fsm/equiv.hpp"
#include "harness/csv.hpp"
#include "harness/json.hpp"

namespace bddmin::bench {
namespace {

/// Same traversals as run_workload(), but with the JobCollector on the
/// minimize seam instead of the inline interceptor.
///
/// Each traversal is harvested under two image methods.  The reachability
/// fixpoint — and with it the frontier [f, c] sequence arriving at the
/// minimize seam — does not depend on how images are computed, so the
/// second method re-emits the frontier instances with byte-identical
/// payloads under fresh names.  That is exactly the duplicate shape a
/// verification fleet produces when different pipelines process the same
/// designs, and it is what the engine's payload dedup is measured against
/// below.
std::vector<engine::Job> harvest_jobs() {
  engine::JobCollector collector;
  const fsm::ImageMethod methods[] = {fsm::ImageMethod::kFunctional,
                                      fsm::ImageMethod::kClustered};
  for (const fsm::ImageMethod method : methods) {
    const char* const tag =
        method == fsm::ImageMethod::kFunctional ? "@fn" : "@cl";
    fsm::EquivOptions opts;
    opts.image_method = method;
    opts.minimize = collector.hook();
    for (const auto& [a, b] : workload_pairs()) {
      collector.set_label(
          (a.name == b.name ? a.name : a.name + "+" + b.name) + tag);
      (void)fsm::check_equivalence(a, b, opts);
    }
    for (const fsm::MachineSpec& spec : reach_workload_machines()) {
      collector.set_label("reach_" + spec.name + tag);
      Manager mgr(spec.num_inputs + 2 * spec.num_state_bits, 15);
      std::vector<std::uint32_t> in(spec.num_inputs);
      for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
      std::vector<std::uint32_t> st;
      std::vector<std::uint32_t> nx;
      for (unsigned k = 0; k < spec.num_state_bits; ++k) {
        st.push_back(spec.num_inputs + 2 * k);
        nx.push_back(spec.num_inputs + 2 * k + 1);
      }
      const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
      fsm::ReachOptions ropts;
      ropts.image_method = method;
      ropts.minimize = collector.hook();
      (void)fsm::reachable_states(mgr, sym, nx, ropts);
    }
  }
  std::printf("# harvested %zu jobs (%zu trivial calls filtered)\n",
              collector.jobs().size(), collector.filtered_calls());
  return collector.take();
}

int run() {
  const std::vector<engine::Job> jobs = harvest_jobs();
  if (jobs.empty()) {
    std::printf("no jobs harvested\n");
    return 1;
  }

  int failures = 0;
  std::string baseline;
  double base_seconds = 0.0;
  harness::JsonWriter json;
  json.begin_object();
  json.kv("bench", "batch");
  json.kv("jobs", jobs.size());
  json.key("runs");
  json.begin_array();
  std::printf("# %7s %10s %9s %4s %9s %9s %10s\n", "threads", "wall[s]",
              "speedup", "ok", "timeout", "error", "peak_live");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    engine::EngineOptions opts;
    opts.num_threads = threads;
    opts.lower_bound_cubes = 500;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    const std::size_t ok = report.count(engine::JobStatus::kOk);
    if (ok != jobs.size()) ++failures;
    // Worst single-job live-node footprint: the quota a resource-governed
    // rerun of this workload would need to finish untripped.
    std::size_t peak_live = 0;
    for (const engine::JobOutcome& o : report.outcomes) {
      peak_live = std::max(peak_live, o.peak_live);
    }
    const std::string csv = engine::report_csv(report);
    if (baseline.empty()) {
      baseline = csv;
      base_seconds = report.wall_seconds;
    } else if (csv != baseline) {
      std::printf("!! CSV at %u threads diverges from the 1-thread report\n",
                  threads);
      ++failures;
    }
    // Whole-batch telemetry: the per-job counters are deterministic, so
    // these sums must agree at every thread count.
    telemetry::CounterSnapshot counters;
    for (const engine::JobOutcome& o : report.outcomes) {
      counters += o.counters;
    }
    const std::uint64_t hits = counters.total_cache_hits();
    const std::uint64_t misses = counters.total_cache_misses();
    const auto rate = [](std::uint64_t hit, std::uint64_t miss) {
      return hit + miss ? static_cast<double>(hit) / (hit + miss) : 0.0;
    };
    const std::uint64_t and_hits =
        counters.value(telemetry::Counter::kAndCacheHits);
    const std::uint64_t and_misses =
        counters.value(telemetry::Counter::kAndCacheMisses);
    const std::uint64_t xor_hits =
        counters.value(telemetry::Counter::kXorCacheHits);
    const std::uint64_t xor_misses =
        counters.value(telemetry::Counter::kXorCacheMisses);
    json.begin_object();
    json.kv("threads", threads);
    json.kv("wall_seconds", report.wall_seconds);
    json.kv("speedup",
            report.wall_seconds > 0 ? base_seconds / report.wall_seconds : 0.0);
    json.kv("ok", ok);
    json.kv("duplicate_jobs", report.duplicate_jobs);
    json.kv("peak_live", peak_live);
    json.kv("cache_hits", hits);
    json.kv("cache_misses", misses);
    json.kv("cache_hit_rate", rate(hits, misses));
    json.kv("and_cache_hits", and_hits);
    json.kv("and_cache_misses", and_misses);
    json.kv("and_cache_hit_rate", rate(and_hits, and_misses));
    json.kv("xor_cache_hits", xor_hits);
    json.kv("xor_cache_misses", xor_misses);
    json.kv("xor_cache_hit_rate", rate(xor_hits, xor_misses));
    json.kv("steps",
            counters.value(telemetry::Counter::kGovernorSteps));
    json.end_object();
    std::printf("  %7u %10.3f %8.2fx %4zu %9zu %9zu %10zu\n", threads,
                report.wall_seconds,
                report.wall_seconds > 0 ? base_seconds / report.wall_seconds
                                        : 0.0,
                ok, report.count(engine::JobStatus::kTimeout),
                report.count(engine::JobStatus::kError), peak_live);
    std::fflush(stdout);
  }
  std::printf("# deterministic report: %s\n",
              failures == 0 ? "byte-identical across all thread counts"
                            : "DIVERGED");
  json.end_array();

  // Dedup on/off comparison at a fixed thread count: harvested frontier
  // calls repeat across traversal steps, so duplicates are real here.
  // The deterministic CSV must not depend on the switch.
  double dedup_on_seconds = 0.0;
  double dedup_off_seconds = 0.0;
  std::size_t duplicates = 0;
  {
    engine::EngineOptions opts;
    opts.num_threads = 4;
    opts.lower_bound_cubes = 500;
    const engine::BatchReport with_dedup = engine::run_batch(jobs, opts);
    opts.dedup_jobs = false;
    const engine::BatchReport without = engine::run_batch(jobs, opts);
    dedup_on_seconds = with_dedup.wall_seconds;
    dedup_off_seconds = without.wall_seconds;
    duplicates = with_dedup.duplicate_jobs;
    if (engine::report_csv(with_dedup) != engine::report_csv(without)) {
      std::printf("!! dedup changed the deterministic report\n");
      ++failures;
    }
    if (engine::report_csv(with_dedup) != baseline) {
      std::printf("!! dedup-comparison report diverges from the baseline\n");
      ++failures;
    }
    std::printf("# dedup: %zu/%zu duplicate payloads, wall %0.3fs on / "
                "%0.3fs off (%.2fx)\n",
                duplicates, jobs.size(), dedup_on_seconds, dedup_off_seconds,
                dedup_on_seconds > 0 ? dedup_off_seconds / dedup_on_seconds
                                     : 0.0);
  }
  json.key("dedup");
  json.begin_object();
  json.kv("duplicate_jobs", duplicates);
  json.kv("wall_seconds_on", dedup_on_seconds);
  json.kv("wall_seconds_off", dedup_off_seconds);
  json.kv("speedup", dedup_on_seconds > 0
                         ? dedup_off_seconds / dedup_on_seconds
                         : 0.0);
  json.end_object();
  json.kv("deterministic", failures == 0);
  json.end_object();
  if (harness::write_text_file("BENCH_batch.json", json.str())) {
    std::printf("# summary written to BENCH_batch.json\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bddmin::bench

int main() { return bddmin::bench::run(); }
