/// \file bench_batch.cpp
/// \brief Batch engine on the Table 3 workload: harvest every unfiltered
/// frontier-minimization call into a job set, run it through the engine
/// at 1/2/4/8 threads, verify the deterministic CSVs are byte-identical,
/// and report the wall-clock scaling.
///
/// The speedup column reflects the host: per-job work is genuinely
/// parallel (each worker owns a private Manager), so on a multi-core
/// machine the engine approaches linear scaling, while on a single
/// hardware thread all counts collapse to ~1x.  Determinism is asserted
/// unconditionally — the CSV never depends on the thread count.
///
/// BENCH_batch.json (schema_version 3) separates the two kinds of data:
/// thread-invariant counters (cache hits/misses, governor steps,
/// peak_live, job tallies) are *asserted* equal across thread counts and
/// emitted once at top level, while each per-thread run object carries
/// only what actually varies — wall time, speedup, p50/p90/p99 job
/// latency, per-worker busy/steal/sink/idle fractions and steal stats —
/// the before/after baseline ROADMAP item 1's scaling fix needs.
///
/// Schema 3 adds the shard-scheduling comparison: the same job set run
/// unsharded vs sharded (engine::kDefaultShardCost) at 1/2/8 threads,
/// asserting the deterministic CSV is byte-identical across the whole
/// matrix, and recording per mode the wall time, scheduler-overhead
/// fraction (1 - summed heuristic seconds / summed busy seconds),
/// computed-cache hit rate (cross-job reuse shows up here), shard stats
/// and warm/cold manager-acquisition counts.  `--heavy` appends a
/// heavy-tier section over workload::heavy_tier_jobs (>= 30k jobs).
///
/// Exit status: 0 on success, 1 on CSV divergence, failed jobs, or a
/// thread-variant "invariant" counter.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/collect.hpp"
#include "engine/engine.hpp"
#include "engine/shard.hpp"
#include "experiment_common.hpp"
#include "fsm/equiv.hpp"
#include "harness/csv.hpp"
#include "harness/json.hpp"
#include "workload/generators.hpp"

namespace bddmin::bench {
namespace {

/// Same traversals as run_workload(), but with the JobCollector on the
/// minimize seam instead of the inline interceptor.
///
/// Each traversal is harvested under two image methods.  The reachability
/// fixpoint — and with it the frontier [f, c] sequence arriving at the
/// minimize seam — does not depend on how images are computed, so the
/// second method re-emits the frontier instances with byte-identical
/// payloads under fresh names.  That is exactly the duplicate shape a
/// verification fleet produces when different pipelines process the same
/// designs, and it is what the engine's payload dedup is measured against
/// below.
std::vector<engine::Job> harvest_jobs() {
  engine::JobCollector collector;
  const fsm::ImageMethod methods[] = {fsm::ImageMethod::kFunctional,
                                      fsm::ImageMethod::kClustered};
  for (const fsm::ImageMethod method : methods) {
    const char* const tag =
        method == fsm::ImageMethod::kFunctional ? "@fn" : "@cl";
    fsm::EquivOptions opts;
    opts.image_method = method;
    opts.minimize = collector.hook();
    for (const auto& [a, b] : workload_pairs()) {
      collector.set_label(
          (a.name == b.name ? a.name : a.name + "+" + b.name) + tag);
      (void)fsm::check_equivalence(a, b, opts);
    }
    for (const fsm::MachineSpec& spec : reach_workload_machines()) {
      collector.set_label("reach_" + spec.name + tag);
      Manager mgr(spec.num_inputs + 2 * spec.num_state_bits, 15);
      std::vector<std::uint32_t> in(spec.num_inputs);
      for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
      std::vector<std::uint32_t> st;
      std::vector<std::uint32_t> nx;
      for (unsigned k = 0; k < spec.num_state_bits; ++k) {
        st.push_back(spec.num_inputs + 2 * k);
        nx.push_back(spec.num_inputs + 2 * k + 1);
      }
      const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
      fsm::ReachOptions ropts;
      ropts.image_method = method;
      ropts.minimize = collector.hook();
      (void)fsm::reachable_states(mgr, sym, nx, ropts);
    }
  }
  std::printf("# harvested %zu jobs (%zu trivial calls filtered)\n",
              collector.jobs().size(), collector.filtered_calls());
  return collector.take();
}

/// The counter fields that must not depend on the thread count (the
/// per-job counters are deterministic, so their batch sums are too).
struct InvariantCounters {
  std::size_t ok = 0;
  std::size_t duplicate_jobs = 0;
  std::size_t peak_live = 0;
  telemetry::CounterSnapshot counters;

  [[nodiscard]] bool operator==(const InvariantCounters&) const = default;
};

InvariantCounters invariants_of(const engine::BatchReport& report) {
  InvariantCounters inv;
  inv.ok = report.count(engine::JobStatus::kOk);
  inv.duplicate_jobs = report.duplicate_jobs;
  for (const engine::JobOutcome& o : report.outcomes) {
    // Worst single-job live-node footprint: the quota a resource-governed
    // rerun of this workload would need to finish untripped.
    inv.peak_live = std::max(inv.peak_live, o.peak_live);
    inv.counters += o.counters;
  }
  return inv;
}

/// Scheduler-overhead fraction of one run: the share of worker busy time
/// *not* spent inside a heuristic (decode, manager reset, governor
/// rebaseline, validation, delivery).  Warm in-shard reuse attacks
/// exactly this number.
double overhead_fraction(const engine::BatchReport& report) {
  double heuristic_seconds = 0.0;
  for (const engine::JobOutcome& o : report.outcomes) {
    for (const engine::HeuristicResult& r : o.results) {
      heuristic_seconds += r.seconds;
    }
  }
  double busy_seconds = 0.0;
  for (const engine::WorkerUtilization& u : report.metrics.workers) {
    busy_seconds += u.busy_seconds;
  }
  return busy_seconds > 0.0
             ? std::max(0.0, 1.0 - heuristic_seconds / busy_seconds)
             : 0.0;
}

/// Batch-summed computed-cache hit rate — with warm in-shard reuse the
/// cache carries across jobs, so cross-job reuse lifts this rate.
double cache_hit_rate(const engine::BatchReport& report) {
  telemetry::CounterSnapshot sum;
  for (const engine::JobOutcome& o : report.outcomes) sum += o.counters;
  const std::uint64_t hits = sum.total_cache_hits();
  const std::uint64_t misses = sum.total_cache_misses();
  return hits + misses ? static_cast<double>(hits) / (hits + misses) : 0.0;
}

///// One sharded-vs-unsharded comparison run: emit the mode's JSON object
/// and check its deterministic CSV against \p baseline_csv (empty = set
/// it).  Returns the wall seconds.
double shard_mode_run(harness::JsonWriter& json,
                      const std::vector<engine::Job>& jobs, unsigned threads,
                      std::uint64_t shard_cost, unsigned lower_bound_cubes,
                      std::string* baseline_csv, int* failures) {
  engine::EngineOptions opts;
  opts.num_threads = threads;
  opts.shard_cost = shard_cost;
  opts.lower_bound_cubes = lower_bound_cubes;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  const std::string csv = engine::report_csv(report);
  if (baseline_csv->empty()) {
    *baseline_csv = csv;
  } else if (csv != *baseline_csv) {
    std::printf("!! CSV diverges at %u threads, shard_cost=%llu\n", threads,
                static_cast<unsigned long long>(shard_cost));
    ++*failures;
  }
  const engine::BatchMetrics& m = report.metrics;
  json.begin_object();
  json.kv("threads", threads);
  json.kv("sharded", shard_cost > 0);
  json.kv("wall_seconds", report.wall_seconds);
  json.kv("overhead_fraction", overhead_fraction(report));
  json.kv("cache_hit_rate", cache_hit_rate(report));
  json.kv("shards", m.shards);
  json.kv("warm_jobs", m.warm_jobs);
  json.kv("cold_jobs", m.cold_jobs);
  json.kv("shard_jobs_p50", m.shard_jobs.quantile(0.50));
  json.kv("shard_jobs_max", m.shard_jobs.max_bound());
  json.end_object();
  return report.wall_seconds;
}

int run(bool heavy) {
  const std::vector<engine::Job> jobs = harvest_jobs();
  if (jobs.empty()) {
    std::printf("no jobs harvested\n");
    return 1;
  }

  int failures = 0;
  std::string baseline;
  double base_seconds = 0.0;
  InvariantCounters inv;
  harness::JsonWriter json;
  json.begin_object();
  json.kv("bench", "batch");
  json.kv("schema_version", 3);
  json.kv("jobs", jobs.size());
  json.kv("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.key("runs");
  json.begin_array();
  std::printf("# %7s %10s %9s %4s %8s %8s %7s %7s\n", "threads", "wall[s]",
              "speedup", "ok", "p50[ms]", "p99[ms]", "busy", "steal%");
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    engine::EngineOptions opts;
    opts.num_threads = threads;
    opts.lower_bound_cubes = 500;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    const InvariantCounters this_inv = invariants_of(report);
    if (this_inv.ok != jobs.size()) ++failures;
    const std::string csv = engine::report_csv(report);
    if (baseline.empty()) {
      baseline = csv;
      base_seconds = report.wall_seconds;
      inv = this_inv;
    } else {
      if (csv != baseline) {
        std::printf("!! CSV at %u threads diverges from the 1-thread report\n",
                    threads);
        ++failures;
      }
      // The determinism contract, checked instead of silently copied:
      // counter sums must not depend on the thread count.
      if (this_inv != inv) {
        std::printf("!! counters at %u threads diverge from the 1-thread "
                    "run (schema top-level fields are unsound)\n",
                    threads);
        ++failures;
      }
    }
    // The distribution-and-timeline block this PR adds: latency
    // percentiles, per-worker utilization and steal stats — wall-clock
    // data, legitimately different at every thread count.
    const engine::BatchMetrics& m = report.metrics;
    double busy_total = 0.0;
    for (const engine::WorkerUtilization& u : m.workers) {
      busy_total += u.busy_seconds;
    }
    const double wall = report.wall_seconds;
    const double busy_frac =
        wall > 0.0 ? busy_total / (wall * threads) : 0.0;
    const double steal_rate =
        m.steal_attempts > 0
            ? static_cast<double>(m.steals) /
                  static_cast<double>(m.steal_attempts)
            : 0.0;
    json.begin_object();
    json.kv("threads", threads);
    json.kv("wall_seconds", wall);
    json.kv("speedup", wall > 0 ? base_seconds / wall : 0.0);
    json.key("job_latency_ns").begin_object();
    json.kv("p50", m.job_latency_ns.quantile(0.50));
    json.kv("p90", m.job_latency_ns.quantile(0.90));
    json.kv("p99", m.job_latency_ns.quantile(0.99));
    json.kv("max", m.job_latency_ns.max_bound());
    json.kv("mean", m.job_latency_ns.mean());
    json.end_object();
    json.key("queue_depth").begin_object();
    json.kv("p50", m.queue_depth.quantile(0.50));
    json.kv("max", m.queue_depth.max_bound());
    json.kv("samples", m.queue_depth.count);
    json.end_object();
    json.kv("busy_fraction", busy_frac);
    json.kv("steal_attempts", m.steal_attempts);
    json.kv("steals", m.steals);
    json.kv("steal_success_rate", steal_rate);
    json.key("workers").begin_array();
    for (const engine::WorkerUtilization& u : m.workers) {
      json.begin_object();
      json.kv("worker", u.worker);
      json.kv("busy_fraction", wall > 0 ? u.busy_seconds / wall : 0.0);
      json.kv("steal_fraction", wall > 0 ? u.steal_seconds / wall : 0.0);
      json.kv("sink_fraction", wall > 0 ? u.sink_seconds / wall : 0.0);
      json.kv("idle_fraction", wall > 0 ? u.idle_seconds / wall : 0.0);
      json.kv("jobs", u.jobs);
      json.kv("steals", u.steals);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("  %7u %10.3f %8.2fx %4zu %8.2f %8.2f %6.1f%% %6.1f%%\n",
                threads, wall, wall > 0 ? base_seconds / wall : 0.0,
                this_inv.ok,
                static_cast<double>(m.job_latency_ns.quantile(0.50)) / 1e6,
                static_cast<double>(m.job_latency_ns.quantile(0.99)) / 1e6,
                busy_frac * 100.0, steal_rate * 100.0);
    std::fflush(stdout);
  }
  std::printf("# deterministic report: %s\n",
              failures == 0 ? "byte-identical across all thread counts"
                            : "DIVERGED");
  json.end_array();
  // The asserted-invariant counters, once (schema_version 2): every
  // per-thread run above produced exactly these sums.
  const auto rate = [](std::uint64_t hit, std::uint64_t miss) {
    return hit + miss ? static_cast<double>(hit) / (hit + miss) : 0.0;
  };
  const std::uint64_t hits = inv.counters.total_cache_hits();
  const std::uint64_t misses = inv.counters.total_cache_misses();
  const std::uint64_t and_hits =
      inv.counters.value(telemetry::Counter::kAndCacheHits);
  const std::uint64_t and_misses =
      inv.counters.value(telemetry::Counter::kAndCacheMisses);
  const std::uint64_t xor_hits =
      inv.counters.value(telemetry::Counter::kXorCacheHits);
  const std::uint64_t xor_misses =
      inv.counters.value(telemetry::Counter::kXorCacheMisses);
  json.key("invariant_counters");
  json.begin_object();
  json.kv("ok", inv.ok);
  json.kv("duplicate_jobs", inv.duplicate_jobs);
  json.kv("peak_live", inv.peak_live);
  json.kv("cache_hits", hits);
  json.kv("cache_misses", misses);
  json.kv("cache_hit_rate", rate(hits, misses));
  json.kv("and_cache_hits", and_hits);
  json.kv("and_cache_misses", and_misses);
  json.kv("and_cache_hit_rate", rate(and_hits, and_misses));
  json.kv("xor_cache_hits", xor_hits);
  json.kv("xor_cache_misses", xor_misses);
  json.kv("xor_cache_hit_rate", rate(xor_hits, xor_misses));
  json.kv("steps", inv.counters.value(telemetry::Counter::kGovernorSteps));
  json.end_object();

  // Dedup on/off comparison at a fixed thread count: harvested frontier
  // calls repeat across traversal steps, so duplicates are real here.
  // The deterministic CSV must not depend on the switch.
  double dedup_on_seconds = 0.0;
  double dedup_off_seconds = 0.0;
  std::size_t duplicates = 0;
  {
    engine::EngineOptions opts;
    opts.num_threads = 4;
    opts.lower_bound_cubes = 500;
    const engine::BatchReport with_dedup = engine::run_batch(jobs, opts);
    opts.dedup_jobs = false;
    const engine::BatchReport without = engine::run_batch(jobs, opts);
    dedup_on_seconds = with_dedup.wall_seconds;
    dedup_off_seconds = without.wall_seconds;
    duplicates = with_dedup.duplicate_jobs;
    if (engine::report_csv(with_dedup) != engine::report_csv(without)) {
      std::printf("!! dedup changed the deterministic report\n");
      ++failures;
    }
    if (engine::report_csv(with_dedup) != baseline) {
      std::printf("!! dedup-comparison report diverges from the baseline\n");
      ++failures;
    }
    std::printf("# dedup: %zu/%zu duplicate payloads, wall %0.3fs on / "
                "%0.3fs off (%.2fx)\n",
                duplicates, jobs.size(), dedup_on_seconds, dedup_off_seconds,
                dedup_on_seconds > 0 ? dedup_off_seconds / dedup_on_seconds
                                     : 0.0);
  }
  json.key("dedup");
  json.begin_object();
  json.kv("duplicate_jobs", duplicates);
  json.kv("wall_seconds_on", dedup_on_seconds);
  json.kv("wall_seconds_off", dedup_off_seconds);
  json.kv("speedup", dedup_on_seconds > 0
                         ? dedup_off_seconds / dedup_on_seconds
                         : 0.0);
  json.end_object();

  // Sharded-vs-unsharded matrix: {1, 2, 8} threads x {off, default
  // budget}, deterministic CSV asserted byte-identical across all six
  // runs.  The headline number is the 1-thread wall improvement —
  // exactly what warm in-shard manager reuse buys on a host with one
  // hardware thread, where extra workers cannot help.
  double shard_off_1t = 0.0;
  double shard_on_1t = 0.0;
  {
    std::string shard_baseline;
    json.key("sharding");
    json.begin_object();
    json.kv("shard_cost_budget", engine::kDefaultShardCost);
    json.key("runs");
    json.begin_array();
    std::printf("# %7s %8s %10s\n", "threads", "sharded", "wall[s]");
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const bool sharded : {false, true}) {
        const double wall = shard_mode_run(
            json, jobs, threads,
            sharded ? engine::kDefaultShardCost : std::uint64_t{0},
            /*lower_bound_cubes=*/500, &shard_baseline, &failures);
        if (threads == 1 && !sharded) shard_off_1t = wall;
        if (threads == 1 && sharded) shard_on_1t = wall;
        std::printf("  %7u %8s %10.3f\n", threads, sharded ? "on" : "off",
                    wall);
        std::fflush(stdout);
      }
    }
    json.end_array();
    json.kv("wall_seconds_unsharded_1t", shard_off_1t);
    json.kv("wall_seconds_sharded_1t", shard_on_1t);
    json.kv("single_thread_improvement",
            shard_off_1t > 0.0 ? 1.0 - shard_on_1t / shard_off_1t : 0.0);
    json.end_object();
    std::printf("# sharding: 1-thread wall %0.3fs off / %0.3fs on "
                "(%.1f%% improvement)\n",
                shard_off_1t, shard_on_1t,
                shard_off_1t > 0.0
                    ? (1.0 - shard_on_1t / shard_off_1t) * 100.0
                    : 0.0);
  }

  // Heavy tier (--heavy): the scaled-up parameterized stream, >= 30k
  // jobs dominated by cheap payloads — the regime where per-job fixed
  // cost is the bottleneck and sharding matters most.
  if (heavy) {
    const std::vector<engine::Job> heavy_jobs =
        workload::heavy_tier_jobs(/*scale=*/50, /*seed=*/0x5eed);
    std::printf("# heavy tier: %zu jobs\n", heavy_jobs.size());
    std::string heavy_baseline;
    json.key("heavy");
    json.begin_object();
    json.kv("jobs", heavy_jobs.size());
    json.kv("scale", 50);
    json.key("runs");
    json.begin_array();
    double heavy_off = 0.0;
    double heavy_on = 0.0;
    for (const bool sharded : {false, true}) {
      const double wall = shard_mode_run(
          json, heavy_jobs, /*threads=*/1,
          sharded ? engine::kDefaultShardCost : std::uint64_t{0},
          /*lower_bound_cubes=*/0, &heavy_baseline, &failures);
      (sharded ? heavy_on : heavy_off) = wall;
      std::printf("# heavy 1-thread shard %s: %.3fs\n",
                  sharded ? "on" : "off", wall);
      std::fflush(stdout);
    }
    json.end_array();
    json.kv("single_thread_improvement",
            heavy_off > 0.0 ? 1.0 - heavy_on / heavy_off : 0.0);
    json.end_object();
  }
  json.kv("deterministic", failures == 0);
  json.end_object();
  if (harness::write_text_file("BENCH_batch.json", json.str())) {
    std::printf("# summary written to BENCH_batch.json\n");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bddmin::bench

int main(int argc, char** argv) {
  bool heavy = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--heavy") == 0) heavy = true;
  }
  return bddmin::bench::run(heavy);
}
