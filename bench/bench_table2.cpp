/// \file bench_table2.cpp
/// \brief Reproduces Table 2: the 12 (criterion, match-compl, no-new-vars)
/// parameter combinations of the generic sibling matcher, and which of
/// them coincide (1=3, 2=4, 9=10, 11=12), established empirically by
/// comparing outputs over thousands of random instances.
#include <cstdio>
#include <random>
#include <vector>

#include "bdd/truth_table.hpp"
#include "minimize/sibling.hpp"

int main() {
  using namespace bddmin;
  using minimize::Criterion;
  using minimize::SiblingOptions;

  struct Row {
    int number;
    SiblingOptions opts;
    const char* name;
  };
  const std::vector<Row> rows{
      {1, {Criterion::kOsdm, false, false}, "constrain"},
      {2, {Criterion::kOsdm, false, true}, "restrict"},
      {3, {Criterion::kOsdm, true, false}, "same as 1"},
      {4, {Criterion::kOsdm, true, true}, "same as 2"},
      {5, {Criterion::kOsm, false, false}, "osm_td"},
      {6, {Criterion::kOsm, false, true}, "osm_nv"},
      {7, {Criterion::kOsm, true, false}, "osm_cp"},
      {8, {Criterion::kOsm, true, true}, "osm_bt"},
      {9, {Criterion::kTsm, false, false}, "tsm_td"},
      {10, {Criterion::kTsm, false, true}, "same as 9"},
      {11, {Criterion::kTsm, true, false}, "tsm_cp"},
      {12, {Criterion::kTsm, true, true}, "same as 11"},
  };

  Manager mgr(6);
  std::mt19937_64 rng(4094);
  constexpr int kRounds = 1500;
  // equal[i][j] = do rows i and j produce identical covers on every
  // instance tried?
  std::vector<std::vector<bool>> equal(rows.size(),
                                       std::vector<bool>(rows.size(), true));
  for (int round = 0; round < kRounds; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 6);
    std::vector<Edge> results;
    results.reserve(rows.size());
    for (const Row& row : rows) {
      results.push_back(minimize::generic_td(mgr, row.opts, f, c));
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = 0; j < rows.size(); ++j) {
        if (results[i] != results[j]) equal[i][j] = false;
      }
    }
    if (round % 200 == 0) mgr.garbage_collect();
  }

  std::printf("=== Table 2 reproduction: sibling-match heuristics "
              "(%d random 6-var instances) ===\n\n",
              kRounds);
  std::printf("%3s %-6s %-12s %-12s %-12s %s\n", "#", "crit", "match-compl",
              "no-new-vars", "name", "identical-to");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::string same;
    for (std::size_t j = 0; j < i; ++j) {
      if (equal[i][j]) same += std::to_string(rows[j].number) + " ";
    }
    std::printf("%3d %-6s %-12s %-12s %-12s %s\n", rows[i].number,
                std::string(minimize::to_string(rows[i].opts.criterion)).c_str(),
                rows[i].opts.match_complement ? "yes" : "no",
                rows[i].opts.no_new_vars ? "yes" : "no", rows[i].name,
                same.empty() ? "-" : same.c_str());
  }
  std::printf("\nexpected (paper): 3=1, 4=2, 10=9, 12=11 and no other "
              "coincidences\n");

  // Machine-check the paper's claims and report a verdict.
  const bool dup_ok = equal[2][0] && equal[3][1] && equal[9][8] && equal[11][10];
  bool distinct_ok = true;
  const std::size_t uniques[] = {0, 1, 4, 5, 6, 7, 8, 10};
  for (const std::size_t i : uniques) {
    for (const std::size_t j : uniques) {
      if (i < j && equal[i][j]) distinct_ok = false;
    }
  }
  std::printf("duplicates as claimed: %s; eight distinct heuristics: %s\n",
              dup_ok ? "yes" : "NO", distinct_ok ? "yes" : "NO");
  return dup_ok && distinct_ok ? 0 : 1;
}
