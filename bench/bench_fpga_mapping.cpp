/// \file bench_fpga_mapping.cpp
/// \brief Extension experiment: the paper's FPGA-mapping motivation,
/// quantified.  For every builtin PLA circuit and every heuristic we
/// report the total BDD size of all output covers (the MUX cell count),
/// and ablate the interaction with variable reordering: minimization
/// only, sifting only, and both.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "minimize/registry.hpp"
#include "pla/pla.hpp"

int main() {
  using namespace bddmin;
  std::printf("=== FPGA mapping study (Section 1, application 3) ===\n\n");

  const auto heuristics = minimize::paper_heuristics();
  for (const auto& [name, text] : pla::builtin_pla_sources()) {
    const pla::Pla circuit = pla::parse_pla(text, name);
    Manager mgr(circuit.num_inputs);
    std::vector<std::uint32_t> vars(circuit.num_inputs);
    std::iota(vars.begin(), vars.end(), 0u);
    const auto specs = pla::output_functions(mgr, circuit, vars);

    std::vector<Bdd> pins;  // keep f and c alive through GC/sifting
    std::vector<Edge> full_roots;
    for (const auto& spec : specs) {
      pins.emplace_back(mgr, spec.f);
      pins.emplace_back(mgr, spec.c);
      full_roots.push_back(spec.f);
    }
    std::printf("%-16s (%u in, %u out): unminimized forest = %zu nodes\n",
                name.c_str(), circuit.num_inputs, circuit.num_outputs,
                count_nodes(mgr, full_roots));

    std::printf("  %-8s %14s %14s\n", "heur", "forest(nodes)", "+sift(nodes)");
    for (const minimize::Heuristic& h : heuristics) {
      std::vector<Bdd> covers;
      std::vector<Edge> roots;
      for (const auto& spec : specs) {
        covers.emplace_back(mgr, h.run(mgr, spec.f, spec.c));
        roots.push_back(covers.back().edge());
      }
      const std::size_t plain = count_nodes(mgr, roots);
      mgr.reorder_sift();
      const std::size_t sifted = count_nodes(mgr, roots);
      std::printf("  %-8s %14zu %14zu\n", h.name.c_str(), plain, sifted);
      // Restore the natural order so heuristics start from equal footing.
      std::vector<std::uint32_t> identity(circuit.num_inputs);
      std::iota(identity.begin(), identity.end(), 0u);
      mgr.set_order(identity);
      mgr.garbage_collect();
    }
    // Sifting alone, without touching the don't cares.
    mgr.reorder_sift();
    std::printf("  %-8s %14zu %14s\n", "sift-only", count_nodes(mgr, full_roots),
                "-");
    std::printf("\n");
  }
  return 0;
}
