#include "engine/job.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "analysis/failpoint.hpp"
#include "bdd/io.hpp"
#include "bdd/truth_table.hpp"
#include "workload/instances.hpp"

namespace bddmin::engine {

Job make_job(Manager& mgr, std::string name, minimize::IncSpec spec) {
  Job job;
  job.name = std::move(name);
  job.num_vars = mgr.num_vars();
  if (job.num_vars <= kMaxTtVars) {
    job.kind = PayloadKind::kTruthTable;
    job.f_tt = to_tt(mgr, spec.f, job.num_vars);
    job.c_tt = to_tt(mgr, spec.c, job.num_vars);
  } else {
    job.kind = PayloadKind::kForest;
    const Edge roots[] = {spec.f, spec.c};
    job.forest = serialize(mgr, roots);
  }
  return job;
}

Job make_tt_job(std::string name, std::uint64_t f_tt, std::uint64_t c_tt,
                unsigned n) {
  if (n > kMaxTtVars) {
    throw std::invalid_argument("make_tt_job: more than kMaxTtVars variables");
  }
  Job job;
  job.name = std::move(name);
  job.num_vars = n;
  job.kind = PayloadKind::kTruthTable;
  job.f_tt = f_tt & tt_mask(n);
  job.c_tt = c_tt & tt_mask(n);
  return job;
}

minimize::IncSpec decode_job(Manager& mgr, const Job& job,
                             DecodeScratch& scratch) {
  if (BDDMIN_FAILPOINT("job_decode_corrupt")) {
    throw std::invalid_argument(
        "decode_job: payload failed integrity check (injected)");
  }
  if (mgr.num_vars() < job.num_vars) {
    throw std::invalid_argument("decode_job: manager has too few variables");
  }
  if (job.kind == PayloadKind::kTruthTable) {
    if (job.num_vars > kMaxTtVars) {
      throw std::invalid_argument("decode_job: truth-table payload too wide");
    }
    return {from_tt(mgr, job.f_tt, job.num_vars),
            from_tt(mgr, job.c_tt, job.num_vars)};
  }
  deserialize_into(mgr, job.forest, &scratch.nodes, &scratch.roots);
  if (scratch.roots.size() != 2) {
    throw std::invalid_argument("decode_job: payload must have roots {f, c}");
  }
  return {scratch.roots[0], scratch.roots[1]};
}

minimize::IncSpec decode_job(Manager& mgr, const Job& job) {
  DecodeScratch scratch;
  return decode_job(mgr, job, scratch);
}

std::vector<Job> random_jobs(unsigned count, unsigned num_vars,
                             double c_density, std::uint64_t seed) {
  std::vector<Job> jobs;
  jobs.reserve(count);
  Manager mgr(num_vars, /*cache_log2=*/14);
  for (unsigned k = 0; k < count; ++k) {
    const std::uint64_t job_seed = seed + k;
    const minimize::IncSpec spec =
        workload::random_instance(mgr, num_vars, c_density, job_seed);
    jobs.push_back(make_job(
        mgr, "rand" + std::to_string(k) + "_s" + std::to_string(job_seed),
        spec));
    // The scratch manager only ferries one instance at a time.
    mgr.garbage_collect();
  }
  return jobs;
}

std::vector<Job> pla_jobs(const pla::Pla& pla) {
  Manager mgr(pla.num_inputs, /*cache_log2=*/14);
  std::vector<std::uint32_t> vars(pla.num_inputs);
  std::iota(vars.begin(), vars.end(), 0u);
  const std::vector<minimize::IncSpec> specs =
      pla::output_functions(mgr, pla, vars);
  std::vector<Job> jobs;
  jobs.reserve(specs.size());
  for (unsigned j = 0; j < specs.size(); ++j) {
    std::string name = pla.name;
    name += '/';
    if (j < pla.output_labels.size()) {
      name += pla.output_labels[j];
    } else {
      name += 'o';
      name += std::to_string(j);
    }
    jobs.push_back(make_job(mgr, std::move(name), specs[j]));
  }
  return jobs;
}

}  // namespace bddmin::engine
