#include "engine/flight.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "telemetry/trace.hpp"

namespace bddmin::engine {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Thread-local fatal-dump registration (see set_thread_flight_recorder).
struct ThreadFlight {
  FlightRecorder* rec = nullptr;
  unsigned worker = 0;
  const std::string* dump_path = nullptr;
};
thread_local ThreadFlight t_flight;

}  // namespace

const char* flight_event_name(FlightEventType t) noexcept {
  switch (t) {
    case FlightEventType::kJobStart: return "job_start";
    case FlightEventType::kJobFinish: return "job_finish";
    case FlightEventType::kSteal: return "steal";
    case FlightEventType::kRetry: return "retry";
    case FlightEventType::kQuarantine: return "quarantine";
    case FlightEventType::kFailpoint: return "failpoint";
  }
  return "?";
}

void FlightRecorder::record(FlightEventType type, std::uint32_t job,
                            std::uint16_t attempt,
                            std::uint8_t code) noexcept {
  FlightEvent& slot = ring_[total_ % kCapacity];
  slot.ts_ns = steady_now_ns();
  slot.job = job;
  slot.attempt = attempt;
  slot.type = type;
  slot.code = code;
  ++total_;
}

void FlightRecorder::dump(std::string* out, unsigned worker,
                          const char* reason) const {
  char line[160];
  std::snprintf(line, sizeof line,
                "=== bddmin flight recorder: worker %u (reason: %s, %llu "
                "events, last %zu) ===\n",
                worker, reason,
                static_cast<unsigned long long>(total_),
                std::min<std::size_t>(total_, kCapacity));
  *out += line;
  const std::size_t kept = std::min<std::size_t>(total_, kCapacity);
  const std::size_t first = total_ - kept;  // index of oldest retained event
  std::uint64_t epoch = 0;
  if (kept > 0) epoch = ring_[first % kCapacity].ts_ns;
  for (std::size_t i = first; i < total_; ++i) {
    const FlightEvent& ev = ring_[i % kCapacity];
    const double rel =
        static_cast<double>(ev.ts_ns - epoch) / 1e9;  // monotone within ring
    std::snprintf(line, sizeof line,
                  "  +%11.6fs %-10s job=%u attempt=%u code=%u\n", rel,
                  flight_event_name(ev.type), ev.job, ev.attempt, ev.code);
    *out += line;
  }
  *out += "=== end flight recorder ===\n";
}

void flight_write_dump(const std::string& text, const std::string& path) {
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
  if (!path.empty()) {
    if (std::FILE* f = std::fopen(path.c_str(), "a")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    }
  }
  telemetry::trace_instant("flight_dump", "engine");
}

void set_thread_flight_recorder(FlightRecorder* rec, unsigned worker,
                                const std::string* dump_path) noexcept {
  t_flight.rec = rec;
  t_flight.worker = worker;
  t_flight.dump_path = dump_path;
}

void flight_fatal_dump(const char* reason) {
  if (t_flight.rec == nullptr) return;
  std::string text;
  t_flight.rec->dump(&text, t_flight.worker, reason);
  flight_write_dump(text,
                    t_flight.dump_path != nullptr ? *t_flight.dump_path : "");
}

}  // namespace bddmin::engine
