/// \file shard.hpp
/// \brief Deterministic job-size-aware shard packing for the batch engine.
///
/// BENCH_batch.json's flat scaling curve (ROADMAP item 1) is a
/// granularity problem: the harvested Table-3 jobs run ~300µs at p50,
/// so the per-job fixed costs — Manager::reset(), a stone-cold computed
/// cache, decode allocations, one fsync per journal append, sink/CSV
/// bookkeeping — rival the minimization itself, and the work-stealing
/// deque amplifies them by scheduling every one of those tiny jobs
/// individually.  This header packs the submission stream into
/// **shards**: consecutive runs of jobs whose *estimated* cost adds up
/// to a configurable budget.  The deque then dispatches shard indices,
/// amortizing one scheduling decision (and, in the engine, one manager
/// reset and one journal fsync) over a whole shard.
///
/// The cost model is deliberately crude but **deterministic**: a fixed
/// per-job charge plus the payload's size in bits (truth tables) or
/// serialized bytes (forests).  It never looks at the clock, the thread
/// count or the machine, so the same submission stream packs into the
/// same shards everywhere — the packing is part of the determinism
/// contract, not a scheduling heuristic that may drift between runs.
/// Shards preserve submission order (shard s covers a contiguous range
/// of the run list), which keeps the warm-manager reuse in engine.cpp a
/// pure function of the shard contents.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/job.hpp"

namespace bddmin::engine {

/// Fixed per-job charge in cost units: models the payload-independent
/// overhead (scheduling, decode setup, sink delivery, journal record).
inline constexpr std::uint64_t kJobFixedCost = 64;

/// Hard cap on jobs per shard regardless of how cheap they are, so a
/// stream of thousands of tiny truth-table jobs still yields enough
/// shards for the deques to balance (and a cancel/quota event never has
/// to drain an unbounded run).
inline constexpr std::uint32_t kMaxShardJobs = 256;

/// Default shard budget in cost units (~payload bytes).  A 6-var
/// truth-table job costs kJobFixedCost + 16 = 80 units and harvested
/// Table-3 forest payloads run a few KB, so the default packs tens of
/// jobs per shard — big enough to amortize the per-shard costs, small
/// enough that 8 workers still see plenty of shards to steal from on
/// the 3.6k-job harvested batch.
inline constexpr std::uint64_t kDefaultShardCost = 65536;

/// Estimated cost of one job: kJobFixedCost plus the payload size in
/// bytes — 2 * 2^num_vars / 8 for a truth-table payload (f and c
/// tables), serialized length for a forest payload.  Pure function of
/// the payload; never zero.
[[nodiscard]] std::uint64_t estimate_job_cost(const Job& job) noexcept;

/// One shard: the half-open range [first, first + count) of positions
/// in the *run list* handed to pack_shards (not raw job indices — the
/// engine passes its deduplicated to-run vector and maps back).
struct Shard {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::uint64_t cost = 0;  ///< sum of estimate_job_cost over the range
};

/// The full packing of one submission stream.
struct ShardPlan {
  std::vector<Shard> shards;
  std::uint64_t total_cost = 0;
  std::uint64_t max_shard_cost = 0;
  std::uint32_t max_shard_jobs = 0;

  [[nodiscard]] std::size_t size() const noexcept { return shards.size(); }
};

/// Greedy in-order packing of \p run (positions are indices into
/// \p jobs) into shards of estimated cost <= \p cost_budget.  A shard is
/// closed as soon as adding the next job would exceed the budget — so a
/// single job whose own cost exceeds the budget still gets a (singleton)
/// shard, and every job lands in exactly one shard, in submission order.
/// `cost_budget == 0` disables coalescing: one job per shard, which
/// makes the sharded engine behave exactly like the unsharded one.
/// Deterministic: depends only on (jobs, run, cost_budget).
[[nodiscard]] ShardPlan pack_shards(std::span<const Job> jobs,
                                    const std::vector<std::size_t>& run,
                                    std::uint64_t cost_budget);

}  // namespace bddmin::engine
