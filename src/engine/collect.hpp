/// \file collect.hpp
/// \brief Harvest batch jobs from a live traversal.
///
/// The Table 3/4 experiments intercept every minimization call of an FSM
/// traversal and run all heuristics inline.  The batch engine instead
/// wants those calls as a *job set* it can shard across workers, so the
/// collector plugs into the same MinimizeHook seam, exports each
/// unfiltered [f, c] out of the traversal's manager (engine/job.hpp), and
/// hands the traversal constrain's cover — exactly what verify_fsm would
/// have used, leaving the traversal's trajectory unchanged.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "fsm/reach.hpp"

namespace bddmin::engine {

class JobCollector {
 public:
  /// \p label prefixes job names: "<label>/call<k>".
  explicit JobCollector(std::string label = "call");

  /// Plug into ReachOptions/EquivOptions::minimize.
  [[nodiscard]] fsm::MinimizeHook hook();

  /// Collected jobs in call order (Section 4.1.2-filtered calls excluded).
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::vector<Job> take() { return std::move(jobs_); }
  [[nodiscard]] std::size_t filtered_calls() const noexcept { return filtered_; }

  /// Rename the prefix for subsequent calls (e.g. per traversal phase).
  void set_label(std::string label) { label_ = std::move(label); }

 private:
  std::string label_;
  std::vector<Job> jobs_;
  std::size_t filtered_ = 0;
};

}  // namespace bddmin::engine
