#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/cover_audit.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "engine/queue.hpp"
#include "harness/csv.hpp"
#include "minimize/lower_bound.hpp"

namespace bddmin::engine {
namespace {

using Clock = std::chrono::steady_clock;

/// Submission-order result sink.  Each slot is written exactly once, but
/// the mutex also guards the delivered counter and makes the sink safe to
/// observe (e.g. for progress) while workers run.
class ResultSink {
 public:
  explicit ResultSink(std::size_t num_jobs) : slots_(num_jobs) {}

  void deliver(std::size_t index, JobOutcome outcome) {
    const std::lock_guard<std::mutex> lock(mu_);
    slots_[index] = std::move(outcome);
  }

  [[nodiscard]] std::vector<JobOutcome> take() {
    const std::lock_guard<std::mutex> lock(mu_);
    return std::move(slots_);
  }

 private:
  std::mutex mu_;
  std::vector<JobOutcome> slots_;
};

struct WorkerContext {
  const EngineOptions* opts;
  const std::vector<minimize::Heuristic>* heuristics;
  unsigned worker;
};

[[nodiscard]] bool cancelled(const EngineOptions& opts) {
  return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
}

JobOutcome process_job(const Job& job, const WorkerContext& ctx) {
  const EngineOptions& opts = *ctx.opts;
  const std::vector<minimize::Heuristic>& heuristics = *ctx.heuristics;
  const auto job_start = Clock::now();

  JobOutcome outcome;
  outcome.name = job.name;
  outcome.num_vars = job.num_vars;
  outcome.worker = ctx.worker;
  outcome.results.resize(heuristics.size());
  if (cancelled(opts)) {
    outcome.status = JobStatus::kCancelled;
    return outcome;
  }

  Manager mgr(std::max(job.num_vars, 1u), opts.cache_log2);
  minimize::IncSpec spec;
  try {
    spec = decode_job(mgr, job);
  } catch (const std::exception& e) {
    outcome.status = JobStatus::kError;
    outcome.error = std::string("decode: ") + e.what();
    return outcome;
  }
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  outcome.f_size = count_nodes(mgr, spec.f);
  outcome.c_size = count_nodes(mgr, spec.c);
  outcome.c_onset = minimize::c_onset_fraction(mgr, spec);

  // Covers stay pinned so the end-of-job audit sees live roots.
  std::vector<Bdd> covers;
  covers.reserve(heuristics.size());
  outcome.min_size = SIZE_MAX;
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    if (opts.job_timeout_seconds > 0.0 &&
        std::chrono::duration<double>(Clock::now() - job_start).count() >=
            opts.job_timeout_seconds) {
      outcome.status = JobStatus::kTimeout;
      break;
    }
    if (opts.flush_between) mgr.garbage_collect();
    const auto start = Clock::now();
    Edge g{};
    try {
      g = heuristics[h].run(mgr, spec.f, spec.c);
    } catch (const std::exception& e) {
      outcome.status = JobStatus::kError;
      outcome.error = heuristics[h].name + ": " + e.what();
      break;
    }
    const auto stop = Clock::now();
    covers.emplace_back(mgr, g);
    if (opts.audit_level >= analysis::AuditLevel::kCover) {
      analysis::AuditReport cover_report;
      analysis::audit_cover(mgr, spec.f, spec.c, g, heuristics[h].name,
                            cover_report);
      if (!cover_report.ok()) {
        outcome.status = JobStatus::kError;
        outcome.error = cover_report.findings.front().message;
        outcome.audit_findings += cover_report.findings.size();
        break;
      }
    } else if (opts.validate_covers && !minimize::is_cover(mgr, g, spec)) {
      outcome.status = JobStatus::kError;
      outcome.error = heuristics[h].name + " returned a non-cover";
      break;
    }
    outcome.results[h].size = count_nodes(mgr, g);
    outcome.results[h].seconds =
        std::chrono::duration<double>(stop - start).count();
    outcome.min_size = std::min(outcome.min_size, outcome.results[h].size);
  }
  if (outcome.min_size == SIZE_MAX) outcome.min_size = 0;

  if (outcome.status == JobStatus::kOk &&
      opts.audit_level >= analysis::AuditLevel::kStructural) {
    analysis::AuditOptions aopts;
    aopts.level = std::min(opts.audit_level, analysis::AuditLevel::kCache);
    const analysis::AuditReport report = analysis::audit_manager(mgr, aopts);
    if (!report.ok()) {
      outcome.status = JobStatus::kError;
      outcome.audit_findings += report.findings.size() + report.suppressed;
      outcome.error = "audit: " + report.findings.front().message;
    }
  }
  if (outcome.status == JobStatus::kOk && opts.lower_bound_cubes > 0) {
    const minimize::LowerBoundResult lb = minimize::constrain_lower_bound(
        mgr, spec.f, spec.c, opts.lower_bound_cubes);
    outcome.lower_bound = lb.bound;
  }
  outcome.seconds =
      std::chrono::duration<double>(Clock::now() - job_start).count();
  return outcome;
}

void worker_loop(WorkStealingQueue& queue, std::span<const Job> jobs,
                 ResultSink& sink, const WorkerContext& ctx) {
  std::size_t index = 0;
  while (queue.try_pop(ctx.worker, &index)) {
    sink.deliver(index, process_job(jobs[index], ctx));
  }
}

}  // namespace

const char* job_status_name(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kError: return "error";
  }
  return "?";
}

std::size_t BatchReport::count(JobStatus s) const noexcept {
  std::size_t n = 0;
  for (const JobOutcome& o : outcomes) {
    if (o.status == s) ++n;
  }
  return n;
}

BatchReport run_batch(std::span<const Job> jobs, const EngineOptions& opts) {
  std::vector<minimize::Heuristic> heuristics = opts.heuristics;
  if (heuristics.empty()) {
    heuristics = minimize::all_heuristics();
    if (!opts.heuristic.empty()) {
      heuristics = {minimize::heuristic_by_name(heuristics, opts.heuristic)};
    }
  }

  unsigned threads =
      opts.num_threads ? opts.num_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  threads = std::max(1u, std::min<unsigned>(
                             threads, std::max<std::size_t>(jobs.size(), 1)));

  BatchReport report;
  report.num_threads = threads;
  for (const minimize::Heuristic& h : heuristics) report.names.push_back(h.name);

  const auto start = Clock::now();
  WorkStealingQueue queue(threads);
  for (std::size_t i = 0; i < jobs.size(); ++i) queue.push(i % threads, i);
  ResultSink sink(jobs.size());
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      const WorkerContext ctx{&opts, &heuristics, w};
      worker_loop(queue, jobs, sink, ctx);
    });
  }
  for (std::thread& t : pool) t.join();
  report.outcomes = sink.take();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

std::string report_csv(const BatchReport& report, bool include_timings) {
  std::ostringstream os;
  os << "job,name,vars,status,f_size,c_size,c_onset,min,lower_bound,"
        "audit_findings,error";
  for (const std::string& name : report.names) os << ",size_" << name;
  if (include_timings) {
    for (const std::string& name : report.names) os << ",sec_" << name;
    os << ",job_seconds,worker";
  }
  os << "\n";
  char buf[32];
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const JobOutcome& o = report.outcomes[i];
    std::snprintf(buf, sizeof buf, "%.6f", o.c_onset);
    os << i << ',' << harness::csv_field(o.name) << ',' << o.num_vars << ','
       << job_status_name(o.status) << ',' << o.f_size << ','
       << o.c_size << ',' << buf << ',' << o.min_size << ',' << o.lower_bound
       << ',' << o.audit_findings << ',' << harness::csv_field(o.error);
    for (const HeuristicResult& r : o.results) os << ',' << r.size;
    if (include_timings) {
      for (const HeuristicResult& r : o.results) {
        std::snprintf(buf, sizeof buf, "%.6f", r.seconds);
        os << ',' << buf;
      }
      std::snprintf(buf, sizeof buf, "%.6f", o.seconds);
      os << ',' << buf << ',' << o.worker;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bddmin::engine
