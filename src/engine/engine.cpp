#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "analysis/cover_audit.hpp"
#include "analysis/failpoint.hpp"
#include "analysis/thread_annotations.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "engine/flight.hpp"
#include "engine/journal.hpp"
#include "engine/queue.hpp"
#include "engine/shard.hpp"
#include "harness/csv.hpp"
#include "harness/env.hpp"
#include "minimize/lower_bound.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/trace.hpp"

namespace bddmin::engine {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Clock read for the utilization accounting: compiled down to a constant
/// zero when telemetry is off, so the whole busy/steal/sink bookkeeping
/// folds away and only the plain event counters survive.
[[nodiscard]] std::uint64_t stat_now_ns() {
  if constexpr (telemetry::kHistogramsEnabled) {
    return now_ns();
  } else {
    return 0;
  }
}

/// Sample the run-queue backlog every this many pops per worker — cheap
/// (a handful of relaxed loads) but frequent enough that the depth
/// histogram tracks the drain curve of a thousands-of-jobs batch.
constexpr std::uint64_t kDepthSampleEvery = 16;

/// One worker's time/event accounting, single writer (the worker), read
/// by run_batch after the join.  Padded like WorkerStatus so neighbours
/// never share a line.
struct alignas(64) WorkerStats {
  std::uint64_t busy_ns = 0;   ///< inside job attempts
  std::uint64_t steal_ns = 0;  ///< try_pop time past an own-deque miss
  std::uint64_t sink_ns = 0;   ///< journal append + delivery
  std::uint64_t jobs = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals = 0;
  std::uint64_t pops = 0;  ///< depth-sampler cadence counter
  std::uint64_t warm_jobs = 0;  ///< manager acquisitions that skipped reset()
  std::uint64_t cold_jobs = 0;  ///< manager acquisitions through reset()
};

/// The batch-local histogram set.  Workers record wait-free; run_batch
/// snapshots after the join (deterministically quiescent) into
/// BatchReport::metrics and merges the snapshots into the process-global
/// bank so `bddmin_cli stats` sees them.  No-op objects when telemetry
/// is compiled out.
struct BatchInstruments {
  telemetry::Histogram job_latency;
  telemetry::Histogram job_steps;
  telemetry::Histogram steal_search;
  telemetry::Histogram queue_depth;
  telemetry::Histogram shard_jobs;
  telemetry::Histogram shard_cost;
};

/// Per-worker slot shared with the watchdog thread.  The worker publishes
/// a unique epoch per (job, attempt) — start_ns is stored first, then the
/// epoch with release, so the watchdog (acquire) never pairs a fresh
/// epoch with a stale start time.  To cancel, the watchdog copies the
/// observed epoch into abort_epoch; the governor polls it via
/// attach_abort_signal.  Epoch-tagging makes a stale cancellation aimed
/// at a finished attempt a no-op for its successor.
struct alignas(64) WorkerStatus {
  std::atomic<std::uint64_t> epoch{0};  ///< 0 = idle
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> abort_epoch{0};
  std::uint64_t next_epoch = 0;  ///< worker-private attempt counter
};

/// Cancellation handle for one (job, attempt), threaded through
/// process_job so cooperative points outside the governor's step polling
/// (between heuristics, inside injected hangs) can observe the watchdog.
struct JobControl {
  const std::atomic<std::uint64_t>* abort_signal = nullptr;
  std::uint64_t epoch = 0;

  [[nodiscard]] bool aborted() const noexcept {
    return abort_signal != nullptr &&
           abort_signal->load(std::memory_order_relaxed) == epoch;
  }
};

/// Abort-aware sleep for the injected hang sites: stalls for \p ms but
/// stays cancellable, throwing AbortRequested when the watchdog fires.
void hang_sleep(std::uint64_t ms, const JobControl& control) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
  while (Clock::now() < deadline) {
    if (control.aborted()) {
      throw AbortRequested("watchdog (injected hang)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Submission-order result sink.  Each slot is written exactly once, but
/// the mutex also guards the delivery tallies and makes the sink safe to
/// observe (the progress line) while workers run.
class ResultSink {
 public:
  /// Running delivery tallies, readable mid-batch (the --progress line).
  /// `failed` counts kError only; timeouts and resource limits still
  /// produce usable covers and are not failures.
  struct Progress {
    std::size_t delivered = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t quarantined = 0;
  };

  explicit ResultSink(std::size_t num_jobs) : slots_(num_jobs) {}

  void deliver(std::size_t index, JobOutcome outcome) BDDMIN_EXCLUDES(mu_) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++progress_.delivered;
    switch (outcome.status) {
      case JobStatus::kOk: ++progress_.ok; break;
      case JobStatus::kError: ++progress_.failed; break;
      case JobStatus::kQuarantined: ++progress_.quarantined; break;
      default: break;
    }
    slots_[index] = std::move(outcome);
  }

  [[nodiscard]] Progress progress() BDDMIN_EXCLUDES(mu_) {
    const std::lock_guard<std::mutex> lock(mu_);
    return progress_;
  }

  [[nodiscard]] std::vector<JobOutcome> take() BDDMIN_EXCLUDES(mu_) {
    const std::lock_guard<std::mutex> lock(mu_);
    return std::move(slots_);
  }

 private:
  std::mutex mu_;
  std::vector<JobOutcome> slots_ BDDMIN_GUARDED_BY(mu_);
  Progress progress_ BDDMIN_GUARDED_BY(mu_);
};

struct WorkerContext {
  const EngineOptions* opts;
  const std::vector<minimize::Heuristic>* heuristics;
  const minimize::Heuristic* fallback;  ///< nullptr = no budget retry
  unsigned worker;
  WorkerStatus* status = nullptr;   ///< watchdog slot; nullptr = no watchdog
  JournalWriter* journal = nullptr; ///< completion records; nullptr = off
  WorkerStats* stats = nullptr;            ///< utilization accounting
  FlightRecorder* flight = nullptr;        ///< this worker's event ring
  const std::string* flight_path = nullptr;///< dump destination ("" = stderr only)
  BatchInstruments* instruments = nullptr; ///< batch-local histograms
  const std::vector<std::size_t>* to_run = nullptr;  ///< run list (job indices)
  const ShardPlan* plan = nullptr;  ///< shard ranges over *to_run
  /// True when mid-shard jobs may reuse a warm manager: sharding is on
  /// and no escape hatch (node/step quota, structural audit) is armed.
  bool warm_capable = false;
};

[[nodiscard]] bool cancelled(const EngineOptions& opts) {
  return opts.cancel && opts.cancel->load(std::memory_order_relaxed);
}

/// The per-heuristic budget: quotas from the options, deadline from
/// whatever remains of the job's wall-clock allowance.
[[nodiscard]] ResourceLimits heuristic_budget(const EngineOptions& opts,
                                              Clock::time_point job_start) {
  ResourceLimits budget;
  budget.hard_node_limit = opts.node_limit;
  if (opts.node_limit > 0) {
    budget.soft_node_limit = opts.node_limit - opts.node_limit / 4;
  }
  budget.step_limit = opts.step_limit;
  if (opts.job_timeout_seconds > 0.0) {
    const double remaining =
        opts.job_timeout_seconds -
        std::chrono::duration<double>(Clock::now() - job_start).count();
    budget.deadline_seconds = std::max(remaining, 1e-9);
  }
  return budget;
}

/// Run one heuristic under \p budget; always leaves the governor cleared.
/// On a budget trip the partially built result is reclaimed immediately so
/// the next attempt starts from a compact table.
[[nodiscard]] Edge run_budgeted(Manager& mgr, const minimize::Heuristic& h,
                                const ResourceLimits& budget, Edge f, Edge c) {
  mgr.governor().set_limits(budget);
  try {
    const Edge g = h.run(mgr, f, c);
    mgr.governor().clear();
    return g;
  } catch (...) {
    mgr.governor().clear();
    mgr.garbage_collect();  // partial results are dead nodes; reclaim now
    throw;
  }
}

/// The worker's pooled manager, reset to the fresh terminal-only state for
/// this job; constructed lazily on the first job.  reset() restores
/// construction-time behaviour exactly (see Manager::reset), so pooling is
/// invisible to the determinism contract — only the allocations are reused.
Manager& acquire_manager(std::unique_ptr<Manager>& pool, unsigned num_vars,
                         unsigned cache_log2) {
  if (pool == nullptr) {
    pool = std::make_unique<Manager>(num_vars, cache_log2);
  } else {
    pool->reset(num_vars);
  }
  return *pool;
}

JobOutcome process_job(const Job& job, const WorkerContext& ctx,
                       std::unique_ptr<Manager>& pool,
                       const JobControl& control, bool warm,
                       DecodeScratch& decode_scratch) {
  const EngineOptions& opts = *ctx.opts;
  const std::vector<minimize::Heuristic>& heuristics = *ctx.heuristics;
  const auto job_start = Clock::now();

  JobOutcome outcome;
  outcome.name = job.name;
  outcome.num_vars = job.num_vars;
  outcome.worker = ctx.worker;
  outcome.results.resize(heuristics.size());
  if (cancelled(opts)) {
    outcome.status = JobStatus::kCancelled;
    return outcome;
  }

  // counter_base stays all-zero on the cold path (reset() zeroes the
  // bank), so `telemetry() - counter_base` is a per-job delta either way.
  telemetry::CounterSnapshot counter_base;
  Manager* acquired = nullptr;
  if (warm) {
    // Warm continuation inside a shard: the caller verified the pooled
    // manager exists, matches num_vars and is under the node watermark.
    // The unique table and computed cache carry over from the previous
    // job; only the per-job governor telemetry (steps, peak_live, abort
    // signal) is rebaselined.  Results are unaffected — BDDs are
    // canonical and a cached result *is* the result — the warm state
    // only removes work, which the counter deltas quantify.
    acquired = pool.get();
    acquired->governor().reset_job();
    counter_base = acquired->telemetry();
    ++ctx.stats->warm_jobs;
  } else {
    acquired =
        &acquire_manager(pool, std::max(job.num_vars, 1u), opts.cache_log2);
    ++ctx.stats->cold_jobs;
  }
  Manager& mgr = *acquired;
  // Wire this (job, attempt) to the watchdog: the governor polls the
  // signal on its deadline cadence, so even a single runaway recursion is
  // cancellable.  reset()/reset_job() detached any previous signal.
  if (control.abort_signal != nullptr) {
    mgr.governor().attach_abort_signal(control.abort_signal, control.epoch);
  }
  minimize::IncSpec spec;
  try {
    spec = decode_job(mgr, job, decode_scratch);
  } catch (const AbortRequested& e) {
    outcome.status = JobStatus::kQuarantined;
    outcome.detail = std::string("decode: ") + e.what();
    return outcome;
  } catch (const std::exception& e) {
    outcome.status = JobStatus::kError;
    outcome.error = std::string("decode: ") + e.what();
    return outcome;
  }
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  outcome.f_size = count_nodes(mgr, spec.f);
  outcome.c_size = count_nodes(mgr, spec.c);
  outcome.c_onset = minimize::c_onset_fraction(mgr, spec);

  // Covers stay pinned so the end-of-job audit sees live roots.  `best`
  // tracks the smallest validated cover so far — the degradation target
  // when a later heuristic exhausts its budget; it starts at the trivial
  // cover f, which satisfies f·c <= f <= f + c̄ by construction.
  std::vector<Bdd> covers;
  covers.reserve(heuristics.size());
  Edge best = spec.f;  // kept live by f_pin / the covers vector
  std::size_t best_size = outcome.f_size;
  outcome.min_size = SIZE_MAX;
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    if (opts.job_timeout_seconds > 0.0 &&
        std::chrono::duration<double>(Clock::now() - job_start).count() >=
            opts.job_timeout_seconds) {
      // Preserve a resource-limit verdict from an earlier heuristic.
      if (outcome.status == JobStatus::kOk) outcome.status = JobStatus::kTimeout;
      break;
    }
    if (control.aborted()) {
      // The watchdog fired while we were between heuristics (where no
      // governor poll runs).  Same verdict as an in-flight cancellation.
      outcome.status = JobStatus::kQuarantined;
      if (!outcome.detail.empty()) outcome.detail += "; ";
      outcome.detail += "cancelled by watchdog between heuristics";
      break;
    }
    // A warm job must not flush: garbage_collect() clears the computed
    // cache, which is exactly the state warm reuse exists to keep.  The
    // soft-quota flush can't arise warm (quotas force the cold path).
    if ((opts.flush_between && !warm) || mgr.governor().soft_exceeded()) {
      mgr.garbage_collect();
    }
    const auto start = Clock::now();
    // `best` is only read back on the exception edge; pin it so the abort
    // handler sees the stored value (see pin_for_unwind in governor.hpp).
    // bddmin-lint: allow(R4) -- best always aliases spec.f or a cover, both pinned (f_pin / covers)
    pin_for_unwind(best);
    Edge g{};
    telemetry::PhaseProfile profile;
    auto stop = start;
    {
      // Collector scope: everything from here through validation is
      // attributed to a phase (default cover-build; matching and
      // validation sections switch explicitly).  The `break`s below exit
      // through this block, flushing the tail into `profile`.
      const telemetry::TraceScope span(heuristics[h].name, "heuristic");
      const telemetry::ProfileCollector collect(mgr, &profile);
      try {
        g = run_budgeted(mgr, heuristics[h], heuristic_budget(opts, job_start),
                         spec.f, spec.c);
      } catch (const ResourceExhausted& e) {
        if (e.limit_class() == LimitClass::kCancelled) {
          // Watchdog cancellation is not a budget trip: no degradation,
          // the attempt is over.  The worker retries or quarantines.
          outcome.status = JobStatus::kQuarantined;
          if (!outcome.detail.empty()) outcome.detail += "; ";
          outcome.detail += heuristics[h].name + ": " + e.what();
          break;
        }
        // Graceful degradation: keep the job alive on the best cover so far.
        outcome.status = JobStatus::kResourceLimit;
        if (!outcome.detail.empty()) outcome.detail += "; ";
        outcome.detail += heuristics[h].name + ": " + limit_class_name(e.limit_class());
        g = best;
        if (ctx.fallback != nullptr &&
            ctx.fallback->name != heuristics[h].name) {
          try {
            g = run_budgeted(mgr, *ctx.fallback,
                             heuristic_budget(opts, job_start), spec.f, spec.c);
            outcome.detail += " (retried on " + ctx.fallback->name + ")";
          } catch (const ResourceExhausted& e2) {
            if (e2.limit_class() == LimitClass::kCancelled) {
              outcome.status = JobStatus::kQuarantined;
              outcome.detail += "; " + ctx.fallback->name + ": " + e2.what();
              break;
            }
            outcome.detail += " (retry on " + ctx.fallback->name + ": " +
                              limit_class_name(e2.limit_class()) + ")";
            g = best;
          } catch (const std::exception& e2) {
            outcome.status = JobStatus::kError;
            outcome.error = ctx.fallback->name + ": " + e2.what();
            break;
          }
        }
      } catch (const std::exception& e) {
        outcome.status = JobStatus::kError;
        outcome.error = heuristics[h].name + ": " + e.what();
        break;
      }
      stop = Clock::now();
      covers.emplace_back(mgr, g);
      {
        const telemetry::PhaseScope vphase(telemetry::Phase::kValidation);
        const telemetry::TraceScope vspan("validate", "engine");
        if (opts.audit_level >= analysis::AuditLevel::kCover) {
          analysis::AuditReport cover_report;
          analysis::audit_cover(mgr, spec.f, spec.c, g, heuristics[h].name,
                                cover_report);
          if (!cover_report.ok()) {
            outcome.status = JobStatus::kError;
            outcome.error = cover_report.findings.front().message;
            outcome.audit_findings += cover_report.findings.size();
            break;
          }
        } else if (opts.validate_covers && !minimize::is_cover(mgr, g, spec)) {
          outcome.status = JobStatus::kError;
          outcome.error = heuristics[h].name + " returned a non-cover";
          break;
        }
      }
    }
    outcome.results[h].size = count_nodes(mgr, g);
    outcome.results[h].seconds =
        std::chrono::duration<double>(stop - start).count();
    outcome.results[h].phases = profile;
    outcome.min_size = std::min(outcome.min_size, outcome.results[h].size);
    if (outcome.results[h].size < best_size) {
      best = g;
      best_size = outcome.results[h].size;
    }
  }
  if (outcome.min_size == SIZE_MAX) outcome.min_size = 0;

  // Audit the surviving manager for clean jobs *and* degraded ones — the
  // whole point of the strong abort guarantee is that a budget trip leaves
  // nothing for the auditor to find.
  if ((outcome.status == JobStatus::kOk ||
       outcome.status == JobStatus::kResourceLimit) &&
      opts.audit_level >= analysis::AuditLevel::kStructural) {
    analysis::AuditOptions aopts;
    aopts.level = std::min(opts.audit_level, analysis::AuditLevel::kCache);
    const analysis::AuditReport report = analysis::audit_manager(mgr, aopts);
    if (!report.ok()) {
      outcome.status = JobStatus::kError;
      outcome.audit_findings += report.findings.size() + report.suppressed;
      outcome.error = "audit: " + report.findings.front().message;
    }
  }
  if (outcome.status == JobStatus::kOk && opts.lower_bound_cubes > 0) {
    const minimize::LowerBoundResult lb = minimize::constrain_lower_bound(
        mgr, spec.f, spec.c, opts.lower_bound_cubes);
    outcome.lower_bound = lb.bound;
  }
  outcome.peak_live = mgr.governor().peak_live_nodes();
  outcome.counters = mgr.telemetry() - counter_base;
  telemetry::global().add(outcome.counters);
  outcome.seconds =
      std::chrono::duration<double>(Clock::now() - job_start).count();
  return outcome;
}

/// Transient-failure classification for the retry loop.  Returns the
/// retry_reason label, or "" for outcomes that must not be retried.
/// kError always retries (real transients — a torn pooled manager, an
/// injected corruption — land here; deterministic errors just fail
/// identically `max_retries` more times, keeping attempts deterministic).
/// kResourceLimit retries only for classes that are genuinely transient:
/// an out-of-memory degrade, or a deadline when no job timeout is
/// configured (then the deadline cannot be the caller's own budget).
/// Node/step-limit degrades are deterministic and final.
[[nodiscard]] std::string retry_class(const JobOutcome& outcome,
                                      const EngineOptions& opts) {
  switch (outcome.status) {
    case JobStatus::kError:
      return "error";
    case JobStatus::kQuarantined:
      return "hung";
    case JobStatus::kResourceLimit:
      if (outcome.detail.find("out-of-memory") != std::string::npos) {
        return "out-of-memory";
      }
      if (opts.job_timeout_seconds == 0.0 &&
          outcome.detail.find("deadline") != std::string::npos) {
        return "deadline";
      }
      return "";
    default:
      return "";
  }
}

/// Exponential backoff before retry \p attempt of job \p index:
/// `backoff_ms * 2^(attempt-1)` capped at 10 s, plus a deterministic
/// jitter in [0, backoff_ms) hashed from (index, attempt) — workers
/// retrying the same transient cause (e.g. memory pressure) decorrelate
/// without introducing nondeterminism.
void backoff_sleep(const EngineOptions& opts, std::size_t index,
                   unsigned attempt) {
  if (opts.backoff_ms == 0) return;
  const unsigned shift = std::min(attempt - 1, 16u);
  std::uint64_t delay_ms =
      std::min<std::uint64_t>(std::uint64_t{opts.backoff_ms} << shift, 10'000);
  std::uint64_t h = (static_cast<std::uint64_t>(index) << 32) ^ attempt;
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  delay_ms += (h ^ (h >> 31)) % opts.backoff_ms;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

void worker_loop(WorkStealingQueue& queue, std::span<const Job> jobs,
                 ResultSink& sink, const WorkerContext& ctx) {
  // One pooled Manager per worker, reused across jobs via reset() — and,
  // inside a shard, without it (warm continuation, see process_job).
  std::unique_ptr<Manager> pool;
  WorkerStats& stats = *ctx.stats;
  FlightRecorder& flight = *ctx.flight;
  // Per-worker arenas: reused across every job this worker runs, so the
  // steady-state loop performs no heap allocation for decode buffers or
  // journal records (the VisitScratch idiom, extended to the engine).
  DecodeScratch decode_scratch;
  std::string journal_group;  // buffered C-record lines, one flush per shard
  const bool group_commit =
      ctx.journal != nullptr && ctx.opts->journal_group_commit;
  std::size_t shard_index = 0;
  for (;;) {
    WorkStealingQueue::PopOutcome pop;
    const std::uint64_t pop_start = stat_now_ns();
    const bool got = queue.try_pop(ctx.worker, &shard_index, &pop);
    const std::uint64_t pop_ns = stat_now_ns() - pop_start;
    if (!got) {
      // The exit sweep scanned every deque and found nothing — by
      // definition a failed steal search.
      ++stats.steal_attempts;
      stats.steal_ns += pop_ns;
      ctx.instruments->steal_search.record(pop_ns);
      break;
    }
    const Shard& shard = ctx.plan->shards[shard_index];
    if (pop.stolen) {
      ++stats.steal_attempts;
      ++stats.steals;
      stats.steal_ns += pop_ns;
      ctx.instruments->steal_search.record(pop_ns);
      flight.record(FlightEventType::kSteal,
                    static_cast<std::uint32_t>((*ctx.to_run)[shard.first]), 0,
                    0);
    }
    if constexpr (telemetry::kHistogramsEnabled) {
      if (++stats.pops % kDepthSampleEvery == 0) {
        const std::size_t depth = queue.approx_depth();
        ctx.instruments->queue_depth.record(depth);
        telemetry::trace_counter("queue_depth", "engine", depth);
      }
    }
    // Whether the *next* job in this shard may start warm: the previous
    // job must have completed cleanly first-attempt on this manager.
    // Resets via exceptions (pool dropped), retries and escape hatches
    // all fall back to cold deterministically.
    bool warm_ready = false;
    for (std::uint32_t j = 0; j < shard.count; ++j) {
      const std::size_t index = (*ctx.to_run)[shard.first + j];
      const telemetry::TraceScope span(std::string("job:") + jobs[index].name,
                                       "engine");
      unsigned attempt = 1;
      std::string first_retry_reason;
      for (;;) {
        JobOutcome outcome;
        JobControl control;
        if (ctx.status != nullptr) {
          // Publish this (job, attempt) to the watchdog: start time first,
          // then the epoch with release (see WorkerStatus).
          const std::uint64_t epoch = ++ctx.status->next_epoch;
          ctx.status->start_ns.store(now_ns(), std::memory_order_relaxed);
          ctx.status->epoch.store(epoch, std::memory_order_release);
          control.abort_signal = &ctx.status->abort_epoch;
          control.epoch = epoch;
        }
        flight.record(FlightEventType::kJobStart,
                      static_cast<std::uint32_t>(index),
                      static_cast<std::uint16_t>(attempt), 0);
        const std::uint64_t busy_start = stat_now_ns();
        // The warm decision, per attempt: retries always start cold, and
        // the node watermark bounds table garbage across a long shard.
        const bool warm =
            ctx.warm_capable && warm_ready && attempt == 1 &&
            pool != nullptr &&
            pool->num_vars() == std::max(jobs[index].num_vars, 1u) &&
            pool->allocated_nodes() < ctx.opts->shard_node_watermark;
        try {
          if (const auto hit = BDDMIN_FAILPOINT("worker_loop_hang")) {
            flight.record(FlightEventType::kFailpoint,
                          static_cast<std::uint32_t>(index),
                          static_cast<std::uint16_t>(attempt), 0);
            hang_sleep(hit.value, control);
          }
          outcome = process_job(jobs[index], ctx, pool, control, warm,
                                decode_scratch);
        } catch (const AbortRequested& e) {
          // A cancellation that unwound past process_job (decode outside
          // its catch, validation, an injected hang).  The manager honours
          // the strong guarantee, but be conservative with the pool.
          outcome.name = jobs[index].name;
          outcome.num_vars = jobs[index].num_vars;
          outcome.worker = ctx.worker;
          outcome.status = JobStatus::kQuarantined;
          outcome.detail = e.what();
          outcome.results.resize(ctx.heuristics->size());
          pool.reset();
        } catch (const std::exception& e) {
          // Containment: a throw outside the budgeted sections (e.g. the
          // manager constructor running out of memory) fails the one job, not
          // the batch.  The results vector is sized so the CSV keeps its shape.
          outcome.name = jobs[index].name;
          outcome.num_vars = jobs[index].num_vars;
          outcome.worker = ctx.worker;
          outcome.status = JobStatus::kError;
          outcome.error = e.what();
          outcome.results.resize(ctx.heuristics->size());
          // An uncontained throw may have left the pooled manager mid-mutation;
          // drop it rather than reuse a possibly inconsistent instance.
          pool.reset();
        }
        stats.busy_ns += stat_now_ns() - busy_start;
        flight.record(FlightEventType::kJobFinish,
                      static_cast<std::uint32_t>(index),
                      static_cast<std::uint16_t>(attempt),
                      static_cast<std::uint8_t>(outcome.status));
        if (ctx.status != nullptr) {
          ctx.status->epoch.store(0, std::memory_order_release);  // idle
        }

        const std::string reason = retry_class(outcome, *ctx.opts);
        if (!reason.empty() && attempt <= ctx.opts->max_retries) {
          if (first_retry_reason.empty()) first_retry_reason = reason;
          flight.record(FlightEventType::kRetry,
                        static_cast<std::uint32_t>(index),
                        static_cast<std::uint16_t>(attempt),
                        static_cast<std::uint8_t>(outcome.status));
          backoff_sleep(*ctx.opts, index, attempt);  // idle, not busy
          ++attempt;
          continue;  // fresh attempt, fresh JobOutcome
        }

        outcome.attempts = attempt;
        outcome.retry_reason = first_retry_reason;
        ++stats.jobs;
        if constexpr (telemetry::kHistogramsEnabled) {
          const auto latency_ns =
              static_cast<std::uint64_t>(outcome.seconds * 1e9);
          telemetry::histograms()
              .job_latency(static_cast<unsigned>(outcome.status), attempt)
              .record(latency_ns);
          ctx.instruments->job_latency.record(latency_ns);
          ctx.instruments->job_steps.record(
              outcome.counters.value(telemetry::Counter::kGovernorSteps));
        }
        if (outcome.status == JobStatus::kQuarantined) {
          // Black-box moment: capture what this worker was doing around
          // the quarantine while the ring still holds it.
          flight.record(FlightEventType::kQuarantine,
                        static_cast<std::uint32_t>(index),
                        static_cast<std::uint16_t>(attempt),
                        static_cast<std::uint8_t>(outcome.attempts));
          std::string text;
          flight.dump(&text, ctx.worker, "job quarantined");
          flight_write_dump(text, ctx.flight_path != nullptr ? *ctx.flight_path
                                                             : std::string());
        }
        // The next job in this shard may only start warm off a clean
        // first-attempt success — anything else leaves reuse undefined.
        warm_ready = outcome.status == JobStatus::kOk && attempt == 1;
        const std::uint64_t sink_start = stat_now_ns();
        if (const auto hit = BDDMIN_FAILPOINT("sink_drain_hang")) {
          // Bounded stall in the delivery path (lock *not* held).
          flight.record(FlightEventType::kFailpoint,
                        static_cast<std::uint32_t>(index),
                        static_cast<std::uint16_t>(attempt), 1);
          std::this_thread::sleep_for(std::chrono::milliseconds(hit.value));
        }
        // Journal before the sink: once an outcome is observable it is
        // also durable.  Cancelled jobs are deliberately not journalled —
        // a resume after a cancellation re-runs them.  Group-commit mode
        // buffers the record and flushes once per shard instead; the
        // durability unit widens from one job to one shard, and a crash
        // re-runs at most the unflushed tail of the current shard.
        if (ctx.journal != nullptr && outcome.status != JobStatus::kCancelled) {
          if (group_commit) {
            journal_group += format_completed_record(index, outcome);
          } else {
            ctx.journal->append_completed(index, outcome);
          }
        }
        sink.deliver(index, std::move(outcome));
        stats.sink_ns += stat_now_ns() - sink_start;
        break;
      }
    }
    if (group_commit && !journal_group.empty()) {
      const std::uint64_t flush_start = stat_now_ns();
      ctx.journal->append_raw_lines(journal_group);
      journal_group.clear();
      stats.sink_ns += stat_now_ns() - flush_start;
    }
  }
}

/// ETA rendering for the progress line: "1h02m", "4m32s", "17s", or
/// "--" when no estimate exists (nothing delivered yet, or absurd).
std::string format_eta(double seconds) {
  if (!(seconds >= 0.0) || seconds > 86'400.0 * 9) return "--";
  const auto total = static_cast<unsigned long long>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof buf, "%lluh%02llum", total / 3600,
                  (total % 3600) / 60);
  } else if (total >= 60) {
    std::snprintf(buf, sizeof buf, "%llum%02llus", total / 60, total % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%llus", total);
  }
  return buf;
}

/// Content key for payload dedup: everything decode_job reads (kind,
/// variable count, the payload bytes) and nothing else — in particular not
/// the name.  Byte-exact, so two jobs share a key iff they decode to the
/// same [f, c] instance the same way.
std::string payload_key(const Job& job) {
  std::string key;
  key.reserve(16 + job.forest.size());
  key.push_back(static_cast<char>(job.kind));
  key.append(reinterpret_cast<const char*>(&job.num_vars), sizeof job.num_vars);
  if (job.kind == PayloadKind::kTruthTable) {
    key.append(reinterpret_cast<const char*>(&job.f_tt), sizeof job.f_tt);
    key.append(reinterpret_cast<const char*>(&job.c_tt), sizeof job.c_tt);
  } else {
    key += job.forest;
  }
  return key;
}

}  // namespace

const char* job_status_name(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kError: return "error";
    case JobStatus::kResourceLimit: return "resource-limit";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

std::size_t BatchReport::count(JobStatus s) const noexcept {
  std::size_t n = 0;
  for (const JobOutcome& o : outcomes) {
    if (o.status == s) ++n;
  }
  return n;
}

BatchReport run_batch(std::span<const Job> jobs, const EngineOptions& opts) {
  // BDDMIN_FAILPOINTS arms *here* — after job generation and CLI parsing,
  // before any worker starts — so only the batch itself is faulted and a
  // fault-injected run minimizes exactly the same job set as a clean one.
  analysis::failpoints().arm_from_env();

  EngineOptions effective = opts;
  if (effective.node_limit == 0) {
    effective.node_limit =
        static_cast<std::size_t>(harness::env_u64("BDDMIN_NODE_LIMIT", 0));
  }
  if (effective.step_limit == 0) {
    effective.step_limit = harness::env_u64("BDDMIN_STEP_LIMIT", 0);
  }

  std::vector<minimize::Heuristic> heuristics = effective.heuristics;
  if (heuristics.empty()) {
    heuristics = minimize::all_heuristics();
    if (!effective.heuristic.empty()) {
      heuristics = {minimize::heuristic_by_name(heuristics, effective.heuristic)};
    }
  }

  minimize::Heuristic fallback_storage;
  const minimize::Heuristic* fallback = nullptr;
  if (!effective.fallback_heuristic.empty()) {
    // Prefer a heuristic from the selected set; otherwise the full registry.
    try {
      fallback_storage =
          minimize::heuristic_by_name(heuristics, effective.fallback_heuristic);
    } catch (const std::out_of_range&) {
      fallback_storage = minimize::heuristic_by_name(
          minimize::all_heuristics(), effective.fallback_heuristic);
    }
    fallback = &fallback_storage;
  }

  unsigned threads =
      effective.num_threads ? effective.num_threads
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::max(1u, std::min<unsigned>(
                             threads, std::max<std::size_t>(jobs.size(), 1)));

  BatchReport report;
  report.num_threads = threads;
  for (const minimize::Heuristic& h : heuristics) report.names.push_back(h.name);

  const auto start = Clock::now();
  // A resumed job is one whose outcome the journal already holds; it is
  // pre-filled into the sink and never queued.
  const JournalContents* resume = effective.resume;
  const auto resumed_done = [resume](std::size_t i) {
    return resume != nullptr && i < resume->completed.size() &&
           resume->completed[i].has_value();
  };

  // Payload dedup: queue one representative per distinct payload; the
  // duplicate slots are filled from the representative's outcome after the
  // pool drains.  rep[i] == i marks a representative.  A resumed-done
  // representative still anchors its duplicates — its outcome comes from
  // the journal instead of a worker.
  std::vector<std::size_t> rep(jobs.size());
  std::vector<std::size_t> to_run;
  to_run.reserve(jobs.size());
  if (effective.dedup_jobs) {
    std::unordered_map<std::string, std::size_t> first_by_key;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto [it, inserted] = first_by_key.emplace(payload_key(jobs[i]), i);
      rep[i] = it->second;
      if (inserted && !resumed_done(i)) to_run.push_back(i);
    }
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      rep[i] = i;
      if (!resumed_done(i)) to_run.push_back(i);
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    report.duplicate_jobs += rep[i] != i ? 1 : 0;
  }

  // Write-ahead journal: a fresh run records the whole batch before any
  // work starts; a resume appends to the survivor.
  std::unique_ptr<JournalWriter> journal;
  if (!effective.journal_path.empty()) {
    journal = std::make_unique<JournalWriter>(effective.journal_path,
                                              /*truncate=*/resume == nullptr);
    if (resume == nullptr) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        journal->append_submitted(i, jobs[i]);
      }
    }
  }

  // Shard plan: a deterministic pure function of the run list and the
  // cost budget, computed once up front.  The queue dispatches shard
  // indices; budget 0 degenerates to one job per shard (classic per-job
  // scheduling, no warm reuse).
  const ShardPlan plan = pack_shards(jobs, to_run, effective.shard_cost);
  // Warm in-shard reuse is only armed when no per-job escape hatch could
  // observe the carried-over state: node/step quotas measure table
  // pressure (warmth would change degrade verdicts) and structural
  // audits walk the whole table (warmth would change the walk).
  const bool warm_capable = effective.shard_cost > 0 &&
                            effective.node_limit == 0 &&
                            effective.step_limit == 0 &&
                            effective.audit_level < analysis::AuditLevel::kStructural;

  WorkStealingQueue queue(threads);
  for (std::size_t s = 0; s < plan.size(); ++s) {
    queue.push(s % threads, s);
  }
  BatchInstruments instruments;
  if constexpr (telemetry::kHistogramsEnabled) {
    // Anchor the depth histogram with the fully seeded backlog so the
    // drain curve has a defined starting point even for tiny batches.
    instruments.queue_depth.record(plan.size());
    telemetry::trace_counter("queue_depth", "engine", plan.size());
    for (const Shard& s : plan.shards) {
      instruments.shard_jobs.record(s.count);
      instruments.shard_cost.record(s.cost);
    }
  }
  ResultSink sink(jobs.size());
  if (resume != nullptr) {
    const std::size_t n = std::min(jobs.size(), resume->completed.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (resume->completed[i].has_value()) {
        sink.deliver(i, *resume->completed[i]);
      }
    }
  }

  std::vector<WorkerStatus> wstatus(threads);
  std::vector<WorkerStats> wstats(threads);
  std::vector<FlightRecorder> flights(threads);
  const std::string flight_path =
      effective.journal_path.empty() ? std::string()
                                     : effective.journal_path + ".flight";
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (effective.hang_timeout_seconds > 0.0) {
    const auto hang_ns =
        static_cast<std::uint64_t>(effective.hang_timeout_seconds * 1e9);
    // Poll a few times per threshold, capped at 10 ms so short test
    // thresholds are detected promptly without a busy loop.
    const auto poll = std::chrono::milliseconds(std::clamp<std::int64_t>(
        static_cast<std::int64_t>(effective.hang_timeout_seconds * 250.0), 1,
        10));
    watchdog = std::thread([&wstatus, &watchdog_stop, hang_ns, poll] {
      telemetry::Tracer::set_thread_name("watchdog");
      while (!watchdog_stop.load(std::memory_order_relaxed)) {
        for (WorkerStatus& s : wstatus) {
          // Acquire pairs with the worker's release store: a non-zero
          // epoch guarantees start_ns is the matching attempt's.
          const std::uint64_t e = s.epoch.load(std::memory_order_acquire);
          if (e == 0) continue;  // idle
          if (s.abort_epoch.load(std::memory_order_relaxed) == e) {
            continue;  // already cancelled; the worker will notice
          }
          const std::uint64_t started =
              s.start_ns.load(std::memory_order_relaxed);
          if (now_ns() - started > hang_ns) {
            s.abort_epoch.store(e, std::memory_order_relaxed);
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }
  // Progress reporter: one self-overwriting stderr line off the sink's
  // tallies.  Reads only, so it can run for the whole batch; the final
  // summary line is printed by the main thread after the duplicates are
  // filled (the reporter never sees those — they bypass the sink).
  std::atomic<bool> progress_stop{false};
  std::thread progress;
  if (effective.progress) {
    const std::size_t total = jobs.size();
    progress = std::thread([&sink, &progress_stop, total, start] {
      const std::size_t baseline = sink.progress().delivered;  // resumed jobs
      for (;;) {
        // 500 ms refresh cadence, polling the stop flag often enough
        // that shutdown never waits on the reporter.
        for (int i = 0; i < 10; ++i) {
          if (progress_stop.load(std::memory_order_relaxed)) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        const ResultSink::Progress p = sink.progress();
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        const double rate =
            elapsed > 0.0
                ? static_cast<double>(p.delivered - baseline) / elapsed
                : 0.0;
        const double eta =
            rate > 0.0 ? static_cast<double>(total - p.delivered) / rate
                       : -1.0;
        std::fprintf(stderr,
                     "\r[batch] %zu/%zu ok=%zu fail=%zu quarantined=%zu "
                     "%.1f jobs/s eta %s   ",
                     p.delivered, total, p.ok, p.failed, p.quarantined, rate,
                     format_eta(eta).c_str());
        std::fflush(stderr);
      }
    });
  }
  {
    const telemetry::TraceScope batch_span("run_batch", "engine");
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      pool.emplace_back([&, w] {
        telemetry::Tracer::set_thread_name("worker-" + std::to_string(w));
        // Register the ring for fatal-failpoint dumps (journal commit
        // aborts dump the dying worker's ring before _Exit).
        set_thread_flight_recorder(&flights[w], w, &flight_path);
        const WorkerContext ctx{
            &effective, &heuristics, fallback, w,
            effective.hang_timeout_seconds > 0.0 ? &wstatus[w] : nullptr,
            journal.get(), &wstats[w], &flights[w], &flight_path,
            &instruments, &to_run, &plan, warm_capable};
        worker_loop(queue, jobs, sink, ctx);
        set_thread_flight_recorder(nullptr, 0, nullptr);
      });
    }
    for (std::thread& t : pool) t.join();
  }
  watchdog_stop.store(true, std::memory_order_relaxed);
  if (watchdog.joinable()) watchdog.join();
  // Operator-requested dump: every worker's ring, after the join (the
  // only point where cross-thread ring reads are race-free).
  if (harness::env_u64("BDDMIN_FLIGHT_DUMP", 0) != 0) {
    std::string text;
    for (unsigned w = 0; w < threads; ++w) {
      if (flights[w].total_recorded() > 0) {
        flights[w].dump(&text, w, "BDDMIN_FLIGHT_DUMP");
      }
    }
    if (!text.empty()) flight_write_dump(text, flight_path);
  }
  report.outcomes = sink.take();
  // Fill each duplicate from its representative, keeping the duplicate's
  // own name.  Outcomes are pure functions of the payload, so every other
  // column is exactly what a dedup-off run would have produced.  The
  // duplicates' completion records are journalled here — workers only see
  // representatives.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (rep[i] == i) continue;
    JobOutcome copy = report.outcomes[rep[i]];
    copy.name = jobs[i].name;
    if (journal != nullptr && !resumed_done(i) &&
        copy.status != JobStatus::kCancelled) {
      journal->append_completed(i, copy);
    }
    report.outcomes[i] = std::move(copy);
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (effective.progress) {
    progress_stop.store(true, std::memory_order_relaxed);
    progress.join();
    std::fprintf(stderr,
                 "\r[batch] %zu/%zu ok=%zu fail=%zu quarantined=%zu done in "
                 "%.1fs          \n",
                 report.outcomes.size(), jobs.size(),
                 report.count(JobStatus::kOk), report.count(JobStatus::kError),
                 report.count(JobStatus::kQuarantined), report.wall_seconds);
    std::fflush(stderr);
  }

  // Assemble the run's observability block: batch-local histogram
  // snapshots (merged into the process-global bank for `stats`) and the
  // per-worker utilization table.  Idle is the wall-time remainder, so
  // per worker busy + steal + sink + idle ≈ wall by construction.
  BatchMetrics& metrics = report.metrics;
  metrics.job_latency_ns = instruments.job_latency.snapshot();
  metrics.job_steps = instruments.job_steps.snapshot();
  metrics.steal_search_ns = instruments.steal_search.snapshot();
  metrics.queue_depth = instruments.queue_depth.snapshot();
  metrics.shard_jobs = instruments.shard_jobs.snapshot();
  metrics.shard_cost = instruments.shard_cost.snapshot();
  telemetry::histograms().job_steps().merge(metrics.job_steps);
  telemetry::histograms().steal_search_ns().merge(metrics.steal_search_ns);
  telemetry::histograms().queue_depth().merge(metrics.queue_depth);
  telemetry::histograms().shard_jobs().merge(metrics.shard_jobs);
  telemetry::histograms().shard_cost().merge(metrics.shard_cost);
  metrics.shards = plan.size();
  metrics.shard_cost_budget = effective.shard_cost;
  metrics.workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    const WorkerStats& s = wstats[w];
    WorkerUtilization u;
    u.worker = w;
    u.busy_seconds = static_cast<double>(s.busy_ns) / 1e9;
    u.steal_seconds = static_cast<double>(s.steal_ns) / 1e9;
    u.sink_seconds = static_cast<double>(s.sink_ns) / 1e9;
    u.idle_seconds = std::max(0.0, report.wall_seconds - u.busy_seconds -
                                       u.steal_seconds - u.sink_seconds);
    u.jobs = s.jobs;
    u.steal_attempts = s.steal_attempts;
    u.steals = s.steals;
    metrics.steal_attempts += s.steal_attempts;
    metrics.steals += s.steals;
    metrics.warm_jobs += s.warm_jobs;
    metrics.cold_jobs += s.cold_jobs;
    metrics.workers.push_back(u);
  }
  return report;
}

std::string report_csv(const BatchReport& report, bool include_timings,
                       bool include_counters, bool include_attempts) {
  using telemetry::Counter;
  std::ostringstream os;
  os << "job,name,vars,status,f_size,c_size,c_onset,min,lower_bound,"
        "audit_findings,error,detail";
  for (const std::string& name : report.names) os << ",size_" << name;
  if (include_counters) {
    // peak_live lives here, not in the default columns: it measures table
    // pressure, which warm in-shard reuse legitimately changes, and the
    // default CSV stays byte-identical across shard modes.
    os << ",ut_inserts,ut_hits,cache_hits,cache_misses,gc_runs,gc_reclaimed,"
          "steps,peak_live";
    for (const std::string& name : report.names) {
      os << ",steps_match_" << name << ",steps_build_" << name
         << ",steps_valid_" << name;
    }
  }
  if (include_timings) {
    for (const std::string& name : report.names) os << ",sec_" << name;
    os << ",job_seconds,worker";
  }
  if (include_attempts) os << ",attempts,retry_reason";
  os << "\n";
  char buf[32];
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const JobOutcome& o = report.outcomes[i];
    std::snprintf(buf, sizeof buf, "%.6f", o.c_onset);
    os << i << ',' << harness::csv_field(o.name) << ',' << o.num_vars << ','
       << job_status_name(o.status) << ',' << o.f_size << ','
       << o.c_size << ',' << buf << ',' << o.min_size << ',' << o.lower_bound
       << ',' << o.audit_findings << ',' << harness::csv_field(o.error)
       << ',' << harness::csv_field(o.detail);
    for (const HeuristicResult& r : o.results) os << ',' << r.size;
    if (include_counters) {
      const telemetry::CounterSnapshot& c = o.counters;
      os << ',' << c.value(Counter::kUniqueInserts) << ','
         << c.value(Counter::kUniqueHits) << ',' << c.total_cache_hits() << ','
         << c.total_cache_misses() << ',' << c.value(Counter::kGcRuns) << ','
         << c.value(Counter::kGcNodesReclaimed) << ','
         << c.value(Counter::kGovernorSteps) << ',' << o.peak_live;
      for (const HeuristicResult& r : o.results) {
        os << ',' << r.phases[telemetry::Phase::kMatching].steps << ','
           << r.phases[telemetry::Phase::kCoverBuild].steps << ','
           << r.phases[telemetry::Phase::kValidation].steps;
      }
    }
    if (include_timings) {
      for (const HeuristicResult& r : o.results) {
        std::snprintf(buf, sizeof buf, "%.6f", r.seconds);
        os << ',' << buf;
      }
      std::snprintf(buf, sizeof buf, "%.6f", o.seconds);
      os << ',' << buf << ',' << o.worker;
    }
    if (include_attempts) {
      os << ',' << o.attempts << ',' << harness::csv_field(o.retry_reason);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace bddmin::engine
