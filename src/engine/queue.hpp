/// \file queue.hpp
/// \brief Work-stealing job queue for the batch engine.
///
/// All jobs are seeded round-robin across the per-worker deques before any
/// worker starts (the batch is a closed set — nothing is pushed while
/// workers run), so an empty sweep over every deque means the batch is
/// drained and the worker can exit.  Owners pop from the front of their
/// own deque (roughly submission order); thieves take from the back of a
/// victim's deque, which keeps owner and thief on opposite ends.  Each
/// deque is guarded by its own mutex: with whole minimization jobs as the
/// unit of work, pop cost is noise next to job cost, and the mutexes keep
/// the structure trivially TSan-clean.  The guard relation is machine
/// checked: `items` is BDDMIN_GUARDED_BY its deque's mutex, so a Clang
/// `-Wthread-safety` build rejects any future access outside the lock.
///
/// False sharing: each Deque is alignas(64)-padded onto its own cache
/// line(s).  The deques live contiguously in one vector and every pop —
/// own or steal — dirties a deque's mutex word; without the padding two
/// adjacent workers' hot head/tail state would ping-pong one shared line.
///
/// Observability: each deque maintains a relaxed-atomic mirror of its
/// size, updated inside the locked sections, so `approx_depth()` can
/// sample the total backlog without touching any lock (the sum across
/// deques may be momentarily torn mid-pop — fine for a monitoring
/// signal).  `try_pop` optionally reports how the item was obtained
/// (own deque vs. stolen) so the engine can account steal traffic.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "analysis/thread_annotations.hpp"
#include "telemetry/trace.hpp"

namespace bddmin::engine {

class WorkStealingQueue {
 public:
  /// How try_pop obtained its item (for the engine's steal accounting).
  struct PopOutcome {
    bool stolen = false;  ///< Item came from another worker's deque.
  };

  explicit WorkStealingQueue(std::size_t num_workers)
      : deques_(num_workers == 0 ? 1 : num_workers) {}

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return deques_.size();
  }

  /// Seed \p item into \p worker's deque.  Call before workers start.
  void push(std::size_t worker, std::size_t item) {
    Deque& d = deques_[worker % deques_.size()];
    const std::lock_guard<std::mutex> lock(d.mu);
    d.items.push_back(item);
    d.size.store(d.items.size(), std::memory_order_relaxed);
  }

  /// Pop the next item for \p worker: front of its own deque, else steal
  /// from the back of the first non-empty victim (scanning round-robin
  /// from worker+1).  Returns false when every deque is empty — with a
  /// pre-seeded batch that means no work is left anywhere.  When
  /// \p outcome is non-null it reports whether the item was stolen.
  bool try_pop(std::size_t worker, std::size_t* out,
               PopOutcome* outcome = nullptr) {
    const std::size_t n = deques_.size();
    const std::size_t self = worker % n;
    {
      Deque& d = deques_[self];
      const std::lock_guard<std::mutex> lock(d.mu);
      if (!d.items.empty()) {
        *out = d.items.front();
        d.items.pop_front();
        d.size.store(d.items.size(), std::memory_order_relaxed);
        if (outcome != nullptr) outcome->stolen = false;
        return true;
      }
    }
    for (std::size_t k = 1; k < n; ++k) {
      Deque& d = deques_[(self + k) % n];
      const std::lock_guard<std::mutex> lock(d.mu);
      if (!d.items.empty()) {
        *out = d.items.back();
        d.items.pop_back();
        d.size.store(d.items.size(), std::memory_order_relaxed);
        telemetry::trace_instant("steal", "engine");
        if (outcome != nullptr) outcome->stolen = true;
        return true;
      }
    }
    return false;
  }

  /// Approximate total backlog across all deques, lock-free.  The value
  /// is a sum of per-deque relaxed snapshots, so concurrent pops can
  /// skew it by a few items — use for sampling, never for termination
  /// (try_pop's locked sweep is the authoritative "drained" signal).
  [[nodiscard]] std::size_t approx_depth() const noexcept {
    std::size_t total = 0;
    for (const Deque& d : deques_) {
      total += d.size.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  /// One worker's deque and its lock, padded to cache-line granularity so
  /// neighbouring workers never contend on the same line (see file docs).
  struct alignas(64) Deque {
    std::mutex mu;
    std::deque<std::size_t> items BDDMIN_GUARDED_BY(mu);
    /// Relaxed mirror of items.size(); written only under mu, read
    /// lock-free by approx_depth().
    std::atomic<std::size_t> size{0};
  };

  std::vector<Deque> deques_;
};

}  // namespace bddmin::engine
