/// \file job.hpp
/// \brief Batch-minimization job model: one EBM instance [f, c] packaged
/// so it can cross Manager boundaries.
///
/// A Manager is strictly single-threaded, so the batch engine gives every
/// worker a private manager and ships instances between managers as plain
/// data: either the order-independent forest text of `bdd/io.hpp`, or —
/// for supports that fit a 64-bit truth table — the two truth tables
/// directly.  Decoding rebuilds the pair through ITE, so a job encoded
/// under one variable order is valid in a worker with any order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minimize/incspec.hpp"
#include "pla/pla.hpp"

namespace bddmin::engine {

/// How the [f, c] pair is carried.
enum class PayloadKind : std::uint8_t {
  kForest,      ///< bdd/io serialized forest with roots {f, c}
  kTruthTable,  ///< 64-bit truth tables over num_vars <= kMaxTtVars
};

/// One minimization job.  Plain data; safe to copy across threads.
struct Job {
  std::string name;        ///< stable label reported in the CSV
  unsigned num_vars = 0;   ///< variables the instance is defined over
  PayloadKind kind = PayloadKind::kTruthTable;
  std::string forest;      ///< kForest payload (serialize(mgr, {f, c}))
  std::uint64_t f_tt = 0;  ///< kTruthTable payload
  std::uint64_t c_tt = 0;  ///< kTruthTable payload
};

/// Export [f, c] from \p mgr as a job.  Instances over at most kMaxTtVars
/// variables travel as truth tables, larger ones as forest text.
[[nodiscard]] Job make_job(Manager& mgr, std::string name,
                           minimize::IncSpec spec);

/// Truth-table job without a source manager (small supports only; throws
/// std::invalid_argument when n exceeds kMaxTtVars).
[[nodiscard]] Job make_tt_job(std::string name, std::uint64_t f_tt,
                              std::uint64_t c_tt, unsigned n);

/// Reusable decode buffers, one per batch-engine worker.  Forest
/// payloads parse through these instead of fresh vectors, extending the
/// epoch-stamped VisitScratch reuse idiom to the decode path: after the
/// first few jobs the buffers reach steady-state capacity and decoding
/// allocates nothing.
struct DecodeScratch {
  std::vector<Edge> nodes;  ///< deserialize_into node-id table
  std::vector<Edge> roots;  ///< deserialize_into root list
};

/// Rebuild the job's [f, c] inside \p mgr, which must have at least
/// job.num_vars variables.  Throws std::invalid_argument on a malformed
/// payload.
[[nodiscard]] minimize::IncSpec decode_job(Manager& mgr, const Job& job);

/// decode_job through caller-owned scratch buffers (see DecodeScratch);
/// same contract, zero steady-state allocation for forest payloads.
[[nodiscard]] minimize::IncSpec decode_job(Manager& mgr, const Job& job,
                                           DecodeScratch& scratch);

/// \p count random instances over \p num_vars variables with target care
/// density \p c_density, reproducible end-to-end from \p seed: job k is
/// generated from the derived seed `seed + k` and named
/// "rand<k>_s<seed+k>", so any single job can be regenerated from its
/// reported name alone.
[[nodiscard]] std::vector<Job> random_jobs(unsigned count, unsigned num_vars,
                                           double c_density,
                                           std::uint64_t seed);

/// One job per PLA output column ([f, c] as in pla::output_function),
/// named "<pla.name>/<output label>".
[[nodiscard]] std::vector<Job> pla_jobs(const pla::Pla& pla);

}  // namespace bddmin::engine
