#include "engine/collect.hpp"

#include <utility>

#include "minimize/sibling.hpp"

namespace bddmin::engine {

JobCollector::JobCollector(std::string label) : label_(std::move(label)) {}

fsm::MinimizeHook JobCollector::hook() {
  return [this](Manager& mgr, Edge f, Edge c) {
    const minimize::IncSpec spec{f, c};
    if (minimize::classify_call(mgr, spec).filtered()) {
      ++filtered_;
      return c == kZero ? f : minimize::constrain(mgr, f, c);
    }
    jobs_.push_back(
        make_job(mgr, label_ + "/call" + std::to_string(jobs_.size()), spec));
    return minimize::constrain(mgr, f, c);
  };
}

}  // namespace bddmin::engine
