/// \file engine.hpp
/// \brief Thread-pool batch minimization engine.
///
/// The paper minimizes one [f, c] pair at a time; realistic clients
/// (network-wide don't-care sweeps, the Table 1-4 experiments, FSM
/// traversals) present hundreds of independent instances.  The engine
/// shards a job set across N workers, each owning a *private* Manager —
/// the BDD core stays single-threaded internally — and funnels outcomes
/// through a lock-guarded sink indexed by submission order.
///
/// Determinism contract: every heuristic is a pure function of (f, c) and
/// each job is decoded into a manager in the fresh terminal-only state —
/// workers pool one Manager each and tear it back down between jobs with
/// Manager::reset(), which restores construction-time behaviour bit for
/// bit (counters, cache size, governor telemetry) without reallocating —
/// so all sizes, covers, audit verdicts and statuses are independent of
/// worker count and interleaving.  `report_csv(report)` therefore produces byte-identical
/// text for any thread count, **provided** no per-job timeout fired and
/// no cancellation was requested (both are wall-clock events).  Node and
/// step quotas are deterministic: a job degraded to kResourceLimit by them
/// degrades identically at every thread count.  Timings are recorded but
/// only emitted with `include_timings = true`, which is explicitly outside
/// the deterministic contract.
///
/// Sharding (`shard_cost > 0`): the submission stream is packed into
/// cost-balanced shards (engine/shard.hpp) and the work-stealing deque
/// dispatches shard indices, so one scheduling decision covers dozens of
/// tiny jobs.  Retry, timeout, cancellation, dedup, journaling and
/// quarantine all stay strictly per-job.  Within a shard the pooled
/// manager additionally skips reset() between consecutive jobs that
/// share num_vars — the unique table and the 2-way computed cache stay
/// *warm* across jobs — unless an escape hatch forces a cold start:
/// node/step quotas configured (quota trips depend on allocation state),
/// audit_level >= kStructural (the auditor must see a one-job table),
/// the allocated-node watermark exceeded, or a retry attempt.  Warm
/// reuse never changes covers, sizes, statuses or audit verdicts (BDDs
/// are canonical; cached results are the results), so the default CSV is
/// byte-identical at any thread count *and* with sharding on or off.
/// The opt-in counters block (cache hits, steps, peak_live) measures the
/// work actually done, which is exactly what warm caches reduce: it
/// stays byte-deterministic across thread counts — shard packing is a
/// pure function of the submission stream — but deliberately differs
/// between sharded and unsharded runs.
///
/// Resource governance: each heuristic runs under the worker manager's
/// ResourceGovernor (node quota, step budget, in-operation deadline).  A
/// budget trip aborts only that heuristic — the manager stays consistent
/// (strong guarantee, auditable), partial results are garbage-collected,
/// and the job *degrades* instead of failing: the tripped slot falls back
/// to the best previously validated cover (or the always-valid trivial
/// cover f), optionally retrying once on `fallback_heuristic` with a fresh
/// budget.  Such jobs finish kResourceLimit with the limit class recorded
/// in `JobOutcome::detail`; kError is reserved for genuine bugs.
///
/// Resilience (failpoint-tested; see docs/ROBUSTNESS.md):
///  * **retry** — `max_retries > 0` re-runs a job whose failure class is
///    transient (kError, an out-of-memory degrade, a watchdog hang, or an
///    injected deadline when no job timeout is configured) with
///    exponential backoff + deterministic jitter.  Each attempt starts
///    from a fresh JobOutcome, so the *final* outcome of a retried job is
///    identical to a never-faulted run; `attempts`/`retry_reason` are
///    recorded but only emitted into the CSV with `include_attempts`
///    (which failure hits which job is schedule-dependent under faults).
///  * **watchdog** — `hang_timeout_seconds > 0` starts a monitor thread;
///    a (job, attempt) exceeding the threshold is cancelled via an
///    epoch-tagged abort signal polled by the governor (AbortRequested),
///    then retried or, with the budget exhausted, finished as
///    kQuarantined.  Only cooperative code can be cancelled — a truly
///    wedged job (no charge_step, no poll) is detected but still waited
///    on.
///  * **journal** — `journal_path` writes an append-only, checksummed,
///    fsync'd record of submitted jobs and completed outcomes; `resume`
///    (from journal::read_journal) pre-fills completed outcomes and
///    re-runs only the rest.  A resumed batch's default CSV is
///    byte-identical to an uninterrupted run.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "engine/job.hpp"
#include "minimize/registry.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/profile.hpp"

namespace bddmin::engine {

struct JournalContents;  // engine/journal.hpp

enum class JobStatus : std::uint8_t {
  kOk = 0,         ///< all heuristics ran and validated
  kTimeout,        ///< per-job deadline expired between heuristics
  kCancelled,      ///< batch cancellation observed before the job started
  kError,          ///< decode failure, thrown BDDMIN_CHECK, bad cover or audit finding
  kResourceLimit,  ///< a heuristic exhausted its budget; the job degraded to
                   ///< a still-valid fallback cover (see JobOutcome::detail)
  kQuarantined,    ///< cancelled by the hang watchdog with the retry budget
                   ///< exhausted; set aside, never blocks the batch
};

[[nodiscard]] const char* job_status_name(JobStatus s) noexcept;

struct EngineOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency() (min 1).
  unsigned num_threads = 0;
  /// Run only this heuristic (registry name); empty = all_heuristics().
  std::string heuristic;
  /// Explicit heuristic set; overrides `heuristic` when non-empty.
  std::vector<minimize::Heuristic> heuristics;
  /// Per-job wall-clock budget.  Checked between heuristics and — via the
  /// worker manager's ResourceGovernor — polled *inside* the budgeted
  /// recursions, so a single runaway heuristic is interrupted mid-flight
  /// (status kResourceLimit with detail "deadline").  0 disables.
  double job_timeout_seconds = 0.0;
  /// Hard quota on the worker manager's allocated nodes (live + dead),
  /// enforced while a heuristic runs; tripping it aborts the heuristic with
  /// bddmin::NodeLimit and degrades the job to its fallback cover.  0 means
  /// unlimited; when 0, the BDDMIN_NODE_LIMIT environment variable (if set)
  /// supplies a fleet-wide default.  A soft quota at 3/4 of the hard one
  /// triggers a garbage collection between heuristics even when
  /// `flush_between` is off.
  std::size_t node_limit = 0;
  /// Recursion-step budget per heuristic run (memoization misses across
  /// ITE/cofactor/quantification and the minimization traversals); a
  /// deterministic, machine-independent effort bound.  0 means unlimited;
  /// when 0, BDDMIN_STEP_LIMIT (if set) supplies a default.
  std::uint64_t step_limit = 0;
  /// Registry name of a cheaper heuristic to retry once — with a fresh
  /// budget — when a heuristic exhausts its budget (e.g. "restr" as the
  /// fallback for "osm_td").  Empty disables the retry; the job then keeps
  /// the best previously validated cover (or the trivial cover f).
  std::string fallback_heuristic;
  /// BddAudit depth after each job (1-3 audit the worker's manager;
  /// level 4 additionally replaces the plain cover check with the
  /// witness-reporting contract audit).  Findings turn the job kError.
  analysis::AuditLevel audit_level = analysis::AuditLevel::kOff;
  /// Verify each cover against Definition 2 (cheap insurance).
  bool validate_covers = true;
  /// Theorem 7 lower-bound cube budget per job (0 disables).
  std::size_t lower_bound_cubes = 0;
  /// Garbage-collect (flushing caches) before each heuristic, as the
  /// paper does for fair timing.
  bool flush_between = true;
  /// log2 of each worker manager's computed-cache slots.
  unsigned cache_log2 = 14;
  /// Estimated-cost budget per shard (engine/shard.hpp cost units).  0
  /// disables coalescing — every job is its own shard and the engine
  /// behaves exactly as before sharding existed (the library default;
  /// the CLI defaults to shard::kDefaultShardCost / BDDMIN_SHARD_COST).
  /// Packing is deterministic, so any non-zero budget preserves the
  /// default-CSV byte-identity across thread counts.
  std::uint64_t shard_cost = 0;
  /// Warm-manager escape hatch: a mid-shard job starts from a full
  /// reset() whenever the pooled manager's allocated nodes (live + dead)
  /// reached this watermark, bounding how much table garbage warm reuse
  /// can accumulate.  Deterministic (allocation history is a pure
  /// function of the shard contents).
  std::size_t shard_node_watermark = 1u << 20;
  /// Journal group-commit: buffer completion records per worker and
  /// flush them with one fwrite + fsync per *shard* instead of one per
  /// job (see journal.hpp).  A crash loses at most the unflushed whole
  /// records, which simply re-run on resume.
  bool journal_group_commit = false;
  /// Collapse jobs with byte-identical payloads (kind, num_vars and the
  /// truth-table/forest content — names excluded): each distinct payload
  /// is minimized once and the outcome is replicated into every
  /// duplicate's CSV row under its own name.  Outcomes are pure functions
  /// of the payload, so the produced report is byte-identical to a
  /// dedup-off run (minus the opt-in timing columns); only the wall clock
  /// drops.  Duplicate counts land in BatchReport::duplicate_jobs.
  bool dedup_jobs = true;
  /// Optional cancellation token shared with the caller: once set, every
  /// not-yet-started job completes immediately as kCancelled (jobs are
  /// atomic — a started job always runs to its own completion).
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Per-job retry budget for transient failures (kError, out-of-memory
  /// degrades, watchdog hangs; see the header comment).  0 keeps the
  /// historical fail-on-first-error behaviour.
  unsigned max_retries = 0;
  /// Base backoff before retry k: `backoff_ms * 2^(k-1)` ms (capped at
  /// 10 s) plus a deterministic jitter in [0, backoff_ms) derived from
  /// (job index, attempt).  0 retries immediately.
  unsigned backoff_ms = 0;
  /// Hang threshold for the watchdog thread; a (job, attempt) running
  /// longer is cancelled (AbortRequested) and retried or quarantined.
  /// 0 disables the watchdog.
  double hang_timeout_seconds = 0.0;
  /// Write-ahead journal path.  Non-empty: the batch truncates the file,
  /// records every submitted job up front and every outcome as it
  /// completes (checksummed, fsync'd).  See engine/journal.hpp.
  std::string journal_path;
  /// Resume data from journal::read_journal.  Jobs with a recorded
  /// outcome are pre-filled and not re-run; pass the same `journal_path`
  /// to keep appending completion records for the jobs that do run.
  const JournalContents* resume = nullptr;
  /// Emit a single self-overwriting progress line on stderr, refreshed at
  /// most every 500 ms (jobs done/total, ok/fail/quarantined tallies,
  /// throughput, ETA), fed by the result sink's counters.  The engine
  /// honours the flag unconditionally; the CLI only sets it when stderr
  /// is a terminal (or BDDMIN_PROGRESS=1 forces it), so redirected runs
  /// stay clean.  Never written to stdout or the CSV.
  bool progress = false;
};

struct HeuristicResult {
  std::size_t size = 0;   ///< cover node count incl. terminal (0 = not run)
  double seconds = 0.0;   ///< wall time; non-deterministic
  /// Per-phase time and counter deltas (matching / cover-build /
  /// validation).  The step and counter splits are deterministic — each
  /// job runs in a fresh manager — the seconds are not.  All-zero when
  /// telemetry is compiled out.
  telemetry::PhaseProfile phases;
};

struct JobOutcome {
  std::string name;
  unsigned num_vars = 0;
  JobStatus status = JobStatus::kOk;
  std::string error;                     ///< diagnostic for kError only
  /// Resource-limit trail for kResourceLimit: which heuristic tripped which
  /// limit class and what the degradation did, e.g.
  /// "osm_td: step-limit (retried on restr)".  Deterministic for the
  /// node/step limit classes.
  std::string detail;
  std::size_t f_size = 0;
  std::size_t c_size = 0;
  double c_onset = 0.0;                  ///< care onset fraction in [0, 1]
  std::vector<HeuristicResult> results;  ///< parallel to BatchReport::names
  std::size_t min_size = 0;              ///< best over heuristics that ran
  std::size_t lower_bound = 0;           ///< Theorem 7 bound (opt-in)
  std::size_t audit_findings = 0;
  /// Peak live-node count of the worker manager over the whole job — the
  /// memory high-water mark.  Deterministic across thread counts, but
  /// sensitive to the shard mode (a warm computed cache builds fewer
  /// intermediates), so the CSV reports it in the opt-in counters block.
  std::size_t peak_live = 0;
  /// Telemetry counter *deltas* for this job (decode, every heuristic,
  /// validation, audits).  Deterministic across thread counts; all-zero
  /// when telemetry is compiled out.  Shard-mode sensitive like
  /// peak_live — warm cache hits replace recorded work.
  telemetry::CounterSnapshot counters;
  unsigned worker = 0;                   ///< informational; non-deterministic
  double seconds = 0.0;                  ///< total job wall time
  /// How many times the job ran (1 = no retry).  Deterministic in
  /// fault-free runs and for deterministic failure classes; under
  /// injected or real transient faults the victim job is
  /// schedule-dependent, which is why the CSV column is opt-in.
  unsigned attempts = 1;
  /// Failure class of the *first* retried attempt ("error",
  /// "out-of-memory", "deadline", "hung"); empty when attempts == 1.
  std::string retry_reason;
};

/// Wall-clock decomposition of one worker's life inside a batch: every
/// nanosecond between spawn and join is attributed to exactly one of
/// busy (inside a job attempt), steal-search (hunting other deques after
/// missing its own), sink (journal append + result delivery) or idle
/// (everything else: retry backoff, waiting out the drain).  Busy, steal
/// and sink are measured with the monotonic clock; idle is the
/// remainder against the batch wall time, clamped at zero.  All seconds
/// are zero when telemetry is compiled out; the event counts survive.
struct WorkerUtilization {
  unsigned worker = 0;
  double busy_seconds = 0.0;
  double steal_seconds = 0.0;
  double sink_seconds = 0.0;
  double idle_seconds = 0.0;
  std::uint64_t jobs = 0;           ///< jobs this worker finished
  std::uint64_t steal_attempts = 0; ///< sweeps past its own (empty) deque
  std::uint64_t steals = 0;         ///< sweeps that yielded an item
};

/// Distribution-level observability for one batch run: latency/steal/
/// queue-depth histograms (also merged into the process-global bank for
/// `bddmin_cli stats`) and the per-worker utilization table.  All
/// wall-clock derived, hence outside the determinism contract; empty /
/// zero when telemetry is compiled out.
struct BatchMetrics {
  telemetry::HistogramSnapshot job_latency_ns;   ///< final outcomes only
  telemetry::HistogramSnapshot job_steps;        ///< governor steps per job
  telemetry::HistogramSnapshot steal_search_ns;  ///< per own-deque miss
  telemetry::HistogramSnapshot queue_depth;      ///< sampled backlog
  telemetry::HistogramSnapshot shard_jobs;       ///< jobs per shard
  telemetry::HistogramSnapshot shard_cost;       ///< estimated cost per shard
  std::vector<WorkerUtilization> workers;
  std::uint64_t steal_attempts = 0;  ///< totals over workers
  std::uint64_t steals = 0;
  // Shard-plan facts.  Deterministic (pure function of the submission
  // stream and shard_cost), unlike the wall-clock histograms above.
  std::uint64_t shards = 0;            ///< shards dispatched
  std::uint64_t shard_cost_budget = 0; ///< effective EngineOptions::shard_cost
  std::uint64_t warm_jobs = 0;  ///< jobs that reused a warm manager
  std::uint64_t cold_jobs = 0;  ///< jobs that started from reset()
};

struct BatchReport {
  std::vector<std::string> names;     ///< heuristic names (column order)
  std::vector<JobOutcome> outcomes;   ///< submission order, always complete
  unsigned num_threads = 1;
  /// Jobs whose payload matched an earlier job's and were filled from its
  /// outcome instead of being re-minimized (0 when dedup_jobs is off).
  std::size_t duplicate_jobs = 0;
  double wall_seconds = 0.0;
  /// Scheduler observability for this run (see BatchMetrics).  Never
  /// feeds the CSV, so the byte-determinism contract is untouched.
  BatchMetrics metrics;

  [[nodiscard]] std::size_t count(JobStatus s) const noexcept;
};

/// Run the whole batch; blocks until every job has an outcome.
[[nodiscard]] BatchReport run_batch(std::span<const Job> jobs,
                                    const EngineOptions& opts = {});

/// CSV of the report, one row per job in submission order.  The default
/// column set is deterministic across thread counts *and* across shard
/// modes — it contains only canonical facts (sizes, statuses, covers,
/// audit verdicts).  `include_timings` appends per-heuristic seconds,
/// job seconds and the worker id, which are not deterministic.
/// `include_counters` appends per-job telemetry counters, `peak_live`
/// and per-heuristic phase step splits — deterministic across thread
/// counts (all zeros when telemetry is compiled out) but sensitive to
/// the shard mode: warm computed caches do less work, which is the
/// point.  `include_attempts` appends the retry columns (`attempts`,
/// `retry_reason`) — deterministic only when no transient fault fired
/// (see JobOutcome::attempts).
[[nodiscard]] std::string report_csv(const BatchReport& report,
                                     bool include_timings = false,
                                     bool include_counters = false,
                                     bool include_attempts = false);

}  // namespace bddmin::engine
