/// \file flight.hpp
/// \brief Per-worker flight recorder: a fixed ring of scheduler events.
///
/// Counters say how often things happened and histograms say how they
/// were distributed, but when a job is quarantined or a failpoint kills
/// the process, the question is *what was this worker doing just now* —
/// and by then the trace (if any) is unwritten and the window for
/// attaching a debugger is gone.  The flight recorder answers it the way
/// avionics do: each worker keeps the last kCapacity scheduler events
/// (job start/finish, steal, retry, quarantine, failpoint fire) in a
/// fixed ring it alone writes, and the ring is dumped — to stderr, and
/// next to the journal when one is configured — when:
///
///  * a job's final outcome is quarantine (the worker dumps its own ring),
///  * a failpoint fires fatally (`flight_fatal_dump()` runs on the dying
///    thread before `_Exit`, via the thread-local registration below), or
///  * `BDDMIN_FLIGHT_DUMP=1` (every ring, after the workers join).
///
/// Recording is a handful of stores into a preallocated array — no
/// locks, no allocation — so it stays on even in production runs.  The
/// ring is single-writer (its worker); cross-thread reads happen only
/// after the worker joined (env dump) or never (self dumps), so no
/// atomics are needed.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bddmin::engine {

/// Scheduler event classes the recorder distinguishes.
enum class FlightEventType : std::uint8_t {
  kJobStart,    ///< attempt began (code = attempt number)
  kJobFinish,   ///< attempt ended (code = JobStatus of the attempt)
  kSteal,       ///< job obtained from another worker's deque
  kRetry,       ///< attempt failed and will be retried (code = JobStatus)
  kQuarantine,  ///< final outcome quarantined (code = attempts used)
  kFailpoint,   ///< an armed failpoint fired on this worker
};

[[nodiscard]] const char* flight_event_name(FlightEventType t) noexcept;

/// One recorded event.  16 bytes; the ring is a flat array of these.
struct FlightEvent {
  std::uint64_t ts_ns = 0;    ///< steady-clock ns (process-relative)
  std::uint32_t job = 0;      ///< job index within the batch
  std::uint16_t attempt = 0;  ///< 1-based attempt, 0 when not applicable
  FlightEventType type = FlightEventType::kJobStart;
  std::uint8_t code = 0;      ///< type-dependent detail (see enum docs)
};

/// Fixed ring of the last kCapacity events.  Single writer (the owning
/// worker); see the file docs for the read model.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 64;

  void record(FlightEventType type, std::uint32_t job, std::uint16_t attempt,
              std::uint8_t code) noexcept;

  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }

  /// Append a human-readable dump (chronological, timestamps relative to
  /// the oldest retained event) to \p out.  \p worker and \p reason
  /// label the header line.
  void dump(std::string* out, unsigned worker, const char* reason) const;

 private:
  std::array<FlightEvent, kCapacity> ring_{};
  std::uint64_t total_ = 0;  ///< events ever recorded; ring_[total_ % cap]
};

/// Write \p text to stderr and, when \p path is non-empty, append it to
/// that file (creating it if needed).  Emits a "flight_dump" trace
/// instant so trace readers can correlate.
void flight_write_dump(const std::string& text, const std::string& path);

/// Register the calling thread's recorder so a fatal failpoint deep in
/// the stack (journal commit, for instance) can dump it before _Exit.
/// Pass nullptr to deregister (workers do, before returning).  The
/// \p dump_path string must outlive the registration.
void set_thread_flight_recorder(FlightRecorder* rec, unsigned worker,
                                const std::string* dump_path) noexcept;

/// Dump the calling thread's registered recorder (no-op when none),
/// labelled with \p reason.  Called on the fatal-failpoint path; must
/// not allocate after the dump text is built — it writes and returns.
void flight_fatal_dump(const char* reason);

}  // namespace bddmin::engine
