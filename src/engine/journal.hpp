/// \file journal.hpp
/// \brief Write-ahead job journal: crash-safe checkpoint/resume for the
/// batch engine.
///
/// Format (text, line-oriented, append-only):
///
///     BDDMIN-JOURNAL v1
///     J <index> <crc32-hex> <escaped job payload>
///     C <index> <crc32-hex> <escaped outcome payload>
///
/// `J` records every submitted job up front (the write-ahead part —
/// before any work starts the full batch is on disk, so a resumed run
/// needs nothing but the journal); `C` records each completed outcome as
/// it is delivered.  Payloads are comma-joined fields with bytes outside
/// printable ASCII (and '%', ',') percent-escaped, so a record is always
/// exactly one line; doubles use %.17g so they round-trip exactly and a
/// resumed CSV is byte-identical to an uninterrupted one.  Each record
/// carries a CRC-32 over its payload and every append is fsync'd before
/// the writer returns — a `kill -9` can lose at most the record being
/// written, never corrupt an earlier one.
///
/// Group commit (the sharded engine's mode): instead of one
/// fwrite+fsync per completion, a worker formats its shard's C records
/// locally (`format_completed_record`) and flushes them in a single
/// `append_raw_lines` call — one fsync per *shard*.  Durability weakens
/// exactly as far as the batching: a crash loses at most the unflushed
/// whole records of in-flight shards (each a well-formed line that was
/// simply never written), plus possibly one torn final line — both
/// already covered by the forgiving-tail recovery rules below, so a
/// resumed run re-executes those jobs and converges to the identical
/// CSV.
///
/// Recovery (`read_journal`) is deliberately forgiving about the tail
/// and strict about the head:
///  * unknown/garbled header → JournalError (a wrong-version file should
///    not be silently half-replayed);
///  * CRC mismatch or malformed record → the record is quarantined (a
///    warning; the job simply re-runs);
///  * truncated final line (the kill -9 signature) → ignored;
///  * duplicate completion for one index → first wins, warning.
///
/// The JournalWriter is thread-safe (the engine appends from every
/// worker); reads happen before the batch starts, single-threaded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/thread_annotations.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"

namespace bddmin::engine {

/// Unrecoverable journal problems: unreadable file, version mismatch,
/// write/fsync failure.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything a resume needs, parsed from a journal file.
struct JournalContents {
  /// Submitted jobs in submission order (dense by index).
  std::vector<Job> jobs;
  /// Recorded outcome per index; nullopt = incomplete, re-run it.
  std::vector<std::optional<JobOutcome>> completed;
  /// Human-readable notes about quarantined/duplicate/truncated records.
  std::vector<std::string> warnings;

  [[nodiscard]] std::size_t completed_count() const noexcept {
    std::size_t n = 0;
    for (const auto& c : completed) n += c.has_value() ? 1 : 0;
    return n;
  }
};

/// Append-only journal writer.  Every append is checksummed and fsync'd
/// before returning; throws JournalError on I/O failure.
class JournalWriter {
 public:
  /// Opens \p path; \p truncate starts a fresh journal (writes the
  /// header), otherwise appends to an existing one (resume).
  JournalWriter(std::string path, bool truncate);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append_submitted(std::size_t index, const Job& job)
      BDDMIN_EXCLUDES(mu_);
  void append_completed(std::size_t index, const JobOutcome& outcome)
      BDDMIN_EXCLUDES(mu_);
  /// Group commit: write \p lines — a concatenation of full record lines
  /// from format_completed_record — with one fwrite + fflush + fsync.
  /// No-op on an empty string.  Fires the same `journal_commit_abort`
  /// failpoint as append_completed (the crash happens *before* the
  /// batched records reach the file, so every job in the group re-runs
  /// on resume).
  void append_raw_lines(const std::string& lines) BDDMIN_EXCLUDES(mu_);

 private:
  /// Single durable write of \p bytes under mu_.  \p completion polls the
  /// journal_commit_abort failpoint (inside the lock, so the nth-hit
  /// ordering is serialized against earlier commits — the n-1 preceding
  /// flushes are durable before the nth one dies).
  void commit(const std::string& bytes, bool completion)
      BDDMIN_EXCLUDES(mu_);

  std::string path_;
  std::mutex mu_;
  std::FILE* file_ BDDMIN_GUARDED_BY(mu_) = nullptr;
};

/// Parse \p path (see the recovery rules in the file comment).  Throws
/// JournalError when the file cannot be read or the header does not
/// match; every other defect degrades to a warning.
[[nodiscard]] JournalContents read_journal(const std::string& path);

// ---- Record codecs (exposed for tests) --------------------------------

/// CRC-32 (IEEE, reflected) of \p text.
[[nodiscard]] std::uint32_t journal_crc32(const std::string& text) noexcept;

[[nodiscard]] std::string encode_job_record(const Job& job);
[[nodiscard]] Job decode_job_record(const std::string& payload);
[[nodiscard]] std::string encode_outcome_record(const JobOutcome& outcome);
[[nodiscard]] JobOutcome decode_outcome_record(const std::string& payload);

/// The exact line append_completed(index, outcome) would write —
/// `C <index> <crc32-hex> <payload>\n` — without touching any file.
/// Building blocks for group commit: format per worker (no lock), flush
/// batches via JournalWriter::append_raw_lines.
[[nodiscard]] std::string format_completed_record(std::size_t index,
                                                  const JobOutcome& outcome);

}  // namespace bddmin::engine
