#include "engine/journal.hpp"

#include <unistd.h>

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "analysis/failpoint.hpp"
#include "engine/flight.hpp"

namespace bddmin::engine {
namespace {

constexpr const char kHeader[] = "BDDMIN-JOURNAL v1";

// ---- Field escaping ----------------------------------------------------
// One record = one line.  Fields are comma-joined; any byte that could
// break the framing (control characters, comma, percent, non-ASCII) is
// percent-escaped, so forest payloads with embedded newlines survive.

bool needs_escape(unsigned char c) noexcept {
  return c < 0x20 || c >= 0x7f || c == '%' || c == ',';
}

std::string escape_field(const std::string& raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    const auto c = static_cast<unsigned char>(ch);
    if (needs_escape(c)) {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string unescape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 2 >= text.size()) {
      throw std::invalid_argument("dangling escape in journal field");
    }
    const int hi = hex_nibble(text[i + 1]);
    const int lo = hex_nibble(text[i + 2]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("bad escape in journal field");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

// ---- Field cursor ------------------------------------------------------

/// Sequential reader over the comma-separated, escaped fields of one
/// payload.  Throws std::invalid_argument on exhaustion or bad syntax —
/// read_journal turns that into a quarantined record.
class FieldCursor {
 public:
  explicit FieldCursor(const std::string& payload) : payload_(payload) {}

  std::string next_string() {
    if (pos_ > payload_.size()) {
      throw std::invalid_argument("journal record: too few fields");
    }
    std::size_t comma = payload_.find(',', pos_);
    if (comma == std::string::npos) comma = payload_.size();
    const std::string_view raw =
        std::string_view(payload_).substr(pos_, comma - pos_);
    pos_ = comma + 1;
    return unescape_field(raw);
  }

  std::uint64_t next_u64() {
    const std::string text = next_string();
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw std::invalid_argument("journal record: bad integer field '" +
                                  text + "'");
    }
    return value;
  }

  double next_double() {
    const std::string text = next_string();
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      throw std::invalid_argument("journal record: bad double field '" + text +
                                  "'");
    }
    return value;
  }

  void expect_done() const {
    if (pos_ <= payload_.size()) {
      throw std::invalid_argument("journal record: trailing fields");
    }
  }

 private:
  const std::string& payload_;
  std::size_t pos_ = 0;
};

void put(std::string& out, const std::string& field) {
  if (!out.empty()) out.push_back(',');
  out += escape_field(field);
}

void put_u64(std::string& out, std::uint64_t value) {
  put(out, std::to_string(value));
}

void put_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  put(out, buf);
}

}  // namespace

std::uint32_t journal_crc32(const std::string& text) noexcept {
  // CRC-32 (IEEE 802.3, reflected), bit-serial: the journal writes are
  // fsync-bound, so a table-free implementation is plenty fast.
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : text) {
    crc ^= static_cast<unsigned char>(ch);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_job_record(const Job& job) {
  std::string out;
  put(out, job.name);
  put_u64(out, job.num_vars);
  put_u64(out, static_cast<std::uint64_t>(job.kind));
  put(out, job.forest);
  put_u64(out, job.f_tt);
  put_u64(out, job.c_tt);
  return out;
}

Job decode_job_record(const std::string& payload) {
  FieldCursor cur(payload);
  Job job;
  job.name = cur.next_string();
  job.num_vars = static_cast<unsigned>(cur.next_u64());
  const std::uint64_t kind = cur.next_u64();
  if (kind > static_cast<std::uint64_t>(PayloadKind::kTruthTable)) {
    throw std::invalid_argument("journal record: bad payload kind");
  }
  job.kind = static_cast<PayloadKind>(kind);
  job.forest = cur.next_string();
  job.f_tt = cur.next_u64();
  job.c_tt = cur.next_u64();
  cur.expect_done();
  return job;
}

std::string encode_outcome_record(const JobOutcome& outcome) {
  std::string out;
  put(out, outcome.name);
  put_u64(out, outcome.num_vars);
  put_u64(out, static_cast<std::uint64_t>(outcome.status));
  put(out, outcome.error);
  put(out, outcome.detail);
  put_u64(out, outcome.f_size);
  put_u64(out, outcome.c_size);
  put_double(out, outcome.c_onset);
  put_u64(out, outcome.min_size);
  put_u64(out, outcome.lower_bound);
  put_u64(out, outcome.audit_findings);
  put_u64(out, outcome.peak_live);
  put_u64(out, outcome.worker);
  put_double(out, outcome.seconds);
  put_u64(out, outcome.attempts);
  put(out, outcome.retry_reason);
  put_u64(out, telemetry::kNumCounters);
  for (const std::uint64_t v : outcome.counters.values) put_u64(out, v);
  put_u64(out, outcome.results.size());
  for (const HeuristicResult& r : outcome.results) {
    put_u64(out, r.size);
    put_double(out, r.seconds);
    for (const telemetry::PhaseData& p : r.phases.phases) {
      put_double(out, p.seconds);
      put_u64(out, p.steps);
      put_u64(out, p.cache_hits);
      put_u64(out, p.cache_misses);
      put_u64(out, p.unique_inserts);
    }
  }
  return out;
}

JobOutcome decode_outcome_record(const std::string& payload) {
  FieldCursor cur(payload);
  JobOutcome outcome;
  outcome.name = cur.next_string();
  outcome.num_vars = static_cast<unsigned>(cur.next_u64());
  const std::uint64_t status = cur.next_u64();
  if (status > static_cast<std::uint64_t>(JobStatus::kQuarantined)) {
    throw std::invalid_argument("journal record: bad status");
  }
  outcome.status = static_cast<JobStatus>(status);
  outcome.error = cur.next_string();
  outcome.detail = cur.next_string();
  outcome.f_size = cur.next_u64();
  outcome.c_size = cur.next_u64();
  outcome.c_onset = cur.next_double();
  outcome.min_size = cur.next_u64();
  outcome.lower_bound = cur.next_u64();
  outcome.audit_findings = cur.next_u64();
  outcome.peak_live = cur.next_u64();
  outcome.worker = static_cast<unsigned>(cur.next_u64());
  outcome.seconds = cur.next_double();
  outcome.attempts = static_cast<unsigned>(cur.next_u64());
  outcome.retry_reason = cur.next_string();
  const std::uint64_t num_counters = cur.next_u64();
  if (num_counters != telemetry::kNumCounters) {
    throw std::invalid_argument(
        "journal record: counter layout mismatch (file " +
        std::to_string(num_counters) + ", build " +
        std::to_string(telemetry::kNumCounters) + ")");
  }
  for (std::uint64_t& v : outcome.counters.values) v = cur.next_u64();
  const std::uint64_t num_results = cur.next_u64();
  if (num_results > 1000) {
    throw std::invalid_argument("journal record: implausible result count");
  }
  outcome.results.resize(num_results);
  for (HeuristicResult& r : outcome.results) {
    r.size = cur.next_u64();
    r.seconds = cur.next_double();
    for (telemetry::PhaseData& p : r.phases.phases) {
      p.seconds = cur.next_double();
      p.steps = cur.next_u64();
      p.cache_hits = cur.next_u64();
      p.cache_misses = cur.next_u64();
      p.unique_inserts = cur.next_u64();
    }
  }
  cur.expect_done();
  return outcome;
}

// ---- Writer ------------------------------------------------------------

JournalWriter::JournalWriter(std::string path, bool truncate)
    : path_(std::move(path)) {
  const std::lock_guard<std::mutex> lock(mu_);
  file_ = std::fopen(path_.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    throw JournalError("journal: cannot open '" + path_ + "' for writing");
  }
  if (truncate) {
    const std::string header = std::string(kHeader) + "\n";
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
      throw JournalError("journal: cannot write header to '" + path_ + "'");
    }
  }
}

JournalWriter::~JournalWriter() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

namespace {

/// One full record line: "<type> <index> <crc32-hex> <payload>\n".
[[nodiscard]] std::string format_record(char type, std::size_t index,
                                        const std::string& payload) {
  char prefix[32];
  std::snprintf(prefix, sizeof prefix, "%c %zu %08x ", type, index,
                journal_crc32(payload));
  return std::string(prefix) + payload + "\n";
}

/// The crash the resume path must heal: die *before* any completion
/// record (single or group) reaches the journal, so the affected jobs
/// re-run on resume.  The worker's flight recorder is dumped first —
/// this is exactly the "fatal failpoint" moment the ring exists for.
/// Shared by append_completed and append_raw_lines so once/nth arming
/// has a single polling site.
void maybe_abort_before_commit() {
  if (const auto hit = BDDMIN_FAILPOINT("journal_commit_abort")) {
    flight_fatal_dump("journal_commit_abort");
    std::_Exit(static_cast<int>(hit.value));
  }
}

}  // namespace

void JournalWriter::commit(const std::string& bytes, bool completion) {
  const std::lock_guard<std::mutex> lock(mu_);
  // The failpoint polls *inside* the lock: commits serialize, so an
  // nth-hit abort is guaranteed to leave the n-1 preceding commits
  // durable — the crash-matrix tests depend on that ordering.
  if (completion) maybe_abort_before_commit();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw JournalError("journal: write failed on '" + path_ + "'");
  }
}

std::string format_completed_record(std::size_t index,
                                    const JobOutcome& outcome) {
  return format_record('C', index, encode_outcome_record(outcome));
}

void JournalWriter::append_raw_lines(const std::string& lines) {
  if (lines.empty()) return;
  commit(lines, /*completion=*/true);
}

void JournalWriter::append_submitted(std::size_t index, const Job& job) {
  commit(format_record('J', index, encode_job_record(job)),
         /*completion=*/false);
}

void JournalWriter::append_completed(std::size_t index,
                                     const JobOutcome& outcome) {
  commit(format_completed_record(index, outcome), /*completion=*/true);
}

// ---- Reader ------------------------------------------------------------

JournalContents read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw JournalError("journal: cannot open '" + path + "' for reading");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw JournalError("journal: read failed on '" + path + "'");
  }

  JournalContents contents;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      // No terminating newline: the kill -9 signature.  The partial
      // record was never acknowledged, so dropping it is safe.
      contents.warnings.push_back("line " + std::to_string(lineno + 1) +
                                  ": truncated tail record ignored");
      break;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;

    if (lineno == 1) {
      if (line != kHeader) {
        throw JournalError("journal: '" + path +
                           "' has an unrecognized header '" + line +
                           "' (expected '" + kHeader + "')");
      }
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;

    const auto quarantine = [&](const std::string& why) {
      contents.warnings.push_back("line " + std::to_string(lineno) + ": " +
                                  why + " — record quarantined");
    };

    // "<type> <index> <crc32-hex> <payload>"
    char type = 0;
    unsigned long long index = 0;
    unsigned int crc = 0;
    int consumed = 0;
    if (std::sscanf(line.c_str(), "%c %llu %8x %n", &type, &index, &crc,
                    &consumed) != 3 ||
        (type != 'J' && type != 'C')) {
      quarantine("unparsable record");
      continue;
    }
    const std::string payload = line.substr(static_cast<std::size_t>(consumed));
    if (journal_crc32(payload) != crc) {
      quarantine("checksum mismatch");
      continue;
    }
    try {
      if (type == 'J') {
        if (index != contents.jobs.size()) {
          quarantine("submit record out of order (index " +
                     std::to_string(index) + ")");
          continue;
        }
        contents.jobs.push_back(decode_job_record(payload));
        contents.completed.emplace_back();
      } else {
        if (index >= contents.jobs.size()) {
          quarantine("completion for unknown job index " +
                     std::to_string(index));
          continue;
        }
        if (contents.completed[index].has_value()) {
          quarantine("duplicate completion for job index " +
                     std::to_string(index) + " (first record wins)");
          continue;
        }
        contents.completed[index] = decode_outcome_record(payload);
      }
    } catch (const std::invalid_argument& e) {
      quarantine(e.what());
    }
  }
  if (!saw_header) {
    throw JournalError("journal: '" + path + "' is empty (no header)");
  }
  return contents;
}

}  // namespace bddmin::engine
