#include "engine/shard.hpp"

#include <algorithm>

namespace bddmin::engine {

std::uint64_t estimate_job_cost(const Job& job) noexcept {
  std::uint64_t payload_bytes = 0;
  if (job.kind == PayloadKind::kTruthTable) {
    // Two tables (f and c) of 2^num_vars bits each; num_vars is bounded
    // by the truth-table payload limit, so the shift is safe.
    payload_bytes = (2ull << job.num_vars) / 8;
  } else {
    payload_bytes = job.forest.size();
  }
  return kJobFixedCost + payload_bytes;
}

ShardPlan pack_shards(std::span<const Job> jobs,
                      const std::vector<std::size_t>& run,
                      std::uint64_t cost_budget) {
  ShardPlan plan;
  if (run.empty()) return plan;
  plan.shards.reserve(cost_budget == 0 ? run.size() : run.size() / 4 + 1);
  Shard current;
  current.first = 0;
  for (std::uint32_t k = 0; k < run.size(); ++k) {
    const std::uint64_t cost = estimate_job_cost(jobs[run[k]]);
    const bool over = current.count > 0 &&
                      (cost_budget == 0 || current.count >= kMaxShardJobs ||
                       current.cost + cost > cost_budget);
    if (over) {
      plan.shards.push_back(current);
      current.first = k;
      current.count = 0;
      current.cost = 0;
    }
    ++current.count;
    current.cost += cost;
  }
  plan.shards.push_back(current);
  for (const Shard& s : plan.shards) {
    plan.total_cost += s.cost;
    plan.max_shard_cost = std::max(plan.max_shard_cost, s.cost);
    plan.max_shard_jobs = std::max(plan.max_shard_jobs, s.count);
  }
  return plan;
}

}  // namespace bddmin::engine
