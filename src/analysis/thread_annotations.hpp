/// \file thread_annotations.hpp
/// \brief Clang `-Wthread-safety` capability annotations for bddmin.
///
/// Thin macro wrappers over Clang's thread-safety attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), expanding to
/// nothing on compilers without the capability analysis (GCC, MSVC).  The
/// annotated contracts are the ones the upcoming shared concurrent manager
/// refactor depends on:
///
///  * every mutex-guarded field declares its mutex with
///    `BDDMIN_GUARDED_BY(mu)` — the work-stealing deques, the engine's
///    result sink, the tracer's per-thread logs and registry;
///  * functions that must (or must not) hold a mutex say so with
///    `BDDMIN_REQUIRES` / `BDDMIN_EXCLUDES`;
///  * `bdd::Manager` is declared a `BDDMIN_CAPABILITY` — a single-owner
///    resource.  Nothing ever locks it: the annotation exists so future
///    cross-thread sharing of one Manager has to be written as an explicit
///    capability transfer instead of compiling silently.
///
/// Build integration: Clang builds add `-Wthread-safety` (and
/// `-Werror=thread-safety` under BDDMIN_WERROR); see the top-level
/// CMakeLists.txt.  The repo-specific rules the generic analysis cannot
/// express are enforced by tools/bddmin_lint.py (see docs/CONCURRENCY.md).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define BDDMIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BDDMIN_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

/// A type whose instances can be held/owned: mutexes, and single-owner
/// resources like Manager.  \p x names the capability in diagnostics.
#define BDDMIN_CAPABILITY(x) BDDMIN_THREAD_ANNOTATION(capability(x))

/// RAII types that acquire a capability in their constructor and release
/// it in their destructor (std::lock_guard-alikes).
#define BDDMIN_SCOPED_CAPABILITY BDDMIN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding \p x.
#define BDDMIN_GUARDED_BY(x) BDDMIN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by \p x.
#define BDDMIN_PT_GUARDED_BY(x) BDDMIN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering edges: this capability must be acquired before/after the
/// listed ones.
#define BDDMIN_ACQUIRED_BEFORE(...) \
  BDDMIN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BDDMIN_ACQUIRED_AFTER(...) \
  BDDMIN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The caller must hold the listed capabilities (exclusively / shared).
#define BDDMIN_REQUIRES(...) \
  BDDMIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BDDMIN_REQUIRES_SHARED(...) \
  BDDMIN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires/releases the listed capabilities itself.
#define BDDMIN_ACQUIRE(...) \
  BDDMIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BDDMIN_ACQUIRE_SHARED(...) \
  BDDMIN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BDDMIN_RELEASE(...) \
  BDDMIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BDDMIN_RELEASE_SHARED(...) \
  BDDMIN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire the capability; \p ... is the success
/// return value followed by the capability.
#define BDDMIN_TRY_ACQUIRE(...) \
  BDDMIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define BDDMIN_EXCLUDES(...) BDDMIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define BDDMIN_ASSERT_CAPABILITY(x) \
  BDDMIN_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the named capability.
#define BDDMIN_RETURN_CAPABILITY(x) BDDMIN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions whose synchronization the analysis cannot
/// follow (e.g. publication via release/acquire atomics).  Every use must
/// carry a comment explaining the actual protocol.
#define BDDMIN_NO_THREAD_SAFETY_ANALYSIS \
  BDDMIN_THREAD_ANNOTATION(no_thread_safety_analysis)
