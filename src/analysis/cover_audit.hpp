/// \file cover_audit.hpp
/// \brief Tier-4 BddAudit pass: minimizer output contracts.
///
/// Every heuristic maps an incompletely specified function [f, c] to a
/// cover g that must satisfy Definition 2:  f·c <= g <= f + c̄.  A result
/// outside that interval silently corrupts whatever verification the
/// minimization feeds (the product-machine traversal would explore wrong
/// frontiers).  This pass checks both bounds and, on violation, extracts
/// a witness minterm so the offending heuristic can be debugged from the
/// report alone.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/audit.hpp"
#include "minimize/registry.hpp"

namespace bddmin::analysis {

/// Check g against f·c <= g <= f + c̄; on violation append a kCover
/// finding naming \p label, the violated bound and a witness cube.
void audit_cover(Manager& mgr, Edge f, Edge c, Edge g, std::string_view label,
                 AuditReport& report);

/// Run every heuristic in \p set on [f, c] and audit each result.  The
/// inputs are pinned across the runs; heuristic exceptions surface as
/// kCover findings rather than propagating.
[[nodiscard]] AuditReport audit_heuristic_contracts(
    Manager& mgr, Edge f, Edge c,
    const std::vector<minimize::Heuristic>& set);

}  // namespace bddmin::analysis
