#include "analysis/mutate.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/access.hpp"

namespace bddmin::analysis {
namespace {

/// Indices of allocated, non-terminal nodes, rotated by \p seed so
/// different seeds corrupt different targets.
std::vector<std::uint32_t> allocated_targets(const Manager& mgr,
                                             std::uint64_t seed) {
  const std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].var != kFreeVar) out.push_back(i);
  }
  if (!out.empty()) {
    const std::size_t rot = static_cast<std::size_t>(seed % out.size());
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(rot),
                out.end());
  }
  return out;
}

MutationResult flip_complement(Manager& mgr, std::uint64_t seed) {
  std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  const std::vector<std::uint32_t> targets = allocated_targets(mgr, seed);
  if (targets.empty()) return {};
  const std::uint32_t i = targets.front();
  nodes[i].hi = !nodes[i].hi;
  return {true, "complemented the stored hi edge of node " + std::to_string(i)};
}

MutationResult unlink_subtable(Manager& mgr, std::uint64_t seed) {
  std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  auto& subtables = ManagerAccess::subtables(mgr);
  for (const std::uint32_t i : allocated_targets(mgr, seed)) {
    auto& table = subtables[nodes[i].var];
    const std::size_t bucket =
        ManagerAccess::bucket_of(nodes[i].hi, nodes[i].lo, table.buckets.size());
    // Unlink without touching table.count — that is the corruption.
    std::uint32_t* link = &table.buckets[bucket];
    while (*link != kNilIndex && *link != i) link = &nodes[*link].next;
    if (*link != i) continue;  // hash chain already inconsistent; next target
    *link = nodes[i].next;
    return {true, "unlinked node " + std::to_string(i) +
                      " from the subtable chain of var " +
                      std::to_string(nodes[i].var)};
  }
  return {};
}

MutationResult poison_cache(Manager& mgr, std::uint64_t seed) {
  const std::vector<std::uint32_t> targets = allocated_targets(mgr, seed);
  if (targets.empty()) return {};
  // Memoize ite(f, 1, 0) = f as !f: a live-epoch entry whose result is
  // simply wrong, exactly what a missed invalidation would produce.
  const Edge f{targets.front() << 1};
  mgr.cache_insert(ManagerAccess::op_ite(), f, kOne, kZero, !f);
  return {true, "poisoned the ITE cache entry (" + std::to_string(f.index()) +
                    ", 1, 0) with the complemented result"};
}

MutationResult skew_ref(Manager& mgr, std::uint64_t seed) {
  std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  // Recompute structural parent refs so we can pick a node whose stored
  // count will drop *below* them — detectable without any root registry.
  std::vector<std::uint32_t> structural(nodes.size(), 0);
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].var == kFreeVar) continue;
    ++structural[nodes[i].hi.index()];
    ++structural[nodes[i].lo.index()];
  }
  for (const std::uint32_t i : allocated_targets(mgr, seed)) {
    if (structural[i] == 0 || nodes[i].ref == 0 ||
        nodes[i].ref != structural[i]) {
      continue;
    }
    --nodes[i].ref;  // bypasses deref(): live/dead accounting not updated
    return {true, "dropped one reference from node " + std::to_string(i) +
                      " without accounting"};
  }
  return {};
}

MutationResult skew_counts(Manager& mgr, std::uint64_t) {
  // Move one node from dead to live accounting.  When dead_count > 0 the
  // live+dead sum is preserved, so only a pass that recomputes the
  // counters from actual per-node refs (the tier-2 audit) can notice —
  // exactly the gap the historical check_invariants() left open.
  ++ManagerAccess::live_count(mgr);
  if (ManagerAccess::dead_count(mgr) > 0) --ManagerAccess::dead_count(mgr);
  return {true, "moved one node from dead to live accounting with no node "
                "changing state"};
}

}  // namespace

Category mutation_audit_category(Mutation m) noexcept {
  switch (m) {
    case Mutation::kComplementFlip: return Category::kStructure;
    case Mutation::kSubtableUnlink: return Category::kChain;
    case Mutation::kStaleCache: return Category::kCache;
    case Mutation::kRefSkew: return Category::kRefCount;
    case Mutation::kCountSkew: return Category::kAccounting;
  }
  return Category::kStructure;
}

const char* mutation_name(Mutation m) noexcept {
  switch (m) {
    case Mutation::kComplementFlip: return "complement-flip";
    case Mutation::kSubtableUnlink: return "unlink";
    case Mutation::kStaleCache: return "stale-cache";
    case Mutation::kRefSkew: return "ref-skew";
    case Mutation::kCountSkew: return "count-skew";
  }
  return "?";
}

Mutation mutation_from_name(std::string_view name) {
  for (const Mutation m :
       {Mutation::kComplementFlip, Mutation::kSubtableUnlink,
        Mutation::kStaleCache, Mutation::kRefSkew, Mutation::kCountSkew}) {
    if (name == mutation_name(m)) return m;
  }
  throw std::invalid_argument("unknown mutation class: " + std::string(name));
}

MutationResult inject(Manager& mgr, Mutation m, std::uint64_t seed) {
  switch (m) {
    case Mutation::kComplementFlip: return flip_complement(mgr, seed);
    case Mutation::kSubtableUnlink: return unlink_subtable(mgr, seed);
    case Mutation::kStaleCache: return poison_cache(mgr, seed);
    case Mutation::kRefSkew: return skew_ref(mgr, seed);
    case Mutation::kCountSkew: return skew_counts(mgr, seed);
  }
  return {};
}

}  // namespace bddmin::analysis
