/// \file access.hpp
/// \brief ManagerAccess: the one friend of Manager, giving the BddAudit
/// passes and the fault-injection harness read (and, for the harness,
/// write) access to the node table, subtables, free list and computed
/// cache without widening the public Manager API.
///
/// The private nested types (SubTable, CacheEntry) cannot be *named*
/// outside Manager, but objects of those types can be used through `auto`;
/// the deduced-return-type accessors below exploit exactly that.  Keep
/// every internals-touching helper in this struct so the audit subsystem
/// has a single, auditable doorway into the manager.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bdd/manager.hpp"

namespace bddmin::analysis {

struct ManagerAccess {
  static const std::vector<Node>& nodes(const Manager& m) noexcept {
    return m.nodes_;
  }
  static std::vector<Node>& nodes(Manager& m) noexcept { return m.nodes_; }

  /// Per-variable unique subtables; element type is Manager's private
  /// SubTable (`.buckets`, `.count`) — bind with `const auto&`.
  static const auto& subtables(const Manager& m) noexcept {
    return m.subtables_;
  }
  static auto& subtables(Manager& m) noexcept { return m.subtables_; }

  static const std::vector<std::uint32_t>& free_list(const Manager& m) noexcept {
    return m.free_list_;
  }

  static const std::vector<std::uint32_t>& var_to_level(const Manager& m) noexcept {
    return m.var_to_level_;
  }
  static const std::vector<std::uint32_t>& level_to_var(const Manager& m) noexcept {
    return m.level_to_var_;
  }

  /// Computed-cache sets; element type is Manager's private CacheSet, a
  /// 2-entry `.way` array of CacheEntry (`.k1`, `.k2`, `.epoch`,
  /// `.result`) — bind with `auto&`.
  static const auto& cache(const Manager& m) noexcept { return m.cache_; }
  static auto& cache(Manager& m) noexcept { return m.cache_; }
  static std::uint64_t cache_epoch(const Manager& m) noexcept {
    return m.cache_epoch_;
  }

  static std::size_t live_count(const Manager& m) noexcept { return m.live_count_; }
  static std::size_t dead_count(const Manager& m) noexcept { return m.dead_count_; }
  static std::size_t& live_count(Manager& m) noexcept { return m.live_count_; }
  static std::size_t& dead_count(Manager& m) noexcept { return m.dead_count_; }

  /// The manager's internal operation tags.  Thin forwarders into the
  /// bdd/cache_tags.hpp registry, kept so audit code reads
  /// `ManagerAccess::op_ite()` — "the tag the manager files ITE results
  /// under" — rather than naming the registry constant directly.
  static constexpr std::uint32_t op_ite() noexcept { return cache_tag::kIte; }
  static constexpr std::uint32_t op_and() noexcept { return cache_tag::kAnd; }
  static constexpr std::uint32_t op_xor() noexcept { return cache_tag::kXor; }
  static constexpr std::uint32_t op_disjoint() noexcept {
    return cache_tag::kDisjoint;
  }

  /// Bucket a (hi, lo) pair hashes to within a table of \p bucket_count
  /// (power-of-two) buckets.
  static std::size_t bucket_of(Edge hi, Edge lo, std::size_t bucket_count) noexcept {
    return Manager::node_hash(hi, lo) & (bucket_count - 1);
  }
};

}  // namespace bddmin::analysis
