#include "analysis/failpoint.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "analysis/check.hpp"
#include "harness/env.hpp"

namespace bddmin::analysis {
namespace {

/// The compile-time failpoint catalog.  Every BDDMIN_FAILPOINT site in
/// the tree must appear here exactly once; lint rule R7 parses the block
/// between the begin/end markers and cross-checks the sites.  The
/// default value is the hit payload when the arming spec does not
/// override it (latency in ms for the hang points, the exit status for
/// journal_commit_abort).
// bddmin-failpoint-catalog-begin
const std::vector<FailPointRegistry::CatalogEntry> kCatalog = {
    {"unique_insert_oom",
     "throw OutOfMemory in Manager::unique_insert before a new table slot "
     "is claimed (suppressed inside reorder critical sections)",
     0},
    {"bucket_grow_oom",
     "throw OutOfMemory in Manager::grow_buckets before the bucket array "
     "is reallocated (the table stays consistent, just denser)",
     0},
    {"cache_grow_oom",
     "simulate allocation failure in Manager::grow_cache: adaptive cache "
     "growth is quietly disabled, exactly like a real bad_alloc",
     0},
    {"gc_oom",
     "throw OutOfMemory at the head of Manager::garbage_collect, before "
     "any mutation",
     0},
    {"reorder_swap_oom",
     "throw OutOfMemory at the head of Manager::swap_adjacent_levels, "
     "before any mutation (an abort between swaps)",
     0},
    {"minimize_deadline",
     "throw Deadline at the entry of the restrict heuristic",
     0},
    {"minimize_hang",
     "abort-aware sleep (value = ms) at the entry of the restrict "
     "heuristic; cancelled by the engine watchdog via AbortRequested",
     200},
    {"job_decode_corrupt",
     "reject the job payload as corrupted in engine::decode_job "
     "(simulates a snapshot that fails integrity checks)",
     0},
    {"worker_loop_hang",
     "abort-aware sleep (value = ms) in the engine worker loop before a "
     "job runs; cancelled by the watchdog via AbortRequested",
     200},
    {"sink_drain_hang",
     "bounded sleep (value = ms) before an outcome is delivered to the "
     "result sink",
     50},
    {"journal_commit_abort",
     "terminate the process (value = exit status) immediately before a "
     "journal completion record is written — the crash the resume path "
     "must heal",
     42},
};
// bddmin-failpoint-catalog-end

/// splitmix64: tiny, seedable, statistically fine for fire/no-fire.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad failpoint spec '" + std::string(spec) +
                              "': " + why);
}

std::uint64_t parse_u64_field(std::string_view spec, std::string_view text,
                              const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec(spec, std::string(what) + " must be a non-negative integer, got '" +
                       std::string(text) + "'");
  }
  return value;
}

double parse_probability(std::string_view spec, std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double p = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !(p >= 0.0) || p > 1.0) {
    bad_spec(spec, "probability must be in [0, 1], got '" + copy + "'");
  }
  return p;
}

}  // namespace

FailPointHit FailPoint::poll() noexcept {
  if (!armed_.load(std::memory_order_relaxed)) return {};
  const std::lock_guard<std::mutex> lock(mu_);
  switch (cfg_.mode) {
    case FailPointMode::kOff:
      return {};  // raced with a disarm; benign
    case FailPointMode::kOnce:
      cfg_.mode = FailPointMode::kOff;
      armed_.store(false, std::memory_order_relaxed);
      return fire_locked();
    case FailPointMode::kNth:
      if (countdown_ > 1) {
        --countdown_;
        return {};
      }
      cfg_.mode = FailPointMode::kOff;
      armed_.store(false, std::memory_order_relaxed);
      return fire_locked();
    case FailPointMode::kRandom: {
      const std::uint64_t draw = splitmix64(rng_);
      // 53 uniform mantissa bits -> [0, 1).
      const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
      if (u < cfg_.probability) return fire_locked();
      return {};
    }
  }
  return {};
}

FailPointHit FailPoint::fire_locked() noexcept {
  fires_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t value =
      cfg_.value != 0 ? cfg_.value : default_value_;
  return FailPointHit{true, value};
}

void FailPoint::configure(const FailPointConfig& cfg) {
  const std::lock_guard<std::mutex> lock(mu_);
  cfg_ = cfg;
  countdown_ = cfg.nth == 0 ? 1 : cfg.nth;
  rng_ = cfg.seed;
  armed_.store(cfg.mode != FailPointMode::kOff, std::memory_order_relaxed);
}

FailPointRegistry& FailPointRegistry::instance() {
  static FailPointRegistry* registry = new FailPointRegistry();  // leaked
  return *registry;
}

const std::vector<FailPointRegistry::CatalogEntry>&
FailPointRegistry::catalog() {
  return kCatalog;
}

FailPointRegistry::FailPointRegistry() {
  points_.reserve(kCatalog.size());
  for (const CatalogEntry& entry : kCatalog) {
    points_.push_back(
        std::unique_ptr<FailPoint>(new FailPoint(entry.default_value)));
  }
}

FailPoint* FailPointRegistry::find(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kCatalog.size(); ++i) {
    if (name == kCatalog[i].name) return points_[i].get();
  }
  return nullptr;
}

FailPoint& FailPointRegistry::site(std::string_view name) {
  FailPoint* fp = find(name);
  BDDMIN_CHECK(fp != nullptr && "BDDMIN_FAILPOINT name not in catalog");
  return *fp;
}

void FailPointRegistry::arm(std::string_view name,
                            const FailPointConfig& cfg) {
  FailPoint* fp = find(name);
  if (fp == nullptr) {
    throw std::invalid_argument("unknown failpoint '" + std::string(name) +
                                "'");
  }
  fp->configure(cfg);
}

void FailPointRegistry::disarm(std::string_view name) {
  arm(name, FailPointConfig{});
}

void FailPointRegistry::disarm_all() noexcept {
  for (const std::unique_ptr<FailPoint>& fp : points_) {
    fp->configure(FailPointConfig{});
  }
}

FailPointHit FailPointRegistry::evaluate(std::string_view name) {
  FailPoint* fp = find(name);
  if (fp == nullptr) {
    throw std::invalid_argument("unknown failpoint '" + std::string(name) +
                                "'");
  }
  return fp->poll();
}

void FailPointRegistry::arm_from_spec(std::string_view spec) {
  // name:mode with mode in {off, once[:value], nth:N[:value],
  // random:P[:seed[:value]]}.
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string_view::npos) {
      fields.push_back(spec.substr(start));
      break;
    }
    fields.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (fields.size() < 2 || fields[0].empty()) {
    bad_spec(spec, "expected name:mode[:arg...]");
  }
  const std::string_view name = fields[0];
  const std::string_view mode = fields[1];
  FailPointConfig cfg;
  if (mode == "off") {
    if (fields.size() > 2) bad_spec(spec, "off takes no arguments");
    cfg.mode = FailPointMode::kOff;
  } else if (mode == "once") {
    if (fields.size() > 3) bad_spec(spec, "once takes at most one argument");
    cfg.mode = FailPointMode::kOnce;
    if (fields.size() == 3) {
      cfg.value = parse_u64_field(spec, fields[2], "value");
    }
  } else if (mode == "nth") {
    if (fields.size() < 3 || fields.size() > 4) {
      bad_spec(spec, "nth takes nth:N[:value]");
    }
    cfg.mode = FailPointMode::kNth;
    cfg.nth = parse_u64_field(spec, fields[2], "N");
    if (cfg.nth == 0) bad_spec(spec, "N must be >= 1");
    if (fields.size() == 4) {
      cfg.value = parse_u64_field(spec, fields[3], "value");
    }
  } else if (mode == "random") {
    if (fields.size() < 3 || fields.size() > 5) {
      bad_spec(spec, "random takes random:P[:seed[:value]]");
    }
    cfg.mode = FailPointMode::kRandom;
    cfg.probability = parse_probability(spec, fields[2]);
    if (fields.size() >= 4) {
      cfg.seed = parse_u64_field(spec, fields[3], "seed");
    }
    if (fields.size() == 5) {
      cfg.value = parse_u64_field(spec, fields[4], "value");
    }
  } else {
    bad_spec(spec, "unknown mode '" + std::string(mode) +
                       "' (off|once|nth|random)");
  }
  arm(name, cfg);  // throws on unknown name
}

void FailPointRegistry::arm_from_env() {
  const std::optional<std::string> raw =
      harness::env_string("BDDMIN_FAILPOINTS");
  if (!raw) return;
  const std::string& text = *raw;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string_view spec =
        std::string_view(text).substr(start, comma - start);
    if (!spec.empty()) {
      try {
        arm_from_spec(spec);
      } catch (const std::invalid_argument& e) {
        throw harness::EnvError(std::string("BDDMIN_FAILPOINTS: ") + e.what());
      }
    }
    start = comma + 1;
  }
}

}  // namespace bddmin::analysis
