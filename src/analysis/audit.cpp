#include "analysis/audit.hpp"

#include "harness/env.hpp"

namespace bddmin::analysis {

AuditLevel audit_level_from_env() {
  // Malformed values are a hard error (harness::EnvError): a fleet run
  // with a typo'd audit level must not silently audit nothing.
  const std::uint64_t value = harness::env_u64("BDDMIN_AUDIT_LEVEL", 0);
  if (value == 0) return AuditLevel::kOff;
  if (value >= 4) return AuditLevel::kCover;
  return static_cast<AuditLevel>(value);
}

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::kStructure: return "structure";
    case Category::kUniqueness: return "uniqueness";
    case Category::kChain: return "chain";
    case Category::kFreeList: return "free-list";
    case Category::kAccounting: return "accounting";
    case Category::kRefCount: return "ref-count";
    case Category::kReachability: return "reachability";
    case Category::kCache: return "cache";
    case Category::kCover: return "cover";
  }
  return "unknown";
}

bool AuditReport::has(Category c) const noexcept {
  for (const Finding& f : findings) {
    if (f.category == c) return true;
  }
  return false;
}

void AuditReport::add(Category c, std::string message) {
  if (findings.size() >= max_findings) {
    ++suppressed;
    return;
  }
  findings.push_back({c, std::move(message)});
}

std::string AuditReport::summary() const {
  std::string out;
  if (ok()) {
    out += "audit: clean\n";
  } else {
    out += "audit: " + std::to_string(findings.size() + suppressed) +
           " finding(s)\n";
    for (const Finding& f : findings) {
      out += "  [";
      out += category_name(f.category);
      out += "] ";
      out += f.message;
      out += "\n";
    }
    if (suppressed > 0) {
      out += "  ... " + std::to_string(suppressed) + " more suppressed\n";
    }
  }
  out += "  coverage: " + std::to_string(nodes_checked) + " nodes, " +
         std::to_string(chain_entries) + " chain entries, " +
         std::to_string(refs_recomputed) + " refs recomputed, " +
         std::to_string(cache_entries_checked) + " cache entries (" +
         std::to_string(cache_replays) + " replayed), " +
         std::to_string(covers_checked) + " covers\n";
  return out;
}

AuditReport audit_manager(Manager& mgr, const AuditOptions& opts) {
  AuditReport report;
  report.max_findings = opts.max_findings;
  if (opts.level >= AuditLevel::kStructural) audit_structure(mgr, report);
  if (opts.level >= AuditLevel::kRefcount) {
    audit_refcounts(mgr, opts.roots, opts.exact_roots, report);
  }
  if (opts.level >= AuditLevel::kCache) {
    audit_cache(mgr, opts.cache_replay_limit, report);
  }
  return report;
}

AuditReport audit_manager(const Manager& mgr, const AuditOptions& opts) {
  AuditReport report;
  report.max_findings = opts.max_findings;
  if (opts.level >= AuditLevel::kStructural) audit_structure(mgr, report);
  if (opts.level >= AuditLevel::kRefcount) {
    audit_refcounts(mgr, opts.roots, opts.exact_roots, report);
  }
  return report;
}

}  // namespace bddmin::analysis
