/// \file structural.cpp
/// \brief Tier-1 BddAudit pass: unique-table shape.
///
/// Everything the reduction rules and the unique tables promise is checked
/// here: canonical complement form (stored hi edges regular), the deletion
/// rule (hi != lo), level order under the current var<->level permutation,
/// correct bucket placement, exactly-once chain membership for every
/// allocated node, free-list consistency, absence of duplicate
/// (var, hi, lo) triples, and the allocation accounting that ties
/// live + dead + free to the table size.
#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/audit.hpp"
#include "telemetry/counters.hpp"

namespace bddmin::analysis {
namespace {

std::string edge_str(Edge e) {
  return (e.complemented() ? "!" : "") + std::to_string(e.index());
}

std::string node_str(std::uint32_t index, const Node& n) {
  return "node " + std::to_string(index) + " (var " + std::to_string(n.var) +
         ", hi " + edge_str(n.hi) + ", lo " + edge_str(n.lo) + ")";
}

}  // namespace

void audit_structure(const Manager& mgr, AuditReport& report) {
  const std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  const auto& subtables = ManagerAccess::subtables(mgr);
  const std::vector<std::uint32_t>& free_list = ManagerAccess::free_list(mgr);
  const std::vector<std::uint32_t>& var_to_level = ManagerAccess::var_to_level(mgr);
  const std::vector<std::uint32_t>& level_to_var = ManagerAccess::level_to_var(mgr);
  const unsigned num_vars = mgr.num_vars();

  // Terminal node shape.
  if (nodes.empty()) {
    report.add(Category::kStructure, "node table has no terminal node");
    return;
  }
  if (nodes[0].var != kConstVar) {
    report.add(Category::kStructure, "terminal node is not labelled kConstVar");
  }
  if (nodes[0].ref != 0xFFFF'FFFFu) {
    report.add(Category::kStructure, "terminal node ref count is not saturated");
  }

  // var<->level maps must be inverse permutations.
  if (var_to_level.size() != num_vars || level_to_var.size() != num_vars) {
    report.add(Category::kStructure, "var/level permutation maps have wrong size");
  } else {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      if (var_to_level[v] >= num_vars || level_to_var[var_to_level[v]] != v) {
        report.add(Category::kStructure,
                   "var/level maps are not inverse permutations at var " +
                       std::to_string(v));
      }
    }
  }

  const auto level_of_var = [&](std::uint32_t var) {
    return var < var_to_level.size() ? var_to_level[var] : kConstVar;
  };
  const auto level_of_edge = [&](Edge e) {
    const std::uint32_t v = nodes[e.index()].var;
    return v == kConstVar ? kConstVar : level_of_var(v);
  };
  // A child edge must point in-range at the terminal or an allocated node.
  const auto check_child = [&](std::uint32_t index, const Node& n, Edge child,
                               const char* side) {
    if (child.index() >= nodes.size()) {
      report.add(Category::kStructure, node_str(index, n) + ": " + side +
                                           " child index out of range");
      return false;
    }
    const std::uint32_t cv = nodes[child.index()].var;
    if (cv == kFreeVar) {
      report.add(Category::kStructure, node_str(index, n) + ": " + side +
                                           " child is a freed slot");
      return false;
    }
    if (cv != kConstVar && cv >= num_vars) {
      report.add(Category::kStructure, node_str(index, n) + ": " + side +
                                           " child has invalid var " +
                                           std::to_string(cv));
      return false;
    }
    return true;
  };

  // Walk every chain: per-node checks + membership bitmap.
  std::vector<std::uint8_t> in_chain(nodes.size(), 0);
  std::size_t unique_total = 0;
  std::vector<std::array<std::uint32_t, 3>> triples;
  for (std::uint32_t var = 0; var < subtables.size(); ++var) {
    const auto& table = subtables[var];
    std::size_t chain_total = 0;
    for (std::size_t bucket = 0; bucket < table.buckets.size(); ++bucket) {
      std::size_t walked = 0;
      for (std::uint32_t i = table.buckets[bucket]; i != kNilIndex;
           i = nodes[i].next) {
        if (i >= nodes.size()) {
          report.add(Category::kChain,
                     "chain of var " + std::to_string(var) +
                         " contains out-of-range index " + std::to_string(i));
          break;
        }
        if (++walked > nodes.size()) {
          report.add(Category::kChain,
                     "cycle in chain of var " + std::to_string(var) +
                         " bucket " + std::to_string(bucket));
          break;
        }
        const Node& n = nodes[i];
        ++chain_total;
        ++report.chain_entries;
        if (in_chain[i]) {
          report.add(Category::kChain,
                     node_str(i, n) + " linked into more than one chain");
          continue;
        }
        in_chain[i] = 1;
        if (n.var != var) {
          report.add(Category::kChain,
                     node_str(i, n) + " filed under wrong subtable " +
                         std::to_string(var));
          continue;
        }
        if (ManagerAccess::bucket_of(n.hi, n.lo, table.buckets.size()) != bucket) {
          report.add(Category::kChain,
                     node_str(i, n) + " hangs in the wrong bucket");
        }
        if (n.hi.complemented()) {
          report.add(Category::kStructure,
                     node_str(i, n) + ": stored hi edge is complemented");
        }
        if (n.hi == n.lo) {
          report.add(Category::kStructure,
                     node_str(i, n) + ": unreduced (deletion rule violated)");
        }
        const bool hi_ok = check_child(i, n, n.hi, "hi");
        const bool lo_ok = check_child(i, n, n.lo, "lo");
        if (hi_ok && level_of_var(var) >= level_of_edge(n.hi)) {
          report.add(Category::kStructure,
                     node_str(i, n) + ": hi child at or above parent level");
        }
        if (lo_ok && level_of_var(var) >= level_of_edge(n.lo)) {
          report.add(Category::kStructure,
                     node_str(i, n) + ": lo child at or above parent level");
        }
        triples.push_back({n.var, n.hi.bits, n.lo.bits});
      }
    }
    if (chain_total != table.count) {
      report.add(Category::kChain,
                 "subtable of var " + std::to_string(var) + " counts " +
                     std::to_string(table.count) + " nodes but chains hold " +
                     std::to_string(chain_total));
    }
    unique_total += chain_total;
  }

  // Duplicate (var, hi, lo) triples would break canonicity: two distinct
  // nodes would denote the same function.
  std::sort(triples.begin(), triples.end());
  for (std::size_t k = 1; k < triples.size(); ++k) {
    if (triples[k] == triples[k - 1]) {
      report.add(Category::kUniqueness,
                 "duplicate triple (var " + std::to_string(triples[k][0]) +
                     ", hi " + edge_str(Edge{triples[k][1]}) + ", lo " +
                     edge_str(Edge{triples[k][2]}) + ")");
    }
  }

  // Free-list: every entry free-marked, no duplicates, and every
  // free-marked slot actually on the list.
  std::vector<std::uint8_t> on_free_list(nodes.size(), 0);
  for (const std::uint32_t i : free_list) {
    if (i >= nodes.size()) {
      report.add(Category::kFreeList,
                 "free list contains out-of-range index " + std::to_string(i));
      continue;
    }
    if (on_free_list[i]) {
      report.add(Category::kFreeList,
                 "index " + std::to_string(i) + " on the free list twice");
    }
    on_free_list[i] = 1;
    if (nodes[i].var != kFreeVar) {
      report.add(Category::kFreeList,
                 node_str(i, nodes[i]) + " on the free list but not free-marked");
    }
  }

  // Sweep all slots: allocated nodes must be chained, free ones listed.
  std::size_t free_marked = 0;
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    ++report.nodes_checked;
    const Node& n = nodes[i];
    if (n.var == kFreeVar) {
      ++free_marked;
      if (!on_free_list[i]) {
        report.add(Category::kFreeList,
                   "freed slot " + std::to_string(i) + " missing from the free list");
      }
      continue;
    }
    if (n.var == kConstVar) {
      report.add(Category::kStructure,
                 "non-root slot " + std::to_string(i) + " labelled kConstVar");
      continue;
    }
    if (n.var >= num_vars) {
      report.add(Category::kStructure,
                 node_str(i, n) + ": var out of range");
      continue;
    }
    if (!in_chain[i]) {
      report.add(Category::kChain,
                 node_str(i, n) + " allocated but absent from its subtable chain");
    }
  }

  // The O(1) running total behind Manager::unique_size() (maintained at
  // subtable link/unlink) must agree with the sum just recomputed from the
  // chains; drift means a table mutation bypassed the maintenance sites.
  if (mgr.unique_size() != unique_total) {
    report.add(Category::kAccounting,
               "running unique_size() total " +
                   std::to_string(mgr.unique_size()) +
                   " disagrees with the recomputed chain sum " +
                   std::to_string(unique_total));
  }

  // Allocation accounting: every slot is the terminal, chained, or free.
  const std::size_t live = ManagerAccess::live_count(mgr);
  const std::size_t dead = ManagerAccess::dead_count(mgr);
  if (unique_total + 1 != live + dead) {
    report.add(Category::kAccounting,
               "live+dead (" + std::to_string(live) + "+" + std::to_string(dead) +
                   ") disagrees with unique table total " +
                   std::to_string(unique_total) + " + terminal");
  }
  if (unique_total + free_marked + 1 != nodes.size()) {
    report.add(Category::kAccounting,
               "table of " + std::to_string(nodes.size()) + " slots holds " +
                   std::to_string(unique_total) + " chained + " +
                   std::to_string(free_marked) + " free + terminal");
  }

  // Cross-check the structure against the telemetry counters: every node
  // ever chained was counted by kUniqueInserts, and every node unchained
  // was counted by kGcNodesReclaimed (GC sweeps) or kReorderNodesFreed
  // (swap-local frees), so the difference must equal what is chained now.
  // An imbalance means either a table mutation bypassed the instrumented
  // paths or a counter site was lost — both worth a finding.
  if constexpr (telemetry::kCountersEnabled) {
    using telemetry::Counter;
    const telemetry::CounterSnapshot counters = mgr.telemetry();
    const std::uint64_t created = counters.value(Counter::kUniqueInserts);
    const std::uint64_t freed = counters.value(Counter::kGcNodesReclaimed) +
                                counters.value(Counter::kReorderNodesFreed);
    if (created != freed + unique_total) {
      report.add(Category::kAccounting,
                 "telemetry insert/reclaim counters disagree with the unique "
                 "table: " +
                     std::to_string(created) + " inserted - " +
                     std::to_string(freed) + " reclaimed != " +
                     std::to_string(unique_total) + " chained");
    }
  }
}

}  // namespace bddmin::analysis
