/// \file audit.hpp
/// \brief BddAudit: deep structural/semantic audits of a live Manager.
///
/// The minimization heuristics (and every theorem the paper proves about
/// them) are only trustworthy if the ROBDD invariants hold: canonical
/// complement edges, unique (var, hi, lo) triples, level-ordered children,
/// accurate reference counts, and a computed cache that never serves a
/// wrong or stale result.  `Manager::check_invariants()` historically
/// audited a fraction of that state; this subsystem audits all of it, in
/// tiers, and reports *every* violation instead of throwing on the first.
///
/// Audit tiers (cumulative; `BDDMIN_AUDIT_LEVEL` selects one at runtime):
///
///   0  off         — no auditing
///   1  structural  — table shape: canonical form, uniqueness, chain and
///                    free-list membership, level order, permutation maps
///   2  refcount    — recompute reference counts from the node graph (and
///                    optionally an explicit root multiset), diff against
///                    stored counts and the live/dead accounting, and check
///                    every live node is reachable from an external root
///   3  cache       — computed-cache coherence: bounds/liveness of every
///                    current-epoch entry, epoch monotonicity, and replay
///                    of live ITE entries through an uncached ITE
///   4  cover       — minimizer output contracts f·c <= g <= f + c̄
///                    (per-call; see analysis/cover_audit.hpp — level 4 is
///                    honored by the harness interceptor and the CLI, not
///                    by audit_manager itself)
///
/// The fault-injection harness (analysis/mutate.hpp) deliberately corrupts
/// each of these properties so the tests can prove the auditors have teeth.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bdd/manager.hpp"

namespace bddmin::analysis {

enum class AuditLevel : int {
  kOff = 0,
  kStructural = 1,
  kRefcount = 2,
  kCache = 3,
  kCover = 4,
};

/// Parse BDDMIN_AUDIT_LEVEL (an integer, clamped to [0, 4]); absent or
/// unparsable values mean kOff.
[[nodiscard]] AuditLevel audit_level_from_env();

enum class Category {
  kStructure,   ///< canonical form / level order / shape of a node
  kUniqueness,  ///< duplicate (var, hi, lo) triple
  kChain,       ///< subtable bucket/chain membership integrity
  kFreeList,    ///< free-list consistency
  kAccounting,  ///< live/dead counters vs actual table state
  kRefCount,    ///< stored ref counts vs recomputed ones
  kReachability,///< live node unreachable from any external root
  kCache,       ///< computed-cache coherence
  kCover,       ///< minimizer output contract violation
};

[[nodiscard]] const char* category_name(Category c) noexcept;

struct Finding {
  Category category{};
  std::string message;
};

struct AuditReport {
  std::vector<Finding> findings;
  /// Findings suppressed once `AuditOptions::max_findings` was reached.
  std::size_t suppressed = 0;

  // Coverage counters, so "0 findings" is distinguishable from "0 work".
  std::size_t nodes_checked = 0;
  std::size_t chain_entries = 0;
  std::size_t refs_recomputed = 0;
  std::size_t cache_entries_checked = 0;
  std::size_t cache_replays = 0;
  std::size_t covers_checked = 0;

  [[nodiscard]] bool ok() const noexcept { return findings.empty(); }
  [[nodiscard]] bool has(Category c) const noexcept;
  void add(Category c, std::string message);
  /// Human-readable multi-line report (findings first, then coverage).
  [[nodiscard]] std::string summary() const;

  /// Cap applied by add(); copied from AuditOptions by audit_manager.
  std::size_t max_findings = 64;
};

struct AuditOptions {
  AuditLevel level = AuditLevel::kCover;
  /// Stop recording (but keep counting) findings beyond this many.
  std::size_t max_findings = 64;
  /// Replay at most this many live ITE cache entries (0 = all of them).
  std::size_t cache_replay_limit = 0;
  /// External root edges (with multiplicity) for the ref-count audit.
  /// Ignored unless `exact_roots` is set.
  std::span<const Edge> roots = {};
  /// When true, every node's external ref count (stored minus structural
  /// parent refs) must equal its multiplicity in `roots` — catches leaked
  /// references, not just premature deaths.
  bool exact_roots = false;
};

// ---- Individual passes (append findings; never throw on a finding) ------

/// Tier 1: table shape.  Canonical hi edges, deletion rule, level order,
/// bucket placement, chain/free-list membership, duplicate triples,
/// permutation maps, terminal-node shape, allocation accounting.
void audit_structure(const Manager& mgr, AuditReport& report);

/// Tier 2: recompute per-node reference counts from hi/lo edges; diff
/// against stored counts (exact when \p exact_roots, lower-bound
/// otherwise), validate live/dead accounting against actual refs, and
/// check every live node is reachable from some externally-referenced
/// node.
void audit_refcounts(const Manager& mgr, std::span<const Edge> roots,
                     bool exact_roots, AuditReport& report);

/// Tier 3: computed-cache coherence.  Every current-epoch entry must
/// reference in-range, non-free nodes and carry a known operation tag; no
/// entry may claim a future epoch; live ITE entries are replayed through
/// an uncached ITE and must reproduce the memoized result exactly
/// (canonicity makes semantic equality an edge comparison).  May allocate
/// nodes (the replays) — they are left dead for the next GC.
void audit_cache(Manager& mgr, std::size_t replay_limit, AuditReport& report);

/// Run the tiers enabled by \p opts.level and collect one report.
[[nodiscard]] AuditReport audit_manager(Manager& mgr, const AuditOptions& opts = {});

/// Tiers 1+2 only — usable on a const manager (no cache replay).
[[nodiscard]] AuditReport audit_manager(const Manager& mgr,
                                        const AuditOptions& opts = {});

}  // namespace bddmin::analysis
