#include "analysis/cover_audit.hpp"

#include <exception>
#include <string>

#include "bdd/bdd.hpp"
#include "bdd/cube.hpp"
#include "bdd/ops.hpp"

namespace bddmin::analysis {
namespace {

/// Render one minterm of the non-empty violation set \p witness_set as
/// "x0=1 x3=0 ..." (a largest cube of the set, for a short description).
std::string witness_cube(Manager& mgr, Edge witness_set) {
  const CubeVec cube = largest_cube(mgr, witness_set, mgr.num_vars());
  std::string out;
  for (std::size_t v = 0; v < cube.size(); ++v) {
    if (cube[v] == kAbsentLiteral) continue;
    if (!out.empty()) out += ' ';
    out += 'x' + std::to_string(v) + '=' + (cube[v] != 0 ? '1' : '0');
  }
  return out.empty() ? "any minterm" : out;
}

}  // namespace

void audit_cover(Manager& mgr, Edge f, Edge c, Edge g, std::string_view label,
                 AuditReport& report) {
  ++report.covers_checked;
  // Lower bound: f·c <= g, i.e. f·c·ḡ must be empty.
  const Edge below = mgr.and_(mgr.and_(f, c), !g);
  if (below != kZero) {
    report.add(Category::kCover,
               std::string(label) + " violates f*c <= g (care onset dropped at " +
                   witness_cube(mgr, below) + ")");
  }
  // Upper bound: g <= f + c̄, i.e. g·f̄·c must be empty.
  const Edge above = mgr.and_(mgr.and_(g, !f), c);
  if (above != kZero) {
    report.add(Category::kCover,
               std::string(label) + " violates g <= f+!c (care offset added at " +
                   witness_cube(mgr, above) + ")");
  }
}

AuditReport audit_heuristic_contracts(
    Manager& mgr, Edge f, Edge c,
    const std::vector<minimize::Heuristic>& set) {
  AuditReport report;
  const Bdd f_pin(mgr, f);
  const Bdd c_pin(mgr, c);
  for (const minimize::Heuristic& h : set) {
    try {
      const Bdd g(mgr, h.run(mgr, f, c));
      audit_cover(mgr, f, c, g.edge(), h.name, report);
    } catch (const std::exception& e) {
      report.add(Category::kCover, h.name + " threw: " + e.what());
    }
  }
  return report;
}

}  // namespace bddmin::analysis
