/// \file cache_audit.cpp
/// \brief Tier-3 BddAudit pass: computed-cache coherence.
///
/// The computed cache is invalidated in O(1) by bumping an epoch, so a
/// slot is *live* only when its epoch matches the manager's.  Three
/// properties are audited:
///
/// 1. No slot claims an epoch from the future (invalidation monotonicity).
/// 2. Every live slot decodes to in-range, non-free operand/result nodes
///    and a known operation tag.  Known tags are the manager's own (ITE,
///    AND, XOR, the disjointness marker), the ops.cpp traversal tags
///    (cofactor, exists, and-exists, compose — whose keys partly encode
///    variables, not edges, and are decoded accordingly) and the client
///    range (>= kUserOpBase); anything else in the reserved range is a
///    corruption finding.
/// 3. Live ITE/AND/XOR slots replay correctly: recomputing the operation
///    with a fresh, cache-free recursion must reproduce the memoized edge
///    bit for bit — canonicity turns semantic equality into edge
///    comparison.  Disjointness markers assert result == 1 and that the
///    operands genuinely intersect (uncached AND is nonzero).
///
/// Epoch semantics make stale slots (older epoch) legal even when they
/// reference freed nodes; they are skipped, exactly as cache_lookup skips
/// them.  Replay allocates nodes through make_node; they are left dead
/// for the next garbage_collect().
#include <array>
#include <map>
#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/audit.hpp"
#include "bdd/ops.hpp"

namespace bddmin::analysis {
namespace {

/// ITE with the manager's terminal rules but a private memo table, so the
/// (possibly corrupt) computed cache is never consulted.
Edge uncached_ite(Manager& mgr, Edge f, Edge g, Edge h,
                  std::map<std::array<std::uint32_t, 3>, Edge>& memo) {
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return !f;
  const std::array<std::uint32_t, 3> key{f.bits, g.bits, h.bits};
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  const std::uint32_t v = mgr.top_var(f, g, h);
  const auto [f1, f0] = mgr.branches(f, v);
  const auto [g1, g0] = mgr.branches(g, v);
  const auto [h1, h0] = mgr.branches(h, v);
  const Edge t = uncached_ite(mgr, f1, g1, h1, memo);
  const Edge e = uncached_ite(mgr, f0, g0, h0, memo);
  const Edge result = mgr.make_node(v, t, e);
  memo.emplace(key, result);
  return result;
}

std::string edge_str(Edge e) {
  return (e.complemented() ? "!" : "") + std::to_string(e.index());
}

std::string entry_str(std::uint32_t op, Edge a, Edge b, Edge c) {
  return "cache entry op " + std::to_string(op) + " (" + edge_str(a) + ", " +
         edge_str(b) + ", " + edge_str(c) + ")";
}

}  // namespace

void audit_cache(Manager& mgr, std::size_t replay_limit, AuditReport& report) {
  const std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  const std::uint64_t epoch = ManagerAccess::cache_epoch(mgr);

  struct LiveEntry {
    std::uint32_t op;
    Edge a, b, c, result;
  };
  std::vector<LiveEntry> replayable;

  const std::uint32_t op_ite = ManagerAccess::op_ite();
  const std::uint32_t op_and = ManagerAccess::op_and();
  const std::uint32_t op_xor = ManagerAccess::op_xor();
  const std::uint32_t op_disjoint = ManagerAccess::op_disjoint();

  // Pass 1: validate every live slot *before* replay — replays allocate
  // nodes and could resurrect a freed slot an entry dangles into.
  const auto edge_valid = [&](Edge e) {
    return e.index() < nodes.size() && nodes[e.index()].var != kFreeVar;
  };
  const auto& sets = ManagerAccess::cache(mgr);
  for (std::size_t i = 0; i < sets.size() * 2; ++i) {
    const auto& slot = sets[i >> 1].way[i & 1];
    if (slot.k1 == ~0ull) continue;  // never used
    if (slot.epoch > epoch) {
      report.add(Category::kCache,
                 "cache slot claims epoch " + std::to_string(slot.epoch) +
                     " but the manager is at epoch " + std::to_string(epoch));
      continue;
    }
    if (slot.epoch != epoch) continue;  // stale: legal, ignored by lookups
    ++report.cache_entries_checked;
    const auto op = static_cast<std::uint32_t>(slot.k1 >> 32);
    const Edge a{static_cast<std::uint32_t>(slot.k1)};
    const Edge b{static_cast<std::uint32_t>(slot.k2 >> 32)};
    const Edge c{static_cast<std::uint32_t>(slot.k2)};
    // Which key words decode to edges depends on the tag: the cofactor key
    // packs (var, value) into b and the compose key packs var into c.
    bool known = true;
    std::vector<Edge> edge_operands{a, slot.result};
    if (op == op_ite || op == op_and || op == op_xor || op == op_disjoint ||
        op == cache_tag::kExists || op == cache_tag::kAndExists ||
        op >= Manager::kUserOpBase) {
      edge_operands.push_back(b);
      edge_operands.push_back(c);
    } else if (op == cache_tag::kCofactor) {
      edge_operands.push_back(c);  // kOne; b encodes (var << 1) | value
    } else if (op == cache_tag::kCompose) {
      edge_operands.push_back(b);  // c encodes var << 1
    } else {
      known = false;
    }
    if (!known) {
      report.add(Category::kCache,
                 entry_str(op, a, b, c) +
                     " carries a reserved op tag the manager never issues");
      continue;
    }
    bool operands_ok = true;
    for (const Edge e : edge_operands) {
      if (!edge_valid(e)) {
        report.add(Category::kCache,
                   entry_str(op, a, b, c) + " references " +
                       (e.index() < nodes.size() ? "a freed slot"
                                                 : "an out-of-range node") +
                       " at epoch " + std::to_string(epoch));
        operands_ok = false;
        break;
      }
    }
    if (!operands_ok) continue;
    if (op == op_ite || op == op_and || op == op_xor || op == op_disjoint) {
      replayable.push_back({op, a, b, c, slot.result});
    }
  }

  // Pass 2: replay the manager's own entries through the uncached
  // recursion.  The kernels are ITE specializations, so one oracle covers
  // all of them: AND(a,b) = ite(a,b,0), XOR(a,b) = ite(a,!b,b); a
  // disjointness marker asserts the operands intersect.
  std::map<std::array<std::uint32_t, 3>, Edge> memo;
  for (const LiveEntry& entry : replayable) {
    if (replay_limit != 0 && report.cache_replays >= replay_limit) break;
    ++report.cache_replays;
    if (entry.op == op_disjoint) {
      if (entry.result != kOne) {
        report.add(Category::kCache,
                   entry_str(entry.op, entry.a, entry.b, entry.c) +
                       " is a disjointness marker whose result is not 1");
        continue;
      }
      if (uncached_ite(mgr, entry.a, entry.b, kZero, memo) == kZero) {
        report.add(Category::kCache,
                   entry_str(entry.op, entry.a, entry.b, entry.c) +
                       " marks the operands as intersecting but their "
                       "uncached AND is 0");
      }
      continue;
    }
    Edge recomputed;
    const char* oracle = "ITE";
    if (entry.op == op_and) {
      recomputed = uncached_ite(mgr, entry.a, entry.b, kZero, memo);
      oracle = "AND";
    } else if (entry.op == op_xor) {
      recomputed = uncached_ite(mgr, entry.a, !entry.b, entry.b, memo);
      oracle = "XOR";
    } else {
      recomputed = uncached_ite(mgr, entry.a, entry.b, entry.c, memo);
    }
    if (recomputed != entry.result) {
      report.add(Category::kCache,
                 entry_str(entry.op, entry.a, entry.b, entry.c) +
                     " memoizes " + edge_str(entry.result) +
                     " but uncached " + oracle + " yields " +
                     edge_str(recomputed));
    }
  }
}

}  // namespace bddmin::analysis
