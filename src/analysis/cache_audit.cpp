/// \file cache_audit.cpp
/// \brief Tier-3 BddAudit pass: computed-cache coherence.
///
/// The computed cache is invalidated in O(1) by bumping an epoch, so a
/// slot is *live* only when its epoch matches the manager's.  Three
/// properties are audited:
///
/// 1. No slot claims an epoch from the future (invalidation monotonicity).
/// 2. Every live slot decodes to in-range, non-free operand/result nodes
///    and a known operation tag (reserved manager tags other than ITE are
///    never issued today).
/// 3. Live ITE slots replay correctly: recomputing ite(a, b, c) with a
///    fresh, cache-free recursion must reproduce the memoized edge bit for
///    bit — canonicity turns semantic equality into edge comparison.
///
/// Epoch semantics make stale slots (older epoch) legal even when they
/// reference freed nodes; they are skipped, exactly as cache_lookup skips
/// them.  Replay allocates nodes through make_node; they are left dead
/// for the next garbage_collect().
#include <array>
#include <map>
#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/audit.hpp"

namespace bddmin::analysis {
namespace {

/// ITE with the manager's terminal rules but a private memo table, so the
/// (possibly corrupt) computed cache is never consulted.
Edge uncached_ite(Manager& mgr, Edge f, Edge g, Edge h,
                  std::map<std::array<std::uint32_t, 3>, Edge>& memo) {
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return !f;
  const std::array<std::uint32_t, 3> key{f.bits, g.bits, h.bits};
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  const std::uint32_t v = mgr.top_var(f, g, h);
  const auto [f1, f0] = mgr.branches(f, v);
  const auto [g1, g0] = mgr.branches(g, v);
  const auto [h1, h0] = mgr.branches(h, v);
  const Edge t = uncached_ite(mgr, f1, g1, h1, memo);
  const Edge e = uncached_ite(mgr, f0, g0, h0, memo);
  const Edge result = mgr.make_node(v, t, e);
  memo.emplace(key, result);
  return result;
}

std::string edge_str(Edge e) {
  return (e.complemented() ? "!" : "") + std::to_string(e.index());
}

std::string entry_str(std::uint32_t op, Edge a, Edge b, Edge c) {
  return "cache entry op " + std::to_string(op) + " (" + edge_str(a) + ", " +
         edge_str(b) + ", " + edge_str(c) + ")";
}

}  // namespace

void audit_cache(Manager& mgr, std::size_t replay_limit, AuditReport& report) {
  const std::vector<Node>& nodes = ManagerAccess::nodes(mgr);
  const std::uint64_t epoch = ManagerAccess::cache_epoch(mgr);

  struct LiveEntry {
    std::uint32_t op;
    Edge a, b, c, result;
  };
  std::vector<LiveEntry> ite_entries;

  // Pass 1: validate every live slot *before* replay — replays allocate
  // nodes and could resurrect a freed slot an entry dangles into.
  const auto edge_valid = [&](Edge e) {
    return e.index() < nodes.size() && nodes[e.index()].var != kFreeVar;
  };
  for (const auto& slot : ManagerAccess::cache(mgr)) {
    if (slot.k1 == ~0ull) continue;  // never used
    if (slot.epoch > epoch) {
      report.add(Category::kCache,
                 "cache slot claims epoch " + std::to_string(slot.epoch) +
                     " but the manager is at epoch " + std::to_string(epoch));
      continue;
    }
    if (slot.epoch != epoch) continue;  // stale: legal, ignored by lookups
    ++report.cache_entries_checked;
    const auto op = static_cast<std::uint32_t>(slot.k1 >> 32);
    const Edge a{static_cast<std::uint32_t>(slot.k1)};
    const Edge b{static_cast<std::uint32_t>(slot.k2 >> 32)};
    const Edge c{static_cast<std::uint32_t>(slot.k2)};
    bool operands_ok = true;
    for (const Edge e : {a, b, c, slot.result}) {
      if (!edge_valid(e)) {
        report.add(Category::kCache,
                   entry_str(op, a, b, c) + " references " +
                       (e.index() < nodes.size() ? "a freed slot"
                                                 : "an out-of-range node") +
                       " at epoch " + std::to_string(epoch));
        operands_ok = false;
        break;
      }
    }
    if (!operands_ok) continue;
    if (op != ManagerAccess::op_ite() && op < Manager::kUserOpBase) {
      report.add(Category::kCache,
                 entry_str(op, a, b, c) +
                     " carries a reserved op tag the manager never issues");
      continue;
    }
    if (op == ManagerAccess::op_ite()) ite_entries.push_back({op, a, b, c, slot.result});
  }

  // Pass 2: replay live ITE entries through the uncached recursion.
  std::map<std::array<std::uint32_t, 3>, Edge> memo;
  for (const LiveEntry& entry : ite_entries) {
    if (replay_limit != 0 && report.cache_replays >= replay_limit) break;
    ++report.cache_replays;
    const Edge recomputed =
        uncached_ite(mgr, entry.a, entry.b, entry.c, memo);
    if (recomputed != entry.result) {
      report.add(Category::kCache,
                 entry_str(entry.op, entry.a, entry.b, entry.c) +
                     " memoizes " + edge_str(entry.result) +
                     " but uncached ITE yields " + edge_str(recomputed));
    }
  }
}

}  // namespace bddmin::analysis
