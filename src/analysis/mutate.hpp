/// \file mutate.hpp
/// \brief Fault injection for the BddAudit subsystem: deliberately corrupt
/// a live Manager so tests (and operators) can prove each auditor pass
/// actually detects the failure class it claims to cover.
///
/// Every injector targets one corruption class and returns a description
/// of exactly what it broke; `mutation_audit_category()` names the
/// Category the corresponding audit pass must report.  None of these
/// repair the manager — a mutated manager is only good for auditing and
/// should be discarded afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/audit.hpp"
#include "bdd/manager.hpp"

namespace bddmin::analysis {

enum class Mutation {
  kComplementFlip,  ///< complement a stored hi edge (breaks canonical form)
  kSubtableUnlink,  ///< remove a node from its unique-table chain
  kStaleCache,      ///< poison a current-epoch ITE cache entry
  kRefSkew,         ///< change a stored ref count without accounting
  kCountSkew,       ///< corrupt the live/dead counters
};

/// The audit category whose findings prove \p m was detected.
[[nodiscard]] Category mutation_audit_category(Mutation m) noexcept;

/// Parse a CLI-style name ("complement-flip", "unlink", "stale-cache",
/// "ref-skew", "count-skew"); throws std::invalid_argument on others.
[[nodiscard]] Mutation mutation_from_name(std::string_view name);
[[nodiscard]] const char* mutation_name(Mutation m) noexcept;

struct MutationResult {
  bool applied = false;     ///< false: no eligible target in this manager
  std::string description;  ///< what was corrupted, for the report
};

/// Apply \p m to \p mgr; \p seed varies which eligible target is hit.
MutationResult inject(Manager& mgr, Mutation m, std::uint64_t seed = 0);

}  // namespace bddmin::analysis
