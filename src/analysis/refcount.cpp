/// \file refcount.cpp
/// \brief Tier-2 BddAudit pass: reference counts and live/dead accounting.
///
/// Every stored node holds one reference on each child, so a node's stored
/// ref count decomposes as
///
///     stored = structural parent refs + external (client) refs.
///
/// The pass recomputes the structural term by scanning hi/lo edges of all
/// allocated nodes.  Without a root multiset the external term is only
/// bounded (external = stored - structural must be >= 0: a deficit means a
/// premature deref that will free a node still in use).  With an explicit
/// root multiset (`exact_roots`), external must *equal* the root
/// multiplicity, which additionally catches leaked references.  The pass
/// also recomputes live/dead counters from actual refs — the accounting
/// gap the old check_invariants() never covered — and checks that every
/// live node is reachable from some externally-referenced node (an
/// unreachable live node can never be dereferenced again: a leak).
#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "analysis/audit.hpp"

namespace bddmin::analysis {

void audit_refcounts(const Manager& mgr, std::span<const Edge> roots,
                     bool exact_roots, AuditReport& report) {
  const std::vector<Node>& nodes = ManagerAccess::nodes(mgr);

  // Structural parent refs from hi/lo edges of allocated nodes.
  std::vector<std::uint64_t> structural(nodes.size(), 0);
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.var == kFreeVar) continue;
    if (n.hi.index() < nodes.size()) ++structural[n.hi.index()];
    if (n.lo.index() < nodes.size()) ++structural[n.lo.index()];
  }
  std::vector<std::uint64_t> root_refs(nodes.size(), 0);
  for (const Edge root : roots) {
    if (root.index() < nodes.size()) ++root_refs[root.index()];
  }

  std::size_t live = 1;  // the saturated terminal always counts as live
  std::size_t dead = 0;
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.var == kFreeVar) continue;
    ++report.refs_recomputed;
    if (n.ref > 0) ++live; else ++dead;
    if (n.ref == 0xFFFF'FFFFu) {
      report.add(Category::kRefCount,
                 "node " + std::to_string(i) +
                     " has a saturated ref count (leaked forever)");
      continue;
    }
    if (n.ref < structural[i]) {
      report.add(Category::kRefCount,
                 "node " + std::to_string(i) + " stores " +
                     std::to_string(n.ref) + " refs but " +
                     std::to_string(structural[i]) +
                     " parents reference it (premature death)");
      continue;
    }
    const std::uint64_t external = n.ref - structural[i];
    if (exact_roots && external != root_refs[i]) {
      report.add(Category::kRefCount,
                 "node " + std::to_string(i) + " has " +
                     std::to_string(external) + " external refs but " +
                     std::to_string(root_refs[i]) + " registered roots (" +
                     (external > root_refs[i] ? "leak" : "missing root ref") +
                     ")");
    }
  }

  // Accounting: the counters the manager maintains incrementally must
  // match what the refs actually say.
  if (ManagerAccess::live_count(mgr) != live) {
    report.add(Category::kAccounting,
               "live_count " + std::to_string(ManagerAccess::live_count(mgr)) +
                   " but " + std::to_string(live) + " nodes have ref > 0");
  }
  if (ManagerAccess::dead_count(mgr) != dead) {
    report.add(Category::kAccounting,
               "dead_count " + std::to_string(ManagerAccess::dead_count(mgr)) +
                   " but " + std::to_string(dead) +
                   " allocated nodes have ref == 0");
  }

  // Reachability: a live node's refs come from clients (external) or from
  // parents — and a parent holding child refs is either itself live or a
  // dead node awaiting GC (dead nodes keep their child refs until swept).
  // So BFS down from every externally-referenced node and every dead
  // node; a live node not reached can only be part of an orphaned cycle
  // or similar corruption, and can never be dereferenced again.
  std::vector<std::uint8_t> reached(nodes.size(), 0);
  std::vector<std::uint32_t> frontier;
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.var == kFreeVar) continue;
    const std::uint64_t ref = n.ref == 0xFFFF'FFFFu ? 0 : n.ref;
    if (ref == 0 || ref > structural[i]) {
      reached[i] = 1;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const std::uint32_t i = frontier.back();
    frontier.pop_back();
    const Node& n = nodes[i];
    for (const Edge child : {n.hi, n.lo}) {
      const std::uint32_t ci = child.index();
      if (ci == 0 || ci >= nodes.size() || reached[ci]) continue;
      reached[ci] = 1;
      frontier.push_back(ci);
    }
  }
  for (std::uint32_t i = 1; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.var == kFreeVar || n.ref == 0 || reached[i]) continue;
    report.add(Category::kReachability,
               "live node " + std::to_string(i) +
                   " unreachable from any externally referenced root");
  }
}

}  // namespace bddmin::analysis
