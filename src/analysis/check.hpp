/// \file check.hpp
/// \brief Tiered assertion macros for the bddmin hot paths.
///
/// Two tiers, mirroring the usual production/debug split:
///
/// * `BDDMIN_CHECK(cond)` — always compiled, in every build type.  Use for
///   cheap API-boundary preconditions (index in range, non-zero cube)
///   whose violation means the caller is broken.
/// * `BDDMIN_DCHECK(cond)` — compiled in Debug builds (`!NDEBUG`) or when
///   `BDDMIN_ENABLE_DCHECKS` is defined (CMake `-DBDDMIN_ENABLE_DCHECKS=ON`).
///   Use for expensive or inner-loop invariants (canonical-form checks,
///   semantic `matches(...)` re-verification) that would tax release-mode
///   throughput.
///
/// A failing check throws std::logic_error with the expression and source
/// location.  Inside a `noexcept` function (ref/deref, GC cascade) the
/// throw escalates to std::terminate — i.e. checks fail fast rather than
/// corrupt the node table.  Deeper, whole-table validation lives in the
/// BddAudit passes (`analysis/audit.hpp`); these macros are the per-call
/// guard rails.
#pragma once

#include <stdexcept>
#include <string>

namespace bddmin::analysis {

[[noreturn]] inline void check_fail(const char* kind, const char* expr,
                                    const char* file, int line) {
  throw std::logic_error(std::string(kind) + " failed: " + expr + " (" + file +
                         ":" + std::to_string(line) + ")");
}

}  // namespace bddmin::analysis

#define BDDMIN_CHECK(cond)                                               \
  ((cond) ? static_cast<void>(0)                                         \
          : ::bddmin::analysis::check_fail("BDDMIN_CHECK", #cond,        \
                                           __FILE__, __LINE__))

#if defined(BDDMIN_ENABLE_DCHECKS) || !defined(NDEBUG)
#define BDDMIN_DCHECK(cond)                                              \
  ((cond) ? static_cast<void>(0)                                         \
          : ::bddmin::analysis::check_fail("BDDMIN_DCHECK", #cond,       \
                                           __FILE__, __LINE__))
#else
// Swallow the condition unevaluated but keep it syntactically checked.
#define BDDMIN_DCHECK(cond) static_cast<void>(sizeof(!(cond)))
#endif
