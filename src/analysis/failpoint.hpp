/// \file failpoint.hpp
/// \brief Process-wide registry of named fault-injection points.
///
/// A failpoint is a named hook compiled into a hot path that normally
/// costs one relaxed atomic load, but can be *armed* to simulate the
/// failures the robustness machinery must survive: allocation failure
/// (`OutOfMemory`), expired budgets (`Deadline`), artificial latency
/// (hang simulation), payload corruption, and process death.  The idiom
/// follows mongod's failpoints: the registry owns the arming state and a
/// site-local macro evaluates it.
///
/// A site looks like:
///
///     if (BDDMIN_FAILPOINT("gc_oom")) {
///       throw OutOfMemory("failpoint: gc work list", 0);
///     }
///
/// The *site* decides what to inject; the registry only answers "fire
/// now?" and hands back a per-site payload value (e.g. a latency in
/// milliseconds).  Every site name must appear in the catalog in
/// failpoint.cpp — `FailPointRegistry::site` checks this, and lint rule
/// R7 (tools/bddmin_lint.py) statically cross-checks that every
/// `BDDMIN_FAILPOINT(` site is cataloged and unique.
///
/// Arming, three ways:
///  * programmatically: `failpoints().arm("gc_oom", {.mode = kOnce})`
///  * environment:      `BDDMIN_FAILPOINTS=gc_oom:once,minimize_hang:nth:3`
///    (parsed by `arm_from_env`, which the batch engine calls at the top
///    of `run_batch` — so job *generation* in the CLI is never faulted,
///    only the batch under test)
///  * from the stress FSM: the `failpoints` workload arms random-mode
///    points mid-run (src/stress/workloads.cpp).
///
/// Modes: `off`, `once` (fire on the next evaluation, then disarm),
/// `nth:N` (fire on the Nth evaluation after arming, then disarm),
/// `random:P[:seed]` (fire each evaluation with probability P from a
/// seeded per-site generator; stays armed until disarmed).
///
/// Thread safety: `poll()` is safe from any thread.  The disarmed fast
/// path is one relaxed atomic load; armed evaluation takes a per-site
/// mutex.  Arming/disarming while sites are being evaluated is the
/// intended use (that is what the stress workload does).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "analysis/thread_annotations.hpp"

namespace bddmin::analysis {

enum class FailPointMode : std::uint8_t { kOff, kOnce, kNth, kRandom };

/// Arming parameters.  `value` overrides the site's catalog default
/// payload when non-zero (sites use it for latencies / exit codes).
struct FailPointConfig {
  FailPointMode mode = FailPointMode::kOff;
  std::uint64_t nth = 1;      ///< kNth: fire on the nth evaluation (1-based)
  double probability = 0.0;   ///< kRandom: per-evaluation fire probability
  std::uint64_t seed = 1;     ///< kRandom: per-site generator seed
  std::uint64_t value = 0;    ///< payload override; 0 keeps the default
};

/// Result of one evaluation.  Truthy iff the site should inject.
struct FailPointHit {
  bool fired = false;
  std::uint64_t value = 0;  ///< site payload (latency ms, exit code, ...)

  explicit operator bool() const noexcept { return fired; }
};

/// One named injection point.  Instances live in (and are owned by) the
/// registry for the life of the process; sites cache a reference.
class FailPoint {
 public:
  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  /// Evaluate the failpoint: the disarmed fast path is one relaxed load.
  [[nodiscard]] FailPointHit poll() noexcept BDDMIN_EXCLUDES(mu_);

  /// Total fires since process start (diagnostics; monotone).
  [[nodiscard]] std::uint64_t fire_count() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }

 private:
  friend class FailPointRegistry;
  explicit FailPoint(std::uint64_t default_value) noexcept
      : default_value_(default_value) {}

  void configure(const FailPointConfig& cfg) BDDMIN_EXCLUDES(mu_);
  [[nodiscard]] FailPointHit fire_locked() noexcept BDDMIN_REQUIRES(mu_);

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> fires_{0};
  std::mutex mu_;
  FailPointConfig cfg_ BDDMIN_GUARDED_BY(mu_);
  std::uint64_t countdown_ BDDMIN_GUARDED_BY(mu_) = 0;  // kNth
  std::uint64_t rng_ BDDMIN_GUARDED_BY(mu_) = 0;        // kRandom
  const std::uint64_t default_value_;
};

/// The process-wide registry.  The set of failpoints is fixed at compile
/// time (the catalog in failpoint.cpp); only arming state is dynamic.
class FailPointRegistry {
 public:
  struct CatalogEntry {
    const char* name;
    const char* description;
    std::uint64_t default_value;  ///< default hit payload (0 if unused)
  };

  static FailPointRegistry& instance();

  /// The full compile-time catalog, for enumeration (CLI `failpoints`
  /// subcommand, the CI sweep, lint R7).
  [[nodiscard]] static const std::vector<CatalogEntry>& catalog();

  /// The failpoint named \p name.  BDDMIN_CHECKs that the name is
  /// cataloged — an unknown name is a programming error, not a config
  /// error (config errors are reported by arm_from_spec).
  [[nodiscard]] FailPoint& site(std::string_view name);

  /// Arm / disarm by name.  Throws std::invalid_argument on unknown
  /// names (these come from user input, unlike site()).
  void arm(std::string_view name, const FailPointConfig& cfg);
  void disarm(std::string_view name);
  void disarm_all() noexcept;

  /// Evaluate by name — for tests and the stress workload, which want
  /// mode semantics without a compiled-in site.
  [[nodiscard]] FailPointHit evaluate(std::string_view name);

  /// Parse and arm one `name:mode[:arg...]` spec (grammar in the file
  /// comment).  Throws std::invalid_argument with a precise message.
  void arm_from_spec(std::string_view spec);

  /// Read BDDMIN_FAILPOINTS (comma-separated specs) and arm each one.
  /// No-op when unset.  Malformed specs are a hard error
  /// (harness::EnvError), consistent with the other BDDMIN_* variables.
  /// Idempotent for once/nth modes in the sense that re-arming restarts
  /// the countdown — callers invoke it at a single well-defined point
  /// (the top of run_batch).
  void arm_from_env();

 private:
  FailPointRegistry();
  [[nodiscard]] FailPoint* find(std::string_view name) noexcept;

  std::vector<std::unique_ptr<FailPoint>> points_;  // parallel to catalog()
};

/// Shorthand for FailPointRegistry::instance().
[[nodiscard]] inline FailPointRegistry& failpoints() {
  return FailPointRegistry::instance();
}

}  // namespace bddmin::analysis

/// Evaluate the failpoint named \p name (a string literal; enforced by
/// lint R7).  Yields a truthy FailPointHit when the site should inject.
/// The registry lookup happens once per site (function-local static).
#define BDDMIN_FAILPOINT(name)                                  \
  ([]() noexcept -> ::bddmin::analysis::FailPointHit {          \
    static ::bddmin::analysis::FailPoint& bddmin_failpoint_ =   \
        ::bddmin::analysis::failpoints().site(name);            \
    return bddmin_failpoint_.poll();                            \
  }())
