/// \file counters.hpp
/// \brief Core counter registry: per-Manager event counters with
/// zero-overhead-when-disabled semantics, plus a process-global aggregate.
///
/// Design:
///  * Each Manager owns one CounterBank — a plain array of uint64, no
///    atomics, because a Manager is strictly single-threaded.  Bumping a
///    counter is one increment on a cache-resident line; compiling with
///    `-DBDDMIN_TELEMETRY=OFF` (which defines BDDMIN_NO_TELEMETRY) turns
///    every bump into a no-op so the hot paths carry literally nothing.
///  * `Manager::telemetry()` returns a CounterSnapshot — a value copy that
///    supports delta arithmetic, so callers measure "what did this
///    operation cost" as `after - before`.  Snapshots are deterministic:
///    they count structural events (inserts, memo misses), never time.
///  * `global()` is the process-wide aggregate the batch-engine workers
///    flush their per-job banks into; it is the only concurrently written
///    piece and therefore uses relaxed atomics (exercised under TSan).
///
/// This header is dependency-free by design: bdd/manager.hpp includes it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace bddmin::telemetry {

#if defined(BDDMIN_NO_TELEMETRY)
inline constexpr bool kCountersEnabled = false;
#else
inline constexpr bool kCountersEnabled = true;
#endif

/// Every counted event.  Cache hit/miss pairs must stay adjacent
/// (hit = base, miss = base + 1): the manager classifies an op tag once
/// and indexes the pair.
enum class Counter : unsigned {
  kUniqueInserts = 0,    ///< new node slots claimed by unique_insert
  kUniqueHits,           ///< unique_insert found an existing node
  kIteCacheHits,         ///< computed-cache, op class ITE
  kIteCacheMisses,
  kCofactorCacheHits,    ///< op class cofactor
  kCofactorCacheMisses,
  kQuantifyCacheHits,    ///< op classes exists / and_exists
  kQuantifyCacheMisses,
  kComposeCacheHits,     ///< op class compose
  kComposeCacheMisses,
  kUserCacheHits,        ///< client tags (>= Manager::kUserOpBase)
  kUserCacheMisses,
  kAndCacheHits,         ///< op class AND (and_kernel + leq/disjoint probes)
  kAndCacheMisses,
  kXorCacheHits,         ///< op class XOR (xor_kernel)
  kXorCacheMisses,
  kGcRuns,               ///< garbage_collect() passes
  kGcNodesReclaimed,     ///< nodes freed by garbage_collect()
  kReorderNodesFreed,    ///< nodes freed inline by swap_adjacent_levels()
  kSiftSwaps,            ///< adjacent-level swaps executed
  kGovernorSteps,        ///< recursion steps charged (memoization misses)
  kCacheGrowths,         ///< adaptive computed-cache doublings
  kCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable short name ("unique_inserts", "ite_cache_hits", ...).
[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// Computed-cache op classes, as exposed per counter pair.
enum class CacheOpClass : unsigned {
  kIte,
  kCofactor,
  kQuantify,
  kCompose,
  kUser,
  kAnd,
  kXor,
};

[[nodiscard]] constexpr Counter cache_hit_counter(CacheOpClass cls) noexcept {
  switch (cls) {
    case CacheOpClass::kIte: return Counter::kIteCacheHits;
    case CacheOpClass::kCofactor: return Counter::kCofactorCacheHits;
    case CacheOpClass::kQuantify: return Counter::kQuantifyCacheHits;
    case CacheOpClass::kCompose: return Counter::kComposeCacheHits;
    case CacheOpClass::kUser: return Counter::kUserCacheHits;
    case CacheOpClass::kAnd: return Counter::kAndCacheHits;
    case CacheOpClass::kXor: return Counter::kXorCacheHits;
  }
  return Counter::kUserCacheHits;
}

/// A value snapshot of one bank; supports delta arithmetic.  Always a real
/// struct (all zeros when telemetry is compiled out) so downstream code —
/// reports, CSV columns, audits — compiles unconditionally.
struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> values{};

  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total_cache_hits() const noexcept {
    return value(Counter::kIteCacheHits) + value(Counter::kCofactorCacheHits) +
           value(Counter::kQuantifyCacheHits) +
           value(Counter::kComposeCacheHits) + value(Counter::kUserCacheHits) +
           value(Counter::kAndCacheHits) + value(Counter::kXorCacheHits);
  }
  [[nodiscard]] std::uint64_t total_cache_misses() const noexcept {
    return value(Counter::kIteCacheMisses) +
           value(Counter::kCofactorCacheMisses) +
           value(Counter::kQuantifyCacheMisses) +
           value(Counter::kComposeCacheMisses) +
           value(Counter::kUserCacheMisses) + value(Counter::kAndCacheMisses) +
           value(Counter::kXorCacheMisses);
  }

  CounterSnapshot& operator+=(const CounterSnapshot& o) noexcept {
    for (std::size_t i = 0; i < kNumCounters; ++i) values[i] += o.values[i];
    return *this;
  }
  /// Delta (this - o); callers guarantee monotonicity (same bank, later
  /// snapshot on the left).
  [[nodiscard]] CounterSnapshot operator-(const CounterSnapshot& o) const noexcept {
    CounterSnapshot d;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      d.values[i] = values[i] - o.values[i];
    }
    return d;
  }
  [[nodiscard]] bool operator==(const CounterSnapshot&) const noexcept = default;
};

#if defined(BDDMIN_NO_TELEMETRY)

/// Compiled-out bank: every operation is an empty inline no-op; the
/// snapshot is all zeros.  sizeof(CounterBank) stays minimal and the hot
/// paths contain no loads, stores or branches for telemetry.
class CounterBank {
 public:
  void bump(Counter) noexcept {}
  void add(Counter, std::uint64_t) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] std::uint64_t value(Counter) const noexcept { return 0; }
  [[nodiscard]] CounterSnapshot snapshot() const noexcept { return {}; }
  /// Slot pointer for the governor's step accounting; null disables it.
  [[nodiscard]] std::uint64_t* step_slot() noexcept { return nullptr; }
};

#else

/// Per-Manager counter bank.  Plain uint64 — the owning Manager is
/// single-threaded, so a bump is one increment, no synchronization.
///
/// alignas(64): each batch-engine worker owns one pooled Manager and bumps
/// its bank on every hot-path event.  Managers for neighbouring workers can
/// be allocated close together; cache-line alignment guarantees two workers
/// never false-share a line through their banks.
class alignas(64) CounterBank {
 public:
  void bump(Counter c) noexcept { ++values_[static_cast<std::size_t>(c)]; }
  void add(Counter c, std::uint64_t n) noexcept {
    values_[static_cast<std::size_t>(c)] += n;
  }
  void reset() noexcept { values_ = {}; }
  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    return values_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] CounterSnapshot snapshot() const noexcept {
    CounterSnapshot s;
    s.values = values_;
    return s;
  }
  /// Direct slot for Counter::kGovernorSteps so the governor can charge
  /// steps without depending on this header's enum.
  [[nodiscard]] std::uint64_t* step_slot() noexcept {
    return &values_[static_cast<std::size_t>(Counter::kGovernorSteps)];
  }

 private:
  std::array<std::uint64_t, kNumCounters> values_{};
};

#endif  // BDDMIN_NO_TELEMETRY

/// Process-wide aggregate.  Workers flush one whole-job snapshot at job
/// end (coarse-grained), so relaxed atomics suffice: there is no ordering
/// relationship to protect, only the final sums.
///
/// Concurrency contract: intentionally *not* a capability — there is no
/// mutex and no exclusion to express.  Every member is safe from any thread
/// because each word is individually atomic; a snapshot() concurrent with
/// add() may observe a torn *set* of counters (some slots before the add,
/// some after), which is acceptable for monitoring output.  See
/// docs/CONCURRENCY.md.
class GlobalCounters {
 public:
  void add(const CounterSnapshot& s) noexcept {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      values_[i].fetch_add(s.values[i], std::memory_order_relaxed);
    }
  }
  [[nodiscard]] CounterSnapshot snapshot() const noexcept {
    CounterSnapshot s;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.values[i] = values_[i].load(std::memory_order_relaxed);
    }
    return s;
  }
  void reset() noexcept {
    for (auto& v : values_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> values_{};
};

/// The process-global aggregate (never destroyed).
[[nodiscard]] GlobalCounters& global() noexcept;

/// Prometheus text exposition of a snapshot: one `bddmin_*_total` family
/// per structural counter, plus a labelled
/// `bddmin_cache_lookups_total{op=...,outcome=...}` family.
[[nodiscard]] std::string prometheus_text(const CounterSnapshot& s);

}  // namespace bddmin::telemetry
