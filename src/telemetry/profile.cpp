#include "telemetry/profile.hpp"

namespace bddmin::telemetry {
namespace {

thread_local ProfileCollector* g_current = nullptr;

}  // namespace

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kMatching: return "matching";
    case Phase::kCoverBuild: return "cover_build";
    case Phase::kValidation: return "validation";
  }
  return "?";
}

ProfileCollector* ProfileCollector::current() noexcept { return g_current; }

ProfileCollector::ProfileCollector(const Manager& mgr,
                                   PhaseProfile* out) noexcept
    : mgr_(mgr),
      out_(out),
      outer_(g_current),
      last_counters_(mgr.telemetry()),
      last_time_(std::chrono::steady_clock::now()) {
  g_current = this;
}

ProfileCollector::~ProfileCollector() {
  (void)switch_phase(phase_);  // flush the tail into the current phase
  g_current = outer_;
}

Phase ProfileCollector::switch_phase(Phase next) noexcept {
  const auto now = std::chrono::steady_clock::now();
  const CounterSnapshot counters = mgr_.telemetry();
  const CounterSnapshot delta = counters - last_counters_;
  PhaseData& d = (*out_)[phase_];
  d.seconds += std::chrono::duration<double>(now - last_time_).count();
  d.steps += delta.value(Counter::kGovernorSteps);
  d.cache_hits += delta.total_cache_hits();
  d.cache_misses += delta.total_cache_misses();
  d.unique_inserts += delta.value(Counter::kUniqueInserts);
  last_counters_ = counters;
  last_time_ = now;
  const Phase prev = phase_;
  phase_ = next;
  return prev;
}

}  // namespace bddmin::telemetry
