/// \file trace.hpp
/// \brief Span tracer emitting Chrome `trace_event` JSON.
///
/// Activation: set `BDDMIN_TRACE=<file>` in the environment before the
/// first traced scope (the file is written at process exit), or call
/// `Tracer::start(path)` / `Tracer::stop()` explicitly (tests, tools).
/// When inactive, every scope costs one relaxed atomic load and a
/// predicted branch — cheap enough for the coarse sites we instrument
/// (jobs, heuristics, window passes; never per-node recursions).
///
/// Thread model: each thread appends to its own buffer (registered with
/// the tracer on first use and assigned a sequential display tid), so
/// `run_batch` workers render as separate tracks in Chrome's
/// `chrome://tracing` / Perfetto.  RAII scopes guarantee the emitted
/// complete ("X") events are strictly nested per track; work-steal
/// events are instants ("i").  `stop()` merges the buffers and writes
/// `{"traceEvents":[...]}`; it must not race open scopes on other
/// threads (the engine joins its workers first; the env-var path writes
/// from an atexit handler).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

namespace bddmin::telemetry {

class Tracer;

namespace detail {
extern std::atomic<Tracer*> g_tracer;          // non-null while active
extern std::atomic<bool> g_env_checked;        // BDDMIN_TRACE consulted?
[[nodiscard]] Tracer* check_env() noexcept;    // consult once, maybe start
}  // namespace detail

class Tracer {
 public:
  /// The active tracer, or nullptr.  First call consults BDDMIN_TRACE.
  [[nodiscard]] static Tracer* active() noexcept {
    Tracer* t = detail::g_tracer.load(std::memory_order_acquire);
    if (t != nullptr) return t;
    if (!detail::g_env_checked.load(std::memory_order_acquire)) {
      return detail::check_env();
    }
    return nullptr;
  }

  /// Start tracing into \p path.  Returns false (and changes nothing) if
  /// a trace is already active.
  static bool start(const std::string& path);
  /// Deactivate, merge all thread buffers and write the JSON file.
  /// Returns the path written, or "" if no trace was active or the file
  /// could not be written.  Callers must ensure no other thread still has
  /// scopes open (join workers first).
  static std::string stop();
  /// Name the calling thread's track (Chrome thread_name metadata).
  /// No-op when inactive.
  static void set_thread_name(const std::string& name);

  // Event recording (call through TraceScope / trace_instant /
  // trace_counter).
  void begin(std::string name, const char* cat);
  void end();
  void instant(std::string name, const char* cat);
  void counter(std::string name, const char* cat, std::uint64_t value);

 private:
  Tracer() = default;
  static Tracer* singleton();
  struct Impl;
  Impl* impl_ = nullptr;
  friend Tracer* detail::check_env() noexcept;
};

/// RAII span: emits one complete ("X") event on the calling thread's
/// track.  Strict nesting follows from scope nesting.
///
/// Must be bound to a named local: `TraceScope s("x", "y");`.  A discarded
/// temporary (`TraceScope("x", "y");`) closes the span immediately and
/// records a zero-length event — lint rule R5 (tools/bddmin_lint.py)
/// rejects that form.
class TraceScope {
 public:
  TraceScope(const char* name, const char* cat) {
    if ((t_ = Tracer::active()) != nullptr) t_->begin(name, cat);
  }
  TraceScope(std::string name, const char* cat) {
    if ((t_ = Tracer::active()) != nullptr) t_->begin(std::move(name), cat);
  }
  ~TraceScope() {
    if (t_ != nullptr) t_->end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* t_ = nullptr;
};

/// Zero-duration instant event (e.g. a work-steal).
inline void trace_instant(const char* name, const char* cat) {
  if (Tracer* t = Tracer::active()) t->instant(name, cat);
}

/// Counter ("C") sample: Chrome renders these as a stacked area chart on
/// the emitting thread's track (e.g. the sampled run-queue depth).  The
/// value lands in `args` under the event name.
inline void trace_counter(const char* name, const char* cat,
                          std::uint64_t value) {
  if (Tracer* t = Tracer::active()) t->counter(name, cat, value);
}

/// Validate Chrome trace JSON: parseable, a traceEvents array of
/// well-formed events, and complete events strictly nested per tid.
/// Returns "" on success, else a one-line diagnostic.  (The CI uses the
/// equivalent Python checker in tools/check_trace.py; this one serves
/// the unit tests without external dependencies.)
[[nodiscard]] std::string validate_trace(const std::string& json);

}  // namespace bddmin::telemetry
