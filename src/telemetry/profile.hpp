/// \file profile.hpp
/// \brief Per-phase profiles: attribute a manager's counter deltas (and
/// wall time) to the minimizer phases matching / cover-build / validation.
///
/// A ProfileCollector is installed around one heuristic run (the engine
/// does this per job slot; `minimize::with_profile` wraps any registry
/// heuristic the same way).  While installed, PhaseScope RAII markers
/// inside the minimizers switch the phase work is attributed to: the
/// matching criteria (minimize/matching.cpp, the fmm_* passes of
/// level.cpp) report kMatching, result construction defaults to
/// kCoverBuild, and the engine wraps its cover checks in kValidation.
///
/// Attribution is exclusive (self) time: entering a nested phase stops
/// the clock of the outer one.  The counter parts of a PhaseData are
/// deterministic — they count memoization misses and inserts, which
/// depend only on the operation sequence — while `seconds` is wall time
/// and explicitly not.
///
/// Cost: when no collector is installed a PhaseScope is one thread-local
/// load and a branch.  When installed, a phase switch snapshots the
/// manager's counter bank (a few cache lines) and reads the steady
/// clock; the instrumented sites are per-node-visit at their finest, and
/// each visit already performs several ITE calls, so the overhead stays
/// in the noise (see docs/API.md "Telemetry" for measured numbers).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "bdd/manager.hpp"
#include "telemetry/counters.hpp"

namespace bddmin::telemetry {

enum class Phase : unsigned { kMatching = 0, kCoverBuild = 1, kValidation = 2 };
inline constexpr std::size_t kNumPhases = 3;

/// Stable short name ("matching", "cover_build", "validation").
[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// Work attributed to one phase.
struct PhaseData {
  double seconds = 0.0;              ///< wall time; non-deterministic
  std::uint64_t steps = 0;           ///< governor steps (memo misses)
  std::uint64_t cache_hits = 0;      ///< computed-cache hits, all op classes
  std::uint64_t cache_misses = 0;
  std::uint64_t unique_inserts = 0;  ///< new nodes built

  PhaseData& operator+=(const PhaseData& o) noexcept {
    seconds += o.seconds;
    steps += o.steps;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    unique_inserts += o.unique_inserts;
    return *this;
  }
};

struct PhaseProfile {
  std::array<PhaseData, kNumPhases> phases{};

  [[nodiscard]] PhaseData& operator[](Phase p) noexcept {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const PhaseData& operator[](Phase p) const noexcept {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t total_steps() const noexcept {
    std::uint64_t total = 0;
    for (const PhaseData& d : phases) total += d.steps;
    return total;
  }
  PhaseProfile& operator+=(const PhaseProfile& o) noexcept {
    for (std::size_t i = 0; i < kNumPhases; ++i) phases[i] += o.phases[i];
    return *this;
  }
};

/// Installed on the current thread for the duration of one heuristic run
/// (plus its validation); accumulates into \p out.  Collectors nest: the
/// inner one shadows the outer until it is destroyed.  All ops must go
/// through the \p mgr passed here — other managers' work is not seen.
class ProfileCollector {
 public:
  ProfileCollector(const Manager& mgr, PhaseProfile* out) noexcept;
  ~ProfileCollector();
  ProfileCollector(const ProfileCollector&) = delete;
  ProfileCollector& operator=(const ProfileCollector&) = delete;

  /// The collector installed on this thread, or nullptr.
  [[nodiscard]] static ProfileCollector* current() noexcept;

 private:
  friend class PhaseScope;
  /// Credit work since the last switch to the current phase, then make
  /// \p next current.  Returns the previous phase.
  Phase switch_phase(Phase next) noexcept;

  const Manager& mgr_;
  PhaseProfile* out_;
  ProfileCollector* outer_;
  Phase phase_ = Phase::kCoverBuild;
  CounterSnapshot last_counters_;
  std::chrono::steady_clock::time_point last_time_;
};

/// RAII phase marker.  No-op when no collector is installed or the
/// collector is already in \p p (nested same-phase scopes are free).
///
/// Must be bound to a named local: a discarded temporary switches the
/// phase and switches straight back, attributing nothing — lint rule R5
/// (tools/bddmin_lint.py) rejects that form.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p) noexcept {
    ProfileCollector* c = ProfileCollector::current();
    if (c != nullptr && c->phase_ != p) {
      c_ = c;
      prev_ = c->switch_phase(p);
    }
  }
  ~PhaseScope() {
    if (c_ != nullptr) (void)c_->switch_phase(prev_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ProfileCollector* c_ = nullptr;
  Phase prev_ = Phase::kCoverBuild;
};

}  // namespace bddmin::telemetry
