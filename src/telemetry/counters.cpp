#include "telemetry/counters.hpp"

#include <sstream>

namespace bddmin::telemetry {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kUniqueInserts: return "unique_inserts";
    case Counter::kUniqueHits: return "unique_hits";
    case Counter::kIteCacheHits: return "ite_cache_hits";
    case Counter::kIteCacheMisses: return "ite_cache_misses";
    case Counter::kCofactorCacheHits: return "cofactor_cache_hits";
    case Counter::kCofactorCacheMisses: return "cofactor_cache_misses";
    case Counter::kQuantifyCacheHits: return "quantify_cache_hits";
    case Counter::kQuantifyCacheMisses: return "quantify_cache_misses";
    case Counter::kComposeCacheHits: return "compose_cache_hits";
    case Counter::kComposeCacheMisses: return "compose_cache_misses";
    case Counter::kUserCacheHits: return "user_cache_hits";
    case Counter::kUserCacheMisses: return "user_cache_misses";
    case Counter::kAndCacheHits: return "and_cache_hits";
    case Counter::kAndCacheMisses: return "and_cache_misses";
    case Counter::kXorCacheHits: return "xor_cache_hits";
    case Counter::kXorCacheMisses: return "xor_cache_misses";
    case Counter::kGcRuns: return "gc_runs";
    case Counter::kGcNodesReclaimed: return "gc_nodes_reclaimed";
    case Counter::kReorderNodesFreed: return "reorder_nodes_freed";
    case Counter::kSiftSwaps: return "sift_swaps";
    case Counter::kGovernorSteps: return "governor_steps";
    case Counter::kCacheGrowths: return "cache_growths";
    case Counter::kCount: break;
  }
  return "?";
}

GlobalCounters& global() noexcept {
  static GlobalCounters* instance = new GlobalCounters();  // never destroyed
  return *instance;
}

std::string prometheus_text(const CounterSnapshot& s) {
  std::ostringstream os;
  const auto plain = [&](Counter c, const char* name, const char* help) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name
       << " counter\n"
       << name << ' ' << s.value(c) << '\n';
  };
  plain(Counter::kUniqueInserts, "bddmin_unique_inserts_total",
        "New unique-table slots claimed");
  plain(Counter::kUniqueHits, "bddmin_unique_hits_total",
        "Unique-table lookups resolved to an existing node");
  os << "# HELP bddmin_cache_lookups_total Computed-cache lookups by op "
        "class and outcome\n"
        "# TYPE bddmin_cache_lookups_total counter\n";
  const auto cache = [&](const char* op, Counter hit) {
    const auto miss =
        static_cast<Counter>(static_cast<unsigned>(hit) + 1);
    os << "bddmin_cache_lookups_total{op=\"" << op << "\",outcome=\"hit\"} "
       << s.value(hit) << '\n';
    os << "bddmin_cache_lookups_total{op=\"" << op << "\",outcome=\"miss\"} "
       << s.value(miss) << '\n';
  };
  cache("ite", Counter::kIteCacheHits);
  cache("and", Counter::kAndCacheHits);
  cache("xor", Counter::kXorCacheHits);
  cache("cofactor", Counter::kCofactorCacheHits);
  cache("quantify", Counter::kQuantifyCacheHits);
  cache("compose", Counter::kComposeCacheHits);
  cache("user", Counter::kUserCacheHits);
  plain(Counter::kGcRuns, "bddmin_gc_runs_total", "Garbage-collection passes");
  plain(Counter::kGcNodesReclaimed, "bddmin_gc_nodes_reclaimed_total",
        "Nodes reclaimed by garbage collection");
  plain(Counter::kReorderNodesFreed, "bddmin_reorder_nodes_freed_total",
        "Nodes freed inline by adjacent-level swaps");
  plain(Counter::kSiftSwaps, "bddmin_sift_swaps_total",
        "Adjacent-level swaps executed");
  plain(Counter::kGovernorSteps, "bddmin_governor_steps_total",
        "Recursion steps charged (memoization misses)");
  plain(Counter::kCacheGrowths, "bddmin_cache_growths_total",
        "Adaptive computed-cache doublings");
  return os.str();
}

}  // namespace bddmin::telemetry
