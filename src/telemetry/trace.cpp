#include "telemetry/trace.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analysis/thread_annotations.hpp"
#include "harness/env.hpp"

namespace bddmin::telemetry {
namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  std::string name;
  const char* cat = "";
  char ph = 'X';
  std::uint64_t ts_ns = 0;   // relative to trace start
  std::uint64_t dur_ns = 0;  // X events only
  std::uint64_t value = 0;   // C events only
};

struct OpenSpan {
  std::string name;
  const char* cat;
  std::uint64_t start_ns;
};

/// One thread's buffer.  The owning thread appends under the per-log
/// mutex; stop() takes the same mutex when merging, so a scope closing
/// concurrently with shutdown is never torn.  `tid` and `generation` are
/// written once by the creating thread before the log is published (under
/// Impl::mu) and immutable afterwards, so they need no guard.
struct ThreadLog {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::uint64_t generation = 0;
  std::string thread_name BDDMIN_GUARDED_BY(mu);
  std::vector<TraceEvent> events BDDMIN_GUARDED_BY(mu);
  std::vector<OpenSpan> stack BDDMIN_GUARDED_BY(mu);
};

void json_escape(std::string* out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

}  // namespace

struct Tracer::Impl {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadLog>> logs BDDMIN_GUARDED_BY(mu);
  std::uint32_t next_tid BDDMIN_GUARDED_BY(mu) = 1;
  std::string path BDDMIN_GUARDED_BY(mu);
  /// Bumped by start()/check_env() to invalidate thread-local cached logs.
  /// Atomic: log_for_this_thread() compares it on every traced event, on
  /// any thread, without taking `mu` — a plain field would race the bump.
  std::atomic<std::uint64_t> generation{0};
  /// Written by start()/check_env() before the tracer is published via the
  /// g_tracer release store; read unlocked by now_ns() on any thread after
  /// the matching acquire load.  Publication is the synchronization.
  Clock::time_point epoch{};

  std::shared_ptr<ThreadLog> log_for_this_thread() BDDMIN_EXCLUDES(mu) {
    thread_local std::shared_ptr<ThreadLog> cached;
    if (cached &&
        cached->generation == generation.load(std::memory_order_acquire)) {
      return cached;
    }
    auto fresh = std::make_shared<ThreadLog>();
    {
      const std::lock_guard<std::mutex> lock(mu);
      fresh->tid = next_tid++;
      fresh->generation = generation.load(std::memory_order_relaxed);
      logs.push_back(fresh);
    }
    cached = fresh;
    return fresh;
  }

  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch)
            .count());
  }
};

namespace detail {
std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<bool> g_env_checked{false};
namespace {
std::mutex g_lifecycle_mu;  // serializes start/stop/env-check
}  // namespace

}  // namespace detail

Tracer* Tracer::singleton() {
  static Tracer* t = [] {
    auto* fresh = new Tracer();  // never destroyed: scopes may outlive stop()
    fresh->impl_ = new Tracer::Impl();
    return fresh;
  }();
  return t;
}

namespace detail {
Tracer* check_env() noexcept {
  const std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (g_env_checked.load(std::memory_order_acquire)) {
    return g_tracer.load(std::memory_order_acquire);
  }
  Tracer* activated = nullptr;
  if (const auto path = harness::env_string("BDDMIN_TRACE");
      path && !path->empty()) {
    Tracer* t = Tracer::singleton();
    {
      const std::lock_guard<std::mutex> impl_lock(t->impl_->mu);
      t->impl_->path = *path;
    }
    t->impl_->epoch = Clock::now();
    t->impl_->generation.fetch_add(1, std::memory_order_release);
    g_tracer.store(t, std::memory_order_release);
    std::atexit([] { (void)Tracer::stop(); });
    activated = t;
  }
  g_env_checked.store(true, std::memory_order_release);
  return activated;
}
}  // namespace detail

bool Tracer::start(const std::string& path) {
  const std::lock_guard<std::mutex> lock(detail::g_lifecycle_mu);
  detail::g_env_checked.store(true, std::memory_order_release);  // env loses
  if (detail::g_tracer.load(std::memory_order_acquire) != nullptr) {
    return false;
  }
  Tracer* t = singleton();
  {
    const std::lock_guard<std::mutex> impl_lock(t->impl_->mu);
    t->impl_->path = path;
    t->impl_->logs.clear();
    t->impl_->next_tid = 1;
  }
  t->impl_->epoch = Clock::now();
  // Invalidates thread-local cached logs (paired with the acquire load in
  // log_for_this_thread).
  t->impl_->generation.fetch_add(1, std::memory_order_release);
  detail::g_tracer.store(t, std::memory_order_release);
  return true;
}

std::string Tracer::stop() {
  const std::lock_guard<std::mutex> lock(detail::g_lifecycle_mu);
  Tracer* t = detail::g_tracer.exchange(nullptr, std::memory_order_acq_rel);
  if (t == nullptr) return "";
  Impl& impl = *t->impl_;
  std::vector<std::shared_ptr<ThreadLog>> logs;
  std::string path;
  std::uint64_t end_ns = 0;
  {
    const std::lock_guard<std::mutex> impl_lock(impl.mu);
    logs = impl.logs;
    path = impl.path;
    end_ns = impl.now_ns();
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  const auto emit = [&](const std::string& body) {
    if (!first) out += ',';
    first = false;
    out += body;
  };
  for (const auto& log : logs) {
    const std::lock_guard<std::mutex> log_lock(log->mu);
    if (!log->thread_name.empty()) {
      std::string body = "{\"ph\":\"M\",\"pid\":1,\"tid\":";
      body += std::to_string(log->tid);
      body += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      json_escape(&body, log->thread_name);
      body += "\"}}";
      emit(body);
    }
    // Close any span still open at shutdown so the file stays well formed.
    while (!log->stack.empty()) {
      const OpenSpan& open = log->stack.back();
      TraceEvent ev;
      ev.name = open.name;
      ev.cat = open.cat;
      ev.ts_ns = open.start_ns;
      ev.dur_ns = end_ns > open.start_ns ? end_ns - open.start_ns : 0;
      log->events.push_back(std::move(ev));
      log->stack.pop_back();
    }
    for (const TraceEvent& ev : log->events) {
      std::string body = "{\"ph\":\"";
      body += ev.ph;
      body += "\",\"pid\":1,\"tid\":";
      body += std::to_string(log->tid);
      std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                    static_cast<double>(ev.ts_ns) / 1000.0);
      body += buf;
      if (ev.ph == 'X') {
        std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                      static_cast<double>(ev.dur_ns) / 1000.0);
        body += buf;
      }
      if (ev.ph == 'i') body += ",\"s\":\"t\"";
      body += ",\"cat\":\"";
      json_escape(&body, ev.cat);
      body += "\",\"name\":\"";
      json_escape(&body, ev.name);
      body += '"';
      if (ev.ph == 'C') {
        // Chrome plots each args key as a series; one key named after
        // the counter keeps the track legend readable.
        body += ",\"args\":{\"";
        json_escape(&body, ev.name);
        body += "\":";
        body += std::to_string(ev.value);
        body += '}';
      }
      body += '}';
      emit(body);
    }
    log->events.clear();
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  {
    const std::lock_guard<std::mutex> impl_lock(impl.mu);
    impl.logs.clear();
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write trace file %s\n",
                 path.c_str());
    return "";
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return path;
}

void Tracer::set_thread_name(const std::string& name) {
  Tracer* t = active();
  if (t == nullptr) return;
  const auto log = t->impl_->log_for_this_thread();
  const std::lock_guard<std::mutex> lock(log->mu);
  log->thread_name = name;
}

void Tracer::begin(std::string name, const char* cat) {
  const auto log = impl_->log_for_this_thread();
  const std::lock_guard<std::mutex> lock(log->mu);
  log->stack.push_back(OpenSpan{std::move(name), cat, impl_->now_ns()});
}

void Tracer::end() {
  const auto log = impl_->log_for_this_thread();
  const std::lock_guard<std::mutex> lock(log->mu);
  if (log->stack.empty()) return;  // stop() already closed it
  OpenSpan open = std::move(log->stack.back());
  log->stack.pop_back();
  const std::uint64_t now = impl_->now_ns();
  TraceEvent ev;
  ev.name = std::move(open.name);
  ev.cat = open.cat;
  ev.ts_ns = open.start_ns;
  ev.dur_ns = now > open.start_ns ? now - open.start_ns : 0;
  log->events.push_back(std::move(ev));
}

void Tracer::instant(std::string name, const char* cat) {
  const auto log = impl_->log_for_this_thread();
  const std::lock_guard<std::mutex> lock(log->mu);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_ns = impl_->now_ns();
  log->events.push_back(std::move(ev));
}

void Tracer::counter(std::string name, const char* cat, std::uint64_t value) {
  const auto log = impl_->log_for_this_thread();
  const std::lock_guard<std::mutex> lock(log->mu);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ph = 'C';
  ev.ts_ns = impl_->now_ns();
  ev.value = value;
  log->events.push_back(std::move(ev));
}

// ---------------------------------------------------------------------
// validate_trace: a minimal JSON reader sufficient for trace files.
// ---------------------------------------------------------------------

namespace {

/// Parsed JSON value (only what the validator needs).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }
  [[nodiscard]] std::string error() const {
    return "JSON parse error near offset " + std::to_string(pos_);
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out->kind = JsonValue::Kind::kString; return string(&out->string);
      case 't': out->kind = JsonValue::Kind::kBool; out->boolean = true;
                return literal("true");
      case 'f': out->kind = JsonValue::Kind::kBool; out->boolean = false;
                return literal("false");
      case 'n': out->kind = JsonValue::Kind::kNull; return literal("null");
      default: return number(out);
    }
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            *out += '?';  // code point fidelity is irrelevant here
            pos_ += 4;
            break;
          default: return false;
        }
        ++pos_;
      } else {
        *out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JsonValue element;
      skip_ws();
      if (!value(&element)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue element;
      if (!value(&element)) return false;
      out->object.emplace(std::move(key), std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string validate_trace(const std::string& json) {
  JsonParser parser(json);
  JsonValue root;
  if (!parser.parse(&root)) return parser.error();
  if (root.kind != JsonValue::Kind::kObject) return "root is not an object";
  const auto it = root.object.find("traceEvents");
  if (it == root.object.end()) return "missing traceEvents";
  if (it->second.kind != JsonValue::Kind::kArray) {
    return "traceEvents is not an array";
  }

  struct Span {
    double ts, dur;
    std::string name;
  };
  std::map<double, std::vector<Span>> per_tid;
  for (const JsonValue& ev : it->second.array) {
    if (ev.kind != JsonValue::Kind::kObject) return "event is not an object";
    const auto field = [&](const char* key) -> const JsonValue* {
      const auto f = ev.object.find(key);
      return f == ev.object.end() ? nullptr : &f->second;
    };
    const JsonValue* ph = field("ph");
    const JsonValue* name = field("name");
    const JsonValue* tid = field("tid");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString) {
      return "event missing ph";
    }
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      return "event missing name";
    }
    if (tid == nullptr || tid->kind != JsonValue::Kind::kNumber) {
      return "event missing tid";
    }
    if (ph->string == "X") {
      const JsonValue* ts = field("ts");
      const JsonValue* dur = field("dur");
      if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
        return "X event missing ts";
      }
      if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber) {
        return "X event missing dur";
      }
      per_tid[tid->number].push_back({ts->number, dur->number, name->string});
    } else if (ph->string == "C") {
      const JsonValue* ts = field("ts");
      const JsonValue* args = field("args");
      if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
        return "C event missing ts";
      }
      if (args == nullptr || args->kind != JsonValue::Kind::kObject ||
          args->object.empty()) {
        return "C event missing args";
      }
      for (const auto& [key, v] : args->object) {
        if (v.kind != JsonValue::Kind::kNumber) {
          return "C event arg \"" + key + "\" is not numeric";
        }
      }
    } else if (ph->string != "i" && ph->string != "M") {
      return "unexpected ph \"" + ph->string + "\"";
    }
  }

  // Strict nesting per track: sort by (start asc, duration desc); each
  // span must lie entirely inside the innermost span still open.
  for (auto& [tid, spans] : per_tid) {
    std::stable_sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.dur > b.dur;
    });
    constexpr double kEps = 1e-3;  // emitted with 3 decimals (ns resolution)
    std::vector<double> open_ends;
    for (const Span& s : spans) {
      while (!open_ends.empty() && open_ends.back() <= s.ts + kEps) {
        open_ends.pop_back();
      }
      if (!open_ends.empty() && s.ts + s.dur > open_ends.back() + kEps) {
        return "span \"" + s.name + "\" overlaps its parent on tid " +
               std::to_string(tid);
      }
      open_ends.push_back(s.ts + s.dur);
    }
  }
  return "";
}

}  // namespace bddmin::telemetry
