/// \file histogram.hpp
/// \brief Fixed-footprint log-bucketed latency/size histograms.
///
/// The counter layer (counters.hpp) answers "how much work happened";
/// it cannot answer "how was that work *distributed*" — and the batch
/// engine's scaling questions (ROADMAP item 1) are distribution
/// questions: p99 job latency, steal-search tail, queue-depth swings.
/// This header adds HDR-style histograms with:
///
///  * **log-linear buckets** — exact buckets for values < 2^kSubBits,
///    then kSub (= 2^kSubBits) sub-buckets per power of two, giving a
///    bounded relative error of 1/kSub (6.25%) over the full uint64
///    range in a fixed kNumBuckets-slot array.  No allocation, ever.
///  * **wait-free record()** — three relaxed fetch_adds (bucket, sum,
///    count).  Any thread may record concurrently; there is no ordering
///    to protect, only final sums (same contract as GlobalCounters).
///  * **lossless merge()** — bucket-wise addition, so per-batch
///    histograms fold into the process-global ones without resampling.
///  * **deterministic quantiles** — quantile(q) is a pure function of
///    the bucket counts (rank = ceil(q*count), walk, return the bucket's
///    upper bound), so identical recorded multisets yield identical
///    p50/p90/p99 regardless of recording order or thread count.
///  * **Prometheus exposition** — classic `_bucket`/`_sum`/`_count`
///    histogram families (cumulative `le` labels, only non-empty
///    boundaries plus `+Inf`), appended to `bddmin_cli stats`.
///
/// Compiled out by `-DBDDMIN_TELEMETRY=OFF` (BDDMIN_NO_TELEMETRY):
/// record() becomes an empty inline no-op and snapshots are all-zero,
/// so downstream consumers (reports, the bench JSON) compile
/// unconditionally.  The bucket arithmetic stays available in both
/// builds — it is pure and the tests pin its boundaries exactly.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace bddmin::telemetry {

#if defined(BDDMIN_NO_TELEMETRY)
inline constexpr bool kHistogramsEnabled = false;
#else
inline constexpr bool kHistogramsEnabled = true;
#endif

/// Sub-bucket resolution: 2^kSubBits sub-buckets per octave.
inline constexpr unsigned kHistogramSubBits = 4;
inline constexpr std::uint64_t kHistogramSub = 1ull << kHistogramSubBits;
/// Exact buckets [0, kSub) + kSub sub-buckets for each of the
/// (64 - kSubBits) remaining octave groups.
inline constexpr std::size_t kNumHistogramBuckets =
    (64 - kHistogramSubBits) * kHistogramSub + kHistogramSub;

/// Bucket index of \p v.  Values below kHistogramSub map exactly
/// (index == value); above, the top kSubBits bits after the leading one
/// select the sub-bucket.  Monotone in v.
[[nodiscard]] constexpr std::size_t histogram_bucket_index(
    std::uint64_t v) noexcept {
  if (v < kHistogramSub) return static_cast<std::size_t>(v);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned shift = msb - kHistogramSubBits;
  const std::uint64_t sub = (v >> shift) - kHistogramSub;
  return static_cast<std::size_t>((shift + 1) * kHistogramSub + sub);
}

/// Largest value mapping to bucket \p i (inclusive upper bound).  The
/// quantile extractor reports this bound, so quantiles over-estimate by
/// at most the bucket's relative width (1/kSub).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_upper(
    std::size_t i) noexcept {
  if (i < kHistogramSub) return static_cast<std::uint64_t>(i);
  const unsigned shift = static_cast<unsigned>(i / kHistogramSub) - 1;
  const std::uint64_t sub = i % kHistogramSub;
  // Wraps to UINT64_MAX for the last bucket (2^64 - 1), which is exact.
  return ((kHistogramSub + sub + 1) << shift) - 1;
}

/// Value copy of one histogram: plain counts, mergeable, deterministic
/// quantile extraction.  Always a real struct (all zeros when telemetry
/// is compiled out).
struct HistogramSnapshot {
  std::array<std::uint64_t, kNumHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Upper bound of the bucket holding the rank-ceil(q*count) value
  /// (q clamped to [0, 1]).  0 when the histogram is empty.  Pure
  /// function of the counts: independent of record order and threads.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  /// Upper bound of the highest non-empty bucket (0 when empty).
  [[nodiscard]] std::uint64_t max_bound() const noexcept;
  /// sum / count (0 when empty).
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept {
    for (std::size_t i = 0; i < kNumHistogramBuckets; ++i) {
      buckets[i] += o.buckets[i];
    }
    count += o.count;
    sum += o.sum;
    return *this;
  }
  [[nodiscard]] bool operator==(const HistogramSnapshot&) const noexcept =
      default;
};

#if defined(BDDMIN_NO_TELEMETRY)

/// Compiled-out histogram: record/merge are empty inline no-ops and the
/// snapshot is all zeros, so the instrumentation sites cost nothing.
class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  void merge(const HistogramSnapshot&) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept { return {}; }
};

#else

/// Concurrent fixed-footprint histogram.  Safe to record from any
/// thread; a snapshot concurrent with record() may observe a torn *set*
/// (sum without its bucket), acceptable for monitoring output — the
/// deterministic consumers (bench percentiles) snapshot after joining.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[histogram_bucket_index(v)].fetch_add(1,
                                                  std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  /// Lossless bucket-wise addition of \p s into this histogram.
  void merge(const HistogramSnapshot& s) noexcept {
    for (std::size_t i = 0; i < kNumHistogramBuckets; ++i) {
      if (s.buckets[i] != 0) {
        buckets_[i].fetch_add(s.buckets[i], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(s.count, std::memory_order_relaxed);
    sum_.fetch_add(s.sum, std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kNumHistogramBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

#endif  // BDDMIN_NO_TELEMETRY

// ---- Well-known process-global histograms -------------------------------

/// Outcome classes of the job-latency family.  Mirrors
/// engine::JobStatus (telemetry keeps its own label table so the
/// dependency stays one-way; test_telemetry pins the two in sync).
inline constexpr std::size_t kNumOutcomeClasses = 6;
inline constexpr const char* kOutcomeLabels[kNumOutcomeClasses] = {
    "ok", "timeout", "cancelled", "error", "resource-limit", "quarantined"};

/// Attempt classes: first run, first retry, anything later.
inline constexpr std::size_t kNumAttemptClasses = 3;
inline constexpr const char* kAttemptLabels[kNumAttemptClasses] = {"1", "2",
                                                                   "3+"};

/// The process-wide histogram bank the batch engine records into
/// (analogous to GlobalCounters): per-job wall latency by outcome class
/// and attempt, per-job governor steps, steal-search latency and the
/// sampled run-queue depth.  Never destroyed.
class GlobalHistograms {
 public:
  /// Job latency (ns) for \p outcome (engine::JobStatus cast; clamped)
  /// on attempt \p attempt (1-based; 3 and above share a class).
  [[nodiscard]] Histogram& job_latency(unsigned outcome,
                                       unsigned attempt) noexcept {
    const std::size_t o =
        outcome < kNumOutcomeClasses ? outcome : kNumOutcomeClasses - 1;
    const std::size_t a = attempt <= 1 ? 0 : (attempt == 2 ? 1 : 2);
    return job_latency_[o][a];
  }
  [[nodiscard]] const Histogram& job_latency_at(std::size_t outcome,
                                                std::size_t attempt) const
      noexcept {
    return job_latency_[outcome][attempt];
  }
  /// Governor steps charged per job (deterministic per payload).
  [[nodiscard]] Histogram& job_steps() noexcept { return job_steps_; }
  [[nodiscard]] const Histogram& job_steps() const noexcept {
    return job_steps_;
  }
  /// Nanoseconds a worker spent hunting for work after missing its own
  /// deque (successful and failed steal sweeps alike).
  [[nodiscard]] Histogram& steal_search_ns() noexcept { return steal_search_; }
  [[nodiscard]] const Histogram& steal_search_ns() const noexcept {
    return steal_search_;
  }
  /// Sampled total run-queue depth (jobs waiting across all deques).
  [[nodiscard]] Histogram& queue_depth() noexcept { return queue_depth_; }
  [[nodiscard]] const Histogram& queue_depth() const noexcept {
    return queue_depth_;
  }
  /// Jobs packed into each shard by the batch engine's cost model.
  [[nodiscard]] Histogram& shard_jobs() noexcept { return shard_jobs_; }
  [[nodiscard]] const Histogram& shard_jobs() const noexcept {
    return shard_jobs_;
  }
  /// Estimated cost units per shard (see engine/shard.hpp).
  [[nodiscard]] Histogram& shard_cost() noexcept { return shard_cost_; }
  [[nodiscard]] const Histogram& shard_cost() const noexcept {
    return shard_cost_;
  }

  void reset() noexcept {
    for (auto& row : job_latency_) {
      for (Histogram& h : row) h.reset();
    }
    job_steps_.reset();
    steal_search_.reset();
    queue_depth_.reset();
    shard_jobs_.reset();
    shard_cost_.reset();
  }

 private:
  Histogram job_latency_[kNumOutcomeClasses][kNumAttemptClasses];
  Histogram job_steps_;
  Histogram steal_search_;
  Histogram queue_depth_;
  Histogram shard_jobs_;
  Histogram shard_cost_;
};

/// The process-global histogram bank (never destroyed).
[[nodiscard]] GlobalHistograms& histograms() noexcept;

/// Append one Prometheus histogram series (`_bucket`/`_sum`/`_count`)
/// for \p s under \p family with an optional `{label="..."}` set
/// (\p labels is the raw `key="value",...` body, empty for none).
/// Emits cumulative buckets only at boundaries where the count changes,
/// plus the mandatory `+Inf`.  The `# HELP`/`# TYPE` header is the
/// caller's job (labelled families share one header).
void append_histogram_series(std::string* out, const std::string& family,
                             const std::string& labels,
                             const HistogramSnapshot& s);

/// Prometheus text exposition of every well-known global histogram:
/// `bddmin_job_latency_ns{status=...,attempt=...}` (non-empty series
/// only), `bddmin_job_steps`, `bddmin_steal_search_ns`,
/// `bddmin_queue_depth` (always emitted, so scrapers see the families
/// even before the first batch).
[[nodiscard]] std::string histogram_prometheus_text(const GlobalHistograms& g);

}  // namespace bddmin::telemetry
