#include "telemetry/histogram.hpp"

#include <cmath>
#include <sstream>

namespace bddmin::telemetry {

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based rank of the requested order statistic; ceil so that q = 0.5
  // over two samples picks the first, matching "nearest-rank" quantiles.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return histogram_bucket_upper(i);
  }
  // Unreachable when count equals the bucket total; tolerate a torn
  // concurrent snapshot by reporting the largest representable bound.
  return histogram_bucket_upper(kNumHistogramBuckets - 1);
}

std::uint64_t HistogramSnapshot::max_bound() const noexcept {
  for (std::size_t i = kNumHistogramBuckets; i-- > 0;) {
    if (buckets[i] != 0) return histogram_bucket_upper(i);
  }
  return 0;
}

GlobalHistograms& histograms() noexcept {
  static GlobalHistograms* instance = new GlobalHistograms();  // never destroyed
  return *instance;
}

void append_histogram_series(std::string* out, const std::string& family,
                             const std::string& labels,
                             const HistogramSnapshot& s) {
  std::ostringstream os;
  const std::string prefix = labels.empty() ? "{" : "{" + labels + ",";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumHistogramBuckets; ++i) {
    if (s.buckets[i] == 0) continue;
    cumulative += s.buckets[i];
    os << family << "_bucket" << prefix << "le=\""
       << histogram_bucket_upper(i) << "\"} " << cumulative << '\n';
  }
  os << family << "_bucket" << prefix << "le=\"+Inf\"} " << s.count << '\n';
  os << family << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << ' '
     << s.sum << '\n';
  os << family << "_count" << (labels.empty() ? "" : "{" + labels + "}") << ' '
     << s.count << '\n';
  *out += os.str();
}

std::string histogram_prometheus_text(const GlobalHistograms& g) {
  std::string out;
  out +=
      "# HELP bddmin_job_latency_ns Per-job wall latency by outcome class "
      "and attempt\n"
      "# TYPE bddmin_job_latency_ns histogram\n";
  for (std::size_t o = 0; o < kNumOutcomeClasses; ++o) {
    for (std::size_t a = 0; a < kNumAttemptClasses; ++a) {
      const HistogramSnapshot s = g.job_latency_at(o, a).snapshot();
      if (s.count == 0) continue;  // skip empty labelled series
      std::ostringstream labels;
      labels << "status=\"" << kOutcomeLabels[o] << "\",attempt=\""
             << kAttemptLabels[a] << '"';
      append_histogram_series(&out, "bddmin_job_latency_ns", labels.str(), s);
    }
  }
  const auto plain = [&out](const char* family, const char* help,
                            const HistogramSnapshot& s) {
    out += "# HELP ";
    out += family;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += family;
    out += " histogram\n";
    append_histogram_series(&out, family, "", s);
  };
  plain("bddmin_job_steps", "Governor steps charged per batch job",
        g.job_steps().snapshot());
  plain("bddmin_steal_search_ns",
        "Worker steal-search latency after missing its own deque",
        g.steal_search_ns().snapshot());
  plain("bddmin_queue_depth", "Sampled total run-queue depth",
        g.queue_depth().snapshot());
  plain("bddmin_shard_jobs", "Jobs packed per scheduler shard",
        g.shard_jobs().snapshot());
  plain("bddmin_shard_cost", "Estimated cost units per scheduler shard",
        g.shard_cost().snapshot());
  return out;
}

}  // namespace bddmin::telemetry
