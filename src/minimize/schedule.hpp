/// \file schedule.hpp
/// \brief The scheduling algorithm of Section 3.4: apply safer
/// transformations (osm) before more powerful but less safe ones (tsm),
/// window by window down the BDD, finishing with constrain.
///
/// The theoretical justification is Theorem 12: osm matching at a level
/// can only lose optimality in the superstructure above that level, so
/// applying it near the top keeps the result near the optimum.
#pragma once

#include "minimize/level.hpp"
#include "minimize/sibling.hpp"

namespace bddmin::minimize {

struct ScheduleOptions {
  /// Number of levels treated per window (Section 3.4 step 1).
  std::uint32_t window_size = 4;
  /// When fewer than this many levels remain, assign all remaining DCs
  /// locally with constrain and stop (step 6).
  std::uint32_t stop_top_down = 8;
  /// Steps 4-5 (level matching in the window) are expensive; the paper
  /// suggests skipping them when runtime is a concern.
  bool use_level_steps = true;
  LevelOptions level;
};

/// Run the schedule on [f, c] and return a cover.
[[nodiscard]] Edge scheduled_minimize(Manager& mgr, const ScheduleOptions& opts,
                                      Edge f, Edge c);

}  // namespace bddmin::minimize
