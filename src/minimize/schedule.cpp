#include "minimize/schedule.hpp"

#include <algorithm>
#include <string>

#include "telemetry/trace.hpp"

namespace bddmin::minimize {

Edge scheduled_minimize(Manager& mgr, const ScheduleOptions& opts, Edge f,
                        Edge c) {
  if (c == kZero || c == kOne) return f;
  IncSpec spec{f, c};
  const std::uint32_t n = mgr.num_vars();
  const std::uint32_t window = std::max(opts.window_size, 1u);
  for (std::uint32_t initial_level = 0;; initial_level += window) {
    if (initial_level >= n ||
        n - initial_level < std::max(opts.stop_top_down, 1u)) {
      // Step 6: few levels remain; matches up here can no longer save
      // much, so spend the remaining DCs locally.
      return constrain(mgr, spec.f, spec.c);
    }
    const std::uint32_t hi = std::min(initial_level + window - 1, n - 1);
    const telemetry::TraceScope round(
        "window[" + std::to_string(initial_level) + "," + std::to_string(hi) +
            "]",
        "schedule");
    // Steps 2-3: sibling matching, safer criterion first.
    spec = sibling_window_pass(mgr, Criterion::kOsm, initial_level, hi, spec);
    spec = sibling_window_pass(mgr, Criterion::kTsm, initial_level, hi, spec);
    if (opts.use_level_steps) {
      // Steps 4-5: level matching inside the window, top-down.
      for (std::uint32_t i = initial_level; i <= hi && i + 1 < n; ++i) {
        spec = minimize_at_level(mgr, Criterion::kOsm, i, opts.level, spec);
      }
      for (std::uint32_t i = initial_level; i <= hi && i + 1 < n; ++i) {
        spec = minimize_at_level(mgr, Criterion::kTsm, i, opts.level, spec);
      }
    }
    if (spec.c == kOne) return spec.f;  // fully specified already
  }
}

}  // namespace bddmin::minimize
