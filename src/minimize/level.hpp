/// \file level.hpp
/// \brief Minimizing at a level (Section 3.3): collect the subfunctions
/// below a level, match as many as possible (FMM), substitute the
/// i-covers back.
///
/// FMM — the function matching minimization problem (Definition 8) — is
/// solved exactly per criterion:
///  * osm: the directed matching graph (DMG) is acyclic; the sink vertices
///    are a minimum solution (Proposition 10) and every vertex maps to a
///    reachable sink by transitivity.
///  * tsm: FMM reduces to minimum clique cover of the undirected matching
///    graph (Theorem 15), which is NP-complete, so the paper's greedy
///    clique construction is used with its two proposed optimizations:
///    seeds in decreasing-degree order, and growth along minimum
///    path-distance edges (dist of Section 3.3.2, from Touati et al.).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/cube.hpp"
#include "minimize/matching.hpp"

namespace bddmin::minimize {

struct LevelOptions {
  /// Cap on the number of collected functions per level; 0 = unlimited
  /// (the paper's implementation: "we do not limit the size of the set,
  /// preferring to trade runtime for quality").
  std::size_t max_set_size = 0;
  /// With a cap: process the set, then continue the traversal building a
  /// new set (the paper's first proposed method, which also groups
  /// "nearby" subfunctions).  Without it, functions beyond the cap are
  /// simply left untouched for that level.
  bool chunked = true;
  /// The paper's second proposed method: collect only subfunctions whose
  /// value part is rooted exactly at level i+1 (minimizes the node count
  /// of level i+1 specifically).  Orthogonal to the cap.
  bool only_level_plus_one = false;
  /// Clique optimization 1: visit seed vertices in decreasing order of
  /// out-degree so large cliques are not shadowed by small ones.
  bool order_by_degree = true;
  /// Clique optimization 2: grow cliques along edges with the smallest
  /// path distance, favouring matches of nearby (sibling-like) functions.
  bool weight_by_distance = true;
};

/// The subfunctions [fj, cj] pointed to from level `level` or above whose
/// f and c nodes both lie strictly below `level` (variable index >
/// level, constants included).  Deduplicated as *incompletely specified
/// functions* (same care set and same values on it), which keeps the osm
/// DMG acyclic as required by Proposition 10.
struct CollectedLevel {
  std::vector<IncSpec> specs;   ///< unique functions (graph vertices)
  std::vector<CubeVec> paths;   ///< first root path reaching each vertex
  /// (f.bits, c.bits) pair -> vertex index, for the substitution pass.
  std::unordered_map<std::uint64_t, std::size_t> pair_to_vertex;
};

[[nodiscard]] CollectedLevel collect_at_level(Manager& mgr, IncSpec spec,
                                              std::uint32_t level,
                                              std::size_t max_set_size = 0,
                                              bool only_level_plus_one = false);

/// Section 3.3.2's path distance dist(g, h) = sum over common literal
/// positions of |x_i^g - x_i^h| * 2^(k-i-1); absent positions are skipped.
[[nodiscard]] double path_distance(const CubeVec& a, const CubeVec& b);

/// Solve FMM under osm: returns rep[j] = index of the sink vertex whose
/// [f, c] i-covers vertex j (rep[j] == j for sinks).
[[nodiscard]] std::vector<std::size_t> fmm_osm(Manager& mgr,
                                               std::span<const IncSpec> specs);

/// A clique cover of the UMG: clique_of[j] indexes into cliques.
struct CliqueCover {
  std::vector<std::vector<std::size_t>> cliques;
  std::vector<std::size_t> clique_of;
};

/// Solve FMM under tsm with the greedy clique-cover heuristic.  \p paths
/// may be empty when weight_by_distance is off.
[[nodiscard]] CliqueCover fmm_tsm(Manager& mgr, std::span<const IncSpec> specs,
                                  std::span<const CubeVec> paths,
                                  const LevelOptions& opts);

/// Merge all functions of a clique into their common i-cover
/// [sum fj·cj, sum cj] (valid by Lemma 14).
[[nodiscard]] IncSpec merge_clique(Manager& mgr, std::span<const IncSpec> specs,
                                   std::span<const std::size_t> members);

/// Rebuild [f, c] with each boundary pair replaced per \p replacement
/// (pairs without an entry are kept).  The result is an i-cover of spec.
[[nodiscard]] IncSpec substitute_at_level(
    Manager& mgr, IncSpec spec, std::uint32_t level,
    const std::unordered_map<std::uint64_t, IncSpec>& replacement);

struct LevelStats {
  std::size_t vertices = 0;  ///< functions collected
  std::size_t groups = 0;    ///< sinks (osm) or cliques (tsm)
  std::size_t matched = 0;   ///< vertices - groups
};

/// One full "minimize at level i" step under osm or tsm (osdm degenerates
/// to osm with an empty premise and is not offered separately, mirroring
/// the paper).
[[nodiscard]] IncSpec minimize_at_level(Manager& mgr, Criterion crit,
                                        std::uint32_t level,
                                        const LevelOptions& opts, IncSpec spec,
                                        LevelStats* stats = nullptr);

/// The paper's opt_lv heuristic: visit levels top-down applying level
/// minimization under \p crit (the paper's variant uses tsm; the osm
/// variant is the "safe" member of the class per Theorem 12, used by the
/// scheduler); the final value function is a cover of the input.
[[nodiscard]] Edge opt_lv(Manager& mgr, Edge f, Edge c,
                          const LevelOptions& opts = {},
                          Criterion crit = Criterion::kTsm);

}  // namespace bddmin::minimize
