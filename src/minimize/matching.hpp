/// \file matching.hpp
/// \brief The three matching criteria of Definition 5 and their i-covers.
///
/// Matching two incompletely specified functions means finding a common
/// i-cover by spending don't-care freedom:
///
///  * osdm (one-sided DC match): [f1,c1] matches [f2,c2] iff c1 == 0.
///  * osm  (one-sided match): iff f1 XOR f2 <= c̄1 and c̄1 >= c̄2
///    (equivalently (f1 XOR f2)·c1 == 0 and c1 <= c2).
///  * tsm  (two-sided match): iff f1 XOR f2 <= c̄1 + c̄2
///    (equivalently (f1 XOR f2)·c1·c2 == 0).
///
/// The strength hierarchy osdm => osm => tsm holds, and the produced
/// i-covers keep the don't-care part maximal: osdm/osm yield [f2,c2];
/// tsm yields [f1·c1 + f2·c2, c1 + c2].
#pragma once

#include <optional>
#include <string_view>

#include "minimize/incspec.hpp"

namespace bddmin::minimize {

enum class Criterion { kOsdm, kOsm, kTsm };

[[nodiscard]] std::string_view to_string(Criterion crit) noexcept;

/// Directional test: does \p a match \p b under \p crit?  (tsm is
/// symmetric; osdm and osm are not.)
[[nodiscard]] bool matches(Manager& mgr, Criterion crit, IncSpec a, IncSpec b);

/// The common i-cover produced when \p a matches \p b (precondition:
/// matches(mgr, crit, a, b)).
[[nodiscard]] IncSpec match_result(Manager& mgr, Criterion crit, IncSpec a,
                                   IncSpec b);

/// The paper's `is_match` (Figure 2): try to match the two sibling
/// functions [fT,cT] and [fE,cE] of a node.  For the one-sided criteria
/// both directions are tried.  With \p complement_else, the else sibling
/// is complemented first, so a cover g of the returned spec yields
/// then-branch g and else-branch !g.
/// Returns the common i-cover, or nullopt if no match can be made.
[[nodiscard]] std::optional<IncSpec> sibling_match(Manager& mgr, Criterion crit,
                                                   bool complement_else,
                                                   IncSpec then_spec,
                                                   IncSpec else_spec);

}  // namespace bddmin::minimize
