/// \file registry.hpp
/// \brief Uniform enumeration of every minimizer the experiments compare.
///
/// Mirrors Section 4.1.2: the eight sibling-match heuristics, opt_lv, and
/// the trivial "heuristics" f_and_c (f·c), f_or_nc (f + c̄) and f_orig
/// (f itself).  `min` — the best result over all heuristics — is computed
/// by the harness, not listed here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "minimize/schedule.hpp"
#include "telemetry/profile.hpp"

namespace bddmin::minimize {

struct Heuristic {
  std::string name;
  std::function<Edge(Manager&, Edge f, Edge c)> run;
};

/// The nine real heuristics the paper evaluates (Table 3 order is by
/// result quality; this list is in Table 2 order plus opt_lv).
[[nodiscard]] std::vector<Heuristic> paper_heuristics(
    const LevelOptions& level_opts = {});

/// paper_heuristics() plus the trivial bound computations f_and_c,
/// f_or_nc and f_orig.
[[nodiscard]] std::vector<Heuristic> all_heuristics(
    const LevelOptions& level_opts = {});

/// The Section 3.4 scheduler packaged as a heuristic (the robust
/// combination the paper proposes as future work).
[[nodiscard]] Heuristic scheduler_heuristic(const ScheduleOptions& opts = {});

/// The mixed-criterion sibling matcher as a heuristic (Section 3.2's
/// "different criteria depending on the context" remark).
[[nodiscard]] Heuristic mixed_heuristic(const MixedOptions& opts = {});

/// Proposition 6 shows no non-optimal DC-insensitive algorithm can avoid
/// occasionally growing the result; the paper's practical remedy is to
/// "compare the size of the result with the original f, and return the
/// smaller of the two".  This wraps any heuristic that way.
[[nodiscard]] Heuristic with_fallback(Heuristic inner);

/// Scope a resource budget (bdd/governor.hpp) around \p inner: the limits
/// are installed on the manager for the duration of the call and the
/// previous limits restored afterwards — also when the budget trips and the
/// ResourceExhausted exception propagates to the caller.  Restoring restarts
/// the saved deadline's clock, so treat nested deadlines as per-stage
/// budgets rather than absolute points in time.
[[nodiscard]] Heuristic with_budget(Heuristic inner, ResourceLimits limits);

/// Install a telemetry::ProfileCollector around \p inner: each call
/// accrues its per-phase time and counter deltas into \p out (which must
/// outlive the returned heuristic).  Calls accumulate — reset *out to
/// profile runs separately.
[[nodiscard]] Heuristic with_profile(Heuristic inner,
                                     telemetry::PhaseProfile* out);

/// Look a heuristic up by name in \p set; throws std::out_of_range.
[[nodiscard]] const Heuristic& heuristic_by_name(
    const std::vector<Heuristic>& set, const std::string& name);

}  // namespace bddmin::minimize
