#include "minimize/sibling.hpp"

#include <chrono>
#include <thread>
#include <unordered_map>

#include "analysis/check.hpp"
#include "analysis/failpoint.hpp"
#include "telemetry/profile.hpp"

namespace bddmin::minimize {
namespace {

/// Memo key for a (f, c) pair within one heuristic invocation.  Per-call
/// maps mirror the paper's methodology of flushing caches between
/// heuristics so measurements stay independent.
using PairMemo = std::unordered_map<std::uint64_t, Edge>;

constexpr std::uint64_t pair_key(Edge f, Edge c) noexcept {
  return (std::uint64_t{f.bits} << 32) | c.bits;
}

struct TopDown {
  Manager& mgr;
  const SiblingOptions& opts;
  PairMemo memo;

  Edge run(Edge f, Edge c) {
    BDDMIN_DCHECK(c != kZero);
    if (c == kOne || Manager::is_const(f)) return f;
    if (const auto it = memo.find(pair_key(f, c)); it != memo.end()) {
      return it->second;
    }
    mgr.governor().charge_step();
    const std::uint32_t top = mgr.top_var(f, c);
    const auto [f_t, f_e] = mgr.branches(f, top);
    const auto [c_t, c_e] = mgr.branches(c, top);

    Edge ret;
    if (opts.no_new_vars && mgr.level_of(f) > mgr.level_of(c)) {
      // f is independent of c's top variable (all of f's support lies
      // below it): existentially drop that variable from the care set
      // rather than letting a match introduce it into the result.
      ret = run(f, mgr.or_(c_t, c_e));
    } else if (const auto m = sibling_match(mgr, opts.criterion, false,
                                            {f_t, c_t}, {f_e, c_e})) {
      // Both siblings replaced by their common i-cover: parent deleted.
      ret = run(m->f, m->c);
    } else if (opts.match_complement) {
      if (const auto mc = sibling_match(mgr, opts.criterion, true, {f_t, c_t},
                                        {f_e, c_e})) {
        // then = g, else = !g for a single recursion g.
        const Edge temp = run(mc->f, mc->c);
        ret = mgr.make_node(top, temp, !temp);
      } else {
        ret = split(top, f_t, c_t, f_e, c_e);
      }
    } else {
      ret = split(top, f_t, c_t, f_e, c_e);
    }
    memo.emplace(pair_key(f, c), ret);
    return ret;
  }

  Edge split(std::uint32_t top, Edge f_t, Edge c_t, Edge f_e, Edge c_e) {
    // No match possible, so neither child's care set is 0 (a 0 care set
    // matches under every criterion).
    const Edge t = run(f_t, c_t);
    const Edge e = run(f_e, c_e);
    return mgr.make_node(top, t, e);
  }
};

}  // namespace

Edge generic_td(Manager& mgr, const SiblingOptions& opts, Edge f, Edge c) {
  if (c == kZero) return f;  // no care points: any function covers; keep f
  // The traversal itself is result construction; the matching criteria it
  // calls re-scope themselves to kMatching.
  const telemetry::PhaseScope phase(telemetry::Phase::kCoverBuild);
  TopDown ctx{mgr, opts, {}};
  return ctx.run(f, c);
}

Edge constrain(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kOsdm, false, false}, f, c);
}
Edge restrict_dc(Manager& mgr, Edge f, Edge c) {
  // The two minimize-layer failpoints live at the entry of the paper's
  // baseline heuristic: a budget trip and a cooperative hang, both before
  // any work so the abort trivially honours the strong guarantee.
  if (BDDMIN_FAILPOINT("minimize_deadline")) {
    throw Deadline(0.0);
  }
  if (const auto hit = BDDMIN_FAILPOINT("minimize_hang")) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(hit.value);
    while (std::chrono::steady_clock::now() < deadline) {
      if (mgr.governor().abort_requested()) {
        throw AbortRequested("watchdog (failpoint: minimize_hang)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return generic_td(mgr, {Criterion::kOsdm, false, true}, f, c);
}
Edge osm_td(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kOsm, false, false}, f, c);
}
Edge osm_nv(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kOsm, false, true}, f, c);
}
Edge osm_cp(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kOsm, true, false}, f, c);
}
Edge osm_bt(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kOsm, true, true}, f, c);
}
Edge tsm_td(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kTsm, false, false}, f, c);
}
Edge tsm_cp(Manager& mgr, Edge f, Edge c) {
  return generic_td(mgr, {Criterion::kTsm, true, false}, f, c);
}

namespace {

/// Like TopDown, but the matching criterion is a function of the level.
struct MixedTopDown {
  Manager& mgr;
  const MixedOptions& opts;
  PairMemo memo;

  Criterion criterion_at(std::uint32_t level) const {
    return level < opts.switch_level ? opts.upper : opts.lower;
  }

  Edge run(Edge f, Edge c) {
    BDDMIN_DCHECK(c != kZero);
    if (c == kOne || Manager::is_const(f)) return f;
    if (const auto it = memo.find(pair_key(f, c)); it != memo.end()) {
      return it->second;
    }
    mgr.governor().charge_step();
    const std::uint32_t top = mgr.top_var(f, c);
    const Criterion crit = criterion_at(mgr.level_of_var(top));
    const auto [f_t, f_e] = mgr.branches(f, top);
    const auto [c_t, c_e] = mgr.branches(c, top);
    Edge ret;
    if (opts.no_new_vars && mgr.level_of(f) > mgr.level_of(c)) {
      ret = run(f, mgr.or_(c_t, c_e));
    } else if (const auto m =
                   sibling_match(mgr, crit, false, {f_t, c_t}, {f_e, c_e})) {
      ret = run(m->f, m->c);
    } else {
      std::optional<IncSpec> mc;
      if (opts.match_complement) {
        mc = sibling_match(mgr, crit, true, {f_t, c_t}, {f_e, c_e});
      }
      if (mc) {
        const Edge temp = run(mc->f, mc->c);
        ret = mgr.make_node(top, temp, !temp);
      } else {
        const Edge t = run(f_t, c_t);
        const Edge e = run(f_e, c_e);
        ret = mgr.make_node(top, t, e);
      }
    }
    memo.emplace(pair_key(f, c), ret);
    return ret;
  }
};

}  // namespace

Edge mixed_td(Manager& mgr, const MixedOptions& opts, Edge f, Edge c) {
  if (c == kZero || c == kOne) return f;
  const telemetry::PhaseScope phase(telemetry::Phase::kCoverBuild);
  MixedTopDown ctx{mgr, opts, {}};
  return ctx.run(f, c);
}

namespace {

struct WindowPass {
  Manager& mgr;
  Criterion crit;
  std::uint32_t lo_level;
  std::uint32_t hi_level;
  std::unordered_map<std::uint64_t, IncSpec> memo;

  IncSpec run(IncSpec spec) {
    if (spec.c == kZero || spec.c == kOne || Manager::is_const(spec.f)) {
      return spec;
    }
    const std::uint32_t top = mgr.top_var(spec.f, spec.c);
    const std::uint32_t top_level = mgr.level_of_var(top);
    if (top_level > hi_level) return spec;  // entirely below the window
    if (const auto it = memo.find(pair_key(spec.f, spec.c)); it != memo.end()) {
      return it->second;
    }
    mgr.governor().charge_step();
    const auto [f_t, f_e] = mgr.branches(spec.f, top);
    const auto [c_t, c_e] = mgr.branches(spec.c, top);
    IncSpec ret;
    std::optional<IncSpec> m;
    if (top_level >= lo_level) {
      m = sibling_match(mgr, crit, false, {f_t, c_t}, {f_e, c_e});
    }
    if (m) {
      ret = run(*m);  // parent deleted; keep matching inside the window
    } else {
      const IncSpec t = run({f_t, c_t});
      const IncSpec e = run({f_e, c_e});
      ret = IncSpec{mgr.make_node(top, t.f, e.f), mgr.make_node(top, t.c, e.c)};
    }
    memo.emplace(pair_key(spec.f, spec.c), ret);
    return ret;
  }
};

}  // namespace

IncSpec sibling_window_pass(Manager& mgr, Criterion crit, std::uint32_t lo_level,
                            std::uint32_t hi_level, IncSpec spec) {
  const telemetry::PhaseScope phase(telemetry::Phase::kCoverBuild);
  WindowPass ctx{mgr, crit, lo_level, hi_level, {}};
  return ctx.run(spec);
}

}  // namespace bddmin::minimize
