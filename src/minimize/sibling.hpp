/// \file sibling.hpp
/// \brief Sibling-matching heuristics: the generic top-down algorithm of
/// Figure 2 and its eight distinct instantiations (Table 2).
///
/// The traversal walks f and c in lock step.  At each node it may:
///  1. keep f independent of a variable c introduces (no-new-vars rule,
///     the restrict idea),
///  2. match the two sibling subfunctions, deleting the parent node,
///  3. match one sibling against the other's complement (the parent node
///     survives but only one recursion is needed), or
///  4. recurse on both siblings.
///
/// | # | criterion | match-compl | no-new-vars | name       |
/// |---|-----------|-------------|-------------|------------|
/// | 1 | osdm      | no          | no          | constrain  |
/// | 2 | osdm      | no          | yes         | restrict   |
/// | 5 | osm       | no          | no          | osm_td     |
/// | 6 | osm       | no          | yes         | osm_nv     |
/// | 7 | osm       | yes         | no          | osm_cp     |
/// | 8 | osm       | yes         | yes         | osm_bt     |
/// | 9 | tsm       | no          | no          | tsm_td     |
/// |11 | tsm       | yes         | no          | tsm_cp     |
///
/// (3/4 coincide with 1/2 because complement matching has no effect on
/// osdm; 10/12 coincide with 9/11 because no-new-vars has no effect on
/// tsm — both equivalences are checked by bench_table2 and the tests.)
#pragma once

#include <cstdint>

#include "minimize/matching.hpp"

namespace bddmin::minimize {

struct SiblingOptions {
  Criterion criterion = Criterion::kOsdm;
  bool match_complement = false;
  bool no_new_vars = false;
};

/// Figure 2's generic_td: returns a completely specified cover of [f, c].
/// For c == 0 or c == 1 the input f is returned unchanged.
[[nodiscard]] Edge generic_td(Manager& mgr, const SiblingOptions& opts, Edge f,
                              Edge c);

// The named heuristics of Table 2.
[[nodiscard]] Edge constrain(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge restrict_dc(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge osm_td(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge osm_nv(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge osm_cp(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge osm_bt(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge tsm_td(Manager& mgr, Edge f, Edge c);
[[nodiscard]] Edge tsm_cp(Manager& mgr, Edge f, Edge c);

/// Section 3.2 remarks that "one can imagine applying different criteria
/// depending on the context".  mixed_td instantiates that idea: levels
/// above switch_level match with `upper`, deeper levels with `lower`.
/// The default pairs the safe one-sided criterion near the top (where,
/// by the Theorem 12 intuition, spending freedom is risky) with the
/// aggressive two-sided one below.
struct MixedOptions {
  Criterion upper = Criterion::kOsm;
  Criterion lower = Criterion::kTsm;
  std::uint32_t switch_level = 4;
  bool match_complement = true;
  bool no_new_vars = true;
};

[[nodiscard]] Edge mixed_td(Manager& mgr, const MixedOptions& opts, Edge f,
                            Edge c);

/// Windowed *partial* sibling pass used by the scheduler (Section 3.4):
/// matching is only attempted at levels in [lo_level, hi_level]; instead
/// of assigning the remaining DCs it returns the i-cover [f', c'] (care
/// set grows monotonically).  complement matches are not attempted — a
/// fixed then/else complement linkage cannot be expressed as an IncSpec
/// without losing freedom.
[[nodiscard]] IncSpec sibling_window_pass(Manager& mgr, Criterion crit,
                                          std::uint32_t lo_level,
                                          std::uint32_t hi_level, IncSpec spec);

}  // namespace bddmin::minimize
