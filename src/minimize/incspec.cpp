#include "minimize/incspec.hpp"

#include "bdd/ops.hpp"

namespace bddmin::minimize {

bool is_cover(Manager& mgr, Edge g, IncSpec spec) {
  return mgr.and_(mgr.xor_(g, spec.f), spec.c) == kZero;
}

bool is_icover(Manager& mgr, IncSpec outer, IncSpec inner) {
  if (!mgr.leq(inner.c, outer.c)) return false;
  return mgr.and_(mgr.xor_(outer.f, inner.f), inner.c) == kZero;
}

bool same_function(Manager& mgr, IncSpec a, IncSpec b) {
  if (a.c != b.c) return false;
  return mgr.and_(mgr.xor_(a.f, b.f), a.c) == kZero;
}

double c_onset_fraction(Manager& mgr, IncSpec spec) {
  // The paper measures onset points of c over the space spanned by the
  // union of the supports of f and c.  The onset *fraction* is the same
  // over that subspace as over the full space, because variables outside
  // c's support scale onset and space alike.
  return sat_fraction(mgr, spec.c);
}

CallFilter classify_call(Manager& mgr, IncSpec spec) {
  CallFilter filter;
  filter.c_trivial = spec.c == kZero || spec.c == kOne;
  filter.c_is_cube = is_cube(mgr, spec.c);
  filter.c_in_f = spec.c != kZero && mgr.leq(spec.c, spec.f);
  filter.c_in_not_f = spec.c != kZero && mgr.leq(spec.c, !spec.f);
  return filter;
}

}  // namespace bddmin::minimize
