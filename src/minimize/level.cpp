#include "minimize/level.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "analysis/check.hpp"
#include "telemetry/profile.hpp"

namespace bddmin::minimize {
namespace {

constexpr std::uint64_t pair_key(Edge f, Edge c) noexcept {
  return (std::uint64_t{f.bits} << 32) | c.bits;
}

struct Collector {
  Manager& mgr;
  std::uint32_t level;
  std::size_t max_set_size;
  bool only_level_plus_one;
  CollectedLevel out;
  std::unordered_set<std::uint64_t> visited;
  /// canonical (f·c, c) -> vertex, so equal incompletely specified
  /// functions share one vertex (keeps the DMG acyclic).
  std::unordered_map<std::uint64_t, std::size_t> canonical_to_vertex;
  CubeVec path;

  void walk(Edge f, Edge c) {
    const std::uint64_t key = pair_key(f, c);
    if (!visited.insert(key).second) return;
    const bool f_below = mgr.level_of(f) > level;  // constants are below all
    const bool c_below = mgr.level_of(c) > level;
    if (f_below && c_below) {
      if (max_set_size != 0 && out.specs.size() >= max_set_size) return;
      if (only_level_plus_one && mgr.level_of(f) != level + 1) return;
      const std::uint64_t canon = pair_key(mgr.and_(f, c), c);
      const auto [it, inserted] =
          canonical_to_vertex.try_emplace(canon, out.specs.size());
      if (inserted) {
        out.specs.push_back(IncSpec{f, c});
        out.paths.push_back(path);
      }
      out.pair_to_vertex.emplace(key, it->second);
      return;
    }
    const std::uint32_t v = mgr.top_var(f, c);
    const auto [f_t, f_e] = mgr.branches(f, v);
    const auto [c_t, c_e] = mgr.branches(c, v);
    // Paths are indexed by order position so the Section 3.3.2 distance
    // weights depth correctly even under a permuted order.
    const std::uint32_t pos = mgr.level_of_var(v);
    path[pos] = 1;
    walk(f_t, c_t);
    path[pos] = 0;
    walk(f_e, c_e);
    path[pos] = kAbsentLiteral;
  }
};

}  // namespace

CollectedLevel collect_at_level(Manager& mgr, IncSpec spec, std::uint32_t level,
                                std::size_t max_set_size,
                                bool only_level_plus_one) {
  Collector collector{mgr,
                      level,
                      max_set_size,
                      only_level_plus_one,
                      {},
                      {},
                      {},
                      CubeVec(level + 1, kAbsentLiteral)};
  collector.walk(spec.f, spec.c);
  return std::move(collector.out);
}

double path_distance(const CubeVec& a, const CubeVec& b) {
  BDDMIN_DCHECK(a.size() == b.size());
  const std::size_t k = a.size();
  double d = 0.0;
  for (std::size_t v = 0; v < k; ++v) {
    if (a[v] == kAbsentLiteral || b[v] == kAbsentLiteral) continue;
    if (a[v] != b[v]) d += std::ldexp(1.0, static_cast<int>(k - 1 - v));
  }
  return d;
}

std::vector<std::size_t> fmm_osm(Manager& mgr, std::span<const IncSpec> specs) {
  const telemetry::PhaseScope phase(telemetry::Phase::kMatching);
  const std::size_t r = specs.size();
  // adjacency[j*r + k] = 1 iff [f_j, c_j] osm [f_k, c_k]
  std::vector<std::uint8_t> adjacency(r * r, 0);
  std::vector<bool> has_out(r, false);
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = 0; k < r; ++k) {
      if (j == k) continue;
      if (matches(mgr, Criterion::kOsm, specs[j], specs[k])) {
        adjacency[j * r + k] = 1;
        has_out[j] = true;
      }
    }
  }
  // Map every vertex to a reachable sink.  The DMG is acyclic for
  // distinct functions (Proposition 10), and osm transitivity makes the
  // sink a direct i-cover of every vertex on the way.
  std::vector<std::size_t> rep(r, SIZE_MAX);
  auto resolve = [&](auto&& self, std::size_t j) -> std::size_t {
    if (rep[j] != SIZE_MAX) return rep[j];
    if (!has_out[j]) return rep[j] = j;
    for (std::size_t k = 0; k < r; ++k) {
      if (adjacency[j * r + k]) return rep[j] = self(self, k);
    }
    return rep[j] = j;  // unreachable: has_out implies an edge exists
  };
  for (std::size_t j = 0; j < r; ++j) resolve(resolve, j);
  return rep;
}

CliqueCover fmm_tsm(Manager& mgr, std::span<const IncSpec> specs,
                    std::span<const CubeVec> paths, const LevelOptions& opts) {
  const telemetry::PhaseScope phase(telemetry::Phase::kMatching);
  const std::size_t r = specs.size();
  std::vector<std::uint8_t> adjacency(r * r, 0);
  std::vector<std::size_t> degree(r, 0);
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = j + 1; k < r; ++k) {
      if (matches(mgr, Criterion::kTsm, specs[j], specs[k])) {
        adjacency[j * r + k] = adjacency[k * r + j] = 1;
        ++degree[j];
        ++degree[k];
      }
    }
  }
  std::vector<std::size_t> seed_order(r);
  for (std::size_t j = 0; j < r; ++j) seed_order[j] = j;
  if (opts.order_by_degree) {
    std::stable_sort(seed_order.begin(), seed_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return degree[a] > degree[b];
                     });
  }

  CliqueCover cover;
  cover.clique_of.assign(r, SIZE_MAX);
  const bool use_weights = opts.weight_by_distance && paths.size() == r;
  for (const std::size_t seed : seed_order) {
    if (cover.clique_of[seed] != SIZE_MAX) continue;
    std::vector<std::size_t> clique{seed};
    cover.clique_of[seed] = cover.cliques.size();
    // Grow greedily: repeatedly add the *nearest* uncovered vertex that is
    // adjacent to every clique member (paper Section 3.3.2, optimization 2).
    for (;;) {
      std::size_t best = SIZE_MAX;
      double best_weight = 0.0;
      for (std::size_t w = 0; w < r; ++w) {
        if (cover.clique_of[w] != SIZE_MAX) continue;
        const bool adjacent_to_all =
            std::all_of(clique.begin(), clique.end(), [&](std::size_t u) {
              return adjacency[u * r + w] != 0;
            });
        if (!adjacent_to_all) continue;
        double weight = 0.0;
        if (use_weights) {
          weight = path_distance(paths[seed], paths[w]);
          for (const std::size_t u : clique) {
            weight = std::min(weight, path_distance(paths[u], paths[w]));
          }
        }
        if (best == SIZE_MAX || weight < best_weight) {
          best = w;
          best_weight = weight;
        }
      }
      if (best == SIZE_MAX) break;
      cover.clique_of[best] = cover.cliques.size();
      clique.push_back(best);
    }
    cover.cliques.push_back(std::move(clique));
  }
  return cover;
}

IncSpec merge_clique(Manager& mgr, std::span<const IncSpec> specs,
                     std::span<const std::size_t> members) {
  const telemetry::PhaseScope phase(telemetry::Phase::kCoverBuild);
  Edge f = kZero;
  Edge c = kZero;
  for (const std::size_t j : members) {
    f = mgr.or_(f, mgr.and_(specs[j].f, specs[j].c));
    c = mgr.or_(c, specs[j].c);
  }
  return IncSpec{f, c};
}

namespace {

struct Substituter {
  Manager& mgr;
  std::uint32_t level;
  const std::unordered_map<std::uint64_t, IncSpec>& replacement;
  std::unordered_map<std::uint64_t, IncSpec> memo;

  IncSpec rebuild(Edge f, Edge c) {
    const std::uint64_t key = pair_key(f, c);
    if (mgr.level_of(f) > level && mgr.level_of(c) > level) {
      const auto it = replacement.find(key);
      return it != replacement.end() ? it->second : IncSpec{f, c};
    }
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    mgr.governor().charge_step();
    const std::uint32_t v = mgr.top_var(f, c);
    const auto [f_t, f_e] = mgr.branches(f, v);
    const auto [c_t, c_e] = mgr.branches(c, v);
    const IncSpec t = rebuild(f_t, c_t);
    const IncSpec e = rebuild(f_e, c_e);
    const IncSpec result{mgr.make_node(v, t.f, e.f), mgr.make_node(v, t.c, e.c)};
    memo.emplace(key, result);
    return result;
  }
};

}  // namespace

IncSpec substitute_at_level(
    Manager& mgr, IncSpec spec, std::uint32_t level,
    const std::unordered_map<std::uint64_t, IncSpec>& replacement) {
  const telemetry::PhaseScope phase(telemetry::Phase::kCoverBuild);
  Substituter sub{mgr, level, replacement, {}};
  return sub.rebuild(spec.f, spec.c);
}

namespace {

IncSpec minimize_at_level_once(Manager& mgr, Criterion crit,
                               std::uint32_t level, const LevelOptions& opts,
                               IncSpec spec, LevelStats* stats) {
  BDDMIN_CHECK(crit == Criterion::kOsm || crit == Criterion::kTsm);
  const CollectedLevel collected = collect_at_level(
      mgr, spec, level, opts.max_set_size, opts.only_level_plus_one);
  const std::size_t r = collected.specs.size();
  std::vector<IncSpec> vertex_replacement(r);
  std::size_t groups = 0;
  if (crit == Criterion::kOsm) {
    const std::vector<std::size_t> rep = fmm_osm(mgr, collected.specs);
    for (std::size_t j = 0; j < r; ++j) {
      vertex_replacement[j] = collected.specs[rep[j]];
      groups += rep[j] == j;
    }
  } else {
    const CliqueCover cover =
        fmm_tsm(mgr, collected.specs, collected.paths, opts);
    std::vector<IncSpec> merged(cover.cliques.size());
    for (std::size_t q = 0; q < cover.cliques.size(); ++q) {
      merged[q] = merge_clique(mgr, collected.specs, cover.cliques[q]);
    }
    for (std::size_t j = 0; j < r; ++j) {
      const std::size_t q = cover.clique_of[j];
      // Singleton cliques spend no freedom: keep the original function
      // rather than its [f·c, c] normal form.
      vertex_replacement[j] =
          cover.cliques[q].size() == 1 ? collected.specs[j] : merged[q];
    }
    groups = cover.cliques.size();
  }
  if (stats) {
    stats->vertices = r;
    stats->groups = groups;
    stats->matched = r - groups;
  }
  std::unordered_map<std::uint64_t, IncSpec> replacement;
  replacement.reserve(collected.pair_to_vertex.size());
  for (const auto& [key, vertex] : collected.pair_to_vertex) {
    replacement.emplace(key, vertex_replacement[vertex]);
  }
  return substitute_at_level(mgr, spec, level, replacement);
}

}  // namespace

IncSpec minimize_at_level(Manager& mgr, Criterion crit, std::uint32_t level,
                          const LevelOptions& opts, IncSpec spec,
                          LevelStats* stats) {
  LevelStats local;
  spec = minimize_at_level_once(mgr, crit, level, opts, spec, &local);
  if (opts.max_set_size != 0 && opts.chunked) {
    // Section 3.3.1: "When the limit is reached, the resulting set is
    // processed.  Then the traversal is continued, building a new set."
    // Matched vertices merge, so the population shrinks each round; the
    // round cap is a safety net against pathological oscillation.
    std::size_t last_matched = local.matched;
    std::size_t last_vertices = local.vertices;
    for (int round = 0;
         round < 64 && last_matched > 0 && last_vertices >= opts.max_set_size;
         ++round) {
      LevelStats next;
      spec = minimize_at_level_once(mgr, crit, level, opts, spec, &next);
      last_matched = next.matched;
      last_vertices = next.vertices;
      local.vertices = next.vertices;
      local.groups = next.groups;
      local.matched += next.matched;
    }
  }
  if (stats) *stats = local;
  return spec;
}

Edge opt_lv(Manager& mgr, Edge f, Edge c, const LevelOptions& opts,
            Criterion crit) {
  if (c == kZero || c == kOne) return f;
  IncSpec spec{f, c};
  // Level n-1 would only group constants; stop one short.
  for (std::uint32_t level = 0; level + 1 < mgr.num_vars(); ++level) {
    spec = minimize_at_level(mgr, crit, level, opts, spec);
  }
  return spec.f;
}

}  // namespace bddmin::minimize
