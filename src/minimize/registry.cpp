#include "minimize/registry.hpp"

#include <stdexcept>

#include "bdd/ops.hpp"

namespace bddmin::minimize {

std::vector<Heuristic> paper_heuristics(const LevelOptions& level_opts) {
  std::vector<Heuristic> set;
  set.push_back({"const", [](Manager& m, Edge f, Edge c) { return constrain(m, f, c); }});
  set.push_back({"restr", [](Manager& m, Edge f, Edge c) { return restrict_dc(m, f, c); }});
  set.push_back({"osm_td", [](Manager& m, Edge f, Edge c) { return osm_td(m, f, c); }});
  set.push_back({"osm_nv", [](Manager& m, Edge f, Edge c) { return osm_nv(m, f, c); }});
  set.push_back({"osm_cp", [](Manager& m, Edge f, Edge c) { return osm_cp(m, f, c); }});
  set.push_back({"osm_bt", [](Manager& m, Edge f, Edge c) { return osm_bt(m, f, c); }});
  set.push_back({"tsm_td", [](Manager& m, Edge f, Edge c) { return tsm_td(m, f, c); }});
  set.push_back({"tsm_cp", [](Manager& m, Edge f, Edge c) { return tsm_cp(m, f, c); }});
  set.push_back({"opt_lv", [level_opts](Manager& m, Edge f, Edge c) {
                   return opt_lv(m, f, c, level_opts);
                 }});
  return set;
}

std::vector<Heuristic> all_heuristics(const LevelOptions& level_opts) {
  std::vector<Heuristic> set = paper_heuristics(level_opts);
  set.push_back({"f_orig", [](Manager&, Edge f, Edge) { return f; }});
  set.push_back({"f_and_c", [](Manager& m, Edge f, Edge c) { return m.and_(f, c); }});
  set.push_back({"f_or_nc", [](Manager& m, Edge f, Edge c) { return m.or_(f, !c); }});
  return set;
}

Heuristic scheduler_heuristic(const ScheduleOptions& opts) {
  return {"sched", [opts](Manager& m, Edge f, Edge c) {
            return scheduled_minimize(m, opts, f, c);
          }};
}

Heuristic mixed_heuristic(const MixedOptions& opts) {
  return {"mixed", [opts](Manager& m, Edge f, Edge c) {
            return mixed_td(m, opts, f, c);
          }};
}

Heuristic with_fallback(Heuristic inner) {
  Heuristic wrapped;
  wrapped.name = inner.name + "+fb";
  wrapped.run = [inner = std::move(inner)](Manager& m, Edge f, Edge c) {
    const Edge g = inner.run(m, f, c);
    // Compare |g| with |f|; keep the smaller.  The comparison makes the
    // combined algorithm sensitive to f's don't-care values, which is
    // exactly how it escapes Proposition 6.
    return count_nodes(m, g) <= count_nodes(m, f) ? g : f;
  };
  return wrapped;
}

Heuristic with_budget(Heuristic inner, ResourceLimits limits) {
  Heuristic wrapped;
  wrapped.name = inner.name;
  wrapped.run = [inner = std::move(inner), limits](Manager& m, Edge f, Edge c) {
    const ResourceLimits saved = m.governor().limits();
    m.governor().set_limits(limits);
    try {
      const Edge g = inner.run(m, f, c);
      m.governor().set_limits(saved);
      return g;
    } catch (...) {
      m.governor().set_limits(saved);
      throw;
    }
  };
  return wrapped;
}

Heuristic with_profile(Heuristic inner, telemetry::PhaseProfile* out) {
  Heuristic wrapped;
  wrapped.name = inner.name;
  wrapped.run = [inner = std::move(inner), out](Manager& m, Edge f, Edge c) {
    const telemetry::ProfileCollector collect(m, out);
    return inner.run(m, f, c);
  };
  return wrapped;
}

const Heuristic& heuristic_by_name(const std::vector<Heuristic>& set,
                                   const std::string& name) {
  for (const Heuristic& h : set) {
    if (h.name == name) return h;
  }
  throw std::out_of_range("unknown heuristic: " + name);
}

}  // namespace bddmin::minimize
