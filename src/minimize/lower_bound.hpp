/// \file lower_bound.hpp
/// \brief Lower bound on the exact minimum cover size (Section 4.1.1).
///
/// Theorem 7 makes constrain exact when the care set is a cube.  For any
/// cube p <= c the instance [f, p] is *less* constrained than [f, c]
/// (f·p <= f·c and f + c̄ <= f + p̄), so every cover of [f, c] also covers
/// [f, p] and |constrain(f, p)| is a lower bound on the minimum cover
/// size of [f, c].  Enumerating cubes of c and taking the maximum
/// tightens the bound.
#pragma once

#include <cstddef>

#include "bdd/manager.hpp"

namespace bddmin::minimize {

struct LowerBoundResult {
  std::size_t bound = 0;           ///< max over examined cubes (incl. terminal)
  std::size_t cubes_examined = 0;  ///< how many cubes of c were used
};

/// Compute the constrain-based lower bound, examining at most
/// \p max_cubes cubes of c in DFS order (the paper uses 1000).  When
/// \p probe_largest_cube is set, the shortest-path "large cube" of c is
/// tried first — the paper's suggested refinement ("look for large cubes
/// ... by finding short paths from the root of c to the constant 1"),
/// since a larger cube constrains more points and tends to bound better.
/// Preconditions: c != 0.  A constant f short-circuits to bound 1.
[[nodiscard]] LowerBoundResult constrain_lower_bound(
    Manager& mgr, Edge f, Edge c, std::size_t max_cubes = 1000,
    bool probe_largest_cube = false);

}  // namespace bddmin::minimize
