#include "minimize/lower_bound.hpp"

#include "bdd/cube.hpp"
#include "bdd/ops.hpp"
#include "minimize/sibling.hpp"

#include "analysis/check.hpp"

namespace bddmin::minimize {

LowerBoundResult constrain_lower_bound(Manager& mgr, Edge f, Edge c,
                                       std::size_t max_cubes,
                                       bool probe_largest_cube) {
  BDDMIN_CHECK(c != kZero);
  LowerBoundResult result;
  if (Manager::is_const(f)) {
    result.bound = 1;
    return result;
  }
  if (probe_largest_cube && c != kOne) {
    const Edge big =
        cube_to_edge(mgr, largest_cube(mgr, c, mgr.num_vars()));
    result.bound = count_nodes(mgr, constrain(mgr, f, big));
    result.cubes_examined = 1;
  }
  result.cubes_examined += for_each_cube(
      mgr, c, mgr.num_vars(), max_cubes, [&](const CubeVec& cube) {
        const Edge p = cube_to_edge(mgr, cube);
        // Theorem 7 + Touati et al.: with a cube care set, constrain is
        // the Shannon cofactor and yields the exact minimum of [f, p].
        const Edge minimum = constrain(mgr, f, p);
        result.bound = std::max(result.bound, count_nodes(mgr, minimum));
        return true;
      });
  return result;
}

}  // namespace bddmin::minimize
