#include "minimize/matching.hpp"

#include "analysis/check.hpp"
#include "telemetry/profile.hpp"

namespace bddmin::minimize {

std::string_view to_string(Criterion crit) noexcept {
  switch (crit) {
    case Criterion::kOsdm: return "osdm";
    case Criterion::kOsm: return "osm";
    case Criterion::kTsm: return "tsm";
  }
  return "?";
}

bool matches(Manager& mgr, Criterion crit, IncSpec a, IncSpec b) {
  const telemetry::PhaseScope phase(telemetry::Phase::kMatching);
  switch (crit) {
    case Criterion::kOsdm:
      return a.c == kZero;
    case Criterion::kOsm:
      // Differences confined to a's DC set, and a's DC set contains b's.
      // disjoint()/leq() walk early-exit: the first violating path answers
      // without materializing the product BDD.
      return mgr.disjoint(mgr.xor_(a.f, b.f), a.c) && mgr.leq(a.c, b.c);
    case Criterion::kTsm:
      // Agreement wherever both care.
      return mgr.disjoint(mgr.and_(mgr.xor_(a.f, b.f), a.c), b.c);
  }
  return false;
}

IncSpec match_result(Manager& mgr, Criterion crit, IncSpec a, IncSpec b) {
  BDDMIN_DCHECK(matches(mgr, crit, a, b));
  const telemetry::PhaseScope phase(telemetry::Phase::kMatching);
  switch (crit) {
    case Criterion::kOsdm:
    case Criterion::kOsm:
      // All of b's freedom is preserved; a costs nothing (osdm) or agrees
      // on its care set already (osm).
      return b;
    case Criterion::kTsm: {
      // Take care values from each side; they agree on the overlap.
      const Edge f = mgr.or_(mgr.and_(a.f, a.c), mgr.and_(b.f, b.c));
      const Edge c = mgr.or_(a.c, b.c);
      return IncSpec{f, c};
    }
  }
  return a;
}

std::optional<IncSpec> sibling_match(Manager& mgr, Criterion crit,
                                     bool complement_else, IncSpec then_spec,
                                     IncSpec else_spec) {
  if (complement_else) else_spec.f = !else_spec.f;
  if (matches(mgr, crit, else_spec, then_spec)) {
    return match_result(mgr, crit, else_spec, then_spec);
  }
  // tsm is symmetric, so the second direction only matters for the
  // one-sided criteria; testing it again is harmless but wasted work.
  if (crit != Criterion::kTsm && matches(mgr, crit, then_spec, else_spec)) {
    return match_result(mgr, crit, then_spec, else_spec);
  }
  return std::nullopt;
}

}  // namespace bddmin::minimize
