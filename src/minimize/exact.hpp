/// \file exact.hpp
/// \brief Exact BDD minimization (EBM, Definition 3) for small instances.
///
/// The decision problem is in NP (Proposition 4); its exact complexity was
/// open in 1994 (later shown NP-complete).  This exhaustive solver is the
/// oracle the test suite uses to verify Theorem 7 (constrain exact on cube
/// care sets), Theorem 12, the Section 3.2 counterexamples, and that no
/// heuristic ever beats the exact minimum.
#pragma once

#include <cstdint>
#include <optional>

#include "bdd/manager.hpp"

namespace bddmin::minimize {

struct ExactResult {
  std::size_t size = 0;          ///< minimum |g| over all covers (incl. terminal)
  std::uint64_t cover_tt = 0;    ///< a witness cover as a truth table
};

/// Exact minimum cover by enumerating every assignment of the don't-care
/// minterms (truth-table domain, n <= 6 variables).  Returns nullopt when
/// the DC count exceeds \p max_dc_bits (2^dc covers would be enumerated).
[[nodiscard]] std::optional<ExactResult> exact_minimum_tt(
    std::uint64_t f_tt, std::uint64_t c_tt, unsigned n, unsigned max_dc_bits = 20);

/// Convenience wrapper over BDD edges: f and c must depend only on
/// x0..x(n-1) with n <= 6.
[[nodiscard]] std::optional<ExactResult> exact_minimum(Manager& mgr, Edge f,
                                                       Edge c, unsigned n,
                                                       unsigned max_dc_bits = 20);

}  // namespace bddmin::minimize
