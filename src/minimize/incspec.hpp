/// \file incspec.hpp
/// \brief Incompletely specified functions [f, c] (Section 2 of the paper).
///
/// `[f, c]` has onset f·c, offset f̄·c and don't-care set c̄ — i.e. `c` is
/// the *care* function.  A cover g satisfies f·c <= g <= f + c̄.
#pragma once

#include <cstddef>

#include "bdd/manager.hpp"

namespace bddmin::minimize {

/// An incompletely specified function.
struct IncSpec {
  Edge f{};  ///< value function (arbitrary outside the care set)
  Edge c{};  ///< care set

  friend constexpr bool operator==(IncSpec, IncSpec) noexcept = default;
};

/// Definition 2: g is a cover of [f,c] iff f·c <= g <= f + c̄, equivalently
/// (g XOR f)·c == 0.
[[nodiscard]] bool is_cover(Manager& mgr, Edge g, IncSpec spec);

/// Definition 2: [outer] is an i-cover of [inner] iff every cover of
/// [outer] is a cover of [inner]; equivalently inner.c <= outer.c and the
/// two value functions agree on inner.c.
[[nodiscard]] bool is_icover(Manager& mgr, IncSpec outer, IncSpec inner);

/// Two IncSpec values denote the same incompletely specified function:
/// equal care sets and equal values on the care set.
[[nodiscard]] bool same_function(Manager& mgr, IncSpec a, IncSpec b);

/// Fraction of the Boolean space (over the union of the supports of f and
/// c) on which c is 1 — the paper's `c_onset_size`, in [0, 1].
[[nodiscard]] double c_onset_fraction(Manager& mgr, IncSpec spec);

/// The call filters of Section 4.1.2: calls where c is a cube, or c is
/// contained in f or f̄, are excluded because most heuristics find the
/// minimum trivially there.
struct CallFilter {
  bool c_is_cube = false;
  bool c_in_f = false;       ///< 0 != c <= f: minimum cover is the constant 1
  bool c_in_not_f = false;   ///< c <= f̄: minimum cover is the constant 0
  bool c_trivial = false;    ///< c == 0 or c == 1

  [[nodiscard]] bool filtered() const noexcept {
    return c_is_cube || c_in_f || c_in_not_f || c_trivial;
  }
};

[[nodiscard]] CallFilter classify_call(Manager& mgr, IncSpec spec);

}  // namespace bddmin::minimize
