#include "minimize/exact.hpp"

#include <bit>
#include <vector>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::minimize {

std::optional<ExactResult> exact_minimum_tt(std::uint64_t f_tt,
                                            std::uint64_t c_tt, unsigned n,
                                            unsigned max_dc_bits) {
  f_tt &= tt_mask(n);
  c_tt &= tt_mask(n);
  const std::uint64_t dc = ~c_tt & tt_mask(n);
  const unsigned dc_bits = static_cast<unsigned>(std::popcount(dc));
  if (dc_bits > max_dc_bits || n > kMaxTtVars) return std::nullopt;
  std::vector<std::uint64_t> dc_positions;
  dc_positions.reserve(dc_bits);
  for (unsigned m = 0; m < (1u << n); ++m) {
    if ((dc >> m) & 1) dc_positions.push_back(1ull << m);
  }
  const std::uint64_t onset = f_tt & c_tt;
  Manager scratch(n, /*cache_log2=*/14);
  ExactResult best;
  best.size = SIZE_MAX;
  for (std::uint64_t choice = 0; choice < (1ull << dc_bits); ++choice) {
    std::uint64_t g = onset;
    for (unsigned b = 0; b < dc_bits; ++b) {
      if ((choice >> b) & 1) g |= dc_positions[b];
    }
    const std::size_t size = count_nodes(scratch, from_tt(scratch, g, n));
    if (size < best.size) {
      best.size = size;
      best.cover_tt = g;
    }
    // Bound the scratch table: nothing is referenced, so everything but
    // the terminal is reclaimable.
    if (scratch.allocated_nodes() > (1u << 16)) scratch.garbage_collect();
  }
  return best;
}

std::optional<ExactResult> exact_minimum(Manager& mgr, Edge f, Edge c,
                                         unsigned n, unsigned max_dc_bits) {
  // Refuse wide instances *before* converting: to_tt requires
  // n <= kMaxTtVars, and exact_minimum_tt's own guard runs too late to
  // protect the conversion.
  if (n > kMaxTtVars) return std::nullopt;
  return exact_minimum_tt(to_tt(mgr, f, n), to_tt(mgr, c, n), n, max_dc_bits);
}

}  // namespace bddmin::minimize
