/// \file image.hpp
/// \brief Symbolic image computation for sequential machines.
///
/// Two methods:
///  * Relational: build the partitioned transition relation
///    T_k(s, i, y) = y_k XNOR delta_k(s, i) and compute
///    Img(S) = (exists s, i . S · prod T_k)[y := s].
///  * Functional: Coudert/Berthet/Madre's range computation — restrict
///    each delta_k to the state set with constrain, then compute the range
///    of the resulting function vector by recursive cofactoring.  This is
///    exactly the "special property" of constrain that footnote 1 of the
///    DAC'94 paper refers to; the test suite cross-checks both methods.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"
#include "fsm/encoding.hpp"

namespace bddmin::fsm {

enum class ImageMethod {
  kRelational,  ///< conjoin all T_k, one relational product at the end
  kClustered,   ///< greedy T_k clusters + early quantification schedule
  kFunctional,  ///< Coudert/Berthet/Madre range of the constrained vector
};

/// Observer for the top-level constrain(delta_k, S) calls of the
/// functional method.  SIS's verify_fsm funnels *these* calls through the
/// same constrain entry point as the frontier minimization, which is how
/// the DAC'94 experiments obtain their c_onset < 5% bucket.  The
/// observer's return value is ignored: these calls rely on constrain's
/// image-preserving property, so an arbitrary cover would be incorrect
/// (the paper makes the same remark in Section 4.1.1).
using ImageConstrainObserver =
    std::function<void(Manager&, Edge f, Edge c)>;

class ImageComputer {
 public:
  /// \p next_vars: one fresh variable per state bit, used only by the
  /// relational method (pass the same layout either way).
  ImageComputer(Manager& mgr, const SymbolicFsm& machine,
                std::span<const std::uint32_t> next_vars, ImageMethod method,
                ImageConstrainObserver observer = {});

  /// States reachable in one step from \p state_set (both over state_vars).
  [[nodiscard]] Edge image(Edge state_set);

  /// States with a one-step successor inside \p state_set.  Always uses
  /// the monolithic relation (built lazily), regardless of method(): the
  /// functional range trick has no backward analogue.
  [[nodiscard]] Edge preimage(Edge state_set);

  [[nodiscard]] ImageMethod method() const noexcept { return method_; }

 private:
  [[nodiscard]] Edge relational_image(Edge state_set);
  [[nodiscard]] Edge clustered_image(Edge state_set);
  [[nodiscard]] Edge functional_image(Edge state_set);
  [[nodiscard]] Edge range(std::vector<Edge> funcs, std::size_t bit);
  void build_clusters();

  Manager& mgr_;
  const SymbolicFsm& machine_;
  std::vector<std::uint32_t> next_vars_;
  ImageMethod method_;
  ImageConstrainObserver observer_;
  EdgePin pin_;                  ///< keeps internal edges alive across GCs
  std::vector<Edge> relation_;   ///< per-bit T_k (relational/clustered)
  Edge present_and_input_cube_ = kOne;  ///< quantification cube
  std::vector<Edge> rename_map_;  ///< y -> s substitution for vector_compose
  std::vector<Edge> clusters_;    ///< conjoined T_k groups (clustered only)
  /// Per cluster: cube of the present/input variables whose last use is
  /// that cluster — quantified as soon as the cluster is conjoined.
  std::vector<Edge> cluster_quantify_;
  // Lazily built pre-image structures.
  bool preimage_ready_ = false;
  Edge monolithic_ = kOne;            ///< product of all T_k
  Edge next_and_input_cube_ = kOne;   ///< quantified in preimage()
  std::vector<Edge> forward_map_;     ///< s -> y substitution
};

}  // namespace bddmin::fsm
