/// \file equiv.hpp
/// \brief Product-machine equivalence checking — our re-implementation of
/// SIS's `verify_fsm -m product` (Coudert/Berthet/Madre; Touati et al.).
///
/// The product of two machines over shared inputs is traversed breadth
/// first; at each step the frontier set is minimized through the
/// MinimizeHook (where the experiment harness intercepts EBM instances),
/// and the newly reached product states are checked to produce equal
/// outputs under every input.
#pragma once

#include <optional>

#include "fsm/reach.hpp"

namespace bddmin::fsm {

struct EquivOptions {
  /// Frontier minimizer; defaults to constrain as in SIS.
  MinimizeHook minimize;
  ImageMethod image_method = ImageMethod::kRelational;
  /// See ReachOptions::observe_image_constrains.
  bool observe_image_constrains = true;
  std::size_t max_iterations = 100000;
  /// log2 of the computed-cache size of the internally created manager.
  /// Kept moderate because the experiment harness flushes it between
  /// heuristics on every intercepted call.
  unsigned cache_log2 = 15;
};

/// A distinguishing experiment for two inequivalent machines: feed
/// inputs[0..n-2] from reset (both machines step in lock step), then apply
/// inputs[n-1]; the machines' outputs differ on that final input.
struct Counterexample {
  std::vector<std::vector<bool>> inputs;  ///< one valuation per step
};

struct EquivResult {
  bool equivalent = false;
  unsigned iterations = 0;
  /// Number of reached product states (sat count over product state bits).
  double product_states = 0.0;
  /// Present exactly when !equivalent.
  std::optional<Counterexample> counterexample;
};

/// Check equivalence of two machines with the same input/output counts.
/// A fresh manager is created with the layout: inputs on top, then
/// present/next state variables interleaved (A's bits, then B's).
[[nodiscard]] EquivResult check_equivalence(const MachineSpec& a,
                                            const MachineSpec& b,
                                            const EquivOptions& opts = {});

/// The paper's experimental setup: compare a machine against itself.
[[nodiscard]] EquivResult check_self_equivalence(const MachineSpec& a,
                                                 const EquivOptions& opts = {});

/// Replay a counterexample by concrete simulation of both machines from
/// reset; true iff their outputs differ on the final input (i.e. the
/// counterexample is genuine).
[[nodiscard]] bool validate_counterexample(const MachineSpec& a,
                                           const MachineSpec& b,
                                           const Counterexample& cex);

}  // namespace bddmin::fsm
