#include "fsm/encoding.hpp"

#include <stdexcept>

#include "analysis/check.hpp"
#include "bdd/ops.hpp"

namespace bddmin::fsm {

Edge state_code(Manager& mgr, std::span<const std::uint32_t> state_vars,
                std::size_t index) {
  Edge code = kOne;
  for (std::size_t b = state_vars.size(); b-- > 0;) {
    const Edge lit = ((index >> b) & 1) ? mgr.var_edge(state_vars[b])
                                        : mgr.nvar_edge(state_vars[b]);
    code = mgr.and_(code, lit);
  }
  return code;
}

Edge pattern_cube(Manager& mgr, std::span<const std::uint32_t> vars,
                  std::string_view pattern) {
  BDDMIN_CHECK(vars.size() == pattern.size());
  Edge cube = kOne;
  for (std::size_t i = pattern.size(); i-- > 0;) {
    if (pattern[i] == '-') continue;
    const Edge lit =
        pattern[i] == '1' ? mgr.var_edge(vars[i]) : mgr.nvar_edge(vars[i]);
    cube = mgr.and_(cube, lit);
  }
  return cube;
}

SymbolicFsm encode_fsm(Manager& mgr, const Fsm& fsm,
                       std::span<const std::uint32_t> input_vars,
                       std::span<const std::uint32_t> state_vars) {
  if (input_vars.size() != fsm.num_inputs ||
      state_vars.size() < fsm.state_bits()) {
    throw std::invalid_argument(fsm.name + ": variable layout mismatch");
  }
  SymbolicFsm sym;
  sym.input_vars.assign(input_vars.begin(), input_vars.end());
  sym.state_vars.assign(state_vars.begin(), state_vars.end());
  const std::size_t bits = state_vars.size();
  sym.next_state.assign(bits, kZero);
  sym.outputs.assign(fsm.num_outputs, kZero);

  Edge covered = kZero;  // (state, input) pairs with an explicit transition
  for (const Transition& t : fsm.transitions) {
    const Edge cond =
        mgr.and_(pattern_cube(mgr, input_vars, t.input),
                 state_code(mgr, state_vars, fsm.state_index(t.from)));
    covered = mgr.or_(covered, cond);
    const std::size_t to = fsm.state_index(t.to);
    for (std::size_t b = 0; b < bits; ++b) {
      if ((to >> b) & 1) sym.next_state[b] = mgr.or_(sym.next_state[b], cond);
    }
    for (unsigned j = 0; j < fsm.num_outputs; ++j) {
      if (t.output[j] == '1') sym.outputs[j] = mgr.or_(sym.outputs[j], cond);
    }
  }
  // Deterministic completion: uncovered (state, input) pairs self-loop.
  const Edge uncovered = !covered;
  for (std::size_t b = 0; b < bits; ++b) {
    sym.next_state[b] = mgr.or_(
        sym.next_state[b], mgr.and_(uncovered, mgr.var_edge(state_vars[b])));
  }
  sym.initial = state_code(mgr, state_vars, fsm.state_index(fsm.reset_state));
  return sym;
}

StepResult simulate_step(const Manager& mgr, const SymbolicFsm& machine,
                         const std::vector<bool>& state_bits,
                         const std::vector<bool>& input_bits) {
  BDDMIN_CHECK(state_bits.size() == machine.state_vars.size());
  BDDMIN_CHECK(input_bits.size() == machine.input_vars.size());
  std::vector<bool> assignment(mgr.num_vars(), false);
  for (std::size_t k = 0; k < machine.state_vars.size(); ++k) {
    assignment[machine.state_vars[k]] = state_bits[k];
  }
  for (std::size_t i = 0; i < machine.input_vars.size(); ++i) {
    assignment[machine.input_vars[i]] = input_bits[i];
  }
  StepResult result;
  result.next_state.reserve(machine.next_state.size());
  for (const Edge delta : machine.next_state) {
    result.next_state.push_back(eval(mgr, delta, assignment));
  }
  result.outputs.reserve(machine.outputs.size());
  for (const Edge lambda : machine.outputs) {
    result.outputs.push_back(eval(mgr, lambda, assignment));
  }
  return result;
}

MachineSpec spec_from_fsm(Fsm fsm) {
  fsm.validate();
  MachineSpec spec;
  spec.name = fsm.name;
  spec.num_inputs = fsm.num_inputs;
  spec.num_state_bits = fsm.state_bits();
  spec.num_outputs = fsm.num_outputs;
  spec.build = [fsm = std::move(fsm)](
                   Manager& mgr, std::span<const std::uint32_t> input_vars,
                   std::span<const std::uint32_t> state_vars) {
    return encode_fsm(mgr, fsm, input_vars, state_vars);
  };
  return spec;
}

}  // namespace bddmin::fsm
