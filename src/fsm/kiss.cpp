#include "fsm/kiss.hpp"

#include <sstream>
#include <stdexcept>

namespace bddmin::fsm {

Fsm parse_kiss2(std::string_view text, std::string name) {
  Fsm fsm;
  fsm.name = std::move(name);
  std::istringstream in{std::string(text)};
  std::string line;
  bool ended = false;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first) || ended) continue;
    if (first == ".i") {
      ls >> fsm.num_inputs;
    } else if (first == ".o") {
      ls >> fsm.num_outputs;
    } else if (first == ".p" || first == ".s") {
      std::size_t ignored;  // declared counts are re-derived from the body
      ls >> ignored;
    } else if (first == ".r") {
      std::string reset;
      ls >> reset;
      fsm.add_state(reset);
      fsm.reset_state = reset;
    } else if (first == ".e") {
      ended = true;
    } else if (first[0] == '.') {
      throw std::invalid_argument(fsm.name + ": unknown directive " + first);
    } else {
      Transition t;
      t.input = first;
      if (!(ls >> t.from >> t.to >> t.output)) {
        throw std::invalid_argument(fsm.name + ": malformed transition: " + line);
      }
      fsm.add_state(t.from);
      fsm.add_state(t.to);
      fsm.transitions.push_back(std::move(t));
    }
  }
  fsm.validate();
  return fsm;
}

std::string to_kiss2(const Fsm& fsm) {
  std::ostringstream os;
  os << ".i " << fsm.num_inputs << "\n.o " << fsm.num_outputs << "\n";
  os << ".p " << fsm.transitions.size() << "\n.s " << fsm.states.size() << "\n";
  os << ".r " << fsm.reset_state << "\n";
  for (const Transition& t : fsm.transitions) {
    os << t.input << ' ' << t.from << ' ' << t.to << ' ' << t.output << "\n";
  }
  os << ".e\n";
  return os.str();
}

}  // namespace bddmin::fsm
