#include "fsm/equiv.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/check.hpp"
#include "bdd/cube.hpp"
#include "bdd/ops.hpp"
#include "minimize/sibling.hpp"

namespace bddmin::fsm {
namespace {

/// Values of \p vars in some satisfying assignment of f (f != 0); vars
/// absent from the chosen cube read as false.
std::vector<bool> pick_assignment(Manager& mgr, Edge f,
                                  std::span<const std::uint32_t> vars) {
  BDDMIN_CHECK(f != kZero);
  CubeVec chosen;
  for_each_cube(mgr, f, mgr.num_vars(), 1, [&](const CubeVec& cube) {
    chosen = cube;
    return false;
  });
  std::vector<bool> out(vars.size(), false);
  for (std::size_t i = 0; i < vars.size(); ++i) out[i] = chosen[vars[i]] == 1;
  return out;
}

Edge assignment_cube(Manager& mgr, std::span<const std::uint32_t> vars,
                     const std::vector<bool>& bits) {
  Edge cube = kOne;
  for (std::size_t i = vars.size(); i-- > 0;) {
    cube = mgr.and_(cube,
                    bits[i] ? mgr.var_edge(vars[i]) : mgr.nvar_edge(vars[i]));
  }
  return cube;
}

/// Inputs (as a function over the input variables) that drive the machine
/// from the concrete state `from` into exactly the concrete state `to`.
Edge driving_inputs(Manager& mgr, const SymbolicFsm& machine,
                    const std::vector<bool>& from, const std::vector<bool>& to) {
  const Edge from_cube = assignment_cube(mgr, machine.state_vars, from);
  Edge ok = kOne;
  for (std::size_t k = 0; k < machine.next_state.size(); ++k) {
    const Edge bit = cofactor_cube(mgr, machine.next_state[k], from_cube);
    ok = mgr.and_(ok, to[k] ? bit : !bit);
  }
  return ok;
}

/// Reconstruct a distinguishing input sequence from the BFS onion rings.
Counterexample extract_counterexample(Manager& mgr, const SymbolicFsm& product,
                                      const std::vector<Bdd>& rings,
                                      Edge bad_states, Edge outputs_equal) {
  Counterexample cex;
  std::vector<bool> current =
      pick_assignment(mgr, bad_states, product.state_vars);
  // The observing input: outputs differ at `current` under it.
  const Edge current_cube = assignment_cube(mgr, product.state_vars, current);
  const Edge diff_inputs = cofactor_cube(mgr, !outputs_equal, current_cube);
  cex.inputs.push_back(pick_assignment(mgr, diff_inputs, product.input_vars));

  const Edge input_cube = positive_cube(mgr, product.input_vars);
  std::size_t ring = rings.size() - 1;
  while (ring > 0) {
    // Predecessors of `current`: states with some input mapping onto it.
    Edge pred = kOne;
    for (std::size_t k = 0; k < product.next_state.size(); ++k) {
      pred = mgr.and_(pred, current[k] ? product.next_state[k]
                                       : !product.next_state[k]);
    }
    pred = exists(mgr, pred, input_cube);
    // The frontier cover may skip rings; search backward for the nearest
    // ring containing a predecessor (ring 0 holds the initial states).
    bool found = false;
    for (std::size_t j = ring; j-- > 0;) {
      const Edge candidates = mgr.and_(rings[j].edge(), pred);
      if (candidates == kZero) continue;
      const std::vector<bool> previous =
          pick_assignment(mgr, candidates, product.state_vars);
      cex.inputs.push_back(pick_assignment(
          mgr, driving_inputs(mgr, product, previous, current),
          product.input_vars));
      current = previous;
      ring = j;
      found = true;
      break;
    }
    // Every frontier state has a predecessor in an earlier ring; this is
    // pure defence against a broken ring record.
    if (!found) break;
  }
  std::reverse(cex.inputs.begin(), cex.inputs.end());
  return cex;
}

}  // namespace

EquivResult check_equivalence(const MachineSpec& a, const MachineSpec& b,
                              const EquivOptions& opts) {
  if (a.num_inputs != b.num_inputs || a.num_outputs != b.num_outputs) {
    throw std::invalid_argument("machines have incompatible interfaces");
  }
  const unsigned ni = a.num_inputs;
  const unsigned bits = a.num_state_bits + b.num_state_bits;
  Manager mgr(ni + 2 * bits, opts.cache_log2);

  // Layout: inputs on top; below them present/next state bits interleaved
  // (the usual good order for transition relations).
  std::vector<std::uint32_t> input_vars(ni);
  for (unsigned i = 0; i < ni; ++i) input_vars[i] = i;
  std::vector<std::uint32_t> state_vars(bits);
  std::vector<std::uint32_t> next_vars(bits);
  for (unsigned k = 0; k < bits; ++k) {
    state_vars[k] = ni + 2 * k;
    next_vars[k] = ni + 2 * k + 1;
  }
  const std::span<const std::uint32_t> sv(state_vars);
  const SymbolicFsm sym_a =
      a.build(mgr, input_vars, sv.subspan(0, a.num_state_bits));
  const SymbolicFsm sym_b =
      b.build(mgr, input_vars, sv.subspan(a.num_state_bits));

  // The product machine: state = (state_a, state_b), shared inputs.
  SymbolicFsm product;
  product.input_vars = input_vars;
  product.state_vars = state_vars;
  product.next_state = sym_a.next_state;
  product.next_state.insert(product.next_state.end(), sym_b.next_state.begin(),
                            sym_b.next_state.end());
  product.initial = mgr.and_(sym_a.initial, sym_b.initial);

  // Product states whose outputs agree for every input.
  Edge outputs_equal_raw = kOne;
  for (unsigned j = 0; j < a.num_outputs; ++j) {
    outputs_equal_raw = mgr.and_(
        outputs_equal_raw, mgr.xnor_(sym_a.outputs[j], sym_b.outputs[j]));
  }
  const Bdd outputs_equal(mgr, outputs_equal_raw);
  const Bdd ok_states(
      mgr, forall(mgr, outputs_equal.edge(), positive_cube(mgr, input_vars)));

  const MinimizeHook minimize =
      opts.minimize ? opts.minimize : [](Manager& m, Edge f, Edge c) {
        return minimize::constrain(m, f, c);
      };
  ImageConstrainObserver observer;
  if (opts.observe_image_constrains && opts.minimize &&
      opts.image_method == ImageMethod::kFunctional) {
    observer = [&opts](Manager& m, Edge f, Edge c) {
      (void)opts.minimize(m, f, c);
    };
  }
  ImageComputer imager(mgr, product, next_vars, opts.image_method, observer);

  EquivResult result;
  Bdd reached(mgr, product.initial);
  Bdd frontier = reached;
  std::vector<Bdd> rings{frontier};  // onion rings for counterexamples
  result.equivalent = true;
  while (!frontier.is_zero()) {
    if (++result.iterations > opts.max_iterations) {
      throw std::runtime_error("equivalence: iteration limit exceeded");
    }
    if (!frontier.leq(ok_states)) {
      result.equivalent = false;
      result.counterexample = extract_counterexample(
          mgr, product, rings, mgr.and_(frontier.edge(), !ok_states.edge()),
          outputs_equal.edge());
      break;
    }
    const Bdd care = frontier | !reached;
    const Bdd state_set(mgr, minimize(mgr, frontier.edge(), care.edge()));
    const Bdd img(mgr, imager.image(state_set.edge()));
    frontier = img - reached;
    reached |= img;
    if (!frontier.is_zero()) rings.push_back(frontier);
  }
  result.product_states = sat_count(mgr, reached.edge(), bits);
  return result;
}

EquivResult check_self_equivalence(const MachineSpec& a,
                                   const EquivOptions& opts) {
  return check_equivalence(a, a, opts);
}

bool validate_counterexample(const MachineSpec& a, const MachineSpec& b,
                             const Counterexample& cex) {
  if (cex.inputs.empty()) return false;
  Manager mgr(a.num_inputs + a.num_state_bits + b.num_state_bits, 14);
  std::vector<std::uint32_t> input_vars(a.num_inputs);
  for (unsigned i = 0; i < a.num_inputs; ++i) input_vars[i] = i;
  std::vector<std::uint32_t> st_a(a.num_state_bits);
  std::vector<std::uint32_t> st_b(b.num_state_bits);
  for (unsigned k = 0; k < a.num_state_bits; ++k) st_a[k] = a.num_inputs + k;
  for (unsigned k = 0; k < b.num_state_bits; ++k) {
    st_b[k] = a.num_inputs + a.num_state_bits + k;
  }
  const SymbolicFsm sym_a = a.build(mgr, input_vars, st_a);
  const SymbolicFsm sym_b = b.build(mgr, input_vars, st_b);
  // Initial states are singletons for explicit machines and generators;
  // pick one concrete representative from each initial set.
  std::vector<bool> state_a(a.num_state_bits, false);
  std::vector<bool> state_b(b.num_state_bits, false);
  {
    CubeVec cube;
    for_each_cube(mgr, sym_a.initial, mgr.num_vars(), 1,
                  [&](const CubeVec& c) { cube = c; return false; });
    for (unsigned k = 0; k < a.num_state_bits; ++k) state_a[k] = cube[st_a[k]] == 1;
    for_each_cube(mgr, sym_b.initial, mgr.num_vars(), 1,
                  [&](const CubeVec& c) { cube = c; return false; });
    for (unsigned k = 0; k < b.num_state_bits; ++k) state_b[k] = cube[st_b[k]] == 1;
  }
  for (std::size_t step = 0; step < cex.inputs.size(); ++step) {
    const StepResult ra = simulate_step(mgr, sym_a, state_a, cex.inputs[step]);
    const StepResult rb = simulate_step(mgr, sym_b, state_b, cex.inputs[step]);
    if (step + 1 == cex.inputs.size()) return ra.outputs != rb.outputs;
    state_a = ra.next_state;
    state_b = rb.next_state;
  }
  return false;
}

}  // namespace bddmin::fsm
