#include "fsm/reach.hpp"

#include <stdexcept>

#include "minimize/sibling.hpp"

namespace bddmin::fsm {

ReachResult reachable_states(Manager& mgr, const SymbolicFsm& machine,
                             std::span<const std::uint32_t> next_vars,
                             const ReachOptions& opts) {
  const MinimizeHook minimize =
      opts.minimize ? opts.minimize : [](Manager& m, Edge f, Edge c) {
        return minimize::constrain(m, f, c);
      };
  ImageConstrainObserver observer;
  if (opts.observe_image_constrains && opts.minimize &&
      opts.image_method == ImageMethod::kFunctional) {
    observer = [&opts](Manager& m, Edge f, Edge c) {
      (void)opts.minimize(m, f, c);
    };
  }
  ImageComputer imager(mgr, machine, next_vars, opts.image_method, observer);
  Bdd reached(mgr, machine.initial);
  Bdd frontier = reached;
  ReachResult result;
  while (!frontier.is_zero()) {
    if (++result.iterations > opts.max_iterations) {
      throw std::runtime_error("reachability: iteration limit exceeded");
    }
    // Coudert's choice: f = U (frontier), c = U + R̄ — re-exploring
    // already-reached states is harmless, exploring unreached ones is not.
    const Bdd care = frontier | !reached;
    const Bdd state_set(
        mgr, minimize(mgr, frontier.edge(), care.edge()));
    const Bdd img(mgr, imager.image(state_set.edge()));
    frontier = img - reached;
    reached |= img;
  }
  result.reached = std::move(reached);
  return result;
}

ReachResult backward_reachable_states(Manager& mgr, const SymbolicFsm& machine,
                                      std::span<const std::uint32_t> next_vars,
                                      Edge targets, const ReachOptions& opts) {
  const MinimizeHook minimize =
      opts.minimize ? opts.minimize : [](Manager& m, Edge f, Edge c) {
        return minimize::constrain(m, f, c);
      };
  ImageComputer imager(mgr, machine, next_vars, ImageMethod::kRelational);
  Bdd reached(mgr, targets);
  Bdd frontier = reached;
  ReachResult result;
  while (!frontier.is_zero()) {
    if (++result.iterations > opts.max_iterations) {
      throw std::runtime_error("backward reachability: iteration limit");
    }
    const Bdd care = frontier | !reached;
    const Bdd state_set(mgr, minimize(mgr, frontier.edge(), care.edge()));
    const Bdd pre(mgr, imager.preimage(state_set.edge()));
    frontier = pre - reached;
    reached |= pre;
  }
  result.reached = std::move(reached);
  return result;
}

}  // namespace bddmin::fsm
