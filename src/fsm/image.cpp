#include "fsm/image.hpp"

#include "analysis/check.hpp"
#include "bdd/ops.hpp"
#include "minimize/sibling.hpp"

namespace bddmin::fsm {

ImageComputer::ImageComputer(Manager& mgr, const SymbolicFsm& machine,
                             std::span<const std::uint32_t> next_vars,
                             ImageMethod method, ImageConstrainObserver observer)
    : mgr_(mgr),
      machine_(machine),
      next_vars_(next_vars.begin(), next_vars.end()),
      method_(method),
      observer_(std::move(observer)),
      pin_(mgr) {
  BDDMIN_CHECK(next_vars_.size() == machine.state_vars.size());
  // The minimization hook may garbage-collect mid-traversal; everything
  // this computer reuses across image() calls must stay referenced.
  for (const Edge e : machine.next_state) pin_.pin(e);
  if (method_ == ImageMethod::kRelational ||
      method_ == ImageMethod::kClustered) {
    relation_.reserve(machine.next_state.size());
    for (std::size_t k = 0; k < machine.next_state.size(); ++k) {
      relation_.push_back(pin_.pin(
          mgr_.xnor_(mgr_.var_edge(next_vars_[k]), machine.next_state[k])));
    }
    std::vector<std::uint32_t> quantified = machine.state_vars;
    quantified.insert(quantified.end(), machine.input_vars.begin(),
                      machine.input_vars.end());
    present_and_input_cube_ = pin_.pin(positive_cube(mgr_, quantified));
    // y -> s renaming for the image result.
    std::uint32_t max_var = 0;
    for (const std::uint32_t y : next_vars_) max_var = std::max(max_var, y);
    rename_map_.resize(max_var + 1);
    for (std::uint32_t v = 0; v <= max_var; ++v) {
      rename_map_[v] = pin_.pin(mgr_.var_edge(v));
    }
    for (std::size_t k = 0; k < next_vars_.size(); ++k) {
      rename_map_[next_vars_[k]] = pin_.pin(mgr_.var_edge(machine.state_vars[k]));
    }
    if (method_ == ImageMethod::kClustered) build_clusters();
  }
}

void ImageComputer::build_clusters() {
  // Greedy clustering by size: conjoin relations until a cluster grows
  // past the cap, then start a new one.
  constexpr std::size_t kClusterCap = 600;
  for (const Edge t : relation_) {
    if (clusters_.empty() ||
        count_nodes(mgr_, clusters_.back()) > kClusterCap) {
      clusters_.push_back(t);
    } else {
      clusters_.back() = mgr_.and_(clusters_.back(), t);
    }
    pin_.pin(clusters_.back());
  }
  // Early-quantification schedule: a present-state or input variable can
  // be existentially removed right after the last cluster mentioning it
  // has been conjoined (the state set only adds present-state support,
  // which is covered because S joins before cluster 0).
  std::vector<std::uint32_t> quantifiable = machine_.state_vars;
  quantifiable.insert(quantifiable.end(), machine_.input_vars.begin(),
                      machine_.input_vars.end());
  cluster_quantify_.assign(clusters_.size(), kOne);
  for (const std::uint32_t v : quantifiable) {
    std::size_t last = 0;
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      if (depends_on(mgr_, clusters_[i], v)) last = i;
    }
    const std::vector<std::uint32_t> one{v};
    cluster_quantify_[last] =
        mgr_.and_(cluster_quantify_[last], positive_cube(mgr_, one));
  }
  for (Edge& cube : cluster_quantify_) cube = pin_.pin(cube);
}

Edge ImageComputer::clustered_image(Edge state_set) {
  Edge current = state_set;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    current = and_exists(mgr_, current, clusters_[i], cluster_quantify_[i]);
  }
  return vector_compose(mgr_, current, rename_map_);
}

Edge ImageComputer::image(Edge state_set) {
  if (state_set == kZero) return kZero;
  switch (method_) {
    case ImageMethod::kRelational: return relational_image(state_set);
    case ImageMethod::kClustered: return clustered_image(state_set);
    case ImageMethod::kFunctional: return functional_image(state_set);
  }
  return kZero;
}

Edge ImageComputer::relational_image(Edge state_set) {
  // Conjoin the partitioned relation onto the state set, quantifying with
  // the final conjunct.
  Edge product = state_set;
  for (std::size_t k = 0; k + 1 < relation_.size(); ++k) {
    product = mgr_.and_(product, relation_[k]);
  }
  const Edge last = relation_.empty() ? kOne : relation_.back();
  const Edge img_y = and_exists(mgr_, product, last, present_and_input_cube_);
  return vector_compose(mgr_, img_y, rename_map_);
}

Edge ImageComputer::preimage(Edge state_set) {
  if (state_set == kZero) return kZero;
  if (!preimage_ready_) {
    Edge t = kOne;
    for (std::size_t k = 0; k < machine_.next_state.size(); ++k) {
      t = mgr_.and_(
          t, mgr_.xnor_(mgr_.var_edge(next_vars_[k]), machine_.next_state[k]));
    }
    monolithic_ = pin_.pin(t);
    std::vector<std::uint32_t> quantified = next_vars_;
    quantified.insert(quantified.end(), machine_.input_vars.begin(),
                      machine_.input_vars.end());
    next_and_input_cube_ = pin_.pin(positive_cube(mgr_, quantified));
    std::uint32_t max_var = 0;
    for (const std::uint32_t s : machine_.state_vars) {
      max_var = std::max(max_var, s);
    }
    forward_map_.resize(max_var + 1);
    for (std::uint32_t v = 0; v <= max_var; ++v) {
      forward_map_[v] = pin_.pin(mgr_.var_edge(v));
    }
    for (std::size_t k = 0; k < next_vars_.size(); ++k) {
      forward_map_[machine_.state_vars[k]] =
          pin_.pin(mgr_.var_edge(next_vars_[k]));
    }
    preimage_ready_ = true;
  }
  const Edge target = vector_compose(mgr_, state_set, forward_map_);
  return and_exists(mgr_, monolithic_, target, next_and_input_cube_);
}

Edge ImageComputer::functional_image(Edge state_set) {
  // Coudert et al.: Img(S) under delta == range(delta constrained to S).
  // These constrains are exactly the ones verify_fsm's minimization entry
  // point also sees; report them to the observer (measurement only — the
  // result must stay constrain's, or the range reduction breaks).
  std::vector<Edge> funcs;
  funcs.reserve(machine_.next_state.size());
  EdgePin pin(mgr_);
  const Edge s = pin.pin(state_set);
  for (const Edge delta : machine_.next_state) {
    if (observer_) observer_(mgr_, delta, s);
    funcs.push_back(pin.pin(minimize::constrain(mgr_, delta, s)));
  }
  return range(std::move(funcs), 0);
}

Edge ImageComputer::range(std::vector<Edge> funcs, std::size_t bit) {
  if (bit == funcs.size()) return kOne;
  const Edge f = funcs[bit];
  const Edge s_bit = mgr_.var_edge(machine_.state_vars[bit]);
  if (Manager::is_const(f)) {
    const Edge tail = range(std::move(funcs), bit + 1);
    return mgr_.and_(f == kOne ? s_bit : !s_bit, tail);
  }
  // Split the domain on f: where f holds, bit `bit` of the image is 1 and
  // the remaining functions are co-restricted to that subdomain.
  std::vector<Edge> pos = funcs;
  std::vector<Edge> neg = std::move(funcs);
  for (std::size_t j = bit + 1; j < pos.size(); ++j) {
    pos[j] = minimize::constrain(mgr_, pos[j], f);
    neg[j] = minimize::constrain(mgr_, neg[j], !f);
  }
  const Edge on = range(std::move(pos), bit + 1);
  const Edge off = range(std::move(neg), bit + 1);
  return mgr_.ite(s_bit, on, off);
}

}  // namespace bddmin::fsm
