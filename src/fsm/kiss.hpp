/// \file kiss.hpp
/// \brief KISS2 reader/writer (the MCNC FSM interchange format).
#pragma once

#include <string>
#include <string_view>

#include "fsm/fsm.hpp"

namespace bddmin::fsm {

/// Parse a KISS2 description.  Supports .i/.o/.p/.s/.r/.e and transition
/// lines `<input> <from> <to> <output>`; '#' starts a comment.  Throws
/// std::invalid_argument on malformed input.  The result is validated.
[[nodiscard]] Fsm parse_kiss2(std::string_view text, std::string name = "fsm");

/// Serialize back to KISS2 (round-trips through parse_kiss2).
[[nodiscard]] std::string to_kiss2(const Fsm& fsm);

}  // namespace bddmin::fsm
