#include "fsm/fsm.hpp"

#include <stdexcept>

namespace bddmin::fsm {
namespace {

bool patterns_overlap(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

std::size_t Fsm::state_index(const std::string& state) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i] == state) return i;
  }
  return SIZE_MAX;
}

std::size_t Fsm::add_state(const std::string& state) {
  const std::size_t existing = state_index(state);
  if (existing != SIZE_MAX) return existing;
  states.push_back(state);
  if (reset_state.empty()) reset_state = state;
  return states.size() - 1;
}

unsigned Fsm::state_bits() const {
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < states.size()) ++bits;
  return bits;
}

void Fsm::validate() const {
  if (states.empty()) throw std::invalid_argument(name + ": no states");
  if (state_index(reset_state) == SIZE_MAX) {
    throw std::invalid_argument(name + ": unknown reset state " + reset_state);
  }
  for (const Transition& t : transitions) {
    if (t.input.size() != num_inputs) {
      throw std::invalid_argument(name + ": bad input width in " + t.input);
    }
    if (t.output.size() != num_outputs) {
      throw std::invalid_argument(name + ": bad output width in " + t.output);
    }
    for (const char ch : t.input + t.output) {
      if (ch != '0' && ch != '1' && ch != '-') {
        throw std::invalid_argument(name + ": bad pattern char");
      }
    }
    if (state_index(t.from) == SIZE_MAX || state_index(t.to) == SIZE_MAX) {
      throw std::invalid_argument(name + ": unknown state in transition");
    }
  }
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    for (std::size_t j = i + 1; j < transitions.size(); ++j) {
      const Transition& a = transitions[i];
      const Transition& b = transitions[j];
      if (a.from != b.from || !patterns_overlap(a.input, b.input)) continue;
      if (a.to != b.to || a.output != b.output) {
        throw std::invalid_argument(name + ": nondeterministic at state " +
                                    a.from + " input " + a.input);
      }
    }
  }
}

}  // namespace bddmin::fsm
