/// \file reach.hpp
/// \brief Breadth-first symbolic reachability with frontier minimization.
///
/// This is the application in which Coudert et al. posed the BDD
/// minimization problem: at each BFS step, any state set S with
/// frontier U <= S <= reached R may be used for the next image, so the
/// traversal hands the incompletely specified function [U, U + R̄] to a
/// minimization hook and uses whatever cover comes back.  The experiment
/// harness plugs in an interceptor here to collect EBM instances.
#pragma once

#include <functional>

#include "bdd/bdd.hpp"
#include "fsm/image.hpp"

namespace bddmin::fsm {

/// Frontier minimizer: given [f, c], return a cover to use as the next
/// image argument.  The hook may trigger garbage collection.
using MinimizeHook = std::function<Edge(Manager&, Edge f, Edge c)>;

struct ReachOptions {
  /// Defaults to constrain, as in SIS's verify_fsm.
  MinimizeHook minimize;
  ImageMethod image_method = ImageMethod::kRelational;
  /// With the functional method, also report the image computation's
  /// top-level constrain(delta_k, S) calls to the minimize hook (their
  /// return value is ignored; see ImageConstrainObserver).  This mirrors
  /// verify_fsm, where those calls go through the same constrain entry
  /// point the experiments intercept.
  bool observe_image_constrains = true;
  std::size_t max_iterations = 100000;
};

struct ReachResult {
  Bdd reached;          ///< fixed point over the machine's state_vars
  unsigned iterations = 0;
};

/// BFS fixed point from the machine's initial states.  \p next_vars must
/// provide one fresh variable per state bit.
[[nodiscard]] ReachResult reachable_states(Manager& mgr, const SymbolicFsm& machine,
                                           std::span<const std::uint32_t> next_vars,
                                           const ReachOptions& opts = {});

/// Backward BFS fixed point: all states from which \p targets can be
/// reached.  Frontier minimization applies symmetrically; the image
/// method option is ignored (pre-images always use the monolithic
/// relation).
[[nodiscard]] ReachResult backward_reachable_states(
    Manager& mgr, const SymbolicFsm& machine,
    std::span<const std::uint32_t> next_vars, Edge targets,
    const ReachOptions& opts = {});

}  // namespace bddmin::fsm
