/// \file encoding.hpp
/// \brief Symbolic (BDD) representation of sequential machines.
///
/// Two layers:
///  * SymbolicFsm — next-state/output functions over concrete manager
///    variables, built for a specific variable layout.
///  * MachineSpec — a layout-independent machine description (a builder
///    callback).  Explicit KISS machines and synthetic datapath machines
///    (counters, LFSRs, multiplier-fed registers) both reduce to a
///    MachineSpec, so reachability and product-machine equivalence have a
///    single code path.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "fsm/fsm.hpp"

namespace bddmin::fsm {

/// A machine instantiated over concrete manager variables.
struct SymbolicFsm {
  std::vector<std::uint32_t> input_vars;
  std::vector<std::uint32_t> state_vars;
  std::vector<Edge> next_state;  ///< one function per state bit
  std::vector<Edge> outputs;     ///< one function per output
  Edge initial = kZero;          ///< initial state set over state_vars
};

/// Layout-independent machine description.
struct MachineSpec {
  std::string name;
  unsigned num_inputs = 0;
  unsigned num_state_bits = 0;
  unsigned num_outputs = 0;
  /// Build the machine's functions over the given variables.
  std::function<SymbolicFsm(Manager&, std::span<const std::uint32_t> input_vars,
                            std::span<const std::uint32_t> state_vars)>
      build;
};

/// Encode an explicit FSM over the given variables: states are binary
/// encoded in first-mention order; unspecified (state, input) pairs
/// self-loop with all outputs 0; '-' output bits are taken as 0.
[[nodiscard]] SymbolicFsm encode_fsm(Manager& mgr, const Fsm& fsm,
                                     std::span<const std::uint32_t> input_vars,
                                     std::span<const std::uint32_t> state_vars);

/// Wrap an explicit FSM as a MachineSpec.
[[nodiscard]] MachineSpec spec_from_fsm(Fsm fsm);

/// The characteristic function of state index \p index over \p state_vars
/// (bit b of the index on state_vars[b]).
[[nodiscard]] Edge state_code(Manager& mgr, std::span<const std::uint32_t> state_vars,
                              std::size_t index);

/// BDD of an input pattern ('0'/'1'/'-') over \p input_vars.
[[nodiscard]] Edge pattern_cube(Manager& mgr, std::span<const std::uint32_t> vars,
                                std::string_view pattern);

/// Concrete (non-symbolic) simulation of one machine step.
struct StepResult {
  std::vector<bool> next_state;  ///< one value per state bit
  std::vector<bool> outputs;     ///< one value per output
};

/// Evaluate the machine's next-state and output functions at a concrete
/// (state, input) valuation.  `state_bits` / `input_bits` are indexed
/// positionally (bit k belongs to state_vars[k] / input_vars[k]).
[[nodiscard]] StepResult simulate_step(const Manager& mgr,
                                       const SymbolicFsm& machine,
                                       const std::vector<bool>& state_bits,
                                       const std::vector<bool>& input_bits);

}  // namespace bddmin::fsm
