/// \file fsm.hpp
/// \brief Explicit-state Mealy machine model (KISS2 flavour).
///
/// The DAC'94 experiments run SIS's `verify_fsm -m product` on MCNC
/// benchmark machines; this module is our stand-in for SIS's FSM front
/// end.  Machines are incompletely specified in the usual KISS way:
/// transition input fields may contain '-' wildcards, and (state, input)
/// combinations without a transition are completed deterministically
/// (self-loop, outputs 0) during encoding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bddmin::fsm {

struct Transition {
  std::string input;   ///< pattern over the inputs, chars '0' '1' '-'
  std::string from;    ///< present-state name
  std::string to;      ///< next-state name
  std::string output;  ///< pattern over the outputs, chars '0' '1' '-'
};

struct Fsm {
  std::string name;
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  std::vector<std::string> states;  ///< in first-mention order
  std::string reset_state;          ///< defaults to the first mentioned state
  std::vector<Transition> transitions;

  /// Index of a state name in `states`; SIZE_MAX if unknown.
  [[nodiscard]] std::size_t state_index(const std::string& name) const;
  /// Register a state if new; returns its index either way.
  std::size_t add_state(const std::string& name);
  /// Bits needed to binary-encode the states (at least 1).
  [[nodiscard]] unsigned state_bits() const;

  /// Structural sanity: patterns have the declared widths, states exist,
  /// the machine is deterministic (no two transitions from one state with
  /// overlapping input cubes and different target/output).  Throws
  /// std::invalid_argument on violation.
  void validate() const;
};

}  // namespace bddmin::fsm
