#include "harness/env.hpp"

#include <cerrno>
#include <cstdlib>

namespace bddmin::harness {

std::optional<std::string> env_string(const char* name) {
  // The one getenv in the repo.  Reads are racy against concurrent
  // setenv by design of the C API; we copy the value out immediately.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const std::optional<std::string> raw = env_string(name);
  if (!raw) return fallback;
  const std::string& text = *raw;
  // strtoull accepts leading whitespace, '+', '-' (with wraparound) and
  // "0x" prefixes; we want plain decimal digits only.
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw EnvError(std::string(name) +
                     ": expected a non-negative integer, got '" + text + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    throw EnvError(std::string(name) +
                   ": expected a non-negative integer, got '" + text + "'");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace bddmin::harness
