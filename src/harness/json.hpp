/// \file json.hpp
/// \brief Minimal streaming JSON writer for the BENCH_*.json perf
/// trajectory files.  Handles nesting, comma placement, string escaping
/// and locale-independent number formatting; no reading, no DOM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bddmin::harness {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key for the next value (objects only).
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double d);        ///< %.6g; NaN/inf emitted as null
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::uint64_t>(i < 0 ? 0 : i)); }
  JsonWriter& value(unsigned u) { return value(static_cast<std::uint64_t>(u)); }
  JsonWriter& value(bool b);

  /// key() + value() in one call.
  template <class T>
  JsonWriter& kv(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The finished text (call after closing every scope); ends with '\n'.
  [[nodiscard]] std::string str() const;

 private:
  void comma();
  std::string out_;
  std::vector<bool> needs_comma_;  // one flag per open scope
};

}  // namespace bddmin::harness
