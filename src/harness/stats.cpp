#include "harness/stats.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/check.hpp"

namespace bddmin::harness {
namespace {

void accumulate(BucketStats& bucket, const CallRecord& record) {
  ++bucket.calls;
  for (std::size_t h = 0; h < record.outcomes.size(); ++h) {
    bucket.total_size[h] += record.outcomes[h].size;
    bucket.total_seconds[h] += record.outcomes[h].seconds;
  }
  bucket.total_min += record.min_size;
  bucket.total_lower_bound += record.lower_bound;
}

void finalize_ranks(BucketStats& bucket) {
  const std::size_t n = bucket.total_size.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bucket.total_size[a] < bucket.total_size[b];
  });
  bucket.rank.assign(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    // Equal totals share a rank, as in the paper's Table 3.
    if (pos > 0 &&
        bucket.total_size[order[pos]] == bucket.total_size[order[pos - 1]]) {
      bucket.rank[order[pos]] = bucket.rank[order[pos - 1]];
    } else {
      bucket.rank[order[pos]] = pos + 1;
    }
  }
}

BucketStats make_bucket(std::string label, std::size_t heuristics) {
  BucketStats bucket;
  bucket.label = std::move(label);
  bucket.total_size.assign(heuristics, 0);
  bucket.total_seconds.assign(heuristics, 0.0);
  return bucket;
}

}  // namespace

double BucketStats::pct_of_min(std::size_t h) const {
  if (total_min == 0) return 0.0;
  return 100.0 * static_cast<double>(total_size[h]) /
         static_cast<double>(total_min);
}

Table3 aggregate_table3(const std::vector<std::string>& names,
                        const std::vector<CallRecord>& records) {
  Table3 table;
  table.names = names;
  table.all = make_bucket("all", names.size());
  table.low = make_bucket("c_onset < 5%", names.size());
  table.mid = make_bucket("5% <= c_onset <= 95%", names.size());
  table.high = make_bucket("c_onset > 95%", names.size());
  for (const CallRecord& record : records) {
    BDDMIN_CHECK(record.outcomes.size() == names.size());
    accumulate(table.all, record);
    if (record.c_onset < 0.05) {
      accumulate(table.low, record);
    } else if (record.c_onset > 0.95) {
      accumulate(table.high, record);
    } else {
      accumulate(table.mid, record);
    }
  }
  finalize_ranks(table.all);
  finalize_ranks(table.low);
  finalize_ranks(table.mid);
  finalize_ranks(table.high);
  return table;
}

HeadToHead head_to_head(const std::vector<std::string>& names,
                        const std::vector<CallRecord>& records,
                        bool restrict_to_low_bucket) {
  HeadToHead result;
  result.names = names;
  result.names.push_back("min");
  result.names.push_back("low_bd");
  const std::size_t n = result.names.size();
  std::vector<std::vector<std::size_t>> wins(n, std::vector<std::size_t>(n, 0));
  std::size_t calls = 0;
  auto size_of = [&](const CallRecord& r, std::size_t idx) {
    if (idx < names.size()) return r.outcomes[idx].size;
    return idx == names.size() ? r.min_size : r.lower_bound;
  };
  for (const CallRecord& record : records) {
    if (restrict_to_low_bucket && record.c_onset >= 0.05) continue;
    ++calls;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && size_of(record, i) < size_of(record, j)) ++wins[i][j];
      }
    }
  }
  result.pct_smaller.assign(n, std::vector<double>(n, 0.0));
  if (calls == 0) return result;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      result.pct_smaller[i][j] =
          100.0 * static_cast<double>(wins[i][j]) / static_cast<double>(calls);
    }
  }
  return result;
}

std::vector<double> robustness_curve(const std::vector<CallRecord>& records,
                                     std::size_t heuristic, double step,
                                     double max_pct) {
  std::vector<double> curve;
  for (double x = 0.0; x <= max_pct + 1e-9; x += step) {
    std::size_t within = 0;
    for (const CallRecord& record : records) {
      const double limit =
          static_cast<double>(record.min_size) * (1.0 + x / 100.0);
      if (static_cast<double>(record.outcomes[heuristic].size) <= limit + 1e-9) {
        ++within;
      }
    }
    curve.push_back(records.empty()
                        ? 0.0
                        : 100.0 * static_cast<double>(within) /
                              static_cast<double>(records.size()));
  }
  return curve;
}

double lower_bound_hit_rate(const std::vector<CallRecord>& records,
                            std::size_t heuristic) {
  if (records.empty()) return 0.0;
  std::size_t hits = 0;
  for (const CallRecord& record : records) {
    if (record.outcomes[heuristic].size == record.lower_bound) ++hits;
  }
  return 100.0 * static_cast<double>(hits) / static_cast<double>(records.size());
}

}  // namespace bddmin::harness
