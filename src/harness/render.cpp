#include "harness/render.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>

namespace bddmin::harness {
namespace {

std::string fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::size_t find_name(const std::vector<std::string>& names,
                      const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  return it == names.end() ? SIZE_MAX
                           : static_cast<std::size_t>(it - names.begin());
}

void append_bucket_cells(std::vector<std::string>& row,
                         const BucketStats& bucket, std::size_t h) {
  row.push_back(std::to_string(bucket.total_size[h]));
  row.push_back(fixed(bucket.pct_of_min(h), 0));
  row.push_back(fixed(bucket.total_seconds[h], 2));
  row.push_back(std::to_string(bucket.rank[h]));
}

}  // namespace

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width;
  for (const auto& row : rows) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      os << std::setw(static_cast<int>(width[c]) + 2) << rows[r][c];
    }
    os << "\n";
    if (r == 0) {
      const std::size_t total =
          std::accumulate(width.begin(), width.end(), std::size_t{0}) +
          2 * width.size();
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

std::string render_table3(const Table3& table) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"heur", "total", "%min", "time(s)", "rank",  // all
                  "total", "%min", "time(s)", "rank",          // < 5%
                  "total", "%min", "time(s)", "rank"});        // > 95%
  // Row order: by total size over all calls, with low_bd first and min
  // second, as in the paper's Table 3.
  std::vector<std::size_t> order(table.names.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return table.all.total_size[a] < table.all.total_size[b];
  });
  auto summary_row = [&](const std::string& name, std::size_t all_v,
                         std::size_t low_v, std::size_t high_v) {
    auto pct = [](std::size_t v, std::size_t min_total) {
      return min_total == 0 ? std::string("-")
                            : fixed(100.0 * static_cast<double>(v) /
                                        static_cast<double>(min_total),
                                    0);
    };
    rows.push_back({name, std::to_string(all_v), pct(all_v, table.all.total_min),
                    "-", "-", std::to_string(low_v),
                    pct(low_v, table.low.total_min), "-", "-",
                    std::to_string(high_v), pct(high_v, table.high.total_min),
                    "-", "-"});
  };
  summary_row("low_bd", table.all.total_lower_bound,
              table.low.total_lower_bound, table.high.total_lower_bound);
  summary_row("min", table.all.total_min, table.low.total_min,
              table.high.total_min);
  for (const std::size_t h : order) {
    std::vector<std::string> row{table.names[h]};
    append_bucket_cells(row, table.all, h);
    append_bucket_cells(row, table.low, h);
    append_bucket_cells(row, table.high, h);
    rows.push_back(std::move(row));
  }
  std::ostringstream os;
  os << "Table 3: totals over all calls (" << table.all.calls
     << "); c_onset < 5% (" << table.low.calls << "); c_onset > 95% ("
     << table.high.calls << "); mid bucket (" << table.mid.calls << ")\n";
  os << render_table(rows);
  return os.str();
}

std::string render_head_to_head(const HeadToHead& matrix,
                                const std::vector<std::string>& subset) {
  std::vector<std::size_t> indices;
  for (const std::string& name : subset) {
    const std::size_t idx = find_name(matrix.names, name);
    if (idx != SIZE_MAX) indices.push_back(idx);
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"heur"};
  for (const std::size_t j : indices) header.push_back(matrix.names[j]);
  rows.push_back(std::move(header));
  for (const std::size_t i : indices) {
    std::vector<std::string> row{matrix.names[i]};
    for (const std::size_t j : indices) {
      row.push_back(i == j ? "0.0" : fixed(matrix.pct_smaller[i][j], 1));
    }
    rows.push_back(std::move(row));
  }
  std::ostringstream os;
  os << "Table 4: entry (i, j) = % of calls where heuristic i is strictly "
        "smaller than j\n";
  os << render_table(rows);
  return os.str();
}

std::string render_robustness(const std::vector<std::string>& names,
                              const std::vector<CallRecord>& records,
                              const std::vector<std::string>& subset,
                              double step, double max_pct) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"within%"};
  std::vector<std::vector<double>> curves;
  for (const std::string& name : subset) {
    const std::size_t idx = find_name(names, name);
    if (idx == SIZE_MAX) continue;
    header.push_back(name);
    curves.push_back(robustness_curve(records, idx, step, max_pct));
  }
  rows.push_back(std::move(header));
  const std::size_t samples = curves.empty() ? 0 : curves.front().size();
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<std::string> row{fixed(step * static_cast<double>(s), 0)};
    for (const auto& curve : curves) row.push_back(fixed(curve[s], 1));
    rows.push_back(std::move(row));
  }
  std::ostringstream os;
  os << "Figure 3: % of calls within x% of the best heuristic (min)\n";
  os << render_table(rows);
  return os.str();
}

}  // namespace bddmin::harness
