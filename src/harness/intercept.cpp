#include "harness/intercept.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "analysis/cover_audit.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "telemetry/counters.hpp"

namespace bddmin::harness {

Interceptor::Interceptor(std::vector<minimize::Heuristic> heuristics,
                         InterceptorOptions opts)
    : heuristics_(std::move(heuristics)), opts_(opts) {}

std::vector<std::string> Interceptor::names() const {
  std::vector<std::string> out;
  out.reserve(heuristics_.size());
  for (const minimize::Heuristic& h : heuristics_) out.push_back(h.name);
  return out;
}

fsm::MinimizeHook Interceptor::hook() {
  return [this](Manager& mgr, Edge f, Edge c) { return process(mgr, f, c); };
}

Edge Interceptor::process(Manager& mgr, Edge f, Edge c) {
  const minimize::IncSpec spec{f, c};
  const minimize::CallFilter filter = minimize::classify_call(mgr, spec);
  if (filter.filtered()) {
    ++filtered_;
    return c == kZero ? f : minimize::constrain(mgr, f, c);
  }
  // The application's f and c must survive the per-heuristic GCs.
  const Bdd f_pin(mgr, f);
  const Bdd c_pin(mgr, c);

  CallRecord record;
  record.f_size = count_nodes(mgr, f);
  record.c_onset = minimize::c_onset_fraction(mgr, spec);
  record.min_size = SIZE_MAX;
  record.outcomes.reserve(heuristics_.size());
  using Clock = std::chrono::steady_clock;
  for (const minimize::Heuristic& h : heuristics_) {
    if (opts_.flush_between) mgr.garbage_collect();
    const telemetry::CounterSnapshot before = mgr.telemetry();
    const auto start = Clock::now();
    const Edge g = h.run(mgr, f, c);
    const auto stop = Clock::now();
    const telemetry::CounterSnapshot delta = mgr.telemetry() - before;
    if (opts_.audit_level >= analysis::AuditLevel::kCover) {
      // Contract audit with witness diagnostics instead of the bare check.
      analysis::AuditReport cover_report;
      analysis::audit_cover(mgr, f, c, g, h.name, cover_report);
      if (!cover_report.ok()) throw std::logic_error(cover_report.summary());
    } else if (opts_.validate_covers && !minimize::is_cover(mgr, g, spec)) {
      throw std::logic_error("heuristic " + h.name + " returned a non-cover");
    }
    if (opts_.audit_level >= analysis::AuditLevel::kStructural) {
      const Bdd g_pin(mgr, g);
      analysis::AuditOptions aopts;
      aopts.level = std::min(opts_.audit_level, analysis::AuditLevel::kCache);
      const analysis::AuditReport report = analysis::audit_manager(mgr, aopts);
      if (!report.ok()) {
        throw std::logic_error("audit after heuristic " + h.name + ":\n" +
                               report.summary());
      }
    }
    HeuristicOutcome outcome;
    outcome.size = count_nodes(mgr, g);
    outcome.seconds = std::chrono::duration<double>(stop - start).count();
    outcome.cache_hits = delta.total_cache_hits();
    outcome.cache_misses = delta.total_cache_misses();
    outcome.and_hits = delta.value(telemetry::Counter::kAndCacheHits);
    outcome.and_misses = delta.value(telemetry::Counter::kAndCacheMisses);
    outcome.xor_hits = delta.value(telemetry::Counter::kXorCacheHits);
    outcome.xor_misses = delta.value(telemetry::Counter::kXorCacheMisses);
    outcome.steps = delta.value(telemetry::Counter::kGovernorSteps);
    record.min_size = std::min(record.min_size, outcome.size);
    record.outcomes.push_back(outcome);
  }
  if (opts_.lower_bound_cubes > 0) {
    if (opts_.flush_between) mgr.garbage_collect();
    const minimize::LowerBoundResult lb =
        minimize::constrain_lower_bound(mgr, f, c, opts_.lower_bound_cubes);
    record.lower_bound = lb.bound;
    record.lb_cubes = lb.cubes_examined;
  }
  records_.push_back(std::move(record));
  // Hand the application what verify_fsm would use: constrain's cover.
  return minimize::constrain(mgr, f, c);
}

}  // namespace bddmin::harness
