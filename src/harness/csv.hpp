/// \file csv.hpp
/// \brief CSV export of intercepted minimization calls, for external
/// analysis/plotting of the experiment data.
#pragma once

#include <string>

#include "harness/intercept.hpp"

namespace bddmin::harness {

/// One row per call: index, f_size, c_onset, lower_bound, min, then one
/// size column and one seconds column per heuristic.
[[nodiscard]] std::string records_to_csv(const std::vector<std::string>& names,
                                         const std::vector<CallRecord>& records);

/// RFC-4180 field quoting: values containing a comma, quote or newline
/// are wrapped in double quotes (inner quotes doubled, newlines folded to
/// spaces so a row stays one physical line); plain values pass through.
[[nodiscard]] std::string csv_field(const std::string& value);

/// Write \p text to \p path; returns false (and leaves no partial file
/// guarantees) on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace bddmin::harness
