/// \file render.hpp
/// \brief Plain-text rendering of the experiment results in the shape of
/// the paper's tables and figure.
#pragma once

#include <string>

#include "harness/stats.hpp"

namespace bddmin::harness {

/// Generic fixed-width table; first row is the header.
[[nodiscard]] std::string render_table(
    const std::vector<std::vector<std::string>>& rows);

/// Table 3: one column group per bucket, rows sorted by total size over
/// all calls (low_bd and min rows included, like the paper).
[[nodiscard]] std::string render_table3(const Table3& table);

/// Table 4 for a subset of heuristics (the paper shows six).
[[nodiscard]] std::string render_head_to_head(
    const HeadToHead& matrix, const std::vector<std::string>& subset);

/// Figure 3 as an ASCII data listing plus a coarse plot: one series per
/// selected heuristic of "% of calls within x% of min".
[[nodiscard]] std::string render_robustness(
    const std::vector<std::string>& names,
    const std::vector<CallRecord>& records,
    const std::vector<std::string>& subset, double step = 10.0,
    double max_pct = 100.0);

}  // namespace bddmin::harness
