#include "harness/csv.hpp"

#include <fstream>
#include <sstream>

namespace bddmin::harness {

std::string records_to_csv(const std::vector<std::string>& names,
                           const std::vector<CallRecord>& records) {
  std::ostringstream os;
  os << "call,f_size,c_onset,lower_bound,min";
  for (const std::string& name : names) os << ",size_" << name;
  for (const std::string& name : names) os << ",sec_" << name;
  os << "\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const CallRecord& r = records[i];
    os << i << ',' << r.f_size << ',' << r.c_onset << ',' << r.lower_bound
       << ',' << r.min_size;
    for (const HeuristicOutcome& o : r.outcomes) os << ',' << o.size;
    for (const HeuristicOutcome& o : r.outcomes) os << ',' << o.seconds;
    os << "\n";
  }
  return os.str();
}

std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out = "\"";
  for (const char ch : value) {
    if (ch == '"') {
      out += "\"\"";
    } else if (ch == '\n' || ch == '\r') {
      out += ' ';
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace bddmin::harness
