#include "harness/json.hpp"

#include <cmath>
#include <cstdio>

namespace bddmin::harness {

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"';
  for (const char ch : name) {
    if (ch == '"' || ch == '\\') out_ += '\\';
    out_ += ch;
  }
  out_ += "\":";
  if (!needs_comma_.empty()) needs_comma_.back() = false;  // value follows
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma();
  out_ += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out_ += buf;
        } else {
          out_ += ch;
        }
    }
  }
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

std::string JsonWriter::str() const { return out_ + "\n"; }

}  // namespace bddmin::harness
