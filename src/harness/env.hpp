/// \file env.hpp
/// \brief Centralized environment-variable access.
///
/// Every BDDMIN_* environment variable the library honours is read
/// through this header (the single NOLINT'd `getenv` call in the repo
/// lives in env.cpp):
///
///   BDDMIN_NODE_LIMIT   default per-job node quota (engine)
///   BDDMIN_STEP_LIMIT   default per-job step budget (engine)
///   BDDMIN_AUDIT_LEVEL  default audit tier (analysis/audit)
///   BDDMIN_TRACE        Chrome-trace output path (telemetry/trace)
///   BDDMIN_FAILPOINTS   failpoint arming specs (analysis/failpoint)
///   BDDMIN_FLIGHT_DUMP  1 = dump every worker's flight-recorder ring
///                       after a batch (engine/flight)
///   BDDMIN_PROGRESS     1 = force the batch --progress line even when
///                       stderr is not a terminal (tools/bddmin_cli)
///   BDDMIN_SHARD_COST   default shard cost budget for `batch` / `stats`
///                       (tools/bddmin_cli; engine::kDefaultShardCost
///                       when unset, overridden by --shard-cost)
///   BDDMIN_NO_SHARD     1 = disable shard scheduling (same as
///                       --no-shard; wins over BDDMIN_SHARD_COST)
///   BDDMIN_JOURNAL_GROUP_COMMIT
///                       1 = batch journal completion records per shard
///                       with one fsync per flush (same as
///                       --journal-group-commit)
///
/// Integer parsing is strict: a variable that is set but does not parse
/// as a non-negative integer is a hard error (EnvError names the
/// variable and the offending text) rather than a silently ignored
/// default — a mistyped quota must not run unbounded.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace bddmin::harness {

/// Thrown when a set environment variable fails to parse.
class EnvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The raw value of \p name, or nullopt when unset or empty.  Never
/// throws; the value is copied out so later setenv calls are safe.
[[nodiscard]] std::optional<std::string> env_string(const char* name);

/// \p name parsed as a non-negative decimal integer.  Returns
/// \p fallback when the variable is unset or empty; throws EnvError
/// ("BDDMIN_FOO: expected a non-negative integer, got 'xyz'") when it
/// is set but malformed (sign, trailing junk, overflow, non-digits).
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

}  // namespace bddmin::harness
