/// \file stats.hpp
/// \brief Aggregation of intercepted calls into the paper's Tables 3-4 and
/// Figure 3 data.
#pragma once

#include <string>
#include <vector>

#include "harness/intercept.hpp"

namespace bddmin::harness {

/// Cumulative data over one c_onset_size bucket (Table 3 column group).
struct BucketStats {
  std::string label;
  std::size_t calls = 0;
  std::vector<std::size_t> total_size;  ///< per heuristic
  std::vector<double> total_seconds;    ///< per heuristic
  std::size_t total_min = 0;            ///< cumulative best-of-all
  std::size_t total_lower_bound = 0;    ///< cumulative Theorem 7 bound
  std::vector<std::size_t> rank;        ///< 1-based rank by total_size

  /// Percentage of total_min (the paper's "% of min" column).
  [[nodiscard]] double pct_of_min(std::size_t h) const;
};

struct Table3 {
  std::vector<std::string> names;
  BucketStats all;   ///< every unfiltered call
  BucketStats low;   ///< c_onset_size < 5%
  BucketStats mid;   ///< 5%..95% (empty in the paper's runs)
  BucketStats high;  ///< c_onset_size > 95%
};

[[nodiscard]] Table3 aggregate_table3(const std::vector<std::string>& names,
                                      const std::vector<CallRecord>& records);

/// Table 4: entry (i, j) = percentage of calls where heuristic i's result
/// is strictly smaller than heuristic j's.  Row/column indices follow
/// \p names; two extra virtual rows/columns are appended for "min" and
/// "low_bd".
struct HeadToHead {
  std::vector<std::string> names;  ///< heuristics + "min" + "low_bd"
  std::vector<std::vector<double>> pct_smaller;
};

[[nodiscard]] HeadToHead head_to_head(const std::vector<std::string>& names,
                                      const std::vector<CallRecord>& records,
                                      bool restrict_to_low_bucket = false);

/// Figure 3: for one heuristic, the fraction of calls (in %) whose result
/// is within x% of min, sampled at x = 0, step, 2*step, ... , max_pct.
[[nodiscard]] std::vector<double> robustness_curve(
    const std::vector<CallRecord>& records, std::size_t heuristic,
    double step = 5.0, double max_pct = 100.0);

/// Fraction (in %) of calls on which the heuristic result equals the
/// lower bound (the paper reports 26.2% for its frontrunners).
[[nodiscard]] double lower_bound_hit_rate(const std::vector<CallRecord>& records,
                                          std::size_t heuristic);

}  // namespace bddmin::harness
