/// \file intercept.hpp
/// \brief Call interception replicating Section 4.1's methodology: every
/// minimization call of the application is treated as an EBM instance;
/// all heuristics run on it (caches flushed in between so no heuristic
/// benefits from another's memoized work), sizes and runtimes are
/// recorded, and the application receives constrain's result — exactly
/// what verify_fsm would have used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "fsm/reach.hpp"
#include "minimize/lower_bound.hpp"
#include "minimize/registry.hpp"

namespace bddmin::harness {

struct HeuristicOutcome {
  std::size_t size = 0;
  double seconds = 0.0;
  // Telemetry counter deltas over this one run (all zero when the
  // counters are compiled out).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t and_hits = 0;    ///< AND-kernel cache class (incl. leq/disjoint)
  std::uint64_t and_misses = 0;
  std::uint64_t xor_hits = 0;    ///< XOR-kernel cache class
  std::uint64_t xor_misses = 0;
  std::uint64_t steps = 0;  ///< governor steps (memo misses)
};

struct CallRecord {
  std::size_t f_size = 0;
  double c_onset = 0.0;  ///< care onset fraction in [0, 1]
  std::vector<HeuristicOutcome> outcomes;  ///< parallel to heuristic names
  std::size_t min_size = 0;                ///< best over all heuristics
  std::size_t lower_bound = 0;             ///< Theorem 7 bound
  std::size_t lb_cubes = 0;                ///< cubes examined for the bound
};

struct InterceptorOptions {
  /// Cube budget for the lower bound (the paper uses 1000; 0 disables).
  std::size_t lower_bound_cubes = 1000;
  /// Verify each heuristic result really covers [f, c] (cheap insurance;
  /// throws std::logic_error on violation).
  bool validate_covers = true;
  /// Garbage-collect (which flushes the computed caches) before each
  /// heuristic, as the paper does for fair timing.
  bool flush_between = true;
  /// BddAudit depth applied after every heuristic run (defaults to the
  /// BDDMIN_AUDIT_LEVEL environment knob, 0 = off).  Levels 1-3 audit the
  /// manager itself; level 4 additionally replaces the plain cover check
  /// with the witness-reporting contract audit.  Any finding throws
  /// std::logic_error carrying the full report.
  analysis::AuditLevel audit_level = analysis::audit_level_from_env();
};

/// Collects CallRecords from a traversal.  Plug hook() into
/// ReachOptions/EquivOptions::minimize.
class Interceptor {
 public:
  explicit Interceptor(std::vector<minimize::Heuristic> heuristics,
                       InterceptorOptions opts = {});

  [[nodiscard]] fsm::MinimizeHook hook();

  [[nodiscard]] const std::vector<CallRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<std::string> names() const;
  /// Calls excluded by the Section 4.1.2 filters (c cube / c <= f / c <= f̄
  /// / c constant).
  [[nodiscard]] std::size_t filtered_calls() const noexcept { return filtered_; }
  [[nodiscard]] std::size_t total_calls() const noexcept {
    return records_.size() + filtered_;
  }

 private:
  Edge process(Manager& mgr, Edge f, Edge c);

  std::vector<minimize::Heuristic> heuristics_;
  InterceptorOptions opts_;
  std::vector<CallRecord> records_;
  std::size_t filtered_ = 0;
};

}  // namespace bddmin::harness
