#include "bdd/ops.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/check.hpp"

namespace bddmin {
namespace {

// Cache tags are public (ops.hpp cache_tag) so the manager can classify
// cache traffic per op class; these aliases keep the recursion bodies
// readable.
constexpr std::uint32_t kOpCofactor = cache_tag::kCofactor;
constexpr std::uint32_t kOpExists = cache_tag::kExists;
constexpr std::uint32_t kOpAndExists = cache_tag::kAndExists;
constexpr std::uint32_t kOpCompose = cache_tag::kCompose;

/// Drop leading cube variables that sit above \p level in the order: they
/// cannot appear in the operand, so quantifying them is a no-op.
Edge skip_cube_above(const Manager& mgr, Edge cube, std::uint32_t level) {
  while (cube != kOne && mgr.level_of(cube) < level) cube = mgr.hi_of(cube);
  return cube;
}

}  // namespace

Edge cofactor(Manager& mgr, Edge f, std::uint32_t var, bool value) {
  if (Manager::is_const(f) || mgr.level_of(f) > mgr.level_of_var(var)) return f;
  if (mgr.var_of(f) == var) return value ? mgr.hi_of(f) : mgr.lo_of(f);
  const Edge key{(var << 1) | static_cast<std::uint32_t>(value)};
  Edge result;
  if (mgr.cache_lookup(kOpCofactor, f, key, kOne, &result)) return result;
  mgr.governor().charge_step();
  const Edge t = cofactor(mgr, mgr.hi_of(f), var, value);
  const Edge e = cofactor(mgr, mgr.lo_of(f), var, value);
  result = mgr.make_node(mgr.var_of(f), t, e);
  mgr.cache_insert(kOpCofactor, f, key, kOne, result);
  return result;
}

Edge cofactor_cube(Manager& mgr, Edge f, Edge cube) {
  BDDMIN_CHECK(cube != kZero);
  while (cube != kOne) {
    const std::uint32_t v = mgr.var_of(cube);
    const Edge hi = mgr.hi_of(cube);
    const Edge lo = mgr.lo_of(cube);
    const bool positive = lo == kZero;
    BDDMIN_DCHECK(positive || hi == kZero);  // each level of a cube kills one child
    f = cofactor(mgr, f, v, positive);
    cube = positive ? hi : lo;
  }
  return f;
}

Edge exists(Manager& mgr, Edge f, Edge cube) {
  BDDMIN_CHECK(cube != kZero);
  if (Manager::is_const(f)) return f;
  cube = skip_cube_above(mgr, cube, mgr.level_of(f));
  if (cube == kOne) return f;
  Edge result;
  if (mgr.cache_lookup(kOpExists, f, cube, kOne, &result)) return result;
  mgr.governor().charge_step();
  const std::uint32_t v = mgr.var_of(f);
  const bool quantify_here = mgr.var_of(cube) == v;
  const Edge next_cube = quantify_here ? mgr.hi_of(cube) : cube;
  const Edge t = exists(mgr, mgr.hi_of(f), next_cube);
  if (quantify_here && t == kOne) {
    result = kOne;  // short circuit: t | anything == 1
  } else {
    const Edge e = exists(mgr, mgr.lo_of(f), next_cube);
    result = quantify_here ? mgr.or_(t, e) : mgr.make_node(v, t, e);
  }
  mgr.cache_insert(kOpExists, f, cube, kOne, result);
  return result;
}

Edge forall(Manager& mgr, Edge f, Edge cube) { return !exists(mgr, !f, cube); }

Edge and_exists(Manager& mgr, Edge f, Edge g, Edge cube) {
  if (f == kZero || g == kZero) return kZero;
  if (f == kOne && g == kOne) return kOne;
  const std::uint32_t v = mgr.top_var(f, g);
  cube = skip_cube_above(mgr, cube, mgr.level_of_var(v));
  if (cube == kOne) return mgr.and_(f, g);
  if (f.bits > g.bits) std::swap(f, g);  // AND is commutative; canonical key
  Edge result;
  if (mgr.cache_lookup(kOpAndExists, f, g, cube, &result)) return result;
  mgr.governor().charge_step();
  const auto [f1, f0] = mgr.branches(f, v);
  const auto [g1, g0] = mgr.branches(g, v);
  if (mgr.var_of(cube) == v) {
    const Edge next_cube = mgr.hi_of(cube);
    const Edge t = and_exists(mgr, f1, g1, next_cube);
    result = (t == kOne) ? kOne : mgr.or_(t, and_exists(mgr, f0, g0, next_cube));
  } else {
    const Edge t = and_exists(mgr, f1, g1, cube);
    const Edge e = and_exists(mgr, f0, g0, cube);
    result = mgr.make_node(v, t, e);
  }
  mgr.cache_insert(kOpAndExists, f, g, cube, result);
  return result;
}

Edge compose(Manager& mgr, Edge f, std::uint32_t var, Edge g) {
  if (Manager::is_const(f) || mgr.level_of(f) > mgr.level_of_var(var)) return f;
  if (mgr.var_of(f) == var) return mgr.ite(g, mgr.hi_of(f), mgr.lo_of(f));
  const Edge key{var << 1};
  Edge result;
  if (mgr.cache_lookup(kOpCompose, f, g, key, &result)) return result;
  mgr.governor().charge_step();
  const Edge t = compose(mgr, mgr.hi_of(f), var, g);
  const Edge e = compose(mgr, mgr.lo_of(f), var, g);
  // g may depend on variables above f's top variable, so recombine with a
  // full ITE rather than make_node.
  result = mgr.ite(mgr.make_node(mgr.var_of(f), kOne, kZero), t, e);
  mgr.cache_insert(kOpCompose, f, g, key, result);
  return result;
}

namespace {

Edge vector_compose_rec(Manager& mgr, Edge f, std::span<const Edge> map,
                        std::unordered_map<std::uint32_t, Edge>& memo) {
  if (Manager::is_const(f)) return f;
  if (const auto it = memo.find(f.bits); it != memo.end()) return it->second;
  mgr.governor().charge_step();
  const std::uint32_t v = mgr.var_of(f);
  const Edge t = vector_compose_rec(mgr, mgr.hi_of(f), map, memo);
  const Edge e = vector_compose_rec(mgr, mgr.lo_of(f), map, memo);
  const Edge sel = (v < map.size()) ? map[v] : mgr.var_edge(v);
  const Edge result = mgr.ite(sel, t, e);
  memo.emplace(f.bits, result);
  return result;
}

}  // namespace

Edge vector_compose(Manager& mgr, Edge f, std::span<const Edge> map) {
  std::unordered_map<std::uint32_t, Edge> memo;
  return vector_compose_rec(mgr, f, map, memo);
}

std::vector<std::uint32_t> support(const Manager& mgr, Edge f) {
  // Epoch-stamped scratch instead of a hash set: marking a node is one
  // store, and begin() is O(1) (same for the traversals below).
  VisitScratch& visited = mgr.visit_scratch();
  visited.begin(mgr.allocated_nodes());
  std::vector<std::uint32_t> vars;
  std::vector<Edge> stack{f};
  while (!stack.empty()) {
    const Edge e = stack.back();
    stack.pop_back();
    if (Manager::is_const(e) || visited.test_and_set(e.index())) continue;
    vars.push_back(mgr.var_of(e));
    stack.push_back(mgr.hi_of(e));
    stack.push_back(mgr.lo_of(e));
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

Edge support_cube(Manager& mgr, Edge f) {
  const std::vector<std::uint32_t> vars = support(mgr, f);
  return positive_cube(mgr, vars);
}

bool depends_on(const Manager& mgr, Edge f, std::uint32_t var) {
  VisitScratch& visited = mgr.visit_scratch();
  visited.begin(mgr.allocated_nodes());
  std::vector<Edge> stack{f};
  while (!stack.empty()) {
    const Edge e = stack.back();
    stack.pop_back();
    if (Manager::is_const(e) || mgr.level_of(e) > mgr.level_of_var(var)) continue;
    if (visited.test_and_set(e.index())) continue;
    if (mgr.var_of(e) == var) return true;
    stack.push_back(mgr.hi_of(e));
    stack.push_back(mgr.lo_of(e));
  }
  return false;
}

namespace {

/// Fraction of the full space satisfying the function rooted at a regular
/// edge; complements handled by p(!e) = 1 - p(e).  The memo is the
/// manager's visit scratch keyed by node index (the memoized edge is
/// always regular, so the index identifies it).
double sat_fraction(const Manager& mgr, Edge e, VisitScratch& memo) {
  const bool neg = e.complemented();
  const Edge r = e.regular();
  double p;
  if (r == kOne) {
    p = 1.0;
  } else if (memo.has(r.index())) {
    p = memo.value(r.index());
  } else {
    p = 0.5 * sat_fraction(mgr, mgr.hi_of(r), memo) +
        0.5 * sat_fraction(mgr, mgr.lo_of(r), memo);
    memo.set_value(r.index(), p);
  }
  return neg ? 1.0 - p : p;
}

}  // namespace

double sat_count(const Manager& mgr, Edge f, unsigned num_vars) {
  VisitScratch& memo = mgr.visit_scratch();
  memo.begin(mgr.allocated_nodes(), /*with_values=*/true);
  return sat_fraction(mgr, f, memo) * std::ldexp(1.0, static_cast<int>(num_vars));
}

double sat_fraction(const Manager& mgr, Edge f) {
  VisitScratch& memo = mgr.visit_scratch();
  memo.begin(mgr.allocated_nodes(), /*with_values=*/true);
  return sat_fraction(mgr, f, memo);
}

std::size_t count_nodes(const Manager& mgr, Edge f) {
  return count_nodes(mgr, std::span<const Edge>{&f, 1});
}

std::size_t count_nodes(const Manager& mgr, std::span<const Edge> roots) {
  VisitScratch& visited = mgr.visit_scratch();
  visited.begin(mgr.allocated_nodes());
  std::size_t count = 1;  // the terminal, counted whether or not reached
  std::vector<Edge> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const Edge e = stack.back();
    stack.pop_back();
    if (Manager::is_const(e) || visited.test_and_set(e.index())) continue;
    ++count;
    stack.push_back(mgr.hi_of(e));
    stack.push_back(mgr.lo_of(e));
  }
  return count;
}

std::size_t count_nodes_below(const Manager& mgr, Edge f, std::uint32_t level) {
  VisitScratch& visited = mgr.visit_scratch();
  visited.begin(mgr.allocated_nodes());
  std::size_t below = 1;  // the terminal node is below every level
  std::vector<Edge> stack{f};
  while (!stack.empty()) {
    const Edge e = stack.back();
    stack.pop_back();
    if (Manager::is_const(e) || visited.test_and_set(e.index())) continue;
    if (mgr.level_of(e) > level) ++below;
    stack.push_back(mgr.hi_of(e));
    stack.push_back(mgr.lo_of(e));
  }
  return below;
}

bool eval(const Manager& mgr, Edge f, const std::vector<bool>& assignment) {
  while (!Manager::is_const(f)) {
    const std::uint32_t v = mgr.var_of(f);
    BDDMIN_DCHECK(v < assignment.size());
    f = assignment[v] ? mgr.hi_of(f) : mgr.lo_of(f);
  }
  return f == kOne;
}

Edge cube_of(Manager& mgr, std::span<const std::uint32_t> vars,
             const std::vector<bool>& phase) {
  BDDMIN_CHECK(vars.size() == phase.size());
  std::vector<std::size_t> order(vars.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mgr.level_of_var(vars[a]) > mgr.level_of_var(vars[b]);
  });
  Edge cube = kOne;  // build bottom-up so each step is a single make_node
  for (const std::size_t i : order) {
    cube = phase[i] ? mgr.make_node(vars[i], cube, kZero)
                    : mgr.make_node(vars[i], kZero, cube);
  }
  return cube;
}

Edge positive_cube(Manager& mgr, std::span<const std::uint32_t> vars) {
  const std::vector<bool> phase(vars.size(), true);
  return cube_of(mgr, vars, phase);
}

bool is_cube(const Manager& mgr, Edge f) {
  if (f == kZero) return false;
  while (f != kOne) {
    const Edge hi = mgr.hi_of(f);
    const Edge lo = mgr.lo_of(f);
    if (lo == kZero) {
      f = hi;
    } else if (hi == kZero) {
      f = lo;
    } else {
      return false;  // both children alive: more than one path to 1
    }
  }
  return true;
}

}  // namespace bddmin
