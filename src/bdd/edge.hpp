/// \file edge.hpp
/// \brief Tagged edge handles into a BDD node table.
///
/// The package follows Brace/Rudell/Bryant (DAC'90): every edge carries a
/// complement bit in its least significant bit, so negation is O(1) and a
/// function and its complement share one subgraph.  The paper under
/// reproduction (Shiple et al., DAC'94) assumes exactly this representation;
/// the complement-match heuristic variants (osm_cp, osm_bt, tsm_cp) are
/// meaningless without it.
#pragma once

#include <cstdint>
#include <functional>

namespace bddmin {

/// A (possibly complemented) reference to a BDD node.
///
/// `bits = (node_index << 1) | complement`.  Edges are plain values: they do
/// not own the node and do not affect reference counts.  Use bddmin::Bdd for
/// an owning RAII handle.
struct Edge {
  std::uint32_t bits = 0;

  /// Index of the referenced node in the manager's node table.
  [[nodiscard]] constexpr std::uint32_t index() const noexcept { return bits >> 1; }
  /// True if this edge complements the function rooted at the node.
  [[nodiscard]] constexpr bool complemented() const noexcept { return (bits & 1u) != 0; }
  /// The same node referenced without a complement.
  [[nodiscard]] constexpr Edge regular() const noexcept { return Edge{bits & ~1u}; }
  /// Boolean negation: flips the complement bit.
  [[nodiscard]] constexpr Edge operator!() const noexcept { return Edge{bits ^ 1u}; }
  /// Complement this edge iff \p flip is true.
  [[nodiscard]] constexpr Edge complement_if(bool flip) const noexcept {
    return Edge{bits ^ static_cast<std::uint32_t>(flip)};
  }

  friend constexpr bool operator==(Edge, Edge) noexcept = default;
  friend constexpr auto operator<=>(Edge, Edge) noexcept = default;
};

/// The constant TRUE function (uncomplemented edge to the terminal node).
inline constexpr Edge kOne{0};
/// The constant FALSE function (complemented edge to the terminal node).
inline constexpr Edge kZero{1};

/// Variable index used for the terminal node; compares above all real
/// variables so `min(var, ...)` picks the topmost decision variable.
inline constexpr std::uint32_t kConstVar = 0xFFFF'FFFFu;

/// Sentinel "no node" index for intrusive hash chains.
inline constexpr std::uint32_t kNilIndex = 0xFFFF'FFFFu;

}  // namespace bddmin

template <>
struct std::hash<bddmin::Edge> {
  std::size_t operator()(bddmin::Edge e) const noexcept {
    return std::hash<std::uint32_t>{}(e.bits);
  }
};
