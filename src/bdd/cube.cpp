#include "bdd/cube.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/check.hpp"

namespace bddmin {
namespace {

struct CubeWalker {
  const Manager& mgr;
  const std::function<bool(const CubeVec&)>& visitor;
  std::size_t max_cubes;
  std::size_t visited = 0;
  CubeVec cube;

  /// Returns false to abort the whole enumeration.
  bool walk(Edge f) {
    if (f == kZero) return true;
    if (f == kOne) {
      ++visited;
      if (!visitor(cube)) return false;
      return max_cubes == 0 || visited < max_cubes;
    }
    const std::uint32_t v = mgr.var_of(f);
    cube[v] = 1;
    const bool go_on = walk(mgr.hi_of(f));
    if (!go_on) {
      cube[v] = kAbsentLiteral;
      return false;
    }
    cube[v] = 0;
    const bool go_on2 = walk(mgr.lo_of(f));
    cube[v] = kAbsentLiteral;
    return go_on2;
  }
};

}  // namespace

std::size_t for_each_cube(const Manager& mgr, Edge f, unsigned num_vars,
                          std::size_t max_cubes,
                          const std::function<bool(const CubeVec&)>& visitor) {
  CubeWalker walker{mgr, visitor, max_cubes, 0,
                    CubeVec(num_vars, kAbsentLiteral)};
  walker.walk(f);
  return walker.visited;
}

std::vector<Edge> collect_cubes(Manager& mgr, Edge f, std::size_t max_cubes) {
  std::vector<Edge> cubes;
  for_each_cube(mgr, f, mgr.num_vars(), max_cubes, [&](const CubeVec& cube) {
    cubes.push_back(cube_to_edge(mgr, cube));
    return true;
  });
  return cubes;
}

Edge cube_to_edge(Manager& mgr, const CubeVec& cube) {
  // Build bottom-up in order position, so each step is one make_node.
  std::vector<std::uint32_t> vars;
  for (std::size_t v = 0; v < cube.size(); ++v) {
    if (cube[v] != kAbsentLiteral) vars.push_back(static_cast<std::uint32_t>(v));
  }
  std::sort(vars.begin(), vars.end(), [&](std::uint32_t a, std::uint32_t b) {
    return mgr.level_of_var(a) > mgr.level_of_var(b);
  });
  Edge e = kOne;
  for (const std::uint32_t v : vars) {
    e = cube[v] ? mgr.make_node(v, e, kZero) : mgr.make_node(v, kZero, e);
  }
  return e;
}

std::size_t cube_literal_count(const CubeVec& cube) {
  std::size_t n = 0;
  for (const std::uint8_t lit : cube) n += lit != kAbsentLiteral;
  return n;
}

namespace {

constexpr std::size_t kUnreachable = SIZE_MAX;

/// Fewest literals on any path from `e` to the constant 1 (complement
/// parity folded into the edge).  Memoized per (node, parity).
std::size_t shortest_to_one(const Manager& mgr, Edge e,
                            std::unordered_map<std::uint32_t, std::size_t>& memo) {
  if (e == kOne) return 0;
  if (e == kZero) return kUnreachable;
  if (const auto it = memo.find(e.bits); it != memo.end()) return it->second;
  const std::size_t hi = shortest_to_one(mgr, mgr.hi_of(e), memo);
  const std::size_t lo = shortest_to_one(mgr, mgr.lo_of(e), memo);
  const std::size_t best = std::min(hi, lo);
  const std::size_t result =
      best == kUnreachable ? kUnreachable : best + 1;
  memo.emplace(e.bits, result);
  return result;
}

}  // namespace

CubeVec largest_cube(const Manager& mgr, Edge f, unsigned num_vars) {
  BDDMIN_CHECK(f != kZero);
  std::unordered_map<std::uint32_t, std::size_t> memo;
  (void)shortest_to_one(mgr, f, memo);
  CubeVec cube(num_vars, kAbsentLiteral);
  Edge e = f;
  while (e != kOne) {
    const Edge hi = mgr.hi_of(e);
    const Edge lo = mgr.lo_of(e);
    const std::size_t via_hi = shortest_to_one(mgr, hi, memo);
    const std::size_t via_lo = shortest_to_one(mgr, lo, memo);
    const bool take_hi = via_hi <= via_lo;
    cube[mgr.var_of(e)] = take_hi ? 1 : 0;
    e = take_hi ? hi : lo;
  }
  return cube;
}

}  // namespace bddmin
