/// \file cube.hpp
/// \brief Cube (path) enumeration over BDDs.
///
/// A cube is stored positionally: entry v is 0 or 1 when literal x_v occurs
/// in that phase and kAbsentLiteral when x_v does not appear.  The paper
/// enumerates cubes of the care function this way to compute its Theorem 7
/// lower bound ("traversing its BDD in a depth-first order, returning a
/// cube each time the constant 1 is reached").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bdd/manager.hpp"

namespace bddmin {

/// Literal value marking "variable absent from this cube".
inline constexpr std::uint8_t kAbsentLiteral = 2;

/// Positional cube: cube[v] in {0, 1, kAbsentLiteral}.
using CubeVec = std::vector<std::uint8_t>;

/// Depth-first enumeration of the cubes (1-paths) of f.  The visitor may
/// return false to stop early; at most \p max_cubes cubes are visited
/// (0 = unlimited).  Returns the number of cubes visited.
std::size_t for_each_cube(const Manager& mgr, Edge f, unsigned num_vars,
                          std::size_t max_cubes,
                          const std::function<bool(const CubeVec&)>& visitor);

/// Collect up to \p max_cubes cubes of f as BDD edges (0 = unlimited).
[[nodiscard]] std::vector<Edge> collect_cubes(Manager& mgr, Edge f,
                                              std::size_t max_cubes);

/// Build the conjunction-of-literals BDD for a positional cube.
[[nodiscard]] Edge cube_to_edge(Manager& mgr, const CubeVec& cube);

/// Number of literals in a positional cube.
[[nodiscard]] std::size_t cube_literal_count(const CubeVec& cube);

/// A largest cube of f (a 1-path with the fewest literals), found by
/// shortest-path dynamic programming over the graph — the paper's
/// Section 4.1.1 "look for large cubes by finding short paths from the
/// root to the constant 1".  Precondition: f != 0.
[[nodiscard]] CubeVec largest_cube(const Manager& mgr, Edge f,
                                   unsigned num_vars);

}  // namespace bddmin
