/// \file bdd.hpp
/// \brief RAII handle over a Manager edge with operator sugar.
///
/// A Bdd keeps its root referenced for as long as it is alive, so the root
/// (and everything under it) survives Manager::garbage_collect().  All
/// operators delegate to the owning manager; mixing handles from different
/// managers is a logic error (guarded by BDDMIN_DCHECK).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/check.hpp"
#include "bdd/manager.hpp"

namespace bddmin {

class Bdd {
 public:
  Bdd() = default;
  Bdd(Manager& mgr, Edge e) : mgr_(&mgr), e_(e) { mgr_->ref(e_); }
  Bdd(const Bdd& o) : mgr_(o.mgr_), e_(o.e_) {
    if (mgr_) mgr_->ref(e_);
  }
  Bdd(Bdd&& o) noexcept : mgr_(std::exchange(o.mgr_, nullptr)), e_(o.e_) {}
  Bdd& operator=(const Bdd& o) {
    Bdd tmp(o);
    swap(tmp);
    return *this;
  }
  Bdd& operator=(Bdd&& o) noexcept {
    swap(o);
    return *this;
  }
  ~Bdd() {
    if (mgr_) mgr_->deref(e_);
  }
  void swap(Bdd& o) noexcept {
    std::swap(mgr_, o.mgr_);
    std::swap(e_, o.e_);
  }

  [[nodiscard]] Edge edge() const noexcept { return e_; }
  [[nodiscard]] Manager* manager() const noexcept { return mgr_; }
  [[nodiscard]] bool valid() const noexcept { return mgr_ != nullptr; }
  [[nodiscard]] bool is_one() const noexcept { return e_ == kOne; }
  [[nodiscard]] bool is_zero() const noexcept { return e_ == kZero; }
  [[nodiscard]] bool is_const() const noexcept { return Manager::is_const(e_); }
  /// Node count of this function, including the terminal (paper's |f|).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] Bdd operator!() const { return Bdd(*mgr_, !e_); }
  [[nodiscard]] Bdd operator&(const Bdd& o) const {
    BDDMIN_DCHECK(mgr_ == o.mgr_);
    return Bdd(*mgr_, mgr_->and_(e_, o.e_));
  }
  [[nodiscard]] Bdd operator|(const Bdd& o) const {
    BDDMIN_DCHECK(mgr_ == o.mgr_);
    return Bdd(*mgr_, mgr_->or_(e_, o.e_));
  }
  [[nodiscard]] Bdd operator^(const Bdd& o) const {
    BDDMIN_DCHECK(mgr_ == o.mgr_);
    return Bdd(*mgr_, mgr_->xor_(e_, o.e_));
  }
  /// Set difference / inhibition: this AND NOT other.
  [[nodiscard]] Bdd operator-(const Bdd& o) const {
    BDDMIN_DCHECK(mgr_ == o.mgr_);
    return Bdd(*mgr_, mgr_->diff(e_, o.e_));
  }
  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }
  Bdd& operator^=(const Bdd& o) { return *this = *this ^ o; }
  Bdd& operator-=(const Bdd& o) { return *this = *this - o; }

  [[nodiscard]] Bdd ite(const Bdd& g, const Bdd& h) const {
    BDDMIN_DCHECK(mgr_ == g.mgr_ && mgr_ == h.mgr_);
    return Bdd(*mgr_, mgr_->ite(e_, g.e_, h.e_));
  }
  /// Functional implication test: this <= other everywhere.
  [[nodiscard]] bool leq(const Bdd& o) const {
    BDDMIN_DCHECK(mgr_ == o.mgr_);
    return mgr_->leq(e_, o.e_);
  }

  friend bool operator==(const Bdd& a, const Bdd& b) noexcept {
    return a.mgr_ == b.mgr_ && a.e_ == b.e_;
  }

 private:
  Manager* mgr_ = nullptr;
  Edge e_ = kZero;
};

/// Keeps a dynamic set of raw edges referenced (e.g. across a GC) without
/// the per-handle overhead of Bdd; useful inside algorithms.
class EdgePin {
 public:
  explicit EdgePin(Manager& mgr) : mgr_(&mgr) {}
  EdgePin(const EdgePin&) = delete;
  EdgePin& operator=(const EdgePin&) = delete;
  ~EdgePin() {
    for (const Edge e : pinned_) mgr_->deref(e);
  }
  Edge pin(Edge e) {
    mgr_->ref(e);
    pinned_.push_back(e);
    return e;
  }

 private:
  Manager* mgr_;
  std::vector<Edge> pinned_;
};

}  // namespace bddmin
