/// \file truth_table.hpp
/// \brief Bridge between small functions (n <= 6 variables) and 64-bit
/// truth tables.  Used as the exhaustive oracle by the test suite and by
/// the exact minimizer.
///
/// Convention: minterm index m encodes the assignment where variable x_v
/// takes bit v of m (x0 is the least significant bit); bit m of the truth
/// table is the function value at that assignment.
#pragma once

#include <cstdint>

#include "bdd/manager.hpp"

namespace bddmin {

/// Maximum variable count representable in a 64-bit truth table.
inline constexpr unsigned kMaxTtVars = 6;

/// Mask selecting the 2^n valid truth-table bits.
[[nodiscard]] constexpr std::uint64_t tt_mask(unsigned n) noexcept {
  return (n >= kMaxTtVars) ? ~0ull : ((1ull << (1u << n)) - 1);
}

/// Build the BDD of a truth table over n variables.
[[nodiscard]] Edge from_tt(Manager& mgr, std::uint64_t tt, unsigned n);

/// Evaluate a BDD into a truth table over n variables (f must only depend
/// on x0..x(n-1)).
[[nodiscard]] std::uint64_t to_tt(const Manager& mgr, Edge f, unsigned n);

/// Size |g| of the ROBDD of a truth table without polluting a long-lived
/// manager (builds in a scratch manager).
[[nodiscard]] std::size_t tt_bdd_size(std::uint64_t tt, unsigned n);

}  // namespace bddmin
