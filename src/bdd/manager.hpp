/// \file manager.hpp
/// \brief ROBDD manager: node storage, unique table, computed cache, ITE,
/// and dynamic variable reordering.
///
/// A single Manager owns all nodes for one variable order, mirroring the
/// package of Brace/Rudell/Bryant used in the DAC'94 paper.  Reduction is
/// implicit: make_node() applies the deletion rule (equal children) and
/// the merging rule (per-variable unique subtables), and keeps the
/// canonical complement-edge invariant (stored `hi` edges are never
/// complemented).
///
/// Variables vs levels: a variable index is a stable *name*; its position
/// in the order is its *level* (level 0 topmost).  Initially variable v
/// sits at level v.  Rudell-style sifting (reorder_sift) and set_order()
/// permute levels in place: every existing edge keeps denoting the same
/// function over the same variable names.
///
/// Memory discipline: plain Edge values are unprotected.  Operations never
/// trigger garbage collection on their own; dead intermediate nodes
/// accumulate until garbage_collect() is called explicitly (the experiment
/// harness does so between heuristics, exactly as the paper flushes caches
/// for fair timing).  Hold roots across a GC with ref()/deref() or the
/// RAII bddmin::Bdd handle.  Reordering additionally requires that all
/// *live* functions are reachable from referenced roots.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "analysis/thread_annotations.hpp"
#include "bdd/cache_tags.hpp"
#include "bdd/edge.hpp"
#include "bdd/governor.hpp"
#include "bdd/node.hpp"
#include "telemetry/counters.hpp"

namespace bddmin {

namespace analysis {
struct ManagerAccess;  // read/write introspection shim for BddAudit
}  // namespace analysis

/// Epoch-stamped visited scratch for the read-only traversals in
/// bdd/ops.cpp (support, count_nodes, depends_on, sat_fraction, ...).
/// Marking a node visited is one store into a per-manager vector indexed
/// by node slot — no hashing, no per-traversal allocation once the vector
/// has grown to the table size.  begin() starts a new traversal in O(1) by
/// bumping the epoch; the rare epoch wrap clears the stamps.
///
/// One traversal at a time per manager: begin() invalidates every stamp of
/// the previous traversal.  The ops.cpp users never nest, and a Manager is
/// single-threaded by contract, so this is not a restriction in practice.
class VisitScratch {
 public:
  /// Start a new traversal over a node table of \p num_nodes slots.
  /// \p with_values also sizes the numeric side-car (sat_fraction memo).
  void begin(std::size_t num_nodes, bool with_values = false) {
    if (stamp_.size() < num_nodes) stamp_.resize(num_nodes, 0);
    if (with_values && value_.size() < num_nodes) value_.resize(num_nodes);
    if (++epoch_ == 0) {  // wrapped: all stamps are ambiguous, clear them
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }
  /// True if \p index was already visited this traversal; marks it either way.
  [[nodiscard]] bool test_and_set(std::uint32_t index) noexcept {
    if (stamp_[index] == epoch_) return true;
    stamp_[index] = epoch_;
    return false;
  }
  /// True if \p index carries a value stored this traversal.
  [[nodiscard]] bool has(std::uint32_t index) const noexcept {
    return stamp_[index] == epoch_;
  }
  [[nodiscard]] double value(std::uint32_t index) const noexcept {
    return value_[index];
  }
  /// Store a memoized value for \p index (marks it visited).
  void set_value(std::uint32_t index, double v) noexcept {
    stamp_[index] = epoch_;
    value_[index] = v;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<double> value_;  // sized lazily, only for value traversals
  std::uint32_t epoch_ = 0;
};

/// Concurrency contract: a Manager is a *single-owner* resource — exactly
/// one thread may touch a given instance (and everything reachable from
/// it: Edges, the governor, the counter bank) at any time.  The batch
/// engine honors this by giving each worker a private pooled Manager and
/// exchanging only manager-independent Job snapshots.  The class is
/// declared a Clang capability so that when the shared concurrent manager
/// lands, cross-thread use has to be expressed as an explicit capability
/// transfer (REQUIRES/ACQUIRE at the call sites) instead of compiling
/// silently; until then no code locks a Manager and the annotation is
/// purely declarative.  See docs/CONCURRENCY.md.
class BDDMIN_CAPABILITY("Manager") Manager {
 public:
  /// Largest accepted cache_log2; beyond it the constructor throws
  /// bddmin::OutOfMemory instead of attempting (or silently overcommitting)
  /// a multi-gigabyte cache allocation.
  static constexpr unsigned kMaxCacheLog2 = 26;
  /// Adaptive growth headroom: by default the cache may double until it
  /// reaches `min(cache_log2 + kCacheGrowthHeadroom, kMaxCacheLog2)`;
  /// override with set_cache_growth_limit().
  static constexpr unsigned kCacheGrowthHeadroom = 4;

  /// Create a manager over \p num_vars variables.
  /// \param cache_log2 log2 of the computed-cache slot count; must be at
  /// most kMaxCacheLog2 (throws bddmin::OutOfMemory otherwise).  Values
  /// below 2 are clamped to 2 (one set of the 2-way cache is 2 slots).
  explicit Manager(unsigned num_vars, unsigned cache_log2 = 18);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Tear the manager down to the terminal-only state — as if freshly
  /// constructed over \p num_vars variables — without reallocating the
  /// node arena or the computed cache.  The node vector keeps its
  /// capacity, subtable bucket arrays keep their size, the cache is
  /// invalidated in O(1) by an epoch bump and, if adaptive growth had
  /// enlarged it, trimmed back to its construction-time size so behaviour
  /// after reset() is bit-for-bit that of a fresh manager (the batch
  /// engine's determinism contract relies on this).  Telemetry counters,
  /// the governor's step/peak-live trackers and gc_runs() restart at zero.
  /// All previously issued Edges are invalidated.
  void reset(unsigned num_vars);

  // ---- Variables and levels --------------------------------------------
  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  /// Append a fresh variable at the bottom of the order; returns its index.
  unsigned add_var();
  /// Level currently occupied by variable \p var (0 = topmost).
  [[nodiscard]] std::uint32_t level_of_var(std::uint32_t var) const noexcept {
    return var_to_level_[var];
  }
  /// Variable sitting at \p level.
  [[nodiscard]] std::uint32_t var_at_level(std::uint32_t level) const noexcept {
    return level_to_var_[level];
  }
  /// Level of an edge's top variable; constants sit below everything
  /// (kConstVar, which compares greater than every real level).
  [[nodiscard]] std::uint32_t level_of(Edge e) const noexcept {
    const std::uint32_t v = var_of(e);
    return v == kConstVar ? kConstVar : var_to_level_[v];
  }
  /// The topmost (smallest-level) variable among the two edges' top
  /// variables; kConstVar if both are constants.
  [[nodiscard]] std::uint32_t top_var(Edge a, Edge b) const noexcept {
    return level_of(a) <= level_of(b) ? var_of(a) : var_of(b);
  }
  [[nodiscard]] std::uint32_t top_var(Edge a, Edge b, Edge c) const noexcept {
    const Edge ab = level_of(a) <= level_of(b) ? a : b;
    return top_var(ab, c);
  }

  // ---- Structural access ---------------------------------------------
  [[nodiscard]] static Edge one() noexcept { return kOne; }
  [[nodiscard]] static Edge zero() noexcept { return kZero; }
  /// The single-variable function x_v.
  [[nodiscard]] Edge var_edge(std::uint32_t v);
  /// The complemented literal !x_v.
  [[nodiscard]] Edge nvar_edge(std::uint32_t v);

  [[nodiscard]] std::uint32_t var_of(Edge e) const noexcept { return nodes_[e.index()].var; }
  [[nodiscard]] static bool is_const(Edge e) noexcept { return e.index() == 0; }
  /// Cofactor at this edge's own top variable set to 1 (complement pushed).
  [[nodiscard]] Edge hi_of(Edge e) const noexcept {
    return nodes_[e.index()].hi.complement_if(e.complemented());
  }
  /// Cofactor at this edge's own top variable set to 0 (complement pushed).
  [[nodiscard]] Edge lo_of(Edge e) const noexcept {
    return nodes_[e.index()].lo.complement_if(e.complemented());
  }
  /// {hi, lo} cofactors of \p f with respect to variable \p v: if f's top
  /// variable is v the children are returned, otherwise {f, f}.  This is
  /// the paper's `bdd_get_branches` keeping lock-step traversals aligned.
  [[nodiscard]] std::pair<Edge, Edge> branches(Edge f, std::uint32_t v) const noexcept {
    if (var_of(f) == v) return {hi_of(f), lo_of(f)};
    return {f, f};
  }
  /// Find-or-create the reduced node (var, hi, lo).  Applies the deletion
  /// rule and canonicalizes complement edges; the result may be an edge to
  /// an existing node.  Precondition: var's level is above both children.
  [[nodiscard]] Edge make_node(std::uint32_t var, Edge hi, Edge lo);

  // ---- Boolean operations ---------------------------------------------
  [[nodiscard]] Edge ite(Edge f, Edge g, Edge h);
  /// Specialized conjunction apply: two-operand recursion with commutative
  /// key canonicalization and its own cache tag, bypassing the ITE
  /// standard-triple normalizer.  Semantically identical to
  /// `ite(f, g, zero())`.
  [[nodiscard]] Edge and_kernel(Edge f, Edge g);
  /// Specialized symmetric-difference apply; semantically identical to
  /// `ite(f, !g, g)`.  Output complements are canonicalized so (f, g),
  /// (!f, g), (f, !g), (!f, !g) all share one cache entry.
  [[nodiscard]] Edge xor_kernel(Edge f, Edge g);
  /// The two-operand connectives route onto the kernels via De Morgan /
  /// complement identities; `ite` remains for genuine three-operand calls.
  [[nodiscard]] Edge and_(Edge f, Edge g) { return and_kernel(f, g); }
  [[nodiscard]] Edge or_(Edge f, Edge g) { return !and_kernel(!f, !g); }
  [[nodiscard]] Edge xor_(Edge f, Edge g) { return xor_kernel(f, g); }
  [[nodiscard]] Edge xnor_(Edge f, Edge g) { return !xor_kernel(f, g); }
  [[nodiscard]] Edge diff(Edge f, Edge g) { return and_kernel(f, !g); }
  [[nodiscard]] Edge implies(Edge f, Edge g) { return !and_kernel(f, !g); }
  /// f <= g as functions (f implies g everywhere).  Early-terminating:
  /// walks f & !g and stops at the first path reaching 1 instead of
  /// materializing the difference BDD.
  [[nodiscard]] bool leq(Edge f, Edge g) { return disjoint(f, !g); }
  /// f and g have no common minterm.  Early-terminating like leq(); shares
  /// cache entries with and_kernel (a disjoint subproof is an AND->0
  /// result and vice versa).
  [[nodiscard]] bool disjoint(Edge f, Edge g);

  // ---- Reference counting & garbage collection -------------------------
  void ref(Edge e) noexcept;
  void deref(Edge e) noexcept;
  /// Sweep all nodes with a zero reference count (cascading to children),
  /// clear the computed cache, and recycle indices.  Returns nodes freed.
  std::size_t garbage_collect();
  /// Drop all memoized operation results (the paper's "flush the caches").
  void clear_caches() noexcept;

  [[nodiscard]] std::size_t live_nodes() const noexcept { return live_count_; }
  [[nodiscard]] std::size_t dead_nodes() const noexcept { return dead_count_; }
  [[nodiscard]] std::size_t allocated_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::uint64_t gc_runs() const noexcept { return gc_runs_; }
  /// Nodes currently labelled with \p var (live or dead).
  [[nodiscard]] std::size_t nodes_at_var(std::uint32_t var) const noexcept {
    return subtables_[var].count;
  }
  /// Total nodes in the unique tables (live or dead, excl. terminal).
  /// O(1): a running total maintained at subtable link/unlink (the tier-1
  /// audit cross-checks it against the per-variable counts).
  [[nodiscard]] std::size_t unique_size() const noexcept { return unique_total_; }

  // ---- Dynamic reordering ----------------------------------------------
  /// Swap the variables at \p level and level+1 in place: every existing
  /// edge keeps its function.  Returns the table-size delta.
  std::ptrdiff_t swap_adjacent_levels(std::uint32_t level);
  /// Sift a single variable to its locally optimal level (Rudell).
  void sift_var(std::uint32_t var, double max_growth = 1.2);
  /// Sift all variables once, largest subtable first.  Dead nodes are
  /// collected first.  Returns the resulting unique table size.
  std::size_t reorder_sift(double max_growth = 1.2);
  /// Establish an explicit order: \p order lists variables top to bottom.
  void set_order(std::span<const std::uint32_t> order);
  /// Current order, top to bottom.
  [[nodiscard]] std::vector<std::uint32_t> current_order() const {
    return level_to_var_;
  }

  // ---- Resource governance ---------------------------------------------
  /// Effort limits and peak-live telemetry (see bdd/governor.hpp).  Install
  /// a budget with `mgr.governor().set_limits({...})`; operations then abort
  /// by throwing bddmin::ResourceExhausted when a limit trips, leaving the
  /// manager structurally consistent and reusable (partial results are dead
  /// nodes, reclaimed by the next garbage_collect()).
  [[nodiscard]] ResourceGovernor& governor() noexcept { return governor_; }
  [[nodiscard]] const ResourceGovernor& governor() const noexcept {
    return governor_;
  }

  // ---- Telemetry --------------------------------------------------------
  /// Snapshot of this manager's event counters (unique-table traffic,
  /// computed-cache hits/misses per op class, GC, sifting, governor
  /// steps).  Deterministic: counts structural events, never time.
  /// Measure an operation as `after - before`; all zeros when compiled
  /// out (-DBDDMIN_TELEMETRY=OFF).  See telemetry/counters.hpp.
  [[nodiscard]] telemetry::CounterSnapshot telemetry() const noexcept {
    return counters_.snapshot();
  }

  // ---- Computed cache (shared with client algorithms) ------------------
  /// Operation tags below this value are reserved for the manager itself;
  /// client algorithms (the minimization heuristics) use tags >= this.
  /// Every tag value lives in bdd/cache_tags.hpp — the single registry —
  /// never as a local constant (lint rule R2).
  static constexpr std::uint32_t kUserOpBase = cache_tag::kUserBase;
  [[nodiscard]] bool cache_lookup(std::uint32_t op, Edge a, Edge b, Edge c,
                                  Edge* out) const noexcept;
  void cache_insert(std::uint32_t op, Edge a, Edge b, Edge c, Edge result) noexcept;
  /// log2 of the current computed-cache slot count.  Starts at the
  /// constructor's cache_log2 and may rise via adaptive growth: every 4096
  /// inserts the manager checks whether the recent miss rate is >= 50% and
  /// at least one insert per slot has happened since the last resize, and
  /// if so doubles the cache (rehashing live entries, so memoized results
  /// survive a resize mid-recursion).  Growth is deterministic — it depends
  /// only on the operation sequence — and allocation failure quietly
  /// disables it (cache_insert stays noexcept).
  [[nodiscard]] unsigned cache_log2() const noexcept { return cache_log2_; }
  /// Cap adaptive growth at `1 << max_log2` slots; clamped to
  /// [cache_log2(), kMaxCacheLog2].  Pass the current cache_log2() to
  /// freeze the cache at its present size.
  void set_cache_growth_limit(unsigned max_log2) noexcept;

  // ---- Traversal scratch -------------------------------------------------
  /// Epoch-stamped visited scratch shared by the read-only traversals in
  /// bdd/ops.cpp.  Mutable through a const Manager: scratch state is not
  /// logical state.  One traversal at a time (begin() invalidates the
  /// previous one).
  [[nodiscard]] VisitScratch& visit_scratch() const noexcept {
    return visit_scratch_;
  }

  // ---- Introspection for debugging --------------------------------------
  [[nodiscard]] const Node& node_at(std::uint32_t index) const { return nodes_[index]; }
  /// Structural invariant check (canonical hi edges, ordered levels,
  /// consistent subtable membership, ref-count and live/dead accounting);
  /// throws std::logic_error on the first failure.  Thin wrapper over the
  /// BddAudit structural and ref-count passes (analysis/audit.hpp); run
  /// `analysis::audit_manager` directly for a full report instead of a
  /// first-failure throw.
  void check_invariants() const;

 private:
  friend struct analysis::ManagerAccess;

  struct CacheEntry {
    std::uint64_t k1 = ~0ull;   // (op << 32) | a.bits; ~0 marks an empty slot
    std::uint64_t k2 = 0;       // (b.bits << 32) | c.bits
    std::uint64_t epoch = 0;    // entries from older epochs are invalid
    Edge result{};
  };

  /// One 2-way set, padded and aligned to a single 64-byte cache line so a
  /// lookup or insert never touches more memory than the old direct-mapped
  /// cache did, no matter which way it lands on.
  struct alignas(64) CacheSet {
    CacheEntry way[2];
  };
  static_assert(sizeof(CacheSet) == 64);

  /// Per-variable unique subtable (open hashing, chained via Node::next).
  struct SubTable {
    std::vector<std::uint32_t> buckets;
    std::size_t count = 0;
  };

  [[nodiscard]] std::uint32_t unique_insert(std::uint32_t var, Edge hi, Edge lo);
  void subtable_unlink(std::uint32_t index);
  void subtable_link(std::uint32_t index);
  void grow_buckets(SubTable& table);
  [[nodiscard]] static std::size_t node_hash(Edge hi, Edge lo) noexcept;
  [[nodiscard]] bool disjoint_rec(Edge f, Edge g);
  void maybe_grow_cache() noexcept;
  void grow_cache() noexcept;

  /// Precomputed cache key: the recursions hash once, look up, recurse and
  /// insert under the same key without rehashing.  Only the full 64-bit
  /// hash is carried — never a set index — because a nested call can grow
  /// the cache between the lookup and the insert, changing the mask.
  struct CacheKey {
    std::uint64_t k1, k2, hash;
  };
  [[nodiscard]] static CacheKey cache_key(std::uint32_t op, Edge a, Edge b,
                                          Edge c) noexcept;
  [[nodiscard]] bool cache_lookup(const CacheKey& key, Edge* out) const noexcept;
  void cache_insert(const CacheKey& key, Edge result) noexcept;

  unsigned num_vars_;
  std::vector<Node> nodes_;
  std::vector<SubTable> subtables_;          // one per variable
  std::vector<std::uint32_t> var_to_level_;
  std::vector<std::uint32_t> level_to_var_;
  std::vector<std::uint32_t> free_list_;     // recycled node indices
  // Mutable: a lookup that hits way 1 of a set promotes the entry to way 0
  // (move-to-front aging).  Like the counters, this is observation state.
  mutable std::vector<CacheSet> cache_;
  std::size_t cache_set_mask_ = 0;  // (#sets - 1); one CacheSet per set
  unsigned cache_log2_ = 0;         // log2 of the current slot count
  unsigned base_cache_log2_ = 0;    // construction-time size; reset() target
  unsigned max_cache_log2_ = 0;     // adaptive-growth ceiling
  bool cache_growth_enabled_ = true;
  // Sliding miss-rate window driving adaptive growth (reset every check).
  mutable std::uint64_t cache_window_lookups_ = 0;
  mutable std::uint64_t cache_window_misses_ = 0;
  std::uint64_t cache_inserts_since_resize_ = 0;
  std::uint64_t cache_inserts_since_check_ = 0;
  // Mutable: cache_lookup is const yet counts its hit/miss.  Counting is
  // observation, not logical state — a const Manager still meters.
  mutable telemetry::CounterBank counters_;
  mutable VisitScratch visit_scratch_;
  ResourceGovernor governor_;
  std::size_t live_count_ = 0;  // nodes with ref > 0
  std::size_t dead_count_ = 0;  // allocated nodes with ref == 0
  std::size_t unique_total_ = 0;  // running sum of subtable counts
  std::uint64_t gc_runs_ = 0;
  std::uint64_t cache_epoch_ = 0;  // bumped to invalidate the whole cache
};

}  // namespace bddmin
