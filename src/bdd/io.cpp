#include "bdd/io.hpp"

#include <charconv>
#include <sstream>

#include "bdd/bdd.hpp"
#include <stdexcept>
#include <unordered_map>

namespace bddmin {
namespace {

/// Serialize one edge reference: constants as @0/@1, nodes as [~]#id.
void write_edge(std::ostream& os, Edge e,
                const std::unordered_map<std::uint32_t, std::size_t>& ids) {
  if (Manager::is_const(e)) {
    os << (e == kOne ? "@1" : "@0");
    return;
  }
  if (e.complemented()) os << '~';
  os << '#' << ids.at(e.index());
}

/// Whitespace-token cursor over the serialized text.  Replaces the old
/// istringstream parser: no copy of the payload, no stream machinery —
/// the batch engine decodes thousands of forest payloads per second
/// through this path.
struct TokenCursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] static bool is_space(char c) noexcept {
    return c == ' ' || c == '\n' || c == '\t' || c == '\r';
  }
  /// Next whitespace-delimited token; empty view when exhausted.
  [[nodiscard]] std::string_view next() noexcept {
    while (pos < text.size() && is_space(text[pos])) ++pos;
    const std::size_t start = pos;
    while (pos < text.size() && !is_space(text[pos])) ++pos;
    return text.substr(start, pos - start);
  }
};

/// Strict decimal parse of one token; \p what names the field on error.
[[nodiscard]] std::uint64_t token_u64(std::string_view token,
                                      const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (token.empty() || ec != std::errc() || ptr != token.data() + token.size()) {
    throw std::invalid_argument(std::string("bdd io: ") + what);
  }
  return value;
}

Edge read_edge(std::string_view token, const std::vector<Edge>& by_id) {
  if (token == "@1") return kOne;
  if (token == "@0") return kZero;
  std::string_view view = token;
  bool complement = false;
  if (!view.empty() && view.front() == '~') {
    complement = true;
    view.remove_prefix(1);
  }
  if (view.empty() || view.front() != '#') {
    throw std::invalid_argument("bdd io: bad edge token " + std::string(token));
  }
  view.remove_prefix(1);
  const std::size_t id = token_u64(view, "bad edge token");
  // Children-first numbering: only already-built ids may be referenced.
  if (id == 0 || id > by_id.size()) {
    throw std::invalid_argument("bdd io: undefined node id " +
                                std::string(token));
  }
  return by_id[id - 1].complement_if(complement);
}

}  // namespace

std::string serialize(const Manager& mgr, std::span<const Edge> roots) {
  // Children-first (post-order) numbering so every reference points to an
  // already-written node.
  std::unordered_map<std::uint32_t, std::size_t> ids;
  std::ostringstream body;
  std::size_t next_id = 0;
  auto visit = [&](auto&& self, Edge e) -> void {
    if (Manager::is_const(e) || ids.contains(e.index())) return;
    const Node& n = mgr.node_at(e.index());
    self(self, n.hi);
    self(self, n.lo);
    ids.emplace(e.index(), ++next_id);
    body << next_id << ' ' << n.var << ' ';
    write_edge(body, n.hi, ids);
    body << ' ';
    write_edge(body, n.lo, ids);
    body << '\n';
  };
  for (const Edge root : roots) visit(visit, root);

  std::ostringstream os;
  os << "bddmin-bdd v1\n";
  os << "vars " << mgr.num_vars() << '\n';
  os << "nodes " << next_id << '\n';
  os << body.str();
  os << "roots " << roots.size() << '\n';
  for (std::size_t r = 0; r < roots.size(); ++r) {
    if (r) os << ' ';
    write_edge(os, roots[r], ids);
  }
  os << '\n';
  return os.str();
}

std::vector<Edge> deserialize(Manager& mgr, std::string_view text) {
  std::vector<Edge> scratch;
  std::vector<Edge> roots;
  deserialize_into(mgr, text, &scratch, &roots);
  return roots;
}

void deserialize_into(Manager& mgr, std::string_view text,
                      std::vector<Edge>* scratch, std::vector<Edge>* roots) {
  TokenCursor in{text};
  if (in.next() != "bddmin-bdd" || in.next() != "v1") {
    throw std::invalid_argument("bdd io: bad header");
  }
  if (in.next() != "vars") throw std::invalid_argument("bdd io: expected vars");
  const auto vars = static_cast<unsigned>(token_u64(in.next(), "expected vars"));
  if (vars > mgr.num_vars()) {
    throw std::invalid_argument("bdd io: manager has too few variables");
  }
  if (in.next() != "nodes") {
    throw std::invalid_argument("bdd io: expected nodes");
  }
  const std::size_t node_count = token_u64(in.next(), "expected nodes");

  std::vector<Edge>& by_id = *scratch;
  by_id.clear();
  by_id.reserve(node_count);
  EdgePin pin(mgr);
  for (std::size_t k = 0; k < node_count; ++k) {
    std::size_t id = 0;
    std::uint64_t var = 0;
    try {
      id = token_u64(in.next(), "malformed node line");
      var = token_u64(in.next(), "malformed node line");
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("bdd io: malformed node line");
    }
    const std::string_view hi_token = in.next();
    const std::string_view lo_token = in.next();
    if (id != k + 1 || var >= vars || hi_token.empty() || lo_token.empty()) {
      throw std::invalid_argument("bdd io: malformed node line");
    }
    const Edge hi = read_edge(hi_token, by_id);
    const Edge lo = read_edge(lo_token, by_id);
    // Recombine with ITE: the destination order may differ from the
    // source order, where make_node's level precondition could fail.
    by_id.push_back(
        pin.pin(mgr.ite(mgr.var_edge(static_cast<std::uint32_t>(var)), hi, lo)));
  }
  if (in.next() != "roots") {
    throw std::invalid_argument("bdd io: expected roots");
  }
  const std::size_t root_count = token_u64(in.next(), "expected roots");
  roots->clear();
  roots->reserve(root_count);
  for (std::size_t r = 0; r < root_count; ++r) {
    const std::string_view token = in.next();
    if (token.empty()) throw std::invalid_argument("bdd io: missing root");
    roots->push_back(read_edge(token, by_id));
  }
}

}  // namespace bddmin
