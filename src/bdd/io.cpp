#include "bdd/io.hpp"

#include <sstream>

#include "bdd/bdd.hpp"
#include <stdexcept>
#include <unordered_map>

namespace bddmin {
namespace {

/// Serialize one edge reference: constants as @0/@1, nodes as [~]#id.
void write_edge(std::ostream& os, Edge e,
                const std::unordered_map<std::uint32_t, std::size_t>& ids) {
  if (Manager::is_const(e)) {
    os << (e == kOne ? "@1" : "@0");
    return;
  }
  if (e.complemented()) os << '~';
  os << '#' << ids.at(e.index());
}

Edge read_edge(const std::string& token, const std::vector<Edge>& by_id) {
  if (token == "@1") return kOne;
  if (token == "@0") return kZero;
  std::string_view view = token;
  bool complement = false;
  if (!view.empty() && view.front() == '~') {
    complement = true;
    view.remove_prefix(1);
  }
  if (view.empty() || view.front() != '#') {
    throw std::invalid_argument("bdd io: bad edge token " + token);
  }
  view.remove_prefix(1);
  const std::size_t id = std::stoul(std::string(view));
  // Children-first numbering: only already-built ids may be referenced.
  if (id == 0 || id > by_id.size()) {
    throw std::invalid_argument("bdd io: undefined node id " + token);
  }
  return by_id[id - 1].complement_if(complement);
}

}  // namespace

std::string serialize(const Manager& mgr, std::span<const Edge> roots) {
  // Children-first (post-order) numbering so every reference points to an
  // already-written node.
  std::unordered_map<std::uint32_t, std::size_t> ids;
  std::ostringstream body;
  std::size_t next_id = 0;
  auto visit = [&](auto&& self, Edge e) -> void {
    if (Manager::is_const(e) || ids.contains(e.index())) return;
    const Node& n = mgr.node_at(e.index());
    self(self, n.hi);
    self(self, n.lo);
    ids.emplace(e.index(), ++next_id);
    body << next_id << ' ' << n.var << ' ';
    write_edge(body, n.hi, ids);
    body << ' ';
    write_edge(body, n.lo, ids);
    body << '\n';
  };
  for (const Edge root : roots) visit(visit, root);

  std::ostringstream os;
  os << "bddmin-bdd v1\n";
  os << "vars " << mgr.num_vars() << '\n';
  os << "nodes " << next_id << '\n';
  os << body.str();
  os << "roots " << roots.size() << '\n';
  for (std::size_t r = 0; r < roots.size(); ++r) {
    if (r) os << ' ';
    write_edge(os, roots[r], ids);
  }
  os << '\n';
  return os.str();
}

std::vector<Edge> deserialize(Manager& mgr, std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic, version;
  in >> magic >> version;
  if (magic != "bddmin-bdd" || version != "v1") {
    throw std::invalid_argument("bdd io: bad header");
  }
  std::string keyword;
  unsigned vars = 0;
  in >> keyword >> vars;
  if (keyword != "vars") throw std::invalid_argument("bdd io: expected vars");
  if (vars > mgr.num_vars()) {
    throw std::invalid_argument("bdd io: manager has too few variables");
  }
  std::size_t node_count = 0;
  in >> keyword >> node_count;
  if (keyword != "nodes") throw std::invalid_argument("bdd io: expected nodes");

  std::vector<Edge> by_id;
  by_id.reserve(node_count);
  EdgePin pin(mgr);
  for (std::size_t k = 0; k < node_count; ++k) {
    std::size_t id = 0;
    std::uint32_t var = 0;
    std::string hi_token, lo_token;
    if (!(in >> id >> var >> hi_token >> lo_token) || id != k + 1 ||
        var >= vars) {
      throw std::invalid_argument("bdd io: malformed node line");
    }
    const Edge hi = read_edge(hi_token, by_id);
    const Edge lo = read_edge(lo_token, by_id);
    // Recombine with ITE: the destination order may differ from the
    // source order, where make_node's level precondition could fail.
    by_id.push_back(pin.pin(mgr.ite(mgr.var_edge(var), hi, lo)));
  }
  std::size_t root_count = 0;
  in >> keyword >> root_count;
  if (keyword != "roots") throw std::invalid_argument("bdd io: expected roots");
  std::vector<Edge> roots;
  roots.reserve(root_count);
  for (std::size_t r = 0; r < root_count; ++r) {
    std::string token;
    if (!(in >> token)) throw std::invalid_argument("bdd io: missing root");
    roots.push_back(read_edge(token, by_id));
  }
  return roots;
}

}  // namespace bddmin
