/// \file node.hpp
/// \brief In-table BDD node record.
#pragma once

#include <cstdint>

#include "bdd/edge.hpp"

namespace bddmin {

/// Sentinel variable value marking a recycled (free) node slot in the
/// manager's table.  Free slots sit on the free list and never appear in a
/// unique-table chain.
inline constexpr std::uint32_t kFreeVar = 0xFFFF'FFFEu;

/// One decision node.  Canonical form: the `hi` ("then") edge of a stored
/// node is never complemented; complements are pushed to the `lo` edge and
/// to incoming edges.  The terminal node has `var == kConstVar`.
struct Node {
  std::uint32_t var = kConstVar;  ///< decision variable (== level; fixed order)
  Edge hi{};                      ///< cofactor at var=1, always regular
  Edge lo{};                      ///< cofactor at var=0
  std::uint32_t next = kNilIndex; ///< unique-table chain link
  std::uint32_t ref = 0;          ///< external+child reference count (saturating)
};

}  // namespace bddmin
