#include "bdd/dot.hpp"

#include <sstream>
#include <unordered_set>

namespace bddmin {

std::string to_dot(const Manager& mgr, std::span<const Edge> roots,
                   std::span<const std::string> names) {
  std::ostringstream os;
  os << "digraph bdd {\n  rankdir=TB;\n";
  os << "  node [shape=circle];\n";
  os << "  n0 [shape=box, label=\"1\"];\n";
  std::unordered_set<std::uint32_t> visited{0};
  std::vector<Edge> stack;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    const std::string label =
        r < names.size() ? names[r] : ("f" + std::to_string(r));
    os << "  root" << r << " [shape=plaintext, label=\"" << label << "\"];\n";
    os << "  root" << r << " -> n" << roots[r].index()
       << (roots[r].complemented() ? " [style=dotted]" : "") << ";\n";
    stack.push_back(roots[r]);
  }
  while (!stack.empty()) {
    const Edge e = stack.back();
    stack.pop_back();
    if (!visited.insert(e.index()).second) continue;
    const Node& n = mgr.node_at(e.index());
    os << "  n" << e.index() << " [label=\"x" << n.var << "\"];\n";
    os << "  n" << e.index() << " -> n" << n.hi.index() << ";\n";
    os << "  n" << e.index() << " -> n" << n.lo.index() << " [style=dashed"
       << (n.lo.complemented() ? ",color=red" : "") << "];\n";
    stack.push_back(n.hi);
    stack.push_back(n.lo);
  }
  os << "}\n";
  return os.str();
}

}  // namespace bddmin
