/// \file governor.hpp
/// \brief ResourceGovernor: per-manager effort limits with abort-&-recover.
///
/// The paper's heuristics can transiently *grow* the BDD (restrict/osm have
/// no monotonicity guarantee outside Prop. 6), so production flows run them
/// under effort limits.  Every Manager owns one ResourceGovernor; when a
/// limit trips, the in-flight operation aborts by throwing a subclass of
/// `ResourceExhausted`.
///
/// Limit classes:
///  * **node quota** — a hard ceiling on allocated table slots (live + dead
///    nodes), checked in `Manager::unique_insert` *before* a new slot is
///    claimed; an optional soft quota below it only raises a sticky flag so
///    callers can schedule a garbage collection at the next safe point.
///  * **step budget** — a count of memoization misses across the budgeted
///    recursions (ITE, cofactor, quantification, composition and the
///    minimization traversals); a machine-independent, deterministic proxy
///    for work done.
///  * **deadline** — a wall-clock bound polled every `kDeadlinePollInterval`
///    steps (cheap: one branch per step, one clock read per interval), so a
///    single runaway recursion is interruptible without per-call clock
///    syscalls.
///  * **out of memory** — `std::bad_alloc` from the node table, subtable
///    buckets or computed cache is rethrown as `OutOfMemory` carrying the
///    requested size, instead of taking down the process with a raw
///    allocation failure.
///
/// Abort contract (the *strong guarantee* at manager granularity): a thrown
/// limit leaves the manager structurally consistent — ref counts, subtables,
/// free list and cache epoch all valid, verifiable by the BddAudit tiers.
/// Nodes built by the aborted operation are dead (ref == 0) and are
/// reclaimed by the next `garbage_collect()`; the same manager is
/// immediately reusable, and re-running the operation with a larger budget
/// yields the identical result an untripped run would have produced.
///
/// The governor also tracks the peak live-node count (always on, one
/// compare per ref-count 0->1 transition) so memory trajectories can be
/// reported even for unlimited runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bddmin {

enum class LimitClass : std::uint8_t {
  kNodeLimit,    ///< hard node quota exceeded
  kStepLimit,    ///< recursion-step budget exhausted
  kDeadline,     ///< wall-clock deadline passed
  kOutOfMemory,  ///< allocation failure (wrapped std::bad_alloc)
  kCancelled,    ///< external cancellation (watchdog / abort signal)
};

/// Stable lower-case name ("node-limit", "step-limit", "deadline",
/// "out-of-memory", "cancelled") used in CSV reports and diagnostics.
[[nodiscard]] const char* limit_class_name(LimitClass c) noexcept;

/// Base of the resource-limit hierarchy.  Catching this (rather than the
/// concrete classes) is how callers implement graceful degradation.
class ResourceExhausted : public std::runtime_error {
 public:
  ResourceExhausted(LimitClass cls, const std::string& what)
      : std::runtime_error(what), class_(cls) {}
  [[nodiscard]] LimitClass limit_class() const noexcept { return class_; }

 private:
  LimitClass class_;
};

class NodeLimit final : public ResourceExhausted {
 public:
  NodeLimit(std::size_t allocated, std::size_t limit);
};

class StepLimit final : public ResourceExhausted {
 public:
  explicit StepLimit(std::uint64_t limit);
};

class Deadline final : public ResourceExhausted {
 public:
  explicit Deadline(double budget_seconds);
};

class OutOfMemory final : public ResourceExhausted {
 public:
  /// \p site names the allocation ("node table", "computed cache", ...);
  /// \p bytes is the request that failed or was refused.
  OutOfMemory(const char* site, std::size_t bytes);
  [[nodiscard]] std::size_t requested_bytes() const noexcept { return bytes_; }

 private:
  std::size_t bytes_;
};

/// Thrown when an attached abort signal (see
/// ResourceGovernor::attach_abort_signal) requests cancellation of the
/// in-flight operation — the batch engine's hung-job watchdog is the
/// producer.  Same strong abort guarantee as every other limit class:
/// the manager stays structurally consistent and reusable.
class AbortRequested final : public ResourceExhausted {
 public:
  /// \p who names the cancelling party ("watchdog", a failpoint, ...).
  explicit AbortRequested(const char* who);
};

/// One budget.  Zero always means "unlimited" for that dimension.
struct ResourceLimits {
  /// Sticky-flag quota on allocated nodes (live + dead); never throws.
  std::size_t soft_node_limit = 0;
  /// Hard quota on allocated nodes; exceeding it throws NodeLimit.
  std::size_t hard_node_limit = 0;
  /// Budget of memoization misses; exceeding it throws StepLimit.
  std::uint64_t step_limit = 0;
  /// Wall-clock budget measured from set_limits(); throws Deadline.
  double deadline_seconds = 0.0;

  [[nodiscard]] bool unlimited() const noexcept {
    return soft_node_limit == 0 && hard_node_limit == 0 && step_limit == 0 &&
           deadline_seconds <= 0.0;
  }
};

class ResourceGovernor {
 public:
  using Clock = std::chrono::steady_clock;
  /// The deadline is polled when `steps % interval == 1`, so an expired
  /// deadline trips on the very first charged step of an operation.
  static constexpr std::uint64_t kDeadlinePollInterval = 256;
  static_assert((kDeadlinePollInterval & (kDeadlinePollInterval - 1)) == 0,
                "poll interval must be a power of two");

  /// Install \p limits, resetting the step counter, the soft flag and the
  /// deadline clock (deadline_seconds counts from now).
  void set_limits(const ResourceLimits& limits) {
    limits_ = limits;
    steps_ = 0;
    soft_exceeded_ = false;
    watching_steps_ = limits.step_limit > 0 || limits.deadline_seconds > 0.0 ||
                      abort_signal_ != nullptr;
    if (limits.deadline_seconds > 0.0) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         limits.deadline_seconds));
    }
  }
  /// Remove every limit (telemetry keeps accumulating).  An attached
  /// abort signal stays attached — cancellation outlives budget swaps.
  void clear() noexcept {
    limits_ = ResourceLimits{};
    watching_steps_ = abort_signal_ != nullptr;
    soft_exceeded_ = false;
  }
  /// Fresh-job state for a pooled manager (Manager::reset()): clears the
  /// limits AND the always-on telemetry (steps used, peak live) so a reused
  /// manager reports exactly what a freshly constructed one would.  Also
  /// detaches any abort signal — the next job attaches its own.
  void reset_job() noexcept {
    abort_signal_ = nullptr;
    abort_epoch_ = 0;
    clear();
    steps_ = 0;
    peak_live_ = 0;
  }
  [[nodiscard]] const ResourceLimits& limits() const noexcept { return limits_; }

  /// Attach the owning manager's telemetry slot for steps charged (see
  /// telemetry/counters.hpp, Counter::kGovernorSteps).  The governor
  /// counts into it unconditionally — also when no limit is installed —
  /// so step telemetry works for unlimited runs.  Null detaches.
  void attach_step_counter(std::uint64_t* slot) noexcept {
#if !defined(BDDMIN_NO_TELEMETRY)
    step_counter_ = slot;
#else
    (void)slot;
#endif
  }

  /// Charge one recursion step (called on memoization misses).  Hot path:
  /// a single predicted branch when no step/deadline limit is installed
  /// (plus one counter increment when telemetry is compiled in).
  void charge_step() {
#if !defined(BDDMIN_NO_TELEMETRY)
    if (step_counter_ != nullptr) ++*step_counter_;
#endif
    if (!watching_steps_) return;
    ++steps_;
    if (limits_.step_limit != 0 && steps_ > limits_.step_limit) {
      throw_step_limit();
    }
    if ((steps_ & (kDeadlinePollInterval - 1)) == 1) {
      if (abort_requested()) throw_abort();
      if (limits_.deadline_seconds > 0.0 && Clock::now() >= deadline_) {
        throw_deadline();
      }
    }
  }

  /// Attach an external cancellation signal: when \p signal's value equals
  /// \p epoch, the next charge_step poll throws AbortRequested.  The
  /// epoch-tagging lets one long-lived per-worker atomic cancel exactly one
  /// (job, attempt) — a stale store aimed at a finished attempt can never
  /// cancel its successor.  Null detaches.  The signal survives
  /// set_limits()/clear() and is dropped by reset_job().
  void attach_abort_signal(const std::atomic<std::uint64_t>* signal,
                           std::uint64_t epoch) noexcept {
    abort_signal_ = signal;
    abort_epoch_ = epoch;
    watching_steps_ = limits_.step_limit > 0 ||
                      limits_.deadline_seconds > 0.0 ||
                      abort_signal_ != nullptr;
  }

  /// True when the attached signal currently requests cancellation.
  /// Cooperative long-running sites (and injected hangs) poll this.
  [[nodiscard]] bool abort_requested() const noexcept {
    return abort_signal_ != nullptr &&
           abort_signal_->load(std::memory_order_relaxed) == abort_epoch_;
  }

  /// True while a NodeQuotaSuspension critical section is open — i.e. a
  /// structural rewrite (adjacent-level swap) is in flight and an abort
  /// would tear the table.  Fault injection must stay out (see
  /// analysis/failpoint.hpp, "unique_insert_oom").
  [[nodiscard]] bool in_critical_section() const noexcept {
    return critical_depth_ > 0;
  }

  /// Enforce the node quotas against \p allocated (live + dead nodes);
  /// called by the manager before claiming a new table slot, so hitting an
  /// existing node never throws.
  void check_nodes(std::size_t allocated) {
    if (limits_.hard_node_limit != 0 && allocated >= limits_.hard_node_limit) {
      throw NodeLimit(allocated, limits_.hard_node_limit);
    }
    if (limits_.soft_node_limit != 0 && allocated >= limits_.soft_node_limit) {
      soft_exceeded_ = true;
    }
  }
  [[nodiscard]] bool node_limited() const noexcept {
    return limits_.hard_node_limit != 0 || limits_.soft_node_limit != 0;
  }

  /// True once the soft node quota has been reached; sticky until the next
  /// set_limits()/clear().  Callers should garbage-collect at the next safe
  /// point (the batch engine does so between heuristics).
  [[nodiscard]] bool soft_exceeded() const noexcept { return soft_exceeded_; }

  [[nodiscard]] std::uint64_t steps_used() const noexcept { return steps_; }

  // ---- Telemetry (always on) -------------------------------------------
  /// Record the current live-node count; keeps the running peak.
  void note_live(std::size_t live) noexcept {
    if (live > peak_live_) peak_live_ = live;
  }
  [[nodiscard]] std::size_t peak_live_nodes() const noexcept {
    return peak_live_;
  }

 private:
  friend class NodeQuotaSuspension;

  [[noreturn]] void throw_step_limit() const;
  [[noreturn]] void throw_deadline() const;
  [[noreturn]] void throw_abort() const;

  ResourceLimits limits_;
  Clock::time_point deadline_{};
#if !defined(BDDMIN_NO_TELEMETRY)
  std::uint64_t* step_counter_ = nullptr;  // owned by the Manager's bank
#endif
  /// Watchdog-owned slot; only the pointee is shared across threads.
  const std::atomic<std::uint64_t>* abort_signal_ = nullptr;
  std::uint64_t abort_epoch_ = 0;
  std::uint64_t steps_ = 0;
  std::size_t peak_live_ = 0;
  unsigned critical_depth_ = 0;
  bool watching_steps_ = false;
  bool soft_exceeded_ = false;
};

/// RAII: suspend the node quotas (soft and hard) for the duration of a
/// structural operation that must not abort mid-mutation — adjacent-level
/// swaps rewrite the table after flipping the order maps, so a NodeLimit
/// thrown from unique_insert inside the rewrite would tear the manager and
/// break the strong abort guarantee.  Only the quota checked by
/// `unique_insert` is paused: the step budget, deadline and all telemetry
/// keep running, and — unlike `set_limits` — neither the step counter nor
/// the deadline clock is reset.  The exact previous quotas are restored on
/// scope exit (including unwinding); the caller re-enforces them at the
/// next safe point with `check_nodes`.
class NodeQuotaSuspension {
 public:
  explicit NodeQuotaSuspension(ResourceGovernor& gov) noexcept
      : gov_(gov),
        soft_(gov.limits_.soft_node_limit),
        hard_(gov.limits_.hard_node_limit) {
    gov_.limits_.soft_node_limit = 0;
    gov_.limits_.hard_node_limit = 0;
    ++gov_.critical_depth_;
  }
  NodeQuotaSuspension(const NodeQuotaSuspension&) = delete;
  NodeQuotaSuspension& operator=(const NodeQuotaSuspension&) = delete;
  ~NodeQuotaSuspension() {
    gov_.limits_.soft_node_limit = soft_;
    gov_.limits_.hard_node_limit = hard_;
    --gov_.critical_depth_;
  }

 private:
  ResourceGovernor& gov_;
  std::size_t soft_;
  std::size_t hard_;
};

/// Pin \p v to its stack slot before a budgeted call whose abort handler
/// must read it back.
///
/// GCC 12.x can mis-allocate a local whose only use after a throwing call
/// sits on the exception edge: the initializing store is sunk past the
/// landing pad and the handler observes a stale register (observed with
/// g++ 12.2 at -O1/-O2 when the callee is reached through std::function
/// inside a loop).  Forcing the value through memory gives the handler a
/// well-defined reaching definition.  Semantically a no-op; also make the
/// recovery an explicit assignment inside the catch block rather than
/// relying on a pre-try initializer.
template <class T>
inline void pin_for_unwind(T& v) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : "+m"(v));
#else
  (void)v;
#endif
}

}  // namespace bddmin
