#include "bdd/truth_table.hpp"

#include <vector>

#include "analysis/check.hpp"
#include "bdd/ops.hpp"

namespace bddmin {
namespace {

/// Recursive Shannon construction on the minterm range [lo, lo + 2^(n-var))
/// where all variables < var are already decided.  Splitting on the highest
/// remaining variable keeps each recursion a contiguous bit range.
Edge from_tt_rec(Manager& mgr, std::uint64_t tt, unsigned n, unsigned var) {
  if (var == n) return (tt & 1) ? kOne : kZero;
  // Cofactor on x_var: since x_v is bit v of the minterm index, the x_var=1
  // half of the table is the odd strides of width 2^var.  Recurse on the
  // *top* variable of the remaining order to keep make_node valid, so peel
  // variables from x0 upward by de-interleaving bit var=current.
  const unsigned width = 1u << (n - var - 1);
  std::uint64_t hi_tt = 0;
  std::uint64_t lo_tt = 0;
  for (unsigned m = 0; m < width; ++m) {
    // Re-pack minterms of the (n-var-1)-variable cofactors: insert the
    // remaining variables' bits unchanged, dropping bit position 0 (= x_var
    // in the shifted index space).
    const std::uint64_t src_hi = (tt >> (2 * m + 1)) & 1;
    const std::uint64_t src_lo = (tt >> (2 * m)) & 1;
    hi_tt |= src_hi << m;
    lo_tt |= src_lo << m;
  }
  const Edge t = from_tt_rec(mgr, hi_tt, n, var + 1);
  const Edge e = from_tt_rec(mgr, lo_tt, n, var + 1);
  // Recombine with ITE rather than make_node: the manager's variable
  // order may have been permuted by reordering.
  return mgr.ite(mgr.var_edge(var), t, e);
}

}  // namespace

Edge from_tt(Manager& mgr, std::uint64_t tt, unsigned n) {
  BDDMIN_CHECK(n <= kMaxTtVars);
  BDDMIN_CHECK(mgr.num_vars() >= n);
  tt &= tt_mask(n);
  return from_tt_rec(mgr, tt, n, 0);
}

std::uint64_t to_tt(const Manager& mgr, Edge f, unsigned n) {
  BDDMIN_CHECK(n <= kMaxTtVars);
  std::uint64_t tt = 0;
  std::vector<bool> assignment(mgr.num_vars(), false);
  for (std::uint64_t m = 0; m < (1ull << n); ++m) {
    for (unsigned v = 0; v < n; ++v) assignment[v] = (m >> v) & 1;
    if (eval(mgr, f, assignment)) tt |= 1ull << m;
  }
  return tt;
}

std::size_t tt_bdd_size(std::uint64_t tt, unsigned n) {
  Manager scratch(n, /*cache_log2=*/12);
  return count_nodes(scratch, from_tt(scratch, tt, n));
}

}  // namespace bddmin
