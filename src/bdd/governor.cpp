#include "bdd/governor.hpp"

namespace bddmin {

const char* limit_class_name(LimitClass c) noexcept {
  switch (c) {
    case LimitClass::kNodeLimit: return "node-limit";
    case LimitClass::kStepLimit: return "step-limit";
    case LimitClass::kDeadline: return "deadline";
    case LimitClass::kOutOfMemory: return "out-of-memory";
    case LimitClass::kCancelled: return "cancelled";
  }
  return "?";
}

NodeLimit::NodeLimit(std::size_t allocated, std::size_t limit)
    : ResourceExhausted(LimitClass::kNodeLimit,
                        "node quota exceeded: " + std::to_string(allocated) +
                            " allocated nodes >= limit " +
                            std::to_string(limit)) {}

StepLimit::StepLimit(std::uint64_t limit)
    : ResourceExhausted(LimitClass::kStepLimit,
                        "step budget exhausted: limit " +
                            std::to_string(limit) + " recursion steps") {}

Deadline::Deadline(double budget_seconds)
    : ResourceExhausted(LimitClass::kDeadline,
                        "deadline expired: budget " +
                            std::to_string(budget_seconds) + "s") {}

OutOfMemory::OutOfMemory(const char* site, std::size_t bytes)
    : ResourceExhausted(LimitClass::kOutOfMemory,
                        std::string("allocation failed: ") + site + " (" +
                            std::to_string(bytes) + " bytes requested)"),
      bytes_(bytes) {}

AbortRequested::AbortRequested(const char* who)
    : ResourceExhausted(LimitClass::kCancelled,
                        std::string("operation cancelled by ") + who) {}

void ResourceGovernor::throw_step_limit() const {
  throw StepLimit(limits_.step_limit);
}

void ResourceGovernor::throw_deadline() const {
  throw Deadline(limits_.deadline_seconds);
}

void ResourceGovernor::throw_abort() const { throw AbortRequested("watchdog"); }

}  // namespace bddmin
