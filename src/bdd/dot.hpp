/// \file dot.hpp
/// \brief Graphviz export of BDD forests (debugging / documentation aid).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bdd/manager.hpp"

namespace bddmin {

/// Render the shared forest rooted at \p roots as a Graphviz digraph.
/// Complemented edges are drawn dotted, else-edges dashed; root r is
/// labelled names[r] (or "f<r>" when names are not provided).
[[nodiscard]] std::string to_dot(const Manager& mgr, std::span<const Edge> roots,
                                 std::span<const std::string> names = {});

}  // namespace bddmin
