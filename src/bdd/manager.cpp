#include "bdd/manager.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "analysis/access.hpp"
#include "analysis/audit.hpp"
#include "analysis/check.hpp"
#include "analysis/failpoint.hpp"
#include "bdd/ops.hpp"

namespace bddmin {
namespace {

/// Computed-cache hash: one multiply per key word (they issue in
/// parallel) plus a fold pulling the products' well-mixed high halves
/// into the low bits the set mask consumes.  Roughly 4x shorter dependency
/// chain than the nested splitmix64 it replaced — this runs on every
/// ite/kernel recursion, where the hash latency was a measurable slice of
/// the whole operation.
constexpr std::uint64_t cache_hash(std::uint64_t k1, std::uint64_t k2) noexcept {
  const std::uint64_t h =
      (k1 * 0x9E3779B97F4A7C15ull) ^ (k2 * 0xC2B2AE3D27D4EB4Full);
  return h ^ (h >> 32);
}

/// Counter pair (hit = returned value, miss = value + 1) for a cache op
/// tag.  The disjoint marker tag belongs to the "and" class: those probes
/// are the early-exit containment walk of the AND family.  Remaining
/// reserved manager tags and the client tags (>= kUserOpBase) fall into
/// the "user" class.
constexpr telemetry::Counter cache_hit_counter_of(std::uint32_t op) noexcept {
  using telemetry::CacheOpClass;
  CacheOpClass cls = CacheOpClass::kUser;
  if (op == analysis::ManagerAccess::op_ite()) {
    cls = CacheOpClass::kIte;
  } else if (op == analysis::ManagerAccess::op_and() ||
             op == analysis::ManagerAccess::op_disjoint()) {
    cls = CacheOpClass::kAnd;
  } else if (op == analysis::ManagerAccess::op_xor()) {
    cls = CacheOpClass::kXor;
  } else if (op == cache_tag::kCofactor) {
    cls = CacheOpClass::kCofactor;
  } else if (op == cache_tag::kExists || op == cache_tag::kAndExists) {
    cls = CacheOpClass::kQuantify;
  } else if (op == cache_tag::kCompose) {
    cls = CacheOpClass::kCompose;
  }
  return telemetry::cache_hit_counter(cls);
}

/// How often cache_insert re-evaluates the adaptive-growth condition.
constexpr std::uint64_t kGrowthCheckInterval = 4096;

}  // namespace

Manager::Manager(unsigned num_vars, unsigned cache_log2)
    : num_vars_(num_vars),
      subtables_(num_vars),
      var_to_level_(num_vars),
      level_to_var_(num_vars) {
  // Validate before allocating: a bogus cache_log2 would either fail with a
  // raw bad_alloc or silently overcommit address space the first touch
  // cannot back.  Either way the caller gets the requested size.
  if (cache_log2 > kMaxCacheLog2) {
    throw OutOfMemory("computed cache",
                      (std::size_t{1} << cache_log2) * sizeof(CacheEntry));
  }
  if (cache_log2 < 2) cache_log2 = 2;  // a 2-way set is 2 slots; keep >= 2 sets
  const std::size_t sets = std::size_t{1} << (cache_log2 - 1);
  try {
    cache_.resize(sets);
  } catch (const std::bad_alloc&) {
    throw OutOfMemory("computed cache", sets * sizeof(CacheSet));
  }
  cache_log2_ = cache_log2;
  base_cache_log2_ = cache_log2;
  max_cache_log2_ = std::min(cache_log2 + kCacheGrowthHeadroom, kMaxCacheLog2);
  cache_set_mask_ = sets - 1;
  nodes_.reserve(1u << 12);
  for (SubTable& table : subtables_) table.buckets.assign(4, kNilIndex);
  std::iota(var_to_level_.begin(), var_to_level_.end(), 0u);
  std::iota(level_to_var_.begin(), level_to_var_.end(), 0u);
  // Terminal node at index 0; its ref count is saturated so it never dies.
  Node terminal;
  terminal.var = kConstVar;
  terminal.ref = 0xFFFF'FFFFu;
  nodes_.push_back(terminal);
  live_count_ = 1;
  governor_.note_live(live_count_);
  // Steps are charged inside the governor; route them into this manager's
  // counter bank so telemetry sees them even on unlimited runs.
  governor_.attach_step_counter(counters_.step_slot());
}

unsigned Manager::add_var() {
  const unsigned var = num_vars_++;
  SubTable table;
  table.buckets.assign(4, kNilIndex);
  subtables_.push_back(std::move(table));
  level_to_var_.push_back(var);  // new variable enters at the bottom
  var_to_level_.push_back(static_cast<std::uint32_t>(level_to_var_.size() - 1));
  return var;
}

std::size_t Manager::node_hash(Edge hi, Edge lo) noexcept {
  // Single multiply + fold: the buckets mask low bits, the fold feeds them
  // the product's high half.  Cheaper than a full splitmix64 finalizer and
  // the unique table only needs short chains, not avalanche.
  const std::uint64_t h =
      ((std::uint64_t{hi.bits} << 32) ^ lo.bits) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

void Manager::reset(unsigned num_vars) {
  num_vars_ = num_vars;
  nodes_.clear();  // trivial elements: keeps capacity, frees nothing
  free_list_.clear();
  subtables_.resize(num_vars);  // grows only when a job needs more variables
  for (SubTable& table : subtables_) {
    table.buckets.assign(4, kNilIndex);  // fresh-manager bucket count
    table.count = 0;
  }
  unique_total_ = 0;
  var_to_level_.resize(num_vars);
  level_to_var_.resize(num_vars);
  std::iota(var_to_level_.begin(), var_to_level_.end(), 0u);
  std::iota(level_to_var_.begin(), level_to_var_.end(), 0u);
  // Cache: O(1) epoch invalidation; if adaptive growth had enlarged it,
  // trim back to the construction-time size (vector::resize downward keeps
  // the allocation) so a reused manager grows at exactly the same points a
  // fresh one would — the engine's byte-determinism depends on it.
  ++cache_epoch_;
  if (cache_log2_ != base_cache_log2_) {
    cache_.resize(std::size_t{1} << (base_cache_log2_ - 1));
    cache_log2_ = base_cache_log2_;
    cache_set_mask_ = cache_.size() - 1;
  }
  cache_growth_enabled_ = true;
  max_cache_log2_ =
      std::min(base_cache_log2_ + kCacheGrowthHeadroom, kMaxCacheLog2);
  cache_window_lookups_ = 0;
  cache_window_misses_ = 0;
  cache_inserts_since_resize_ = 0;
  cache_inserts_since_check_ = 0;
  counters_.reset();
  gc_runs_ = 0;
  governor_.reset_job();  // drops limits and the steps/peak-live telemetry
  Node terminal;
  terminal.var = kConstVar;
  terminal.ref = 0xFFFF'FFFFu;
  nodes_.push_back(terminal);
  live_count_ = 1;
  dead_count_ = 0;
  governor_.note_live(live_count_);
}

Edge Manager::var_edge(std::uint32_t v) {
  BDDMIN_CHECK(v < num_vars_);
  return make_node(v, kOne, kZero);
}

Edge Manager::nvar_edge(std::uint32_t v) { return !var_edge(v); }

Edge Manager::make_node(std::uint32_t var, Edge hi, Edge lo) {
  if (hi == lo) return hi;  // deletion rule
  BDDMIN_DCHECK(var < num_vars_);
  BDDMIN_DCHECK(level_of_var(var) < level_of(hi) && level_of_var(var) < level_of(lo));
  // Canonical complement form: stored hi edge is regular.
  const bool out_complement = hi.complemented();
  if (out_complement) {
    hi = !hi;
    lo = !lo;
  }
  const std::uint32_t index = unique_insert(var, hi, lo);
  return Edge{index << 1}.complement_if(out_complement);
}

std::uint32_t Manager::unique_insert(std::uint32_t var, Edge hi, Edge lo) {
  SubTable& table = subtables_[var];
  const std::size_t h = node_hash(hi, lo) & (table.buckets.size() - 1);
  for (std::uint32_t i = table.buckets[h]; i != kNilIndex; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.hi == hi && n.lo == lo) {  // merging rule
      counters_.bump(telemetry::Counter::kUniqueHits);
      return i;
    }
  }
  // Quotas are enforced before a slot is claimed, so looking up an existing
  // node never throws and an abort leaves the table untouched.  The same
  // safe point hosts the injected allocation failure — suppressed inside
  // reorder critical sections, where a throw would tear the table.
  if (!governor_.in_critical_section() &&
      BDDMIN_FAILPOINT("unique_insert_oom")) {
    throw OutOfMemory("failpoint: node table", sizeof(Node));
  }
  if (governor_.node_limited()) {
    governor_.check_nodes(live_count_ + dead_count_);
  }
  std::uint32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
  } else {
    if (nodes_.size() >= (kNilIndex >> 1)) throw std::length_error("BDD node table full");
    try {
      nodes_.emplace_back();
    } catch (const std::bad_alloc&) {
      throw OutOfMemory("node table", 2 * nodes_.capacity() * sizeof(Node));
    }
    index = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  counters_.bump(telemetry::Counter::kUniqueInserts);
  Node& n = nodes_[index];
  n.var = var;
  n.hi = hi;
  n.lo = lo;
  n.ref = 0;
  n.next = table.buckets[h];
  table.buckets[h] = index;
  ++table.count;
  ++unique_total_;
  ++dead_count_;
  ref(hi);  // a stored node holds a reference on each child
  ref(lo);
  if (table.count > table.buckets.size()) grow_buckets(table);
  return index;
}

void Manager::subtable_unlink(std::uint32_t index) {
  Node& n = nodes_[index];
  SubTable& table = subtables_[n.var];
  const std::size_t h = node_hash(n.hi, n.lo) & (table.buckets.size() - 1);
  std::uint32_t* link = &table.buckets[h];
  while (*link != index) link = &nodes_[*link].next;
  *link = n.next;
  --table.count;
  --unique_total_;
}

void Manager::subtable_link(std::uint32_t index) {
  Node& n = nodes_[index];
  SubTable& table = subtables_[n.var];
  const std::size_t h = node_hash(n.hi, n.lo) & (table.buckets.size() - 1);
  n.next = table.buckets[h];
  table.buckets[h] = index;
  ++table.count;
  ++unique_total_;
  if (table.count > table.buckets.size()) grow_buckets(table);
}

void Manager::grow_buckets(SubTable& table) {
  // Injected before the reallocation: like a real bad_alloc here, the
  // triggering node is already linked and the table stays consistent.
  if (!governor_.in_critical_section() && BDDMIN_FAILPOINT("bucket_grow_oom")) {
    throw OutOfMemory("failpoint: subtable buckets",
                      2 * table.buckets.size() * sizeof(std::uint32_t));
  }
  std::vector<std::uint32_t> fresh;
  try {
    fresh.assign(table.buckets.size() * 2, kNilIndex);
  } catch (const std::bad_alloc&) {
    // The node that triggered the growth is already linked; the table stays
    // consistent (just denser than ideal), so rethrowing here still honors
    // the strong guarantee.
    throw OutOfMemory("subtable buckets",
                      2 * table.buckets.size() * sizeof(std::uint32_t));
  }
  for (std::uint32_t head : table.buckets) {
    for (std::uint32_t i = head; i != kNilIndex;) {
      const std::uint32_t next = nodes_[i].next;
      const std::size_t h = node_hash(nodes_[i].hi, nodes_[i].lo) & (fresh.size() - 1);
      nodes_[i].next = fresh[h];
      fresh[h] = i;
      i = next;
    }
  }
  table.buckets = std::move(fresh);
}

void Manager::ref(Edge e) noexcept {
  Node& n = nodes_[e.index()];
  if (n.ref == 0xFFFF'FFFFu) return;  // saturated (terminal)
  if (n.ref++ == 0) {
    --dead_count_;
    ++live_count_;
    governor_.note_live(live_count_);
  }
}

void Manager::deref(Edge e) noexcept {
  Node& n = nodes_[e.index()];
  if (n.ref == 0xFFFF'FFFFu) return;
  BDDMIN_DCHECK(n.ref > 0);  // a failure here terminates: deref underflow
  if (--n.ref == 0) {
    --live_count_;
    ++dead_count_;
  }
}

std::size_t Manager::garbage_collect() {
  // Injected before any mutation: the work-list allocation is the only
  // thing that can fail in a real GC, and it fails before the sweep.
  if (BDDMIN_FAILPOINT("gc_oom")) {
    throw OutOfMemory("failpoint: gc work list",
                      nodes_.size() * sizeof(std::uint32_t));
  }
  ++gc_runs_;
  counters_.bump(telemetry::Counter::kGcRuns);
  std::vector<std::uint32_t> work;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kFreeVar && nodes_[i].ref == 0) work.push_back(i);
  }
  std::size_t freed = 0;
  while (!work.empty()) {
    const std::uint32_t i = work.back();
    work.pop_back();
    Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;  // already swept via another path
    subtable_unlink(i);
    // Cascade: release this node's references on its children.
    for (const Edge child : {n.hi, n.lo}) {
      Node& cn = nodes_[child.index()];
      if (cn.ref == 0xFFFF'FFFFu) continue;
      BDDMIN_DCHECK(cn.ref > 0);
      if (--cn.ref == 0) {
        --live_count_;
        ++dead_count_;
        work.push_back(child.index());
      }
    }
    n.var = kFreeVar;
    free_list_.push_back(i);
    --dead_count_;
    ++freed;
  }
  counters_.add(telemetry::Counter::kGcNodesReclaimed, freed);
  clear_caches();  // cached results may reference freed nodes
  return freed;
}

void Manager::clear_caches() noexcept {
  ++cache_epoch_;  // O(1): stale-epoch entries are ignored on lookup
  // Restart the adaptive-growth window: every lookup after a flush misses
  // no matter how big the cache is (compulsory, not capacity, misses), so
  // carrying the window across the epoch would read repeated flushes as
  // sustained pressure and grow the cache without improving its hit rate.
  cache_window_lookups_ = 0;
  cache_window_misses_ = 0;
  cache_inserts_since_resize_ = 0;
  cache_inserts_since_check_ = 0;
}

Manager::CacheKey Manager::cache_key(std::uint32_t op, Edge a, Edge b,
                                     Edge c) noexcept {
  const std::uint64_t k1 = (std::uint64_t{op} << 32) | a.bits;
  const std::uint64_t k2 = (std::uint64_t{b.bits} << 32) | c.bits;
  return {k1, k2, cache_hash(k1, k2)};
}

bool Manager::cache_lookup(const CacheKey& key, Edge* out) const noexcept {
  // 2-way set-associative: one CacheSet (one cache line), way 0 most recent.
  CacheEntry* const way =
      cache_[static_cast<std::size_t>(key.hash) & cache_set_mask_].way;
  ++cache_window_lookups_;
  const auto op = static_cast<std::uint32_t>(key.k1 >> 32);
  if (way[0].k1 == key.k1 && way[0].k2 == key.k2 &&
      way[0].epoch == cache_epoch_) {
    counters_.bump(cache_hit_counter_of(op));
    *out = way[0].result;
    return true;
  }
  if (way[1].k1 == key.k1 && way[1].k2 == key.k2 &&
      way[1].epoch == cache_epoch_) {
    counters_.bump(cache_hit_counter_of(op));
    *out = way[1].result;
    std::swap(way[0], way[1]);  // promote: the hit entry outlived way 0
    return true;
  }
  // Miss counters sit one slot after their hit counter (see counters.hpp).
  counters_.bump(static_cast<telemetry::Counter>(
      static_cast<unsigned>(cache_hit_counter_of(op)) + 1));
  ++cache_window_misses_;
  return false;
}

void Manager::cache_insert(const CacheKey& key, Edge result) noexcept {
  CacheEntry* const way =
      cache_[static_cast<std::size_t>(key.hash) & cache_set_mask_].way;
  // Cheap aging: the new entry takes way 0; the previous way-0 occupant is
  // demoted to way 1 (evicting the set's oldest) — unless it holds this
  // very key or is stale anyway, when the copy would preserve nothing.
  if ((way[0].k1 != key.k1 || way[0].k2 != key.k2) &&
      way[0].epoch == cache_epoch_) {
    way[1] = way[0];
  }
  way[0].k1 = key.k1;
  way[0].k2 = key.k2;
  way[0].epoch = cache_epoch_;
  way[0].result = result;
  ++cache_inserts_since_resize_;
  if (++cache_inserts_since_check_ >= kGrowthCheckInterval) maybe_grow_cache();
}

bool Manager::cache_lookup(std::uint32_t op, Edge a, Edge b, Edge c,
                           Edge* out) const noexcept {
  // bddmin-lint: allow(R2) -- forwarding API; the tag is validated at the call site
  return cache_lookup(cache_key(op, a, b, c), out);
}

void Manager::cache_insert(std::uint32_t op, Edge a, Edge b, Edge c,
                           Edge result) noexcept {
  // bddmin-lint: allow(R2) -- forwarding API; the tag is validated at the call site
  cache_insert(cache_key(op, a, b, c), result);
}

void Manager::maybe_grow_cache() noexcept {
  cache_inserts_since_check_ = 0;
  const std::uint64_t lookups = cache_window_lookups_;
  const std::uint64_t misses = cache_window_misses_;
  cache_window_lookups_ = 0;
  cache_window_misses_ = 0;
  if (!cache_growth_enabled_ || cache_log2_ >= max_cache_log2_) return;
  // Grow only under sustained pressure: the recent window missed at least
  // half its lookups AND the cache has absorbed one insert per slot since
  // the last resize (so a short miss burst on a huge cold cache does not
  // double it).  Both inputs are operation-sequence-determined, so growth
  // points are reproducible run to run.
  if (misses * 2 < lookups) return;
  if (cache_inserts_since_resize_ < (std::uint64_t{1} << cache_log2_)) return;
  grow_cache();
}

void Manager::grow_cache() noexcept {
  // Injected growth failure takes the real bad_alloc branch: growth is
  // quietly disabled and the current cache keeps working.  This function
  // is noexcept, so the failpoint must not throw here.
  if (BDDMIN_FAILPOINT("cache_grow_oom")) {
    cache_growth_enabled_ = false;
    return;
  }
  std::vector<CacheSet> fresh;
  try {
    fresh.resize(std::size_t{1} << cache_log2_);  // double the set count
  } catch (const std::bad_alloc&) {
    cache_growth_enabled_ = false;  // degrade quietly: keep the current cache
    return;
  }
  // Rehash the live entries so memoized results survive a resize that
  // happens mid-recursion; stale-epoch and empty slots are dropped.  Way 1
  // is replayed before way 0 so the recency order inside each target set
  // is preserved.
  const std::size_t set_mask = fresh.size() - 1;
  const auto place = [&](const CacheEntry& e) {
    if (e.k1 == ~0ull || e.epoch != cache_epoch_) return;
    const std::size_t set =
        static_cast<std::size_t>(cache_hash(e.k1, e.k2)) & set_mask;
    CacheEntry* const way = fresh[set].way;
    way[1] = way[0];
    way[0] = e;
  };
  for (const CacheSet& s : cache_) {
    place(s.way[1]);
    place(s.way[0]);
  }
  cache_ = std::move(fresh);
  ++cache_log2_;
  cache_set_mask_ = set_mask;
  cache_inserts_since_resize_ = 0;
  counters_.bump(telemetry::Counter::kCacheGrowths);
}

void Manager::set_cache_growth_limit(unsigned max_log2) noexcept {
  max_cache_log2_ = std::clamp(max_log2, cache_log2_, kMaxCacheLog2);
}

Edge Manager::ite(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return !f;
  // Replace g/h when they repeat f: ite(f, f, h) = ite(f, 1, h), etc.
  if (f == g) g = kOne;
  else if (f == !g) g = kZero;
  if (f == h) h = kZero;
  else if (f == !h) h = kOne;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return !f;

  // Canonical triple: among equivalent argument forms pick the one whose
  // first argument has the topmost variable (Brace/Rudell/Bryant).
  const std::uint32_t lf = level_of(f);
  if (g == kOne) {
    if (level_of(h) < lf) std::swap(f, h);  // ite(f,1,h) == ite(h,1,f)
  } else if (h == kZero) {
    if (level_of(g) < lf) std::swap(f, g);  // ite(f,g,0) == ite(g,f,0)
  } else if (h == kOne) {
    if (level_of(g) < lf) {                 // ite(f,g,1) == ite(!g,!f,1)
      const Edge nf = !g;
      g = !f;
      f = nf;
    }
  } else if (g == kZero) {
    if (level_of(h) < lf) {                 // ite(f,0,h) == ite(!h,0,!f)
      const Edge nf = !h;
      h = !f;
      f = nf;
    }
  } else if (g == !h) {
    if (level_of(g) < lf) {                 // ite(f,g,!g) == ite(g,f,!f)
      const Edge nf = g;
      g = f;
      f = nf;
      h = !g;
    }
  }
  // First argument regular.
  if (f.complemented()) {
    std::swap(g, h);
    f = !f;
  }
  // Output complement: cache only results with a regular g.
  const bool out_complement = g.complemented();
  if (out_complement) {
    g = !g;
    h = !h;
  }

  Edge result;
  const CacheKey key = cache_key(cache_tag::kIte, f, g, h);
  if (cache_lookup(key, &result)) {
    return result.complement_if(out_complement);
  }
  // One budgeted step per cache miss.  An abort mid-recursion is safe: every
  // node built so far is dead (ref == 0) and the next GC reclaims it.
  governor_.charge_step();

  const std::uint32_t v = top_var(f, g, h);
  const auto [f1, f0] = branches(f, v);
  const auto [g1, g0] = branches(g, v);
  const auto [h1, h0] = branches(h, v);
  const Edge t = ite(f1, g1, h1);
  const Edge e = ite(f0, g0, h0);
  result = make_node(v, t, e);
  cache_insert(key, result);
  return result.complement_if(out_complement);
}

// ---------------------------------------------------------------------
// Specialized two-operand apply kernels.  These skip the ITE
// standard-triple normalizer: the terminal tests and the commutative
// canonicalization below are the whole preamble, and the dedicated cache
// tags keep AND/XOR results out of the (busier) ITE key space.
// ---------------------------------------------------------------------

Edge Manager::and_kernel(Edge f, Edge g) {
  // Terminal cases.
  if (f == g) return f;
  if (f == !g || f == kZero || g == kZero) return kZero;
  if (f == kOne) return g;
  if (g == kOne) return f;
  // Commutative canonicalization: order the operands by raw edge bits so
  // (f, g) and (g, f) share one cache entry.  disjoint_rec() canonicalizes
  // identically, which is what lets the two share AND->0 results.
  if (f.bits > g.bits) std::swap(f, g);
  Edge result;
  const CacheKey key = cache_key(cache_tag::kAnd, f, g, kZero);
  if (cache_lookup(key, &result)) return result;
  // One budgeted step per cache miss, exactly like ite(); an abort leaves
  // only dead nodes behind.
  governor_.charge_step();
  const std::uint32_t v = top_var(f, g);
  const auto [f1, f0] = branches(f, v);
  const auto [g1, g0] = branches(g, v);
  const Edge t = and_kernel(f1, g1);
  const Edge e = and_kernel(f0, g0);
  result = make_node(v, t, e);
  cache_insert(key, result);
  return result;
}

Edge Manager::xor_kernel(Edge f, Edge g) {
  // Terminal cases.
  if (f == g) return kZero;
  if (f == !g) return kOne;
  if (f == kZero) return g;
  if (f == kOne) return !g;
  if (g == kZero) return f;
  if (g == kOne) return !f;
  // XOR ignores operand complements up to output complement:
  // f ^ g == !( !f ^ g ) == !( f ^ !g ) == !f ^ !g.  Strip both to regular
  // edges so all four combinations share one cache entry, then order
  // commutatively.
  bool out_complement = false;
  if (f.complemented()) {
    f = !f;
    out_complement = !out_complement;
  }
  if (g.complemented()) {
    g = !g;
    out_complement = !out_complement;
  }
  if (f.bits > g.bits) std::swap(f, g);
  Edge result;
  const CacheKey key = cache_key(cache_tag::kXor, f, g, kZero);
  if (cache_lookup(key, &result)) {
    return result.complement_if(out_complement);
  }
  governor_.charge_step();
  const std::uint32_t v = top_var(f, g);
  const auto [f1, f0] = branches(f, v);
  const auto [g1, g0] = branches(g, v);
  const Edge t = xor_kernel(f1, g1);
  const Edge e = xor_kernel(f0, g0);
  result = make_node(v, t, e);
  cache_insert(key, result);
  return result.complement_if(out_complement);
}

bool Manager::disjoint(Edge f, Edge g) { return disjoint_rec(f, g); }

bool Manager::disjoint_rec(Edge f, Edge g) {
  // Terminal cases: with neither operand zero, a constant or an equal
  // pair intersects; complementary operands never do.
  if (f == kZero || g == kZero) return true;
  if (f == !g) return true;
  if (f == kOne || g == kOne || f == g) return false;
  if (f.bits > g.bits) std::swap(f, g);  // match and_kernel's canonical key
  Edge cached;
  // A memoized AND answers exactly; an AND->0 subproof doubles as a
  // disjointness certificate and vice versa (inserted below).
  const CacheKey and_key = cache_key(cache_tag::kAnd, f, g, kZero);
  if (cache_lookup(and_key, &cached)) return cached == kZero;
  // Intersection markers from earlier early-exit walks: stored under their
  // own tag because "f & g != 0" does not say what f & g *is*.
  const CacheKey marker_key = cache_key(cache_tag::kDisjoint, f, g, kZero);
  if (cache_lookup(marker_key, &cached)) return false;
  governor_.charge_step();
  const std::uint32_t v = top_var(f, g);
  const auto [f1, f0] = branches(f, v);
  const auto [g1, g0] = branches(g, v);
  // Early exit: the first intersecting path answers the whole query; the
  // remaining cofactor pair is never visited and no nodes are built.
  if (!disjoint_rec(f1, g1) || !disjoint_rec(f0, g0)) {
    cache_insert(marker_key, kOne);
    return false;
  }
  cache_insert(and_key, kZero);  // genuine AND result: f & g == 0
  return true;
}

// ---------------------------------------------------------------------
// Dynamic reordering (Rudell's sifting over in-place level swaps).
// ---------------------------------------------------------------------

std::ptrdiff_t Manager::swap_adjacent_levels(std::uint32_t level) {
  BDDMIN_CHECK(level + 1 < num_vars_);
  // Injected before any mutation: an abort *between* swaps, exactly where
  // the up-front reserve below would also throw.
  if (BDDMIN_FAILPOINT("reorder_swap_oom")) {
    throw OutOfMemory("failpoint: reorder swap", 0);
  }
  counters_.bump(telemetry::Counter::kSiftSwaps);
  const std::uint32_t x = level_to_var_[level];
  const std::uint32_t y = level_to_var_[level + 1];
  const std::ptrdiff_t before = static_cast<std::ptrdiff_t>(unique_size());

  // Nodes labelled x that depend on y must be restructured; the rest keep
  // their label and simply end up one level lower.
  std::vector<std::uint32_t> interacting;
  for (const std::uint32_t head : subtables_[x].buckets) {
    for (std::uint32_t i = head; i != kNilIndex; i = nodes_[i].next) {
      const Node& n = nodes_[i];
      if (nodes_[n.hi.index()].var == y || nodes_[n.lo.index()].var == y) {
        interacting.push_back(i);
      }
    }
  }
  // Once the order maps are flipped and the rewrite below starts, a throw
  // would tear the table (maps flipped, nodes half rewritten, the current
  // node unlinked) — exactly the abort the strong guarantee forbids.  So
  // the whole mutation runs with the node quota suspended, and the
  // worst-case slot growth (2 fresh nodes per interacting node, plus their
  // free-list slots when they die again) is reserved up front, where a
  // failed allocation still leaves the table untouched.  The quota is
  // re-enforced at the safe point after the swap completes, so a budgeted
  // reorder still aborts — between swaps, never inside one.  (grow_buckets
  // keeps the table consistent on its own OOM path, see its handler.)
  std::vector<std::uint32_t> dead;
  NodeQuotaSuspension quota_pause(governor_);
  try {
    nodes_.reserve(nodes_.size() + 2 * interacting.size());
    free_list_.reserve(free_list_.size() + 2 * interacting.size());
    dead.reserve(2 * interacting.size());
  } catch (const std::bad_alloc&) {
    throw OutOfMemory("node table",
                      2 * interacting.size() * sizeof(Node));
  }
  // Flip the order maps first so make_node's level assertions see the new
  // world while the x-children of the rewritten nodes are created.
  level_to_var_[level] = y;
  level_to_var_[level + 1] = x;
  var_to_level_[x] = level + 1;
  var_to_level_[y] = level;

  for (const std::uint32_t index : interacting) {
    subtable_unlink(index);
    const Edge f1 = nodes_[index].hi;  // regular by invariant
    const Edge f0 = nodes_[index].lo;
    const auto [f11, f10] = branches(f1, y);
    const auto [f01, f00] = branches(f0, y);
    // (x,(y,f11,f10),(y,f01,f00))  ==  (y,(x,f11,f01),(x,f10,f00))
    const Edge g1 = make_node(x, f11, f01);
    const Edge g0 = make_node(x, f10, f00);
    BDDMIN_DCHECK(!g1.complemented());
    ref(g1);
    ref(g0);
    Node& n = nodes_[index];  // re-fetch: make_node may have reallocated
    n.var = y;
    n.hi = g1;
    n.lo = g0;
    subtable_link(index);
    deref(f1);
    deref(f0);
    if (nodes_[f1.index()].ref == 0) dead.push_back(f1.index());
    if (nodes_[f0.index()].ref == 0) dead.push_back(f0.index());
  }
  // Free the ex-children that died, so repeated swaps (sifting) see an
  // undistorted size signal and swap∘swap is the structural identity.
  bool freed_any = false;
  while (!dead.empty()) {
    const std::uint32_t i = dead.back();
    dead.pop_back();
    Node& n = nodes_[i];
    if (n.var == kFreeVar || n.ref != 0) continue;
    subtable_unlink(i);
    for (const Edge child : {n.hi, n.lo}) {
      Node& cn = nodes_[child.index()];
      if (cn.ref == 0xFFFF'FFFFu) continue;
      if (--cn.ref == 0) {
        --live_count_;
        ++dead_count_;
        dead.push_back(child.index());
      }
    }
    n.var = kFreeVar;
    free_list_.push_back(i);
    --dead_count_;
    // Swap frees bypass garbage_collect(); count them separately so the
    // audit's insert/reclaim cross-check still balances.
    counters_.bump(telemetry::Counter::kReorderNodesFreed);
    freed_any = true;
  }
  // Freed slots may be referenced by memoized results; drop them (O(1)).
  if (freed_any) clear_caches();
  return static_cast<std::ptrdiff_t>(unique_size()) - before;
}

void Manager::sift_var(std::uint32_t var, double max_growth) {
  if (num_vars_ < 2) return;
  std::ptrdiff_t size = static_cast<std::ptrdiff_t>(unique_size());
  std::ptrdiff_t best = size;
  std::uint32_t best_level = level_of_var(var);
  const std::ptrdiff_t limit =
      static_cast<std::ptrdiff_t>(static_cast<double>(size) * max_growth) + 2;
  // Each swap runs with the node quota suspended (it must not abort
  // mid-mutation, see swap_adjacent_levels); re-enforce the quota at the
  // swap boundaries, where the table is consistent — a budgeted reorder
  // then aborts between swaps with the strong guarantee intact.
  const auto quota_safe_point = [this] {
    if (governor_.node_limited()) {
      governor_.check_nodes(live_count_ + dead_count_);
    }
  };
  // Downward pass.
  while (level_of_var(var) + 1 < num_vars_ && size <= limit) {
    size += swap_adjacent_levels(level_of_var(var));
    quota_safe_point();
    if (size < best) {
      best = size;
      best_level = level_of_var(var);
    }
  }
  // Upward pass (through the start position to the top).
  while (level_of_var(var) > 0 && size <= limit) {
    size += swap_adjacent_levels(level_of_var(var) - 1);
    quota_safe_point();
    if (size <= best) {
      best = size;
      best_level = level_of_var(var);
    }
  }
  // Settle at the best position seen.
  while (level_of_var(var) < best_level) {
    size += swap_adjacent_levels(level_of_var(var));
    quota_safe_point();
  }
  while (level_of_var(var) > best_level) {
    size += swap_adjacent_levels(level_of_var(var) - 1);
    quota_safe_point();
  }
}

std::size_t Manager::reorder_sift(double max_growth) {
  garbage_collect();  // dead nodes would distort the size signal
  std::vector<std::uint32_t> vars(num_vars_);
  std::iota(vars.begin(), vars.end(), 0u);
  std::stable_sort(vars.begin(), vars.end(), [&](std::uint32_t a, std::uint32_t b) {
    return subtables_[a].count > subtables_[b].count;
  });
  for (const std::uint32_t var : vars) sift_var(var, max_growth);
  clear_caches();
  return unique_size();
}

void Manager::set_order(std::span<const std::uint32_t> order) {
  if (order.size() != num_vars_) {
    throw std::invalid_argument("set_order: wrong permutation size");
  }
  std::vector<bool> seen(num_vars_, false);
  for (const std::uint32_t v : order) {
    if (v >= num_vars_ || seen[v]) {
      throw std::invalid_argument("set_order: not a permutation");
    }
    seen[v] = true;
  }
  // Selection sort by adjacent swaps: bubble each target variable up.
  // As in sift_var, the node quota is enforced between swaps (never
  // inside one); an abort leaves a consistent, partially permuted table.
  for (std::uint32_t target = 0; target < num_vars_; ++target) {
    const std::uint32_t var = order[target];
    while (level_of_var(var) > target) {
      (void)swap_adjacent_levels(level_of_var(var) - 1);
      if (governor_.node_limited()) {
        governor_.check_nodes(live_count_ + dead_count_);
      }
    }
  }
  clear_caches();
}

void Manager::check_invariants() const {
  // Thin wrapper over BddAudit (analysis/audit.hpp): the structural pass
  // covers everything the historical inline checks did, and the ref-count
  // pass closes their gap — live_count_/dead_count_ are validated against
  // the actual per-node reference counts, not just the chain totals.
  analysis::AuditReport report;
  analysis::audit_structure(*this, report);
  analysis::audit_refcounts(*this, {}, /*exact_roots=*/false, report);
  if (!report.ok()) throw std::logic_error(report.summary());
}

}  // namespace bddmin
