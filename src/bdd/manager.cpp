#include "bdd/manager.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "analysis/access.hpp"
#include "analysis/audit.hpp"
#include "analysis/check.hpp"
#include "bdd/ops.hpp"

namespace bddmin {
namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer: cheap, well distributed.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Counter pair (hit = returned value, miss = value + 1) for a cache op
/// tag.  Tags 2..7 are reserved-but-unused manager internals; they and
/// the client tags (>= kUserOpBase) all fall into the "user" class.
constexpr telemetry::Counter cache_hit_counter_of(std::uint32_t op) noexcept {
  using telemetry::CacheOpClass;
  CacheOpClass cls = CacheOpClass::kUser;
  if (op == analysis::ManagerAccess::op_ite()) {
    cls = CacheOpClass::kIte;
  } else if (op == cache_tag::kCofactor) {
    cls = CacheOpClass::kCofactor;
  } else if (op == cache_tag::kExists || op == cache_tag::kAndExists) {
    cls = CacheOpClass::kQuantify;
  } else if (op == cache_tag::kCompose) {
    cls = CacheOpClass::kCompose;
  }
  return telemetry::cache_hit_counter(cls);
}

}  // namespace

Manager::Manager(unsigned num_vars, unsigned cache_log2)
    : num_vars_(num_vars),
      subtables_(num_vars),
      var_to_level_(num_vars),
      level_to_var_(num_vars) {
  // Validate before allocating: a bogus cache_log2 would either fail with a
  // raw bad_alloc or silently overcommit address space the first touch
  // cannot back.  Either way the caller gets the requested size.
  const std::size_t slots = std::size_t{1} << cache_log2;
  if (cache_log2 > kMaxCacheLog2) {
    throw OutOfMemory("computed cache", slots * sizeof(CacheEntry));
  }
  try {
    cache_.resize(slots);
  } catch (const std::bad_alloc&) {
    throw OutOfMemory("computed cache", slots * sizeof(CacheEntry));
  }
  cache_mask_ = slots - 1;
  nodes_.reserve(1u << 12);
  for (SubTable& table : subtables_) table.buckets.assign(4, kNilIndex);
  std::iota(var_to_level_.begin(), var_to_level_.end(), 0u);
  std::iota(level_to_var_.begin(), level_to_var_.end(), 0u);
  // Terminal node at index 0; its ref count is saturated so it never dies.
  Node terminal;
  terminal.var = kConstVar;
  terminal.ref = 0xFFFF'FFFFu;
  nodes_.push_back(terminal);
  live_count_ = 1;
  governor_.note_live(live_count_);
  // Steps are charged inside the governor; route them into this manager's
  // counter bank so telemetry sees them even on unlimited runs.
  governor_.attach_step_counter(counters_.step_slot());
}

unsigned Manager::add_var() {
  const unsigned var = num_vars_++;
  SubTable table;
  table.buckets.assign(4, kNilIndex);
  subtables_.push_back(std::move(table));
  level_to_var_.push_back(var);  // new variable enters at the bottom
  var_to_level_.push_back(static_cast<std::uint32_t>(level_to_var_.size() - 1));
  return var;
}

std::size_t Manager::node_hash(Edge hi, Edge lo) noexcept {
  return static_cast<std::size_t>(
      mix64((std::uint64_t{hi.bits} << 32) ^ lo.bits));
}

std::size_t Manager::unique_size() const noexcept {
  std::size_t total = 0;
  for (const SubTable& table : subtables_) total += table.count;
  return total;
}

Edge Manager::var_edge(std::uint32_t v) {
  BDDMIN_CHECK(v < num_vars_);
  return make_node(v, kOne, kZero);
}

Edge Manager::nvar_edge(std::uint32_t v) { return !var_edge(v); }

Edge Manager::make_node(std::uint32_t var, Edge hi, Edge lo) {
  if (hi == lo) return hi;  // deletion rule
  BDDMIN_DCHECK(var < num_vars_);
  BDDMIN_DCHECK(level_of_var(var) < level_of(hi) && level_of_var(var) < level_of(lo));
  // Canonical complement form: stored hi edge is regular.
  const bool out_complement = hi.complemented();
  if (out_complement) {
    hi = !hi;
    lo = !lo;
  }
  const std::uint32_t index = unique_insert(var, hi, lo);
  return Edge{index << 1}.complement_if(out_complement);
}

std::uint32_t Manager::unique_insert(std::uint32_t var, Edge hi, Edge lo) {
  SubTable& table = subtables_[var];
  const std::size_t h = node_hash(hi, lo) & (table.buckets.size() - 1);
  for (std::uint32_t i = table.buckets[h]; i != kNilIndex; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.hi == hi && n.lo == lo) {  // merging rule
      counters_.bump(telemetry::Counter::kUniqueHits);
      return i;
    }
  }
  // Quotas are enforced before a slot is claimed, so looking up an existing
  // node never throws and an abort leaves the table untouched.
  if (governor_.node_limited()) {
    governor_.check_nodes(live_count_ + dead_count_);
  }
  std::uint32_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
  } else {
    if (nodes_.size() >= (kNilIndex >> 1)) throw std::length_error("BDD node table full");
    try {
      nodes_.emplace_back();
    } catch (const std::bad_alloc&) {
      throw OutOfMemory("node table", 2 * nodes_.capacity() * sizeof(Node));
    }
    index = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  counters_.bump(telemetry::Counter::kUniqueInserts);
  Node& n = nodes_[index];
  n.var = var;
  n.hi = hi;
  n.lo = lo;
  n.ref = 0;
  n.next = table.buckets[h];
  table.buckets[h] = index;
  ++table.count;
  ++dead_count_;
  ref(hi);  // a stored node holds a reference on each child
  ref(lo);
  if (table.count > table.buckets.size()) grow_buckets(table);
  return index;
}

void Manager::subtable_unlink(std::uint32_t index) {
  Node& n = nodes_[index];
  SubTable& table = subtables_[n.var];
  const std::size_t h = node_hash(n.hi, n.lo) & (table.buckets.size() - 1);
  std::uint32_t* link = &table.buckets[h];
  while (*link != index) link = &nodes_[*link].next;
  *link = n.next;
  --table.count;
}

void Manager::subtable_link(std::uint32_t index) {
  Node& n = nodes_[index];
  SubTable& table = subtables_[n.var];
  const std::size_t h = node_hash(n.hi, n.lo) & (table.buckets.size() - 1);
  n.next = table.buckets[h];
  table.buckets[h] = index;
  ++table.count;
  if (table.count > table.buckets.size()) grow_buckets(table);
}

void Manager::grow_buckets(SubTable& table) {
  std::vector<std::uint32_t> fresh;
  try {
    fresh.assign(table.buckets.size() * 2, kNilIndex);
  } catch (const std::bad_alloc&) {
    // The node that triggered the growth is already linked; the table stays
    // consistent (just denser than ideal), so rethrowing here still honors
    // the strong guarantee.
    throw OutOfMemory("subtable buckets",
                      2 * table.buckets.size() * sizeof(std::uint32_t));
  }
  for (std::uint32_t head : table.buckets) {
    for (std::uint32_t i = head; i != kNilIndex;) {
      const std::uint32_t next = nodes_[i].next;
      const std::size_t h = node_hash(nodes_[i].hi, nodes_[i].lo) & (fresh.size() - 1);
      nodes_[i].next = fresh[h];
      fresh[h] = i;
      i = next;
    }
  }
  table.buckets = std::move(fresh);
}

void Manager::ref(Edge e) noexcept {
  Node& n = nodes_[e.index()];
  if (n.ref == 0xFFFF'FFFFu) return;  // saturated (terminal)
  if (n.ref++ == 0) {
    --dead_count_;
    ++live_count_;
    governor_.note_live(live_count_);
  }
}

void Manager::deref(Edge e) noexcept {
  Node& n = nodes_[e.index()];
  if (n.ref == 0xFFFF'FFFFu) return;
  BDDMIN_DCHECK(n.ref > 0);  // a failure here terminates: deref underflow
  if (--n.ref == 0) {
    --live_count_;
    ++dead_count_;
  }
}

std::size_t Manager::garbage_collect() {
  ++gc_runs_;
  counters_.bump(telemetry::Counter::kGcRuns);
  std::vector<std::uint32_t> work;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kFreeVar && nodes_[i].ref == 0) work.push_back(i);
  }
  std::size_t freed = 0;
  while (!work.empty()) {
    const std::uint32_t i = work.back();
    work.pop_back();
    Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;  // already swept via another path
    subtable_unlink(i);
    // Cascade: release this node's references on its children.
    for (const Edge child : {n.hi, n.lo}) {
      Node& cn = nodes_[child.index()];
      if (cn.ref == 0xFFFF'FFFFu) continue;
      BDDMIN_DCHECK(cn.ref > 0);
      if (--cn.ref == 0) {
        --live_count_;
        ++dead_count_;
        work.push_back(child.index());
      }
    }
    n.var = kFreeVar;
    free_list_.push_back(i);
    --dead_count_;
    ++freed;
  }
  counters_.add(telemetry::Counter::kGcNodesReclaimed, freed);
  clear_caches();  // cached results may reference freed nodes
  return freed;
}

void Manager::clear_caches() noexcept {
  ++cache_epoch_;  // O(1): stale-epoch entries are ignored on lookup
}

bool Manager::cache_lookup(std::uint32_t op, Edge a, Edge b, Edge c,
                           Edge* out) const noexcept {
  const std::uint64_t k1 = (std::uint64_t{op} << 32) | a.bits;
  const std::uint64_t k2 = (std::uint64_t{b.bits} << 32) | c.bits;
  const CacheEntry& e = cache_[mix64(k1 ^ mix64(k2)) & cache_mask_];
  if (e.k1 == k1 && e.k2 == k2 && e.epoch == cache_epoch_) {
    counters_.bump(cache_hit_counter_of(op));
    *out = e.result;
    return true;
  }
  // Miss counters sit one slot after their hit counter (see counters.hpp).
  counters_.bump(static_cast<telemetry::Counter>(
      static_cast<unsigned>(cache_hit_counter_of(op)) + 1));
  return false;
}

void Manager::cache_insert(std::uint32_t op, Edge a, Edge b, Edge c,
                           Edge result) noexcept {
  const std::uint64_t k1 = (std::uint64_t{op} << 32) | a.bits;
  const std::uint64_t k2 = (std::uint64_t{b.bits} << 32) | c.bits;
  CacheEntry& e = cache_[mix64(k1 ^ mix64(k2)) & cache_mask_];
  e.k1 = k1;
  e.k2 = k2;
  e.epoch = cache_epoch_;
  e.result = result;
}

Edge Manager::ite(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f == kOne) return g;
  if (f == kZero) return h;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return !f;
  // Replace g/h when they repeat f: ite(f, f, h) = ite(f, 1, h), etc.
  if (f == g) g = kOne;
  else if (f == !g) g = kZero;
  if (f == h) h = kZero;
  else if (f == !h) h = kOne;
  if (g == h) return g;
  if (g == kOne && h == kZero) return f;
  if (g == kZero && h == kOne) return !f;

  // Canonical triple: among equivalent argument forms pick the one whose
  // first argument has the topmost variable (Brace/Rudell/Bryant).
  const std::uint32_t lf = level_of(f);
  if (g == kOne) {
    if (level_of(h) < lf) std::swap(f, h);  // ite(f,1,h) == ite(h,1,f)
  } else if (h == kZero) {
    if (level_of(g) < lf) std::swap(f, g);  // ite(f,g,0) == ite(g,f,0)
  } else if (h == kOne) {
    if (level_of(g) < lf) {                 // ite(f,g,1) == ite(!g,!f,1)
      const Edge nf = !g;
      g = !f;
      f = nf;
    }
  } else if (g == kZero) {
    if (level_of(h) < lf) {                 // ite(f,0,h) == ite(!h,0,!f)
      const Edge nf = !h;
      h = !f;
      f = nf;
    }
  } else if (g == !h) {
    if (level_of(g) < lf) {                 // ite(f,g,!g) == ite(g,f,!f)
      const Edge nf = g;
      g = f;
      f = nf;
      h = !g;
    }
  }
  // First argument regular.
  if (f.complemented()) {
    std::swap(g, h);
    f = !f;
  }
  // Output complement: cache only results with a regular g.
  const bool out_complement = g.complemented();
  if (out_complement) {
    g = !g;
    h = !h;
  }

  Edge result;
  if (cache_lookup(kOpIte, f, g, h, &result)) {
    return result.complement_if(out_complement);
  }
  // One budgeted step per cache miss.  An abort mid-recursion is safe: every
  // node built so far is dead (ref == 0) and the next GC reclaims it.
  governor_.charge_step();

  const std::uint32_t v = top_var(f, g, h);
  const auto [f1, f0] = branches(f, v);
  const auto [g1, g0] = branches(g, v);
  const auto [h1, h0] = branches(h, v);
  const Edge t = ite(f1, g1, h1);
  const Edge e = ite(f0, g0, h0);
  result = make_node(v, t, e);
  cache_insert(kOpIte, f, g, h, result);
  return result.complement_if(out_complement);
}

// ---------------------------------------------------------------------
// Dynamic reordering (Rudell's sifting over in-place level swaps).
// ---------------------------------------------------------------------

std::ptrdiff_t Manager::swap_adjacent_levels(std::uint32_t level) {
  BDDMIN_CHECK(level + 1 < num_vars_);
  counters_.bump(telemetry::Counter::kSiftSwaps);
  const std::uint32_t x = level_to_var_[level];
  const std::uint32_t y = level_to_var_[level + 1];
  const std::ptrdiff_t before = static_cast<std::ptrdiff_t>(unique_size());

  // Nodes labelled x that depend on y must be restructured; the rest keep
  // their label and simply end up one level lower.
  std::vector<std::uint32_t> interacting;
  for (const std::uint32_t head : subtables_[x].buckets) {
    for (std::uint32_t i = head; i != kNilIndex; i = nodes_[i].next) {
      const Node& n = nodes_[i];
      if (nodes_[n.hi.index()].var == y || nodes_[n.lo.index()].var == y) {
        interacting.push_back(i);
      }
    }
  }
  // Flip the order maps first so make_node's level assertions see the new
  // world while the x-children of the rewritten nodes are created.
  level_to_var_[level] = y;
  level_to_var_[level + 1] = x;
  var_to_level_[x] = level + 1;
  var_to_level_[y] = level;

  std::vector<std::uint32_t> dead;
  for (const std::uint32_t index : interacting) {
    subtable_unlink(index);
    const Edge f1 = nodes_[index].hi;  // regular by invariant
    const Edge f0 = nodes_[index].lo;
    const auto [f11, f10] = branches(f1, y);
    const auto [f01, f00] = branches(f0, y);
    // (x,(y,f11,f10),(y,f01,f00))  ==  (y,(x,f11,f01),(x,f10,f00))
    const Edge g1 = make_node(x, f11, f01);
    const Edge g0 = make_node(x, f10, f00);
    BDDMIN_DCHECK(!g1.complemented());
    ref(g1);
    ref(g0);
    Node& n = nodes_[index];  // re-fetch: make_node may have reallocated
    n.var = y;
    n.hi = g1;
    n.lo = g0;
    subtable_link(index);
    deref(f1);
    deref(f0);
    if (nodes_[f1.index()].ref == 0) dead.push_back(f1.index());
    if (nodes_[f0.index()].ref == 0) dead.push_back(f0.index());
  }
  // Free the ex-children that died, so repeated swaps (sifting) see an
  // undistorted size signal and swap∘swap is the structural identity.
  bool freed_any = false;
  while (!dead.empty()) {
    const std::uint32_t i = dead.back();
    dead.pop_back();
    Node& n = nodes_[i];
    if (n.var == kFreeVar || n.ref != 0) continue;
    subtable_unlink(i);
    for (const Edge child : {n.hi, n.lo}) {
      Node& cn = nodes_[child.index()];
      if (cn.ref == 0xFFFF'FFFFu) continue;
      if (--cn.ref == 0) {
        --live_count_;
        ++dead_count_;
        dead.push_back(child.index());
      }
    }
    n.var = kFreeVar;
    free_list_.push_back(i);
    --dead_count_;
    // Swap frees bypass garbage_collect(); count them separately so the
    // audit's insert/reclaim cross-check still balances.
    counters_.bump(telemetry::Counter::kReorderNodesFreed);
    freed_any = true;
  }
  // Freed slots may be referenced by memoized results; drop them (O(1)).
  if (freed_any) clear_caches();
  return static_cast<std::ptrdiff_t>(unique_size()) - before;
}

void Manager::sift_var(std::uint32_t var, double max_growth) {
  if (num_vars_ < 2) return;
  std::ptrdiff_t size = static_cast<std::ptrdiff_t>(unique_size());
  std::ptrdiff_t best = size;
  std::uint32_t best_level = level_of_var(var);
  const std::ptrdiff_t limit =
      static_cast<std::ptrdiff_t>(static_cast<double>(size) * max_growth) + 2;
  // Downward pass.
  while (level_of_var(var) + 1 < num_vars_ && size <= limit) {
    size += swap_adjacent_levels(level_of_var(var));
    if (size < best) {
      best = size;
      best_level = level_of_var(var);
    }
  }
  // Upward pass (through the start position to the top).
  while (level_of_var(var) > 0 && size <= limit) {
    size += swap_adjacent_levels(level_of_var(var) - 1);
    if (size <= best) {
      best = size;
      best_level = level_of_var(var);
    }
  }
  // Settle at the best position seen.
  while (level_of_var(var) < best_level) {
    size += swap_adjacent_levels(level_of_var(var));
  }
  while (level_of_var(var) > best_level) {
    size += swap_adjacent_levels(level_of_var(var) - 1);
  }
}

std::size_t Manager::reorder_sift(double max_growth) {
  garbage_collect();  // dead nodes would distort the size signal
  std::vector<std::uint32_t> vars(num_vars_);
  std::iota(vars.begin(), vars.end(), 0u);
  std::stable_sort(vars.begin(), vars.end(), [&](std::uint32_t a, std::uint32_t b) {
    return subtables_[a].count > subtables_[b].count;
  });
  for (const std::uint32_t var : vars) sift_var(var, max_growth);
  clear_caches();
  return unique_size();
}

void Manager::set_order(std::span<const std::uint32_t> order) {
  if (order.size() != num_vars_) {
    throw std::invalid_argument("set_order: wrong permutation size");
  }
  std::vector<bool> seen(num_vars_, false);
  for (const std::uint32_t v : order) {
    if (v >= num_vars_ || seen[v]) {
      throw std::invalid_argument("set_order: not a permutation");
    }
    seen[v] = true;
  }
  // Selection sort by adjacent swaps: bubble each target variable up.
  for (std::uint32_t target = 0; target < num_vars_; ++target) {
    const std::uint32_t var = order[target];
    while (level_of_var(var) > target) {
      (void)swap_adjacent_levels(level_of_var(var) - 1);
    }
  }
  clear_caches();
}

void Manager::check_invariants() const {
  // Thin wrapper over BddAudit (analysis/audit.hpp): the structural pass
  // covers everything the historical inline checks did, and the ref-count
  // pass closes their gap — live_count_/dead_count_ are validated against
  // the actual per-node reference counts, not just the chain totals.
  analysis::AuditReport report;
  analysis::audit_structure(*this, report);
  analysis::audit_refcounts(*this, {}, /*exact_roots=*/false, report);
  if (!report.ok()) throw std::logic_error(report.summary());
}

}  // namespace bddmin
