/// \file cache_tags.hpp
/// \brief The single registry of computed-cache operation tags.
///
/// Every `Manager::cache_insert` / `cache_lookup` key carries a 32-bit
/// operation tag.  Tags partition the one shared cache between operations:
/// two ops sharing a tag silently poison each other's memoized results, so
/// ad-hoc tag constants scattered over the tree are a correctness hazard.
/// This header is therefore the *only* place a tag value may be defined —
/// rule R2 of tools/bddmin_lint.py rejects cache_insert/cache_lookup call
/// sites whose tag does not resolve here, and rejects duplicate values
/// inside this file.
///
/// Layout of the tag space:
///   1..7    manager-internal recursions (ite and the apply kernels);
///   8..63   budgeted free-function recursions (bdd/ops.cpp);
///   >= 64   (`kUserBase`, aka Manager::kUserOpBase) client algorithms —
///           carve new client tags as `kUserBase + n` HERE, not locally.
///
/// Telemetry classifies cache traffic per tag (see cache_hit_counter_of in
/// bdd/manager.cpp) and the cache audit validates that every cached entry
/// carries a registered tag (analysis/cache_audit.cpp).
#pragma once

#include <cstdint>

namespace bddmin::cache_tag {

// ---- Manager-internal recursions (reserved range 1..7) -----------------
inline constexpr std::uint32_t kIte = 1;       ///< Manager::ite
inline constexpr std::uint32_t kAnd = 2;       ///< and_kernel (+ leq/disjoint subproofs)
inline constexpr std::uint32_t kXor = 3;       ///< xor_kernel
inline constexpr std::uint32_t kDisjoint = 4;  ///< disjoint_rec intersection markers

// ---- Budgeted free-function recursions, bdd/ops.cpp (range 8..63) ------
inline constexpr std::uint32_t kCofactor = 8;
inline constexpr std::uint32_t kExists = 9;
inline constexpr std::uint32_t kAndExists = 10;
inline constexpr std::uint32_t kCompose = 11;

// ---- Client algorithms (>= kUserBase) ----------------------------------
/// First tag available to client algorithms; Manager::kUserOpBase aliases
/// this.  Telemetry buckets everything from here up as the "user" class.
inline constexpr std::uint32_t kUserBase = 64;

}  // namespace bddmin::cache_tag
