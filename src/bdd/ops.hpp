/// \file ops.hpp
/// \brief Derived BDD operations: cofactors, quantification, composition,
/// support, counting.  All are free functions over raw edges; none of them
/// triggers garbage collection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/cache_tags.hpp"
#include "bdd/manager.hpp"

namespace bddmin {

/// Cofactor of f with variable \p var fixed to \p value (Shannon cofactor
/// at any depth, not just the root).
[[nodiscard]] Edge cofactor(Manager& mgr, Edge f, std::uint32_t var, bool value);

/// Cofactor with respect to a cube (a conjunction of literals).
[[nodiscard]] Edge cofactor_cube(Manager& mgr, Edge f, Edge cube);

/// Existential quantification of the variables of \p cube from f.
[[nodiscard]] Edge exists(Manager& mgr, Edge f, Edge cube);

/// Universal quantification of the variables of \p cube from f.
[[nodiscard]] Edge forall(Manager& mgr, Edge f, Edge cube);

/// Relational product exists(cube, f & g) computed in one pass — the
/// workhorse of symbolic image computation.
[[nodiscard]] Edge and_exists(Manager& mgr, Edge f, Edge g, Edge cube);

/// Substitute function \p g for variable \p var in f.
[[nodiscard]] Edge compose(Manager& mgr, Edge f, std::uint32_t var, Edge g);

/// Simultaneous substitution: variable v is replaced by map[v] for each
/// v < map.size(); variables beyond the map are kept.
[[nodiscard]] Edge vector_compose(Manager& mgr, Edge f, std::span<const Edge> map);

/// Sorted list of variables f depends on.
[[nodiscard]] std::vector<std::uint32_t> support(const Manager& mgr, Edge f);

/// Support as a positive cube (conjunction of the support variables).
[[nodiscard]] Edge support_cube(Manager& mgr, Edge f);

/// True if f depends on \p var.
[[nodiscard]] bool depends_on(const Manager& mgr, Edge f, std::uint32_t var);

/// Number of satisfying assignments over \p num_vars variables (double
/// precision; exact for small spaces).
[[nodiscard]] double sat_count(const Manager& mgr, Edge f, unsigned num_vars);

/// Fraction of the Boolean space on which f is 1, in [0, 1].  Independent
/// of the variable count: variables outside f's support scale onset and
/// space alike.
[[nodiscard]] double sat_fraction(const Manager& mgr, Edge f);

/// Node count of f including the terminal node (the paper's |f|).
[[nodiscard]] std::size_t count_nodes(const Manager& mgr, Edge f);

/// Node count of the shared forest rooted at \p roots, incl. the terminal.
[[nodiscard]] std::size_t count_nodes(const Manager& mgr, std::span<const Edge> roots);

/// Ni(f) of Definition 11: number of nodes strictly below level i, i.e.
/// nodes whose variable sits at a level > \p level, plus the terminal node.
[[nodiscard]] std::size_t count_nodes_below(const Manager& mgr, Edge f,
                                            std::uint32_t level);

/// Evaluate f at a complete assignment (index v -> value of x_v).
[[nodiscard]] bool eval(const Manager& mgr, Edge f, const std::vector<bool>& assignment);

/// Build the conjunction of literals: vars[i] in positive (phase[i]=true)
/// or negative phase.
[[nodiscard]] Edge cube_of(Manager& mgr, std::span<const std::uint32_t> vars,
                           const std::vector<bool>& phase);

/// Positive cube over a variable list (all literals positive).
[[nodiscard]] Edge positive_cube(Manager& mgr, std::span<const std::uint32_t> vars);

/// True if f is a cube: exactly one path to the 1 terminal... i.e. a
/// conjunction of literals (f != 0 and every node has a constant-0 child
/// on one side along the single care path).
[[nodiscard]] bool is_cube(const Manager& mgr, Edge f);

}  // namespace bddmin
