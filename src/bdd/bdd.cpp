#include "bdd/bdd.hpp"

#include "bdd/ops.hpp"

namespace bddmin {

std::size_t Bdd::size() const { return count_nodes(*mgr_, e_); }

}  // namespace bddmin
