/// \file io.hpp
/// \brief Text serialization of shared BDD forests.
///
/// The format is order-independent: nodes are written children-first with
/// their variable *names*, and deserialization rebuilds through ITE, so a
/// forest saved under one variable order loads correctly into a manager
/// with any order (including one produced by sifting).
///
/// ```
/// bddmin-bdd v1
/// vars 5
/// nodes 3
/// 1 4 @1 @0      # id var hi lo; @0/@1 constants, ~ prefixes complement
/// 2 2 #1 ~#1
/// roots 2
/// #2 ~#1
/// ```
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/manager.hpp"

namespace bddmin {

/// Serialize the forest rooted at \p roots.
[[nodiscard]] std::string serialize(const Manager& mgr,
                                    std::span<const Edge> roots);

/// Rebuild a serialized forest in \p mgr (which must have at least the
/// recorded variable count); returns the root edges in original order.
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<Edge> deserialize(Manager& mgr, std::string_view text);

/// deserialize() into caller-owned buffers: \p roots receives the root
/// edges, \p scratch is the node-id table the parser builds along the
/// way.  Both are cleared first and keep their capacity, so a worker
/// decoding thousands of forest payloads through the same pair does
/// zero steady-state allocation (the batch engine's per-worker arenas).
/// Parsing works directly on \p text — no stream, no payload copy.
void deserialize_into(Manager& mgr, std::string_view text,
                      std::vector<Edge>* scratch, std::vector<Edge>* roots);

}  // namespace bddmin
