/// \file fsm.hpp
/// \brief Probabilistic state-machine workload description for the
/// concurrency stress harness.
///
/// Modeled on mongo's `fsm_libs/fsm.js` (see SNIPPETS.md): a workload is a
/// weighted transition graph whose states are *operations* over the public
/// API surface — submit a batch, trip a quota, reset the pooled manager,
/// reorder, scrape counters — and whose invariant hooks check, between
/// states, that the system is still telling the truth (BddAudit tiers,
/// truth-table cross-checks, CSV byte-determinism).
///
/// Determinism contract: every random decision is drawn from a
/// *counter-based* stream — `derive_seed(seed, thread, step, salt)` feeds a
/// SplitMix64 generator — so the whole walk of thread T is a pure function
/// of `(seed, T)` and the randomness of step K does not depend on steps
/// before it.  Two consequences the runner exploits:
///
///   * **seeded replay** — a failure at `(seed, thread, step)` is
///     re-executed single-threaded from the same triple alone;
///   * **schedule minimization** — dropping a step from a schedule leaves
///     every retained step's randomness bit-identical (each step carries
///     its own seed), so delta-debugging shrinks failing schedules without
///     perturbing them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace bddmin::stress {

/// Mix (seed, thread, step, salt) into one well-distributed 64-bit seed.
/// Stable across platforms and releases: replay triples printed by one
/// build reproduce in another.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t thread,
                                        std::uint64_t step,
                                        std::uint64_t salt) noexcept;

/// SplitMix64: tiny, fast, and statistically fine for workload decisions.
/// One instance is handed to a state per step, seeded from the step's own
/// derived seed (never shared between steps).
class StepRng {
 public:
  explicit StepRng(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, bound); bound 0 returns 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }
  /// Uniform in [0, 1).
  [[nodiscard]] double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Bernoulli with probability \p p.
  [[nodiscard]] bool chance(double p) noexcept { return unit() < p; }

 private:
  std::uint64_t state_;
};

class StressContext;  // runner.hpp: per-thread execution context

/// One state = one operation plus its invariant hook.
///
/// `run` performs the operation.  It may use `ctx.rng()` freely (the
/// stream is step-private), must confine *expected* exceptions (a
/// quota-exhaust state catches its own ResourceExhausted), and feeds
/// deterministic observations into the digest with `ctx.note()`.  An
/// exception escaping `run` is recorded as a failure.
///
/// `invariant` runs right after `run` on the same thread; return "" when
/// the system is consistent, else a diagnostic (which becomes the failure
/// message).  Hooks typically run `analysis::audit_manager` on the
/// context's manager, cross-check counters, or compare CSV bytes.  Null
/// means "no per-state hook".
///
/// Lint rule R6 (tools/bddmin_lint.py): neither function may hold a
/// TraceScope/PhaseScope or a lock across a cross-thread wait (join /
/// condition-variable wait) — park the scope before blocking.
struct StressState {
  std::string name;
  std::function<void(StressContext&)> run;
  std::function<std::string(StressContext&)> invariant;
};

/// A weighted edge of the transition graph.
struct Transition {
  std::size_t target = 0;  ///< state index
  double weight = 1.0;     ///< relative probability mass (> 0)
};

/// A workload graph: states, weighted transitions, a start state.
///
/// `transitions[i]` lists the successors of state i; an empty row means
/// "uniform over all states" (fully-mixed graph).  Weights are relative
/// within a row.  `validate()` checks shape before a run: every target in
/// range, every weight positive, every row's mass positive.
struct StressFsm {
  std::string name;
  std::string description;
  std::vector<StressState> states;
  std::vector<std::vector<Transition>> transitions;
  std::size_t start = 0;

  /// "" when well-formed, else the first problem found.
  [[nodiscard]] std::string validate() const;

  /// Index of the named state; throws std::out_of_range.
  [[nodiscard]] std::size_t state_index(const std::string& state_name) const;

  /// The successor of \p current drawn with \p rng over the weighted row
  /// (uniform over all states when the row is empty).
  [[nodiscard]] std::size_t next_state(std::size_t current,
                                       StepRng& rng) const;
};

/// Builder sugar so workload definitions read like tables:
///   FsmBuilder b("engine", "…");
///   b.state("submit-batch", run_fn, inv_fn);
///   b.edge("submit-batch", "cancel-mid-run", 2.0);
class FsmBuilder {
 public:
  FsmBuilder(std::string name, std::string description) {
    fsm_.name = std::move(name);
    fsm_.description = std::move(description);
  }

  FsmBuilder& state(std::string state_name,
                    std::function<void(StressContext&)> run,
                    std::function<std::string(StressContext&)> invariant = {});
  /// Add a weighted edge between named states (both must exist).
  FsmBuilder& edge(const std::string& from, const std::string& to,
                   double weight = 1.0);
  /// Set the start state by name.
  FsmBuilder& start(const std::string& state_name);
  /// Finish: validates and returns the graph (throws std::invalid_argument
  /// on a malformed one so builtin workloads fail loudly at startup).
  [[nodiscard]] StressFsm build();

 private:
  StressFsm fsm_;
};

}  // namespace bddmin::stress
