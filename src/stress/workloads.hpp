/// \file workloads.hpp
/// \brief Built-in stress workload graphs over the public API surface.
///
/// Six graphs ship with the harness (docs/STRESS.md describes each):
///
///   core      — single-manager operation soup: build-ops, GC,
///               clear-caches, sifting, pooled reset/reuse, deep audits
///   engine    — batch engine surface: submit-batch, CSV byte-determinism
///               probes, dedup replay, shard-budget invariance sweeps,
///               mid-shard cancellation, timeout storms
///   governor  — effort limits: quota-exhaust aborts, sifting under a node
///               quota, degraded batches, abort -> reset -> reuse cycles
///   telemetry — counter cross-checks, Prometheus scrape shape, trace
///               instants, per-manager counter determinism
///   mixed     — the union of the above, uniform transitions
///   faults    — the PR-1 5-class fault injector wired to an audit hook:
///               running it is EXPECTED to fail (the failure proves the
///               auditors catch the corruption and the triple replays)
///
/// Every state keeps its observations thread-deterministic (see
/// runner.hpp) so the final digest is comparable across runs.
#pragma once

#include <string>
#include <vector>

#include "stress/fsm.hpp"

namespace bddmin::stress {

/// Freshly constructed copies of all built-in workload graphs.
[[nodiscard]] std::vector<StressFsm> builtin_workloads();

/// Names of the built-in graphs, in listing order.
[[nodiscard]] std::vector<std::string> workload_names();

/// The named built-in graph; throws std::out_of_range for unknown names.
[[nodiscard]] StressFsm workload_by_name(const std::string& name);

}  // namespace bddmin::stress
