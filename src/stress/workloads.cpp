#include "stress/workloads.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/audit.hpp"
#include "analysis/failpoint.hpp"
#include "analysis/mutate.hpp"
#include "bdd/bdd.hpp"
#include "bdd/governor.hpp"
#include "bdd/manager.hpp"
#include "bdd/truth_table.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "engine/shard.hpp"
#include "minimize/registry.hpp"
#include "minimize/sibling.hpp"
#include "stress/runner.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/trace.hpp"

namespace bddmin::stress {
namespace {

// ---- Shared invariant hooks ---------------------------------------------

/// Pool truth tables intact, then the configured audit tier clean.
std::string inv_pool_audit(StressContext& ctx) {
  std::string msg = ctx.check_pool();
  if (!msg.empty()) return msg;
  return ctx.audit_now(ctx.options().invariant_audit);
}

/// Probe states stash their diagnostic in ctx.scratch during run.
std::string inv_scratch(StressContext& ctx) { return ctx.scratch; }

// ---- Single-manager states ----------------------------------------------

/// Random binary/ternary operation over the tracked pool, cross-checked
/// against 64-bit truth-table arithmetic (the soundness oracle).
void run_build_ops(StressContext& ctx) {
  ctx.refill_pool();
  auto& pool = ctx.pool();
  const std::uint64_t mask = tt_mask(ctx.options().num_vars);
  StepRng& rng = ctx.rng();
  const std::size_t a = rng.below(pool.size());
  const std::size_t b = rng.below(pool.size());
  const std::size_t dst = rng.below(pool.size());
  const Bdd fa = pool[a].bdd;
  const Bdd fb = pool[b].bdd;
  const std::uint64_t ta = pool[a].tt;
  const std::uint64_t tb = pool[b].tt;
  Bdd r;
  std::uint64_t tr = 0;
  switch (rng.below(5)) {
    case 0: r = fa & fb; tr = ta & tb; break;
    case 1: r = fa | fb; tr = ta | tb; break;
    case 2: r = fa ^ fb; tr = ta ^ tb; break;
    case 3: r = fa - fb; tr = ta & ~tb; break;
    default: {
      const std::size_t c = rng.below(pool.size());
      r = fa.ite(fb, pool[c].bdd);
      tr = (ta & tb) | (~ta & pool[c].tt);
      break;
    }
  }
  pool[dst] = {std::move(r), tr & mask};
  ctx.note_u64(tr & mask);
}

void run_gc(StressContext& ctx) {
  ctx.refill_pool();
  ctx.manager().garbage_collect();
  ctx.note_u64(ctx.manager().unique_size());
}

void run_clear_caches(StressContext& ctx) {
  ctx.refill_pool();
  ctx.manager().clear_caches();
  // One post-flush operation: results must be identical with a cold cache.
  auto& pool = ctx.pool();
  const Bdd r = pool[0].bdd & pool[1].bdd;
  const std::uint64_t want =
      pool[0].tt & pool[1].tt & tt_mask(ctx.options().num_vars);
  if ((to_tt(ctx.manager(), r.edge(), ctx.options().num_vars) &
       tt_mask(ctx.options().num_vars)) != want) {
    ctx.scratch = "AND result drifted after clear_caches()";
  }
  ctx.note_u64(want);
}

void run_reorder(StressContext& ctx) {
  ctx.refill_pool();
  ctx.note_u64(ctx.manager().reorder_sift());
}

/// Pooled reuse: tear the manager down with Manager::reset() and rebuild
/// the tracked functions from their truth tables — the engine's
/// worker-pooling contract, exercised mid-walk.
void run_reset_reuse(StressContext& ctx) {
  ctx.refill_pool();
  std::vector<std::uint64_t> tts;
  tts.reserve(ctx.pool().size());
  for (const StressContext::TrackedFn& fn : ctx.pool()) tts.push_back(fn.tt);
  ctx.recycle_manager();
  Manager& m = ctx.manager();
  const unsigned n = ctx.options().num_vars;
  for (const std::uint64_t tt : tts) {
    ctx.pool().push_back({Bdd(m, from_tt(m, tt, n)), tt});
  }
  ctx.note_u64(m.unique_size());
}

void run_audit_deep(StressContext& ctx) {
  ctx.refill_pool();
  ctx.scratch = ctx.audit_now(analysis::AuditLevel::kCache);
}

// ---- Governor states ----------------------------------------------------

/// Run a registered heuristic under a deliberately tiny node/step budget;
/// the abort must leave the manager consistent (strong guarantee) and the
/// tracked pool untouched.
void run_quota_exhaust(StressContext& ctx) {
  ctx.refill_pool();
  Manager& m = ctx.manager();
  StepRng& rng = ctx.rng();
  static const std::vector<minimize::Heuristic> kHeuristics =
      minimize::all_heuristics();
  const minimize::Heuristic& heu = kHeuristics[rng.below(kHeuristics.size())];
  ResourceLimits lim;
  if (rng.chance(0.5)) {
    lim.hard_node_limit = m.unique_size() + 1 + rng.below(16);
  } else {
    lim.step_limit = 1 + rng.below(48);
  }
  m.governor().set_limits(lim);
  std::uint64_t tripped = 0;
  try {
    const Edge g =
        heu.run(m, ctx.pool()[0].bdd.edge(), ctx.pool()[1].bdd.edge());
    (void)g;  // unreferenced: the next GC reclaims it
  } catch (const ResourceExhausted&) {
    tripped = 1;
  }
  m.governor().clear();
  m.garbage_collect();
  ctx.note(heu.name);
  ctx.note_u64(tripped);
}

/// Sifting under a node quota just above the current table size.  This is
/// the state that surfaced the mid-swap abort bug: swap_adjacent_levels
/// used to throw NodeLimit after flipping the order maps, tearing the
/// table (caught here by the audit hook).
void run_reorder_under_quota(StressContext& ctx) {
  ctx.refill_pool();
  Manager& m = ctx.manager();
  ResourceLimits lim;
  lim.hard_node_limit = m.unique_size() + 1 + ctx.rng().below(8);
  m.governor().set_limits(lim);
  std::uint64_t tripped = 0;
  try {
    m.reorder_sift();
  } catch (const ResourceExhausted&) {
    tripped = 1;
  }
  m.governor().clear();
  m.garbage_collect();
  ctx.note_u64(tripped);
  ctx.note_u64(m.unique_size());
}

// ---- Batch-engine states ------------------------------------------------

std::vector<engine::Job> random_tt_jobs(StepRng& rng, unsigned count,
                                        unsigned num_vars,
                                        const char* prefix) {
  std::vector<engine::Job> jobs;
  jobs.reserve(count);
  const std::uint64_t mask = tt_mask(num_vars);
  for (unsigned k = 0; k < count; ++k) {
    jobs.push_back(engine::make_tt_job(prefix + std::to_string(k),
                                       rng.next() & mask, rng.next() & mask,
                                       num_vars));
  }
  return jobs;
}

std::string check_statuses(const engine::BatchReport& rep,
                           std::initializer_list<engine::JobStatus> allowed) {
  for (const engine::JobOutcome& o : rep.outcomes) {
    bool ok = false;
    for (const engine::JobStatus s : allowed) ok = ok || o.status == s;
    if (!ok) {
      return "job '" + o.name + "' finished " +
             engine::job_status_name(o.status) +
             (o.error.empty() ? "" : ": " + o.error);
    }
  }
  return "";
}

/// Plain batch: everything must finish kOk and the (deterministic) CSV
/// bytes feed the digest.
void run_submit_batch(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs =
      random_tt_jobs(rng, 2 + static_cast<unsigned>(rng.below(3)), 4, "sb");
  engine::EngineOptions eo;
  eo.num_threads = 1 + static_cast<unsigned>(rng.below(2));
  eo.heuristic = "restr";
  eo.audit_level = analysis::AuditLevel::kRefcount;
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  ctx.scratch = check_statuses(rep, {engine::JobStatus::kOk});
  if (ctx.scratch.empty()) ctx.note(engine::report_csv(rep));
}

/// The engine's central promise, probed live: the same batch at 1 and 2
/// workers must produce byte-identical CSV.
void run_csv_determinism(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs = random_tt_jobs(rng, 3, 4, "csv");
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  const std::string one = engine::report_csv(engine::run_batch(jobs, eo));
  eo.num_threads = 2;
  const std::string two = engine::report_csv(engine::run_batch(jobs, eo));
  if (one != two) {
    ctx.scratch = "report_csv differs between 1 and 2 worker threads";
    return;
  }
  ctx.note(one);
}

/// Duplicate payloads: dedup-on and dedup-off runs must report identical
/// CSV bytes, and the duplicate count must match.
void run_dedup_replay(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  std::vector<engine::Job> jobs = random_tt_jobs(rng, 2, 4, "dd");
  for (int k = 0; k < 2; ++k) {
    engine::Job dup = jobs[static_cast<std::size_t>(k)];
    dup.name = "ddcopy" + std::to_string(k);
    jobs.push_back(std::move(dup));
  }
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 2;
  eo.dedup_jobs = true;
  const engine::BatchReport on = engine::run_batch(jobs, eo);
  eo.dedup_jobs = false;
  const engine::BatchReport off = engine::run_batch(jobs, eo);
  if (on.duplicate_jobs != 2) {
    ctx.scratch = "dedup saw " + std::to_string(on.duplicate_jobs) +
                  " duplicates, expected 2";
    return;
  }
  const std::string csv_on = engine::report_csv(on);
  if (csv_on != engine::report_csv(off)) {
    ctx.scratch = "dedup-on CSV differs from dedup-off CSV";
    return;
  }
  ctx.note(csv_on);
}

/// Cancel a running batch from a helper thread.  Statuses are wall-clock
/// dependent — validated, never digested.  Note the shape: the join below
/// happens with no TraceScope or lock held (lint rule R6).
void run_cancel_mid_run(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs =
      random_tt_jobs(rng, 6 + static_cast<unsigned>(rng.below(4)), 6, "cx");
  const auto cancel = std::make_shared<std::atomic<bool>>(false);
  engine::EngineOptions eo;
  eo.heuristic = "osm_td";
  eo.num_threads = 2;
  eo.cancel = cancel;
  const auto delay = std::chrono::microseconds(rng.below(300));
  std::thread canceller([cancel, delay] {
    std::this_thread::sleep_for(delay);
    cancel->store(true, std::memory_order_relaxed);
  });
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  canceller.join();
  ctx.scratch = check_statuses(
      rep, {engine::JobStatus::kOk, engine::JobStatus::kCancelled});
}

/// Minuscule per-job deadline: jobs may finish, time out between
/// heuristics, or degrade on the in-flight deadline — anything else is a
/// bug.  Wall-clock dependent; never digested.
void run_timeout_storm(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs =
      random_tt_jobs(rng, 4 + static_cast<unsigned>(rng.below(3)), 6, "ts");
  engine::EngineOptions eo;
  eo.heuristic = "osm_td";
  eo.num_threads = 2;
  eo.job_timeout_seconds = 1e-5;
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  ctx.scratch = check_statuses(
      rep, {engine::JobStatus::kOk, engine::JobStatus::kTimeout,
            engine::JobStatus::kResourceLimit});
}

/// Node/step quotas on the batch: trips are deterministic, so degraded
/// jobs must reproduce bit-for-bit — the whole CSV feeds the digest.
void run_degrade_batch(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs = random_tt_jobs(rng, 3, 6, "dg");
  engine::EngineOptions eo;
  eo.heuristic = "osm_td";
  eo.num_threads = 1 + static_cast<unsigned>(rng.below(2));
  eo.node_limit = 24 + rng.below(32);
  eo.step_limit = 40 + rng.below(100);
  if (rng.chance(0.5)) eo.fallback_heuristic = "restr";
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  ctx.scratch = check_statuses(
      rep, {engine::JobStatus::kOk, engine::JobStatus::kResourceLimit});
  if (ctx.scratch.empty()) ctx.note(engine::report_csv(rep));
}

/// Shard-invariance probe: the same stream under two independently drawn
/// shard-cost budgets (0 = unsharded, a tiny rng budget, or the CLI
/// default) and worker counts must produce byte-identical default CSV —
/// warm-manager reuse must never leak into canonical facts.  The CSV
/// feeds the digest, so it must also be budget- and thread-invariant
/// across replays.
void run_shard_sweep(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs =
      random_tt_jobs(rng, 4 + static_cast<unsigned>(rng.below(4)), 4, "sh");
  const std::uint64_t budgets[] = {0, 96 + rng.next() % 512,
                                   engine::kDefaultShardCost};
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1 + static_cast<unsigned>(rng.below(2));
  eo.shard_cost = budgets[rng.below(3)];
  const engine::BatchReport a = engine::run_batch(jobs, eo);
  eo.num_threads = 1 + static_cast<unsigned>(rng.below(2));
  eo.shard_cost = budgets[rng.below(3)];
  const engine::BatchReport b = engine::run_batch(jobs, eo);
  const std::string csv = engine::report_csv(a);
  if (csv != engine::report_csv(b)) {
    ctx.scratch = "report_csv differs between shard budgets " +
                  std::to_string(a.metrics.shard_cost_budget) + " and " +
                  std::to_string(b.metrics.shard_cost_budget);
    return;
  }
  ctx.note(csv);
}

/// Cancel a sharded batch from a helper thread: a shard is NOT a
/// cancellation unit — a started job always finishes, a queued job
/// (whole undrained shards included) reports kCancelled, and nothing is
/// lost or run twice.  Statuses are wall-clock dependent — validated,
/// never digested.  Same R6 shape as run_cancel_mid_run: the join
/// happens with no TraceScope or lock held.
void run_shard_cancel(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs =
      random_tt_jobs(rng, 8 + static_cast<unsigned>(rng.below(6)), 6, "shc");
  const auto cancel = std::make_shared<std::atomic<bool>>(false);
  engine::EngineOptions eo;
  eo.heuristic = "osm_td";
  eo.num_threads = 2;
  eo.shard_cost = 64 + rng.next() % 1024;  // several multi-job shards
  eo.cancel = cancel;
  const auto delay = std::chrono::microseconds(rng.below(300));
  std::thread canceller([cancel, delay] {
    std::this_thread::sleep_for(delay);
    cancel->store(true, std::memory_order_relaxed);
  });
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  canceller.join();
  ctx.scratch = check_statuses(
      rep, {engine::JobStatus::kOk, engine::JobStatus::kCancelled});
  if (!ctx.scratch.empty()) return;
  if (rep.outcomes.size() != jobs.size()) {
    ctx.scratch = "sharded cancel lost outcomes: " +
                  std::to_string(rep.outcomes.size()) + "/" +
                  std::to_string(jobs.size());
  }
}

// ---- Telemetry states ---------------------------------------------------

/// Identical repeated operation must be served from the computed cache
/// (zero misses on the repeat); the per-manager counter delta is
/// deterministic and digested.
void run_counter_delta(StressContext& ctx) {
  ctx.refill_pool();
  Manager& m = ctx.manager();
  auto& pool = ctx.pool();
  const Bdd first = pool[0].bdd & pool[1].bdd;
  const telemetry::CounterSnapshot before = m.telemetry();
  const Bdd again = pool[0].bdd & pool[1].bdd;
  const telemetry::CounterSnapshot delta = m.telemetry() - before;
  if (first.edge() != again.edge()) {
    ctx.scratch = "repeated AND produced a different edge";
    return;
  }
  if (telemetry::kCountersEnabled &&
      delta.value(telemetry::Counter::kAndCacheMisses) != 0) {
    ctx.scratch = "repeated AND missed the computed cache " +
                  std::to_string(
                      delta.value(telemetry::Counter::kAndCacheMisses)) +
                  " times";
    return;
  }
  ctx.note_u64(delta.value(telemetry::Counter::kAndCacheMisses));
}

/// Scrape the process-global aggregate.  Its values are cross-thread and
/// non-deterministic; only the exposition format is checked.  The local
/// manager's cumulative insert counter IS deterministic and digested.
void run_counter_scrape(StressContext& ctx) {
  const telemetry::CounterSnapshot snap = telemetry::global().snapshot();
  const std::string text = telemetry::prometheus_text(snap);
  if (text.find("unique_inserts") == std::string::npos) {
    ctx.scratch = "prometheus_text lost the unique_inserts series";
    return;
  }
  ctx.refill_pool();
  ctx.note_u64(ctx.manager().telemetry().value(
      telemetry::Counter::kUniqueInserts));
}

/// Hammer the tracer's lock-free active() check from every thread; a
/// no-op unless a trace is running, but TSan watches the atomics.
void run_trace_instant(StressContext& ctx) {
  telemetry::trace_instant("stress-tick", "stress");
  ctx.refill_pool();
  ctx.note_u64(ctx.pool().size());
}

/// Record seeded values into the process-global histogram bank from
/// every thread (wait-free fetch_adds TSan watches), then scrape the
/// exposition mid-run and check the family invariants: `_bucket` series
/// cumulative-monotone, the `+Inf` bound equal to `_count`.  The scraped
/// totals are cross-thread and wall-dependent, so only the seeded local
/// values are digested — the same split run_counter_scrape makes.
void run_histogram_scrape(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  std::uint64_t local_sum = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t v = rng.next() >> (rng.below(40) + 8);
    telemetry::histograms().queue_depth().record(v);
    local_sum += v;
    // The bucket arithmetic is pure; pin its contract on seeded values.
    const std::size_t bucket = telemetry::histogram_bucket_index(v);
    if (telemetry::histogram_bucket_upper(bucket) < v) {
      ctx.scratch = "bucket upper bound below the recorded value";
      return;
    }
  }
  const std::string text =
      telemetry::histogram_prometheus_text(telemetry::histograms());
  if (text.find("bddmin_queue_depth_bucket") == std::string::npos) {
    ctx.scratch = "exposition lost the queue_depth family";
    return;
  }
  // Family invariants over every series in the scrape: cumulative
  // bucket counts never decrease, and each +Inf bucket equals the
  // family's _count sample that follows it.
  std::uint64_t cumulative = 0;
  std::uint64_t inf_value = 0;
  bool in_series = false;
  std::istringstream lines(text);
  std::string line;
  std::string prev_labels;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string key = line.substr(0, space);
    const std::uint64_t value = std::strtoull(line.c_str() + space + 1,
                                              nullptr, 10);
    const std::size_t bucket_pos = key.find("_bucket{");
    if (bucket_pos != std::string::npos) {
      // New series (family+labels minus the le pair) restarts the
      // cumulative check.
      const std::size_t le = key.find("le=\"");
      const std::string labels = key.substr(0, le);
      if (labels != prev_labels) {
        cumulative = 0;
        prev_labels = labels;
      }
      if (value < cumulative) {
        ctx.scratch = "cumulative bucket count decreased in: " + line;
        return;
      }
      cumulative = value;
      in_series = key.find("le=\"+Inf\"") == std::string::npos;
      if (!in_series) inf_value = value;
    } else if (key.find("_count") != std::string::npos && !in_series) {
      if (value != inf_value) {
        ctx.scratch = "+Inf bucket disagrees with _count in: " + line;
        return;
      }
    }
  }
  ctx.note_u64(local_sum);  // seeded, thread-pure — safe to digest
}

// ---- Fault injection ----------------------------------------------------

/// Corrupt the thread's own manager with one of the PR-1 mutation classes;
/// the invariant hook must convict it.  This state failing is the
/// *expected outcome* of the faults workload — the failure's seed triple
/// proves end-to-end that audits catch corruption and replay reproduces it.
void run_inject_fault(StressContext& ctx) {
  ctx.refill_pool();
  auto& pool = ctx.pool();
  // Populate cache entries (AND/XOR/ITE) so every mutation class has an
  // eligible target.
  const Bdd t1 = pool[0].bdd & pool[1].bdd;
  const Bdd t2 = pool[0].bdd ^ pool[1].bdd;
  const Bdd t3 = pool[0].bdd.ite(pool[1].bdd, pool[2 % pool.size()].bdd);
  (void)t1;
  (void)t2;
  (void)t3;
  static constexpr analysis::Mutation kClasses[] = {
      analysis::Mutation::kComplementFlip, analysis::Mutation::kSubtableUnlink,
      analysis::Mutation::kStaleCache, analysis::Mutation::kRefSkew,
      analysis::Mutation::kCountSkew};
  StepRng& rng = ctx.rng();
  const analysis::Mutation m = kClasses[rng.below(5)];
  const analysis::MutationResult result =
      analysis::inject(ctx.manager(), m, rng.next());
  if (result.applied) {
    ctx.scratch =
        std::string(analysis::mutation_name(m)) + ": " + result.description;
  }
  // No eligible target: the manager is uncorrupted; walk continues.
}

std::string inv_fault_detected(StressContext& ctx) {
  if (ctx.scratch.empty()) return "";  // injection found no target
  const std::string injected = ctx.scratch;
  const std::string finding = ctx.audit_now(analysis::AuditLevel::kCache);
  // The corrupted manager is only good for the audit that convicts it.
  ctx.discard_manager();
  if (finding.empty()) {
    return "AUDITOR MISS: injected [" + injected + "] but audits came back clean";
  }
  return "injected fault detected [" + injected + "] -> " + finding;
}

// ---- Failpoint states ---------------------------------------------------

/// Failpoints that are safe to leave armed in random mode while ordinary
/// BDD work runs: each injects a ResourceExhausted the strong-abort
/// machinery already handles.  The hang/corruption/process-death sites are
/// deliberately excluded — they need the engine's watchdog/retry harness
/// around them (fp-batch provides it for the deadline site).
constexpr const char* kSafeRandomPoints[] = {
    "unique_insert_oom", "bucket_grow_oom", "gc_oom", "minimize_deadline"};

/// Compact the table and refill the pool while faults may be armed: any
/// injected ResourceExhausted is absorbed and retried (the gc_oom site can
/// fire inside the recovery GC itself).  A persistently unlucky random
/// draw disarms everything rather than spin — forward progress beats
/// fault coverage on the tail.
void fp_settle(StressContext& ctx) {
  for (int tries = 0; tries < 4; ++tries) {
    try {
      ctx.manager().garbage_collect();
      ctx.refill_pool();
      return;
    } catch (const ResourceExhausted&) {
      continue;  // injected mid-refill; the strong guarantee holds, go again
    }
  }
  analysis::failpoints().disarm_all();
  ctx.manager().garbage_collect();
  ctx.refill_pool();
}

/// Arm a random subset of the safe failpoints in random mode with a small
/// seeded probability.  The registry is process-global, so under multiple
/// stress threads arming races with evaluation — that contention is the
/// point (FailPoint::poll is documented safe against concurrent arming).
/// Which points *this thread* armed is rng-driven and digested; whether
/// they fire is cross-thread timing and never digested.
void run_fp_arm(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  // Draw every decision *before* settling: fp_settle's retry count is
  // fire-dependent, and consuming rng draws there would shift the digested
  // stream below it.
  struct Draw {
    bool arm;
    double probability;
    std::uint64_t seed;
  };
  Draw draws[std::size(kSafeRandomPoints)];
  for (Draw& d : draws) {
    d.arm = rng.chance(0.5);
    d.probability = rng.chance(0.5) ? 0.05 : 0.01;
    d.seed = rng.next() | 1;
  }
  fp_settle(ctx);
  for (std::size_t i = 0; i < std::size(kSafeRandomPoints); ++i) {
    if (!draws[i].arm) continue;
    analysis::FailPointConfig cfg;
    cfg.mode = analysis::FailPointMode::kRandom;
    cfg.probability = draws[i].probability;
    cfg.seed = draws[i].seed;
    analysis::failpoints().arm(kSafeRandomPoints[i], cfg);
    ctx.note(kSafeRandomPoints[i]);
  }
}

void run_fp_disarm(StressContext& ctx) {
  analysis::failpoints().disarm_all();
  // Other walk threads may re-arm concurrently, so settle guarded.
  fp_settle(ctx);
  ctx.note_u64(ctx.pool().size());
}

/// Tier-3 audit of the thread's manager while faults may be armed — the
/// audits themselves are read-only, so they run fault-free even mid-arm.
void run_fp_audit(StressContext& ctx) {
  fp_settle(ctx);
  ctx.scratch = ctx.audit_now(analysis::AuditLevel::kCache);
}

/// Ordinary operations with the safe failpoints possibly armed: an
/// injected OutOfMemory/Deadline must abort the one operation with the
/// strong guarantee (the invariant audit convicts any torn state) and the
/// tracked pool must stay intact.  The result is discarded — whether the
/// fault fired is non-deterministic across threads, so nothing
/// fire-dependent reaches the digest.
void run_fp_ops(StressContext& ctx) {
  fp_settle(ctx);
  auto& pool = ctx.pool();
  StepRng& rng = ctx.rng();
  const Bdd fa = pool[rng.below(pool.size())].bdd;
  const Bdd fb = pool[rng.below(pool.size())].bdd;
  try {
    const Bdd r = fa & fb;
    const Edge g = minimize::restrict_dc(ctx.manager(), r.edge(), fb.edge());
    (void)g;  // unreferenced: the next GC reclaims it
  } catch (const ResourceExhausted&) {
    // Injected fault: partial results are dead nodes.  The recovery GC is
    // itself a failpoint site, so settle through the guarded helper.
    fp_settle(ctx);
  }
  ctx.note_u64(pool.size());
}

/// A small batch under armed failpoints with a retry budget: the engine
/// must never lose or hang a job, every outcome must carry a coherent
/// retry trail, and the worker managers must come back audit-clean.
/// Statuses and attempt counts are fire-dependent — validated, never
/// digested.
void run_fp_batch(StressContext& ctx) {
  StepRng& rng = ctx.rng();
  const std::vector<engine::Job> jobs =
      random_tt_jobs(rng, 2 + static_cast<unsigned>(rng.below(3)), 4, "fp");
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1 + static_cast<unsigned>(rng.below(2));
  eo.audit_level = analysis::AuditLevel::kRefcount;
  eo.max_retries = 1 + static_cast<unsigned>(rng.below(2));
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  ctx.scratch = check_statuses(
      rep, {engine::JobStatus::kOk, engine::JobStatus::kError,
            engine::JobStatus::kResourceLimit});
  if (!ctx.scratch.empty()) return;
  for (const engine::JobOutcome& o : rep.outcomes) {
    if (o.attempts < 1 || o.attempts > eo.max_retries + 1) {
      ctx.scratch = "job '" + o.name + "' reports " +
                    std::to_string(o.attempts) + " attempts with budget " +
                    std::to_string(eo.max_retries);
      return;
    }
    if ((o.attempts > 1) != !o.retry_reason.empty()) {
      ctx.scratch = "job '" + o.name + "': attempts=" +
                    std::to_string(o.attempts) + " but retry_reason='" +
                    o.retry_reason + "'";
      return;
    }
  }
}

// ---- Graph assembly -----------------------------------------------------

struct WeightedState {
  const char* name;
  void (*run)(StressContext&);
  std::string (*invariant)(StressContext&);
  double weight;
};

/// Hub-style graph: every state's outgoing row is the same weighted list.
StressFsm build_hub(const char* name, const char* description,
                    std::initializer_list<WeightedState> states) {
  FsmBuilder b(name, description);
  for (const WeightedState& s : states) {
    b.state(s.name, s.run,
            s.invariant != nullptr
                ? std::function<std::string(StressContext&)>(s.invariant)
                : std::function<std::string(StressContext&)>());
  }
  for (const WeightedState& from : states) {
    for (const WeightedState& to : states) {
      b.edge(from.name, to.name, to.weight);
    }
  }
  b.start(states.begin()->name);
  return b.build();
}

StressFsm make_core() {
  return build_hub(
      "core",
      "single-manager operation soup with truth-table oracles and audits",
      {{"build-ops", run_build_ops, inv_pool_audit, 4.0},
       {"gc", run_gc, inv_pool_audit, 1.0},
       {"clear-caches", run_clear_caches, inv_scratch, 1.0},
       {"reorder", run_reorder, inv_pool_audit, 1.0},
       {"reset-reuse", run_reset_reuse, inv_pool_audit, 1.0},
       {"audit", run_audit_deep, inv_scratch, 1.0}});
}

StressFsm make_engine() {
  return build_hub(
      "engine",
      "batch engine: submissions, CSV determinism, dedup, cancellation, "
      "timeouts",
      {{"submit-batch", run_submit_batch, inv_scratch, 3.0},
       {"csv-determinism", run_csv_determinism, inv_scratch, 2.0},
       {"dedup-replay", run_dedup_replay, inv_scratch, 2.0},
       {"shards", run_shard_sweep, inv_scratch, 2.0},
       {"shard-cancel", run_shard_cancel, inv_scratch, 1.0},
       {"cancel-mid-run", run_cancel_mid_run, inv_scratch, 1.0},
       {"timeout-storm", run_timeout_storm, inv_scratch, 1.0},
       {"counter-scrape", run_counter_scrape, inv_scratch, 1.0}});
}

StressFsm make_governor() {
  return build_hub(
      "governor",
      "effort limits: budget aborts, sifting under quota, degraded batches, "
      "abort->reset->reuse",
      {{"build-ops", run_build_ops, inv_pool_audit, 2.0},
       {"quota-exhaust", run_quota_exhaust, inv_pool_audit, 3.0},
       {"reorder-under-quota", run_reorder_under_quota, inv_pool_audit, 2.0},
       {"degrade-batch", run_degrade_batch, inv_scratch, 1.0},
       {"reset-reuse", run_reset_reuse, inv_pool_audit, 1.0},
       {"audit", run_audit_deep, inv_scratch, 1.0}});
}

StressFsm make_telemetry() {
  return build_hub(
      "telemetry",
      "counter cross-checks, scrape format, trace instants",
      {{"build-ops", run_build_ops, inv_pool_audit, 2.0},
       {"counter-delta", run_counter_delta, inv_scratch, 2.0},
       {"counter-scrape", run_counter_scrape, inv_scratch, 2.0},
       {"histogram-scrape", run_histogram_scrape, inv_scratch, 2.0},
       {"trace-instant", run_trace_instant, inv_pool_audit, 1.0},
       {"audit", run_audit_deep, inv_scratch, 1.0}});
}

StressFsm make_mixed() {
  // Uniform transitions: empty rows mean "any state next" (FsmBuilder
  // leaves rows empty unless edges are added).
  FsmBuilder b("mixed", "union of all non-fault states, uniform transitions");
  b.state("build-ops", run_build_ops, inv_pool_audit);
  b.state("gc", run_gc, inv_pool_audit);
  b.state("clear-caches", run_clear_caches, inv_scratch);
  b.state("reorder", run_reorder, inv_pool_audit);
  b.state("reset-reuse", run_reset_reuse, inv_pool_audit);
  b.state("audit", run_audit_deep, inv_scratch);
  b.state("quota-exhaust", run_quota_exhaust, inv_pool_audit);
  b.state("reorder-under-quota", run_reorder_under_quota, inv_pool_audit);
  b.state("submit-batch", run_submit_batch, inv_scratch);
  b.state("csv-determinism", run_csv_determinism, inv_scratch);
  b.state("dedup-replay", run_dedup_replay, inv_scratch);
  b.state("shards", run_shard_sweep, inv_scratch);
  b.state("shard-cancel", run_shard_cancel, inv_scratch);
  b.state("degrade-batch", run_degrade_batch, inv_scratch);
  b.state("cancel-mid-run", run_cancel_mid_run, inv_scratch);
  b.state("timeout-storm", run_timeout_storm, inv_scratch);
  b.state("counter-delta", run_counter_delta, inv_scratch);
  b.state("counter-scrape", run_counter_scrape, inv_scratch);
  b.state("histogram-scrape", run_histogram_scrape, inv_scratch);
  b.state("trace-instant", run_trace_instant, inv_pool_audit);
  b.start("build-ops");
  return b.build();
}

StressFsm make_failpoints() {
  return build_hub(
      "failpoints",
      "arm/disarm the fault-injection registry mid-walk; ops, audits and "
      "retrying batches must survive injected OOM/deadline faults",
      {{"fp-arm", run_fp_arm, inv_pool_audit, 2.0},
       {"fp-ops", run_fp_ops, inv_pool_audit, 4.0},
       {"fp-batch", run_fp_batch, inv_scratch, 2.0},
       {"fp-audit", run_fp_audit, inv_scratch, 1.0},
       {"fp-disarm", run_fp_disarm, inv_pool_audit, 1.0}});
}

StressFsm make_faults() {
  return build_hub(
      "faults",
      "5-class fault injection vs the audit hooks; EXPECTED to fail with a "
      "replayable seed triple",
      {{"build-ops", run_build_ops, inv_pool_audit, 3.0},
       {"clear-caches", run_clear_caches, inv_scratch, 1.0},
       {"audit", run_audit_deep, inv_scratch, 1.0},
       {"inject-fault", run_inject_fault, inv_fault_detected, 1.0}});
}

}  // namespace

std::vector<StressFsm> builtin_workloads() {
  std::vector<StressFsm> out;
  out.push_back(make_core());
  out.push_back(make_engine());
  out.push_back(make_governor());
  out.push_back(make_telemetry());
  out.push_back(make_mixed());
  out.push_back(make_failpoints());
  out.push_back(make_faults());
  return out;
}

std::vector<std::string> workload_names() {
  return {"core",  "engine",     "governor", "telemetry",
          "mixed", "failpoints", "faults"};
}

StressFsm workload_by_name(const std::string& name) {
  if (name == "core") return make_core();
  if (name == "engine") return make_engine();
  if (name == "governor") return make_governor();
  if (name == "telemetry") return make_telemetry();
  if (name == "mixed") return make_mixed();
  if (name == "failpoints") return make_failpoints();
  if (name == "faults") return make_faults();
  throw std::out_of_range("no built-in stress workload named '" + name + "'");
}

}  // namespace bddmin::stress
