/// \file runner.hpp
/// \brief Multi-threaded driver for StressFsm workloads, with seeded
/// replay and delta-debugging schedule minimization.
///
/// Execution model: N threads, each walking its own deterministic schedule
/// of the workload graph.  Thread T's walk is a pure function of
/// `(seed, T)` — the state chosen at step K and the randomness handed to
/// that state are both derived from counter-based seeds
/// (`derive_seed(seed, T, K, salt)`), never from a shared stream — so the
/// threads interleave freely (that is the point: the shared pieces —
/// engine pools, global counters, the tracer — get hammered concurrently,
/// with ASan/TSan watching) while every *thread-local* observation stays
/// reproducible.
///
/// Failure protocol: when a state throws unexpectedly or its invariant
/// hook reports a violation, the runner records the `(seed, thread, step)`
/// triple, re-executes that thread's schedule single-threaded to confirm,
/// and ddmin-shrinks the schedule to a minimal failing subsequence (each
/// retained step keeps its original step index, hence its original
/// randomness).  `StressFailure::replay_command` prints the exact CLI
/// invocation that reproduces the failure on one thread.
///
/// Determinism: with `wall_budget_seconds == 0` and no failures, the final
/// invariant digest is a pure function of (workload, seed, threads,
/// steps_per_thread) — identical run to run and safe to compare in CI.
/// States feed only thread-deterministic observations into the digest;
/// wall-clock-dependent outcomes (timeouts, cancellations) are checked for
/// *validity* but never digested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/audit.hpp"
#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "stress/fsm.hpp"

namespace bddmin::stress {

struct StressOptions {
  /// Concurrent walkers.  Replay always runs on one thread.
  unsigned num_threads = 4;
  /// Base seed; thread T's schedule derives from (seed, T).
  std::uint64_t seed = 1;
  /// Iteration budget per thread (the deterministic budget).
  std::size_t steps_per_thread = 64;
  /// Optional wall-clock budget; threads stop early once it expires.
  /// Non-zero values make per-state counts and the digest depend on the
  /// clock — leave at 0 when byte-comparing digests.
  double wall_budget_seconds = 0.0;
  /// Stop every thread at the first recorded failure.
  bool stop_on_failure = true;
  /// Audit tier run by the built-in invariant hooks (workloads may choose
  /// deeper tiers for specific states, e.g. fault detection).
  analysis::AuditLevel invariant_audit = analysis::AuditLevel::kRefcount;
  /// Tracked functions kept in each context's pool.
  unsigned pool_functions = 4;
  /// Variables of the context manager (<= 6 so 64-bit truth tables stay
  /// exact cross-checks).
  unsigned num_vars = 6;
  /// log2 of the context manager's computed cache.
  unsigned cache_log2 = 10;
  /// ddmin the first failure's schedule (single-threaded re-executions).
  bool minimize_failures = true;
  /// Cap on ddmin re-executions.
  std::size_t minimize_budget = 96;
  /// Stop recording failures beyond this many.
  std::size_t max_failures = 4;
};

/// Where a failure happened; everything replay needs.
struct SeedTriple {
  std::uint64_t seed = 0;
  unsigned thread = 0;
  std::size_t step = 0;
};

/// One schedule entry: execute \p state with step \p step's randomness.
/// The step index is the seed — minimization drops entries but never
/// renumbers them.
struct ScheduleEntry {
  std::size_t state = 0;
  std::size_t step = 0;
};

struct StressFailure {
  SeedTriple at;
  std::string state;    ///< state whose run/invariant failed
  std::string message;  ///< invariant diagnostic or exception text
  /// Minimized single-threaded schedule that still reproduces the failure
  /// (state names, in execution order; last entry is the failing state).
  /// Equals the full prefix when minimization is off or did not shrink it.
  std::vector<std::string> schedule;
  /// Step indices matching `schedule` (feed to replay_schedule).
  std::vector<ScheduleEntry> entries;
  /// True when the single-threaded re-execution reproduced the failure —
  /// false flags an interleaving-dependent bug (take the TSan report).
  bool replayed = false;
  /// Copy-paste CLI line reproducing this failure on one thread.
  std::string replay_command;

  [[nodiscard]] std::string summary() const;
};

struct StressReport {
  std::string workload;
  std::uint64_t seed = 0;
  unsigned threads = 0;
  std::size_t steps_per_thread = 0;
  std::size_t total_steps = 0;          ///< states actually executed
  std::vector<std::string> state_names;
  std::vector<std::uint64_t> state_runs;  ///< executions per state
  /// Order-independent fold of every thread's deterministic observations;
  /// compare across runs only for failure-free, wall-unbudgeted runs.
  std::uint64_t digest = 0;
  std::vector<StressFailure> failures;
  double wall_seconds = 0.0;  ///< informational; never digested

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Per-thread execution context handed to every state.  Owns a pooled
/// Manager (reused across steps via Manager::reset, mirroring the batch
/// engine's worker pooling) and a pool of tracked functions whose 64-bit
/// truth tables are the ground truth for cross-checks.
class StressContext {
 public:
  StressContext(const StressOptions& opts, std::uint64_t seed,
                unsigned thread);

  [[nodiscard]] const StressOptions& options() const noexcept { return opts_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] unsigned thread() const noexcept { return thread_; }
  [[nodiscard]] std::size_t step() const noexcept { return step_; }

  /// The step-private random stream (reseeded by the runner every step).
  [[nodiscard]] StepRng& rng() noexcept { return rng_; }

  /// The context manager; constructed lazily, pooled across steps.
  [[nodiscard]] Manager& manager();
  /// True once manager() has been called (and not discarded since).
  [[nodiscard]] bool has_manager() const noexcept { return mgr_ != nullptr; }
  /// Drop every pin and tear the pooled manager back to the fresh state —
  /// the `Manager::reset()` reuse path the engine depends on.
  void recycle_manager();
  /// Drop the manager outright (a fault-injected manager is only good for
  /// the audit that convicts it; never reuse one).
  void discard_manager();

  struct TrackedFn {
    Bdd bdd;
    std::uint64_t tt = 0;  ///< ground truth over options().num_vars vars
  };
  [[nodiscard]] std::vector<TrackedFn>& pool() noexcept { return pool_; }
  /// Top the pool back up to options().pool_functions entries with random
  /// functions drawn from rng().
  void refill_pool();
  /// Truth-table cross-check of every tracked function ("" = consistent).
  std::string check_pool();
  /// Run audit_manager at \p level on the context manager ("" = clean).
  std::string audit_now(analysis::AuditLevel level);

  /// Step-scoped scratch pad: `run` leaves data here for the state's
  /// invariant hook (e.g. a probe diagnostic, or what a fault injector
  /// corrupted).  Cleared by the runner at the start of every step.
  std::string scratch;

  /// Fold a deterministic observation into this thread's digest.  Never
  /// note wall-clock-dependent data (timings, timeout statuses, worker
  /// ids); the runner compares digests across runs.
  void note(std::string_view bytes) noexcept;
  void note_u64(std::uint64_t v) noexcept;
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

  // Runner internals.
  void begin_step(std::size_t step) noexcept;

 private:
  const StressOptions& opts_;
  std::uint64_t seed_;
  unsigned thread_;
  std::size_t step_ = 0;
  StepRng rng_{0};
  std::unique_ptr<Manager> mgr_;
  std::vector<TrackedFn> pool_;
  std::uint64_t digest_ = 1469598103934665603ull;  // FNV-1a offset basis
};

/// The deterministic schedule thread \p thread walks under \p fsm:
/// `steps` entries, state at step 0 being fsm.start.
[[nodiscard]] std::vector<ScheduleEntry> make_walk(const StressFsm& fsm,
                                                   std::uint64_t seed,
                                                   unsigned thread,
                                                   std::size_t steps);

/// Run the workload across options().num_threads threads; blocks until
/// every thread finished or stopped.  Failures arrive confirmed (replayed
/// single-threaded) and minimized when the options ask for it.
[[nodiscard]] StressReport run_stress(const StressFsm& fsm,
                                      const StressOptions& opts);

/// Re-execute thread \p thread's schedule single-threaded up to and
/// including \p step.  Returns the reproduced failure, or nullopt when the
/// walk completes clean (an interleaving-dependent failure).
[[nodiscard]] std::optional<StressFailure> replay(const StressFsm& fsm,
                                                  const StressOptions& opts,
                                                  unsigned thread,
                                                  std::size_t step);

/// Execute an explicit schedule single-threaded (replay of a minimized
/// failure).  Returns the failure, or nullopt when clean.
[[nodiscard]] std::optional<StressFailure> replay_schedule(
    const StressFsm& fsm, const StressOptions& opts, unsigned thread,
    std::vector<ScheduleEntry> schedule);

/// ddmin: shrink \p schedule (whose last entry fails with state
/// \p failing_state) to a locally minimal failing subsequence, re-executing
/// single-threaded at most opts.minimize_budget times.  Retained entries
/// keep their original step indices, so their randomness is untouched.
[[nodiscard]] std::vector<ScheduleEntry> minimize_schedule(
    const StressFsm& fsm, const StressOptions& opts, unsigned thread,
    std::vector<ScheduleEntry> schedule, const std::string& failing_state);

}  // namespace bddmin::stress
