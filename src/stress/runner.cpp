#include "stress/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/failpoint.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::stress {
namespace {

/// The failpoint registry is process-global and the failpoints workload
/// arms it mid-walk; start and finish every run with a clean registry so
/// no arming leaks into a later run (or a later test in the same process).
struct FailpointHygiene {
  FailpointHygiene() { analysis::failpoints().disarm_all(); }
  ~FailpointHygiene() { analysis::failpoints().disarm_all(); }
};

// Salt lanes of derive_seed: the graph walk and the state bodies must draw
// from disjoint streams or replaying a state would perturb the walk.
constexpr std::uint64_t kSaltChoice = 1;  // which state runs at step K
constexpr std::uint64_t kSaltExec = 2;    // the randomness handed to it

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string replay_command_for(const StressFsm& fsm, const StressOptions& o,
                               unsigned thread, std::size_t step) {
  return "bddmin_cli stress --workload " + fsm.name + " --seed " +
         std::to_string(o.seed) + " --steps " +
         std::to_string(o.steps_per_thread) + " --replay " +
         std::to_string(thread) + ":" + std::to_string(step);
}

/// Execute one schedule entry: reseed the context for the entry's original
/// step index, run the state, then its invariant hook.  Returns true when
/// clean; fills \p fail (triple, state, diagnostic) otherwise.  An
/// exception escaping `run` is a failure by definition — states catch the
/// exceptions they *expect* (a quota-exhaust state catches its own
/// NodeLimit) so anything that reaches us is a bug.
bool execute_entry(const StressFsm& fsm, StressContext& ctx,
                   const ScheduleEntry& entry, StressFailure* fail) {
  const StressState& st = fsm.states[entry.state];
  ctx.begin_step(entry.step);
  ctx.note(st.name);
  std::string message;
  try {
    st.run(ctx);
    if (st.invariant) message = st.invariant(ctx);
  } catch (const std::exception& ex) {
    message = std::string("unexpected exception: ") + ex.what();
  } catch (...) {
    message = "unexpected non-standard exception";
  }
  if (message.empty()) return true;
  if (fail != nullptr) {
    fail->at = {ctx.seed(), ctx.thread(), entry.step};
    fail->state = st.name;
    fail->message = std::move(message);
  }
  return false;
}

}  // namespace

// ---- StressContext ------------------------------------------------------

StressContext::StressContext(const StressOptions& opts, std::uint64_t seed,
                             unsigned thread)
    : opts_(opts), seed_(seed), thread_(thread) {}

Manager& StressContext::manager() {
  if (!mgr_) {
    mgr_ = std::make_unique<Manager>(opts_.num_vars, opts_.cache_log2);
  }
  return *mgr_;
}

void StressContext::recycle_manager() {
  pool_.clear();  // drop every pin before the table is torn down
  if (mgr_) mgr_->reset(opts_.num_vars);
}

void StressContext::discard_manager() {
  pool_.clear();
  mgr_.reset();
}

void StressContext::refill_pool() {
  Manager& m = manager();
  const std::uint64_t mask = tt_mask(opts_.num_vars);
  while (pool_.size() < opts_.pool_functions) {
    const std::uint64_t tt = rng_.next() & mask;
    pool_.push_back({Bdd(m, from_tt(m, tt, opts_.num_vars)), tt});
  }
}

std::string StressContext::check_pool() {
  if (!mgr_) return "";
  const std::uint64_t mask = tt_mask(opts_.num_vars);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const std::uint64_t got =
        to_tt(*mgr_, pool_[i].bdd.edge(), opts_.num_vars) & mask;
    const std::uint64_t want = pool_[i].tt & mask;
    if (got != want) {
      return "tracked fn #" + std::to_string(i) + " drifted: truth table " +
             hex64(got) + ", expected " + hex64(want);
    }
  }
  return "";
}

std::string StressContext::audit_now(analysis::AuditLevel level) {
  if (!mgr_ || level == analysis::AuditLevel::kOff) return "";
  analysis::AuditOptions ao;
  ao.level = level;
  ao.max_findings = 8;
  const analysis::AuditReport rep = analysis::audit_manager(*mgr_, ao);
  if (rep.ok()) return "";
  std::string out = std::string("audit: ") +
                    analysis::category_name(rep.findings.front().category) +
                    ": " + rep.findings.front().message;
  if (rep.findings.size() > 1) {
    out += " (+" + std::to_string(rep.findings.size() - 1 + rep.suppressed) +
           " more)";
  }
  return out;
}

void StressContext::note(std::string_view bytes) noexcept {
  for (const char c : bytes) {
    digest_ ^= static_cast<unsigned char>(c);
    digest_ *= 1099511628211ull;  // FNV-1a prime
  }
}

void StressContext::note_u64(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xFF;
    digest_ *= 1099511628211ull;
  }
}

void StressContext::begin_step(std::size_t step) noexcept {
  step_ = step;
  rng_ = StepRng(derive_seed(seed_, thread_, step, kSaltExec));
  scratch.clear();
}

// ---- Walk construction --------------------------------------------------

std::vector<ScheduleEntry> make_walk(const StressFsm& fsm, std::uint64_t seed,
                                     unsigned thread, std::size_t steps) {
  std::vector<ScheduleEntry> out;
  out.reserve(steps);
  std::size_t cur = fsm.start;
  for (std::size_t k = 0; k < steps; ++k) {
    out.push_back({cur, k});
    StepRng choice(derive_seed(seed, thread, k, kSaltChoice));
    cur = fsm.next_state(cur, choice);
  }
  return out;
}

// ---- Replay -------------------------------------------------------------

std::optional<StressFailure> replay_schedule(const StressFsm& fsm,
                                             const StressOptions& opts,
                                             unsigned thread,
                                             std::vector<ScheduleEntry> schedule) {
  const FailpointHygiene hygiene;
  StressContext ctx(opts, opts.seed, thread);
  std::vector<ScheduleEntry> done;
  done.reserve(schedule.size());
  for (const ScheduleEntry& entry : schedule) {
    done.push_back(entry);
    StressFailure fail;
    if (!execute_entry(fsm, ctx, entry, &fail)) {
      fail.replayed = true;
      fail.entries = done;
      fail.schedule.reserve(done.size());
      for (const ScheduleEntry& d : done) {
        fail.schedule.push_back(fsm.states[d.state].name);
      }
      fail.replay_command =
          replay_command_for(fsm, opts, thread, entry.step);
      return fail;
    }
  }
  return std::nullopt;
}

std::optional<StressFailure> replay(const StressFsm& fsm,
                                    const StressOptions& opts, unsigned thread,
                                    std::size_t step) {
  return replay_schedule(fsm, opts, thread,
                         make_walk(fsm, opts.seed, thread, step + 1));
}

// ---- Minimization -------------------------------------------------------

std::vector<ScheduleEntry> minimize_schedule(const StressFsm& fsm,
                                             const StressOptions& opts,
                                             unsigned thread,
                                             std::vector<ScheduleEntry> schedule,
                                             const std::string& failing_state) {
  if (schedule.size() < 2) return schedule;

  std::size_t executions = 0;
  // Run a candidate; when it fails *with the target state* return the index
  // of the failing entry (a failure in a different state is a different bug
  // — the candidate is rejected rather than hijacking the minimization).
  auto run_candidate = [&](const std::vector<ScheduleEntry>& cand)
      -> std::optional<std::size_t> {
    ++executions;
    StressContext ctx(opts, opts.seed, thread);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      StressFailure fail;
      if (!execute_entry(fsm, ctx, cand[i], &fail)) {
        if (fail.state == failing_state) return i;
        return std::nullopt;
      }
    }
    return std::nullopt;
  };

  // Classic ddmin over subsequences.  Each retained entry keeps its
  // original step index (= its randomness), so dropping neighbours never
  // perturbs it; when a candidate fails before its last entry we truncate
  // there — a free extra shrink.
  std::vector<ScheduleEntry> best = std::move(schedule);
  std::size_t granularity = 2;
  while (best.size() >= 2 && executions < opts.minimize_budget) {
    const std::size_t chunk = (best.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0;
         start < best.size() && executions < opts.minimize_budget;
         start += chunk) {
      std::vector<ScheduleEntry> cand;
      cand.reserve(best.size());
      for (std::size_t i = 0; i < best.size(); ++i) {
        if (i < start || i >= start + chunk) cand.push_back(best[i]);
      }
      if (cand.empty()) continue;
      if (const auto idx = run_candidate(cand)) {
        cand.resize(*idx + 1);
        best = std::move(cand);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= best.size()) break;
      granularity = std::min(best.size(), granularity * 2);
    }
  }
  return best;
}

// ---- Multi-threaded driver ----------------------------------------------

StressReport run_stress(const StressFsm& fsm, const StressOptions& opts) {
  const std::string problem = fsm.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("stress fsm '" + fsm.name + "': " + problem);
  }
  const FailpointHygiene hygiene;
  StressOptions o = opts;
  if (o.num_threads == 0) o.num_threads = 1;
  if (o.steps_per_thread == 0) o.steps_per_thread = 1;

  StressReport report;
  report.workload = fsm.name;
  report.seed = o.seed;
  report.threads = o.num_threads;
  report.steps_per_thread = o.steps_per_thread;
  report.state_names.reserve(fsm.states.size());
  for (const StressState& s : fsm.states) report.state_names.push_back(s.name);
  report.state_runs.assign(fsm.states.size(), 0);

  struct RawFailure {
    unsigned thread = 0;
    std::size_t step = 0;
    std::string state;
    std::string message;
  };
  std::mutex mu;
  std::vector<RawFailure> raw;
  std::atomic<bool> stop{false};

  std::vector<std::uint64_t> thread_digests(o.num_threads, 0);
  std::vector<std::vector<std::uint64_t>> thread_runs(
      o.num_threads, std::vector<std::uint64_t>(fsm.states.size(), 0));

  const bool use_wall = o.wall_budget_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              use_wall ? o.wall_budget_seconds : 0.0));
  const auto t0 = std::chrono::steady_clock::now();

  auto walk_thread = [&](unsigned t) {
    StressContext ctx(o, o.seed, t);
    const std::vector<ScheduleEntry> walk =
        make_walk(fsm, o.seed, t, o.steps_per_thread);
    for (const ScheduleEntry& entry : walk) {
      if (stop.load(std::memory_order_relaxed)) break;
      if (use_wall && std::chrono::steady_clock::now() >= deadline) break;
      ++thread_runs[t][entry.state];
      StressFailure fail;
      if (!execute_entry(fsm, ctx, entry, &fail)) {
        {
          const std::lock_guard<std::mutex> lock(mu);
          if (raw.size() < o.max_failures) {
            raw.push_back({t, entry.step, std::move(fail.state),
                           std::move(fail.message)});
          }
        }
        if (o.stop_on_failure) stop.store(true, std::memory_order_relaxed);
        // This thread always stops: its context (manager, pool) may be
        // poisoned by whatever just went wrong.
        break;
      }
    }
    thread_digests[t] = ctx.digest();
  };

  if (o.num_threads == 1) {
    walk_thread(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(o.num_threads);
    for (unsigned t = 0; t < o.num_threads; ++t) {
      threads.emplace_back(walk_thread, t);
    }
    for (std::thread& th : threads) th.join();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Commutative digest fold: the per-thread digests are deterministic, the
  // fold ignores completion order.
  std::uint64_t digest = 1469598103934665603ull;
  for (const char c : fsm.name) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ull;
  }
  for (unsigned t = 0; t < o.num_threads; ++t) {
    StepRng scramble(thread_digests[t] ^
                     derive_seed(o.seed, t, 0, /*salt=*/0xd15e57));
    digest += scramble.next();
    for (std::size_t s = 0; s < fsm.states.size(); ++s) {
      report.state_runs[s] += thread_runs[t][s];
      report.total_steps += thread_runs[t][s];
    }
  }
  report.digest = digest;

  // Confirm + minimize each recorded failure single-threaded.
  std::sort(raw.begin(), raw.end(), [](const RawFailure& a, const RawFailure& b) {
    return a.thread != b.thread ? a.thread < b.thread : a.step < b.step;
  });
  for (RawFailure& rf : raw) {
    StressFailure f;
    f.at = {o.seed, rf.thread, rf.step};
    f.state = rf.state;
    f.message = rf.message;
    f.replay_command = replay_command_for(fsm, o, rf.thread, rf.step);
    std::optional<StressFailure> rep = replay(fsm, o, rf.thread, rf.step);
    if (rep.has_value() && rep->state == rf.state) {
      f.replayed = true;
      f.message = std::move(rep->message);  // the deterministic diagnostic
      f.entries = std::move(rep->entries);
      if (o.minimize_failures) {
        f.entries = minimize_schedule(fsm, o, rf.thread, std::move(f.entries),
                                      f.state);
      }
      f.schedule.clear();
      f.schedule.reserve(f.entries.size());
      for (const ScheduleEntry& e : f.entries) {
        f.schedule.push_back(fsm.states[e.state].name);
      }
    }
    report.failures.push_back(std::move(f));
  }
  return report;
}

// ---- Summaries ----------------------------------------------------------

std::string StressFailure::summary() const {
  std::string out = "FAIL [seed=" + std::to_string(at.seed) +
                    " thread=" + std::to_string(at.thread) +
                    " step=" + std::to_string(at.step) + "] state '" + state +
                    "': " + message;
  out += "\n  replay: " + replay_command;
  if (!schedule.empty()) {
    out += "\n  schedule (" + std::to_string(schedule.size()) +
           " steps, single-threaded): ";
    constexpr std::size_t kShown = 24;
    for (std::size_t i = 0; i < schedule.size() && i < kShown; ++i) {
      if (i != 0) out += " -> ";
      out += schedule[i];
    }
    if (schedule.size() > kShown) {
      out += " -> ... (" + std::to_string(schedule.size() - kShown) + " more)";
    }
  } else if (!replayed) {
    out += "\n  single-threaded replay did NOT reproduce this failure: it "
           "depends on a cross-thread interleaving (run under TSan)";
  }
  return out;
}

std::string StressReport::summary() const {
  std::string out = "stress '" + workload + "': " + std::to_string(threads) +
                    " thread(s) x " + std::to_string(steps_per_thread) +
                    " steps, " + std::to_string(total_steps) +
                    " executed, digest " + hex64(digest);
  out += "\n  states:";
  for (std::size_t i = 0; i < state_names.size(); ++i) {
    out += " " + state_names[i] + "=" + std::to_string(state_runs[i]);
  }
  if (ok()) {
    out += "\n  OK";
  } else {
    for (const StressFailure& f : failures) out += "\n" + f.summary();
  }
  return out;
}

}  // namespace bddmin::stress
