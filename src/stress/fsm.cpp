#include "stress/fsm.hpp"

#include <stdexcept>

#include "analysis/check.hpp"

namespace bddmin::stress {

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t thread,
                          std::uint64_t step, std::uint64_t salt) noexcept {
  // One SplitMix64 scramble per mixed-in word: cheap, stable, and the
  // resulting streams are independent for distinct (thread, step, salt).
  StepRng mix(seed ^ (thread * 0xd1b54a32d192ed03ull) ^
              (step * 0x8bb84b93962eacc9ull) ^ (salt * 0x2545f4914f6cdd1dull));
  return mix.next();
}

std::string StressFsm::validate() const {
  if (states.empty()) return "no states";
  if (start >= states.size()) return "start state out of range";
  if (!transitions.empty() && transitions.size() != states.size()) {
    return "transitions rows != states (give one row per state, or none)";
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].name.empty()) return "state " + std::to_string(i) + " unnamed";
    if (!states[i].run) {
      return "state '" + states[i].name + "' has no run function";
    }
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      if (states[i].name == states[j].name) {
        return "duplicate state name '" + states[i].name + "'";
      }
    }
  }
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    double mass = 0.0;
    for (const Transition& t : transitions[i]) {
      if (t.target >= states.size()) {
        return "state '" + states[i].name + "' has an out-of-range successor";
      }
      if (!(t.weight > 0.0)) {
        return "state '" + states[i].name + "' has a non-positive edge weight";
      }
      mass += t.weight;
    }
    if (!transitions[i].empty() && !(mass > 0.0)) {
      return "state '" + states[i].name + "' has zero outgoing mass";
    }
  }
  return "";
}

std::size_t StressFsm::state_index(const std::string& state_name) const {
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].name == state_name) return i;
  }
  throw std::out_of_range("no stress state named '" + state_name + "' in " +
                          name);
}

std::size_t StressFsm::next_state(std::size_t current, StepRng& rng) const {
  BDDMIN_CHECK(current < states.size());
  if (transitions.empty() || transitions[current].empty()) {
    return rng.below(states.size());
  }
  const std::vector<Transition>& row = transitions[current];
  double mass = 0.0;
  for (const Transition& t : row) mass += t.weight;
  // Same weighted-choice shape as fsm.js getWeightedRandomChoice: walk the
  // row subtracting mass until the draw lands inside an edge.
  double draw = rng.unit() * mass;
  for (const Transition& t : row) {
    if (draw < t.weight) return t.target;
    draw -= t.weight;
  }
  return row.back().target;  // floating-point tail: the last edge owns it
}

FsmBuilder& FsmBuilder::state(
    std::string state_name, std::function<void(StressContext&)> run,
    std::function<std::string(StressContext&)> invariant) {
  fsm_.states.push_back(
      {std::move(state_name), std::move(run), std::move(invariant)});
  fsm_.transitions.emplace_back();
  return *this;
}

FsmBuilder& FsmBuilder::edge(const std::string& from, const std::string& to,
                             double weight) {
  fsm_.transitions[fsm_.state_index(from)].push_back(
      {fsm_.state_index(to), weight});
  return *this;
}

FsmBuilder& FsmBuilder::start(const std::string& state_name) {
  fsm_.start = fsm_.state_index(state_name);
  return *this;
}

StressFsm FsmBuilder::build() {
  const std::string problem = fsm_.validate();
  if (!problem.empty()) {
    throw std::invalid_argument("stress fsm '" + fsm_.name + "': " + problem);
  }
  return std::move(fsm_);
}

}  // namespace bddmin::stress
