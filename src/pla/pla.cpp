#include "pla/pla.hpp"

#include <sstream>
#include <stdexcept>

namespace bddmin::pla {
namespace {

Edge input_cube(Manager& mgr, std::span<const std::uint32_t> vars,
                std::string_view pattern) {
  Edge cube = kOne;
  for (std::size_t i = pattern.size(); i-- > 0;) {
    if (pattern[i] == '-') continue;
    const Edge lit =
        pattern[i] == '1' ? mgr.var_edge(vars[i]) : mgr.nvar_edge(vars[i]);
    cube = mgr.and_(cube, lit);
  }
  return cube;
}

}  // namespace

void Pla::validate() const {
  if (type != "f" && type != "fd" && type != "fr" && type != "fdr") {
    throw std::invalid_argument(name + ": unsupported .type " + type);
  }
  for (const PlaCube& cube : cubes) {
    if (cube.inputs.size() != num_inputs) {
      throw std::invalid_argument(name + ": bad input width in " + cube.inputs);
    }
    if (cube.outputs.size() != num_outputs) {
      throw std::invalid_argument(name + ": bad output width in " + cube.outputs);
    }
    for (const char ch : cube.inputs) {
      if (ch != '0' && ch != '1' && ch != '-') {
        throw std::invalid_argument(name + ": bad input char");
      }
    }
    for (const char ch : cube.outputs) {
      if (ch != '0' && ch != '1' && ch != '-' && ch != '~') {
        throw std::invalid_argument(name + ": bad output char");
      }
    }
  }
  if (!input_labels.empty() && input_labels.size() != num_inputs) {
    throw std::invalid_argument(name + ": .ilb width mismatch");
  }
  if (!output_labels.empty() && output_labels.size() != num_outputs) {
    throw std::invalid_argument(name + ": .ob width mismatch");
  }
}

Pla parse_pla(std::string_view text, std::string name) {
  Pla pla;
  pla.name = std::move(name);
  std::istringstream in{std::string(text)};
  std::string line;
  bool ended = false;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first) || ended) continue;
    if (first == ".i") {
      ls >> pla.num_inputs;
    } else if (first == ".o") {
      ls >> pla.num_outputs;
    } else if (first == ".p") {
      std::size_t ignored;
      ls >> ignored;  // re-derived from the body
    } else if (first == ".type") {
      ls >> pla.type;
    } else if (first == ".ilb") {
      std::string label;
      while (ls >> label) pla.input_labels.push_back(label);
    } else if (first == ".ob") {
      std::string label;
      while (ls >> label) pla.output_labels.push_back(label);
    } else if (first == ".e" || first == ".end") {
      ended = true;
    } else if (first[0] == '.') {
      throw std::invalid_argument(pla.name + ": unknown directive " + first);
    } else {
      PlaCube cube;
      cube.inputs = first;
      if (!(ls >> cube.outputs)) {
        throw std::invalid_argument(pla.name + ": malformed cube: " + line);
      }
      pla.cubes.push_back(std::move(cube));
    }
  }
  pla.validate();
  return pla;
}

std::string to_pla(const Pla& pla) {
  std::ostringstream os;
  os << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n";
  if (!pla.input_labels.empty()) {
    os << ".ilb";
    for (const std::string& l : pla.input_labels) os << ' ' << l;
    os << "\n";
  }
  if (!pla.output_labels.empty()) {
    os << ".ob";
    for (const std::string& l : pla.output_labels) os << ' ' << l;
    os << "\n";
  }
  os << ".type " << pla.type << "\n.p " << pla.cubes.size() << "\n";
  for (const PlaCube& cube : pla.cubes) {
    os << cube.inputs << ' ' << cube.outputs << "\n";
  }
  os << ".e\n";
  return os.str();
}

minimize::IncSpec output_function(Manager& mgr, const Pla& pla, unsigned output,
                                  std::span<const std::uint32_t> input_vars) {
  if (output >= pla.num_outputs || input_vars.size() != pla.num_inputs) {
    throw std::invalid_argument(pla.name + ": bad output index or var layout");
  }
  Edge on = kZero;
  Edge off = kZero;
  Edge dc = kZero;
  for (const PlaCube& cube : pla.cubes) {
    const char ch = cube.outputs[output];
    if (ch == '~') continue;
    const Edge e = input_cube(mgr, input_vars, cube.inputs);
    if (ch == '1') on = mgr.or_(on, e);
    else if (ch == '0') off = mgr.or_(off, e);
    else dc = mgr.or_(dc, e);
  }
  Edge care;
  if (pla.type == "f") {
    care = kOne;  // uncovered minterms are offset
  } else if (pla.type == "fd") {
    // Onset rows win over overlapping '-' rows.
    care = mgr.or_(!dc, on);
  } else {
    // fr / fdr: care exactly where the matrix speaks.
    care = mgr.or_(on, off);
  }
  return {on, care};
}

std::vector<minimize::IncSpec> output_functions(
    Manager& mgr, const Pla& pla, std::span<const std::uint32_t> input_vars) {
  std::vector<minimize::IncSpec> out;
  out.reserve(pla.num_outputs);
  for (unsigned j = 0; j < pla.num_outputs; ++j) {
    out.push_back(output_function(mgr, pla, j, input_vars));
  }
  return out;
}

namespace {

// Seven-segment decoder: digits 10-15 never occur (don't cares).
constexpr const char* kSevenSeg = R"(.i 4
.o 7
.ilb b3 b2 b1 b0
.ob a b c d e f g
.type fd
0000 1111110
0001 0110000
0010 1101101
0011 1111001
0100 0110011
0101 1011011
0110 1011111
0111 1110000
1000 1111111
1001 1111011
101- -------
11-- -------
.e
)";

// Majority of five inputs; exactly-two-ones minterms are relaxed to DC.
constexpr const char* kMajority5 = R"(.i 5
.o 1
.type fd
111-- 1
11-1- 1
11--1 1
1-11- 1
1-1-1 1
1--11 1
-111- 1
-11-1 1
-1-11 1
--111 1
11000 -
10100 -
10010 -
10001 -
01100 -
01010 -
01001 -
00110 -
00101 -
00011 -
.e
)";

// Two-bit adder, fully specified (.type f).
constexpr const char* kAdd2 = R"(.i 4
.o 3
.ilb a1 a0 b1 b0
.ob s2 s1 s0
.type f
0000 000
0001 001
0010 010
0011 011
0100 001
0101 010
0110 011
0111 100
1000 010
1001 011
1010 100
1011 101
1100 011
1101 100
1110 101
1111 110
.e
)";

// Eight-way priority encoder (.type fr): the all-zero request vector is
// left uncovered, hence don't care.
constexpr const char* kPrio8 = R"(.i 8
.o 4
.ob v i2 i1 i0
.type fr
1------- 1000
01------ 1001
001----- 1010
0001---- 1011
00001--- 1100
000001-- 1101
0000001- 1110
00000001 1111
.e
)";

std::vector<std::pair<std::string, std::string>> make_sources() {
  return {
      {"sevenseg", kSevenSeg},
      {"majority5_like", kMajority5},
      {"add2", kAdd2},
      {"prio8_like", kPrio8},
  };
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& builtin_pla_sources() {
  static const std::vector<std::pair<std::string, std::string>> sources =
      make_sources();
  return sources;
}

Pla builtin_pla(const std::string& name) {
  for (const auto& [key, text] : builtin_pla_sources()) {
    if (key == name) return parse_pla(text, name);
  }
  throw std::out_of_range("unknown builtin pla: " + name);
}

}  // namespace bddmin::pla
