/// \file pla.hpp
/// \brief Berkeley/espresso PLA reader & writer.
///
/// Two-level descriptions are the classic source of incompletely
/// specified functions: with `.type fd` (the default), an output '1'
/// puts the input cube in the onset, '-' puts it in the don't-care set,
/// and everything else is offset.  Each output column therefore yields an
/// EBM instance [f, c] directly — the paper's third motivating
/// application (multiplexer-FPGA mapping from BDDs) consumes exactly
/// these.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "minimize/incspec.hpp"

namespace bddmin::pla {

/// One parsed PLA matrix row: input pattern over {'0','1','-'} and output
/// pattern over {'0','1','-','~'}.
struct PlaCube {
  std::string inputs;
  std::string outputs;
};

struct Pla {
  std::string name;
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  std::vector<std::string> input_labels;   ///< .ilb, may be empty
  std::vector<std::string> output_labels;  ///< .ob, may be empty
  std::string type = "fd";                 ///< .type: f, fd, fr, fdr
  std::vector<PlaCube> cubes;

  /// Structural checks (widths, characters); throws std::invalid_argument.
  void validate() const;
};

/// Parse PLA text (directives .i/.o/.ilb/.ob/.p/.type/.e, '#' comments).
[[nodiscard]] Pla parse_pla(std::string_view text, std::string name = "pla");

/// Serialize back (round-trips through parse_pla).
[[nodiscard]] std::string to_pla(const Pla& pla);

/// Build the incompletely specified function of output column \p output
/// over manager variables input_vars.  Interpretation follows .type:
///  * f:  '1' cubes are onset, everything else offset (fully specified).
///  * fd: '1' onset, '-' don't care, rest offset.
///  * fr: '1' onset, '0' offset, rest don't care.
///  * fdr:'1' onset, '0' offset, '-' don't care, '~' ignored.
[[nodiscard]] minimize::IncSpec output_function(
    Manager& mgr, const Pla& pla, unsigned output,
    std::span<const std::uint32_t> input_vars);

/// All output functions at once (shares traversal work).
[[nodiscard]] std::vector<minimize::IncSpec> output_functions(
    Manager& mgr, const Pla& pla, std::span<const std::uint32_t> input_vars);

/// Embedded sample PLAs (hand-written in the MCNC style; names carry a
/// _like suffix because the originals are not redistributable).
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
builtin_pla_sources();
[[nodiscard]] Pla builtin_pla(const std::string& name);

}  // namespace bddmin::pla
