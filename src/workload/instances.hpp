/// \file instances.hpp
/// \brief Raw EBM instances: the paper's leaf notation and random
/// incompletely specified functions with a target care-onset density.
#pragma once

#include <random>
#include <string_view>

#include "minimize/incspec.hpp"

namespace bddmin::workload {

/// Parse the paper's Section 3.2 notation: function values on the leaves
/// of the binary decision tree listed left to right ('0', '1', 'd' =
/// don't care; whitespace ignored), left branch = 0, x0 topmost.
/// "d1 01" is the two-variable instance of counterexample 1.
[[nodiscard]] minimize::IncSpec from_leaves(Manager& mgr, std::string_view leaves);

/// Random function over variables [0, num_vars) whose onset fraction is
/// approximately \p density: random cubes are accumulated (or carved out,
/// for density > 1/2) until the target is crossed.
[[nodiscard]] Edge random_function(Manager& mgr, unsigned num_vars, double density,
                                   std::mt19937_64& rng);

/// Seeded overload: the whole function is determined by \p seed alone, so
/// a failing instance is reproducible from one reported number.
[[nodiscard]] Edge random_function(Manager& mgr, unsigned num_vars, double density,
                                   std::uint64_t seed);

/// Random EBM instance with a target care-onset density — used to
/// populate the paper's c_onset_size buckets directly.
[[nodiscard]] minimize::IncSpec random_instance(Manager& mgr, unsigned num_vars,
                                                double c_density,
                                                std::mt19937_64& rng);

/// Seeded overload: the instance is a pure function of \p seed (f and c
/// drawn from one generator seeded with it), the end-to-end plumbing the
/// randomized property suite and `bddmin_cli batch --seed` rely on.
[[nodiscard]] minimize::IncSpec random_instance(Manager& mgr, unsigned num_vars,
                                                double c_density,
                                                std::uint64_t seed);

}  // namespace bddmin::workload
