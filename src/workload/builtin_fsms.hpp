/// \file builtin_fsms.hpp
/// \brief Hand-written KISS2 machines embedded in the library.
///
/// The paper's benchmark set (s344, s386, ..., tlc, minmax5) is not
/// redistributable here, so these are original machines written in the
/// same style: small controllers with wildcarded inputs (traffic light,
/// bus arbiter, sequence detector, elevator, ...).  The *_like suffix is
/// a reminder that they are stand-ins, not the MCNC originals.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "fsm/fsm.hpp"

namespace bddmin::workload {

/// (name, KISS2 source) for every embedded machine.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
builtin_kiss_sources();

/// All embedded machines, parsed and validated.
[[nodiscard]] std::vector<fsm::Fsm> builtin_fsms();

/// One embedded machine by name; throws std::out_of_range.
[[nodiscard]] fsm::Fsm builtin_fsm(const std::string& name);

}  // namespace bddmin::workload
