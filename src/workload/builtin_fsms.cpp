#include "workload/builtin_fsms.hpp"

#include <stdexcept>

#include "fsm/kiss.hpp"

namespace bddmin::workload {
namespace {

// Traffic light controller (Mead/Conway style).  Inputs: c (car waiting on
// the farm road), tl (long timer expired), ts (short timer expired).
// Outputs: highway light, farm light, each 2-bit (00 green, 01 yellow,
// 10 red).
constexpr const char* kTlcLike = R"(.i 3
.o 4
.r HG
0-- HG HG 0010
-0- HG HG 0010
11- HG HY 0010
--0 HY HY 0110
--1 HY FG 0110
0-- FG FY 1000
-1- FG FY 1000
10- FG FG 1000
--0 FY FY 1001
--1 FY HG 1001
.e
)";

// Two-requester bus arbiter with a timeout.  Inputs: r1, r2, t (timeout),
// u (spare strobe).  Outputs: g1, g2.
constexpr const char* kArbLike = R"(.i 4
.o 2
.r idle
00-- idle idle 00
1--- idle grant1 10
01-- idle grant2 01
0--- grant1 idle 00
1-0- grant1 grant1 10
1-1- grant1 wait2 00
-0-- grant2 idle 00
-10- grant2 grant2 01
-11- grant2 wait1 00
---- wait1 grant1 10
---0 wait2 grant2 01
---1 wait2 grant2 01
.e
)";

// Seven-state single-input machine in the dk27 size class.
constexpr const char* kDk27Like = R"(.i 1
.o 2
.r s0
0 s0 s1 00
1 s0 s3 01
0 s1 s2 01
1 s1 s4 00
0 s2 s0 10
1 s2 s5 11
0 s3 s4 00
1 s3 s6 01
0 s4 s5 10
1 s4 s0 00
0 s5 s6 11
1 s5 s1 10
0 s6 s0 01
1 s6 s2 11
.e
)";

// Overlapping "1011" sequence detector (Mealy).
constexpr const char* kSeqDetect = R"(.i 1
.o 1
.r e
0 e e 0
1 e s1 0
0 s1 s10 0
1 s1 s1 0
0 s10 e 0
1 s10 s101 0
0 s101 s10 0
1 s101 s1 1
.e
)";

// Four-floor elevator; input is the binary requested floor, output is the
// door-open signal.  Moves one floor per step toward the request.
constexpr const char* kElevator = R"(.i 2
.o 1
.r f0
00 f0 f0 1
01 f0 f1 0
1- f0 f1 0
00 f1 f0 0
01 f1 f1 1
1- f1 f2 0
0- f2 f1 0
10 f2 f2 1
11 f2 f3 0
0- f3 f2 0
10 f3 f2 0
11 f3 f3 1
.e
)";

// Stop-and-wait protocol sender.  Inputs: send request, ack, timeout.
// Outputs: frame-out, done.
constexpr const char* kSenderLike = R"(.i 3
.o 2
.r idle
0-- idle idle 00
1-- idle xmit 10
--- xmit await 00
-1- await done 01
-00 await await 00
-01 await xmit 10
--- done idle 00
.e
)";

// 20-cent vending machine taking nickels (n) and dimes (d); the nickel
// slot wins when both coins arrive at once.  Outputs: vend, change.
constexpr const char* kVend20 = R"(.i 2
.o 2
.r s0
00 s0 s0 00
1- s0 s5 00
01 s0 s10 00
00 s5 s5 00
1- s5 s10 00
01 s5 s15 00
00 s10 s10 00
1- s10 s15 00
01 s10 s0 10
00 s15 s15 00
1- s15 s0 10
01 s15 s0 11
.e
)";

// Multicycle CPU control unit.  Inputs: op1 op0 (00 alu, 01 mem, 10
// branch, 11 halt) and the zero flag z.  Outputs: pc_en ir_en mem_rd
// reg_wr.
constexpr const char* kCtrlLike = R"(.i 3
.o 4
.r fetch
--- fetch decode 0110
00- decode exec_alu 0000
01- decode exec_mem 0000
10- decode branch 0000
11- decode halt 0000
--- exec_alu writeback 0000
--- exec_mem writeback 0010
--1 branch fetch 1000
--0 branch fetch 0000
--- writeback fetch 1001
--- halt halt 0000
.e
)";

std::vector<std::pair<std::string, std::string>> make_sources() {
  return {
      {"tlc_like", kTlcLike},     {"arb_like", kArbLike},
      {"dk27_like", kDk27Like},   {"seq_detect", kSeqDetect},
      {"elevator4", kElevator},   {"sender_like", kSenderLike},
      {"vend20", kVend20},        {"ctrl_like", kCtrlLike},
  };
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& builtin_kiss_sources() {
  static const std::vector<std::pair<std::string, std::string>> sources =
      make_sources();
  return sources;
}

std::vector<fsm::Fsm> builtin_fsms() {
  std::vector<fsm::Fsm> machines;
  for (const auto& [name, text] : builtin_kiss_sources()) {
    machines.push_back(fsm::parse_kiss2(text, name));
  }
  return machines;
}

fsm::Fsm builtin_fsm(const std::string& name) {
  for (const auto& [key, text] : builtin_kiss_sources()) {
    if (key == name) return fsm::parse_kiss2(text, name);
  }
  throw std::out_of_range("unknown builtin fsm: " + name);
}

}  // namespace bddmin::workload
