#include "workload/instances.hpp"

#include <bit>
#include <cctype>
#include <stdexcept>
#include <vector>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::workload {

minimize::IncSpec from_leaves(Manager& mgr, std::string_view leaves) {
  std::vector<char> values;
  for (const char ch : leaves) {
    if (std::isspace(static_cast<unsigned char>(ch))) continue;
    if (ch != '0' && ch != '1' && ch != 'd') {
      throw std::invalid_argument("bad leaf char");
    }
    values.push_back(ch);
  }
  if (values.empty() || !std::has_single_bit(values.size())) {
    throw std::invalid_argument("leaf count must be a power of two");
  }
  const unsigned n = static_cast<unsigned>(std::bit_width(values.size()) - 1);
  if (n > kMaxTtVars) throw std::invalid_argument("too many leaf variables");
  std::uint64_t f_tt = 0;
  std::uint64_t c_tt = 0;
  for (std::size_t leaf = 0; leaf < values.size(); ++leaf) {
    // Leaf order: left branch = 0 with x0 on top, so x_v is bit (n-1-v)
    // of the leaf index; truth-table minterms keep x_v in bit v.
    std::uint64_t m = 0;
    for (unsigned v = 0; v < n; ++v) {
      if ((leaf >> (n - 1 - v)) & 1) m |= 1ull << v;
    }
    if (values[leaf] == '1') f_tt |= 1ull << m;
    if (values[leaf] != 'd') c_tt |= 1ull << m;
  }
  return {from_tt(mgr, f_tt, n), from_tt(mgr, c_tt, n)};
}

Edge random_function(Manager& mgr, unsigned num_vars, double density,
                     std::mt19937_64& rng) {
  if (density <= 0.0) return kZero;
  if (density >= 1.0) return kOne;
  const bool carve = density > 0.5;  // build the sparse side and negate
  const double target = carve ? 1.0 - density : density;
  std::uniform_int_distribution<unsigned> var_dist(0, num_vars - 1);
  std::bernoulli_distribution phase(0.5);
  // Cube width around log2(2/target): each cube is at most half the
  // target mass, so the result is a union of several cubes rather than a
  // single cube (which classify_call would filter as a trivial instance).
  unsigned width = 1;
  while (width < num_vars && std::ldexp(1.0, -static_cast<int>(width)) > target) {
    ++width;
  }
  if (width < num_vars) ++width;
  Edge f = kZero;
  for (int guard = 0; guard < 4096 && sat_fraction(mgr, f) < target; ++guard) {
    Edge cube = kOne;
    for (unsigned k = 0; k < width; ++k) {
      const unsigned v = var_dist(rng);
      cube = mgr.and_(cube, phase(rng) ? mgr.var_edge(v) : mgr.nvar_edge(v));
    }
    f = mgr.or_(f, cube);
  }
  return carve ? !f : f;
}

Edge random_function(Manager& mgr, unsigned num_vars, double density,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_function(mgr, num_vars, density, rng);
}

minimize::IncSpec random_instance(Manager& mgr, unsigned num_vars,
                                  double c_density, std::mt19937_64& rng) {
  const Edge f = random_function(mgr, num_vars, 0.5, rng);
  const Edge c = random_function(mgr, num_vars, c_density, rng);
  return {f, c};
}

minimize::IncSpec random_instance(Manager& mgr, unsigned num_vars,
                                  double c_density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return random_instance(mgr, num_vars, c_density, rng);
}

}  // namespace bddmin::workload
