#include "workload/generators.hpp"

#include <random>
#include <string>

#include "fsm/fsm.hpp"
#include "workload/instances.hpp"

namespace bddmin::workload {
namespace {

using fsm::SymbolicFsm;

SymbolicFsm base_machine(Manager& mgr, std::span<const std::uint32_t> input_vars,
                         std::span<const std::uint32_t> state_vars) {
  SymbolicFsm sym;
  sym.input_vars.assign(input_vars.begin(), input_vars.end());
  sym.state_vars.assign(state_vars.begin(), state_vars.end());
  (void)mgr;
  return sym;
}

/// All-zero initial state over the machine's state bits.
Edge zero_state(Manager& mgr, std::span<const std::uint32_t> state_vars) {
  Edge init = kOne;
  for (const std::uint32_t v : state_vars) {
    init = mgr.and_(init, mgr.nvar_edge(v));
  }
  return init;
}

/// Ripple-carry sum of the state register and an addend vector (shorter
/// addend is zero-extended); returns per-bit sums, carry-out in *carry.
std::vector<Edge> ripple_add(Manager& mgr, std::span<const Edge> a,
                             std::span<const Edge> b, Edge* carry_out) {
  std::vector<Edge> sum(a.size());
  Edge carry = kZero;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const Edge bk = k < b.size() ? b[k] : kZero;
    const Edge axb = mgr.xor_(a[k], bk);
    sum[k] = mgr.xor_(axb, carry);
    carry = mgr.or_(mgr.and_(a[k], bk), mgr.and_(axb, carry));
  }
  if (carry_out) *carry_out = carry;
  return sum;
}

std::vector<Edge> literals(Manager& mgr, std::span<const std::uint32_t> vars) {
  std::vector<Edge> lits(vars.size());
  for (std::size_t k = 0; k < vars.size(); ++k) lits[k] = mgr.var_edge(vars[k]);
  return lits;
}

/// a < b over equal-width unsigned vectors (bit 0 = LSB).
Edge unsigned_less(Manager& mgr, std::span<const Edge> a,
                   std::span<const Edge> b) {
  Edge less = kZero;  // scan from LSB: higher bits override
  for (std::size_t k = 0; k < a.size(); ++k) {
    const Edge eq = mgr.xnor_(a[k], b[k]);
    less = mgr.ite(eq, less, mgr.and_(!a[k], b[k]));
  }
  return less;
}

}  // namespace

MachineSpec make_counter(unsigned bits) {
  MachineSpec spec;
  spec.name = "counter" + std::to_string(bits);
  spec.num_inputs = 1;
  spec.num_state_bits = bits;
  spec.num_outputs = 1;
  spec.build = [](Manager& mgr, std::span<const std::uint32_t> in,
                  std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const Edge enable = mgr.var_edge(in[0]);
    Edge carry = enable;
    for (const std::uint32_t v : st) {
      const Edge s = mgr.var_edge(v);
      sym.next_state.push_back(mgr.xor_(s, carry));
      carry = mgr.and_(s, carry);
    }
    sym.outputs.push_back(carry);
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_mod_counter(unsigned modulus) {
  unsigned bits = 1;
  while ((1u << bits) < modulus) ++bits;
  MachineSpec spec;
  spec.name = "mod" + std::to_string(modulus);
  spec.num_inputs = 1;
  spec.num_state_bits = bits;
  spec.num_outputs = 1;
  spec.build = [bits, modulus](Manager& mgr,
                               std::span<const std::uint32_t> in,
                               std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const Edge enable = mgr.var_edge(in[0]);
    // wrap = (state == modulus - 1)
    Edge wrap = kOne;
    for (unsigned k = 0; k < bits; ++k) {
      const Edge lit = ((modulus - 1) >> k) & 1 ? mgr.var_edge(st[k])
                                                : mgr.nvar_edge(st[k]);
      wrap = mgr.and_(wrap, lit);
    }
    Edge carry = kOne;
    for (unsigned k = 0; k < bits; ++k) {
      const Edge s = mgr.var_edge(st[k]);
      const Edge inc = mgr.xor_(s, carry);
      carry = mgr.and_(s, carry);
      const Edge stepped = mgr.ite(wrap, kZero, inc);
      sym.next_state.push_back(mgr.ite(enable, stepped, s));
    }
    sym.outputs.push_back(mgr.and_(enable, wrap));
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_gray_counter(unsigned bits) {
  MachineSpec spec;
  spec.name = "gray" + std::to_string(bits);
  spec.num_inputs = 1;
  spec.num_state_bits = bits;
  spec.num_outputs = 1;
  spec.build = [bits](Manager& mgr, std::span<const std::uint32_t> in,
                      std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const Edge enable = mgr.var_edge(in[0]);
    // Decode gray -> binary, increment, encode back.
    std::vector<Edge> binary(bits);
    Edge acc = kZero;
    for (unsigned k = bits; k-- > 0;) {
      acc = mgr.xor_(acc, mgr.var_edge(st[k]));
      binary[k] = acc;
    }
    Edge carry = kOne;
    std::vector<Edge> inc(bits);
    for (unsigned k = 0; k < bits; ++k) {
      inc[k] = mgr.xor_(binary[k], carry);
      carry = mgr.and_(binary[k], carry);
    }
    for (unsigned k = 0; k < bits; ++k) {
      const Edge hi = k + 1 < bits ? inc[k + 1] : kZero;
      const Edge gray_k = mgr.xor_(inc[k], hi);
      sym.next_state.push_back(
          mgr.ite(enable, gray_k, mgr.var_edge(st[k])));
    }
    sym.outputs.push_back(mgr.var_edge(st[bits - 1]));
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_lfsr(unsigned bits, std::uint64_t taps) {
  MachineSpec spec;
  spec.name = "lfsr" + std::to_string(bits);
  spec.num_inputs = 1;
  spec.num_state_bits = bits;
  spec.num_outputs = 1;
  spec.build = [bits, taps](Manager& mgr, std::span<const std::uint32_t> in,
                            std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const Edge enable = mgr.var_edge(in[0]);
    Edge feedback = kZero;
    for (unsigned k = 0; k < bits; ++k) {
      if ((taps >> k) & 1) feedback = mgr.xor_(feedback, mgr.var_edge(st[k]));
    }
    for (unsigned k = 0; k < bits; ++k) {
      const Edge shifted = k + 1 < bits ? mgr.var_edge(st[k + 1]) : feedback;
      sym.next_state.push_back(mgr.ite(enable, shifted, mgr.var_edge(st[k])));
    }
    sym.outputs.push_back(mgr.var_edge(st[0]));
    // Seed at state 1 (the all-zero state is a fixed point of an LFSR).
    Edge init = mgr.var_edge(st[0]);
    for (unsigned k = 1; k < bits; ++k) init = mgr.and_(init, mgr.nvar_edge(st[k]));
    sym.initial = init;
    return sym;
  };
  return spec;
}

MachineSpec make_accumulator(unsigned bits, unsigned input_bits) {
  MachineSpec spec;
  spec.name = "accum" + std::to_string(bits) + "x" + std::to_string(input_bits);
  spec.num_inputs = input_bits;
  spec.num_state_bits = bits;
  spec.num_outputs = 2;
  spec.build = [bits](Manager& mgr, std::span<const std::uint32_t> in,
                      std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const std::vector<Edge> state_lits = literals(mgr, st);
    const std::vector<Edge> addend = literals(mgr, in);
    Edge carry_out = kZero;
    sym.next_state = ripple_add(mgr, state_lits, addend, &carry_out);
    sym.outputs.push_back(mgr.var_edge(st[bits - 1]));
    sym.outputs.push_back(carry_out);
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_mult_register(unsigned bits, unsigned input_bits) {
  MachineSpec spec;
  spec.name = "multreg" + std::to_string(bits);
  spec.num_inputs = input_bits;
  spec.num_state_bits = bits;
  spec.num_outputs = 1;
  spec.build = [bits](Manager& mgr, std::span<const std::uint32_t> in,
                      std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const std::vector<Edge> s = literals(mgr, st);
    // 5*state = (state << 2) + state (mod 2^bits).
    std::vector<Edge> shifted(bits, kZero);
    for (unsigned k = 2; k < bits; ++k) shifted[k] = s[k - 2];
    std::vector<Edge> five = ripple_add(mgr, s, shifted, nullptr);
    const std::vector<Edge> addend = literals(mgr, in);
    sym.next_state = ripple_add(mgr, five, addend, nullptr);
    sym.outputs.push_back(sym.next_state[bits - 1]);
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_minmax(unsigned word_bits) {
  MachineSpec spec;
  spec.name = "minmax" + std::to_string(word_bits);
  spec.num_inputs = word_bits;
  spec.num_state_bits = 2 * word_bits;  // min register, then max register
  spec.num_outputs = 1;
  spec.build = [word_bits](Manager& mgr, std::span<const std::uint32_t> in,
                           std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    const std::vector<Edge> word = literals(mgr, in);
    const std::vector<Edge> lo = literals(mgr, st.subspan(0, word_bits));
    const std::vector<Edge> hi = literals(mgr, st.subspan(word_bits));
    const Edge below = unsigned_less(mgr, word, lo);
    const Edge above = unsigned_less(mgr, hi, word);
    for (unsigned k = 0; k < word_bits; ++k) {
      sym.next_state.push_back(mgr.ite(below, word[k], lo[k]));
    }
    for (unsigned k = 0; k < word_bits; ++k) {
      sym.next_state.push_back(mgr.ite(above, word[k], hi[k]));
    }
    sym.outputs.push_back(below);
    // min starts all-ones, max all-zeros.
    Edge init = kOne;
    for (unsigned k = 0; k < word_bits; ++k) {
      init = mgr.and_(init, mgr.var_edge(st[k]));
      init = mgr.and_(init, mgr.nvar_edge(st[word_bits + k]));
    }
    sym.initial = init;
    return sym;
  };
  return spec;
}

MachineSpec make_shift_register(unsigned bits) {
  MachineSpec spec;
  spec.name = "shift" + std::to_string(bits);
  spec.num_inputs = 1;
  spec.num_state_bits = bits;
  spec.num_outputs = 2;
  spec.build = [bits](Manager& mgr, std::span<const std::uint32_t> in,
                      std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    sym.next_state.push_back(mgr.var_edge(in[0]));
    for (unsigned k = 1; k < bits; ++k) {
      sym.next_state.push_back(mgr.var_edge(st[k - 1]));
    }
    sym.outputs.push_back(mgr.var_edge(st[bits - 1]));
    Edge parity = kZero;
    for (const std::uint32_t v : st) parity = mgr.xor_(parity, mgr.var_edge(v));
    sym.outputs.push_back(parity);
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_bit_setter(unsigned bits) {
  unsigned input_bits = 1;
  while ((1u << input_bits) < bits) ++input_bits;
  MachineSpec spec;
  spec.name = "bitset" + std::to_string(bits);
  spec.num_inputs = input_bits;
  spec.num_state_bits = bits;
  spec.num_outputs = 1;
  spec.build = [bits, input_bits](Manager& mgr,
                                  std::span<const std::uint32_t> in,
                                  std::span<const std::uint32_t> st) {
    SymbolicFsm sym = base_machine(mgr, in, st);
    for (unsigned k = 0; k < bits; ++k) {
      // selected_k = (input == k), as a cube over the input bits.
      Edge selected = kOne;
      for (unsigned i = 0; i < input_bits; ++i) {
        selected = mgr.and_(selected, ((k >> i) & 1) ? mgr.var_edge(in[i])
                                                     : mgr.nvar_edge(in[i]));
      }
      sym.next_state.push_back(mgr.or_(mgr.var_edge(st[k]), selected));
    }
    Edge parity = kZero;
    for (const std::uint32_t v : st) parity = mgr.xor_(parity, mgr.var_edge(v));
    sym.outputs.push_back(parity);
    sym.initial = zero_state(mgr, st);
    return sym;
  };
  return spec;
}

MachineSpec make_random_mealy(unsigned num_states, unsigned input_bits,
                              unsigned num_outputs, std::uint64_t seed) {
  return fsm::spec_from_fsm(
      make_random_mealy_fsm(num_states, input_bits, num_outputs, seed));
}

fsm::Fsm make_random_mealy_fsm(unsigned num_states, unsigned input_bits,
                               unsigned num_outputs, std::uint64_t seed) {
  fsm::Fsm machine;
  machine.name = "mealy" + std::to_string(num_states) + "s" +
                 std::to_string(seed);
  machine.num_inputs = input_bits;
  machine.num_outputs = num_outputs;
  std::mt19937_64 rng(seed);
  for (unsigned s = 0; s < num_states; ++s) {
    machine.add_state("s" + std::to_string(s));
  }
  std::uniform_int_distribution<unsigned> next_dist(0, num_states - 1);
  std::bernoulli_distribution bit(0.5);
  for (unsigned s = 0; s < num_states; ++s) {
    for (unsigned m = 0; m < (1u << input_bits); ++m) {
      fsm::Transition t;
      for (unsigned i = 0; i < input_bits; ++i) {
        t.input.push_back(((m >> i) & 1) ? '1' : '0');
      }
      t.from = machine.states[s];
      t.to = machine.states[next_dist(rng)];
      for (unsigned j = 0; j < num_outputs; ++j) {
        t.output.push_back(bit(rng) ? '1' : '0');
      }
      machine.transitions.push_back(std::move(t));
    }
  }
  return machine;
}

std::vector<engine::Job> heavy_tier_jobs(unsigned scale, std::uint64_t seed) {
  std::vector<engine::Job> jobs;
  jobs.reserve(std::size_t{616} * scale);
  // splitmix64 stream: each payload draws a fixed number of values, so
  // job k is a pure function of (scale-independent) position and seed.
  std::uint64_t state = seed;
  const auto next_u64 = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (unsigned unit = 0; unit < scale; ++unit) {
    // 600 cheap truth-table jobs: the fleet's long tail, where the
    // engine's per-job fixed cost (reset, decode, governor rebaseline)
    // rivals the minimization itself.
    for (unsigned k = 0; k < 600; ++k) {
      // Grouped by width (200-job runs of 4, then 5, then 6 variables),
      // the way a fleet backlog arrives: consecutive same-width jobs are
      // what the engine's warm-manager reuse amortizes.
      const unsigned n = 4 + (k / 200) % 3;
      const std::uint64_t f = next_u64();
      // A sparse-ish care set keeps genuine don't cares in every job.
      const std::uint64_t c = next_u64() | next_u64();
      jobs.push_back(engine::make_tt_job(
          "heavy_tt" + std::to_string(unit) + "_" + std::to_string(k), f, c,
          n));
    }
    // 16 forest jobs over 7-12 variables: two per width per unit, real
    // decode and minimize work so shards mix cheap and costly payloads.
    for (unsigned k = 0; k < 16; ++k) {
      const unsigned n = 7 + (k / 2) % 6;  // 7..12 variables, pairs per width
      const std::uint64_t job_seed = next_u64();
      Manager mgr(n, /*cache_log2=*/14);
      const minimize::IncSpec spec =
          random_instance(mgr, n, /*c_density=*/0.4, job_seed);
      jobs.push_back(engine::make_job(mgr,
                                      "heavy_forest" + std::to_string(unit) +
                                          "_" + std::to_string(k) + "_s" +
                                          std::to_string(job_seed),
                                      spec));
    }
  }
  return jobs;
}

}  // namespace bddmin::workload
