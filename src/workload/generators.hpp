/// \file generators.hpp
/// \brief Synthetic sequential machines standing in for the MCNC/ISCAS'89
/// benchmarks of the paper's experiments (see DESIGN.md, substitutions).
///
/// Each generator returns a MachineSpec whose next-state logic is built
/// directly as BDD circuits (ripple adders, comparators, shift/feedback
/// networks), producing product-machine traversals with the same
/// character as the paper's: wide care sets in the first BFS steps and
/// tiny ones near the fixed point.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/job.hpp"
#include "fsm/encoding.hpp"

namespace bddmin::workload {

using fsm::MachineSpec;

/// Binary up-counter with an enable input; outputs the carry-out.
[[nodiscard]] MachineSpec make_counter(unsigned bits);

/// Modulo counter: next = (state + 1) mod modulus when enabled; outputs
/// the wrap signal.  With a non-power-of-two modulus the encodings
/// >= modulus are unreachable — the textbook source of next-state
/// don't cares (e.g. modulus 10 = a BCD digit).
[[nodiscard]] MachineSpec make_mod_counter(unsigned modulus);

/// Gray-code counter with enable; outputs the top code bit.
[[nodiscard]] MachineSpec make_gray_counter(unsigned bits);

/// Fibonacci LFSR with the given tap mask (bit k taps state bit k) and an
/// enable input; outputs the serial bit.  Seeds at state 1.
[[nodiscard]] MachineSpec make_lfsr(unsigned bits, std::uint64_t taps);

/// Accumulator: state += input word (mod 2^bits) — the carry-propagate
/// flavour of cbp.32.4.  Outputs the accumulator MSB and carry-out.
[[nodiscard]] MachineSpec make_accumulator(unsigned bits, unsigned input_bits);

/// Register fed by shift-and-add multiplier logic:
/// next = 5*state + input (mod 2^bits) — the mult16b flavour without the
/// exponential BDD blow-up of a full multiplier.
[[nodiscard]] MachineSpec make_mult_register(unsigned bits, unsigned input_bits);

/// Tracks the minimum and maximum of the input word stream (the minmax
/// benchmarks); outputs the comparison input<min.
[[nodiscard]] MachineSpec make_minmax(unsigned word_bits);

/// Serial-in shift register; outputs the oldest bit and the parity.
[[nodiscard]] MachineSpec make_shift_register(unsigned bits);

/// Monotone bit-setter: the input word selects one state bit to set
/// (next = state | onehot(input)); outputs the parity.  Reachability
/// from 0 sweeps the Hamming-weight shells: after t steps the reached
/// set is weight <= t and the frontier is weight == t — symmetric
/// functions whose covers genuinely differ in BDD size, which makes the
/// frontier-minimization instances non-trivial.
[[nodiscard]] MachineSpec make_bit_setter(unsigned bits);

/// Random deterministic completely specified Mealy machine over
/// `2^input_bits` input minterms (explicit KISS-style machine).
[[nodiscard]] MachineSpec make_random_mealy(unsigned num_states,
                                            unsigned input_bits,
                                            unsigned num_outputs,
                                            std::uint64_t seed);

/// The explicit FSM behind make_random_mealy, for callers that want to
/// re-encode or mutate it before building the spec.
[[nodiscard]] fsm::Fsm make_random_mealy_fsm(unsigned num_states,
                                             unsigned input_bits,
                                             unsigned num_outputs,
                                             std::uint64_t seed);

/// Heavy-tier batch workload: a parameterized stream of `616 * scale`
/// minimization jobs shaped like a verification fleet's backlog — per
/// scale unit, 600 cheap truth-table jobs over 4-6 variables (where
/// per-job fixed cost dominates and shard scheduling pays off) plus 16
/// forest jobs over 7-12 variables (real decode + minimize work, so the
/// stream is not degenerate).  Deterministic end-to-end: job k of a
/// given (scale, seed) has the same name and payload on every run, and
/// names embed the derived seed so any single job is reproducible alone.
/// scale 50 yields 30,800 jobs, the >= 30k bar of the scaled-up bench.
[[nodiscard]] std::vector<engine::Job> heavy_tier_jobs(unsigned scale,
                                                       std::uint64_t seed);

}  // namespace bddmin::workload
