/// Randomized stress: long interleaved sequences of BDD operations,
/// garbage collections, reorderings and minimizations, continuously
/// cross-checked against 64-bit truth tables.  This is the soundness
/// backstop for the whole package.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/io.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/incspec.hpp"
#include "minimize/registry.hpp"

namespace bddmin {
namespace {

constexpr unsigned kVars = 6;

struct Tracked {
  Bdd bdd;
  std::uint64_t tt;
};

class StressFixture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressFixture, OperationSoupStaysConsistent) {
  Manager mgr(kVars, /*cache_log2=*/12);
  std::mt19937_64 rng(GetParam());
  std::vector<Tracked> pool;
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t tt = rng() & tt_mask(kVars);
    pool.push_back({Bdd(mgr, from_tt(mgr, tt, kVars)), tt});
  }
  const auto pick = [&]() -> Tracked& { return pool[rng() % pool.size()]; };

  for (int step = 0; step < 400; ++step) {
    const Tracked& a = pick();
    const Tracked& b = pick();
    Tracked next{};
    switch (rng() % 8) {
      case 0:
        next = {Bdd(mgr, mgr.and_(a.bdd.edge(), b.bdd.edge())), a.tt & b.tt};
        break;
      case 1:
        next = {Bdd(mgr, mgr.or_(a.bdd.edge(), b.bdd.edge())), a.tt | b.tt};
        break;
      case 2:
        next = {Bdd(mgr, mgr.xor_(a.bdd.edge(), b.bdd.edge())),
                (a.tt ^ b.tt) & tt_mask(kVars)};
        break;
      case 3:
        next = {!a.bdd, ~a.tt & tt_mask(kVars)};
        break;
      case 4: {
        const Tracked& c = pick();
        next = {a.bdd.ite(b.bdd, c.bdd),
                ((a.tt & b.tt) | (~a.tt & c.tt)) & tt_mask(kVars)};
        break;
      }
      case 5: {  // cofactor on a random variable
        const unsigned v = rng() % kVars;
        const bool val = rng() & 1;
        std::uint64_t tt = 0;
        for (unsigned m = 0; m < (1u << kVars); ++m) {
          unsigned mm = m;
          if (val) mm |= 1u << v; else mm &= ~(1u << v);
          if ((a.tt >> mm) & 1) tt |= 1ull << m;
        }
        next = {Bdd(mgr, cofactor(mgr, a.bdd.edge(), v, val)), tt};
        break;
      }
      case 6:  // garbage collect; keep a as the step result
        mgr.garbage_collect();
        next = a;
        break;
      default: {  // random adjacent level swap
        (void)mgr.swap_adjacent_levels(rng() % (kVars - 1));
        next = a;
        break;
      }
    }
    EXPECT_EQ(to_tt(mgr, next.bdd.edge(), kVars), next.tt) << "step " << step;
    pool[rng() % pool.size()] = next;
    if (step % 97 == 0) {
      mgr.check_invariants();
      // Serialization round trip of the whole pool.
      std::vector<Edge> roots;
      for (const Tracked& t : pool) roots.push_back(t.bdd.edge());
      const std::vector<Edge> loaded =
          deserialize(mgr, serialize(mgr, roots));
      for (std::size_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(loaded[i], roots[i]);
      }
    }
  }
  mgr.check_invariants();
}

TEST_P(StressFixture, MinimizersUnderChurn) {
  // Heuristics interleaved with GC and reordering: every result must
  // still be a cover, judged against truth tables.
  Manager mgr(kVars, /*cache_log2=*/12);
  std::mt19937_64 rng(GetParam() * 7 + 1);
  const auto heuristics = minimize::all_heuristics();
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(kVars);
    std::uint64_t c_tt = rng() & tt_mask(kVars);
    if (c_tt == 0) c_tt = 1;
    const Bdd f(mgr, from_tt(mgr, f_tt, kVars));
    const Bdd c(mgr, from_tt(mgr, c_tt, kVars));
    const auto& h = heuristics[rng() % heuristics.size()];
    const Bdd g(mgr, h.run(mgr, f.edge(), c.edge()));
    const std::uint64_t g_tt = to_tt(mgr, g.edge(), kVars);
    EXPECT_EQ((g_tt ^ f_tt) & c_tt, 0u) << h.name;
    switch (rng() % 3) {
      case 0: mgr.garbage_collect(); break;
      case 1: (void)mgr.swap_adjacent_levels(rng() % (kVars - 1)); break;
      default: break;
    }
    // The covers must still hold after the churn.
    EXPECT_EQ(to_tt(mgr, g.edge(), kVars), g_tt);
  }
  mgr.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressFixture,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace bddmin
