#include "bdd/dot.hpp"

#include <gtest/gtest.h>

#include "bdd/ops.hpp"

namespace bddmin {
namespace {

TEST(Dot, ContainsAllNodesAndRoots) {
  Manager mgr(3);
  const Edge f = mgr.ite(mgr.var_edge(0), mgr.var_edge(1), mgr.var_edge(2));
  const std::vector<Edge> roots{f};
  const std::vector<std::string> names{"mux"};
  const std::string dot = to_dot(mgr, roots, names);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("mux"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
  EXPECT_NE(dot.find("x2"), std::string::npos);
  // One line per edge out of each decision node + root arrow.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, ConstantsRenderWithoutDecisionNodes) {
  Manager mgr(2);
  const std::vector<Edge> roots{kOne, kZero};
  const std::string dot = to_dot(mgr, roots);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_EQ(dot.find("x0"), std::string::npos);
  // The complemented root must be drawn dotted.
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
}

TEST(Dot, SharedForestEmitsEachNodeOnce) {
  Manager mgr(3);
  const Edge a = mgr.and_(mgr.var_edge(0), mgr.var_edge(2));
  const Edge b = mgr.or_(mgr.var_edge(1), mgr.var_edge(2));
  const std::vector<Edge> roots{a, b};
  const std::string dot = to_dot(mgr, roots);
  // The x2 node is shared: its label appears exactly once.
  std::size_t count = 0;
  for (std::size_t pos = dot.find("label=\"x2\""); pos != std::string::npos;
       pos = dot.find("label=\"x2\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace bddmin
