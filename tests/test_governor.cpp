/// \file test_governor.cpp
/// \brief Resource governance: each limit class trips mid-operation, the
/// abort leaves the manager audit-clean and reusable (strong guarantee),
/// re-running with a larger budget reproduces the untripped result, and the
/// batch engine degrades gracefully — kResourceLimit with a valid fallback
/// cover, deterministic CSV, optional retry on a cheaper heuristic.
#include "bdd/governor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/audit.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "minimize/registry.hpp"
#include "workload/instances.hpp"

namespace bddmin {
namespace {

// A moderately busy 6-var workload: enough distinct nodes to trip small
// quotas, small enough to compare by truth table.
Edge busy_build(Manager& mgr) {
  Edge f = from_tt(mgr, 0x5b93'c2a7'0f1e'6d48ull, 6);
  const Edge g = from_tt(mgr, 0x1234'5678'9abc'def0ull, 6);
  const Edge h = from_tt(mgr, 0xfedc'ba98'7654'3210ull, 6);
  f = mgr.xor_(f, mgr.and_(g, h));
  return mgr.or_(f, mgr.xnor_(g, mgr.var_edge(3)));
}

TEST(Governor, LimitClassNamesAndHierarchy) {
  EXPECT_STREQ(limit_class_name(LimitClass::kNodeLimit), "node-limit");
  EXPECT_STREQ(limit_class_name(LimitClass::kStepLimit), "step-limit");
  EXPECT_STREQ(limit_class_name(LimitClass::kDeadline), "deadline");
  EXPECT_STREQ(limit_class_name(LimitClass::kOutOfMemory), "out-of-memory");

  const NodeLimit nl(100, 64);
  EXPECT_EQ(nl.limit_class(), LimitClass::kNodeLimit);
  EXPECT_NE(std::string(nl.what()).find("64"), std::string::npos);
  const StepLimit sl(7);
  EXPECT_EQ(sl.limit_class(), LimitClass::kStepLimit);
  const Deadline dl(0.5);
  EXPECT_EQ(dl.limit_class(), LimitClass::kDeadline);
  const OutOfMemory oom("node table", 4096);
  EXPECT_EQ(oom.limit_class(), LimitClass::kOutOfMemory);
  EXPECT_EQ(oom.requested_bytes(), 4096u);
  EXPECT_NE(std::string(oom.what()).find("node table"), std::string::npos);

  // All four are catchable as the base class.
  EXPECT_THROW(throw NodeLimit(2, 1), ResourceExhausted);
  EXPECT_THROW(throw OutOfMemory("x", 1), ResourceExhausted);
}

TEST(Governor, OversizedCacheRequestThrowsOutOfMemory) {
  // 2^40 cache slots can never be satisfied; the constructor must refuse
  // with the typed exception (not a raw bad_alloc / length_error).
  try {
    Manager mgr(4, 40);
    FAIL() << "constructor accepted a 2^40-slot cache";
  } catch (const OutOfMemory& e) {
    EXPECT_GT(e.requested_bytes(), std::size_t{1} << 40);
  }
  // A sane request still works afterwards.
  Manager ok(4, 10);
  EXPECT_EQ(ok.xor_(ok.var_edge(0), ok.var_edge(0)), kZero);
}

TEST(Governor, HardNodeQuotaTripsAndManagerRecovers) {
  Manager mgr(6);
  const std::size_t base = mgr.allocated_nodes();
  ResourceLimits lim;
  lim.hard_node_limit = base + 6;
  mgr.governor().set_limits(lim);
  EXPECT_THROW((void)busy_build(mgr), NodeLimit);
  mgr.governor().clear();

  // Strong guarantee: the surviving manager passes the structural and
  // ref-count audit tiers, the aborted partials are dead, and GC reclaims
  // them completely.
  analysis::AuditOptions aopts;
  aopts.level = analysis::AuditLevel::kRefcount;
  const analysis::AuditReport report = analysis::audit_manager(mgr, aopts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(mgr.dead_nodes(), 0u);
  mgr.garbage_collect();
  EXPECT_EQ(mgr.dead_nodes(), 0u);

  // Reuse: re-running unlimited in the *same* manager yields exactly what a
  // fresh manager computes.
  const Edge g = busy_build(mgr);
  Manager fresh(6);
  EXPECT_EQ(to_tt(mgr, g, 6), to_tt(fresh, busy_build(fresh), 6));
}

TEST(Governor, StepLimitIsDeterministic) {
  // Measure the untripped step count, then show limit = used succeeds while
  // limit = used - 1 trips — the budget is an exact, repeatable work meter.
  Manager probe(6);
  ResourceLimits watch;
  watch.step_limit = ~std::uint64_t{0};
  probe.governor().set_limits(watch);
  (void)busy_build(probe);
  const std::uint64_t used = probe.governor().steps_used();
  ASSERT_GT(used, 1u);

  Manager exact(6);
  ResourceLimits lim;
  lim.step_limit = used;
  exact.governor().set_limits(lim);
  EXPECT_NO_THROW((void)busy_build(exact));
  EXPECT_EQ(exact.governor().steps_used(), used);

  Manager tight(6);
  lim.step_limit = used - 1;
  tight.governor().set_limits(lim);
  EXPECT_THROW((void)busy_build(tight), StepLimit);
}

TEST(Governor, ExpiredDeadlineTripsOnFirstStep) {
  Manager mgr(6);
  ResourceLimits lim;
  lim.deadline_seconds = 1e-12;  // expired before the operation starts
  mgr.governor().set_limits(lim);
  // The poll fires at steps % interval == 1, i.e. on the very first
  // memoization miss — no need to burn thousands of steps first.
  EXPECT_THROW((void)mgr.and_(mgr.var_edge(0), mgr.var_edge(1)), Deadline);
  mgr.governor().clear();
  EXPECT_EQ(mgr.and_(mgr.var_edge(0), kOne), mgr.var_edge(0));
}

TEST(Governor, SoftQuotaRaisesStickyFlagWithoutThrowing) {
  Manager mgr(6);
  ResourceLimits lim;
  lim.soft_node_limit = mgr.allocated_nodes() + 4;
  mgr.governor().set_limits(lim);
  Edge g{};
  EXPECT_NO_THROW(g = busy_build(mgr));
  EXPECT_TRUE(mgr.governor().soft_exceeded());
  // The flag is sticky until the next set_limits/clear, then gone.
  mgr.governor().set_limits(lim);
  EXPECT_FALSE(mgr.governor().soft_exceeded());
  (void)g;
}

TEST(Governor, PeakLiveNodeTrackingSurvivesGc) {
  Manager mgr(6);
  std::size_t peak_seen = 0;
  {
    const Bdd pinned(mgr, busy_build(mgr));
    peak_seen = mgr.governor().peak_live_nodes();
    EXPECT_GE(peak_seen, mgr.live_nodes());
    EXPECT_GT(peak_seen, 1u);
  }
  mgr.garbage_collect();
  // Telemetry is a high-water mark: collection cannot lower it.
  EXPECT_EQ(mgr.governor().peak_live_nodes(), peak_seen);
}

TEST(Governor, WithBudgetRestoresOuterLimits) {
  Manager mgr(6);
  const Edge f = busy_build(mgr);
  const Edge c = mgr.var_edge(2);

  ResourceLimits outer;
  outer.hard_node_limit = std::size_t{1} << 20;
  mgr.governor().set_limits(outer);

  ResourceLimits inner;
  inner.step_limit = 1;
  const minimize::Heuristic budgeted = minimize::with_budget(
      minimize::heuristic_by_name(minimize::all_heuristics(), "osm_td"),
      inner);
  EXPECT_THROW((void)budgeted.run(mgr, f, c), StepLimit);
  // The wrapper restored the outer scope's limits on the throw path.
  EXPECT_EQ(mgr.governor().limits().hard_node_limit, outer.hard_node_limit);
  EXPECT_EQ(mgr.governor().limits().step_limit, 0u);
}

// ---- Batch engine degradation -------------------------------------------

/// An instance whose minimization must blow through a 10k-node quota: the
/// bit-by-bit equality a == b under the interleaving-hostile order
/// a0..a(n-1) b0..b(n-1) needs ~2^n nodes at the block boundary.
engine::Job adversarial_job(unsigned half) {
  Manager src(2 * half, 16);
  Edge f = kOne;
  for (unsigned i = 0; i < half; ++i) {
    f = src.and_(f, src.xnor_(src.var_edge(i), src.var_edge(half + i)));
  }
  Edge c = kZero;
  for (unsigned i = 0; i < half; ++i) c = src.xor_(c, src.var_edge(i));
  return engine::make_job(src, "eq" + std::to_string(half),
                          minimize::IncSpec{f, c});
}

TEST(GovernorEngine, AdversarialJobDegradesToResourceLimit) {
  const std::vector<engine::Job> jobs = {adversarial_job(13)};
  engine::EngineOptions opts;
  opts.num_threads = 1;
  opts.node_limit = 10'000;
  opts.cache_log2 = 14;
  opts.audit_level = analysis::AuditLevel::kRefcount;  // tier 2 after abort

  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    opts.num_threads = threads;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    ASSERT_EQ(report.outcomes.size(), 1u);
    const engine::JobOutcome& o = report.outcomes.front();
    // Degraded, not failed: validate_covers is on, so kResourceLimit also
    // certifies every reported cover satisfies f·c <= g <= f + c̄.
    EXPECT_EQ(o.status, engine::JobStatus::kResourceLimit) << o.error;
    EXPECT_TRUE(o.error.empty()) << o.error;
    EXPECT_NE(o.detail.find("node-limit"), std::string::npos) << o.detail;
    // The manager passed the tier-2 audit after the aborts.
    EXPECT_EQ(o.audit_findings, 0u);
    EXPECT_GT(o.peak_live, 0u);
    EXPECT_GE(o.min_size, 1u);
    const std::string csv = engine::report_csv(report);
    EXPECT_NE(csv.find("resource-limit"), std::string::npos);
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline) << "CSV diverged at " << threads << " threads";
    }
  }
}

TEST(GovernorEngine, BudgetExhaustionRetriesOnFallbackHeuristic) {
  Manager src(6, 12);
  const minimize::IncSpec spec = workload::random_instance(src, 6, 0.4, 99u);
  const std::vector<engine::Job> jobs = {
      engine::make_job(src, "fallback", spec)};

  engine::EngineOptions opts;
  opts.num_threads = 1;
  opts.step_limit = 2;  // every real heuristic trips almost immediately
  opts.heuristic = "osm_td";
  opts.fallback_heuristic = "f_orig";  // zero-step: always fits the budget
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  ASSERT_EQ(report.outcomes.size(), 1u);
  const engine::JobOutcome& o = report.outcomes.front();
  EXPECT_EQ(o.status, engine::JobStatus::kResourceLimit) << o.error;
  EXPECT_NE(o.detail.find("osm_td: step-limit"), std::string::npos)
      << o.detail;
  EXPECT_NE(o.detail.find("retried on f_orig"), std::string::npos)
      << o.detail;
  // f_orig returns f itself, so the degraded slot reports |f|.
  ASSERT_EQ(o.results.size(), 1u);
  EXPECT_EQ(o.results.front().size, o.f_size);
}

TEST(GovernorEngine, TinyQuotaBatchNeverReportsErrors) {
  const std::vector<engine::Job> jobs = engine::random_jobs(10, 6, 0.35, 510);
  engine::EngineOptions opts;
  opts.num_threads = 2;
  opts.node_limit = 48;  // most heuristics trip; some trivial ones fit
  opts.audit_level = analysis::AuditLevel::kRefcount;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  for (const engine::JobOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.status == engine::JobStatus::kOk ||
                o.status == engine::JobStatus::kResourceLimit)
        << o.name << ": " << engine::job_status_name(o.status) << " "
        << o.error;
    EXPECT_EQ(o.audit_findings, 0u) << o.name;
  }
  EXPECT_EQ(report.count(engine::JobStatus::kError), 0u);
}

TEST(GovernorEngine, EnvVariablesSupplyDefaultLimits) {
  Manager src(6, 12);
  const minimize::IncSpec spec = workload::random_instance(src, 6, 0.4, 7u);
  const std::vector<engine::Job> jobs = {engine::make_job(src, "env", spec)};

  engine::EngineOptions opts;
  opts.num_threads = 1;
  opts.heuristic = "osm_td";
  ASSERT_EQ(::setenv("BDDMIN_STEP_LIMIT", "2", 1), 0);
  const engine::BatchReport limited = engine::run_batch(jobs, opts);
  ASSERT_EQ(::unsetenv("BDDMIN_STEP_LIMIT"), 0);
  const engine::BatchReport unlimited = engine::run_batch(jobs, opts);

  ASSERT_EQ(limited.outcomes.size(), 1u);
  EXPECT_EQ(limited.outcomes.front().status,
            engine::JobStatus::kResourceLimit);
  EXPECT_NE(limited.outcomes.front().detail.find("step-limit"),
            std::string::npos);
  // An explicit option overrides the environment; without either the same
  // batch is clean.
  EXPECT_EQ(unlimited.outcomes.front().status, engine::JobStatus::kOk)
      << unlimited.outcomes.front().error;
}

}  // namespace
}  // namespace bddmin
