/// \file test_governor.cpp
/// \brief Resource governance: each limit class trips mid-operation, the
/// abort leaves the manager audit-clean and reusable (strong guarantee),
/// re-running with a larger budget reproduces the untripped result, and the
/// batch engine degrades gracefully — kResourceLimit with a valid fallback
/// cover, deterministic CSV, optional retry on a cheaper heuristic.
#include "bdd/governor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "analysis/audit.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "minimize/registry.hpp"
#include "workload/instances.hpp"

namespace bddmin {
namespace {

// A moderately busy 6-var workload: enough distinct nodes to trip small
// quotas, small enough to compare by truth table.
Edge busy_build(Manager& mgr) {
  Edge f = from_tt(mgr, 0x5b93'c2a7'0f1e'6d48ull, 6);
  const Edge g = from_tt(mgr, 0x1234'5678'9abc'def0ull, 6);
  const Edge h = from_tt(mgr, 0xfedc'ba98'7654'3210ull, 6);
  f = mgr.xor_(f, mgr.and_(g, h));
  return mgr.or_(f, mgr.xnor_(g, mgr.var_edge(3)));
}

TEST(Governor, LimitClassNamesAndHierarchy) {
  EXPECT_STREQ(limit_class_name(LimitClass::kNodeLimit), "node-limit");
  EXPECT_STREQ(limit_class_name(LimitClass::kStepLimit), "step-limit");
  EXPECT_STREQ(limit_class_name(LimitClass::kDeadline), "deadline");
  EXPECT_STREQ(limit_class_name(LimitClass::kOutOfMemory), "out-of-memory");

  const NodeLimit nl(100, 64);
  EXPECT_EQ(nl.limit_class(), LimitClass::kNodeLimit);
  EXPECT_NE(std::string(nl.what()).find("64"), std::string::npos);
  const StepLimit sl(7);
  EXPECT_EQ(sl.limit_class(), LimitClass::kStepLimit);
  const Deadline dl(0.5);
  EXPECT_EQ(dl.limit_class(), LimitClass::kDeadline);
  const OutOfMemory oom("node table", 4096);
  EXPECT_EQ(oom.limit_class(), LimitClass::kOutOfMemory);
  EXPECT_EQ(oom.requested_bytes(), 4096u);
  EXPECT_NE(std::string(oom.what()).find("node table"), std::string::npos);

  // All four are catchable as the base class.
  EXPECT_THROW(throw NodeLimit(2, 1), ResourceExhausted);
  EXPECT_THROW(throw OutOfMemory("x", 1), ResourceExhausted);
}

TEST(Governor, OversizedCacheRequestThrowsOutOfMemory) {
  // 2^40 cache slots can never be satisfied; the constructor must refuse
  // with the typed exception (not a raw bad_alloc / length_error).
  try {
    Manager mgr(4, 40);
    FAIL() << "constructor accepted a 2^40-slot cache";
  } catch (const OutOfMemory& e) {
    EXPECT_GT(e.requested_bytes(), std::size_t{1} << 40);
  }
  // A sane request still works afterwards.
  Manager ok(4, 10);
  EXPECT_EQ(ok.xor_(ok.var_edge(0), ok.var_edge(0)), kZero);
}

TEST(Governor, HardNodeQuotaTripsAndManagerRecovers) {
  Manager mgr(6);
  const std::size_t base = mgr.allocated_nodes();
  ResourceLimits lim;
  lim.hard_node_limit = base + 6;
  mgr.governor().set_limits(lim);
  EXPECT_THROW((void)busy_build(mgr), NodeLimit);
  mgr.governor().clear();

  // Strong guarantee: the surviving manager passes the structural and
  // ref-count audit tiers, the aborted partials are dead, and GC reclaims
  // them completely.
  analysis::AuditOptions aopts;
  aopts.level = analysis::AuditLevel::kRefcount;
  const analysis::AuditReport report = analysis::audit_manager(mgr, aopts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(mgr.dead_nodes(), 0u);
  mgr.garbage_collect();
  EXPECT_EQ(mgr.dead_nodes(), 0u);

  // Reuse: re-running unlimited in the *same* manager yields exactly what a
  // fresh manager computes.
  const Edge g = busy_build(mgr);
  Manager fresh(6);
  EXPECT_EQ(to_tt(mgr, g, 6), to_tt(fresh, busy_build(fresh), 6));
}

TEST(Governor, StepLimitIsDeterministic) {
  // Measure the untripped step count, then show limit = used succeeds while
  // limit = used - 1 trips — the budget is an exact, repeatable work meter.
  Manager probe(6);
  ResourceLimits watch;
  watch.step_limit = ~std::uint64_t{0};
  probe.governor().set_limits(watch);
  (void)busy_build(probe);
  const std::uint64_t used = probe.governor().steps_used();
  ASSERT_GT(used, 1u);

  Manager exact(6);
  ResourceLimits lim;
  lim.step_limit = used;
  exact.governor().set_limits(lim);
  EXPECT_NO_THROW((void)busy_build(exact));
  EXPECT_EQ(exact.governor().steps_used(), used);

  Manager tight(6);
  lim.step_limit = used - 1;
  tight.governor().set_limits(lim);
  EXPECT_THROW((void)busy_build(tight), StepLimit);
}

TEST(Governor, ExpiredDeadlineTripsOnFirstStep) {
  Manager mgr(6);
  ResourceLimits lim;
  lim.deadline_seconds = 1e-12;  // expired before the operation starts
  mgr.governor().set_limits(lim);
  // The poll fires at steps % interval == 1, i.e. on the very first
  // memoization miss — no need to burn thousands of steps first.
  EXPECT_THROW((void)mgr.and_(mgr.var_edge(0), mgr.var_edge(1)), Deadline);
  mgr.governor().clear();
  EXPECT_EQ(mgr.and_(mgr.var_edge(0), kOne), mgr.var_edge(0));
}

TEST(Governor, SoftQuotaRaisesStickyFlagWithoutThrowing) {
  Manager mgr(6);
  ResourceLimits lim;
  lim.soft_node_limit = mgr.allocated_nodes() + 4;
  mgr.governor().set_limits(lim);
  Edge g{};
  EXPECT_NO_THROW(g = busy_build(mgr));
  EXPECT_TRUE(mgr.governor().soft_exceeded());
  // The flag is sticky until the next set_limits/clear, then gone.
  mgr.governor().set_limits(lim);
  EXPECT_FALSE(mgr.governor().soft_exceeded());
  (void)g;
}

TEST(Governor, PeakLiveNodeTrackingSurvivesGc) {
  Manager mgr(6);
  std::size_t peak_seen = 0;
  {
    const Bdd pinned(mgr, busy_build(mgr));
    peak_seen = mgr.governor().peak_live_nodes();
    EXPECT_GE(peak_seen, mgr.live_nodes());
    EXPECT_GT(peak_seen, 1u);
  }
  mgr.garbage_collect();
  // Telemetry is a high-water mark: collection cannot lower it.
  EXPECT_EQ(mgr.governor().peak_live_nodes(), peak_seen);
}

TEST(Governor, WithBudgetRestoresOuterLimits) {
  Manager mgr(6);
  const Edge f = busy_build(mgr);
  const Edge c = mgr.var_edge(2);

  ResourceLimits outer;
  outer.hard_node_limit = std::size_t{1} << 20;
  mgr.governor().set_limits(outer);

  ResourceLimits inner;
  inner.step_limit = 1;
  const minimize::Heuristic budgeted = minimize::with_budget(
      minimize::heuristic_by_name(minimize::all_heuristics(), "osm_td"),
      inner);
  EXPECT_THROW((void)budgeted.run(mgr, f, c), StepLimit);
  // The wrapper restored the outer scope's limits on the throw path.
  EXPECT_EQ(mgr.governor().limits().hard_node_limit, outer.hard_node_limit);
  EXPECT_EQ(mgr.governor().limits().step_limit, 0u);
}

// ---- Batch engine degradation -------------------------------------------

/// An instance whose minimization must blow through a 10k-node quota: the
/// bit-by-bit equality a == b under the interleaving-hostile order
/// a0..a(n-1) b0..b(n-1) needs ~2^n nodes at the block boundary.
engine::Job adversarial_job(unsigned half) {
  Manager src(2 * half, 16);
  Edge f = kOne;
  for (unsigned i = 0; i < half; ++i) {
    f = src.and_(f, src.xnor_(src.var_edge(i), src.var_edge(half + i)));
  }
  Edge c = kZero;
  for (unsigned i = 0; i < half; ++i) c = src.xor_(c, src.var_edge(i));
  return engine::make_job(src, "eq" + std::to_string(half),
                          minimize::IncSpec{f, c});
}

TEST(GovernorEngine, AdversarialJobDegradesToResourceLimit) {
  const std::vector<engine::Job> jobs = {adversarial_job(13)};
  engine::EngineOptions opts;
  opts.num_threads = 1;
  opts.node_limit = 10'000;
  opts.cache_log2 = 14;
  opts.audit_level = analysis::AuditLevel::kRefcount;  // tier 2 after abort

  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    opts.num_threads = threads;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    ASSERT_EQ(report.outcomes.size(), 1u);
    const engine::JobOutcome& o = report.outcomes.front();
    // Degraded, not failed: validate_covers is on, so kResourceLimit also
    // certifies every reported cover satisfies f·c <= g <= f + c̄.
    EXPECT_EQ(o.status, engine::JobStatus::kResourceLimit) << o.error;
    EXPECT_TRUE(o.error.empty()) << o.error;
    EXPECT_NE(o.detail.find("node-limit"), std::string::npos) << o.detail;
    // The manager passed the tier-2 audit after the aborts.
    EXPECT_EQ(o.audit_findings, 0u);
    EXPECT_GT(o.peak_live, 0u);
    EXPECT_GE(o.min_size, 1u);
    const std::string csv = engine::report_csv(report);
    EXPECT_NE(csv.find("resource-limit"), std::string::npos);
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline) << "CSV diverged at " << threads << " threads";
    }
  }
}

TEST(GovernorEngine, BudgetExhaustionRetriesOnFallbackHeuristic) {
  Manager src(6, 12);
  const minimize::IncSpec spec = workload::random_instance(src, 6, 0.4, 99u);
  const std::vector<engine::Job> jobs = {
      engine::make_job(src, "fallback", spec)};

  engine::EngineOptions opts;
  opts.num_threads = 1;
  opts.step_limit = 2;  // every real heuristic trips almost immediately
  opts.heuristic = "osm_td";
  opts.fallback_heuristic = "f_orig";  // zero-step: always fits the budget
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  ASSERT_EQ(report.outcomes.size(), 1u);
  const engine::JobOutcome& o = report.outcomes.front();
  EXPECT_EQ(o.status, engine::JobStatus::kResourceLimit) << o.error;
  EXPECT_NE(o.detail.find("osm_td: step-limit"), std::string::npos)
      << o.detail;
  EXPECT_NE(o.detail.find("retried on f_orig"), std::string::npos)
      << o.detail;
  // f_orig returns f itself, so the degraded slot reports |f|.
  ASSERT_EQ(o.results.size(), 1u);
  EXPECT_EQ(o.results.front().size, o.f_size);
}

TEST(GovernorEngine, TinyQuotaBatchNeverReportsErrors) {
  const std::vector<engine::Job> jobs = engine::random_jobs(10, 6, 0.35, 510);
  engine::EngineOptions opts;
  opts.num_threads = 2;
  opts.node_limit = 48;  // most heuristics trip; some trivial ones fit
  opts.audit_level = analysis::AuditLevel::kRefcount;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  for (const engine::JobOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.status == engine::JobStatus::kOk ||
                o.status == engine::JobStatus::kResourceLimit)
        << o.name << ": " << engine::job_status_name(o.status) << " "
        << o.error;
    EXPECT_EQ(o.audit_findings, 0u) << o.name;
  }
  EXPECT_EQ(report.count(engine::JobStatus::kError), 0u);
}

TEST(Governor, ReorderUnderHardNodeQuotaKeepsTableConsistent) {
  // Regression for the stress-harness find (workload "governor", seed 1,
  // thread 0, step 4, state reorder-under-quota): NodeLimit used to fire
  // from unique_insert inside swap_adjacent_levels *after* the order maps
  // had flipped, tearing the table ("hi child at or above parent level"
  // audit findings).  Quotas are now suspended for the duration of a swap
  // (NodeQuotaSuspension) and re-enforced between swaps, so sifting under
  // a quota either finishes or aborts at a consistent boundary.
  Manager mgr(6, 10);
  const std::uint64_t tt_f = 0x6996'9669'9669'6996ull;  // parity: all vars
  const std::uint64_t tt_g = 0x5b93'c2a7'0f1e'6d48ull;  // interact
  const Bdd f(mgr, from_tt(mgr, tt_f, 6));
  const Bdd g(mgr, from_tt(mgr, tt_g, 6));

  ResourceLimits lim;
  lim.hard_node_limit = mgr.allocated_nodes() + 1;  // trips on first growth
  mgr.governor().set_limits(lim);
  try {
    (void)mgr.reorder_sift();
  } catch (const NodeLimit&) {
    // Aborting between swaps is fine; tearing the table is what this
    // test forbids.
  }
  mgr.governor().clear();

  analysis::AuditOptions aopts;
  aopts.level = analysis::AuditLevel::kRefcount;
  const analysis::AuditReport report = analysis::audit_manager(mgr, aopts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(to_tt(mgr, f.edge(), 6), tt_f);
  EXPECT_EQ(to_tt(mgr, g.edge(), 6), tt_g);
}

/// Every registered minimizer: the paper's twelve from all_heuristics()
/// plus the scheduler, the mixed-criterion matcher and a Proposition 6
/// fallback wrapper — the same 15 the batch engine dispatches by name.
std::vector<minimize::Heuristic> registered_heuristics() {
  std::vector<minimize::Heuristic> set = minimize::all_heuristics();
  set.push_back(minimize::scheduler_heuristic());
  set.push_back(minimize::mixed_heuristic());
  set.push_back(
      minimize::with_fallback(minimize::heuristic_by_name(set, "tsm_td")));
  return set;
}

TEST(Governor, AbortResetReuseCycleUnderEveryRegisteredHeuristic) {
  // One pooled manager is driven through the full governed lifecycle by
  // every registered heuristic in turn: trip a one-step budget
  // mid-minimization, verify the survivor is audit-clean, Manager::reset()
  // it (the engine's pooling path), rerun unlimited in the recycled
  // manager, and demand the exact result a fresh manager computes.
  constexpr unsigned kVars = 6;
  constexpr std::uint64_t kF = 0x5b93'c2a7'0f1e'6d48ull;
  constexpr std::uint64_t kC = 0x0ff0'0f0f'33cc'55aaull;
  const std::uint64_t care_mask = tt_mask(kVars);

  Manager pooled(kVars, 10);
  std::size_t tripped = 0;
  for (const minimize::Heuristic& h : registered_heuristics()) {
    {
      const Bdd f(pooled, from_tt(pooled, kF, kVars));
      const Bdd c(pooled, from_tt(pooled, kC, kVars));
      ResourceLimits lim;
      lim.step_limit = 1;  // trivial heuristics may fit; real ones trip
      pooled.governor().set_limits(lim);
      try {
        (void)h.run(pooled, f.edge(), c.edge());
      } catch (const ResourceExhausted&) {
        ++tripped;
      }
      pooled.governor().clear();

      analysis::AuditOptions aopts;
      aopts.level = analysis::AuditLevel::kRefcount;
      const analysis::AuditReport post = analysis::audit_manager(pooled, aopts);
      EXPECT_TRUE(post.ok()) << h.name << " after abort: " << post.summary();
    }  // pins die before the reset below

    pooled.reset(kVars);
    std::uint64_t got = 0;
    {
      const Bdd f2(pooled, from_tt(pooled, kF, kVars));
      const Bdd c2(pooled, from_tt(pooled, kC, kVars));
      got = to_tt(pooled, h.run(pooled, f2.edge(), c2.edge()), kVars);
    }  // pins must not outlive the reset that opens the next cycle

    Manager fresh(kVars, 10);
    const Bdd f3(fresh, from_tt(fresh, kF, kVars));
    const Bdd c3(fresh, from_tt(fresh, kC, kVars));
    const std::uint64_t want =
        to_tt(fresh, h.run(fresh, f3.edge(), c3.edge()), kVars);

    EXPECT_EQ(got, want) << h.name << ": recycled manager diverged";
    EXPECT_EQ((got ^ kF) & kC & care_mask, 0u)
        << h.name << ": result disagrees with f on the care set";
    pooled.reset(kVars);  // next heuristic starts from the pooled state
  }
  // The budget must have real teeth: the overwhelming majority of the 15
  // perform work and trip a one-step budget on this instance.
  EXPECT_GE(tripped, 10u);
}

TEST(GovernorEngine, EnvVariablesSupplyDefaultLimits) {
  Manager src(6, 12);
  const minimize::IncSpec spec = workload::random_instance(src, 6, 0.4, 7u);
  const std::vector<engine::Job> jobs = {engine::make_job(src, "env", spec)};

  engine::EngineOptions opts;
  opts.num_threads = 1;
  opts.heuristic = "osm_td";
  ASSERT_EQ(::setenv("BDDMIN_STEP_LIMIT", "2", 1), 0);
  const engine::BatchReport limited = engine::run_batch(jobs, opts);
  ASSERT_EQ(::unsetenv("BDDMIN_STEP_LIMIT"), 0);
  const engine::BatchReport unlimited = engine::run_batch(jobs, opts);

  ASSERT_EQ(limited.outcomes.size(), 1u);
  EXPECT_EQ(limited.outcomes.front().status,
            engine::JobStatus::kResourceLimit);
  EXPECT_NE(limited.outcomes.front().detail.find("step-limit"),
            std::string::npos);
  // An explicit option overrides the environment; without either the same
  // batch is clean.
  EXPECT_EQ(unlimited.outcomes.front().status, engine::JobStatus::kOk)
      << unlimited.outcomes.front().error;
}

}  // namespace
}  // namespace bddmin
