#include "fsm/reach.hpp"

#include <gtest/gtest.h>

#include "bdd/ops.hpp"
#include "minimize/incspec.hpp"
#include "minimize/sibling.hpp"
#include "workload/generators.hpp"

namespace bddmin::fsm {
namespace {

struct Rig {
  Manager mgr;
  SymbolicFsm sym;
  std::vector<std::uint32_t> next_vars;

  explicit Rig(const workload::MachineSpec& spec, unsigned extra_inputs = 0)
      : mgr(spec.num_inputs + extra_inputs + 2 * spec.num_state_bits) {
    std::vector<std::uint32_t> in(spec.num_inputs);
    for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
    std::vector<std::uint32_t> st;
    for (unsigned k = 0; k < spec.num_state_bits; ++k) {
      st.push_back(spec.num_inputs + 2 * k);
      next_vars.push_back(spec.num_inputs + 2 * k + 1);
    }
    sym = spec.build(mgr, in, st);
  }
};

TEST(Reach, CounterReachesAllStates) {
  Rig rig(workload::make_counter(4));
  const ReachResult result = reachable_states(rig.mgr, rig.sym, rig.next_vars);
  EXPECT_EQ(result.reached.edge(), kOne);  // over state vars: everything
  // 16 states entered one per step (enable gates progress): 16 frontiers.
  EXPECT_EQ(result.iterations, 16u);
}

TEST(Reach, LfsrSkipsTheZeroState) {
  Rig rig(workload::make_lfsr(4, 0b0011));  // x^4 + x + 1, maximal period
  const ReachResult result = reachable_states(rig.mgr, rig.sym, rig.next_vars);
  const Edge zero_state = state_code(rig.mgr, rig.sym.state_vars, 0);
  EXPECT_TRUE(rig.mgr.disjoint(result.reached.edge(), zero_state));
  EXPECT_DOUBLE_EQ(sat_count(rig.mgr, result.reached.edge(),
                             static_cast<unsigned>(rig.sym.state_vars.size())),
                   15.0);
}

TEST(Reach, ShiftRegisterFillsIn) {
  Rig rig(workload::make_shift_register(3));
  const ReachResult result = reachable_states(rig.mgr, rig.sym, rig.next_vars);
  EXPECT_EQ(result.reached.edge(), kOne);
  EXPECT_LE(result.iterations, 4u);  // depth-3 pipeline + fixpoint check
}

TEST(Reach, HookSeesFrontierAndCareAndMayChooseAnyCover) {
  Rig rig(workload::make_counter(3));
  std::size_t calls = 0;
  ReachOptions opts;
  opts.minimize = [&](Manager& m, Edge f, Edge c) {
    ++calls;
    // Contract from Coudert's formulation: the frontier is cared for and
    // the care set is U + !R, i.e. f <= c.
    EXPECT_TRUE(m.leq(f, c));
    // Return the largest admissible set instead of constrain's choice.
    return m.or_(f, !c);
  };
  const ReachResult result =
      reachable_states(rig.mgr, rig.sym, rig.next_vars, opts);
  EXPECT_EQ(result.reached.edge(), kOne);
  EXPECT_GT(calls, 0u);
}

TEST(Reach, RestrictHookGivesSameFixedPointAsConstrain) {
  for (const ImageMethod method :
       {ImageMethod::kRelational, ImageMethod::kClustered,
        ImageMethod::kFunctional}) {
    Rig a(workload::make_gray_counter(3));
    ReachOptions with_restrict;
    with_restrict.image_method = method;
    with_restrict.minimize = [](Manager& m, Edge f, Edge c) {
      return minimize::restrict_dc(m, f, c);
    };
    const Edge via_restrict =
        reachable_states(a.mgr, a.sym, a.next_vars, with_restrict)
            .reached.edge();
    ReachOptions with_constrain;
    with_constrain.image_method = method;
    const Edge via_constrain =
        reachable_states(a.mgr, a.sym, a.next_vars, with_constrain)
            .reached.edge();
    EXPECT_EQ(via_restrict, via_constrain);
  }
}

TEST(Reach, BackwardFromMonotoneSink) {
  // The bit-setter can only set bits: the all-zero state reaches
  // everything forward, but backward from {0} only {0} itself.
  Rig rig(workload::make_bit_setter(4));
  const Edge zero = state_code(rig.mgr, rig.sym.state_vars, 0);
  const fsm::ReachResult back =
      backward_reachable_states(rig.mgr, rig.sym, rig.next_vars, zero);
  EXPECT_EQ(back.reached.edge(), zero);
  // Backward from the all-ones state: everything can reach it.
  const Edge ones = state_code(rig.mgr, rig.sym.state_vars, 15);
  const fsm::ReachResult all =
      backward_reachable_states(rig.mgr, rig.sym, rig.next_vars, ones);
  EXPECT_EQ(all.reached.edge(), kOne);
}

TEST(Reach, BackwardAgreesWithForwardOnStronglyConnectedMachines) {
  // The enabled counter is one big cycle: every state reaches every
  // other, so backward from any singleton is the full space.
  Rig rig(workload::make_counter(3));
  const Edge five = state_code(rig.mgr, rig.sym.state_vars, 5);
  const fsm::ReachResult back =
      backward_reachable_states(rig.mgr, rig.sym, rig.next_vars, five);
  EXPECT_EQ(back.reached.edge(), kOne);
}

TEST(Reach, BackwardHookIsExercised) {
  Rig rig(workload::make_bit_setter(4));
  std::size_t calls = 0;
  fsm::ReachOptions opts;
  opts.minimize = [&](Manager& m, Edge f, Edge c) {
    ++calls;
    return minimize::restrict_dc(m, f, c);
  };
  const Edge ones = state_code(rig.mgr, rig.sym.state_vars, 15);
  const fsm::ReachResult all =
      backward_reachable_states(rig.mgr, rig.sym, rig.next_vars, ones, opts);
  EXPECT_EQ(all.reached.edge(), kOne);
  EXPECT_GT(calls, 0u);
}

TEST(Reach, IterationLimitThrows) {
  Rig rig(workload::make_counter(4));
  ReachOptions opts;
  opts.max_iterations = 3;
  EXPECT_THROW(reachable_states(rig.mgr, rig.sym, rig.next_vars, opts),
               std::runtime_error);
}

TEST(Reach, MinimizedFrontiersAreAlwaysValidCovers) {
  // Wrap constrain with a validator: every [f, c] handed out must satisfy
  // U <= S <= R when S is a cover.
  Rig rig(workload::make_mult_register(3, 2));
  ReachOptions opts;
  opts.minimize = [](Manager& m, Edge f, Edge c) {
    const Edge g = minimize::constrain(m, f, c);
    EXPECT_TRUE(minimize::is_cover(m, g, {f, c}));
    return g;
  };
  const ReachResult result =
      reachable_states(rig.mgr, rig.sym, rig.next_vars, opts);
  EXPECT_GT(result.iterations, 0u);
}

}  // namespace
}  // namespace bddmin::fsm
