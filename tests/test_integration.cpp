/// End-to-end: the full experiment pipeline of Section 4 — product-machine
/// self-equivalence with every heuristic intercepted — on small machines.
#include <gtest/gtest.h>

#include <algorithm>

#include "fsm/equiv.hpp"
#include "harness/intercept.hpp"
#include "harness/render.hpp"
#include "harness/stats.hpp"
#include "workload/builtin_fsms.hpp"
#include "workload/generators.hpp"

namespace bddmin {
namespace {

using harness::CallRecord;
using harness::Interceptor;

TEST(Integration, SelfEquivalenceWithInterceptionOnBuiltins) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  fsm::EquivOptions opts;
  opts.minimize = interceptor.hook();
  for (const char* name : {"dk27_like", "seq_detect", "elevator4"}) {
    const fsm::EquivResult result = fsm::check_self_equivalence(
        fsm::spec_from_fsm(workload::builtin_fsm(name)), opts);
    EXPECT_TRUE(result.equivalent) << name;
  }
  EXPECT_GT(interceptor.total_calls(), 0u);
  // The validator inside the interceptor already checked every result is
  // a cover; sanity-check the aggregate invariants here.
  for (const CallRecord& r : interceptor.records()) {
    EXPECT_LE(r.lower_bound, r.min_size);
    EXPECT_GE(r.c_onset, 0.0);
    EXPECT_LE(r.c_onset, 1.0);
  }
}

TEST(Integration, SyntheticMachinesExerciseBothBuckets) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  fsm::EquivOptions opts;
  opts.minimize = interceptor.hook();
  (void)fsm::check_self_equivalence(workload::make_counter(4), opts);
  (void)fsm::check_self_equivalence(workload::make_lfsr(4, 0b0011), opts);
  (void)fsm::check_self_equivalence(workload::make_mult_register(4, 2), opts);
  const harness::Table3 table =
      harness::aggregate_table3(interceptor.names(), interceptor.records());
  EXPECT_EQ(table.all.calls, interceptor.records().size());
  // min <= every heuristic cumulative total, and f_orig is the identity
  // total (size of the frontier BDDs).
  for (std::size_t h = 0; h < table.names.size(); ++h) {
    EXPECT_GE(table.all.total_size[h], table.all.total_min);
  }
}

TEST(Integration, MinNeverAboveForigAndReductionHappens) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  fsm::EquivOptions opts;
  opts.minimize = interceptor.hook();
  (void)fsm::check_self_equivalence(
      fsm::spec_from_fsm(workload::builtin_fsm("arb_like")), opts);
  (void)fsm::check_self_equivalence(workload::make_minmax(2), opts);
  const auto& records = interceptor.records();
  if (records.empty()) GTEST_SKIP() << "all calls filtered on this workload";
  std::size_t total_f = 0;
  std::size_t total_min = 0;
  const auto names = interceptor.names();
  const std::size_t f_orig_idx = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "f_orig") - names.begin());
  for (const CallRecord& r : records) {
    total_f += r.outcomes[f_orig_idx].size;
    total_min += r.min_size;
  }
  EXPECT_LE(total_min, total_f);
}

TEST(Integration, SchedulerCanJoinTheHeuristicSet) {
  auto set = minimize::all_heuristics();
  set.push_back(minimize::scheduler_heuristic());
  Interceptor interceptor(std::move(set), {});
  fsm::EquivOptions opts;
  opts.minimize = interceptor.hook();
  const fsm::EquivResult result = fsm::check_self_equivalence(
      fsm::spec_from_fsm(workload::builtin_fsm("sender_like")), opts);
  EXPECT_TRUE(result.equivalent);
  // If any calls survived filtering, sched produced valid covers (the
  // interceptor throws otherwise) and is present in the name list.
  const auto names = interceptor.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "sched"), names.end());
}

TEST(Integration, RenderedReportIsProducible) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  fsm::EquivOptions opts;
  opts.minimize = interceptor.hook();
  (void)fsm::check_self_equivalence(workload::make_gray_counter(4), opts);
  (void)fsm::check_self_equivalence(
      fsm::spec_from_fsm(workload::builtin_fsm("tlc_like")), opts);
  const harness::Table3 table =
      harness::aggregate_table3(interceptor.names(), interceptor.records());
  EXPECT_FALSE(harness::render_table3(table).empty());
  const harness::HeadToHead matrix =
      harness::head_to_head(interceptor.names(), interceptor.records());
  EXPECT_FALSE(
      harness::render_head_to_head(
          matrix, {"f_orig", "const", "restr", "osm_bt", "tsm_td", "opt_lv"})
          .empty());
}

}  // namespace
}  // namespace bddmin
