/// \file test_kernels.cpp
/// \brief Specialized apply kernels and the adaptive computed cache:
/// differential tests of and_kernel/xor_kernel (and every connective
/// rerouted onto them) against the ITE oracle, the early-exit
/// leq/disjoint predicates, Manager::reset() reuse, and the
/// cache-growth invariant (results survive a mid-recursion resize).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "analysis/audit.hpp"
#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "telemetry/counters.hpp"
#include "workload/instances.hpp"

namespace bddmin {
namespace {

/// The ITE oracle for AND: the standard-triple path ite() does not route
/// through the kernels, so it is an independent reference.
Edge ite_and(Manager& mgr, Edge f, Edge g) { return mgr.ite(f, g, kZero); }
Edge ite_xor(Manager& mgr, Edge f, Edge g) { return mgr.ite(f, !g, g); }

/// Semantic 64-bit fingerprint of an n-variable function: FNV-1a over the
/// value at every one of the 2^n assignments.  Unlike to_tt this is valid
/// for n > kMaxTtVars (the test used to funnel 12-variable functions
/// through to_tt, whose 1ull << m wrapped past bit 63 — shift UB that
/// silently degraded the comparison to an OR-fold; to_tt now enforces its
/// contract, and this helper is both well-defined and strictly stronger).
std::uint64_t eval_fingerprint(const Manager& mgr, Edge f, unsigned n) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  std::vector<bool> assignment(mgr.num_vars(), false);
  for (std::uint64_t m = 0; m < (1ull << n); ++m) {
    for (unsigned v = 0; v < n; ++v) assignment[v] = (m >> v) & 1;
    h ^= static_cast<std::uint64_t>(eval(mgr, f, assignment));
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

TEST(Kernels, ExhaustiveThreeVariablePairsMatchIteOracle) {
  Manager mgr(3);
  std::vector<Edge> fn(256);
  for (unsigned tt = 0; tt < 256; ++tt) fn[tt] = from_tt(mgr, tt, 3);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const Edge f = fn[a];
      const Edge g = fn[b];
      ASSERT_EQ(mgr.and_(f, g), ite_and(mgr, f, g)) << a << " & " << b;
      ASSERT_EQ(mgr.xor_(f, g), ite_xor(mgr, f, g)) << a << " ^ " << b;
      ASSERT_EQ(mgr.or_(f, g), mgr.ite(f, kOne, g)) << a << " | " << b;
      ASSERT_EQ(mgr.xnor_(f, g), !ite_xor(mgr, f, g)) << a << " = " << b;
      ASSERT_EQ(mgr.diff(f, g), ite_and(mgr, f, !g)) << a << " \\ " << b;
    }
  }
}

TEST(Kernels, ExhaustiveThreeVariableLeqDisjointMatchOracle) {
  Manager mgr(3);
  std::vector<Edge> fn(256);
  for (unsigned tt = 0; tt < 256; ++tt) fn[tt] = from_tt(mgr, tt, 3);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const bool leq_oracle = (a & ~b & 0xFFu) == 0;
      const bool dis_oracle = (a & b & 0xFFu) == 0;
      ASSERT_EQ(mgr.leq(fn[a], fn[b]), leq_oracle) << a << " <= " << b;
      ASSERT_EQ(mgr.disjoint(fn[a], fn[b]), dis_oracle) << a << " # " << b;
    }
  }
}

TEST(Kernels, RandomDifferentialAgainstIteOracle) {
  Manager mgr(14);
  std::mt19937_64 rng(0xC0FFEEu);
  for (int round = 0; round < 60; ++round) {
    const Bdd f(mgr, workload::random_function(mgr, 14, 0.3, rng));
    const Bdd g(mgr, workload::random_function(mgr, 14, 0.3, rng));
    EXPECT_EQ(mgr.and_(f.edge(), g.edge()), ite_and(mgr, f.edge(), g.edge()));
    EXPECT_EQ(mgr.xor_(f.edge(), g.edge()), ite_xor(mgr, f.edge(), g.edge()));
    EXPECT_EQ(mgr.or_(f.edge(), g.edge()),
              mgr.ite(f.edge(), kOne, g.edge()));
    EXPECT_EQ(mgr.implies(f.edge(), g.edge()),
              mgr.ite(f.edge(), g.edge(), kOne));
    // leq/disjoint agree with their defining products.
    EXPECT_EQ(mgr.leq(f.edge(), g.edge()),
              ite_and(mgr, f.edge(), !g.edge()) == kZero);
    EXPECT_EQ(mgr.disjoint(f.edge(), g.edge()),
              ite_and(mgr, f.edge(), g.edge()) == kZero);
    // Ground truths the predicates can never miss.
    EXPECT_TRUE(mgr.leq(mgr.and_(f.edge(), g.edge()), f.edge()));
    EXPECT_TRUE(mgr.leq(f.edge(), mgr.or_(f.edge(), g.edge())));
    EXPECT_TRUE(mgr.disjoint(mgr.diff(f.edge(), g.edge()), g.edge()));
  }
}

TEST(Kernels, CacheEntriesInteroperateBetweenAndAndDisjoint) {
  Manager mgr(8);
  const Edge f = mgr.and_(mgr.var_edge(0), mgr.var_edge(1));
  const Edge g = mgr.and_(!mgr.var_edge(0), mgr.var_edge(2));
  // The AND-kernel result f & g == 0 doubles as a disjointness
  // certificate: the subsequent disjoint() probe must hit the cache and
  // answer without recursing (no extra governor steps).
  ASSERT_EQ(mgr.and_(f, g), kZero);
  const telemetry::CounterSnapshot before = mgr.telemetry();
  EXPECT_TRUE(mgr.disjoint(f, g));
  if (telemetry::kCountersEnabled) {
    const telemetry::CounterSnapshot delta = mgr.telemetry() - before;
    EXPECT_EQ(delta.value(telemetry::Counter::kAndCacheHits), 1u);
    EXPECT_EQ(delta.value(telemetry::Counter::kAndCacheMisses), 0u);
  }
}

TEST(Kernels, CountersClassifyKernelTraffic) {
  Manager mgr(10);
  std::mt19937_64 rng(17);
  const Bdd f(mgr, workload::random_function(mgr, 10, 0.4, rng));
  const Bdd g(mgr, workload::random_function(mgr, 10, 0.4, rng));
  const telemetry::CounterSnapshot before = mgr.telemetry();
  (void)mgr.and_(f.edge(), g.edge());
  const telemetry::CounterSnapshot mid = mgr.telemetry();
  (void)mgr.xor_(f.edge(), g.edge());
  const telemetry::CounterSnapshot after = mgr.telemetry();
  const auto and_delta = mid - before;
  const auto xor_delta = after - mid;
  if (telemetry::kCountersEnabled) {
    EXPECT_GT(and_delta.value(telemetry::Counter::kAndCacheMisses), 0u);
    EXPECT_EQ(and_delta.value(telemetry::Counter::kXorCacheMisses), 0u);
    EXPECT_GT(xor_delta.value(telemetry::Counter::kXorCacheMisses), 0u);
    EXPECT_EQ(xor_delta.value(telemetry::Counter::kAndCacheMisses), 0u);
  }
}

TEST(ManagerReset, RebuildAfterResetIsBitForBitFresh) {
  Manager pooled(9, 10);
  // Dirty the manager with an unrelated workload.
  std::mt19937_64 dirty(99);
  for (int i = 0; i < 5; ++i) {
    (void)workload::random_function(pooled, 9, 0.3, dirty);
  }
  pooled.reset(9);

  Manager fresh(9, 10);
  std::mt19937_64 rng_a(7);
  std::mt19937_64 rng_b(7);
  const Edge in_pooled = workload::random_function(pooled, 9, 0.35, rng_a);
  const Edge in_fresh = workload::random_function(fresh, 9, 0.35, rng_b);
  // Same construction order on a terminal-only table => same edge bits.
  EXPECT_EQ(in_pooled.bits, in_fresh.bits);
  EXPECT_EQ(pooled.unique_size(), fresh.unique_size());
  EXPECT_EQ(pooled.live_nodes(), fresh.live_nodes());
  // Deterministic telemetry (counters, governor) matches a fresh manager.
  const telemetry::CounterSnapshot a = pooled.telemetry();
  const telemetry::CounterSnapshot b = fresh.telemetry();
  for (std::size_t c = 0; c < telemetry::kNumCounters; ++c) {
    EXPECT_EQ(a.value(static_cast<telemetry::Counter>(c)),
              b.value(static_cast<telemetry::Counter>(c)))
        << telemetry::counter_name(static_cast<telemetry::Counter>(c));
  }
}

TEST(ManagerReset, ResetManagerPassesFullAudit) {
  Manager mgr(8, 10);
  std::mt19937_64 rng(3);
  for (int round = 0; round < 3; ++round) {
    const Bdd f(mgr, workload::random_function(mgr, 8, 0.4, rng));
    const Bdd g(mgr, workload::random_function(mgr, 8, 0.4, rng));
    (void)mgr.xor_(f.edge(), g.edge());
    (void)mgr.leq(f.edge(), g.edge());
  }
  mgr.reset(8);
  analysis::AuditOptions opts;
  opts.level = analysis::AuditLevel::kCache;
  const analysis::AuditReport report = analysis::audit_manager(mgr, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(mgr.unique_size(), 0u);
  EXPECT_EQ(mgr.live_nodes(), 1u);  // the terminal
  // The manager is fully usable after reset, including with fewer vars.
  mgr.reset(4);
  EXPECT_EQ(to_tt(mgr, mgr.and_(mgr.var_edge(0), mgr.var_edge(3)), 4),
            (tt_mask(4) & 0xFF00u & 0xAAAAu));
}

TEST(CacheGrowth, ResultsSurviveMidRecursionResize) {
  // A deliberately tiny cache under a heavy workload: growth triggers in
  // the middle of kernel recursions.  Results must match a manager whose
  // cache never grows.
  Manager tiny(12, 2);
  tiny.set_cache_growth_limit(Manager::kMaxCacheLog2);
  Manager big(12, 18);
  std::mt19937_64 rng_a(21);
  std::mt19937_64 rng_b(21);
  for (int round = 0; round < 20; ++round) {
    const Bdd fa(tiny, workload::random_function(tiny, 12, 0.35, rng_a));
    const Bdd ga(tiny, workload::random_function(tiny, 12, 0.35, rng_a));
    const Bdd fb(big, workload::random_function(big, 12, 0.35, rng_b));
    const Bdd gb(big, workload::random_function(big, 12, 0.35, rng_b));
    EXPECT_EQ(eval_fingerprint(tiny, tiny.and_(fa.edge(), ga.edge()), 12),
              eval_fingerprint(big, big.and_(fb.edge(), gb.edge()), 12));
    EXPECT_EQ(eval_fingerprint(tiny, tiny.xor_(fa.edge(), ga.edge()), 12),
              eval_fingerprint(big, big.xor_(fb.edge(), gb.edge()), 12));
    EXPECT_EQ(eval_fingerprint(tiny, tiny.ite(fa.edge(), ga.edge(), !ga.edge()), 12),
              eval_fingerprint(big, big.ite(fb.edge(), gb.edge(), !gb.edge()), 12));
  }
  EXPECT_GT(tiny.cache_log2(), 2u) << "workload never triggered growth";
  if (telemetry::kCountersEnabled) {
    EXPECT_GT(tiny.telemetry().value(telemetry::Counter::kCacheGrowths), 0u);
    EXPECT_EQ(big.telemetry().value(telemetry::Counter::kCacheGrowths), 0u);
  }
  // The grown manager still audits clean, cache tier included.
  analysis::AuditOptions opts;
  opts.level = analysis::AuditLevel::kCache;
  const analysis::AuditReport report = analysis::audit_manager(tiny, opts);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CacheGrowth, GrowthLimitIsRespected) {
  Manager mgr(12, 2);
  mgr.set_cache_growth_limit(3);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 10; ++round) {
    const Bdd f(mgr, workload::random_function(mgr, 12, 0.35, rng));
    const Bdd g(mgr, workload::random_function(mgr, 12, 0.35, rng));
    (void)mgr.and_(f.edge(), g.edge());
    (void)mgr.xor_(f.edge(), g.edge());
  }
  EXPECT_LE(mgr.cache_log2(), 3u);
}

TEST(CacheGrowth, ResetShrinksCacheBackToConstructionSize) {
  Manager mgr(12, 2);
  mgr.set_cache_growth_limit(Manager::kMaxCacheLog2);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 20; ++round) {
    const Bdd f(mgr, workload::random_function(mgr, 12, 0.35, rng));
    const Bdd g(mgr, workload::random_function(mgr, 12, 0.35, rng));
    (void)mgr.and_(f.edge(), g.edge());
    (void)mgr.xor_(f.edge(), g.edge());
    (void)mgr.ite(f.edge(), g.edge(), !g.edge());
  }
  ASSERT_GT(mgr.cache_log2(), 2u);
  mgr.reset(12);
  EXPECT_EQ(mgr.cache_log2(), 2u);
}

}  // namespace
}  // namespace bddmin
