#include "minimize/sibling.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "workload/instances.hpp"

namespace bddmin::minimize {
namespace {

using HeuristicFn = Edge (*)(Manager&, Edge, Edge);

struct NamedHeuristic {
  const char* name;
  HeuristicFn fn;
};

constexpr NamedHeuristic kAll[] = {
    {"constrain", constrain}, {"restrict", restrict_dc}, {"osm_td", osm_td},
    {"osm_nv", osm_nv},       {"osm_cp", osm_cp},        {"osm_bt", osm_bt},
    {"tsm_td", tsm_td},       {"tsm_cp", tsm_cp},
};

class SiblingCover : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SiblingCover, EveryHeuristicReturnsACover) {
  Manager mgr(6);
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const IncSpec spec{from_tt(mgr, f_tt, 6), from_tt(mgr, c_tt, 6)};
    for (const NamedHeuristic& h : kAll) {
      const Edge g = h.fn(mgr, spec.f, spec.c);
      EXPECT_TRUE(is_cover(mgr, g, spec)) << h.name << " round " << round;
    }
  }
}

TEST_P(SiblingCover, NoVariableOutsideTheInputSupports) {
  // "It is never beneficial to introduce a variable that is in neither
  // the support of f nor c.  All our algorithms guarantee that this
  // never happens."
  Manager mgr(6);
  std::mt19937_64 rng(GetParam() + 100);
  for (int round = 0; round < 40; ++round) {
    // f, c over variables 1..4 only: 0 and 5 must never appear.
    const Edge f =
        compose(mgr, from_tt(mgr, rng() & tt_mask(4), 4), 0, mgr.var_edge(4));
    const Edge c_raw =
        compose(mgr, from_tt(mgr, rng() & tt_mask(4), 4), 0, mgr.var_edge(3));
    const Edge c = c_raw == kZero ? kOne : c_raw;
    for (const NamedHeuristic& h : kAll) {
      const Edge g = h.fn(mgr, f, c);
      EXPECT_FALSE(depends_on(mgr, g, 0)) << h.name;
      EXPECT_FALSE(depends_on(mgr, g, 5)) << h.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiblingCover, ::testing::Values(11, 22, 33, 44));

TEST(Sibling, CareSupersetOfOnsetGivesConstantOne) {
  // Special case 0 != c <= f: every algorithm returns the constant 1.
  Manager mgr(4);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    if (f_tt == 0) continue;
    std::uint64_t c_tt = f_tt & rng();
    c_tt &= tt_mask(4);
    if (c_tt == 0) c_tt = f_tt;
    const Edge f = from_tt(mgr, f_tt, 4);
    const Edge c = from_tt(mgr, c_tt, 4);
    for (const NamedHeuristic& h : kAll) {
      EXPECT_EQ(h.fn(mgr, f, c), kOne) << h.name;
    }
  }
}

TEST(Sibling, CareInsideOffsetGivesConstantZero) {
  Manager mgr(4);
  std::mt19937_64 rng(6);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    std::uint64_t c_tt = ~f_tt & rng() & tt_mask(4);
    if (c_tt == 0) c_tt = ~f_tt & tt_mask(4);
    if (c_tt == 0) continue;  // f == 1 everywhere
    const Edge f = from_tt(mgr, f_tt, 4);
    const Edge c = from_tt(mgr, c_tt, 4);
    for (const NamedHeuristic& h : kAll) {
      EXPECT_EQ(h.fn(mgr, f, c), kZero) << h.name;
    }
  }
}

TEST(Sibling, TrivialCareSetsReturnFUnchanged) {
  Manager mgr(4);
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(2));
  for (const NamedHeuristic& h : kAll) {
    EXPECT_EQ(h.fn(mgr, f, kOne), f) << h.name;
    EXPECT_EQ(h.fn(mgr, f, kZero), f) << h.name;
  }
}

TEST(Sibling, Table2DuplicatePairsCoincide) {
  // Heuristics 3/4 equal 1/2 (complement matching is vacuous for osdm);
  // 10/12 equal 9/11 (no-new-vars is vacuous for tsm).
  Manager mgr(6);
  std::mt19937_64 rng(77);
  const SiblingOptions h3{Criterion::kOsdm, true, false};
  const SiblingOptions h4{Criterion::kOsdm, true, true};
  const SiblingOptions h10{Criterion::kTsm, false, true};
  const SiblingOptions h12{Criterion::kTsm, true, true};
  for (int round = 0; round < 80; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge f = from_tt(mgr, f_tt, 6);
    const Edge c = from_tt(mgr, c_tt, 6);
    EXPECT_EQ(generic_td(mgr, h3, f, c), constrain(mgr, f, c));
    EXPECT_EQ(generic_td(mgr, h4, f, c), restrict_dc(mgr, f, c));
    EXPECT_EQ(generic_td(mgr, h10, f, c), tsm_td(mgr, f, c));
    EXPECT_EQ(generic_td(mgr, h12, f, c), tsm_cp(mgr, f, c));
  }
}

TEST(Sibling, ConstrainMatchesClassicalRecursion) {
  // Independent reference implementation of Coudert's constrain.
  Manager mgr(5);
  std::mt19937_64 rng(13);
  const auto classic = [&](auto&& self, Edge f, Edge c) -> Edge {
    if (c == kOne || Manager::is_const(f)) return f;
    const std::uint32_t v = std::min(mgr.var_of(f), mgr.var_of(c));
    const auto [f1, f0] = mgr.branches(f, v);
    const auto [c1, c0] = mgr.branches(c, v);
    if (c0 == kZero) return self(self, f1, c1);
    if (c1 == kZero) return self(self, f0, c0);
    return mgr.make_node(v, self(self, f1, c1), self(self, f0, c0));
  };
  for (int round = 0; round < 60; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    EXPECT_EQ(constrain(mgr, f, c), classic(classic, f, c));
  }
}

TEST(Sibling, ConstrainAlgebraicProperties) {
  // The "special property" of footnote 1 that permits reducing image
  // computations to range computations rests on constrain being a
  // minterm-mapping: it agrees with f on c, commutes with complement,
  // and distributes over conjunction.  None of this holds for arbitrary
  // covers.
  Manager mgr(5);
  std::mt19937_64 rng(123);
  bool restrict_violates_distribution = false;
  for (int round = 0; round < 80; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    const Edge g = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    EXPECT_EQ(mgr.and_(constrain(mgr, f, c), c), mgr.and_(f, c));
    EXPECT_EQ(constrain(mgr, !f, c), !constrain(mgr, f, c));
    EXPECT_EQ(constrain(mgr, mgr.and_(f, g), c),
              mgr.and_(constrain(mgr, f, c), constrain(mgr, g, c)));
    restrict_violates_distribution |=
        restrict_dc(mgr, mgr.and_(f, g), c) !=
        mgr.and_(restrict_dc(mgr, f, c), restrict_dc(mgr, g, c));
  }
  // restrict trades that property away for smaller results.
  EXPECT_TRUE(restrict_violates_distribution);
}

TEST(Sibling, MonotonicityInTheCareSet) {
  // Growing the care set can only reduce the freedom: the result agrees
  // with f on the old care set either way.
  Manager mgr(5);
  std::mt19937_64 rng(321);
  for (int round = 0; round < 40; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t small_tt = rng() & rng() & tt_mask(5);
    if (small_tt == 0) small_tt = 1;
    const Edge small = from_tt(mgr, small_tt, 5);
    const Edge big = mgr.or_(small, from_tt(mgr, rng() & tt_mask(5), 5));
    for (const auto& h : kAll) {
      // Both results cover [f, small]: the smaller instance's contract.
      EXPECT_TRUE(is_cover(mgr, h.fn(mgr, f, small), {f, small})) << h.name;
      EXPECT_TRUE(is_cover(mgr, h.fn(mgr, f, big), {f, small})) << h.name;
    }
  }
}

TEST(Sibling, RestrictNeverEnlargesSupportBeyondF) {
  // With no-new-vars, a variable of c that f does not depend on is
  // quantified away rather than pulled into the result... except through
  // matches at f's own variables; classic restrict keeps support(g)
  // within support(f).
  Manager mgr(5);
  std::mt19937_64 rng(21);
  for (int round = 0; round < 60; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    const Edge g = restrict_dc(mgr, f, c);
    for (const std::uint32_t v : support(mgr, g)) {
      EXPECT_TRUE(depends_on(mgr, f, v)) << "restrict introduced x" << v;
    }
  }
}

TEST(Sibling, PaperNoNewVarsExample) {
  // Section 3.2: f independent of x with a large BDD, c = x·f + !x·!f.
  // Introducing x gives the cover g = x of size two, which no-new-vars
  // refuses; restrict must return something no larger than f though.
  Manager mgr(6);
  // f over x1..x5 (parity: worst case size), x = x0.
  Edge f = kZero;
  for (unsigned v = 1; v < 6; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const Edge x = mgr.var_edge(0);
  const Edge c = mgr.ite(x, f, !f);
  const IncSpec spec{f, c};
  const Edge with_newvar = constrain(mgr, f, c);
  const Edge without = restrict_dc(mgr, f, c);
  EXPECT_TRUE(is_cover(mgr, with_newvar, spec));
  EXPECT_TRUE(is_cover(mgr, without, spec));
  // constrain discovers the 2-node cover x; restrict keeps f.
  EXPECT_EQ(with_newvar, x);
  EXPECT_EQ(without, f);
}

TEST(Sibling, ComplementMatchingFindsXnorStructure) {
  // f = xnor(x1, x2) with one care half: complement matching can keep the
  // single-node-per-level structure.
  Manager mgr(4);
  const Edge f = mgr.xnor_(mgr.var_edge(1), mgr.var_edge(2));
  const Edge c = mgr.or_(mgr.var_edge(1), mgr.var_edge(3));
  const IncSpec spec{f, c};
  for (const NamedHeuristic& h : kAll) {
    EXPECT_TRUE(is_cover(mgr, h.fn(mgr, spec.f, spec.c), spec)) << h.name;
  }
  // The cp variants must never do worse than their non-cp base here.
  EXPECT_LE(count_nodes(mgr, osm_cp(mgr, f, c)),
            count_nodes(mgr, osm_td(mgr, f, c)));
}

TEST(Sibling, WindowPassReturnsICoverWithGrowingCare) {
  Manager mgr(6);
  std::mt19937_64 rng(55);
  for (int round = 0; round < 40; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 6);
    const IncSpec spec{f, c};
    for (const Criterion crit : {Criterion::kOsm, Criterion::kTsm}) {
      const IncSpec out = sibling_window_pass(mgr, crit, 0, 2, spec);
      EXPECT_TRUE(is_icover(mgr, out, spec)) << to_string(crit);
      EXPECT_TRUE(mgr.leq(spec.c, out.c)) << "care must grow monotonically";
    }
  }
}

TEST(Sibling, WindowPassBelowWindowIsIdentity) {
  Manager mgr(6);
  const Edge f = mgr.xor_(mgr.var_edge(3), mgr.var_edge(4));
  const Edge c = mgr.var_edge(5);
  // Window covers levels 0..1 only; f and c start at level 3.
  const IncSpec out = sibling_window_pass(mgr, Criterion::kTsm, 0, 1, {f, c});
  EXPECT_EQ(out.f, f);
  EXPECT_EQ(out.c, c);
}

TEST(Sibling, FullWindowEqualsUnscheduledMatching) {
  // A window spanning every level with osm performs the same matches as
  // osm_td would, so constraining the result afterwards can't be larger.
  Manager mgr(5);
  std::mt19937_64 rng(66);
  for (int round = 0; round < 30; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    const IncSpec out = sibling_window_pass(mgr, Criterion::kOsm, 0, 4, {f, c});
    EXPECT_TRUE(is_cover(mgr, constrain(mgr, out.f, out.c), {f, c}));
  }
}

}  // namespace
}  // namespace bddmin::minimize
