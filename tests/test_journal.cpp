/// \file test_journal.cpp
/// \brief Write-ahead journal: codec round-trips, every recovery rule
/// (truncated tail, flipped checksum, duplicate completion, version
/// mismatch), in-process resume, and a real kill-and-resume through the
/// CLI binary asserting byte-identical CSV at 1/2/8 threads.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "engine/journal.hpp"
#include "telemetry/counters.hpp"

namespace bddmin {
namespace {

using engine::Job;
using engine::JobOutcome;
using engine::JournalContents;
using engine::JournalError;
using engine::JournalWriter;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

std::string temp_path(const char* leaf) {
  return testing::TempDir() + "bddmin_journal_" + leaf;
}

// ---- Codecs ------------------------------------------------------------

TEST(JournalCodec, JobRoundTripsBothPayloadKinds) {
  const Job tt = engine::make_tt_job("plain", 0xBEEFu, 0xFFFFu, 4);
  const Job tt2 = engine::decode_job_record(engine::encode_job_record(tt));
  EXPECT_EQ(tt2.name, tt.name);
  EXPECT_EQ(tt2.num_vars, tt.num_vars);
  EXPECT_EQ(tt2.kind, tt.kind);
  EXPECT_EQ(tt2.f_tt, tt.f_tt);
  EXPECT_EQ(tt2.c_tt, tt.c_tt);

  Job forest;
  forest.name = "evil, name %41 with\nnewline";
  forest.num_vars = 9;
  forest.kind = engine::PayloadKind::kForest;
  forest.forest = "line one\nline,two\n%%% \x01\x7f high\xff bytes";
  const Job back =
      engine::decode_job_record(engine::encode_job_record(forest));
  EXPECT_EQ(back.name, forest.name);
  EXPECT_EQ(back.num_vars, forest.num_vars);
  EXPECT_EQ(back.kind, forest.kind);
  EXPECT_EQ(back.forest, forest.forest);
  // The escaped record must stay a single line — that is the framing.
  EXPECT_EQ(engine::encode_job_record(forest).find('\n'), std::string::npos);
}

TEST(JournalCodec, OutcomeRoundTripsExactly) {
  JobOutcome o;
  o.name = "job,with%escapes";
  o.num_vars = 8;
  o.status = engine::JobStatus::kResourceLimit;
  o.detail = "osm_td: deadline (kept best cover)";
  o.f_size = 17;
  o.c_size = 9;
  o.c_onset = 1.0 / 3.0;  // needs all 17 significant digits
  o.min_size = 5;
  o.lower_bound = 3;
  o.peak_live = 123;
  o.worker = 2;
  o.seconds = 0.1;
  o.attempts = 3;
  o.retry_reason = "out-of-memory";
  for (std::size_t i = 0; i < o.counters.values.size(); ++i) {
    o.counters.values[i] = i * 1000003u;
  }
  o.results.resize(2);
  o.results[0].size = 7;
  o.results[0].seconds = 2.5e-4;
  o.results[1].size = 5;
  o.results[1].phases.phases[0].steps = 42;
  o.results[1].phases.phases[0].seconds = 1e-9;

  const JobOutcome b =
      engine::decode_outcome_record(engine::encode_outcome_record(o));
  EXPECT_EQ(b.name, o.name);
  EXPECT_EQ(b.status, o.status);
  EXPECT_EQ(b.detail, o.detail);
  EXPECT_EQ(b.c_onset, o.c_onset);  // exact: %.17g round-trips doubles
  EXPECT_EQ(b.seconds, o.seconds);
  EXPECT_EQ(b.attempts, o.attempts);
  EXPECT_EQ(b.retry_reason, o.retry_reason);
  EXPECT_EQ(b.counters.values, o.counters.values);
  ASSERT_EQ(b.results.size(), o.results.size());
  EXPECT_EQ(b.results[0].size, o.results[0].size);
  EXPECT_EQ(b.results[0].seconds, o.results[0].seconds);
  EXPECT_EQ(b.results[1].phases.phases[0].steps, 42u);
  EXPECT_EQ(b.results[1].phases.phases[0].seconds, 1e-9);
}

TEST(JournalCodec, Crc32MatchesKnownVectors) {
  // IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(engine::journal_crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(engine::journal_crc32(""), 0x00000000u);
}

// ---- Recovery rules ----------------------------------------------------

/// A journal with two jobs, the first completed.
std::string two_job_journal(const std::string& path) {
  JournalWriter writer(path, /*truncate=*/true);
  writer.append_submitted(0, engine::make_tt_job("a", 0x6u, 0xFu, 2));
  writer.append_submitted(1, engine::make_tt_job("b", 0x9u, 0xFu, 2));
  JobOutcome done;
  done.name = "a";
  done.num_vars = 2;
  done.min_size = 2;
  writer.append_completed(0, done);
  return read_file(path);
}

bool has_warning(const JournalContents& c, const char* needle) {
  for (const std::string& w : c.warnings) {
    if (w.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(JournalRecovery, CleanFileReadsBack) {
  const std::string path = temp_path("clean.wal");
  two_job_journal(path);
  const JournalContents c = engine::read_journal(path);
  EXPECT_TRUE(c.warnings.empty());
  ASSERT_EQ(c.jobs.size(), 2u);
  EXPECT_EQ(c.completed_count(), 1u);
  ASSERT_TRUE(c.completed[0].has_value());
  EXPECT_EQ(c.completed[0]->min_size, 2u);
  EXPECT_FALSE(c.completed[1].has_value());
  std::remove(path.c_str());
}

TEST(JournalRecovery, TruncatedTailIsIgnored) {
  const std::string path = temp_path("trunc.wal");
  std::string text = two_job_journal(path);
  // kill -9 mid-append: the last record loses its trailing newline and
  // part of its payload.
  ASSERT_EQ(text.back(), '\n');
  text.resize(text.size() - 10);
  write_file(path, text);
  const JournalContents c = engine::read_journal(path);
  EXPECT_TRUE(has_warning(c, "truncated tail"));
  ASSERT_EQ(c.jobs.size(), 2u);
  EXPECT_EQ(c.completed_count(), 0u);  // the C record was the casualty
  std::remove(path.c_str());
}

TEST(JournalRecovery, FlippedChecksumQuarantinesOnlyThatRecord) {
  const std::string path = temp_path("crc.wal");
  std::string text = two_job_journal(path);
  // Corrupt one payload byte of the completion record (the last line).
  const std::size_t c_line = text.rfind("\nC ") + 1;
  const std::size_t victim = text.find_last_of('2');  // min_size field
  ASSERT_GT(victim, c_line);
  text[victim] = '3';
  write_file(path, text);
  const JournalContents c = engine::read_journal(path);
  EXPECT_TRUE(has_warning(c, "checksum mismatch"));
  ASSERT_EQ(c.jobs.size(), 2u);  // the J records are untouched
  EXPECT_EQ(c.completed_count(), 0u);  // job "a" simply re-runs
  std::remove(path.c_str());
}

TEST(JournalRecovery, DuplicateCompletionFirstWins) {
  const std::string path = temp_path("dup.wal");
  two_job_journal(path);
  {
    JournalWriter again(path, /*truncate=*/false);
    JobOutcome later;
    later.name = "a";
    later.num_vars = 2;
    later.min_size = 99;  // must not displace the first record
    again.append_completed(0, later);
  }
  const JournalContents c = engine::read_journal(path);
  EXPECT_TRUE(has_warning(c, "duplicate completion"));
  ASSERT_TRUE(c.completed[0].has_value());
  EXPECT_EQ(c.completed[0]->min_size, 2u);
  std::remove(path.c_str());
}

TEST(JournalRecovery, VersionMismatchHeaderIsFatal) {
  const std::string path = temp_path("vers.wal");
  std::string text = two_job_journal(path);
  const std::size_t v = text.find("v1");
  ASSERT_NE(v, std::string::npos);
  text[v + 1] = '2';
  write_file(path, text);
  EXPECT_THROW(static_cast<void>(engine::read_journal(path)), JournalError);
  write_file(path, "");
  EXPECT_THROW(static_cast<void>(engine::read_journal(path)), JournalError);
  std::remove(path.c_str());
  EXPECT_THROW(static_cast<void>(engine::read_journal(path)), JournalError);
}

TEST(JournalRecovery, GarbledRecordLinesQuarantineNotThrow) {
  const std::string path = temp_path("garble.wal");
  std::string text = two_job_journal(path);
  text += "X what even is this\n";
  text += "C 57 00000000 completion-for-unknown-index\n";
  write_file(path, text);
  const JournalContents c = engine::read_journal(path);
  EXPECT_TRUE(has_warning(c, "unparsable record"));
  EXPECT_TRUE(has_warning(c, "unknown job index") ||
              has_warning(c, "checksum mismatch"));
  EXPECT_EQ(c.jobs.size(), 2u);
  EXPECT_EQ(c.completed_count(), 1u);
  std::remove(path.c_str());
}

TEST(JournalRecovery, GroupCommitTailTruncationKeepsWholeRecords) {
  // Group commit writes a shard's completion records as one fwrite; a
  // crash mid-write must lose only the cut record, never the whole group.
  const std::string path = temp_path("group.wal");
  {
    JournalWriter writer(path, /*truncate=*/true);
    std::string group;
    for (std::size_t i = 0; i < 3; ++i) {
      const Job job = engine::make_tt_job("g" + std::to_string(i),
                                          0x6u + i, 0xFu, 2);
      writer.append_submitted(i, job);
      JobOutcome done;
      done.name = job.name;
      done.num_vars = 2;
      done.min_size = i + 1;
      group += engine::format_completed_record(i, done);
    }
    writer.append_raw_lines(group);
  }
  {
    const JournalContents clean = engine::read_journal(path);
    EXPECT_TRUE(clean.warnings.empty());
    EXPECT_EQ(clean.completed_count(), 3u);
  }
  std::string text = read_file(path);
  text.resize(text.size() - 10);  // cut into the last record of the group
  write_file(path, text);
  const JournalContents c = engine::read_journal(path);
  EXPECT_TRUE(has_warning(c, "truncated tail"));
  ASSERT_EQ(c.jobs.size(), 3u);
  EXPECT_EQ(c.completed_count(), 2u);  // records 0 and 1 survive intact
  ASSERT_TRUE(c.completed[1].has_value());
  EXPECT_EQ(c.completed[1]->min_size, 2u);
  EXPECT_FALSE(c.completed[2].has_value());
  std::remove(path.c_str());
}

// ---- In-process resume -------------------------------------------------

TEST(JournalResume, ResumedBatchCsvIsByteIdentical) {
  const std::vector<Job> jobs = engine::random_jobs(6, 8, 0.5, 11);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 2;
  const std::string baseline = engine::report_csv(engine::run_batch(jobs, eo));

  // A journaled run, then a journal with two completions surgically
  // removed — the resume must re-run exactly those and nothing else.
  const std::string path = temp_path("resume.wal");
  eo.journal_path = path;
  const engine::BatchReport full = engine::run_batch(jobs, eo);
  EXPECT_EQ(engine::report_csv(full), baseline);

  std::string text = read_file(path);
  std::string pruned;
  std::size_t dropped = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("C 2 ", 0) == 0 || line.rfind("C 4 ", 0) == 0) {
      ++dropped;
      continue;
    }
    pruned += line + "\n";
  }
  ASSERT_EQ(dropped, 2u);
  write_file(path, pruned);

  const JournalContents resumed = engine::read_journal(path);
  ASSERT_EQ(resumed.jobs.size(), jobs.size());
  EXPECT_EQ(resumed.completed_count(), jobs.size() - 2);
  engine::EngineOptions ro;
  ro.heuristic = "restr";
  ro.num_threads = 2;
  ro.journal_path = path;
  ro.resume = &resumed;
  const engine::BatchReport after = engine::run_batch(resumed.jobs, ro);
  EXPECT_EQ(engine::report_csv(after), baseline);

  // The resumed run appended the missing completions: a second resume
  // has nothing left to do.
  EXPECT_EQ(engine::read_journal(path).completed_count(), jobs.size());
  std::remove(path.c_str());
}

// ---- Kill -9 and resume through the real binary ------------------------

#ifdef BDDMIN_CLI_PATH

int run_cli(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, -1) << cmd;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(JournalResume, KillAndResumeMatchesUninterruptedRun) {
  const std::string cli = BDDMIN_CLI_PATH;
  // vars 8 ⇒ forest payloads; the tt codec path is covered above.
  const std::string common =
      " batch --jobs 6 --vars 8 --seed 3 --heuristic restr";
  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::string t = " --threads " + std::to_string(threads);
    const std::string tag = std::to_string(threads);
    const std::string base_csv = temp_path(("base" + tag + ".csv").c_str());
    const std::string out_csv = temp_path(("out" + tag + ".csv").c_str());
    const std::string wal = temp_path(("kill" + tag + ".wal").c_str());

    ASSERT_EQ(run_cli(cli + common + t + " --csv " + base_csv), 0);

    // Die before the third completion record is committed (exit 42, the
    // failpoint's kill -9 stand-in) ...
    EXPECT_EQ(
        run_cli("BDDMIN_FAILPOINTS=journal_commit_abort:nth:3 " + cli +
                common + t + " --journal " + wal + " --csv " + out_csv),
        42);
    // ... then resume WITHOUT the failpoint armed.
    ASSERT_EQ(run_cli(cli + common + t + " --journal " + wal + " --resume" +
                      " --csv " + out_csv),
              0);
    EXPECT_EQ(read_file(out_csv), read_file(base_csv)) << threads;

    std::remove(base_csv.c_str());
    std::remove(out_csv.c_str());
    std::remove(wal.c_str());
  }
}

TEST(JournalResume, GroupCommitKillAndResumeMatchesUninterruptedRun) {
  const std::string cli = BDDMIN_CLI_PATH;
  // A small shard budget forces several shards (and hence several group
  // flushes) even on 12 jobs, so the nth:2 failpoint dies with flush 1
  // durable and flushes >= 2 lost — whole records only.
  const std::string common =
      " batch --jobs 12 --vars 8 --seed 9 --heuristic restr"
      " --shard-cost 600 --journal-group-commit";
  for (const unsigned threads : {1u, 2u}) {
    const std::string t = " --threads " + std::to_string(threads);
    const std::string tag = "gc" + std::to_string(threads);
    const std::string base_csv = temp_path((tag + "base.csv").c_str());
    const std::string out_csv = temp_path((tag + "out.csv").c_str());
    const std::string wal = temp_path((tag + ".wal").c_str());

    ASSERT_EQ(run_cli(cli + common + t + " --csv " + base_csv), 0);

    EXPECT_EQ(
        run_cli("BDDMIN_FAILPOINTS=journal_commit_abort:nth:2 " + cli +
                common + t + " --journal " + wal + " --csv " + out_csv),
        42);
    // The journal must already hold the first group's completions —
    // group commit batches records, it must not defer them to the end.
    EXPECT_GT(engine::read_journal(wal).completed_count(), 0u);

    ASSERT_EQ(run_cli(cli + common + t + " --journal " + wal + " --resume" +
                      " --csv " + out_csv),
              0);
    EXPECT_EQ(read_file(out_csv), read_file(base_csv)) << threads;

    std::remove(base_csv.c_str());
    std::remove(out_csv.c_str());
    std::remove(wal.c_str());
  }
}

#endif  // BDDMIN_CLI_PATH

}  // namespace
}  // namespace bddmin
