/// Negative compile test: reading a BDDMIN_GUARDED_BY member without its
/// mutex must be rejected by Clang's -Werror=thread-safety.  This file is
/// built on demand by the `lint_thread_safety_compile_fail` ctest entry
/// (WILL_FAIL) and must NOT compile — if it ever does, the annotation
/// plumbing in analysis/thread_annotations.hpp has gone dead.
#include <mutex>

#include "analysis/thread_annotations.hpp"

namespace {

class Account {
 public:
  // VIOLATION: touches balance_ without holding mu_.
  void unsafe_deposit(int amount) { balance_ += amount; }

  void safe_deposit(int amount) {
    const std::lock_guard<std::mutex> lock(mu_);
    balance_ += amount;
  }

 private:
  std::mutex mu_;
  int balance_ BDDMIN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.unsafe_deposit(1);
  account.safe_deposit(1);
  return 0;
}
