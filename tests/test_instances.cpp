#include "workload/instances.hpp"

#include <gtest/gtest.h>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::workload {
namespace {

TEST(Leaves, TwoVariableExample) {
  // "d1 01": leaf order (x0 x1) = 00, 01, 10, 11.
  Manager mgr(2);
  const minimize::IncSpec spec = from_leaves(mgr, "d1 01");
  // c: care everywhere except leaf 0.
  EXPECT_EQ(to_tt(mgr, spec.c, 2), 0b1110u);
  // f on care points: f(0,1)=1, f(1,0)=0, f(1,1)=1 -> f == x1 under d=0.
  EXPECT_EQ(spec.f, mgr.var_edge(1));
}

TEST(Leaves, LeftBranchIsZeroTopVariableIsMsb) {
  Manager mgr(3);
  // Only leaf index 4 (binary 100 -> x0=1, x1=0, x2=0) is 1.
  const minimize::IncSpec spec = from_leaves(mgr, "0000 1000");
  const Edge expect = mgr.and_(
      mgr.var_edge(0), mgr.and_(!mgr.var_edge(1), !mgr.var_edge(2)));
  EXPECT_EQ(spec.f, expect);
  EXPECT_EQ(spec.c, kOne);
}

TEST(Leaves, WhitespaceIsIgnored) {
  Manager mgr(3);
  const minimize::IncSpec a = from_leaves(mgr, "d1 01 1d 01");
  const minimize::IncSpec b = from_leaves(mgr, "d1011d01");
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.c, b.c);
}

TEST(Leaves, RejectsBadInput) {
  Manager mgr(3);
  EXPECT_THROW((void)from_leaves(mgr, "01x1"), std::invalid_argument);
  EXPECT_THROW((void)from_leaves(mgr, "011"), std::invalid_argument);  // not 2^n
  EXPECT_THROW((void)from_leaves(mgr, ""), std::invalid_argument);
}

TEST(Leaves, AllDontCare) {
  Manager mgr(2);
  const minimize::IncSpec spec = from_leaves(mgr, "dddd");
  EXPECT_EQ(spec.c, kZero);
}

TEST(RandomFunction, HitsTargetDensityApproximately) {
  Manager mgr(10);
  std::mt19937_64 rng(1);
  for (const double target : {0.03, 0.3, 0.7, 0.97}) {
    double total = 0;
    for (int round = 0; round < 10; ++round) {
      total += sat_fraction(mgr, random_function(mgr, 10, target, rng));
    }
    const double mean = total / 10;
    EXPECT_GE(mean, target * 0.5) << target;
    EXPECT_LE(mean, std::min(1.0, target * 2.5 + 0.05)) << target;
  }
}

TEST(RandomFunction, ExtremesAreConstants) {
  Manager mgr(6);
  std::mt19937_64 rng(2);
  EXPECT_EQ(random_function(mgr, 6, 0.0, rng), kZero);
  EXPECT_EQ(random_function(mgr, 6, 1.0, rng), kOne);
}

TEST(RandomInstance, ProducesNontrivialSpecsDeterministically) {
  Manager mgr(8);
  std::mt19937_64 rng_a(7);
  std::mt19937_64 rng_b(7);
  const minimize::IncSpec a = random_instance(mgr, 8, 0.4, rng_a);
  const minimize::IncSpec b = random_instance(mgr, 8, 0.4, rng_b);
  EXPECT_EQ(a.f, b.f);
  EXPECT_EQ(a.c, b.c);
  EXPECT_NE(a.c, kZero);
  EXPECT_NE(a.c, kOne);
}

}  // namespace
}  // namespace bddmin::workload
