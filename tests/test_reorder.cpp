/// Dynamic variable reordering: in-place level swaps must preserve every
/// referenced function; sifting must find the known-good orders for
/// classic order-sensitive functions.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/cube.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin {
namespace {

/// The canonical order-sensitive function: x0·x(n/2) + x1·x(n/2+1) + ...
/// Exponential under the "all selectors first" order, linear when the
/// pairs are interleaved.
Edge pairing_function(Manager& mgr, unsigned pairs) {
  Edge f = kZero;
  for (unsigned k = 0; k < pairs; ++k) {
    f = mgr.or_(f, mgr.and_(mgr.var_edge(k), mgr.var_edge(pairs + k)));
  }
  return f;
}

TEST(Reorder, AdjacentSwapPreservesFunctions) {
  Manager mgr(6);
  std::mt19937_64 rng(5);
  std::vector<Bdd> keep;
  std::vector<std::uint64_t> tts;
  for (int k = 0; k < 8; ++k) {
    const std::uint64_t tt = rng() & tt_mask(6);
    keep.emplace_back(mgr, from_tt(mgr, tt, 6));
    tts.push_back(tt);
  }
  for (std::uint32_t level = 0; level + 1 < 6; ++level) {
    (void)mgr.swap_adjacent_levels(level);
    mgr.check_invariants();
    for (std::size_t k = 0; k < keep.size(); ++k) {
      EXPECT_EQ(to_tt(mgr, keep[k].edge(), 6), tts[k])
          << "after swapping level " << level;
    }
  }
}

TEST(Reorder, SwapIsItsOwnInverse) {
  Manager mgr(5);
  const Bdd f(mgr, pairing_function(mgr, 2));
  const Edge before = f.edge();
  const std::ptrdiff_t d1 = mgr.swap_adjacent_levels(1);
  const std::ptrdiff_t d2 = mgr.swap_adjacent_levels(1);
  EXPECT_EQ(d1 + d2, 0);
  EXPECT_EQ(mgr.current_order(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  // The very same node must still root the same function.
  EXPECT_EQ(f.edge(), before);
  EXPECT_EQ(to_tt(mgr, f.edge(), 5), to_tt(mgr, pairing_function(mgr, 2), 5));
}

TEST(Reorder, OrderMapsStayConsistent) {
  Manager mgr(7);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 50; ++round) {
    const std::uint32_t level = rng() % 6;
    (void)mgr.swap_adjacent_levels(level);
    for (std::uint32_t l = 0; l < 7; ++l) {
      EXPECT_EQ(mgr.level_of_var(mgr.var_at_level(l)), l);
    }
  }
}

TEST(Reorder, SetOrderReachesTheRequestedPermutation) {
  Manager mgr(6);
  std::mt19937_64 rng(11);
  const Bdd f(mgr, from_tt(mgr, rng() & tt_mask(6), 6));
  const std::uint64_t tt = to_tt(mgr, f.edge(), 6);
  const std::vector<std::uint32_t> order{5, 3, 1, 0, 2, 4};
  mgr.set_order(order);
  EXPECT_EQ(mgr.current_order(), order);
  mgr.check_invariants();
  EXPECT_EQ(to_tt(mgr, f.edge(), 6), tt);
}

TEST(Reorder, SetOrderRejectsNonPermutations) {
  Manager mgr(3);
  const std::vector<std::uint32_t> dup{0, 0, 1};
  EXPECT_THROW(mgr.set_order(dup), std::invalid_argument);
  const std::vector<std::uint32_t> short_list{0, 1};
  EXPECT_THROW(mgr.set_order(short_list), std::invalid_argument);
}

TEST(Reorder, SiftingShrinksThePairingFunction) {
  Manager mgr(8);
  const Bdd f(mgr, pairing_function(mgr, 4));
  mgr.garbage_collect();
  const std::size_t before = f.size();
  EXPECT_GE(before, 16u);  // exponential under the bad initial order
  mgr.reorder_sift();
  mgr.check_invariants();
  const std::size_t after = f.size();
  EXPECT_LE(after, 10u);  // linear (2 nodes per pair + terminal)
  // Re-evaluate semantically: x_k & x_{4+k} pairs.  256 minterms exceed
  // the 64-bit truth-table helpers (kMaxTtVars), so evaluate directly.
  std::vector<bool> assignment(8, false);
  for (unsigned m = 0; m < 256; ++m) {
    bool on = false;
    for (unsigned k = 0; k < 8; ++k) assignment[k] = (m >> k) & 1;
    for (unsigned k = 0; k < 4; ++k) on |= assignment[k] && assignment[4 + k];
    EXPECT_EQ(eval(mgr, f.edge(), assignment), on) << "minterm " << m;
  }
}

TEST(Reorder, SiftVarRespectsMaxGrowth) {
  Manager mgr(8);
  const Bdd f(mgr, pairing_function(mgr, 4));
  mgr.garbage_collect();
  const std::size_t before = mgr.unique_size();
  mgr.sift_var(0, 1.05);  // almost no headroom: must not blow up
  mgr.check_invariants();
  EXPECT_LE(mgr.unique_size(), before + 2);
}

TEST(Reorder, RandomFunctionsSurviveFullSift) {
  Manager mgr(8);
  std::mt19937_64 rng(13);
  std::vector<Bdd> keep;
  std::vector<std::vector<bool>> probes;
  std::vector<bool> expected;
  for (int k = 0; k < 6; ++k) {
    Edge f = kZero;
    for (int c = 0; c < 12; ++c) {
      Edge cube = kOne;
      for (int l = 0; l < 3; ++l) {
        const unsigned v = rng() % 8;
        cube = mgr.and_(cube, (rng() & 1) ? mgr.var_edge(v) : mgr.nvar_edge(v));
      }
      f = mgr.or_(f, cube);
    }
    keep.emplace_back(mgr, f);
  }
  for (int p = 0; p < 64; ++p) {
    std::vector<bool> a(8);
    for (int v = 0; v < 8; ++v) a[v] = rng() & 1;
    probes.push_back(a);
    for (const Bdd& f : keep) expected.push_back(eval(mgr, f.edge(), a));
  }
  mgr.reorder_sift();
  mgr.check_invariants();
  std::size_t idx = 0;
  for (const auto& a : probes) {
    for (const Bdd& f : keep) {
      EXPECT_EQ(eval(mgr, f.edge(), a), expected[idx++]);
    }
  }
}

TEST(Reorder, OperationsKeepWorkingAfterReordering) {
  Manager mgr(6);
  mgr.set_order(std::vector<std::uint32_t>{2, 0, 4, 1, 5, 3});
  // Everything below goes through make_node/ite under the permuted order.
  std::mt19937_64 rng(17);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t ta = rng() & tt_mask(6);
    const std::uint64_t tb = rng() & tt_mask(6);
    const Edge a = from_tt(mgr, ta, 6);
    const Edge b = from_tt(mgr, tb, 6);
    EXPECT_EQ(to_tt(mgr, mgr.and_(a, b), 6), ta & tb);
    EXPECT_EQ(to_tt(mgr, mgr.xor_(a, b), 6), ta ^ tb);
    EXPECT_EQ(to_tt(mgr, exists(mgr, a, mgr.var_edge(3)), 6),
              to_tt(mgr, mgr.or_(cofactor(mgr, a, 3, true),
                                 cofactor(mgr, a, 3, false)),
                    6));
  }
}

TEST(Reorder, CubeEnumerationUnderPermutedOrder) {
  Manager mgr(5);
  mgr.set_order(std::vector<std::uint32_t>{4, 2, 0, 3, 1});
  std::mt19937_64 rng(19);
  const std::uint64_t tt = rng() & tt_mask(5);
  const Edge f = from_tt(mgr, tt, 5);
  Edge cover = kZero;
  for_each_cube(mgr, f, 5, 0, [&](const CubeVec& cube) {
    cover = mgr.or_(cover, cube_to_edge(mgr, cube));
    return true;
  });
  EXPECT_EQ(cover, f);
}

TEST(Reorder, GcAfterReorderingReclaimsEverything) {
  Manager mgr(8);
  {
    const Bdd f(mgr, pairing_function(mgr, 4));
    mgr.reorder_sift();
  }
  mgr.garbage_collect();
  EXPECT_EQ(mgr.live_nodes(), 1u);  // terminal only
  EXPECT_EQ(mgr.unique_size(), 0u);
  mgr.check_invariants();
}

}  // namespace
}  // namespace bddmin
