#include "bdd/io.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin {
namespace {

TEST(Io, RoundTripsASharedForest) {
  Manager mgr(6);
  std::mt19937_64 rng(3);
  std::vector<Bdd> keep;
  std::vector<Edge> roots;
  std::vector<std::uint64_t> tts;
  for (int k = 0; k < 5; ++k) {
    const std::uint64_t tt = rng() & tt_mask(6);
    keep.emplace_back(mgr, from_tt(mgr, tt, 6));
    roots.push_back(keep.back().edge());
    tts.push_back(tt);
  }
  const std::string text = serialize(mgr, roots);
  const std::vector<Edge> loaded = deserialize(mgr, text);
  ASSERT_EQ(loaded.size(), roots.size());
  for (std::size_t k = 0; k < roots.size(); ++k) {
    EXPECT_EQ(loaded[k], roots[k]);  // same manager: canonical identity
  }
}

TEST(Io, LoadsIntoAFreshManager) {
  Manager src(5);
  std::mt19937_64 rng(7);
  const std::uint64_t tt = rng() & tt_mask(5);
  const Bdd f(src, from_tt(src, tt, 5));
  const std::vector<Edge> roots{f.edge()};
  const std::string text = serialize(src, roots);

  Manager dst(5);
  const std::vector<Edge> loaded = deserialize(dst, text);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(to_tt(dst, loaded[0], 5), tt);
}

TEST(Io, LoadsAcrossDifferentVariableOrders) {
  Manager src(5);
  std::mt19937_64 rng(11);
  const std::uint64_t tt = rng() & tt_mask(5);
  const Bdd f(src, from_tt(src, tt, 5));
  const std::vector<Edge> roots{f.edge()};
  const std::string text = serialize(src, roots);

  Manager dst(5);
  dst.set_order(std::vector<std::uint32_t>{4, 1, 3, 0, 2});
  const std::vector<Edge> loaded = deserialize(dst, text);
  EXPECT_EQ(to_tt(dst, loaded[0], 5), tt);
}

TEST(Io, ConstantsAndComplementRoots) {
  Manager mgr(3);
  const Bdd x(mgr, mgr.var_edge(1));
  const std::vector<Edge> roots{kOne, kZero, !x.edge()};
  const std::vector<Edge> loaded = deserialize(mgr, serialize(mgr, roots));
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0], kOne);
  EXPECT_EQ(loaded[1], kZero);
  EXPECT_EQ(loaded[2], !x.edge());
}

TEST(Io, RejectsMalformedInput) {
  Manager mgr(4);
  EXPECT_THROW((void)deserialize(mgr, "garbage"), std::invalid_argument);
  EXPECT_THROW((void)deserialize(mgr, "bddmin-bdd v2\nvars 2\n"),
               std::invalid_argument);
  // Forward reference.
  EXPECT_THROW(
      (void)deserialize(
          mgr, "bddmin-bdd v1\nvars 2\nnodes 1\n1 0 #2 @0\nroots 1\n#1\n"),
      std::invalid_argument);
  // Too many variables for the manager.
  Manager tiny(1);
  EXPECT_THROW(
      (void)deserialize(
          tiny, "bddmin-bdd v1\nvars 3\nnodes 0\nroots 1\n@1\n"),
      std::invalid_argument);
}

TEST(Io, SerializedSizeTracksTheForest) {
  Manager mgr(6);
  Edge parity = kZero;
  for (unsigned v = 0; v < 6; ++v) parity = mgr.xor_(parity, mgr.var_edge(v));
  const Bdd keep(mgr, parity);
  const std::vector<Edge> roots{parity};
  const std::string text = serialize(mgr, roots);
  // One line per decision node (6 with complement edges) + 5 header/roots.
  std::size_t lines = 0;
  for (const char ch : text) lines += ch == '\n';
  EXPECT_EQ(lines, 6u + 5u);
}

}  // namespace
}  // namespace bddmin
