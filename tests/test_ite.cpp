#include <gtest/gtest.h>

#include <random>

#include "bdd/manager.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin {
namespace {

TEST(Ite, TerminalCases) {
  Manager mgr(3);
  const Edge x = mgr.var_edge(0);
  const Edge y = mgr.var_edge(1);
  EXPECT_EQ(mgr.ite(kOne, x, y), x);
  EXPECT_EQ(mgr.ite(kZero, x, y), y);
  EXPECT_EQ(mgr.ite(x, y, y), y);
  EXPECT_EQ(mgr.ite(x, kOne, kZero), x);
  EXPECT_EQ(mgr.ite(x, kZero, kOne), !x);
}

TEST(Ite, BasicConnectives) {
  Manager mgr(2);
  const Edge x = mgr.var_edge(0);
  const Edge y = mgr.var_edge(1);
  EXPECT_EQ(to_tt(mgr, mgr.and_(x, y), 2), 0b1000u);
  EXPECT_EQ(to_tt(mgr, mgr.or_(x, y), 2), 0b1110u);
  EXPECT_EQ(to_tt(mgr, mgr.xor_(x, y), 2), 0b0110u);
  EXPECT_EQ(to_tt(mgr, mgr.xnor_(x, y), 2), 0b1001u);
  EXPECT_EQ(to_tt(mgr, mgr.diff(x, y), 2), 0b0010u);
  EXPECT_EQ(to_tt(mgr, mgr.implies(x, y), 2), 0b1101u);
}

TEST(Ite, DeMorgan) {
  Manager mgr(3);
  const Edge x = mgr.var_edge(0);
  const Edge y = mgr.var_edge(2);
  EXPECT_EQ(!mgr.and_(x, y), mgr.or_(!x, !y));
  EXPECT_EQ(!mgr.or_(x, y), mgr.and_(!x, !y));
}

TEST(Ite, LeqAndDisjoint) {
  Manager mgr(2);
  const Edge x = mgr.var_edge(0);
  const Edge y = mgr.var_edge(1);
  EXPECT_TRUE(mgr.leq(mgr.and_(x, y), x));
  EXPECT_FALSE(mgr.leq(x, mgr.and_(x, y)));
  EXPECT_TRUE(mgr.leq(kZero, x));
  EXPECT_TRUE(mgr.leq(x, kOne));
  EXPECT_TRUE(mgr.disjoint(x, !x));
  EXPECT_FALSE(mgr.disjoint(x, mgr.or_(x, y)));
}

/// Exhaustive: every ITE over all 16 two-variable truth tables.
TEST(Ite, ExhaustiveTwoVariableTriples) {
  Manager mgr(2);
  std::vector<Edge> fn(16);
  for (unsigned tt = 0; tt < 16; ++tt) fn[tt] = from_tt(mgr, tt, 2);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      for (unsigned c = 0; c < 16; ++c) {
        const Edge r = mgr.ite(fn[a], fn[b], fn[c]);
        const std::uint64_t expect = (a & b) | (~a & c);
        EXPECT_EQ(to_tt(mgr, r, 2), expect & 0xF)
            << "ite(" << a << "," << b << "," << c << ")";
      }
    }
  }
}

/// Randomized 5-variable ITE triples checked against truth tables, and
/// canonicity: rebuilding the result from its truth table gives the same
/// edge.
class IteRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IteRandom, MatchesTruthTableAndIsCanonical) {
  Manager mgr(5);
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t ta = rng() & tt_mask(5);
    const std::uint64_t tb = rng() & tt_mask(5);
    const std::uint64_t tc = rng() & tt_mask(5);
    const Edge r =
        mgr.ite(from_tt(mgr, ta, 5), from_tt(mgr, tb, 5), from_tt(mgr, tc, 5));
    const std::uint64_t expect = ((ta & tb) | (~ta & tc)) & tt_mask(5);
    EXPECT_EQ(to_tt(mgr, r, 5), expect);
    EXPECT_EQ(from_tt(mgr, expect, 5), r) << "result not canonical";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Ite, SelfComplementOperands) {
  Manager mgr(4);
  std::mt19937_64 rng(99);
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t tf = rng() & tt_mask(4);
    const std::uint64_t tg = rng() & tt_mask(4);
    const Edge f = from_tt(mgr, tf, 4);
    const Edge g = from_tt(mgr, tg, 4);
    // ite(f, g, !g) == xnor, ite(f, !g, g) == xor, ite(f, f, g) == f | g.
    EXPECT_EQ(mgr.ite(f, g, !g), mgr.xnor_(f, g));
    EXPECT_EQ(mgr.ite(f, !g, g), mgr.xor_(f, g));
    EXPECT_EQ(mgr.ite(f, f, g), mgr.or_(f, g));
    EXPECT_EQ(mgr.ite(f, g, f), mgr.and_(f, g));
    EXPECT_EQ(mgr.ite(f, !f, g), mgr.and_(!f, g));
  }
}

}  // namespace
}  // namespace bddmin
