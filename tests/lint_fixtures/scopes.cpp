// Lint fixture (never compiled): seeds R3 (raw assert), R4 (edge used
// across a collection without pinning) and R5 (discarded telemetry scope
// temporaries).  Expected findings are asserted line-exactly by
// tests/test_lint.cpp.
#include <cassert>

namespace bddmin {

struct Edge {};

struct Mgr {
  Edge and_(Edge a, Edge b);
  void garbage_collect();
  void ref(Edge e);
  Edge var_edge(unsigned v);
};

void use(Edge e);

void raw_assert(int x) {
  // VIOLATION R3 (line 22): raw assert instead of BDDMIN_CHECK/DCHECK.
  assert(x > 0);
  static_assert(sizeof(int) >= 4);  // compliant: static_assert is fine
}

void unpinned_edge(Mgr& mgr) {
  Edge f = mgr.and_(mgr.var_edge(0), mgr.var_edge(1));
  mgr.garbage_collect();
  // VIOLATION R4 (line 30): f may dangle — it was never pinned.
  use(f);
}

void pinned_edge(Mgr& mgr) {
  Edge f = mgr.and_(mgr.var_edge(0), mgr.var_edge(1));
  mgr.ref(f);  // compliant: explicit reference survives the collection
  mgr.garbage_collect();
  use(f);
}

void discarded_scopes() {
  // VIOLATION R5 (line 42): temporary destructs before the next statement.
  telemetry::TraceScope("span", "fixture");
  // VIOLATION R5 (line 44): same mistake with a phase marker.
  PhaseScope(telemetry::Phase::kValidation);
  const telemetry::TraceScope named("span", "fixture");  // compliant
  (void)named;
}

}  // namespace bddmin
