// Lint fixture (never compiled): exercises the suppression machinery.
// One justified allow() silences its finding; one naked allow() is itself
// reported.  Expected findings are asserted line-exactly by
// tests/test_lint.cpp.
#include <cassert>

namespace bddmin {

void justified(int x) {
  // Suppressed — no finding: the justification rides on the allow().
  assert(x > 0);  // bddmin-lint: allow(R3) -- fixture: demonstrates a justified suppression
}

void naked(int x) {
  // bddmin-lint: allow(R3)
  assert(x > 0);  // VIOLATION (line 16): allow() without justification
}

}  // namespace bddmin
