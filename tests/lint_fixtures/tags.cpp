// Lint fixture (never compiled): seeds R2 violations — ad-hoc cache tags
// that bypass the src/bdd/cache_tags.hpp registry.  Expected findings are
// asserted line-exactly by tests/test_lint.cpp.
#include <cstdint>

namespace bddmin {

struct Edge {};

struct Mgr {
  bool cache_lookup(std::uint32_t op, Edge a, Edge b, Edge c, Edge* out);
  void cache_insert(std::uint32_t op, Edge a, Edge b, Edge c, Edge result);
};

// VIOLATION R2 (line 16): the alias targets a tag the registry never defined.
constexpr std::uint32_t kOpBogus = cache_tag::kNoSuchTag;

void seed(Mgr& mgr, Edge f) {
  Edge out;
  // VIOLATION R2 (line 21): raw numeric tag, not a registry constant.
  mgr.cache_insert(42u, f, f, f, f);
  // Compliant forms — no findings.
  (void)mgr.cache_lookup(analysis::ManagerAccess::op_ite(), f, f, f, &out);
  mgr.cache_insert(Manager::kUserOpBase + 3, f, f, f, f);
  (void)mgr.cache_lookup(cache_tag::kExists, f, f, f, &out);
}

}  // namespace bddmin
