// Lint fixture (never compiled): seeds R6 — a TraceScope or mutex lock
// held across a cross-thread wait inside stress-harness code.  The path
// contains "src/stress/" so the rule applies here and nowhere else in the
// fixture corpus.  Expected findings are asserted line-exactly by
// tests/test_lint.cpp.
#include <mutex>
#include <thread>

namespace bddmin::stress {

void lock_across_join(std::thread& helper, std::mutex& mu) {
  std::lock_guard<std::mutex> guard(mu);
  // VIOLATION R6 (line 14): the lock is still held while joining.
  helper.join();
}

void scope_across_wait(std::thread& helper) {
  telemetry::TraceScope span("invariant-hook", "stress");
  // VIOLATION R6 (line 20): the tracer scope outlives the join.
  helper.join();
}

void nested_lock_released(std::thread& helper, std::mutex& mu) {
  {
    std::lock_guard<std::mutex> guard(mu);  // compliant: block closes first
    (void)guard;
  }
  helper.join();
}

void explicit_unlock(std::thread& helper, std::mutex& mu) {
  std::unique_lock<std::mutex> lk(mu);
  lk.unlock();  // compliant: released before the wait
  helper.join();
}

void no_wait_at_all(std::mutex& mu) {
  std::lock_guard<std::mutex> guard(mu);  // compliant: nothing blocks
  (void)guard;
}

}  // namespace bddmin::stress
