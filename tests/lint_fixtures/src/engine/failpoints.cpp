// R7 fixture: failpoint site hygiene.  Seeded findings:
//   line 13 — site name not in the failpoint catalog
//   line 21 — second site for a catalog name that already has one
//   line 26 — empty catch of ResourceExhausted swallows the injection
// The first "gc_oom" site and the catch that records the trip are clean.
#include "analysis/failpoint.hpp"

namespace bddmin::engine {

void decode_with_failpoints() {
  // A typo'd name never matches a catalog entry, so arming it is
  // impossible and the site is dead code.
  if (BDDMIN_FAILPOINT("gc_ooom")) {
    throw OutOfMemory("injected");
  }
  if (BDDMIN_FAILPOINT("gc_oom")) {
    throw OutOfMemory("injected");
  }
  // A second site for the same name makes once/nth arming fire at
  // whichever site polls first — ambiguous, so it is a finding.
  if (BDDMIN_FAILPOINT("gc_oom")) {
    throw OutOfMemory("injected");
  }
  try {
    risky_operation();
  } catch (const ResourceExhausted&) {
    // Swallowing the injection (comments do not count as handling).
  }
  try {
    risky_operation();
  } catch (const ResourceExhausted& e) {
    record_trip(e);  // compliant: the trip is observable
  }
}

}  // namespace bddmin::engine
