// Lint fixture (never compiled): seeds one R1 violation in a file whose
// path mirrors the real BDD core, which is where R1 applies.  Expected
// findings are asserted line-exactly by tests/test_lint.cpp — keep line
// numbers stable when editing.
#include <cstdint>

namespace bddmin {

struct Edge {
  std::uint32_t bits = 0;
};

struct Governor {
  void charge_step();
};

struct Mgr {
  bool cache_lookup(std::uint32_t op, Edge a, Edge b, Edge c, Edge* out);
  void cache_insert(std::uint32_t op, Edge a, Edge b, Edge c, Edge result);
  Governor& governor();
  Edge make(Edge a, Edge b);
};

constexpr std::uint32_t kOpFixture = cache_tag::kCofactor;

// VIOLATION R1: memoized recursion that never charges the governor — the
// step budget cannot see this op.  Body opens on line 28.
Edge uncharged_rec(Mgr& mgr, Edge f, Edge g) {
  Edge result;
  if (mgr.cache_lookup(kOpFixture, f, g, Edge{}, &result)) return result;
  result = mgr.make(f, g);
  mgr.cache_insert(kOpFixture, f, g, Edge{}, result);
  return result;
}

// Compliant: charges on the miss path.  No finding.
Edge charged_rec(Mgr& mgr, Edge f, Edge g) {
  Edge result;
  if (mgr.cache_lookup(kOpFixture, f, g, Edge{}, &result)) return result;
  mgr.governor().charge_step();
  result = mgr.make(f, g);
  mgr.cache_insert(kOpFixture, f, g, Edge{}, result);
  return result;
}

}  // namespace bddmin
