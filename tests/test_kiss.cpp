#include "fsm/kiss.hpp"

#include <gtest/gtest.h>

namespace bddmin::fsm {
namespace {

constexpr const char* kSample = R"(# a comment
.i 2
.o 1
.r idle
00 idle idle 0
1- idle busy 1   # trailing comment
-- busy idle 0
.e
trailing garbage after .e is ignored
)";

TEST(Kiss, ParsesDirectivesAndTransitions) {
  const Fsm m = parse_kiss2(kSample, "sample");
  EXPECT_EQ(m.name, "sample");
  EXPECT_EQ(m.num_inputs, 2u);
  EXPECT_EQ(m.num_outputs, 1u);
  EXPECT_EQ(m.reset_state, "idle");
  ASSERT_EQ(m.transitions.size(), 3u);
  EXPECT_EQ(m.transitions[1].input, "1-");
  EXPECT_EQ(m.transitions[1].to, "busy");
  EXPECT_EQ(m.states, (std::vector<std::string>{"idle", "busy"}));
}

TEST(Kiss, ResetDefaultsToFirstMentionedState) {
  const Fsm m = parse_kiss2(".i 1\n.o 1\n0 s1 s0 0\n1 s1 s1 1\n.e\n");
  EXPECT_EQ(m.reset_state, "s1");
}

TEST(Kiss, DeclaredCountsAreIgnoredInFavourOfBody) {
  const Fsm m =
      parse_kiss2(".i 1\n.o 1\n.p 999\n.s 999\n0 a a 0\n1 a a 1\n.e\n");
  EXPECT_EQ(m.states.size(), 1u);
  EXPECT_EQ(m.transitions.size(), 2u);
}

TEST(Kiss, RejectsMalformedTransition) {
  EXPECT_THROW(parse_kiss2(".i 1\n.o 1\n0 a\n.e\n"), std::invalid_argument);
}

TEST(Kiss, RejectsUnknownDirective) {
  EXPECT_THROW(parse_kiss2(".i 1\n.o 1\n.frobnicate 3\n.e\n"),
               std::invalid_argument);
}

TEST(Kiss, RejectsNondeterministicBody) {
  EXPECT_THROW(parse_kiss2(".i 1\n.o 1\n- a b 0\n1 a a 0\n.e\n"),
               std::invalid_argument);
}

TEST(Kiss, RoundTripThroughWriter) {
  const Fsm m = parse_kiss2(kSample, "sample");
  const Fsm again = parse_kiss2(to_kiss2(m), "sample");
  EXPECT_EQ(again.num_inputs, m.num_inputs);
  EXPECT_EQ(again.num_outputs, m.num_outputs);
  EXPECT_EQ(again.states, m.states);
  EXPECT_EQ(again.reset_state, m.reset_state);
  ASSERT_EQ(again.transitions.size(), m.transitions.size());
  for (std::size_t i = 0; i < m.transitions.size(); ++i) {
    EXPECT_EQ(again.transitions[i].input, m.transitions[i].input);
    EXPECT_EQ(again.transitions[i].from, m.transitions[i].from);
    EXPECT_EQ(again.transitions[i].to, m.transitions[i].to);
    EXPECT_EQ(again.transitions[i].output, m.transitions[i].output);
  }
}

}  // namespace
}  // namespace bddmin::fsm
