#include "bdd/manager.hpp"

#include <gtest/gtest.h>

namespace bddmin {
namespace {

TEST(Manager, FreshManagerHasOnlyTerminal) {
  Manager mgr(4);
  EXPECT_EQ(mgr.live_nodes(), 1u);
  EXPECT_EQ(mgr.num_vars(), 4u);
}

TEST(Manager, VarEdgeIsANodeOverTheVariable) {
  Manager mgr(4);
  const Edge x1 = mgr.var_edge(1);
  EXPECT_FALSE(Manager::is_const(x1));
  EXPECT_EQ(mgr.var_of(x1), 1u);
  EXPECT_EQ(mgr.hi_of(x1), kOne);
  EXPECT_EQ(mgr.lo_of(x1), kZero);
}

TEST(Manager, NVarEdgeIsComplement) {
  Manager mgr(4);
  EXPECT_EQ(mgr.nvar_edge(2), !mgr.var_edge(2));
}

TEST(Manager, DeletionRuleEqualChildren) {
  Manager mgr(4);
  const Edge x0 = mgr.var_edge(0);
  EXPECT_EQ(mgr.make_node(1, x0, x0), x0);
  EXPECT_EQ(mgr.make_node(0, kOne, kOne), kOne);
}

TEST(Manager, MergingRuleSharesStructure) {
  Manager mgr(4);
  const Edge a = mgr.make_node(1, kOne, kZero);
  const Edge b = mgr.make_node(1, kOne, kZero);
  EXPECT_EQ(a, b);
}

TEST(Manager, CanonicalComplementFormHiAlwaysRegular) {
  Manager mgr(4);
  // make_node with a complemented hi edge must push the complement out.
  const Edge e = mgr.make_node(0, kZero, kOne);  // hi=0 is complemented
  EXPECT_TRUE(e.complemented());
  const Node& n = mgr.node_at(e.index());
  EXPECT_FALSE(n.hi.complemented());
  EXPECT_EQ(mgr.hi_of(e), kZero);
  EXPECT_EQ(mgr.lo_of(e), kOne);
}

TEST(Manager, ComplementPairsShareOneNode) {
  Manager mgr(4);
  const Edge x = mgr.var_edge(3);
  EXPECT_EQ(x.index(), (!x).index());
}

TEST(Manager, BranchesSplitOnlyAtMatchingVariable) {
  Manager mgr(4);
  const Edge x2 = mgr.var_edge(2);
  const auto [t_at2, e_at2] = mgr.branches(x2, 2);
  EXPECT_EQ(t_at2, kOne);
  EXPECT_EQ(e_at2, kZero);
  const auto [t_at0, e_at0] = mgr.branches(x2, 0);
  EXPECT_EQ(t_at0, x2);
  EXPECT_EQ(e_at0, x2);
}

TEST(Manager, VarOfConstantIsSentinel) {
  Manager mgr(2);
  EXPECT_EQ(mgr.var_of(kOne), kConstVar);
  EXPECT_EQ(mgr.var_of(kZero), kConstVar);
}

TEST(Manager, AddVarExtendsOrderAtBottom) {
  Manager mgr(2);
  const unsigned v = mgr.add_var();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(mgr.num_vars(), 3u);
  EXPECT_EQ(mgr.var_of(mgr.var_edge(v)), 2u);
}

TEST(Manager, CacheRoundTrip) {
  Manager mgr(2);
  const Edge x = mgr.var_edge(0);
  Edge out;
  EXPECT_FALSE(mgr.cache_lookup(Manager::kUserOpBase, x, kOne, kZero, &out));
  mgr.cache_insert(Manager::kUserOpBase, x, kOne, kZero, !x);
  ASSERT_TRUE(mgr.cache_lookup(Manager::kUserOpBase, x, kOne, kZero, &out));
  EXPECT_EQ(out, !x);
  mgr.clear_caches();
  EXPECT_FALSE(mgr.cache_lookup(Manager::kUserOpBase, x, kOne, kZero, &out));
}

TEST(Manager, UniqueTableSurvivesGrowth) {
  Manager mgr(16);
  // Force several bucket growths; previously created nodes must still be
  // found (not duplicated).
  std::vector<Edge> first;
  for (unsigned v = 0; v < 16; ++v) first.push_back(mgr.var_edge(v));
  Edge chain = kOne;
  for (unsigned v = 16; v-- > 0;) chain = mgr.make_node(v, chain, kZero);
  for (unsigned i = 0; i < 2000; ++i) {
    // Build i-dependent functions to populate the table.
    const Edge x = mgr.var_edge(i % 16);
    const Edge y = mgr.var_edge((i + 7) % 16);
    (void)mgr.ite(x, y, !y);
  }
  for (unsigned v = 0; v < 16; ++v) EXPECT_EQ(mgr.var_edge(v), first[v]);
  Edge chain2 = kOne;
  for (unsigned v = 16; v-- > 0;) chain2 = mgr.make_node(v, chain2, kZero);
  EXPECT_EQ(chain2, chain);
}

}  // namespace
}  // namespace bddmin
