#include "bdd/truth_table.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"

namespace bddmin {
namespace {

TEST(TruthTable, MaskWidths) {
  EXPECT_EQ(tt_mask(0), 1ull);
  EXPECT_EQ(tt_mask(1), 3ull);
  EXPECT_EQ(tt_mask(2), 0xFull);
  EXPECT_EQ(tt_mask(5), 0xFFFFFFFFull);
  EXPECT_EQ(tt_mask(6), ~0ull);
}

TEST(TruthTable, ConstantsAndLiterals) {
  Manager mgr(3);
  EXPECT_EQ(from_tt(mgr, 0, 3), kZero);
  EXPECT_EQ(from_tt(mgr, tt_mask(3), 3), kOne);
  // x0 = odd minterms, x2 = upper half.
  EXPECT_EQ(from_tt(mgr, 0b10101010, 3), mgr.var_edge(0));
  EXPECT_EQ(from_tt(mgr, 0b11110000, 3), mgr.var_edge(2));
}

class TtRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(TtRoundTrip, FromToIsIdentity) {
  const unsigned n = GetParam();
  Manager mgr(6);
  std::mt19937_64 rng(n * 101 + 1);
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t tt = rng() & tt_mask(n);
    EXPECT_EQ(to_tt(mgr, from_tt(mgr, tt, n), n), tt);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TtRoundTrip, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TruthTable, FromTtIsCanonical) {
  Manager mgr(4);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t tt = rng() & tt_mask(4);
    EXPECT_EQ(from_tt(mgr, tt, 4), from_tt(mgr, tt, 4));
    EXPECT_EQ(from_tt(mgr, ~tt & tt_mask(4), 4), !from_tt(mgr, tt, 4));
  }
}

TEST(TruthTable, TtBddSizeMatchesManagerCount) {
  // Parity of 4 variables: the canonical worst case, 4 + 4... with
  // complement edges a parity BDD has one node per variable + terminal.
  std::uint64_t parity = 0;
  for (unsigned m = 0; m < 16; ++m) {
    if (std::popcount(m) % 2) parity |= 1ull << m;
  }
  EXPECT_EQ(tt_bdd_size(parity, 4), 5u);
  EXPECT_EQ(tt_bdd_size(0, 3), 1u);
  EXPECT_EQ(tt_bdd_size(0b10101010, 3), 2u);
}

TEST(TruthTable, SemanticsAgreeWithEval) {
  Manager mgr(4);
  std::mt19937_64 rng(17);
  const std::uint64_t tt = rng() & tt_mask(4);
  const Edge f = from_tt(mgr, tt, 4);
  for (unsigned m = 0; m < 16; ++m) {
    std::vector<bool> assignment(4);
    for (unsigned v = 0; v < 4; ++v) assignment[v] = (m >> v) & 1;
    EXPECT_EQ(eval(mgr, f, assignment), ((tt >> m) & 1) != 0);
  }
}

}  // namespace
}  // namespace bddmin
