#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin {
namespace {

TEST(Gc, UnreferencedNodesAreReclaimed) {
  Manager mgr(6);
  const std::size_t baseline = mgr.live_nodes();
  (void)mgr.xor_(mgr.var_edge(0), mgr.xor_(mgr.var_edge(1), mgr.var_edge(2)));
  EXPECT_GT(mgr.dead_nodes(), 0u);
  const std::size_t freed = mgr.garbage_collect();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(mgr.dead_nodes(), 0u);
  EXPECT_EQ(mgr.live_nodes(), baseline);
}

TEST(Gc, ReferencedRootsSurviveWithChildren) {
  Manager mgr(6);
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(3));
  mgr.ref(f);
  (void)mgr.and_(mgr.var_edge(1), mgr.var_edge(2));  // garbage
  mgr.garbage_collect();
  // f must still evaluate correctly: rebuilding it finds the same node.
  EXPECT_EQ(mgr.xor_(mgr.var_edge(0), mgr.var_edge(3)), f);
  EXPECT_EQ(count_nodes(mgr, f), 3u);
  mgr.deref(f);
}

TEST(Gc, RecycledSlotsAreReused) {
  Manager mgr(8);
  Edge junk = kOne;
  for (unsigned v = 0; v < 8; ++v) junk = mgr.xor_(junk, mgr.var_edge(v));
  const std::size_t allocated = mgr.allocated_nodes();
  mgr.garbage_collect();
  Edge junk2 = kZero;
  for (unsigned v = 0; v < 8; ++v) junk2 = mgr.xnor_(junk2, mgr.var_edge(v));
  // Same shape rebuilt: no net new slots needed beyond the first round.
  EXPECT_LE(mgr.allocated_nodes(), allocated + 1);
}

TEST(Gc, CacheIsFlushedByCollection) {
  Manager mgr(4);
  const Edge f = mgr.var_edge(0);
  mgr.cache_insert(Manager::kUserOpBase, f, f, f, kOne);
  mgr.garbage_collect();
  Edge out;
  EXPECT_FALSE(mgr.cache_lookup(Manager::kUserOpBase, f, f, f, &out));
}

TEST(Gc, GcRunsCounterIncrements) {
  Manager mgr(2);
  const auto before = mgr.gc_runs();
  mgr.garbage_collect();
  EXPECT_EQ(mgr.gc_runs(), before + 1);
}

TEST(BddHandle, KeepsRootAliveAcrossGc) {
  Manager mgr(6);
  Bdd f;
  {
    const Bdd x0(mgr, mgr.var_edge(0));
    const Bdd x1(mgr, mgr.var_edge(1));
    f = x0 ^ x1;
  }
  mgr.garbage_collect();
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.edge(), mgr.xor_(mgr.var_edge(0), mgr.var_edge(1)));
}

TEST(BddHandle, CopySharesAndReleasesCorrectly) {
  Manager mgr(4);
  const std::size_t baseline = mgr.live_nodes();
  {
    const Bdd a(mgr, mgr.and_(mgr.var_edge(0), mgr.var_edge(1)));
    const Bdd b = a;         // copy
    Bdd c;
    c = b;                   // copy assign
    const Bdd d = std::move(c);  // move
    EXPECT_EQ(d.edge(), a.edge());
  }
  mgr.garbage_collect();
  EXPECT_EQ(mgr.live_nodes(), baseline);
}

TEST(BddHandle, OperatorsMatchManagerOps) {
  Manager mgr(4);
  const Bdd x(mgr, mgr.var_edge(0));
  const Bdd y(mgr, mgr.var_edge(1));
  EXPECT_EQ((x & y).edge(), mgr.and_(x.edge(), y.edge()));
  EXPECT_EQ((x | y).edge(), mgr.or_(x.edge(), y.edge()));
  EXPECT_EQ((x ^ y).edge(), mgr.xor_(x.edge(), y.edge()));
  EXPECT_EQ((x - y).edge(), mgr.diff(x.edge(), y.edge()));
  EXPECT_EQ((!x).edge(), !x.edge());
  EXPECT_TRUE((x & y).leq(x));
  EXPECT_TRUE(x.ite(y, !y) == Bdd(mgr, mgr.xnor_(x.edge(), y.edge())));
}

TEST(EdgePin, PinsUntilDestroyed) {
  Manager mgr(4);
  Edge f;
  {
    EdgePin pin(mgr);
    f = pin.pin(mgr.xor_(mgr.var_edge(0), mgr.var_edge(1)));
    mgr.garbage_collect();
    EXPECT_EQ(count_nodes(mgr, f), 3u);  // survived: still intact
  }
  mgr.garbage_collect();
  // After the pin is gone the node count drops back to just vars/terminal.
  EXPECT_EQ(mgr.live_nodes(), 1u);
}

TEST(Gc, RepeatedAbortGcReuseCyclesRecycleSlots) {
  // Abort-&-recover drill: trip the node quota, collect the dead partials,
  // reuse the manager, repeat.  Reclaimed slots must come back through the
  // free list, so the table size is the same after every cycle — a leaked
  // reference or a free-list break would make it creep upward.
  Manager mgr(6);
  ResourceLimits lim;
  lim.hard_node_limit = mgr.allocated_nodes() + 12;
  std::mt19937_64 rng(77);
  std::size_t table_size = 0;
  for (int cycle = 0; cycle < 25; ++cycle) {
    mgr.governor().set_limits(lim);
    EXPECT_THROW(
        {
          for (int k = 0; k < 6; ++k) (void)from_tt(mgr, rng() & tt_mask(6), 6);
        },
        NodeLimit);
    mgr.governor().clear();
    mgr.garbage_collect();
    EXPECT_EQ(mgr.dead_nodes(), 0u);
    if (cycle == 0) {
      table_size = mgr.allocated_nodes();
    } else {
      EXPECT_EQ(mgr.allocated_nodes(), table_size) << "cycle " << cycle;
    }
  }
  // The survivor is still a working manager.
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(5));
  EXPECT_EQ(count_nodes(mgr, f), 3u);
}

TEST(Gc, HeavyChurnStressKeepsCanonicity) {
  Manager mgr(6);
  std::mt19937_64 rng(31);
  const Bdd keep(mgr, from_tt(mgr, rng() & tt_mask(6), 6));
  const std::uint64_t keep_tt = to_tt(mgr, keep.edge(), 6);
  for (int round = 0; round < 50; ++round) {
    (void)from_tt(mgr, rng() & tt_mask(6), 6);
    if (round % 7 == 0) mgr.garbage_collect();
  }
  mgr.garbage_collect();
  EXPECT_EQ(to_tt(mgr, keep.edge(), 6), keep_tt);
  EXPECT_EQ(from_tt(mgr, keep_tt, 6), keep.edge());
}

}  // namespace
}  // namespace bddmin
