#include "minimize/lower_bound.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/exact.hpp"
#include "minimize/registry.hpp"

namespace bddmin::minimize {
namespace {

TEST(LowerBound, NeverExceedsExactMinimum) {
  Manager mgr(4);
  std::mt19937_64 rng(71);
  for (int round = 0; round < 20; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    std::uint64_t c_tt = (rng() | rng()) & tt_mask(4);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 4);
    const LowerBoundResult lb = constrain_lower_bound(mgr, f, c);
    const auto exact = exact_minimum(mgr, f, c, 4);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(lb.bound, exact->size);
    EXPECT_GE(lb.bound, 1u);
  }
}

TEST(LowerBound, NeverExceedsAnyHeuristicResult) {
  Manager mgr(5);
  std::mt19937_64 rng(73);
  const auto heuristics = all_heuristics();
  for (int round = 0; round < 15; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    const LowerBoundResult lb = constrain_lower_bound(mgr, f, c);
    for (const Heuristic& h : heuristics) {
      if (h.name == "f_and_c" || h.name == "f_or_nc" || h.name == "f_orig") {
        continue;  // bound computations, not covers of minimum interest
      }
      EXPECT_LE(lb.bound, count_nodes(mgr, h.run(mgr, f, c))) << h.name;
    }
  }
}

TEST(LowerBound, ExactWhenCareIsASingleCube) {
  // With c itself a cube, the bound IS the minimum (Theorem 7).
  Manager mgr(4);
  std::mt19937_64 rng(79);
  for (int round = 0; round < 20; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    Edge cube = kOne;
    for (unsigned v = 0; v < 4; ++v) {
      switch (rng() % 3) {
        case 0: cube = mgr.and_(cube, mgr.var_edge(v)); break;
        case 1: cube = mgr.and_(cube, mgr.nvar_edge(v)); break;
        default: break;
      }
    }
    const LowerBoundResult lb = constrain_lower_bound(mgr, f, cube);
    const auto exact = exact_minimum(mgr, f, cube, 4);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(lb.bound, exact->size);
  }
}

TEST(LowerBound, MoreCubesTightenTheBound) {
  Manager mgr(6);
  std::mt19937_64 rng(83);
  for (int round = 0; round < 20; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 6);
    const LowerBoundResult few = constrain_lower_bound(mgr, f, c, 2);
    const LowerBoundResult many = constrain_lower_bound(mgr, f, c, 100);
    EXPECT_LE(few.bound, many.bound);
    EXPECT_LE(few.cubes_examined, many.cubes_examined);
  }
}

TEST(LowerBound, ConstantFunctionsShortCircuit) {
  Manager mgr(3);
  const Edge c = mgr.var_edge(0);
  EXPECT_EQ(constrain_lower_bound(mgr, kOne, c).bound, 1u);
  EXPECT_EQ(constrain_lower_bound(mgr, kZero, c).bound, 1u);
}

TEST(LowerBound, LargestCubeProbeStaysSoundAndCountsItsCube) {
  Manager mgr(5);
  std::mt19937_64 rng(89);
  for (int round = 0; round < 15; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    const LowerBoundResult probed =
        constrain_lower_bound(mgr, f, c, 50, /*probe_largest_cube=*/true);
    const auto exact = exact_minimum(mgr, f, c, 5, 16);
    if (exact) {
      EXPECT_LE(probed.bound, exact->size);
    }
    const LowerBoundResult plain = constrain_lower_bound(mgr, f, c, 50);
    EXPECT_GE(probed.bound, plain.bound == 0 ? 0 : 1u);
    EXPECT_EQ(probed.cubes_examined,
              plain.cubes_examined + (c == kOne ? 0 : 1));
  }
}

TEST(LowerBound, CubeBudgetIsRespected) {
  Manager mgr(6);
  Edge parity = kZero;
  for (unsigned v = 0; v < 6; ++v) parity = mgr.xor_(parity, mgr.var_edge(v));
  // parity has 32 minterm cubes.
  const LowerBoundResult lb =
      constrain_lower_bound(mgr, mgr.var_edge(0), parity, 5);
  EXPECT_EQ(lb.cubes_examined, 5u);
}

}  // namespace
}  // namespace bddmin::minimize
