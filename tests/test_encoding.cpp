#include "fsm/encoding.hpp"

#include <gtest/gtest.h>

#include "bdd/ops.hpp"
#include "fsm/kiss.hpp"
#include "workload/generators.hpp"

namespace bddmin::fsm {
namespace {

constexpr const char* kToggler = R"(.i 1
.o 1
.r off
0 off off 0
1 off on  0
0 on  on  1
1 on  off 1
.e
)";

class EncodingFixture : public ::testing::Test {
 protected:
  Manager mgr{3};  // input var 0, state vars 1 (only one bit needed)
  Fsm machine = parse_kiss2(kToggler, "toggler");
  std::vector<std::uint32_t> in{0};
  std::vector<std::uint32_t> st{1};
};

TEST_F(EncodingFixture, StateCodeEnumeratesBinaryEncodings) {
  const std::vector<std::uint32_t> vars{1, 2};
  EXPECT_EQ(state_code(mgr, vars, 0),
            mgr.and_(mgr.nvar_edge(1), mgr.nvar_edge(2)));
  EXPECT_EQ(state_code(mgr, vars, 1),
            mgr.and_(mgr.var_edge(1), mgr.nvar_edge(2)));
  EXPECT_EQ(state_code(mgr, vars, 3),
            mgr.and_(mgr.var_edge(1), mgr.var_edge(2)));
}

TEST_F(EncodingFixture, PatternCubeHandlesWildcards) {
  const std::vector<std::uint32_t> vars{0, 1, 2};
  EXPECT_EQ(pattern_cube(mgr, vars, "---"), kOne);
  EXPECT_EQ(pattern_cube(mgr, vars, "1-0"),
            mgr.and_(mgr.var_edge(0), mgr.nvar_edge(2)));
}

TEST_F(EncodingFixture, TogglerSemantics) {
  const SymbolicFsm sym = encode_fsm(mgr, machine, in, st);
  ASSERT_EQ(sym.next_state.size(), 1u);
  ASSERT_EQ(sym.outputs.size(), 1u);
  // next = state XOR input; output = state.
  EXPECT_EQ(sym.next_state[0], mgr.xor_(mgr.var_edge(1), mgr.var_edge(0)));
  EXPECT_EQ(sym.outputs[0], mgr.var_edge(1));
  EXPECT_EQ(sym.initial, mgr.nvar_edge(1));
}

TEST_F(EncodingFixture, LayoutMismatchThrows) {
  const std::vector<std::uint32_t> wrong_inputs{0, 2};
  EXPECT_THROW(encode_fsm(mgr, machine, wrong_inputs, st),
               std::invalid_argument);
  const std::vector<std::uint32_t> no_state_bits{};
  EXPECT_THROW(encode_fsm(mgr, machine, in, no_state_bits),
               std::invalid_argument);
}

TEST(Encoding, UnspecifiedPairsSelfLoop) {
  // One state, input 1 unspecified: must self-loop with output 0.
  Manager mgr(2);
  const Fsm m = parse_kiss2(".i 1\n.o 1\n0 a a 1\n.e\n");
  const std::vector<std::uint32_t> in{0};
  const std::vector<std::uint32_t> st{1};
  const SymbolicFsm sym = encode_fsm(mgr, m, in, st);
  // Covered only at (input=0, state bit=0); everywhere else the state bit
  // is held: next = uncovered & s = (x0 + x1) & x1 = x1.
  EXPECT_EQ(sym.next_state[0], mgr.var_edge(1));
  // Output asserted only on the explicit transition's condition.
  EXPECT_EQ(sym.outputs[0], mgr.and_(mgr.nvar_edge(0), mgr.nvar_edge(1)));
}

TEST(Encoding, DashOutputsAreZero) {
  Manager mgr(2);
  const Fsm m = parse_kiss2(".i 1\n.o 2\n- a a -1\n.e\n");
  const SymbolicFsm sym =
      encode_fsm(mgr, m, std::vector<std::uint32_t>{0},
                 std::vector<std::uint32_t>{1});
  EXPECT_EQ(sym.outputs[0], kZero);
  // Asserted on the transition's condition (any input, state code 0).
  EXPECT_EQ(sym.outputs[1], mgr.nvar_edge(1));
}

TEST(Encoding, SpecFromFsmBuildsTheSameFunctions) {
  Manager mgr(3);
  const Fsm m = parse_kiss2(kToggler, "toggler");
  const MachineSpec spec = spec_from_fsm(m);
  EXPECT_EQ(spec.num_inputs, 1u);
  EXPECT_EQ(spec.num_state_bits, 1u);
  EXPECT_EQ(spec.num_outputs, 1u);
  const std::vector<std::uint32_t> in{0};
  const std::vector<std::uint32_t> st{1};
  const SymbolicFsm direct = encode_fsm(mgr, m, in, st);
  const SymbolicFsm via_spec = spec.build(mgr, in, st);
  EXPECT_EQ(direct.next_state[0], via_spec.next_state[0]);
  EXPECT_EQ(direct.outputs[0], via_spec.outputs[0]);
  EXPECT_EQ(direct.initial, via_spec.initial);
}

TEST(Encoding, SimulateStepFollowsTheMachine) {
  Manager mgr(3);
  const Fsm m = parse_kiss2(kToggler, "toggler");
  const SymbolicFsm sym =
      encode_fsm(mgr, m, std::vector<std::uint32_t>{0},
                 std::vector<std::uint32_t>{1});
  // off --1--> on (output 0), on --1--> off (output 1), on --0--> on.
  StepResult r = simulate_step(mgr, sym, {false}, {true});
  EXPECT_EQ(r.next_state, std::vector<bool>{true});
  EXPECT_EQ(r.outputs, std::vector<bool>{false});
  r = simulate_step(mgr, sym, {true}, {true});
  EXPECT_EQ(r.next_state, std::vector<bool>{false});
  EXPECT_EQ(r.outputs, std::vector<bool>{true});
  r = simulate_step(mgr, sym, {true}, {false});
  EXPECT_EQ(r.next_state, std::vector<bool>{true});
}

TEST(Encoding, SimulationAgreesWithSymbolicImage) {
  Manager mgr(8);
  const workload::MachineSpec spec = workload::make_random_mealy(6, 2, 2, 3);
  const std::vector<std::uint32_t> in{0, 1};
  const std::vector<std::uint32_t> st{2, 3, 4};
  const SymbolicFsm sym = spec.build(mgr, in, st);
  // For every (state, input): the simulated successor must satisfy every
  // next-state function's truth value.
  std::vector<bool> assignment(8, false);
  for (unsigned s = 0; s < 8; ++s) {
    for (unsigned i = 0; i < 4; ++i) {
      std::vector<bool> state_bits{(s & 1) != 0, (s & 2) != 0, (s & 4) != 0};
      std::vector<bool> input_bits{(i & 1) != 0, (i & 2) != 0};
      const StepResult r = simulate_step(mgr, sym, state_bits, input_bits);
      assignment[0] = input_bits[0];
      assignment[1] = input_bits[1];
      for (unsigned k = 0; k < 3; ++k) assignment[st[k]] = state_bits[k];
      for (unsigned k = 0; k < 3; ++k) {
        EXPECT_EQ(eval(mgr, sym.next_state[k], assignment), r.next_state[k]);
      }
    }
  }
}

TEST(Encoding, WideMachineUsesAllStateBits) {
  Manager mgr(4);
  // 3 states need 2 bits; state s2 encoding = 10 (bit0=0, bit1=1).
  const Fsm m = parse_kiss2(
      ".i 1\n.o 1\n0 s0 s1 0\n1 s0 s2 0\n- s1 s0 1\n- s2 s0 1\n.e\n");
  const std::vector<std::uint32_t> in{0};
  const std::vector<std::uint32_t> st{1, 2};
  const SymbolicFsm sym = encode_fsm(mgr, m, in, st);
  // From s0 (00) with input 1 we reach s2: next bit1 must be set there.
  const Edge cond = mgr.and_(mgr.var_edge(0), state_code(mgr, st, 0));
  EXPECT_TRUE(mgr.leq(cond, sym.next_state[1]));
  EXPECT_TRUE(mgr.disjoint(cond, sym.next_state[0]));
}

}  // namespace
}  // namespace bddmin::fsm
