/// Drives tools/bddmin_lint.py end to end:
///  * the seeded fixture corpus (tests/lint_fixtures) must produce exactly
///    the expected findings — file, line and rule all match, nothing extra
///  * a justified `bddmin-lint: allow(Rn) -- why` suppression silences its
///    finding; a naked allow() is itself reported
///  * the real source tree must lint clean (exit 0)
///
/// The repo root comes from a compile definition set in
/// tests/CMakeLists.txt.  Skips (not fails) when python3 is absent.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

#ifndef BDDMIN_REPO_ROOT
#error "tests/CMakeLists.txt must define BDDMIN_REPO_ROOT"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

/// Run a shell command, capturing combined output and the exit code.
RunResult run_command(const std::string& cmd) {
  RunResult r;
  std::FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Run the lint tool with \p args appended.
RunResult run_lint(const std::string& args) {
  return run_command(std::string("python3 \"") + BDDMIN_REPO_ROOT +
                     "/tools/bddmin_lint.py\" --root \"" + BDDMIN_REPO_ROOT +
                     "\" " + args);
}

bool python_available() {
  return run_command("python3 --version").exit_code == 0;
}

struct ParsedFinding {
  std::string path;
  int line = 0;
  std::string rule;

  bool operator==(const ParsedFinding&) const = default;
};

/// Parse "path:line: Rn: message" lines into (path, line, rule) triples.
std::vector<ParsedFinding> parse_findings(const std::string& output) {
  std::vector<ParsedFinding> found;
  std::size_t pos = 0;
  while (pos < output.size()) {
    std::size_t eol = output.find('\n', pos);
    if (eol == std::string::npos) eol = output.size();
    const std::string line = output.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t c1 = line.find(':');
    if (c1 == std::string::npos) continue;
    char* endp = nullptr;
    const long lineno = std::strtol(line.c_str() + c1 + 1, &endp, 10);
    if (endp == line.c_str() + c1 + 1 || *endp != ':') continue;
    const std::size_t rs = line.find(" R", endp - line.c_str());
    if (rs == std::string::npos || rs + 2 >= line.size() ||
        line[rs + 2] < '1' || line[rs + 2] > '7') {
      continue;
    }
    found.push_back(ParsedFinding{line.substr(0, c1),
                                  static_cast<int>(lineno),
                                  line.substr(rs + 1, 2)});
  }
  return found;
}

// The seeded corpus, line-exact.  Keep in lockstep with the fixture files.
const std::vector<ParsedFinding> kSeeded = {
    {"tests/lint_fixtures/scopes.cpp", 22, "R3"},
    {"tests/lint_fixtures/scopes.cpp", 30, "R4"},
    {"tests/lint_fixtures/scopes.cpp", 42, "R5"},
    {"tests/lint_fixtures/scopes.cpp", 44, "R5"},
    {"tests/lint_fixtures/src/bdd/ops.cpp", 28, "R1"},
    {"tests/lint_fixtures/src/engine/failpoints.cpp", 13, "R7"},
    {"tests/lint_fixtures/src/engine/failpoints.cpp", 21, "R7"},
    {"tests/lint_fixtures/src/engine/failpoints.cpp", 26, "R7"},
    {"tests/lint_fixtures/src/stress/hooks.cpp", 14, "R6"},
    {"tests/lint_fixtures/src/stress/hooks.cpp", 20, "R6"},
    {"tests/lint_fixtures/suppressed.cpp", 16, "R3"},
    {"tests/lint_fixtures/tags.cpp", 16, "R2"},
    {"tests/lint_fixtures/tags.cpp", 21, "R2"},
};

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python_available()) GTEST_SKIP() << "python3 not on PATH";
  }
};

TEST_F(LintTest, FixtureCorpusDetectedExactly) {
  const RunResult r =
      run_lint(std::string("\"") + BDDMIN_REPO_ROOT + "/tests/lint_fixtures\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::vector<ParsedFinding> found = parse_findings(r.output);
  ASSERT_EQ(found.size(), kSeeded.size()) << r.output;
  for (const ParsedFinding& want : kSeeded) {
    EXPECT_TRUE(std::find(found.begin(), found.end(), want) != found.end())
        << "missing finding " << want.path << ":" << want.line << " "
        << want.rule << "\n"
        << r.output;
  }
}

TEST_F(LintTest, JustifiedSuppressionSilencesFinding) {
  // suppressed.cpp seeds two raw asserts; only the naked allow() surfaces.
  const RunResult r = run_lint(std::string("--rules R3 \"") +
                               BDDMIN_REPO_ROOT +
                               "/tests/lint_fixtures/suppressed.cpp\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("suppressed.cpp:16: R3: suppression without "
                          "justification"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("suppressed.cpp:11"), std::string::npos)
      << "justified suppression leaked a finding:\n"
      << r.output;
}

TEST_F(LintTest, RuleSubsetSelection) {
  const RunResult r = run_lint(std::string("--rules R5 \"") +
                               BDDMIN_REPO_ROOT +
                               "/tests/lint_fixtures/scopes.cpp\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::vector<ParsedFinding> found = parse_findings(r.output);
  ASSERT_EQ(found.size(), 2u) << r.output;
  EXPECT_EQ(found[0].line, 42);
  EXPECT_EQ(found[1].line, 44);
  EXPECT_EQ(found[0].rule, "R5");
}

TEST_F(LintTest, R6ScopedToStressHarnessPaths) {
  // The same held-lock-across-join shape outside src/stress/ is not R6's
  // business: scopes.cpp lives at the fixture root and must stay R6-clean.
  const RunResult r = run_lint(std::string("--rules R6 \"") +
                               BDDMIN_REPO_ROOT + "/tests/lint_fixtures\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::vector<ParsedFinding> found = parse_findings(r.output);
  ASSERT_EQ(found.size(), 2u) << r.output;
  for (const ParsedFinding& f : found) {
    EXPECT_EQ(f.rule, "R6");
    EXPECT_NE(f.path.find("src/stress/"), std::string::npos) << f.path;
  }
  EXPECT_EQ(found[0].line, 14);
  EXPECT_EQ(found[1].line, 20);
}

TEST_F(LintTest, RealTreeLintsClean) {
  const std::string root(BDDMIN_REPO_ROOT);
  const RunResult r = run_lint("\"" + root + "/src\" \"" + root +
                               "/tests\" \"" + root + "/bench\" \"" + root +
                               "/examples\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
