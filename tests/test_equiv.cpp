#include "fsm/equiv.hpp"

#include <gtest/gtest.h>

#include "fsm/kiss.hpp"
#include "minimize/sibling.hpp"
#include "workload/builtin_fsms.hpp"
#include "workload/generators.hpp"

namespace bddmin::fsm {
namespace {

TEST(Equiv, MachineEqualsItself) {
  const MachineSpec counter = workload::make_counter(3);
  const EquivResult result = check_self_equivalence(counter);
  EXPECT_TRUE(result.equivalent);
  EXPECT_GT(result.iterations, 0u);
  // Self-product reaches exactly the diagonal: 8 product states.
  EXPECT_DOUBLE_EQ(result.product_states, 8.0);
}

TEST(Equiv, BinaryAndGrayCountersDiffer) {
  // Same state count, different output behaviour.
  const EquivResult result =
      check_equivalence(workload::make_counter(3), workload::make_gray_counter(3));
  EXPECT_FALSE(result.equivalent);
}

TEST(Equiv, StateRenamingPreservesEquivalence) {
  const Fsm original = workload::builtin_fsm("dk27_like");
  Fsm renamed = original;
  for (auto& t : renamed.transitions) {
    t.from = "x_" + t.from;
    t.to = "x_" + t.to;
  }
  renamed.states.clear();
  renamed.reset_state.clear();
  for (const auto& t : original.transitions) {
    renamed.add_state("x_" + t.from);
    renamed.add_state("x_" + t.to);
  }
  renamed.reset_state = "x_" + original.reset_state;
  const EquivResult result = check_equivalence(spec_from_fsm(original),
                                               spec_from_fsm(renamed));
  EXPECT_TRUE(result.equivalent);
}

TEST(Equiv, SingleOutputFlipIsDetected) {
  const Fsm good = workload::builtin_fsm("seq_detect");
  Fsm bad = good;
  // Flip the accepting output bit.
  for (auto& t : bad.transitions) {
    if (t.output == "1") {
      t.output = "0";
      break;
    }
  }
  const EquivResult result =
      check_equivalence(spec_from_fsm(good), spec_from_fsm(bad));
  EXPECT_FALSE(result.equivalent);
}

TEST(Equiv, UnreachableDifferencesDoNotMatter) {
  // Add an unreachable state with wild outputs: machines stay equivalent.
  const Fsm base = workload::builtin_fsm("elevator4");
  Fsm extended = base;
  extended.add_state("limbo");
  extended.transitions.push_back({"--", "limbo", "limbo", "1"});
  const EquivResult result =
      check_equivalence(spec_from_fsm(base), spec_from_fsm(extended));
  EXPECT_TRUE(result.equivalent);
}

TEST(Equiv, InterfaceMismatchThrows) {
  EXPECT_THROW((void)check_equivalence(workload::make_counter(2),
                                       workload::make_accumulator(3, 2)),
               std::invalid_argument);
}

TEST(Equiv, FunctionalImageAgreesWithRelational) {
  const MachineSpec spec = workload::make_random_mealy(5, 1, 2, 77);
  EquivOptions relational;
  EquivOptions functional;
  functional.image_method = ImageMethod::kFunctional;
  const EquivResult a = check_self_equivalence(spec, relational);
  const EquivResult b = check_self_equivalence(spec, functional);
  EXPECT_TRUE(a.equivalent);
  EXPECT_TRUE(b.equivalent);
  EXPECT_DOUBLE_EQ(a.product_states, b.product_states);
}

TEST(Equiv, MinimizeHookIsExercised) {
  std::size_t calls = 0;
  EquivOptions opts;
  opts.minimize = [&](Manager& m, Edge f, Edge c) {
    ++calls;
    return minimize::constrain(m, f, c);
  };
  const EquivResult result =
      check_self_equivalence(workload::make_counter(3), opts);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(calls, result.iterations);
}

TEST(Equiv, CounterexampleIsProducedAndReplays) {
  const fsm::MachineSpec bin = workload::make_counter(3);
  const fsm::MachineSpec gray = workload::make_gray_counter(3);
  const EquivResult result = check_equivalence(bin, gray);
  ASSERT_FALSE(result.equivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  const Counterexample& cex = *result.counterexample;
  EXPECT_FALSE(cex.inputs.empty());
  for (const auto& step : cex.inputs) EXPECT_EQ(step.size(), 1u);
  EXPECT_TRUE(validate_counterexample(bin, gray, cex));
}

TEST(Equiv, CounterexampleForMutatedBuiltin) {
  const fsm::Fsm good = workload::builtin_fsm("seq_detect");
  fsm::Fsm bad = good;
  for (auto& t : bad.transitions) {
    if (t.output == "1") {
      t.output = "0";
      break;
    }
  }
  const fsm::MachineSpec a = spec_from_fsm(good);
  const fsm::MachineSpec b = spec_from_fsm(bad);
  const EquivResult result = check_equivalence(a, b);
  ASSERT_FALSE(result.equivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  // The 1011 detector needs at least 4 symbols to expose the broken
  // accepting transition.
  EXPECT_GE(result.counterexample->inputs.size(), 4u);
  EXPECT_TRUE(validate_counterexample(a, b, *result.counterexample));
}

TEST(Equiv, CounterexampleSurvivesFrontierMinimizationChoices) {
  // Aggressive frontier covers (restrict) may make the BFS skip rings;
  // the extractor must still produce a valid trace.
  const fsm::MachineSpec bin = workload::make_counter(3);
  const fsm::MachineSpec gray = workload::make_gray_counter(3);
  EquivOptions opts;
  opts.minimize = [](Manager& m, Edge f, Edge c) {
    return minimize::restrict_dc(m, f, c);
  };
  opts.image_method = ImageMethod::kFunctional;
  const EquivResult result = check_equivalence(bin, gray, opts);
  ASSERT_FALSE(result.equivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE(validate_counterexample(bin, gray, *result.counterexample));
}

TEST(Equiv, NoCounterexampleWhenEquivalent) {
  const EquivResult result =
      check_self_equivalence(workload::make_shift_register(3));
  EXPECT_TRUE(result.equivalent);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(Equiv, AllBuiltinMachinesAreSelfEquivalent) {
  for (const Fsm& machine : workload::builtin_fsms()) {
    const EquivResult result = check_self_equivalence(spec_from_fsm(machine));
    EXPECT_TRUE(result.equivalent) << machine.name;
  }
}

}  // namespace
}  // namespace bddmin::fsm
