/// \file test_property_random.cpp
/// \brief Seeded randomized differential suite: every registered heuristic
/// is pinned against the truth-table oracle on hundreds of random [f, c]
/// instances over <= 6 variables.
///
/// Two properties per (instance, heuristic):
///   * cover contract (Definition 2, hard failure): f·c <= g <= f + c̄,
///     checked bitwise via the truth-table bridge.  A violation is
///     shrunk — greedily deleting care minterms, onset minterms and
///     variables while the violation persists — and reported with the
///     seed and leaf notation that reproduce it.
///   * size monotonicity |g| <= |f| (flag, don't fail): Proposition 6
///     proves every non-optimal DC-insensitive heuristic must
///     occasionally grow the result, so growth is only *counted* for the
///     paper heuristics and hard-asserted for the ones that guarantee it
///     (f_orig and the Proposition 6 `+fb` fallback wrapper).
///
/// The whole run is reproducible from one number: BDDMIN_PROPERTY_SEED
/// (default fixed), echoed on stdout; instance k uses derived seed
/// base + k through the seeded workload::random_instance plumbing.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/registry.hpp"
#include "workload/instances.hpp"

namespace bddmin {
namespace {

using minimize::Heuristic;

std::uint64_t property_seed() {
  if (const char* env = std::getenv("BDDMIN_PROPERTY_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 19940606;  // DAC'94 vintage; any value works, this one is pinned.
}

bool quick_mode() {
  const char* q = std::getenv("BDDMIN_QUICK");
  return q != nullptr && q[0] == '1';
}

/// Every registered heuristic: the paper's twelve from all_heuristics()
/// plus the scheduler, the mixed-criterion matcher and a Proposition 6
/// fallback wrapper.
std::vector<Heuristic> registered_heuristics() {
  std::vector<Heuristic> set = minimize::all_heuristics();
  set.push_back(minimize::scheduler_heuristic());
  set.push_back(minimize::mixed_heuristic());
  set.push_back(minimize::with_fallback(
      minimize::heuristic_by_name(set, "tsm_td")));
  return set;
}

/// Heuristics whose results may never exceed |f| by construction.
bool growth_forbidden(const std::string& name) {
  return name == "f_orig" || name.ends_with("+fb");
}

struct Instance {
  unsigned n = 0;
  std::uint64_t f_tt = 0;
  std::uint64_t c_tt = 0;
};

/// Leaf notation of workload::from_leaves: values of the decision tree's
/// leaves left to right, x0 topmost, left branch = 0.
std::string to_leaves(const Instance& inst) {
  std::string leaves;
  for (std::uint64_t leaf = 0; leaf < (1ull << inst.n); ++leaf) {
    std::uint64_t m = 0;
    for (unsigned v = 0; v < inst.n; ++v) {
      if ((leaf >> (inst.n - 1 - v)) & 1) m |= 1ull << v;
    }
    if (((inst.c_tt >> m) & 1) == 0) {
      leaves += 'd';
    } else {
      leaves += ((inst.f_tt >> m) & 1) ? '1' : '0';
    }
  }
  return leaves;
}

/// Does \p h violate the cover contract on \p inst?
bool violates(const Heuristic& h, const Instance& inst) {
  Manager mgr(inst.n, 12);
  const Edge f = from_tt(mgr, inst.f_tt, inst.n);
  const Edge c = from_tt(mgr, inst.c_tt, inst.n);
  const std::uint64_t g_tt = to_tt(mgr, h.run(mgr, f, c), inst.n);
  return ((g_tt ^ inst.f_tt) & inst.c_tt) != 0;
}

/// Greedy shrink: drop care minterms, then onset minterms, then trailing
/// variables neither function depends on, as long as the violation holds.
Instance shrink(const Heuristic& h, Instance inst) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint64_t m = 0; m < (1ull << inst.n); ++m) {
      const std::uint64_t bit = 1ull << m;
      if (inst.c_tt & bit) {
        Instance candidate = inst;
        candidate.c_tt &= ~bit;
        if (violates(h, candidate)) {
          inst = candidate;
          progress = true;
        }
      }
      if (inst.f_tt & bit) {
        Instance candidate = inst;
        candidate.f_tt &= ~bit;
        if (violates(h, candidate)) {
          inst = candidate;
          progress = true;
        }
      }
    }
    while (inst.n > 1) {
      // Project onto a cofactor of the top variable: either half that
      // still violates is a genuine smaller repro.
      const unsigned half = 1u << (inst.n - 1);
      const std::uint64_t lo_mask = (1ull << half) - 1;
      const Instance lo{inst.n - 1, inst.f_tt & lo_mask, inst.c_tt & lo_mask};
      const Instance hi{inst.n - 1, inst.f_tt >> half, inst.c_tt >> half};
      if (violates(h, lo)) {
        inst = lo;
      } else if (violates(h, hi)) {
        inst = hi;
      } else {
        break;
      }
      progress = true;
    }
  }
  return inst;
}

TEST(PropertyRandom, EveryHeuristicCoversEveryRandomInstance) {
  const std::uint64_t base = property_seed();
  const int rounds = quick_mode() ? 80 : 500;
  std::printf("# property seed %llu, %d rounds "
              "(override with BDDMIN_PROPERTY_SEED)\n",
              static_cast<unsigned long long>(base), rounds);
  const std::vector<Heuristic> set = registered_heuristics();
  const double densities[] = {0.05, 0.25, 0.5, 0.75, 0.95};

  std::map<std::string, int> growth;
  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round);
    const unsigned n = 2 + static_cast<unsigned>(round % 5);
    Instance inst;
    inst.n = n;
    if (round % 2 == 0) {
      // Uniform truth tables: every function equally likely.
      std::mt19937_64 rng(seed);
      inst.f_tt = rng() & tt_mask(n);
      inst.c_tt = rng() & tt_mask(n);
    } else {
      // The seeded workload generator: density-shaped instances, the
      // exact path bddmin_cli batch --seed reaches.
      Manager gen(n, 12);
      const minimize::IncSpec spec = workload::random_instance(
          gen, n, densities[(round / 2) % 5], seed);
      inst.f_tt = to_tt(gen, spec.f, n);
      inst.c_tt = to_tt(gen, spec.c, n);
    }

    Manager mgr(n, 12);
    const Edge f = from_tt(mgr, inst.f_tt, n);
    const Edge c = from_tt(mgr, inst.c_tt, n);
    const std::size_t f_size = count_nodes(mgr, f);
    for (const Heuristic& h : set) {
      const Edge g = h.run(mgr, f, c);
      const std::uint64_t g_tt = to_tt(mgr, g, n);
      if (((g_tt ^ inst.f_tt) & inst.c_tt) != 0) {
        const Instance small = shrink(h, inst);
        ADD_FAILURE() << h.name << " violated f*c <= g <= f+!c on seed "
                      << seed << " (round " << round << ")\n  original: n="
                      << inst.n << " f=0x" << std::hex << inst.f_tt << " c=0x"
                      << inst.c_tt << std::dec << "\n  shrunk:   n="
                      << small.n << " f=0x" << std::hex << small.f_tt
                      << " c=0x" << small.c_tt << std::dec << " leaves=\""
                      << to_leaves(small) << "\"";
        continue;
      }
      const std::size_t g_size = count_nodes(mgr, g);
      if (g_size > f_size) {
        ++growth[h.name];
        // Proposition 6: only the fallback-wrapped heuristics (and the
        // identity) promise |g| <= |f|; everything else merely gets
        // flagged here.
        EXPECT_FALSE(growth_forbidden(h.name))
            << h.name << " grew " << f_size << " -> " << g_size
            << " on seed " << seed;
      }
    }
  }
  for (const auto& [name, count] : growth) {
    std::printf("# growth flag: %-8s exceeded |f| on %3d/%d instances "
                "(allowed by Proposition 6)\n",
                name.c_str(), count, rounds);
  }
}

TEST(PropertyRandom, OracleCatchesABrokenHeuristic) {
  // The differential oracle must have teeth: a heuristic returning !f is
  // caught, and the shrinker hands back a violating instance no bigger
  // than the original.
  const Heuristic liar{"liar", [](Manager&, Edge f, Edge) { return !f; }};
  const Instance inst{3, 0b10110100, 0b11010110};
  ASSERT_TRUE(violates(liar, inst));
  const Instance small = shrink(liar, inst);
  EXPECT_TRUE(violates(liar, small));
  EXPECT_LE(small.n, inst.n);
  EXPECT_LE(std::popcount(small.c_tt), std::popcount(inst.c_tt));
  // !f disagrees with f on every care minterm, so one care minterm and
  // one variable survive shrinking.
  EXPECT_EQ(std::popcount(small.c_tt), 1);
  EXPECT_EQ(small.n, 1u);
}

TEST(PropertyRandom, LeafNotationRoundTripsThroughWorkload) {
  const Instance inst{2, 0b0100, 0b1101};  // leaves (x0 top): d1 01 order
  Manager mgr(2, 12);
  const minimize::IncSpec spec = workload::from_leaves(mgr, to_leaves(inst));
  EXPECT_EQ(to_tt(mgr, spec.f, 2), inst.f_tt & inst.c_tt);
  EXPECT_EQ(to_tt(mgr, spec.c, 2), inst.c_tt);
}

TEST(PropertyRandom, SeededInstancesAreReproducible) {
  Manager a(5, 12), b(5, 12);
  const minimize::IncSpec first = workload::random_instance(a, 5, 0.3, 42u);
  const minimize::IncSpec second = workload::random_instance(b, 5, 0.3, 42u);
  EXPECT_EQ(to_tt(a, first.f, 5), to_tt(b, second.f, 5));
  EXPECT_EQ(to_tt(a, first.c, 5), to_tt(b, second.c, 5));
  const minimize::IncSpec third = workload::random_instance(b, 5, 0.3, 43u);
  EXPECT_FALSE(to_tt(a, first.f, 5) == to_tt(b, third.f, 5) &&
               to_tt(a, first.c, 5) == to_tt(b, third.c, 5));
}

}  // namespace
}  // namespace bddmin
