/// \file test_stress_fsm.cpp
/// \brief The FSM stress harness itself: graph validation, deterministic
/// walks, digest reproducibility, fault detection with seeded replay, and
/// the pinned regression seeds of bugs the harness has caught.
///
/// Everything here runs with small deterministic budgets so the "stress"
/// ctest label stays well under the 30-second tier-1 budget; the heavy
/// seeded matrix lives in the CI sanitizer jobs (see docs/STRESS.md).
#include "stress/fsm.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "stress/runner.hpp"
#include "stress/workloads.hpp"

namespace bddmin::stress {
namespace {

bool quick_mode() {
  const char* q = std::getenv("BDDMIN_QUICK");
  return q != nullptr && q[0] == '1';
}

void noop_state(StressContext&) {}

StressFsm tiny_fsm() {
  FsmBuilder b("tiny", "two-state test graph");
  b.state("a", noop_state).state("b", noop_state);
  b.edge("a", "b", 3.0).edge("b", "a", 1.0).edge("b", "b", 1.0);
  b.start("a");
  return b.build();
}

// ---- fsm.hpp: seeds, graphs, builder ------------------------------------

TEST(StressFsm, DeriveSeedIsPureAndStreamsAreDisjoint) {
  EXPECT_EQ(derive_seed(1, 2, 3, 4), derive_seed(1, 2, 3, 4));
  // Distinct coordinates land in distinct streams: collisions across this
  // small grid would mean the walk and the state body share randomness.
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 4; ++t) {
    for (std::uint64_t k = 0; k < 16; ++k) {
      for (std::uint64_t salt = 0; salt < 3; ++salt) {
        seen.insert(derive_seed(42, t, k, salt));
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u * 16u * 3u);
}

TEST(StressFsm, StepRngBoundsHold) {
  StepRng rng(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
  // Same seed, same stream.
  StepRng a(99), b(99);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(StressFsm, BuilderValidatesShape) {
  const StressFsm fsm = tiny_fsm();
  EXPECT_EQ(fsm.validate(), "");
  EXPECT_EQ(fsm.state_index("b"), 1u);
  EXPECT_THROW((void)fsm.state_index("nope"), std::out_of_range);

  // Unknown endpoint names are rejected at edge() time.
  FsmBuilder bad("bad", "");
  bad.state("only", noop_state);
  EXPECT_THROW(bad.edge("only", "missing"), std::out_of_range);

  // A stateless graph cannot build.
  FsmBuilder empty("empty", "");
  EXPECT_THROW((void)empty.build(), std::invalid_argument);

  // Malformed shapes surface through validate().
  StressFsm broken = tiny_fsm();
  broken.transitions[0][0].weight = -1.0;
  EXPECT_NE(broken.validate().find("non-positive"), std::string::npos);
  broken = tiny_fsm();
  broken.transitions[1][0].target = 99;
  EXPECT_NE(broken.validate().find("out-of-range"), std::string::npos);
  broken = tiny_fsm();
  broken.start = 5;
  EXPECT_NE(broken.validate().find("start"), std::string::npos);
}

TEST(StressFsm, WeightedChoiceFollowsTheRow) {
  const StressFsm fsm = tiny_fsm();
  StepRng rng(123);
  std::size_t to_b = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const std::size_t next = fsm.next_state(0, rng);
    ASSERT_LT(next, fsm.states.size());
    // State "a" has a single successor row entry: always "b".
    EXPECT_EQ(next, 1u);
  }
  // From "b" the 1:1 split should be roughly even.
  for (int i = 0; i < kDraws; ++i) {
    if (fsm.next_state(1, rng) == 1u) ++to_b;
  }
  EXPECT_GT(to_b, kDraws / 3);
  EXPECT_LT(to_b, 2 * kDraws / 3);
}

// ---- runner.hpp: walks, digests, replay ---------------------------------

TEST(StressRunner, WalkIsAPureFunctionOfSeedAndThread) {
  const StressFsm fsm = tiny_fsm();
  const std::vector<ScheduleEntry> w1 = make_walk(fsm, 5, 0, 32);
  const std::vector<ScheduleEntry> w2 = make_walk(fsm, 5, 0, 32);
  ASSERT_EQ(w1.size(), 32u);
  EXPECT_EQ(w1.front().state, fsm.start);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].state, w2[i].state);
    EXPECT_EQ(w1[i].step, i);  // step indices are positional, never renumbered
    ASSERT_LT(w1[i].state, fsm.states.size());
  }
  // Another thread walks a different (derived) schedule.
  const std::vector<ScheduleEntry> other = make_walk(fsm, 5, 1, 32);
  bool differs = false;
  for (std::size_t i = 0; i < 32; ++i) {
    differs = differs || other[i].state != w1[i].state;
  }
  EXPECT_TRUE(differs);
}

TEST(StressRunner, BuiltinWorkloadsAllValidate) {
  const std::vector<std::string> names = workload_names();
  const std::vector<StressFsm> graphs = builtin_workloads();
  ASSERT_EQ(names.size(), graphs.size());
  ASSERT_GE(graphs.size(), 5u);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(graphs[i].validate(), "") << graphs[i].name;
    EXPECT_EQ(graphs[i].name, names[i]);
    EXPECT_EQ(workload_by_name(names[i]).name, names[i]);
  }
  EXPECT_THROW((void)workload_by_name("no-such-workload"), std::out_of_range);
}

StressOptions small_options(std::uint64_t seed, unsigned threads,
                            std::size_t steps) {
  StressOptions o;
  o.seed = seed;
  o.num_threads = threads;
  o.steps_per_thread = steps;
  return o;
}

TEST(StressRunner, DigestIsDeterministicAcrossRuns) {
  const StressFsm fsm = workload_by_name("core");
  const StressOptions o = small_options(7, 2, quick_mode() ? 10 : 24);
  const StressReport r1 = run_stress(fsm, o);
  const StressReport r2 = run_stress(fsm, o);
  EXPECT_TRUE(r1.ok()) << r1.summary();
  EXPECT_TRUE(r2.ok()) << r2.summary();
  EXPECT_EQ(r1.digest, r2.digest) << r1.summary() << "\n" << r2.summary();
  EXPECT_EQ(r1.total_steps, r2.total_steps);
  EXPECT_EQ(r1.state_runs, r2.state_runs);

  // A different seed walks different schedules and lands elsewhere.
  StressOptions other = o;
  other.seed = 8;
  const StressReport r3 = run_stress(fsm, other);
  EXPECT_TRUE(r3.ok()) << r3.summary();
  EXPECT_NE(r3.digest, r1.digest);
}

TEST(StressRunner, CleanWorkloadsStayClean) {
  // One small pass over every non-fault graph; any failure here is a real
  // harness or library bug, and its summary prints the replaying triple.
  const std::size_t steps = quick_mode() ? 6 : 12;
  for (const std::string& name : workload_names()) {
    if (name == "faults") continue;
    const StressReport r =
        run_stress(workload_by_name(name), small_options(11, 2, steps));
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.total_steps, 2 * steps);
  }
}

TEST(StressRunner, InjectedFaultIsCaughtAndReplaysSingleThreaded) {
  // The acceptance criterion end to end: the fault workload corrupts a
  // manager, an invariant hook convicts it, and the printed (seed, thread,
  // step) triple plus minimized schedule reproduce deterministically on
  // one thread.
  const StressFsm fsm = workload_by_name("faults");
  StressOptions o = small_options(3, 2, 20);
  const StressReport r = run_stress(fsm, o);
  ASSERT_FALSE(r.ok()) << "fault injector never fired in 2x20 steps";
  const StressFailure& f = r.failures.front();
  EXPECT_EQ(f.at.seed, o.seed);
  EXPECT_TRUE(f.replayed) << f.summary();
  EXPECT_NE(f.message.find("injected fault detected"), std::string::npos)
      << f.summary();
  EXPECT_NE(f.replay_command.find("--replay"), std::string::npos);
  ASSERT_FALSE(f.entries.empty());
  EXPECT_EQ(f.schedule.back(), f.state);

  // The full-prefix triple replays...
  const std::optional<StressFailure> again =
      replay(fsm, o, f.at.thread, f.at.step);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->state, f.state);

  // ...and so does the ddmin-minimized schedule, which for a single
  // injection should have shrunk well below the full prefix.
  const std::optional<StressFailure> mini =
      replay_schedule(fsm, o, f.at.thread, f.entries);
  ASSERT_TRUE(mini.has_value());
  EXPECT_EQ(mini->state, f.state);
  EXPECT_LE(f.entries.size(), f.at.step + 1);
}

TEST(StressRunner, MinimizeKeepsOriginalStepIndices) {
  const StressFsm fsm = workload_by_name("faults");
  StressOptions o = small_options(3, 2, 20);
  o.minimize_failures = true;
  const StressReport r = run_stress(fsm, o);
  ASSERT_FALSE(r.ok());
  const StressFailure& f = r.failures.front();
  std::size_t prev = 0;
  for (std::size_t i = 0; i < f.entries.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(f.entries[i].step, prev);
    }
    prev = f.entries[i].step;
    EXPECT_LE(f.entries[i].step, f.at.step);
  }
}

// ---- Pinned regression seeds --------------------------------------------

TEST(StressRegression, GovernorSeed1ReorderUnderQuotaStaysConsistent) {
  // Caught by this harness before NodeQuotaSuspension existed: sifting
  // under a hard node quota threw NodeLimit from unique_insert *after*
  // swap_adjacent_levels had flipped the order maps, tearing the table
  // ("hi child at or above parent level" structural audit findings).
  // Failing triple was (seed=1, thread=0, step=4) in reorder-under-quota.
  // Quotas now pause across the swap and re-arm at swap boundaries; this
  // exact run must stay clean forever.
  const StressReport r =
      run_stress(workload_by_name("governor"), small_options(1, 2, 30));
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.total_steps, 60u);
}

}  // namespace
}  // namespace bddmin::stress
