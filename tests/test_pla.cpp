#include "pla/pla.hpp"

#include <gtest/gtest.h>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::pla {
namespace {

const std::vector<std::uint32_t> kVars4{0, 1, 2, 3};

TEST(Pla, ParsesDirectivesAndCubes) {
  const Pla p = parse_pla(".i 2\n.o 1\n.type fd\n# comment\n1- 1\n01 -\n.e\n");
  EXPECT_EQ(p.num_inputs, 2u);
  EXPECT_EQ(p.num_outputs, 1u);
  EXPECT_EQ(p.type, "fd");
  ASSERT_EQ(p.cubes.size(), 2u);
  EXPECT_EQ(p.cubes[0].inputs, "1-");
  EXPECT_EQ(p.cubes[1].outputs, "-");
}

TEST(Pla, RejectsBadBodies) {
  EXPECT_THROW((void)parse_pla(".i 2\n.o 1\n111 1\n.e\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_pla(".i 2\n.o 1\n1x 1\n.e\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_pla(".i 2\n.o 1\n.type zz\n11 1\n.e\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_pla(".i 2\n.o 1\n.bogus\n.e\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e\n"),
               std::invalid_argument);
}

TEST(Pla, RoundTripsThroughWriter) {
  const Pla p = builtin_pla("sevenseg");
  const Pla again = parse_pla(to_pla(p), p.name);
  EXPECT_EQ(again.num_inputs, p.num_inputs);
  EXPECT_EQ(again.num_outputs, p.num_outputs);
  EXPECT_EQ(again.type, p.type);
  EXPECT_EQ(again.input_labels, p.input_labels);
  EXPECT_EQ(again.output_labels, p.output_labels);
  ASSERT_EQ(again.cubes.size(), p.cubes.size());
  for (std::size_t i = 0; i < p.cubes.size(); ++i) {
    EXPECT_EQ(again.cubes[i].inputs, p.cubes[i].inputs);
    EXPECT_EQ(again.cubes[i].outputs, p.cubes[i].outputs);
  }
}

TEST(Pla, TypeFIsFullySpecified) {
  Manager mgr(4);
  const Pla p = builtin_pla("add2");
  const auto specs = output_functions(mgr, p, kVars4);
  ASSERT_EQ(specs.size(), 3u);
  for (const auto& spec : specs) EXPECT_EQ(spec.c, kOne);
  // Check adder semantics on a few rows: inputs are a1 a0 b1 b0 at vars
  // 0..3 (leftmost char = var 0).
  std::vector<bool> a(4);
  const auto value = [&](unsigned lhs, unsigned rhs, unsigned bit) {
    a[0] = (lhs >> 1) & 1;
    a[1] = lhs & 1;
    a[2] = (rhs >> 1) & 1;
    a[3] = rhs & 1;
    return eval(mgr, specs[bit].f, a);
  };
  for (unsigned lhs = 0; lhs < 4; ++lhs) {
    for (unsigned rhs = 0; rhs < 4; ++rhs) {
      const unsigned sum = lhs + rhs;
      EXPECT_EQ(value(lhs, rhs, 0), ((sum >> 2) & 1) != 0);
      EXPECT_EQ(value(lhs, rhs, 1), ((sum >> 1) & 1) != 0);
      EXPECT_EQ(value(lhs, rhs, 2), (sum & 1) != 0);
    }
  }
}

TEST(Pla, TypeFdDontCares) {
  Manager mgr(4);
  const Pla p = builtin_pla("sevenseg");
  const auto specs = output_functions(mgr, p, kVars4);
  ASSERT_EQ(specs.size(), 7u);
  // Digits 10-15 are don't cares for every segment; 0-9 are cared for.
  std::vector<bool> a(4);
  for (unsigned d = 0; d < 16; ++d) {
    a[0] = (d >> 3) & 1;  // leftmost PLA column is b3
    a[1] = (d >> 2) & 1;
    a[2] = (d >> 1) & 1;
    a[3] = d & 1;
    for (const auto& spec : specs) {
      EXPECT_EQ(eval(mgr, spec.c, a), d < 10) << "digit " << d;
    }
  }
  // Segment g (index 6) is off for 0, 1 and 7, on for 2.
  const auto seg_g = [&](unsigned d) {
    a[0] = (d >> 3) & 1;
    a[1] = (d >> 2) & 1;
    a[2] = (d >> 1) & 1;
    a[3] = d & 1;
    return eval(mgr, specs[6].f, a);
  };
  EXPECT_FALSE(seg_g(0));
  EXPECT_FALSE(seg_g(1));
  EXPECT_TRUE(seg_g(2));
  EXPECT_FALSE(seg_g(7));
  EXPECT_TRUE(seg_g(8));
}

TEST(Pla, TypeFrUncoveredIsDontCare) {
  Manager mgr(8);
  const Pla p = builtin_pla("prio8_like");
  const std::vector<std::uint32_t> vars{0, 1, 2, 3, 4, 5, 6, 7};
  const auto specs = output_functions(mgr, p, vars);
  ASSERT_EQ(specs.size(), 4u);
  // All-zero request vector is uncovered => care set excludes it.
  std::vector<bool> a(8, false);
  for (const auto& spec : specs) EXPECT_FALSE(eval(mgr, spec.c, a));
  // Request on line 2 only: index = 2, valid = 1.
  a[2] = true;
  EXPECT_TRUE(eval(mgr, specs[0].c, a));
  EXPECT_TRUE(eval(mgr, specs[0].f, a));   // v
  EXPECT_FALSE(eval(mgr, specs[1].f, a));  // i2
  EXPECT_TRUE(eval(mgr, specs[2].f, a));   // i1
  EXPECT_FALSE(eval(mgr, specs[3].f, a));  // i0
  // Priority: line 0 beats line 2.
  a[0] = true;
  EXPECT_FALSE(eval(mgr, specs[2].f, a));  // i1 = 0 for index 0
}

TEST(Pla, OnsetWinsOverOverlappingDcRowsInFd) {
  Manager mgr(2);
  // Minterm 11 appears both as onset and as DC: onset must win.
  const Pla p = parse_pla(".i 2\n.o 1\n.type fd\n11 1\n1- -\n.e\n");
  const std::vector<std::uint32_t> vars{0, 1};
  const minimize::IncSpec spec = output_function(mgr, p, 0, vars);
  std::vector<bool> a{true, true};
  EXPECT_TRUE(eval(mgr, spec.c, a));
  EXPECT_TRUE(eval(mgr, spec.f, a));
  a[1] = false;  // minterm 10: DC only
  EXPECT_FALSE(eval(mgr, spec.c, a));
}

TEST(Pla, BuiltinSourcesAllParse) {
  for (const auto& [name, text] : builtin_pla_sources()) {
    EXPECT_NO_THROW((void)parse_pla(text, name)) << name;
  }
  EXPECT_THROW((void)builtin_pla("missing"), std::out_of_range);
}

TEST(Pla, BadLayoutArgumentsThrow) {
  Manager mgr(4);
  const Pla p = builtin_pla("add2");
  const std::vector<std::uint32_t> too_few{0, 1};
  EXPECT_THROW((void)output_function(mgr, p, 0, too_few), std::invalid_argument);
  EXPECT_THROW((void)output_function(mgr, p, 99, kVars4), std::invalid_argument);
}

}  // namespace
}  // namespace bddmin::pla
