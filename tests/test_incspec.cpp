#include "minimize/incspec.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::minimize {
namespace {

class IncSpecFixture : public ::testing::Test {
 protected:
  Manager mgr{5};
  std::mt19937_64 rng{42};

  IncSpec random_spec(unsigned n) {
    return {from_tt(mgr, rng() & tt_mask(n), n),
            from_tt(mgr, rng() & tt_mask(n), n)};
  }
};

TEST_F(IncSpecFixture, IsCoverDefinition) {
  // f = x0, care only where x1: covers are anything equal to x0 on x1=1.
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const IncSpec spec{x0, x1};
  EXPECT_TRUE(is_cover(mgr, x0, spec));
  EXPECT_TRUE(is_cover(mgr, mgr.and_(x0, x1), spec));
  EXPECT_TRUE(is_cover(mgr, mgr.or_(x0, !x1), spec));
  EXPECT_FALSE(is_cover(mgr, !x0, spec));
  EXPECT_FALSE(is_cover(mgr, kOne, spec));
}

TEST_F(IncSpecFixture, IsCoverMatchesIntervalContainment) {
  for (int round = 0; round < 50; ++round) {
    const IncSpec spec = random_spec(5);
    const Edge g = from_tt(mgr, rng() & tt_mask(5), 5);
    // Definition 2: f·c <= g <= f + !c.
    const bool interval = mgr.leq(mgr.and_(spec.f, spec.c), g) &&
                          mgr.leq(g, mgr.or_(spec.f, !spec.c));
    EXPECT_EQ(is_cover(mgr, g, spec), interval);
  }
}

TEST_F(IncSpecFixture, EveryFunctionCoversWhenCareIsEmpty) {
  const IncSpec spec{mgr.var_edge(0), kZero};
  EXPECT_TRUE(is_cover(mgr, kOne, spec));
  EXPECT_TRUE(is_cover(mgr, kZero, spec));
  EXPECT_TRUE(is_cover(mgr, mgr.var_edge(3), spec));
}

TEST_F(IncSpecFixture, ICoverRequiresCareContainmentAndAgreement) {
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const IncSpec inner{x0, mgr.and_(x1, mgr.var_edge(2))};
  const IncSpec outer{x0, x1};
  EXPECT_TRUE(is_icover(mgr, outer, inner));   // larger care, agrees
  EXPECT_FALSE(is_icover(mgr, inner, outer));  // smaller care cannot i-cover
  const IncSpec disagree{!x0, x1};
  EXPECT_FALSE(is_icover(mgr, disagree, inner));
}

TEST_F(IncSpecFixture, ICoverSemanticCheckAgainstAllCovers) {
  // Exhaustive over 3 variables: [outer] i-covers [inner] iff every cover
  // of outer covers inner.
  Manager small(3);
  std::mt19937_64 r(7);
  for (int round = 0; round < 20; ++round) {
    const IncSpec outer{from_tt(small, r() & tt_mask(3), 3),
                        from_tt(small, r() & tt_mask(3), 3)};
    const IncSpec inner{from_tt(small, r() & tt_mask(3), 3),
                        from_tt(small, r() & tt_mask(3), 3)};
    bool all_covers_cover = true;
    for (std::uint64_t g_tt = 0; g_tt < 256; ++g_tt) {
      const Edge g = from_tt(small, g_tt, 3);
      if (is_cover(small, g, outer) && !is_cover(small, g, inner)) {
        all_covers_cover = false;
        break;
      }
    }
    EXPECT_EQ(is_icover(small, outer, inner), all_covers_cover);
  }
}

TEST_F(IncSpecFixture, SameFunctionIgnoresDontCareValues) {
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const IncSpec a{x0, x1};
  const IncSpec b{mgr.and_(x0, x1), x1};  // differs only off the care set
  EXPECT_TRUE(same_function(mgr, a, b));
  EXPECT_FALSE(same_function(mgr, a, IncSpec{!x0, x1}));
  EXPECT_FALSE(same_function(mgr, a, IncSpec{x0, mgr.var_edge(2)}));
}

TEST_F(IncSpecFixture, OnsetFractionOfSimpleShapes) {
  EXPECT_DOUBLE_EQ(c_onset_fraction(mgr, {mgr.var_edge(0), kOne}), 1.0);
  EXPECT_DOUBLE_EQ(c_onset_fraction(mgr, {mgr.var_edge(0), kZero}), 0.0);
  EXPECT_DOUBLE_EQ(c_onset_fraction(mgr, {mgr.var_edge(0), mgr.var_edge(1)}),
                   0.5);
  const Edge cube = mgr.and_(mgr.var_edge(1), mgr.var_edge(2));
  EXPECT_DOUBLE_EQ(c_onset_fraction(mgr, {mgr.var_edge(0), cube}), 0.25);
}

TEST_F(IncSpecFixture, ClassifyCallFilters) {
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  EXPECT_TRUE(classify_call(mgr, {x0, kOne}).c_trivial);
  EXPECT_TRUE(classify_call(mgr, {x0, kZero}).c_trivial);
  EXPECT_TRUE(classify_call(mgr, {x0, mgr.and_(x0, x1)}).c_is_cube);
  EXPECT_TRUE(classify_call(mgr, {x0, mgr.and_(x0, x1)}).c_in_f);
  EXPECT_TRUE(classify_call(mgr, {x0, mgr.and_(!x0, mgr.xor_(x1, mgr.var_edge(2)))})
                  .c_in_not_f);
  const CallFilter open =
      classify_call(mgr, {x0, mgr.or_(x1, mgr.var_edge(2))});
  EXPECT_FALSE(open.filtered());
}

}  // namespace
}  // namespace bddmin::minimize
