/// \file test_audit.cpp
/// \brief BddAudit: clean managers pass every tier; every seeded
/// corruption class is detected by the pass that claims to cover it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <stdexcept>
#include <vector>

#include "analysis/audit.hpp"
#include "analysis/cover_audit.hpp"
#include "analysis/mutate.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "harness/env.hpp"
#include "minimize/registry.hpp"
#include "workload/instances.hpp"

namespace bddmin {
namespace {

using analysis::AuditLevel;
using analysis::AuditOptions;
using analysis::AuditReport;
using analysis::Category;
using analysis::Mutation;

/// A busy little manager: pinned random functions plus cache traffic.
std::vector<Bdd> populate(Manager& mgr, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Bdd> roots;
  for (int k = 0; k < 4; ++k) {
    roots.emplace_back(mgr,
                       workload::random_function(mgr, mgr.num_vars(), 0.4, rng));
  }
  roots.emplace_back(mgr, mgr.xor_(roots[0].edge(), roots[1].edge()));
  roots.emplace_back(mgr, mgr.ite(roots[2].edge(), roots[3].edge(),
                                  roots[0].edge()));
  return roots;
}

AuditReport full_audit(Manager& mgr) {
  AuditOptions opts;
  opts.level = AuditLevel::kCache;
  return analysis::audit_manager(mgr, opts);
}

TEST(Audit, CleanManagerPassesAllTiers) {
  Manager mgr(8);
  const std::vector<Bdd> roots = populate(mgr, 11);
  AuditReport report = full_audit(mgr);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.nodes_checked, 0u);
  EXPECT_GT(report.cache_entries_checked, 0u);
  EXPECT_GT(report.cache_replays, 0u);
}

TEST(Audit, CleanAfterGcAndSifting) {
  Manager mgr(8);
  std::vector<Bdd> roots = populate(mgr, 13);
  roots.resize(roots.size() / 2);  // orphan some functions
  mgr.garbage_collect();
  EXPECT_TRUE(full_audit(mgr).ok());
  mgr.reorder_sift();
  AuditReport report = full_audit(mgr);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Audit, StaleCacheEntriesAreLegal) {
  Manager mgr(6);
  const std::vector<Bdd> roots = populate(mgr, 17);
  mgr.clear_caches();  // every cached entry now carries an old epoch
  AuditReport report = full_audit(mgr);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.cache_replays, 0u);
}

TEST(Audit, ExactRootsAccountForEveryExternalRef) {
  Manager mgr(8);
  const std::vector<Bdd> pinned = populate(mgr, 19);
  std::vector<Edge> roots;
  for (const Bdd& b : pinned) roots.push_back(b.edge());
  AuditOptions opts;
  opts.level = AuditLevel::kRefcount;
  opts.roots = roots;
  opts.exact_roots = true;
  EXPECT_TRUE(analysis::audit_manager(mgr, opts).ok());

  // A reference the root registry does not know about is a leak.
  mgr.ref(pinned.back().edge());
  AuditReport leaked = analysis::audit_manager(mgr, opts);
  EXPECT_FALSE(leaked.ok());
  EXPECT_TRUE(leaked.has(Category::kRefCount)) << leaked.summary();
  mgr.deref(pinned.back().edge());
}

TEST(Audit, CleanAfterEveryRegisteredHeuristic) {
  for (const auto& h : minimize::all_heuristics()) {
    Manager mgr(8);
    std::mt19937_64 rng(23);
    const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.5, rng);
    const Bdd f(mgr, spec.f);
    const Bdd c(mgr, spec.c);
    const Bdd g(mgr, h.run(mgr, spec.f, spec.c));
    AuditReport report = full_audit(mgr);
    EXPECT_TRUE(report.ok()) << h.name << ":\n" << report.summary();
    AuditReport covers;
    analysis::audit_cover(mgr, f.edge(), c.edge(), g.edge(), h.name, covers);
    EXPECT_TRUE(covers.ok()) << covers.summary();
  }
}

TEST(Audit, EveryMutationClassIsDetected) {
  for (const Mutation m :
       {Mutation::kComplementFlip, Mutation::kSubtableUnlink,
        Mutation::kStaleCache, Mutation::kRefSkew, Mutation::kCountSkew}) {
    Manager mgr(8);
    const std::vector<Bdd> roots = populate(mgr, 29);
    ASSERT_TRUE(full_audit(mgr).ok());
    const analysis::MutationResult injected = analysis::inject(mgr, m);
    ASSERT_TRUE(injected.applied) << analysis::mutation_name(m);
    AuditReport report = full_audit(mgr);
    EXPECT_FALSE(report.ok()) << analysis::mutation_name(m)
                              << " went undetected";
    EXPECT_TRUE(report.has(analysis::mutation_audit_category(m)))
        << analysis::mutation_name(m) << " detected, but not by its own "
        << "category:\n" << report.summary();
  }
}

TEST(Audit, MutationSeedVariesTheTarget) {
  Manager a(8);
  Manager b(8);
  const std::vector<Bdd> ra = populate(a, 31);
  const std::vector<Bdd> rb = populate(b, 31);
  const auto da = analysis::inject(a, Mutation::kComplementFlip, 0);
  const auto db = analysis::inject(b, Mutation::kComplementFlip, 5);
  ASSERT_TRUE(da.applied && db.applied);
  EXPECT_NE(da.description, db.description);
}

TEST(Audit, CoverContractViolationsCarryWitnesses) {
  Manager mgr(4);
  const Bdd f(mgr, mgr.var_edge(0));
  // g = !f with full care: both bounds are violated.
  AuditReport report;
  analysis::audit_cover(mgr, f.edge(), kOne, !f.edge(), "bad", report);
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_TRUE(report.has(Category::kCover));
  EXPECT_NE(report.findings[0].message.find("x0="), std::string::npos)
      << report.summary();
}

TEST(Audit, HeuristicContractsPassOnRealInstances) {
  Manager mgr(6);
  std::mt19937_64 rng(37);
  const minimize::IncSpec spec = workload::random_instance(mgr, 6, 0.4, rng);
  AuditReport report = analysis::audit_heuristic_contracts(
      mgr, spec.f, spec.c, minimize::all_heuristics());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.covers_checked, minimize::all_heuristics().size());
}

TEST(Audit, CheckInvariantsWrapperCoversTheOldChecks) {
  Manager mgr(6);
  const std::vector<Bdd> roots = populate(mgr, 41);
  EXPECT_NO_THROW(mgr.check_invariants());
  analysis::inject(mgr, Mutation::kComplementFlip);
  EXPECT_THROW(mgr.check_invariants(), std::logic_error);
}

TEST(Audit, CheckInvariantsCoversTheAccountingGap) {
  // The historical check only compared live+dead to the chain totals; a
  // sum-preserving skew slipped through.  The folded-in tier-2 audit
  // recomputes both counters from actual refs.
  Manager mgr(6);
  std::vector<Bdd> roots = populate(mgr, 43);
  roots.pop_back();  // orphan a root so dead nodes definitely exist
  ASSERT_GT(mgr.dead_nodes(), 0u);  // so the skew preserves live+dead
  analysis::inject(mgr, Mutation::kCountSkew);
  EXPECT_THROW(mgr.check_invariants(), std::logic_error);
}

TEST(Audit, CheckInvariantsCoversRefSkew) {
  Manager mgr(6);
  const std::vector<Bdd> roots = populate(mgr, 47);
  ASSERT_TRUE(analysis::inject(mgr, Mutation::kRefSkew).applied);
  EXPECT_THROW(mgr.check_invariants(), std::logic_error);
}

TEST(Audit, FindingCapSuppressesButCounts) {
  Manager mgr(8);
  const std::vector<Bdd> roots = populate(mgr, 53);
  AuditOptions opts;
  opts.level = AuditLevel::kRefcount;
  opts.max_findings = 1;
  // Corrupt twice so at least two findings exist.
  analysis::inject(mgr, Mutation::kComplementFlip, 0);
  analysis::inject(mgr, Mutation::kComplementFlip, 3);
  AuditReport report = analysis::audit_manager(mgr, opts);
  EXPECT_EQ(report.findings.size(), 1u);
  EXPECT_GT(report.suppressed, 0u);
}

TEST(Audit, EnvKnobParsesAndClamps) {
  const auto with_env = [](const char* value) {
    if (value == nullptr) {
      unsetenv("BDDMIN_AUDIT_LEVEL");
    } else {
      setenv("BDDMIN_AUDIT_LEVEL", value, 1);
    }
    return analysis::audit_level_from_env();
  };
  EXPECT_EQ(with_env(nullptr), AuditLevel::kOff);
  EXPECT_EQ(with_env("0"), AuditLevel::kOff);
  EXPECT_EQ(with_env("2"), AuditLevel::kRefcount);
  EXPECT_EQ(with_env("4"), AuditLevel::kCover);
  EXPECT_EQ(with_env("99"), AuditLevel::kCover);
  // Malformed values are a hard error (see harness/env.hpp), not a silent
  // audit-nothing default.
  EXPECT_THROW(static_cast<void>(with_env("banana")), harness::EnvError);
  unsetenv("BDDMIN_AUDIT_LEVEL");
}

TEST(Audit, MutationNamesRoundTrip) {
  for (const Mutation m :
       {Mutation::kComplementFlip, Mutation::kSubtableUnlink,
        Mutation::kStaleCache, Mutation::kRefSkew, Mutation::kCountSkew}) {
    EXPECT_EQ(analysis::mutation_from_name(analysis::mutation_name(m)), m);
  }
  EXPECT_THROW(static_cast<void>(analysis::mutation_from_name("nope")),
               std::invalid_argument);
}

}  // namespace
}  // namespace bddmin
