#include "minimize/matching.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/truth_table.hpp"

namespace bddmin::minimize {
namespace {

/// Random incompletely specified functions used for relation-property
/// checks (Table 1 of the paper).
class MatchingFixture : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Manager mgr{4};
  std::mt19937_64 rng{GetParam()};

  IncSpec random_spec() {
    return {from_tt(mgr, rng() & tt_mask(4), 4),
            from_tt(mgr, rng() & tt_mask(4), 4)};
  }
};

TEST_P(MatchingFixture, OsdmMatchesIffCareEmpty) {
  for (int round = 0; round < 40; ++round) {
    const IncSpec a = random_spec();
    const IncSpec b = random_spec();
    EXPECT_EQ(matches(mgr, Criterion::kOsdm, a, b), a.c == kZero);
  }
}

TEST_P(MatchingFixture, StrengthHierarchyOsdmOsmTsm) {
  for (int round = 0; round < 80; ++round) {
    const IncSpec a = random_spec();
    const IncSpec b = random_spec();
    if (matches(mgr, Criterion::kOsdm, a, b)) {
      EXPECT_TRUE(matches(mgr, Criterion::kOsm, a, b));
    }
    if (matches(mgr, Criterion::kOsm, a, b)) {
      EXPECT_TRUE(matches(mgr, Criterion::kTsm, a, b));
    }
  }
}

// Table 1 row "osdm": not reflexive (unless c == 0), not symmetric,
// transitive.
TEST_P(MatchingFixture, Table1OsdmProperties) {
  for (int round = 0; round < 60; ++round) {
    const IncSpec a = random_spec();
    const IncSpec b = random_spec();
    const IncSpec c = random_spec();
    if (a.c != kZero) {
      EXPECT_FALSE(matches(mgr, Criterion::kOsdm, a, a));
    }
    if (matches(mgr, Criterion::kOsdm, a, b) &&
        matches(mgr, Criterion::kOsdm, b, c)) {
      EXPECT_TRUE(matches(mgr, Criterion::kOsdm, a, c));
    }
  }
}

// Table 1 row "osm": reflexive, not symmetric, transitive.
TEST_P(MatchingFixture, Table1OsmProperties) {
  for (int round = 0; round < 60; ++round) {
    const IncSpec a = random_spec();
    const IncSpec b = random_spec();
    const IncSpec c = random_spec();
    EXPECT_TRUE(matches(mgr, Criterion::kOsm, a, a));
    if (matches(mgr, Criterion::kOsm, a, b) &&
        matches(mgr, Criterion::kOsm, b, c)) {
      EXPECT_TRUE(matches(mgr, Criterion::kOsm, a, c));
    }
  }
}

// Table 1 row "tsm": reflexive, symmetric, NOT transitive.
TEST_P(MatchingFixture, Table1TsmProperties) {
  for (int round = 0; round < 60; ++round) {
    const IncSpec a = random_spec();
    const IncSpec b = random_spec();
    EXPECT_TRUE(matches(mgr, Criterion::kTsm, a, a));
    EXPECT_EQ(matches(mgr, Criterion::kTsm, a, b),
              matches(mgr, Criterion::kTsm, b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingFixture, ::testing::Values(1, 2, 3, 4));

TEST(Matching, OsdmAndOsmAreNotSymmetric) {
  Manager mgr(2);
  const Edge x = mgr.var_edge(0);
  const IncSpec free{x, kZero};
  const IncSpec bound{!x, kOne};
  EXPECT_TRUE(matches(mgr, Criterion::kOsdm, free, bound));
  EXPECT_FALSE(matches(mgr, Criterion::kOsdm, bound, free));
  EXPECT_TRUE(matches(mgr, Criterion::kOsm, free, bound));
  EXPECT_FALSE(matches(mgr, Criterion::kOsm, bound, free));
}

TEST(Matching, TsmIsNotTransitiveCounterexample) {
  // [0, !x], [anything, 0], [1, !x]: both outer functions tsm-match the
  // middle all-DC one, but 0 and 1 disagree on the shared care set !x.
  Manager mgr(2);
  const Edge x = mgr.var_edge(0);
  const IncSpec a{kZero, !x};
  const IncSpec b{kZero, kZero};
  const IncSpec c{kOne, !x};
  EXPECT_TRUE(matches(mgr, Criterion::kTsm, a, b));
  EXPECT_TRUE(matches(mgr, Criterion::kTsm, b, c));
  EXPECT_FALSE(matches(mgr, Criterion::kTsm, a, c));
}

TEST(Matching, MatchResultIsCommonICover) {
  Manager mgr(4);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 200; ++round) {
    const IncSpec a{from_tt(mgr, rng() & tt_mask(4), 4),
                    from_tt(mgr, rng() & tt_mask(4), 4)};
    const IncSpec b{from_tt(mgr, rng() & tt_mask(4), 4),
                    from_tt(mgr, rng() & tt_mask(4), 4)};
    for (const Criterion crit :
         {Criterion::kOsdm, Criterion::kOsm, Criterion::kTsm}) {
      if (!matches(mgr, crit, a, b)) continue;
      const IncSpec m = match_result(mgr, crit, a, b);
      EXPECT_TRUE(is_icover(mgr, m, a)) << to_string(crit);
      EXPECT_TRUE(is_icover(mgr, m, b)) << to_string(crit);
    }
  }
}

TEST(Matching, MatchResultKeepsMaximalFreedomForOneSided) {
  // osm keeps the second function untouched: its entire DC set remains.
  Manager mgr(3);
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const IncSpec a{x0, mgr.and_(x1, x0)};
  const IncSpec b{x0, x1};
  ASSERT_TRUE(matches(mgr, Criterion::kOsm, a, b));
  const IncSpec m = match_result(mgr, Criterion::kOsm, a, b);
  EXPECT_EQ(m.f, b.f);
  EXPECT_EQ(m.c, b.c);
}

TEST(Matching, TsmResultCareIsUnionAndAgreesOnBothSides) {
  Manager mgr(3);
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const Edge x2 = mgr.var_edge(2);
  const IncSpec a{x0, x1};
  const IncSpec b{x0, x2};
  ASSERT_TRUE(matches(mgr, Criterion::kTsm, a, b));
  const IncSpec m = match_result(mgr, Criterion::kTsm, a, b);
  EXPECT_EQ(m.c, mgr.or_(x1, x2));
  EXPECT_EQ(mgr.and_(mgr.xor_(m.f, x0), m.c), kZero);
}

TEST(Matching, SiblingMatchTriesBothDirectionsForOneSided) {
  Manager mgr(3);
  const Edge x1 = mgr.var_edge(1);
  // then side fully DC, else side constrained: match must be found with
  // the i-cover being the else side.
  const IncSpec then_spec{kOne, kZero};
  const IncSpec else_spec{x1, kOne};
  const auto m = sibling_match(mgr, Criterion::kOsdm, false, then_spec, else_spec);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->f, x1);
  EXPECT_EQ(m->c, kOne);
  // And the mirrored arrangement.
  const auto m2 = sibling_match(mgr, Criterion::kOsdm, false, else_spec, then_spec);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->f, x1);
}

TEST(Matching, SiblingMatchComplement) {
  Manager mgr(3);
  const Edge x1 = mgr.var_edge(1);
  // then = x1, else = !x1 on full care: only a complement match works.
  const IncSpec then_spec{x1, kOne};
  const IncSpec else_spec{!x1, kOne};
  EXPECT_FALSE(
      sibling_match(mgr, Criterion::kTsm, false, then_spec, else_spec));
  const auto m = sibling_match(mgr, Criterion::kTsm, true, then_spec, else_spec);
  ASSERT_TRUE(m.has_value());
  // A cover g of m gives then = g and else = !g: here g must equal x1.
  EXPECT_EQ(m->f, x1);
  EXPECT_EQ(m->c, kOne);
}

TEST(Matching, SiblingMatchFailsWhenCareValuesConflict) {
  Manager mgr(3);
  const IncSpec a{kOne, kOne};
  const IncSpec b{kZero, kOne};
  EXPECT_FALSE(sibling_match(mgr, Criterion::kOsdm, false, a, b));
  EXPECT_FALSE(sibling_match(mgr, Criterion::kOsm, false, a, b));
  EXPECT_FALSE(sibling_match(mgr, Criterion::kTsm, false, a, b));
}

TEST(Matching, ToStringNames) {
  EXPECT_EQ(to_string(Criterion::kOsdm), "osdm");
  EXPECT_EQ(to_string(Criterion::kOsm), "osm");
  EXPECT_EQ(to_string(Criterion::kTsm), "tsm");
}

}  // namespace
}  // namespace bddmin::minimize
