#include "minimize/exact.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::minimize {
namespace {

TEST(Exact, FullySpecifiedInstanceReturnsF) {
  Manager mgr(4);
  std::mt19937_64 rng(1);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const auto result = exact_minimum_tt(f_tt, tt_mask(4), 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->cover_tt, f_tt);
    EXPECT_EQ(result->size, tt_bdd_size(f_tt, 4));
  }
}

TEST(Exact, AllDontCareGivesConstant) {
  const auto result = exact_minimum_tt(0b0110, 0, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size, 1u);
}

TEST(Exact, WitnessIsACoverOfMinimumSize) {
  Manager mgr(4);
  std::mt19937_64 rng(3);
  for (int round = 0; round < 15; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const std::uint64_t c_tt = (rng() | rng()) & tt_mask(4);
    const auto result = exact_minimum_tt(f_tt, c_tt, 4);
    ASSERT_TRUE(result.has_value());
    // Witness covers: agrees with f on c.
    EXPECT_EQ((result->cover_tt ^ f_tt) & c_tt, 0u);
    EXPECT_EQ(tt_bdd_size(result->cover_tt, 4), result->size);
    // No cover is smaller (re-verified by brute force on 3-var shrink).
  }
}

TEST(Exact, MatchesBruteForceOnThreeVariables) {
  Manager mgr(3);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(3);
    const std::uint64_t c_tt = rng() & tt_mask(3);
    const auto result = exact_minimum_tt(f_tt, c_tt, 3);
    ASSERT_TRUE(result.has_value());
    std::size_t brute = SIZE_MAX;
    for (std::uint64_t g = 0; g < 256; ++g) {
      if (((g ^ f_tt) & c_tt) != 0) continue;
      brute = std::min(brute, tt_bdd_size(g, 3));
    }
    EXPECT_EQ(result->size, brute);
  }
}

TEST(Exact, RespectsDcBudget) {
  // 8 DC bits > budget of 4: must decline.
  EXPECT_FALSE(exact_minimum_tt(0, 0, 3, 4).has_value());
  EXPECT_TRUE(exact_minimum_tt(0, 0, 2, 4).has_value());
}

TEST(Exact, EdgeWrapperAgreesWithTtVersion) {
  Manager mgr(4);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const std::uint64_t c_tt = (rng() | rng()) & tt_mask(4);
    const auto via_edge = exact_minimum(mgr, from_tt(mgr, f_tt, 4),
                                        from_tt(mgr, c_tt, 4), 4);
    const auto via_tt = exact_minimum_tt(f_tt, c_tt, 4);
    ASSERT_TRUE(via_edge.has_value());
    ASSERT_TRUE(via_tt.has_value());
    EXPECT_EQ(via_edge->size, via_tt->size);
  }
}

TEST(Exact, MinimumIsMonotonicInCareSet) {
  // Shrinking the care set can only shrink (or keep) the minimum size.
  Manager mgr(4);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 15; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const std::uint64_t big_c = (rng() | rng()) & tt_mask(4);
    const std::uint64_t small_c = big_c & rng();
    const auto big = exact_minimum_tt(f_tt, big_c, 4);
    const auto small = exact_minimum_tt(f_tt, small_c, 4, 16);
    if (!big || !small) continue;
    EXPECT_LE(small->size, big->size);
  }
}

}  // namespace
}  // namespace bddmin::minimize
