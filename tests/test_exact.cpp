#include "minimize/exact.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin::minimize {
namespace {

TEST(Exact, FullySpecifiedInstanceReturnsF) {
  Manager mgr(4);
  std::mt19937_64 rng(1);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const auto result = exact_minimum_tt(f_tt, tt_mask(4), 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->cover_tt, f_tt);
    EXPECT_EQ(result->size, tt_bdd_size(f_tt, 4));
  }
}

TEST(Exact, AllDontCareGivesConstant) {
  const auto result = exact_minimum_tt(0b0110, 0, 2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size, 1u);
}

TEST(Exact, WitnessIsACoverOfMinimumSize) {
  Manager mgr(4);
  std::mt19937_64 rng(3);
  for (int round = 0; round < 15; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const std::uint64_t c_tt = (rng() | rng()) & tt_mask(4);
    const auto result = exact_minimum_tt(f_tt, c_tt, 4);
    ASSERT_TRUE(result.has_value());
    // Witness covers: agrees with f on c.
    EXPECT_EQ((result->cover_tt ^ f_tt) & c_tt, 0u);
    EXPECT_EQ(tt_bdd_size(result->cover_tt, 4), result->size);
    // No cover is smaller (re-verified by brute force on 3-var shrink).
  }
}

TEST(Exact, MatchesBruteForceOnThreeVariables) {
  Manager mgr(3);
  std::mt19937_64 rng(5);
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(3);
    const std::uint64_t c_tt = rng() & tt_mask(3);
    const auto result = exact_minimum_tt(f_tt, c_tt, 3);
    ASSERT_TRUE(result.has_value());
    std::size_t brute = SIZE_MAX;
    for (std::uint64_t g = 0; g < 256; ++g) {
      if (((g ^ f_tt) & c_tt) != 0) continue;
      brute = std::min(brute, tt_bdd_size(g, 3));
    }
    EXPECT_EQ(result->size, brute);
  }
}

TEST(Exact, MatchesBruteForceOnEveryThreeVariablePair) {
  // The complete 3-variable space.  exact_minimum_tt(f, c) can only
  // depend on (f·c, c) — off-care bits of f are irrelevant — so
  // iterating c over all 256 care sets and the onset over all submasks
  // of c covers every semantically distinct [f, c] pair: 3^8 = 6561
  // instances.  Each is cross-checked against brute-force enumeration
  // of all 256 candidate covers.
  std::array<std::size_t, 256> size_of{};
  for (std::uint64_t g = 0; g < 256; ++g) {
    size_of[g] = tt_bdd_size(g, 3);
  }
  const char* quick = std::getenv("BDDMIN_QUICK");
  const std::uint64_t stride =
      (quick != nullptr && quick[0] == '1') ? 7 : 1;  // coprime with 256
  for (std::uint64_t c_tt = 0; c_tt < 256; c_tt += stride) {
    // Classic submask walk: onset ranges over every subset of the care set.
    std::uint64_t onset = c_tt;
    while (true) {
      const auto result = exact_minimum_tt(onset, c_tt, 3);
      ASSERT_TRUE(result.has_value());
      // Witness really is a cover of the reported size.
      ASSERT_EQ((result->cover_tt ^ onset) & c_tt, 0u)
          << "onset=" << onset << " c=" << c_tt;
      ASSERT_EQ(size_of[result->cover_tt], result->size)
          << "onset=" << onset << " c=" << c_tt;
      std::size_t brute = SIZE_MAX;
      for (std::uint64_t g = 0; g < 256; ++g) {
        if (((g ^ onset) & c_tt) != 0) continue;
        brute = std::min(brute, size_of[g]);
      }
      ASSERT_EQ(result->size, brute) << "onset=" << onset << " c=" << c_tt;
      // Off-care onset bits must not change the answer.
      const std::uint64_t noisy = onset | (~c_tt & 0xA5ull);
      const auto renamed = exact_minimum_tt(noisy, c_tt, 3);
      ASSERT_TRUE(renamed.has_value());
      ASSERT_EQ(renamed->size, result->size)
          << "onset=" << onset << " c=" << c_tt;
      if (onset == 0) break;
      onset = (onset - 1) & c_tt;
    }
  }
}

TEST(Exact, RespectsDcBudget) {
  // 8 DC bits > budget of 4: must decline.
  EXPECT_FALSE(exact_minimum_tt(0, 0, 3, 4).has_value());
  EXPECT_TRUE(exact_minimum_tt(0, 0, 2, 4).has_value());
}

TEST(Exact, EdgeWrapperAgreesWithTtVersion) {
  Manager mgr(4);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const std::uint64_t c_tt = (rng() | rng()) & tt_mask(4);
    const auto via_edge = exact_minimum(mgr, from_tt(mgr, f_tt, 4),
                                        from_tt(mgr, c_tt, 4), 4);
    const auto via_tt = exact_minimum_tt(f_tt, c_tt, 4);
    ASSERT_TRUE(via_edge.has_value());
    ASSERT_TRUE(via_tt.has_value());
    EXPECT_EQ(via_edge->size, via_tt->size);
  }
}

TEST(Exact, MinimumIsMonotonicInCareSet) {
  // Shrinking the care set can only shrink (or keep) the minimum size.
  Manager mgr(4);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 15; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    const std::uint64_t big_c = (rng() | rng()) & tt_mask(4);
    const std::uint64_t small_c = big_c & rng();
    const auto big = exact_minimum_tt(f_tt, big_c, 4);
    const auto small = exact_minimum_tt(f_tt, small_c, 4, 16);
    if (!big || !small) continue;
    EXPECT_LE(small->size, big->size);
  }
}

}  // namespace
}  // namespace bddmin::minimize
