#include "minimize/registry.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "workload/instances.hpp"

namespace bddmin::minimize {
namespace {

TEST(Registry, PaperHeuristicsAreTheNineOfSection4) {
  const auto set = paper_heuristics();
  ASSERT_EQ(set.size(), 9u);
  const std::vector<std::string> expected{"const",  "restr",  "osm_td",
                                          "osm_nv", "osm_cp", "osm_bt",
                                          "tsm_td", "tsm_cp", "opt_lv"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(set[i].name, expected[i]);
  }
}

TEST(Registry, AllHeuristicsAddsTheTrivialBounds) {
  const auto set = all_heuristics();
  ASSERT_EQ(set.size(), 12u);
  EXPECT_NO_THROW((void)heuristic_by_name(set, "f_orig"));
  EXPECT_NO_THROW((void)heuristic_by_name(set, "f_and_c"));
  EXPECT_NO_THROW((void)heuristic_by_name(set, "f_or_nc"));
  EXPECT_THROW((void)heuristic_by_name(set, "nonsense"), std::out_of_range);
}

TEST(Registry, EveryEntryReturnsACover) {
  Manager mgr(5);
  std::mt19937_64 rng(2);
  const auto set = all_heuristics();
  for (int round = 0; round < 10; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    for (const Heuristic& h : set) {
      EXPECT_TRUE(is_cover(mgr, h.run(mgr, f, c), {f, c})) << h.name;
    }
  }
}

TEST(Registry, TrivialHeuristicsComputeTheBoundsExactly) {
  Manager mgr(4);
  const auto set = all_heuristics();
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(1));
  const Edge c = mgr.var_edge(2);
  EXPECT_EQ(heuristic_by_name(set, "f_orig").run(mgr, f, c), f);
  EXPECT_EQ(heuristic_by_name(set, "f_and_c").run(mgr, f, c), mgr.and_(f, c));
  EXPECT_EQ(heuristic_by_name(set, "f_or_nc").run(mgr, f, c), mgr.or_(f, !c));
}

TEST(Registry, SchedulerHeuristicIsACoverProducer) {
  Manager mgr(5);
  std::mt19937_64 rng(4);
  const Heuristic sched = scheduler_heuristic();
  EXPECT_EQ(sched.name, "sched");
  for (int round = 0; round < 10; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    EXPECT_TRUE(is_cover(mgr, sched.run(mgr, f, c), {f, c}));
  }
}

TEST(Registry, MixedCriterionCoversAndDegenerates) {
  Manager mgr(6);
  std::mt19937_64 rng(8);
  for (int round = 0; round < 40; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 6);
    for (const std::uint32_t switch_level : {0u, 2u, 4u, 99u}) {
      MixedOptions opts;
      opts.switch_level = switch_level;
      EXPECT_TRUE(is_cover(mgr, mixed_td(mgr, opts, f, c), {f, c}));
    }
    // Degenerate switch levels reduce to the single-criterion matchers.
    MixedOptions all_lower;
    all_lower.switch_level = 0;
    EXPECT_EQ(mixed_td(mgr, all_lower, f, c),
              generic_td(mgr, {Criterion::kTsm, true, true}, f, c));
    MixedOptions all_upper;
    all_upper.switch_level = 99;
    EXPECT_EQ(mixed_td(mgr, all_upper, f, c), osm_bt(mgr, f, c));
  }
}

TEST(Registry, FallbackNeverReturnsLargerThanF) {
  Manager mgr(6);
  std::mt19937_64 rng(10);
  const Heuristic guarded = with_fallback(
      {"const", [](Manager& m, Edge f, Edge c) { return constrain(m, f, c); }});
  EXPECT_EQ(guarded.name, "const+fb");
  for (int round = 0; round < 30; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 6);
    const Edge g = guarded.run(mgr, f, c);
    EXPECT_TRUE(is_cover(mgr, g, {f, c}));
    EXPECT_LE(count_nodes(mgr, g), count_nodes(mgr, f));
  }
}

TEST(Registry, FallbackEscapesProposition6Instance) {
  // f = (01 01) = x1 with care (d1 01): constrain inflates to 3 nodes;
  // the fallback keeps f (the Prop. 6 remedy).
  Manager mgr(2);
  const auto e1 = workload::from_leaves(mgr, "01 01");
  const auto care = workload::from_leaves(mgr, "d1 01");
  const Heuristic guarded = with_fallback(
      {"const", [](Manager& m, Edge f, Edge c) { return constrain(m, f, c); }});
  EXPECT_GT(count_nodes(mgr, constrain(mgr, e1.f, care.c)), 2u);
  EXPECT_EQ(guarded.run(mgr, e1.f, care.c), e1.f);
}

TEST(Registry, LevelOptionsArePluggedThrough) {
  // A capped opt_lv must still return covers (and is allowed to differ).
  Manager mgr(5);
  std::mt19937_64 rng(6);
  LevelOptions capped;
  capped.max_set_size = 2;
  const auto set = paper_heuristics(capped);
  const Heuristic& lv = heuristic_by_name(set, "opt_lv");
  for (int round = 0; round < 5; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    EXPECT_TRUE(is_cover(mgr, lv.run(mgr, f, c), {f, c}));
  }
}

}  // namespace
}  // namespace bddmin::minimize
