#include "minimize/schedule.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/exact.hpp"

namespace bddmin::minimize {
namespace {

class ScheduleFixture : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFixture, AlwaysReturnsACover) {
  Manager mgr(6);
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
    std::uint64_t c_tt = rng() & tt_mask(6);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 6);
    for (const unsigned window : {1u, 2u, 4u}) {
      for (const unsigned stop : {1u, 3u, 8u}) {
        ScheduleOptions opts;
        opts.window_size = window;
        opts.stop_top_down = stop;
        opts.use_level_steps = (round % 2) == 0;
        const Edge g = scheduled_minimize(mgr, opts, f, c);
        EXPECT_TRUE(is_cover(mgr, g, {f, c}))
            << "window " << window << " stop " << stop;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFixture, ::testing::Values(2, 4));

TEST(Schedule, LargeStopTopDownDegeneratesToConstrain) {
  Manager mgr(5);
  std::mt19937_64 rng(8);
  ScheduleOptions opts;
  opts.stop_top_down = 100;  // bail out immediately
  for (int round = 0; round < 20; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    EXPECT_EQ(scheduled_minimize(mgr, opts, f, c), constrain(mgr, f, c));
  }
}

TEST(Schedule, TrivialCareSets) {
  Manager mgr(4);
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(3));
  EXPECT_EQ(scheduled_minimize(mgr, {}, f, kOne), f);
  EXPECT_EQ(scheduled_minimize(mgr, {}, f, kZero), f);
}

TEST(Schedule, NeverWorseThanExactMinimumAndUsuallyCompetitive) {
  Manager mgr(4);
  std::mt19937_64 rng(12);
  std::size_t sched_total = 0;
  std::size_t constrain_total = 0;
  std::size_t exact_total = 0;
  for (int round = 0; round < 12; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    std::uint64_t c_tt = (rng() | rng()) & tt_mask(4);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 4);
    ScheduleOptions opts;
    opts.window_size = 2;
    opts.stop_top_down = 2;
    const Edge g = scheduled_minimize(mgr, opts, f, c);
    ASSERT_TRUE(is_cover(mgr, g, {f, c}));
    const auto exact = exact_minimum(mgr, f, c, 4);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(count_nodes(mgr, g), exact->size);
    sched_total += count_nodes(mgr, g);
    constrain_total += count_nodes(mgr, constrain(mgr, f, c));
    exact_total += exact->size;
  }
  // The schedule applies strictly more freedom-preserving matching than
  // plain constrain, so cumulatively it should not lose to it.
  EXPECT_LE(sched_total, constrain_total);
  EXPECT_GE(sched_total, exact_total);
}

TEST(Schedule, WindowSizeZeroIsClampedNotInfinite) {
  Manager mgr(4);
  ScheduleOptions opts;
  opts.window_size = 0;
  const Edge f = mgr.and_(mgr.var_edge(0), mgr.var_edge(1));
  const Edge c = mgr.or_(mgr.var_edge(2), mgr.var_edge(3));
  EXPECT_TRUE(is_cover(mgr, scheduled_minimize(mgr, opts, f, c), {f, c}));
}

}  // namespace
}  // namespace bddmin::minimize
