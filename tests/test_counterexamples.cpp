/// Section 3.2's counterexamples, in the paper's leaf notation.  Each
/// triple is (instance, size the heuristic finds, size of a minimum
/// cover); they also demonstrate that no heuristic dominates another.
#include <gtest/gtest.h>

#include "bdd/ops.hpp"
#include "minimize/exact.hpp"
#include "minimize/sibling.hpp"
#include "workload/instances.hpp"

namespace bddmin::minimize {
namespace {

using workload::from_leaves;

std::size_t exact_size(Manager& mgr, const IncSpec& spec, unsigned n) {
  const auto result = exact_minimum(mgr, spec.f, spec.c, n);
  EXPECT_TRUE(result.has_value());
  return result->size;
}

TEST(Counterexamples, LeafNotationMatchesFigure1) {
  // Figure 1: f = (x1 + x2)·x3 with leaves 01 01 01 11, don't cares at
  // leaves 0,1 (x1=0, x2=0) and leaf 6 (110).
  Manager mgr(3);
  const IncSpec spec = from_leaves(mgr, "dd 01 01 d1");
  // Care points: f(0,1,1)=1 f(0,1,0)=0 f(1,0,1)=1 f(1,0,0)=0 f(1,1,1)=1.
  std::vector<bool> a(3, false);
  const auto value = [&](bool x1, bool x2, bool x3) {
    a[0] = x1;
    a[1] = x2;
    a[2] = x3;
    return eval(mgr, spec.f, a);
  };
  const auto cares = [&](bool x1, bool x2, bool x3) {
    a[0] = x1;
    a[1] = x2;
    a[2] = x3;
    return eval(mgr, spec.c, a);
  };
  EXPECT_FALSE(cares(false, false, false));
  EXPECT_FALSE(cares(false, false, true));
  EXPECT_FALSE(cares(true, true, false));
  EXPECT_TRUE(cares(false, true, true));
  EXPECT_TRUE(value(false, true, true));
  EXPECT_FALSE(value(false, true, false));
  EXPECT_TRUE(value(true, true, true));
}

TEST(Counterexamples, Figure1MinimumIsTheSingleLiteral) {
  // Figure 1's instance: the care values coincide with x3 everywhere, so
  // the minimum cover is the 2-node BDD for x3 (the paper's Figure 1e/f
  // show minimum solutions; 1d is a suboptimal one).
  Manager mgr(3);
  const IncSpec spec = from_leaves(mgr, "dd 01 01 d1");
  const auto exact = exact_minimum(mgr, spec.f, spec.c, 3);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size, 2u);
  // restrict and the one-/two-sided matchers find the minimum; constrain
  // produces a suboptimal cover (the Figure 1d situation).
  EXPECT_EQ(osm_td(mgr, spec.f, spec.c), mgr.var_edge(2));
  EXPECT_EQ(tsm_td(mgr, spec.f, spec.c), mgr.var_edge(2));
  EXPECT_EQ(restrict_dc(mgr, spec.f, spec.c), mgr.var_edge(2));
  const Edge via_constrain = constrain(mgr, spec.f, spec.c);
  EXPECT_TRUE(is_cover(mgr, via_constrain, spec));
  EXPECT_GT(count_nodes(mgr, via_constrain), exact->size);
}

TEST(Counterexamples, Example1ConstrainIsSuboptimal) {
  // (d1 01): constrain -> (11 01) size 3; minimum (01 01) = x2, size 2.
  Manager mgr(2);
  const IncSpec spec = from_leaves(mgr, "d1 01");
  const Edge got = constrain(mgr, spec.f, spec.c);
  EXPECT_TRUE(is_cover(mgr, got, spec));
  EXPECT_EQ(count_nodes(mgr, got), 3u);
  EXPECT_EQ(got, from_leaves(mgr, "11 01").f);
  EXPECT_EQ(exact_size(mgr, spec, 2), 2u);
  // osm_td and tsm_td find a minimum on this example.
  EXPECT_EQ(count_nodes(mgr, osm_td(mgr, spec.f, spec.c)), 2u);
  EXPECT_EQ(count_nodes(mgr, tsm_td(mgr, spec.f, spec.c)), 2u);
}

TEST(Counterexamples, Example2OsmTdIsSuboptimal) {
  // (d1 01 1d 01): osm_td -> (01 01 11 01) size 4;
  // minimum (11 01 11 01) size 3.
  Manager mgr(3);
  const IncSpec spec = from_leaves(mgr, "d1 01 1d 01");
  const Edge got = osm_td(mgr, spec.f, spec.c);
  EXPECT_TRUE(is_cover(mgr, got, spec));
  EXPECT_EQ(got, from_leaves(mgr, "01 01 11 01").f);
  EXPECT_EQ(count_nodes(mgr, got), 4u);
  const Edge best = from_leaves(mgr, "11 01 11 01").f;
  EXPECT_TRUE(is_cover(mgr, best, spec));
  EXPECT_EQ(count_nodes(mgr, best), 3u);
  EXPECT_EQ(exact_size(mgr, spec, 3), 3u);
  // constrain and tsm_td find a minimum here (paper's remark).
  EXPECT_EQ(count_nodes(mgr, constrain(mgr, spec.f, spec.c)), 3u);
  EXPECT_EQ(count_nodes(mgr, tsm_td(mgr, spec.f, spec.c)), 3u);
}

TEST(Counterexamples, Example3TsmTdIsSuboptimal) {
  // (1d d1 d0 0d): tsm_td -> (10 01 10 01) = xnor(x1,x2), size 3 with
  // complement edges; minimum (11 11 00 00) = !x0, size 2.
  Manager mgr(3);
  const IncSpec spec = from_leaves(mgr, "1d d1 d0 0d");
  const Edge got = tsm_td(mgr, spec.f, spec.c);
  EXPECT_TRUE(is_cover(mgr, got, spec));
  EXPECT_EQ(got, from_leaves(mgr, "10 01 10 01").f);
  EXPECT_EQ(count_nodes(mgr, got), 3u);
  const Edge best = from_leaves(mgr, "11 11 00 00").f;
  EXPECT_TRUE(is_cover(mgr, best, spec));
  EXPECT_EQ(count_nodes(mgr, best), 2u);
  EXPECT_EQ(exact_size(mgr, spec, 3), 2u);
  // constrain and osm_td find a minimum here (paper's remark).
  EXPECT_EQ(count_nodes(mgr, constrain(mgr, spec.f, spec.c)), 2u);
  EXPECT_EQ(count_nodes(mgr, osm_td(mgr, spec.f, spec.c)), 2u);
}

TEST(Counterexamples, NoHeuristicDominatesAnother) {
  // Across examples 1-3, each of constrain/osm_td/tsm_td wins somewhere
  // and loses somewhere.
  Manager mgr(3);
  const IncSpec e1 = from_leaves(mgr, "d1 01");
  const IncSpec e2 = from_leaves(mgr, "d1 01 1d 01");
  const IncSpec e3 = from_leaves(mgr, "1d d1 d0 0d");
  const auto size = [&](Edge (*h)(Manager&, Edge, Edge), const IncSpec& s) {
    return count_nodes(mgr, h(mgr, s.f, s.c));
  };
  EXPECT_GT(size(constrain, e1), size(osm_td, e1));
  EXPECT_GT(size(osm_td, e2), size(constrain, e2));
  EXPECT_GT(size(tsm_td, e3), size(constrain, e3));
  EXPECT_GT(size(constrain, e1), size(tsm_td, e1));
  EXPECT_GT(size(tsm_td, e3), size(osm_td, e3));
  EXPECT_GT(size(osm_td, e2), size(tsm_td, e2));
}

TEST(Counterexamples, Proposition6ResultsCanExceedF) {
  // Any non-optimal DC-insensitive algorithm has instances where the
  // result is larger than f itself; exhibit one for constrain.
  Manager mgr(2);
  // In example 1, replace f's DC value so that f is already minimum:
  // f = (01 01) = x2 (size 2); constrain still returns size 3.
  const Edge f = from_leaves(mgr, "01 01").f;
  const Edge c = from_leaves(mgr, "d1 01").c;
  const Edge got = constrain(mgr, f, c);
  EXPECT_GT(count_nodes(mgr, got), count_nodes(mgr, f));
}

}  // namespace
}  // namespace bddmin::minimize
