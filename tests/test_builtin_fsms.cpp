#include "workload/builtin_fsms.hpp"

#include <gtest/gtest.h>

#include "fsm/kiss.hpp"

namespace bddmin::workload {
namespace {

TEST(BuiltinFsms, AllParseAndValidate) {
  const auto machines = builtin_fsms();
  EXPECT_GE(machines.size(), 6u);
  for (const fsm::Fsm& m : machines) {
    EXPECT_NO_THROW(m.validate()) << m.name;
    EXPECT_GT(m.num_inputs, 0u) << m.name;
    EXPECT_GT(m.num_outputs, 0u) << m.name;
    EXPECT_GE(m.states.size(), 2u) << m.name;
  }
}

TEST(BuiltinFsms, LookupByName) {
  const fsm::Fsm tlc = builtin_fsm("tlc_like");
  EXPECT_EQ(tlc.num_inputs, 3u);
  EXPECT_EQ(tlc.num_outputs, 4u);
  EXPECT_EQ(tlc.reset_state, "HG");
  EXPECT_THROW(builtin_fsm("missing"), std::out_of_range);
}

TEST(BuiltinFsms, SourcesRoundTripThroughKiss) {
  for (const auto& [name, text] : builtin_kiss_sources()) {
    const fsm::Fsm m = fsm::parse_kiss2(text, name);
    const fsm::Fsm again = fsm::parse_kiss2(fsm::to_kiss2(m), name);
    EXPECT_EQ(again.states, m.states) << name;
    EXPECT_EQ(again.transitions.size(), m.transitions.size()) << name;
  }
}

TEST(BuiltinFsms, UseWildcardedInputs) {
  // The point of these machines is incompletely specified transition
  // patterns; every multi-input machine should contain at least one '-'
  // (single-input machines have nothing to wildcard).
  for (const fsm::Fsm& m : builtin_fsms()) {
    if (m.num_inputs < 2) continue;
    bool has_wildcard = false;
    for (const auto& t : m.transitions) {
      has_wildcard |= t.input.find('-') != std::string::npos;
    }
    EXPECT_TRUE(has_wildcard) << m.name;
  }
}

TEST(BuiltinFsms, NamesAreUniqueAndStable) {
  const auto& sources = builtin_kiss_sources();
  std::set<std::string> names;
  for (const auto& [name, text] : sources) names.insert(name);
  EXPECT_EQ(names.size(), sources.size());
  EXPECT_TRUE(names.contains("tlc_like"));
  EXPECT_TRUE(names.contains("arb_like"));
  EXPECT_TRUE(names.contains("dk27_like"));
}

}  // namespace
}  // namespace bddmin::workload
