#include "minimize/level.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/sibling.hpp"

namespace bddmin::minimize {
namespace {

TEST(Collect, GathersBoundaryPairsOnly) {
  Manager mgr(4);
  const Edge f = mgr.ite(mgr.var_edge(0), mgr.var_edge(2), mgr.var_edge(3));
  const Edge c = kOne;
  const CollectedLevel collected = collect_at_level(mgr, {f, c}, 1);
  // Below level 1 (vars >= 2): [x2, 1] and [x3, 1].
  ASSERT_EQ(collected.specs.size(), 2u);
  for (const IncSpec& spec : collected.specs) {
    EXPECT_GT(mgr.var_of(spec.f), 1u);
    EXPECT_EQ(spec.c, kOne);
  }
}

TEST(Collect, RecordsFirstPath) {
  Manager mgr(4);
  const Edge f = mgr.ite(mgr.var_edge(0), mgr.var_edge(2), mgr.var_edge(3));
  const CollectedLevel collected = collect_at_level(mgr, {f, kOne}, 1);
  ASSERT_EQ(collected.paths.size(), 2u);
  // x2 is reached with x0=1, x3 with x0=0; x1 absent on both paths.
  for (std::size_t j = 0; j < 2; ++j) {
    const bool is_x2 = mgr.var_of(collected.specs[j].f) == 2;
    EXPECT_EQ(collected.paths[j][0], is_x2 ? 1 : 0);
    EXPECT_EQ(collected.paths[j][1], kAbsentLiteral);
  }
}

TEST(Collect, DedupesEqualIncompletelySpecifiedFunctions) {
  Manager mgr(4);
  // Two pairs with the same (f·c, c) must share one vertex.
  const Edge x2 = mgr.var_edge(2);
  const Edge x3 = mgr.var_edge(3);
  // f = ite(x0, x2, x2·x3), c = x3: below level 1, [x2, x3] vs
  // [x2·x3, x3] are the same incompletely specified function.
  const Edge f = mgr.ite(mgr.var_edge(0), x2, mgr.and_(x2, x3));
  const CollectedLevel collected = collect_at_level(mgr, {f, x3}, 1);
  EXPECT_EQ(collected.specs.size(), 1u);
  EXPECT_EQ(collected.pair_to_vertex.size(), 2u);
}

TEST(Collect, MaxSetSizeTruncates) {
  Manager mgr(5);
  std::mt19937_64 rng(3);
  const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
  const Edge c = from_tt(mgr, rng() | 1, 5);
  const CollectedLevel full = collect_at_level(mgr, {f, c}, 2);
  if (full.specs.size() > 1) {
    const CollectedLevel capped = collect_at_level(mgr, {f, c}, 2, 1);
    EXPECT_EQ(capped.specs.size(), 1u);
  }
}

TEST(PathDistance, MatchesPaperFormula) {
  // Example from Section 3.3.2: path 1000210 vs 1201111 -> distance 9.
  const CubeVec g{1, 0, 0, 0, 2, 1, 0};
  const CubeVec h{1, 2, 0, 1, 1, 1, 1};
  // Differences at positions 3 (2^(7-1-3)=8) and 6 (2^0=1) -> 9.
  EXPECT_DOUBLE_EQ(path_distance(g, h), 9.0);
  // Siblings differ only at the last position: distance 1.
  const CubeVec a{2, 2, 1};
  const CubeVec b{2, 2, 0};
  EXPECT_DOUBLE_EQ(path_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(path_distance(a, a), 0.0);
}

TEST(FmmOsm, AllMatchableCollapseToOneSink) {
  Manager mgr(3);
  const Edge x2 = mgr.var_edge(2);
  // Chain: [x2, c1] osm [x2, c2] osm [x2, 1] with c1 <= c2 <= 1.
  const Edge c1 = mgr.and_(mgr.var_edge(0), mgr.var_edge(1));
  const Edge c2 = mgr.var_edge(0);
  const std::vector<IncSpec> specs{{x2, c1}, {x2, c2}, {x2, kOne}};
  const std::vector<std::size_t> rep = fmm_osm(mgr, specs);
  EXPECT_EQ(rep[0], 2u);
  EXPECT_EQ(rep[1], 2u);
  EXPECT_EQ(rep[2], 2u);
}

TEST(FmmOsm, UnrelatedFunctionsStaySeparate) {
  Manager mgr(3);
  const std::vector<IncSpec> specs{{mgr.var_edge(1), kOne},
                                   {mgr.var_edge(2), kOne},
                                   {!mgr.var_edge(1), kOne}};
  const std::vector<std::size_t> rep = fmm_osm(mgr, specs);
  for (std::size_t j = 0; j < specs.size(); ++j) EXPECT_EQ(rep[j], j);
}

TEST(FmmTsm, CliquesAreActualCliques) {
  Manager mgr(4);
  std::mt19937_64 rng(9);
  for (int round = 0; round < 20; ++round) {
    std::vector<IncSpec> specs;
    for (int k = 0; k < 8; ++k) {
      specs.push_back({from_tt(mgr, rng() & tt_mask(4), 4),
                       from_tt(mgr, rng() & tt_mask(4), 4)});
    }
    for (const bool degree : {false, true}) {
      LevelOptions opts;
      opts.order_by_degree = degree;
      const CliqueCover cover = fmm_tsm(mgr, specs, {}, opts);
      std::size_t covered = 0;
      for (const auto& clique : cover.cliques) {
        covered += clique.size();
        for (const std::size_t u : clique) {
          for (const std::size_t w : clique) {
            if (u != w) {
              EXPECT_TRUE(matches(mgr, Criterion::kTsm, specs[u], specs[w]));
            }
          }
        }
      }
      EXPECT_EQ(covered, specs.size());
    }
  }
}

TEST(FmmTsm, OrderingOptimizationsRescueTheBigClique) {
  // Section 3.3.2's motivating case: vertex A sits in a 2-clique with B,
  // while {B, C, D} form a 3-clique.  Seeding by degree starts from B, and
  // distance weights grow toward the nearby C and D instead of absorbing
  // A; without the optimizations the 2-clique {A, B} shadows the triangle.
  Manager mgr(4);
  const Edge x2 = mgr.var_edge(2);
  const Edge x3 = mgr.var_edge(3);
  const std::vector<IncSpec> specs{
      {!x2, mgr.and_(!x2, x3)},  // A: matches only B (care sets clash w/ C,D)
      {x2, mgr.and_(x2, x3)},    // B: matches everyone
      {x2, x3},                  // C
      {x2, mgr.or_(x2, x3)},     // D
  };
  ASSERT_TRUE(matches(mgr, Criterion::kTsm, specs[0], specs[1]));
  ASSERT_FALSE(matches(mgr, Criterion::kTsm, specs[0], specs[2]));
  ASSERT_FALSE(matches(mgr, Criterion::kTsm, specs[0], specs[3]));
  // Paths: A far from B; C and D near B.
  const std::vector<CubeVec> paths{{0, 0}, {1, 1}, {1, 0}, {0, 1}};

  LevelOptions naive;
  naive.order_by_degree = false;
  naive.weight_by_distance = false;
  const CliqueCover bad = fmm_tsm(mgr, specs, paths, naive);
  std::size_t largest_naive = 0;
  for (const auto& clique : bad.cliques) {
    largest_naive = std::max(largest_naive, clique.size());
  }
  EXPECT_EQ(largest_naive, 2u);  // {A,B} shadows the triangle

  const CliqueCover good = fmm_tsm(mgr, specs, paths, LevelOptions{});
  std::size_t largest = 0;
  for (const auto& clique : good.cliques) {
    largest = std::max(largest, clique.size());
  }
  EXPECT_EQ(largest, 3u);
  EXPECT_EQ(good.cliques.size(), 2u);  // {B,C,D} and {A}
}

TEST(Substitute, ReplacementRespectsICoverSemantics) {
  Manager mgr(4);
  std::mt19937_64 rng(15);
  for (int round = 0; round < 25; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    std::uint64_t c_tt = rng() & tt_mask(4);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 4);
    for (std::uint32_t level = 0; level < 3; ++level) {
      for (const Criterion crit : {Criterion::kOsm, Criterion::kTsm}) {
        LevelStats stats;
        const IncSpec out =
            minimize_at_level(mgr, crit, level, {}, {f, c}, &stats);
        EXPECT_TRUE(is_icover(mgr, out, {f, c}))
            << to_string(crit) << " level " << level;
        EXPECT_TRUE(mgr.leq(c, out.c));
        EXPECT_EQ(stats.matched, stats.vertices - stats.groups);
      }
    }
  }
}

TEST(OptLv, ProducesValidCovers) {
  Manager mgr(5);
  std::mt19937_64 rng(19);
  for (int round = 0; round < 20; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    const Edge g = opt_lv(mgr, f, c);
    EXPECT_TRUE(is_cover(mgr, g, {f, c}));
  }
}

TEST(OptLv, OsmVariantProducesValidCovers) {
  Manager mgr(5);
  std::mt19937_64 rng(23);
  for (int round = 0; round < 15; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    const Edge g = opt_lv(mgr, f, c, {}, Criterion::kOsm);
    EXPECT_TRUE(is_cover(mgr, g, {f, c}));
  }
}

TEST(OptLv, TrivialCareSets) {
  Manager mgr(3);
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(1));
  EXPECT_EQ(opt_lv(mgr, f, kOne), f);
  EXPECT_EQ(opt_lv(mgr, f, kZero), f);
}

TEST(OptLv, MergesSharableSubfunctions) {
  // f has two distinct subfunctions at level 1 that agree on the care
  // set; opt_lv must merge them, beating f's size.
  Manager mgr(3);
  const Edge x1 = mgr.var_edge(1);
  const Edge x2 = mgr.var_edge(2);
  // f = ite(x0, x1·x2, x1): differs only when x1=1,x2=0.
  const Edge f = mgr.ite(mgr.var_edge(0), mgr.and_(x1, x2), x1);
  const Edge c = mgr.or_(!x1, x2);  // don't care exactly at x1=1,x2=0
  const Edge g = opt_lv(mgr, f, c);
  EXPECT_TRUE(is_cover(mgr, g, {f, c}));
  EXPECT_LT(count_nodes(mgr, g), count_nodes(mgr, f));
  EXPECT_FALSE(depends_on(mgr, g, 0));  // the x0 split disappears
}

TEST(Collect, OnlyLevelPlusOneRestrictsTheSet) {
  Manager mgr(4);
  // f = ite(x0, x1·x3, x3): below level 0 there are functions rooted at
  // levels 1 (x1·x3) and 3 (x3); the level+1 method keeps only the first.
  const Edge f = mgr.ite(mgr.var_edge(0),
                         mgr.and_(mgr.var_edge(1), mgr.var_edge(3)),
                         mgr.var_edge(3));
  const CollectedLevel all = collect_at_level(mgr, {f, kOne}, 0);
  const CollectedLevel narrow =
      collect_at_level(mgr, {f, kOne}, 0, 0, /*only_level_plus_one=*/true);
  EXPECT_EQ(all.specs.size(), 2u);
  ASSERT_EQ(narrow.specs.size(), 1u);
  EXPECT_EQ(mgr.level_of(narrow.specs[0].f), 1u);
}

TEST(MinimizeAtLevel, ChunkedProcessingMatchesAcrossChunks) {
  // Three mutually matchable functions A = x2·x3, B = x2, C = x2+x3 that
  // agree on c = xnor(x2, x3).  A cap of 2 collects only {A, B} in the
  // first chunk; chunked processing continues the traversal and merges C
  // in a second round, while plain truncation leaves C unmatched.
  Manager mgr(4);
  const Edge x2 = mgr.var_edge(2);
  const Edge x3 = mgr.var_edge(3);
  // Same value function x2 under three different care sets: the pairs are
  // distinct incompletely specified functions, all mutually tsm-matchable.
  const Edge f = x2;
  const Edge c = mgr.ite(mgr.var_edge(0),
                         mgr.ite(mgr.var_edge(1), mgr.and_(x2, x3), x3),
                         mgr.or_(x2, x3));
  const IncSpec unlimited =
      minimize_at_level(mgr, Criterion::kTsm, 1, {}, {f, c});
  ASSERT_TRUE(is_icover(mgr, unlimited, {f, c}));

  LevelOptions capped;
  capped.max_set_size = 2;
  capped.chunked = false;
  LevelStats stats;
  const IncSpec truncated =
      minimize_at_level(mgr, Criterion::kTsm, 1, capped, {f, c}, &stats);
  EXPECT_TRUE(is_icover(mgr, truncated, {f, c}));

  capped.chunked = true;
  const IncSpec chunked =
      minimize_at_level(mgr, Criterion::kTsm, 1, capped, {f, c}, &stats);
  EXPECT_TRUE(is_icover(mgr, chunked, {f, c}));
  // Chunked processing must reach the unlimited result; truncation can't.
  EXPECT_EQ(count_nodes(mgr, chunked.f), count_nodes(mgr, unlimited.f));
  EXPECT_GT(count_nodes(mgr, truncated.f), count_nodes(mgr, chunked.f));
}

TEST(OptLv, CapAndWeightOptionsStillYieldCovers) {
  Manager mgr(5);
  std::mt19937_64 rng(29);
  for (int round = 0; round < 10; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    std::uint64_t c_tt = rng() & tt_mask(5);
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 5);
    for (const bool degree : {false, true}) {
      for (const bool weight : {false, true}) {
        LevelOptions opts;
        opts.order_by_degree = degree;
        opts.weight_by_distance = weight;
        opts.max_set_size = (round % 2) ? 3 : 0;
        EXPECT_TRUE(is_cover(mgr, opt_lv(mgr, f, c, opts), {f, c}));
      }
    }
  }
}

}  // namespace
}  // namespace bddmin::minimize
