#include "fsm/fsm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bddmin::fsm {
namespace {

Fsm tiny() {
  Fsm m;
  m.name = "tiny";
  m.num_inputs = 1;
  m.num_outputs = 1;
  m.add_state("a");
  m.add_state("b");
  m.transitions.push_back({"0", "a", "a", "0"});
  m.transitions.push_back({"1", "a", "b", "0"});
  m.transitions.push_back({"-", "b", "a", "1"});
  return m;
}

TEST(Fsm, StateBookkeeping) {
  Fsm m = tiny();
  EXPECT_EQ(m.state_index("a"), 0u);
  EXPECT_EQ(m.state_index("b"), 1u);
  EXPECT_EQ(m.state_index("zz"), SIZE_MAX);
  EXPECT_EQ(m.reset_state, "a");  // first mentioned
  EXPECT_EQ(m.add_state("a"), 0u);  // idempotent
  EXPECT_EQ(m.states.size(), 2u);
}

TEST(Fsm, StateBitsCeilLog2) {
  Fsm m;
  m.add_state("only");
  EXPECT_EQ(m.state_bits(), 1u);
  m.add_state("s2");
  EXPECT_EQ(m.state_bits(), 1u);
  m.add_state("s3");
  EXPECT_EQ(m.state_bits(), 2u);
  m.add_state("s4");
  m.add_state("s5");
  EXPECT_EQ(m.state_bits(), 3u);
}

TEST(Fsm, ValidateAcceptsDeterministicMachine) {
  EXPECT_NO_THROW(tiny().validate());
}

TEST(Fsm, ValidateRejectsBadWidths) {
  Fsm m = tiny();
  m.transitions.push_back({"00", "a", "b", "1"});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Fsm, ValidateRejectsUnknownStates) {
  Fsm m = tiny();
  m.transitions.push_back({"1", "a", "ghost", "0"});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Fsm, ValidateRejectsNondeterminism) {
  Fsm m = tiny();
  // "1 a b 0" already exists; "- a a 1" overlaps it with another target.
  m.transitions.push_back({"-", "a", "a", "1"});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Fsm, ValidateAllowsRedundantAgreeingTransitions) {
  Fsm m = tiny();
  m.transitions.push_back({"1", "a", "b", "0"});  // exact duplicate
  EXPECT_NO_THROW(m.validate());
}

TEST(Fsm, ValidateRejectsBadPatternChars) {
  Fsm m = tiny();
  m.transitions.push_back({"x", "a", "b", "0"});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Fsm, ValidateRejectsUnknownResetState) {
  Fsm m = tiny();
  m.reset_state = "ghost";
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace bddmin::fsm
