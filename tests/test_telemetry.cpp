/// \file test_telemetry.cpp
/// \brief Telemetry subsystem: counter semantics against known workloads,
/// span-trace round trips, per-phase profiles, the counter CSV columns'
/// thread-count determinism, and the Prometheus exposition.
#include "telemetry/counters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "analysis/audit.hpp"
#include "analysis/mutate.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "engine/engine.hpp"
#include "minimize/registry.hpp"
#include "minimize/sibling.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "workload/instances.hpp"

namespace bddmin::telemetry {
namespace {

using Counter = telemetry::Counter;

TEST(Counters, SnapshotArithmetic) {
  CounterSnapshot a;
  a.values[static_cast<std::size_t>(Counter::kIteCacheHits)] = 5;
  a.values[static_cast<std::size_t>(Counter::kUserCacheHits)] = 2;
  a.values[static_cast<std::size_t>(Counter::kIteCacheMisses)] = 7;
  CounterSnapshot b = a;
  b.values[static_cast<std::size_t>(Counter::kIteCacheHits)] = 11;
  EXPECT_EQ(a.total_cache_hits(), 7u);
  EXPECT_EQ(a.total_cache_misses(), 7u);
  const CounterSnapshot d = b - a;
  EXPECT_EQ(d.value(Counter::kIteCacheHits), 6u);
  EXPECT_EQ(d.value(Counter::kUserCacheHits), 0u);
  CounterSnapshot sum = a;
  sum += d;
  EXPECT_EQ(sum, b);
}

TEST(Counters, RepeatedIteIsExactlyOneCacheHit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(4);
  const Edge a = mgr.var_edge(0);
  const Edge b = mgr.var_edge(1);
  const Edge c = mgr.var_edge(2);
  (void)mgr.ite(a, b, c);  // populate the cache
  const CounterSnapshot before = mgr.telemetry();
  (void)mgr.ite(a, b, c);  // identical call: resolved at the top level
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_EQ(delta.value(Counter::kIteCacheHits), 1u);
  EXPECT_EQ(delta.value(Counter::kIteCacheMisses), 0u);
  EXPECT_EQ(delta.value(Counter::kUniqueInserts), 0u);
  EXPECT_EQ(delta.value(Counter::kUniqueHits), 0u);
}

TEST(Counters, UniqueTableInsertThenHit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(4);
  const Edge v1 = mgr.var_edge(1);
  const CounterSnapshot s0 = mgr.telemetry();
  const Edge n1 = mgr.make_node(0, v1, kZero);
  const CounterSnapshot after_insert = mgr.telemetry() - s0;
  EXPECT_EQ(after_insert.value(Counter::kUniqueInserts), 1u);
  EXPECT_EQ(after_insert.value(Counter::kUniqueHits), 0u);
  const CounterSnapshot s1 = mgr.telemetry();
  const Edge n2 = mgr.make_node(0, v1, kZero);  // same triple: chain hit
  const CounterSnapshot after_hit = mgr.telemetry() - s1;
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(after_hit.value(Counter::kUniqueInserts), 0u);
  EXPECT_EQ(after_hit.value(Counter::kUniqueHits), 1u);
}

TEST(Counters, GcRunsAndReclaimedMatchReturnValue) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  // Unpinned intermediate results become dead nodes.
  Edge f = mgr.var_edge(0);
  for (unsigned v = 1; v < 8; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const CounterSnapshot before = mgr.telemetry();
  const std::size_t freed = mgr.garbage_collect();
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(delta.value(Counter::kGcRuns), 1u);
  EXPECT_EQ(delta.value(Counter::kGcNodesReclaimed), freed);
}

TEST(Counters, SiftSwapsAreCounted) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  // An interleaved conjunction of pair-ANDs whose optimal order differs
  // from the initial one, so sifting has swaps to perform.
  Edge f = kOne;
  for (unsigned k = 0; k < 4; ++k) {
    f = mgr.and_(f, mgr.and_(mgr.var_edge(k), mgr.var_edge(7 - k)));
  }
  const Bdd pin(mgr, f);
  const CounterSnapshot before = mgr.telemetry();
  (void)mgr.reorder_sift();
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_GT(delta.value(Counter::kSiftSwaps), 0u);
}

TEST(Counters, GovernorStepsMeterWithoutAnInstalledLimit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  const CounterSnapshot before = mgr.telemetry();
  Edge f = mgr.var_edge(0);
  for (unsigned v = 1; v < 8; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const CounterSnapshot delta = mgr.telemetry() - before;
  // No limits installed: steps_used() stays 0, yet the counter meters.
  EXPECT_EQ(mgr.governor().steps_used(), 0u);
  EXPECT_GT(delta.value(Counter::kGovernorSteps), 0u);
}

TEST(Counters, GovernorStepsAgreeWithStepsUsedUnderALimit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  ResourceLimits limits;
  limits.step_limit = 1'000'000;  // high enough to never trip
  mgr.governor().set_limits(limits);
  const std::uint64_t steps0 = mgr.governor().steps_used();
  const CounterSnapshot before = mgr.telemetry();
  Edge f = mgr.var_edge(0);
  for (unsigned v = 1; v < 8; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_EQ(delta.value(Counter::kGovernorSteps),
            mgr.governor().steps_used() - steps0);
  EXPECT_GT(delta.value(Counter::kGovernorSteps), 0u);
  mgr.governor().clear();
}

TEST(Profile, CollectorSplitsStepsAcrossPhases) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  std::mt19937_64 rng(7);
  const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.4, rng);
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  const CounterSnapshot before = mgr.telemetry();
  PhaseProfile profile;
  {
    const ProfileCollector collect(mgr, &profile);
    (void)minimize::osm_td(mgr, spec.f, spec.c);
  }
  const CounterSnapshot delta = mgr.telemetry() - before;
  // Every governor step lands in exactly one phase.
  EXPECT_EQ(profile.total_steps(), delta.value(Counter::kGovernorSteps));
  // The osm criterion runs ITEs inside matches() → matching work exists,
  // and the traversal itself builds the result → cover-build work exists.
  EXPECT_GT(profile[Phase::kMatching].cache_misses +
                profile[Phase::kMatching].cache_hits,
            0u);
  EXPECT_GT(profile[Phase::kCoverBuild].steps, 0u);
  EXPECT_EQ(profile[Phase::kValidation].steps, 0u);
}

TEST(Profile, WithProfileWrapperAccumulates) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  std::mt19937_64 rng(11);
  const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.4, rng);
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  PhaseProfile profile;
  const minimize::Heuristic h = minimize::with_profile(
      {"osm_td",
       [](Manager& m, Edge f, Edge c) { return minimize::osm_td(m, f, c); }},
      &profile);
  (void)h.run(mgr, spec.f, spec.c);
  const std::uint64_t first = profile.total_steps();
  EXPECT_GT(first, 0u);
  mgr.garbage_collect();  // flush caches so the rerun repeats the work
  (void)h.run(mgr, spec.f, spec.c);
  EXPECT_GT(profile.total_steps(), first);  // calls accumulate
}

TEST(Trace, RoundTripIsValidAndThreadAware) {
  const std::string path = testing::TempDir() + "bddmin_trace_test.json";
  ASSERT_TRUE(Tracer::start(path));
  Tracer::set_thread_name("test-main");
  {
    const TraceScope outer("outer", "test");
    {
      const TraceScope inner("inner", "test");
    }
    trace_instant("tick", "test");
  }
  std::thread worker([] {
    Tracer::set_thread_name("test-worker");
    const TraceScope s("worker-span", "test");
  });
  worker.join();
  ASSERT_EQ(Tracer::stop(), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(validate_trace(json), "");
  for (const char* needle : {"test-main", "test-worker", "outer", "inner",
                             "tick", "worker-span", "displayTimeUnit"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(Trace, RestartWhileWorkersEmitSpansIsRaceFree) {
  // Regression: Tracer::Impl::generation used to be a plain uint64 read
  // unlocked by log_for_this_thread() (the cached-log validity check)
  // while start() incremented it under a different mutex — a data race
  // TSan flags on any stop()/start() cycle concurrent with tracing
  // threads.  generation is atomic now; this test drives exactly that
  // interleaving and must stay clean under -DBDDMIN_SANITIZE=thread.
  const std::string base = testing::TempDir() + "bddmin_trace_restart";
  std::atomic<bool> done{false};
  std::thread worker([&done] {
    while (!done.load(std::memory_order_relaxed)) {
      const TraceScope s("restart-span", "test");
      trace_instant("restart-tick", "test");
    }
  });
  for (int round = 0; round < 50; ++round) {
    const std::string path = base + std::to_string(round) + ".json";
    if (Tracer::start(path)) {
      // A couple of spans on this thread force fresh log registration
      // against the bumped generation.
      const TraceScope s("main-span", "test");
      (void)Tracer::stop();
    }
  }
  done.store(true, std::memory_order_relaxed);
  worker.join();
}

TEST(Trace, ValidatorRejectsGarbageAndOverlaps) {
  EXPECT_NE(validate_trace("not json"), "");
  EXPECT_NE(validate_trace("{\"traceEvents\":42}"), "");
  // Two complete events on one tid overlapping without nesting.
  const std::string overlapping =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,"
      "\"cat\":\"t\",\"name\":\"a\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10,"
      "\"cat\":\"t\",\"name\":\"b\"}]}";
  EXPECT_NE(validate_trace(overlapping), "");
  // The same two spans properly nested are fine.
  const std::string nested =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,"
      "\"cat\":\"t\",\"name\":\"a\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2,\"dur\":5,"
      "\"cat\":\"t\",\"name\":\"b\"}]}";
  EXPECT_EQ(validate_trace(nested), "");
}

TEST(Engine, CounterColumnsAreByteIdenticalAcrossThreadCounts) {
  const std::vector<engine::Job> jobs = engine::random_jobs(12, 7, 0.3, 42);
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    engine::EngineOptions opts;
    opts.num_threads = threads;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    EXPECT_EQ(report.count(engine::JobStatus::kOk), jobs.size());
    const std::string csv =
        engine::report_csv(report, /*include_timings=*/false,
                           /*include_counters=*/true);
    if (baseline.empty()) {
      baseline = csv;
      EXPECT_NE(csv.find(",ut_inserts,ut_hits,cache_hits,cache_misses,"
                         "gc_runs,gc_reclaimed,steps"),
                std::string::npos);
      EXPECT_NE(csv.find(",steps_match_const,steps_build_const,"
                         "steps_valid_const"),
                std::string::npos);
    } else {
      EXPECT_EQ(csv, baseline) << "thread count " << threads;
    }
  }
}

TEST(Audit, TelemetryCrossCheckBalancesOnABusyManager) {
  Manager mgr(8);
  std::mt19937_64 rng(5);
  const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.4, rng);
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  const Bdd g_pin(mgr, minimize::osm_td(mgr, spec.f, spec.c));
  mgr.garbage_collect();
  (void)mgr.reorder_sift();
  const analysis::AuditReport report = analysis::audit_manager(mgr);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Audit, TelemetryCrossCheckDetectsAnUnlinkedNode) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  const Bdd pin(mgr, mgr.and_(mgr.var_edge(0),
                              mgr.or_(mgr.var_edge(1), mgr.var_edge(2))));
  const analysis::MutationResult injected =
      analysis::inject(mgr, analysis::Mutation::kSubtableUnlink);
  ASSERT_TRUE(injected.applied);
  const analysis::AuditReport report = analysis::audit_manager(mgr);
  EXPECT_TRUE(report.has(analysis::Category::kAccounting));
  bool telemetry_finding = false;
  for (const auto& finding : report.findings) {
    if (finding.message.find("telemetry") != std::string::npos) {
      telemetry_finding = true;
    }
  }
  EXPECT_TRUE(telemetry_finding) << report.summary();
}

TEST(Prometheus, ExpositionListsEveryFamily) {
  CounterSnapshot s;
  s.values[static_cast<std::size_t>(Counter::kUniqueInserts)] = 3;
  const std::string text = prometheus_text(s);
  for (const char* needle :
       {"bddmin_unique_inserts_total 3", "bddmin_unique_hits_total",
        "bddmin_cache_lookups_total{op=\"ite\",outcome=\"hit\"}",
        "bddmin_cache_lookups_total{op=\"quantify\",outcome=\"miss\"}",
        "bddmin_gc_runs_total", "bddmin_gc_nodes_reclaimed_total",
        "bddmin_reorder_nodes_freed_total", "bddmin_sift_swaps_total",
        "bddmin_governor_steps_total", "# HELP", "# TYPE"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

// ---- Histogram layer ----------------------------------------------------

TEST(Histogram, BucketBoundariesAreExactBelowSubAndMonotoneAbove) {
  // Values below kHistogramSub land in exact buckets: index == value,
  // upper bound == value.
  for (std::uint64_t v = 0; v < kHistogramSub; ++v) {
    EXPECT_EQ(histogram_bucket_index(v), v);
    EXPECT_EQ(histogram_bucket_upper(v), v);
  }
  // First log-linear bucket: [16, 16] (one sub-bucket per value still).
  EXPECT_EQ(histogram_bucket_index(16), 16u);
  EXPECT_EQ(histogram_bucket_upper(16), 16u);
  // A power-of-two boundary: 2^10 starts a fresh octave whose 16
  // sub-buckets are 64 wide.
  const std::size_t k1024 = histogram_bucket_index(1024);
  EXPECT_EQ(histogram_bucket_index(1023) + 1, k1024);
  EXPECT_EQ(histogram_bucket_upper(k1024), 1024u + 63u);
  EXPECT_EQ(histogram_bucket_index(1024 + 63), k1024);
  EXPECT_EQ(histogram_bucket_index(1024 + 64), k1024 + 1);
  // Every bucket's upper bound maps back to the bucket, the next value
  // maps one past it, and the bounds are strictly increasing.
  for (std::size_t i = 0; i + 1 < kNumHistogramBuckets; ++i) {
    const std::uint64_t upper = histogram_bucket_upper(i);
    EXPECT_EQ(histogram_bucket_index(upper), i) << "bucket " << i;
    EXPECT_EQ(histogram_bucket_index(upper + 1), i + 1) << "bucket " << i;
    EXPECT_LT(upper, histogram_bucket_upper(i + 1)) << "bucket " << i;
  }
  // The last bucket absorbs everything up to UINT64_MAX exactly.
  EXPECT_EQ(histogram_bucket_upper(kNumHistogramBuckets - 1), UINT64_MAX);
  EXPECT_EQ(histogram_bucket_index(UINT64_MAX), kNumHistogramBuckets - 1);
  // Relative error bound: the bucket width never exceeds value / kSub.
  for (const std::uint64_t v : {100ull, 12345ull, 1ull << 33, (1ull << 52) + 9}) {
    const std::size_t i = histogram_bucket_index(v);
    const std::uint64_t lower = i == 0 ? 0 : histogram_bucket_upper(i - 1) + 1;
    EXPECT_LE(histogram_bucket_upper(i) - lower + 1, v / kHistogramSub + 1)
        << v;
  }
}

TEST(Histogram, QuantilesAreNearestRankOverBucketBounds) {
  if (!kHistogramsEnabled) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  // Values < 16 are in exact buckets, so quantiles are exact order
  // statistics: {1, 2, 3, 4}.
  for (const std::uint64_t v : {1, 2, 3, 4}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 10u);
  EXPECT_EQ(s.quantile(0.0), 1u);    // rank clamps to 1
  EXPECT_EQ(s.quantile(0.50), 2u);   // ceil(0.5 * 4) = rank 2
  EXPECT_EQ(s.quantile(0.51), 3u);   // ceil -> rank 3
  EXPECT_EQ(s.quantile(0.75), 3u);
  EXPECT_EQ(s.quantile(1.0), 4u);
  EXPECT_EQ(s.max_bound(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u);  // empty -> 0
}

TEST(Histogram, RecordMergeQuantilesDeterministicAcrossInterleavings) {
  if (!kHistogramsEnabled) GTEST_SKIP() << "telemetry compiled out";
  // One fixed multiset, recorded under 1-, 2- and 8-thread
  // interleavings; snapshots and quantiles must be identical.
  std::vector<std::uint64_t> values;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 4096; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift, fixed seed
    values.push_back(x >> (x % 48));
  }
  HistogramSnapshot snapshots[3];
  const unsigned counts[3] = {1, 2, 8};
  for (int run = 0; run < 3; ++run) {
    Histogram h;
    const unsigned n = counts[run];
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < n; ++t) {
      threads.emplace_back([&h, &values, t, n] {
        for (std::size_t i = t; i < values.size(); i += n) {
          h.record(values[i]);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    snapshots[run] = h.snapshot();
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  for (const double q : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snapshots[0].quantile(q), snapshots[2].quantile(q)) << q;
  }
  // merge() is lossless: two half-histograms fold into the whole.
  Histogram left;
  Histogram right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 2 ? left : right).record(values[i]);
  }
  Histogram whole;
  whole.merge(left.snapshot());
  whole.merge(right.snapshot());
  EXPECT_EQ(whole.snapshot(), snapshots[0]);
}

TEST(Histogram, PrometheusFamilyRendering) {
  if (!kHistogramsEnabled) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  for (const std::uint64_t v : {3, 3, 5, 900}) h.record(v);
  std::string out;
  append_histogram_series(&out, "t_ns", "k=\"v\"", h.snapshot());
  // Cumulative counts at the non-empty boundaries, then +Inf == count.
  EXPECT_NE(out.find("t_ns_bucket{k=\"v\",le=\"3\"} 2"), std::string::npos)
      << out;
  EXPECT_NE(out.find("t_ns_bucket{k=\"v\",le=\"5\"} 3"), std::string::npos);
  const std::uint64_t b900 =
      histogram_bucket_upper(histogram_bucket_index(900));
  EXPECT_NE(out.find("t_ns_bucket{k=\"v\",le=\"" + std::to_string(b900) +
                     "\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("t_ns_bucket{k=\"v\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(out.find("t_ns_sum{k=\"v\"} 911"), std::string::npos);
  EXPECT_NE(out.find("t_ns_count{k=\"v\"} 4"), std::string::npos);
  // The global exposition names every well-known family even when empty.
  GlobalHistograms bank;
  const std::string families = histogram_prometheus_text(bank);
  for (const char* needle :
       {"# TYPE bddmin_job_latency_ns histogram", "bddmin_job_steps_bucket",
        "bddmin_steal_search_ns_count", "bddmin_queue_depth_sum"}) {
    EXPECT_NE(families.find(needle), std::string::npos) << needle;
  }
  // Labelled latency series appear once recorded into.
  bank.job_latency(0, 1).record(42);
  bank.job_latency(5, 7).record(7);  // outcome 5, attempt clamps to "3+"
  const std::string after = histogram_prometheus_text(bank);
  const std::uint64_t b42 = histogram_bucket_upper(histogram_bucket_index(42));
  EXPECT_NE(after.find("bddmin_job_latency_ns_bucket{status=\"ok\","
                       "attempt=\"1\",le=\"" +
                       std::to_string(b42) + "\"} 1"),
            std::string::npos)
      << after;
  EXPECT_NE(after.find("status=\"quarantined\",attempt=\"3+\""),
            std::string::npos);
}

TEST(Histogram, CompileOutIsANoOp) {
  // Meaningful in the -DBDDMIN_TELEMETRY=OFF build: record() must keep
  // the snapshot all-zero.  In the ON build it checks the opposite.
  Histogram h;
  h.record(7);
  h.record(1 << 20);
  const HistogramSnapshot s = h.snapshot();
  if (kHistogramsEnabled) {
    EXPECT_EQ(s.count, 2u);
  } else {
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s, HistogramSnapshot{});
  }
  // The bucket arithmetic stays available either way (used by tools and
  // tests); spot-check one value.
  EXPECT_EQ(histogram_bucket_index(3), 3u);
}

TEST(Histogram, OutcomeLabelTableMatchesEngineStatusNames) {
  // telemetry keeps its own copy of the outcome labels so the
  // dependency stays one-way; this is the pin that keeps them in sync.
  for (std::size_t s = 0; s < kNumOutcomeClasses; ++s) {
    EXPECT_STREQ(kOutcomeLabels[s],
                 engine::job_status_name(static_cast<engine::JobStatus>(s)))
        << "outcome class " << s;
  }
}

TEST(Global, ProcessWideHistogramsAccumulateBatchLatencies) {
  if (!kHistogramsEnabled) GTEST_SKIP() << "telemetry compiled out";
  histograms().reset();
  const std::vector<engine::Job> jobs = engine::random_jobs(6, 6, 0.3, 11);
  engine::EngineOptions opts;
  opts.num_threads = 2;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  // Every final outcome records one latency sample into the global bank
  // (all ok on this tiny clean batch) and one governor-steps sample.
  HistogramSnapshot latency;
  for (std::size_t a = 0; a < kNumAttemptClasses; ++a) {
    latency += histograms().job_latency_at(0, a).snapshot();
  }
  EXPECT_EQ(latency.count, report.outcomes.size() - report.duplicate_jobs);
  EXPECT_EQ(histograms().job_steps().snapshot().count, latency.count);
  // The per-run metrics block carries the same distributions.
  EXPECT_EQ(report.metrics.job_latency_ns.count, latency.count);
  EXPECT_GE(report.metrics.queue_depth.count, 1u);  // seeded-backlog anchor
}

TEST(Global, ProcessWideCountersAccumulateBatchWork) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  global().reset();
  const std::vector<engine::Job> jobs = engine::random_jobs(4, 6, 0.3, 9);
  engine::EngineOptions opts;
  opts.num_threads = 2;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  CounterSnapshot expected;
  for (const engine::JobOutcome& o : report.outcomes) expected += o.counters;
  const CounterSnapshot seen = global().snapshot();
  EXPECT_EQ(seen, expected);
  EXPECT_GT(seen.value(Counter::kUniqueInserts), 0u);
}

}  // namespace
}  // namespace bddmin::telemetry
