/// \file test_telemetry.cpp
/// \brief Telemetry subsystem: counter semantics against known workloads,
/// span-trace round trips, per-phase profiles, the counter CSV columns'
/// thread-count determinism, and the Prometheus exposition.
#include "telemetry/counters.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "analysis/audit.hpp"
#include "analysis/mutate.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "engine/engine.hpp"
#include "minimize/registry.hpp"
#include "minimize/sibling.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "workload/instances.hpp"

namespace bddmin::telemetry {
namespace {

using Counter = telemetry::Counter;

TEST(Counters, SnapshotArithmetic) {
  CounterSnapshot a;
  a.values[static_cast<std::size_t>(Counter::kIteCacheHits)] = 5;
  a.values[static_cast<std::size_t>(Counter::kUserCacheHits)] = 2;
  a.values[static_cast<std::size_t>(Counter::kIteCacheMisses)] = 7;
  CounterSnapshot b = a;
  b.values[static_cast<std::size_t>(Counter::kIteCacheHits)] = 11;
  EXPECT_EQ(a.total_cache_hits(), 7u);
  EXPECT_EQ(a.total_cache_misses(), 7u);
  const CounterSnapshot d = b - a;
  EXPECT_EQ(d.value(Counter::kIteCacheHits), 6u);
  EXPECT_EQ(d.value(Counter::kUserCacheHits), 0u);
  CounterSnapshot sum = a;
  sum += d;
  EXPECT_EQ(sum, b);
}

TEST(Counters, RepeatedIteIsExactlyOneCacheHit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(4);
  const Edge a = mgr.var_edge(0);
  const Edge b = mgr.var_edge(1);
  const Edge c = mgr.var_edge(2);
  (void)mgr.ite(a, b, c);  // populate the cache
  const CounterSnapshot before = mgr.telemetry();
  (void)mgr.ite(a, b, c);  // identical call: resolved at the top level
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_EQ(delta.value(Counter::kIteCacheHits), 1u);
  EXPECT_EQ(delta.value(Counter::kIteCacheMisses), 0u);
  EXPECT_EQ(delta.value(Counter::kUniqueInserts), 0u);
  EXPECT_EQ(delta.value(Counter::kUniqueHits), 0u);
}

TEST(Counters, UniqueTableInsertThenHit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(4);
  const Edge v1 = mgr.var_edge(1);
  const CounterSnapshot s0 = mgr.telemetry();
  const Edge n1 = mgr.make_node(0, v1, kZero);
  const CounterSnapshot after_insert = mgr.telemetry() - s0;
  EXPECT_EQ(after_insert.value(Counter::kUniqueInserts), 1u);
  EXPECT_EQ(after_insert.value(Counter::kUniqueHits), 0u);
  const CounterSnapshot s1 = mgr.telemetry();
  const Edge n2 = mgr.make_node(0, v1, kZero);  // same triple: chain hit
  const CounterSnapshot after_hit = mgr.telemetry() - s1;
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(after_hit.value(Counter::kUniqueInserts), 0u);
  EXPECT_EQ(after_hit.value(Counter::kUniqueHits), 1u);
}

TEST(Counters, GcRunsAndReclaimedMatchReturnValue) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  // Unpinned intermediate results become dead nodes.
  Edge f = mgr.var_edge(0);
  for (unsigned v = 1; v < 8; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const CounterSnapshot before = mgr.telemetry();
  const std::size_t freed = mgr.garbage_collect();
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(delta.value(Counter::kGcRuns), 1u);
  EXPECT_EQ(delta.value(Counter::kGcNodesReclaimed), freed);
}

TEST(Counters, SiftSwapsAreCounted) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  // An interleaved conjunction of pair-ANDs whose optimal order differs
  // from the initial one, so sifting has swaps to perform.
  Edge f = kOne;
  for (unsigned k = 0; k < 4; ++k) {
    f = mgr.and_(f, mgr.and_(mgr.var_edge(k), mgr.var_edge(7 - k)));
  }
  const Bdd pin(mgr, f);
  const CounterSnapshot before = mgr.telemetry();
  (void)mgr.reorder_sift();
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_GT(delta.value(Counter::kSiftSwaps), 0u);
}

TEST(Counters, GovernorStepsMeterWithoutAnInstalledLimit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  const CounterSnapshot before = mgr.telemetry();
  Edge f = mgr.var_edge(0);
  for (unsigned v = 1; v < 8; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const CounterSnapshot delta = mgr.telemetry() - before;
  // No limits installed: steps_used() stays 0, yet the counter meters.
  EXPECT_EQ(mgr.governor().steps_used(), 0u);
  EXPECT_GT(delta.value(Counter::kGovernorSteps), 0u);
}

TEST(Counters, GovernorStepsAgreeWithStepsUsedUnderALimit) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  ResourceLimits limits;
  limits.step_limit = 1'000'000;  // high enough to never trip
  mgr.governor().set_limits(limits);
  const std::uint64_t steps0 = mgr.governor().steps_used();
  const CounterSnapshot before = mgr.telemetry();
  Edge f = mgr.var_edge(0);
  for (unsigned v = 1; v < 8; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  const CounterSnapshot delta = mgr.telemetry() - before;
  EXPECT_EQ(delta.value(Counter::kGovernorSteps),
            mgr.governor().steps_used() - steps0);
  EXPECT_GT(delta.value(Counter::kGovernorSteps), 0u);
  mgr.governor().clear();
}

TEST(Profile, CollectorSplitsStepsAcrossPhases) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  std::mt19937_64 rng(7);
  const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.4, rng);
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  const CounterSnapshot before = mgr.telemetry();
  PhaseProfile profile;
  {
    const ProfileCollector collect(mgr, &profile);
    (void)minimize::osm_td(mgr, spec.f, spec.c);
  }
  const CounterSnapshot delta = mgr.telemetry() - before;
  // Every governor step lands in exactly one phase.
  EXPECT_EQ(profile.total_steps(), delta.value(Counter::kGovernorSteps));
  // The osm criterion runs ITEs inside matches() → matching work exists,
  // and the traversal itself builds the result → cover-build work exists.
  EXPECT_GT(profile[Phase::kMatching].cache_misses +
                profile[Phase::kMatching].cache_hits,
            0u);
  EXPECT_GT(profile[Phase::kCoverBuild].steps, 0u);
  EXPECT_EQ(profile[Phase::kValidation].steps, 0u);
}

TEST(Profile, WithProfileWrapperAccumulates) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  std::mt19937_64 rng(11);
  const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.4, rng);
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  PhaseProfile profile;
  const minimize::Heuristic h = minimize::with_profile(
      {"osm_td",
       [](Manager& m, Edge f, Edge c) { return minimize::osm_td(m, f, c); }},
      &profile);
  (void)h.run(mgr, spec.f, spec.c);
  const std::uint64_t first = profile.total_steps();
  EXPECT_GT(first, 0u);
  mgr.garbage_collect();  // flush caches so the rerun repeats the work
  (void)h.run(mgr, spec.f, spec.c);
  EXPECT_GT(profile.total_steps(), first);  // calls accumulate
}

TEST(Trace, RoundTripIsValidAndThreadAware) {
  const std::string path = testing::TempDir() + "bddmin_trace_test.json";
  ASSERT_TRUE(Tracer::start(path));
  Tracer::set_thread_name("test-main");
  {
    const TraceScope outer("outer", "test");
    {
      const TraceScope inner("inner", "test");
    }
    trace_instant("tick", "test");
  }
  std::thread worker([] {
    Tracer::set_thread_name("test-worker");
    const TraceScope s("worker-span", "test");
  });
  worker.join();
  ASSERT_EQ(Tracer::stop(), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_EQ(validate_trace(json), "");
  for (const char* needle : {"test-main", "test-worker", "outer", "inner",
                             "tick", "worker-span", "displayTimeUnit"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(Trace, RestartWhileWorkersEmitSpansIsRaceFree) {
  // Regression: Tracer::Impl::generation used to be a plain uint64 read
  // unlocked by log_for_this_thread() (the cached-log validity check)
  // while start() incremented it under a different mutex — a data race
  // TSan flags on any stop()/start() cycle concurrent with tracing
  // threads.  generation is atomic now; this test drives exactly that
  // interleaving and must stay clean under -DBDDMIN_SANITIZE=thread.
  const std::string base = testing::TempDir() + "bddmin_trace_restart";
  std::atomic<bool> done{false};
  std::thread worker([&done] {
    while (!done.load(std::memory_order_relaxed)) {
      const TraceScope s("restart-span", "test");
      trace_instant("restart-tick", "test");
    }
  });
  for (int round = 0; round < 50; ++round) {
    const std::string path = base + std::to_string(round) + ".json";
    if (Tracer::start(path)) {
      // A couple of spans on this thread force fresh log registration
      // against the bumped generation.
      const TraceScope s("main-span", "test");
      (void)Tracer::stop();
    }
  }
  done.store(true, std::memory_order_relaxed);
  worker.join();
}

TEST(Trace, ValidatorRejectsGarbageAndOverlaps) {
  EXPECT_NE(validate_trace("not json"), "");
  EXPECT_NE(validate_trace("{\"traceEvents\":42}"), "");
  // Two complete events on one tid overlapping without nesting.
  const std::string overlapping =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,"
      "\"cat\":\"t\",\"name\":\"a\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10,"
      "\"cat\":\"t\",\"name\":\"b\"}]}";
  EXPECT_NE(validate_trace(overlapping), "");
  // The same two spans properly nested are fine.
  const std::string nested =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10,"
      "\"cat\":\"t\",\"name\":\"a\"},"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":2,\"dur\":5,"
      "\"cat\":\"t\",\"name\":\"b\"}]}";
  EXPECT_EQ(validate_trace(nested), "");
}

TEST(Engine, CounterColumnsAreByteIdenticalAcrossThreadCounts) {
  const std::vector<engine::Job> jobs = engine::random_jobs(12, 7, 0.3, 42);
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    engine::EngineOptions opts;
    opts.num_threads = threads;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    EXPECT_EQ(report.count(engine::JobStatus::kOk), jobs.size());
    const std::string csv =
        engine::report_csv(report, /*include_timings=*/false,
                           /*include_counters=*/true);
    if (baseline.empty()) {
      baseline = csv;
      EXPECT_NE(csv.find(",ut_inserts,ut_hits,cache_hits,cache_misses,"
                         "gc_runs,gc_reclaimed,steps"),
                std::string::npos);
      EXPECT_NE(csv.find(",steps_match_const,steps_build_const,"
                         "steps_valid_const"),
                std::string::npos);
    } else {
      EXPECT_EQ(csv, baseline) << "thread count " << threads;
    }
  }
}

TEST(Audit, TelemetryCrossCheckBalancesOnABusyManager) {
  Manager mgr(8);
  std::mt19937_64 rng(5);
  const minimize::IncSpec spec = workload::random_instance(mgr, 8, 0.4, rng);
  const Bdd f_pin(mgr, spec.f);
  const Bdd c_pin(mgr, spec.c);
  const Bdd g_pin(mgr, minimize::osm_td(mgr, spec.f, spec.c));
  mgr.garbage_collect();
  (void)mgr.reorder_sift();
  const analysis::AuditReport report = analysis::audit_manager(mgr);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Audit, TelemetryCrossCheckDetectsAnUnlinkedNode) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  Manager mgr(8);
  const Bdd pin(mgr, mgr.and_(mgr.var_edge(0),
                              mgr.or_(mgr.var_edge(1), mgr.var_edge(2))));
  const analysis::MutationResult injected =
      analysis::inject(mgr, analysis::Mutation::kSubtableUnlink);
  ASSERT_TRUE(injected.applied);
  const analysis::AuditReport report = analysis::audit_manager(mgr);
  EXPECT_TRUE(report.has(analysis::Category::kAccounting));
  bool telemetry_finding = false;
  for (const auto& finding : report.findings) {
    if (finding.message.find("telemetry") != std::string::npos) {
      telemetry_finding = true;
    }
  }
  EXPECT_TRUE(telemetry_finding) << report.summary();
}

TEST(Prometheus, ExpositionListsEveryFamily) {
  CounterSnapshot s;
  s.values[static_cast<std::size_t>(Counter::kUniqueInserts)] = 3;
  const std::string text = prometheus_text(s);
  for (const char* needle :
       {"bddmin_unique_inserts_total 3", "bddmin_unique_hits_total",
        "bddmin_cache_lookups_total{op=\"ite\",outcome=\"hit\"}",
        "bddmin_cache_lookups_total{op=\"quantify\",outcome=\"miss\"}",
        "bddmin_gc_runs_total", "bddmin_gc_nodes_reclaimed_total",
        "bddmin_reorder_nodes_freed_total", "bddmin_sift_swaps_total",
        "bddmin_governor_steps_total", "# HELP", "# TYPE"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Global, ProcessWideCountersAccumulateBatchWork) {
  if (!kCountersEnabled) GTEST_SKIP() << "telemetry compiled out";
  global().reset();
  const std::vector<engine::Job> jobs = engine::random_jobs(4, 6, 0.3, 9);
  engine::EngineOptions opts;
  opts.num_threads = 2;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  CounterSnapshot expected;
  for (const engine::JobOutcome& o : report.outcomes) expected += o.counters;
  const CounterSnapshot seen = global().snapshot();
  EXPECT_EQ(seen, expected);
  EXPECT_GT(seen.value(Counter::kUniqueInserts), 0u);
}

}  // namespace
}  // namespace bddmin::telemetry
