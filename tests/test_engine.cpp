/// \file test_engine.cpp
/// \brief Batch engine: work-stealing queue integrity, the determinism
/// contract (byte-identical CSV for any thread count), per-job timeout,
/// cancellation atomicity, and containment of worker crashes.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <set>
#include <thread>

#include "analysis/check.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "engine/queue.hpp"
#include "minimize/sibling.hpp"
#include "telemetry/histogram.hpp"
#include "workload/instances.hpp"

namespace bddmin::engine {
namespace {

std::vector<Job> mixed_jobs() {
  // Truth-table payloads (6 vars) and forest payloads (9 vars) together.
  std::vector<Job> jobs = random_jobs(12, 6, 0.4, 1100);
  for (Job& j : random_jobs(6, 9, 0.25, 2200)) jobs.push_back(std::move(j));
  for (Job& j : random_jobs(6, 9, 0.9, 3300)) jobs.push_back(std::move(j));
  return jobs;
}

TEST(WorkStealingQueue, EveryItemPoppedExactlyOnceUnderContention) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kItems = 2000;
  WorkStealingQueue queue(kWorkers);
  // Lopsided seeding: everything on worker 0, so 1-3 must steal.
  for (std::size_t i = 0; i < kItems; ++i) queue.push(0, i);
  std::vector<std::vector<std::size_t>> popped(kWorkers);
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&queue, &popped, w] {
      std::size_t item = 0;
      while (queue.try_pop(w, &item)) popped[w].push_back(item);
    });
  }
  for (std::thread& t : pool) t.join();
  std::multiset<std::size_t> all;
  for (const auto& v : popped) all.insert(v.begin(), v.end());
  ASSERT_EQ(all.size(), kItems);
  std::size_t expected = 0;
  for (const std::size_t item : all) EXPECT_EQ(item, expected++);
}

TEST(Job, ForestPayloadRoundTripsAcrossManagers) {
  Manager src(9, 12);
  const minimize::IncSpec spec = workload::random_instance(src, 9, 0.35, 77u);
  const Job job = make_job(src, "roundtrip", spec);
  EXPECT_EQ(job.kind, PayloadKind::kForest);

  Manager dst(9, 12);
  const minimize::IncSpec back = decode_job(dst, job);
  std::mt19937_64 rng(5);
  std::vector<bool> assignment(9);
  for (int round = 0; round < 200; ++round) {
    for (std::size_t v = 0; v < assignment.size(); ++v) {
      assignment[v] = (rng() & 1) != 0;
    }
    EXPECT_EQ(eval(src, spec.f, assignment), eval(dst, back.f, assignment));
    EXPECT_EQ(eval(src, spec.c, assignment), eval(dst, back.c, assignment));
  }
}

TEST(Job, SmallSupportTravelsAsTruthTable) {
  Manager src(5, 12);
  const minimize::IncSpec spec = workload::random_instance(src, 5, 0.5, 31u);
  const Job job = make_job(src, "tt", spec);
  EXPECT_EQ(job.kind, PayloadKind::kTruthTable);
  EXPECT_EQ(job.f_tt, to_tt(src, spec.f, 5));
  EXPECT_EQ(job.c_tt, to_tt(src, spec.c, 5));

  Manager dst(5, 12);
  const minimize::IncSpec back = decode_job(dst, job);
  EXPECT_EQ(to_tt(dst, back.f, 5), job.f_tt);
  EXPECT_EQ(to_tt(dst, back.c, 5), job.c_tt);
}

TEST(BatchEngine, ByteIdenticalCsvAcrossThreadCounts) {
  const std::vector<Job> jobs = mixed_jobs();
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.lower_bound_cubes = 100;
    const BatchReport report = run_batch(jobs, opts);
    EXPECT_EQ(report.count(JobStatus::kOk), jobs.size());
    const std::string csv = report_csv(report);
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline) << "thread count " << threads
                               << " changed the deterministic report";
    }
  }
  // The report body mentions every job by name, in submission order.
  for (const Job& job : jobs) {
    EXPECT_NE(baseline.find(job.name), std::string::npos);
  }
}

TEST(BatchEngine, AuditLevelStillDeterministicAndClean) {
  const std::vector<Job> jobs = random_jobs(6, 6, 0.5, 4400);
  std::string baseline;
  for (const unsigned threads : {1u, 4u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.audit_level = analysis::AuditLevel::kCover;
    const BatchReport report = run_batch(jobs, opts);
    EXPECT_EQ(report.count(JobStatus::kOk), jobs.size());
    for (const JobOutcome& o : report.outcomes) {
      EXPECT_EQ(o.audit_findings, 0u) << o.name;
    }
    const std::string csv = report_csv(report);
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline);
    }
  }
}

TEST(BatchEngine, TimeoutExpiresJobsWithoutRunningHeuristics) {
  const std::vector<Job> jobs = random_jobs(5, 6, 0.4, 5500);
  EngineOptions opts;
  opts.num_threads = 2;
  // Decoding alone takes longer than a picosecond, so every job expires
  // at the first between-heuristics deadline check.
  opts.job_timeout_seconds = 1e-12;
  const BatchReport report = run_batch(jobs, opts);
  ASSERT_EQ(report.outcomes.size(), jobs.size());
  for (const JobOutcome& o : report.outcomes) {
    EXPECT_EQ(o.status, JobStatus::kTimeout) << o.name;
    EXPECT_EQ(o.min_size, 0u);
    for (const HeuristicResult& r : o.results) EXPECT_EQ(r.size, 0u);
  }
  // The CSV still reports one complete row per job.
  const std::string csv = report_csv(report);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 5);
  EXPECT_NE(csv.find("timeout"), std::string::npos);
}

TEST(BatchEngine, PreCancelledBatchReportsEveryJobCancelled) {
  const std::vector<Job> jobs = random_jobs(8, 6, 0.4, 6600);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.cancel = std::make_shared<std::atomic<bool>>(true);
  const BatchReport report = run_batch(jobs, opts);
  ASSERT_EQ(report.outcomes.size(), jobs.size());
  EXPECT_EQ(report.count(JobStatus::kCancelled), jobs.size());
}

TEST(BatchEngine, MidRunCancellationKeepsJobsAtomic) {
  const std::vector<Job> jobs = random_jobs(40, 8, 0.4, 7700);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.cancel = std::make_shared<std::atomic<bool>>(false);
  std::thread trigger([cancel = opts.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cancel->store(true);
  });
  const BatchReport report = run_batch(jobs, opts);
  trigger.join();
  ASSERT_EQ(report.outcomes.size(), jobs.size());
  for (const JobOutcome& o : report.outcomes) {
    // Jobs are atomic: fully processed or never started — no torn state.
    if (o.status == JobStatus::kOk) {
      EXPECT_GT(o.min_size, 0u) << o.name;
    } else {
      ASSERT_EQ(o.status, JobStatus::kCancelled) << o.name;
      EXPECT_EQ(o.min_size, 0u) << o.name;
    }
  }
}

TEST(BatchEngine, ThrownCheckIsContainedToItsJob) {
  // Job 2 carries f == 1; the faulty heuristic trips a BDDMIN_CHECK on it.
  std::vector<Job> jobs = random_jobs(4, 5, 0.5, 8800);
  jobs.insert(jobs.begin() + 2,
              make_tt_job("poison", tt_mask(5), 0x0F0Full, 5));
  EngineOptions opts;
  opts.num_threads = 2;
  opts.heuristics.push_back(
      {"restr", [](Manager& m, Edge f, Edge c) {
         return minimize::restrict_dc(m, f, c);
       }});
  opts.heuristics.push_back({"boom", [](Manager& m, Edge f, Edge c) {
                               BDDMIN_CHECK(f != kOne);
                               return minimize::constrain(m, f, c);
                             }});
  const BatchReport report = run_batch(jobs, opts);
  ASSERT_EQ(report.outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const JobOutcome& o = report.outcomes[i];
    if (i == 2) {
      EXPECT_EQ(o.status, JobStatus::kError);
      EXPECT_NE(o.error.find("boom"), std::string::npos);
      EXPECT_NE(o.error.find("BDDMIN_CHECK"), std::string::npos);
      // The heuristic before the crash still reported its cover.
      EXPECT_GT(o.results[0].size, 0u);
      EXPECT_EQ(o.results[1].size, 0u);
    } else {
      EXPECT_EQ(o.status, JobStatus::kOk) << o.name;
    }
  }
}

TEST(BatchEngine, MalformedPayloadIsContainedToItsJob) {
  std::vector<Job> jobs = random_jobs(3, 6, 0.4, 9900);
  Job bad;
  bad.name = "garbage";
  bad.num_vars = 6;
  bad.kind = PayloadKind::kForest;
  bad.forest = "not a forest";
  jobs.push_back(bad);
  EngineOptions opts;
  opts.num_threads = 2;
  const BatchReport report = run_batch(jobs, opts);
  EXPECT_EQ(report.count(JobStatus::kOk), 3u);
  const JobOutcome& o = report.outcomes.back();
  EXPECT_EQ(o.status, JobStatus::kError);
  EXPECT_NE(o.error.find("decode"), std::string::npos);
}

TEST(BatchEngine, NonCoverHeuristicIsRejected) {
  const std::vector<Job> jobs = random_jobs(2, 5, 0.6, 1234);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.heuristics.push_back(
      {"liar", [](Manager&, Edge f, Edge) { return !f; }});
  const BatchReport report = run_batch(jobs, opts);
  for (const JobOutcome& o : report.outcomes) {
    EXPECT_EQ(o.status, JobStatus::kError) << o.name;
    EXPECT_NE(o.error.find("non-cover"), std::string::npos);
  }
}

TEST(BatchEngine, SingleHeuristicSelectionByName) {
  const std::vector<Job> jobs = random_jobs(4, 6, 0.3, 4321);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.heuristic = "osm_td";
  const BatchReport report = run_batch(jobs, opts);
  ASSERT_EQ(report.names.size(), 1u);
  EXPECT_EQ(report.names[0], "osm_td");
  EXPECT_EQ(report.count(JobStatus::kOk), jobs.size());
}

TEST(BatchEngine, DedupReplicatesDuplicateOutcomesUnderTheirOwnNames) {
  // Four distinct payloads, each duplicated under fresh names.
  std::vector<Job> jobs = random_jobs(4, 6, 0.4, 8800);
  const std::size_t distinct = jobs.size();
  for (std::size_t i = 0; i < distinct; ++i) {
    Job dup = jobs[i];
    dup.name = "dup_" + dup.name;
    jobs.push_back(std::move(dup));
  }
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    const BatchReport report = run_batch(jobs, opts);
    EXPECT_EQ(report.duplicate_jobs, distinct);
    EXPECT_EQ(report.count(JobStatus::kOk), jobs.size());
    const std::string csv =
        report_csv(report, /*include_timings=*/false, /*include_counters=*/true);
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline) << "thread count " << threads
                               << " changed the deduplicated report";
    }
  }
  // Every duplicate appears under its own name.
  for (const Job& job : jobs) {
    EXPECT_NE(baseline.find(job.name), std::string::npos) << job.name;
  }
}

TEST(BatchEngine, DedupOffProducesTheSameReport) {
  std::vector<Job> jobs = random_jobs(3, 6, 0.4, 9900);
  for (std::size_t i = 0; i < 3; ++i) {
    Job dup = jobs[i];
    dup.name = "again_" + dup.name;
    jobs.push_back(std::move(dup));
  }
  EngineOptions on;
  on.num_threads = 2;
  EngineOptions off = on;
  off.dedup_jobs = false;
  const BatchReport rep_on = run_batch(jobs, on);
  const BatchReport rep_off = run_batch(jobs, off);
  EXPECT_EQ(rep_on.duplicate_jobs, 3u);
  EXPECT_EQ(rep_off.duplicate_jobs, 0u);
  // Outcomes are pure functions of the payload: the deterministic CSV
  // (counters included) is identical whether or not duplicates reran.
  EXPECT_EQ(report_csv(rep_on, false, /*include_counters=*/true),
            report_csv(rep_off, false, /*include_counters=*/true));
}

TEST(BatchEngine, PooledManagersKeepCsvByteIdenticalAcrossThreadCounts) {
  // Many more jobs than workers, so every pooled manager is reset and
  // reused repeatedly; counters in the CSV must still match a run where
  // each job had the manager to itself (1 thread).
  const std::vector<Job> jobs = mixed_jobs();
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.dedup_jobs = false;  // isolate the pooling effect
    const BatchReport report = run_batch(jobs, opts);
    const std::string csv =
        report_csv(report, /*include_timings=*/false, /*include_counters=*/true);
    if (baseline.empty()) {
      baseline = csv;
    } else {
      EXPECT_EQ(csv, baseline) << "thread count " << threads;
    }
  }
}

TEST(BatchMetricsTable, UtilizationTotalsMatchWallTimePerWorker) {
  if (!telemetry::kHistogramsEnabled) GTEST_SKIP() << "telemetry compiled out";
  const std::vector<Job> jobs = mixed_jobs();
  EngineOptions opts;
  opts.num_threads = 4;
  const BatchReport report = run_batch(jobs, opts);
  ASSERT_EQ(report.metrics.workers.size(), 4u);
  std::uint64_t total_jobs = 0;
  for (const WorkerUtilization& w : report.metrics.workers) {
    // idle is defined as max(0, wall - busy - steal - sink), so the four
    // states always tile exactly max(wall, busy + steal + sink).
    const double active = w.busy_seconds + w.steal_seconds + w.sink_seconds;
    const double sum = active + w.idle_seconds;
    EXPECT_NEAR(sum, std::max(report.wall_seconds, active),
                1e-9 * std::max(1.0, sum))
        << "worker " << w.worker;
    EXPECT_GE(w.busy_seconds, 0.0);
    EXPECT_GE(w.idle_seconds, 0.0);
    EXPECT_GE(w.steal_attempts, w.steals) << "worker " << w.worker;
    total_jobs += w.jobs;
  }
  // Every non-duplicate job was finished by exactly one worker.
  EXPECT_EQ(total_jobs, report.outcomes.size() - report.duplicate_jobs);
  EXPECT_EQ(report.metrics.job_latency_ns.count, total_jobs);
  EXPECT_EQ(report.metrics.job_steps.count, total_jobs);
  // The seeded-backlog anchor guarantees at least one depth sample.
  EXPECT_GE(report.metrics.queue_depth.count, 1u);
  EXPECT_GE(report.metrics.job_latency_ns.quantile(0.99),
            report.metrics.job_latency_ns.quantile(0.50));
}

TEST(BatchMetricsTable, SingleThreadNeverSteals) {
  if (!telemetry::kHistogramsEnabled) GTEST_SKIP() << "telemetry compiled out";
  const BatchReport report = run_batch(random_jobs(4, 6, 0.4, 777), {});
  ASSERT_EQ(report.metrics.workers.size(), 1u);
  EXPECT_EQ(report.metrics.steals, 0u);
  EXPECT_EQ(report.metrics.workers[0].steals, 0u);
  EXPECT_EQ(report.metrics.workers[0].jobs, report.outcomes.size());
}

TEST(BatchEngine, ProgressLineNeverTouchesStdoutOrCsv) {
  const std::vector<Job> jobs = random_jobs(5, 6, 0.4, 1357);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.progress = true;  // force on, bypassing the CLI's TTY gate
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  const BatchReport report = run_batch(jobs, opts);
  const std::string csv =
      report_csv(report, /*include_timings=*/false, /*include_counters=*/true);
  const std::string out = testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << "progress leaked to stdout: " << out;
  EXPECT_NE(err.find("[batch] 5/5"), std::string::npos) << err;
  EXPECT_NE(err.find("done in"), std::string::npos) << err;
  EXPECT_EQ(csv.find("[batch]"), std::string::npos);
  EXPECT_EQ(csv.find('\r'), std::string::npos);
  // Byte-identical to a run with the reporter off: progress is pure
  // side-channel.
  opts.progress = false;
  EXPECT_EQ(csv, report_csv(run_batch(jobs, opts), false,
                            /*include_counters=*/true));
}

TEST(BatchEngine, TimingColumnsAreOptIn) {
  const std::vector<Job> jobs = random_jobs(2, 5, 0.5, 2468);
  const BatchReport report = run_batch(jobs, {});
  const std::string plain = report_csv(report);
  const std::string timed = report_csv(report, /*include_timings=*/true);
  EXPECT_EQ(plain.find("sec_"), std::string::npos);
  EXPECT_NE(timed.find("sec_"), std::string::npos);
  EXPECT_NE(timed.find("job_seconds,worker"), std::string::npos);
}

}  // namespace
}  // namespace bddmin::engine
