#include "bdd/edge.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bddmin {
namespace {

TEST(Edge, ConstantsAreComplementsOfEachOther) {
  EXPECT_EQ(!kOne, kZero);
  EXPECT_EQ(!kZero, kOne);
  EXPECT_NE(kOne, kZero);
}

TEST(Edge, ComplementIsInvolution) {
  const Edge e{42};
  EXPECT_EQ(!!e, e);
}

TEST(Edge, IndexAndComplementDecomposition) {
  const Edge e{(7u << 1) | 1u};
  EXPECT_EQ(e.index(), 7u);
  EXPECT_TRUE(e.complemented());
  EXPECT_FALSE(e.regular().complemented());
  EXPECT_EQ(e.regular().index(), 7u);
}

TEST(Edge, ComplementIfFlipsConditionally) {
  const Edge e{10};
  EXPECT_EQ(e.complement_if(false), e);
  EXPECT_EQ(e.complement_if(true), !e);
}

TEST(Edge, RegularOfRegularIsIdentity) {
  const Edge e{20};
  EXPECT_EQ(e.regular(), e);
}

TEST(Edge, HashDistinguishesComplement) {
  std::unordered_set<Edge> set;
  set.insert(Edge{4});
  set.insert(Edge{5});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Edge{4}));
}

TEST(Edge, OrderingIsTotal) {
  EXPECT_LT(kOne, kZero);  // bits 0 < 1
  EXPECT_LT(Edge{2}, Edge{3});
}

}  // namespace
}  // namespace bddmin
